// Capacity-bottleneck analysis of a weighted "backbone" network: regional
// clusters (cliques of routers) chained along a long-haul path whose link
// capacities vary — the minimum cut is the weakest long-haul section.
// Compares the paper's algorithm against every baseline in the repo.
//
//   ./backbone_bottleneck [--clusters=6] [--cluster_size=6] [--seed=5]
#include <iostream>

#include "central/matula.h"
#include "central/stoer_wagner.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/prng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const Options opt{argc, argv, {"clusters", "cluster_size", "seed"}};
  const std::size_t clusters = opt.get_uint("clusters", 6);
  const std::size_t cluster_size = opt.get_uint("cluster_size", 6);
  const std::uint64_t seed = opt.get_uint("seed", 5);

  // Build the backbone: intra-cluster links capacity 10, long-haul links
  // random capacity in [3, 9]; the bottleneck is the cheapest long-haul.
  Prng rng{seed};
  const std::size_t n = clusters * cluster_size;
  Graph g{n};
  Weight weakest = kMaxWeight;
  for (std::size_t c = 0; c < clusters; ++c) {
    const NodeId base = static_cast<NodeId>(c * cluster_size);
    for (NodeId i = 0; i < cluster_size; ++i)
      for (NodeId j = i + 1; j < cluster_size; ++j)
        g.add_edge(base + i, base + j, 10);
    if (c + 1 < clusters) {
      const Weight cap = rng.next_in(3, 9);
      weakest = std::min(weakest, cap);
      g.add_edge(base + static_cast<NodeId>(cluster_size - 1),
                 base + static_cast<NodeId>(cluster_size), cap);
    }
  }
  std::cout << "backbone: " << clusters << " clusters × " << cluster_size
            << " routers, D=" << diameter_exact(g)
            << ", weakest long-haul capacity=" << weakest << "\n\n";

  const Weight lambda = stoer_wagner_min_cut(g).value;

  // One session, one simulated network, a batch of four queries — the
  // per-graph setup (mailboxes, reverse ports) is paid once.
  Session session{g};
  MinCutRequest base;
  base.seed = seed;
  base.eps = 0.25;
  MinCutRequest reqs[4] = {base, base, base, base};
  reqs[0].algo = Algo::kExact;
  reqs[1].algo = Algo::kApprox;
  reqs[2].algo = Algo::kSu;
  reqs[3].algo = Algo::kGk;
  const std::vector<MinCutReport> reports = session.solve_many(reqs);

  const MatulaResult matula = matula_approx_min_cut(g, 0.5);
  const auto ratio = [&](Weight v) {
    return Table::cell(static_cast<double>(v) / static_cast<double>(lambda),
                       2);
  };
  Table t{{"algorithm", "answer", "ratio to λ", "outputs cut?", "rounds"}};
  const char* labels[4] = {"exact (paper)", "(1+eps) eps=0.25",
                           "Su'14-style estimate", "GK'13-proxy estimate"};
  for (std::size_t i = 0; i < reports.size(); ++i)
    t.add_row({labels[i], Table::cell(reports[i].value),
               ratio(reports[i].value),
               reports[i].side.empty() ? "no" : "yes",
               Table::cell(reports[i].stats.total_rounds())});
  t.add_row({"Matula (2+eps), centralized", Table::cell(matula.value),
             ratio(matula.value), "yes", "-"});
  t.print(std::cout);

  const Weight exact_value = reports[0].value;
  std::cout << "\nλ (Stoer–Wagner oracle) = " << lambda
            << "; bottleneck capacity = " << weakest
            << (exact_value == lambda ? "  ✓" : "  ✗") << "\n";
  return exact_value == lambda ? 0 : 1;
}
