// Network reliability audit: find every single point of failure (bridge)
// AND the global capacity bottleneck (minimum cut) of a campus-style
// network — both with the same Theorem-2.1 machinery, and both verified
// against centralized oracles.
//
//   ./reliability_audit [--buildings=5] [--floor_size=6] [--seed=11]
#include <algorithm>
#include <iostream>

#include "central/stoer_wagner.h"
#include "core/api.h"
#include "core/bridges.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/prng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const Options opt{argc, argv, {"buildings", "floor_size", "seed"}};
  const std::size_t buildings = opt.get_uint("buildings", 5);
  const std::size_t floor_size = opt.get_uint("floor_size", 6);
  const std::uint64_t seed = opt.get_uint("seed", 11);

  // Campus: each building is a well-meshed floor switch cluster; buildings
  // hang off a ring backbone, and two of them share only a single uplink —
  // deliberate single points of failure.
  Prng rng{seed};
  const std::size_t n = buildings * floor_size;
  Graph g{n};
  for (std::size_t b = 0; b < buildings; ++b) {
    const NodeId base = static_cast<NodeId>(b * floor_size);
    for (NodeId i = 0; i < floor_size; ++i)
      for (NodeId j = i + 1; j < floor_size; ++j)
        if (rng.next_bool(0.7)) g.add_edge(base + i, base + j, 4);
    // Ensure each building is internally connected (a spanning path).
    for (NodeId i = 0; i + 1 < floor_size; ++i) {
      bool linked = false;
      for (const Port& p : g.ports(base + i))
        if (p.peer == base + i + 1) linked = true;
      if (!linked) g.add_edge(base + i, base + i + 1, 4);
    }
  }
  // Ring backbone between buildings 0..buildings-2 (dual uplinks)…
  for (std::size_t b = 0; b + 2 < buildings; ++b)
    g.add_edge(static_cast<NodeId>(b * floor_size),
               static_cast<NodeId>((b + 1) * floor_size), 2);
  if (buildings >= 3)
    g.add_edge(0, static_cast<NodeId>((buildings - 2) * floor_size), 2);
  // …but the last building has a SINGLE uplink: a bridge.
  g.add_edge(static_cast<NodeId>((buildings - 2) * floor_size),
             static_cast<NodeId>((buildings - 1) * floor_size), 3);

  std::cout << "campus network: " << buildings << " buildings × "
            << floor_size << " switches, m=" << g.num_edges()
            << ", D=" << diameter_exact(g) << "\n\n";

  // --- single points of failure ---
  const BridgesResult bridges = distributed_bridges(g);
  const auto oracle = bridges_oracle(g);
  std::cout << "bridges found distributively (" << bridges.count << "):\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (bridges.is_bridge[e])
      std::cout << "  link " << g.edge(e).u << "–" << g.edge(e).v
                << " (capacity " << g.edge(e).w << ")"
                << (oracle[e] ? "  ✓ oracle agrees" : "  ✗ MISMATCH")
                << "\n";
  std::cout << "rounds: " << bridges.stats.total_rounds() << "\n\n";

  // --- global bottleneck ---
  Session session{g};
  const MinCutReport cut = session.solve(MinCutRequest{});
  const Weight lambda = stoer_wagner_min_cut(g).value;
  std::cout << "capacity bottleneck (min cut): " << cut.value
            << (cut.value == lambda ? "  ✓ oracle agrees" : "  ✗ MISMATCH")
            << "\n";
  std::cout << "isolated side: "
            << std::count(cut.side.begin(), cut.side.end(), true)
            << " switches; rounds: " << cut.stats.total_rounds() << "\n";

  bool ok = cut.value == lambda;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    ok = ok && bridges.is_bridge[e] == oracle[e];
  return ok ? 0 : 1;
}
