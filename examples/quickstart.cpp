// Quickstart: find the minimum cut of a network with the paper's exact
// distributed algorithm, and sanity-check it against Stoer–Wagner.
//
//   ./quickstart [--n=64] [--bridges=3] [--seed=7]
//
// The instance is a "barbell": two cliques of n/2 nodes joined by a few
// bridge edges — the planted minimum cut is exactly the bridges.
#include <algorithm>
#include <iostream>

#include "central/stoer_wagner.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/bit_math.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const Options opt{argc, argv};
  const std::size_t n = opt.get_uint("n", 64);
  const std::size_t bridges = opt.get_uint("bridges", 3);
  const std::uint64_t seed = opt.get_uint("seed", 7);

  const Graph g = make_barbell(n, bridges, /*bridge_w=*/1, seed);
  std::cout << "graph: barbell, n=" << g.num_nodes()
            << " m=" << g.num_edges() << " D=" << diameter_exact(g) << "\n";

  // The paper's algorithm: tree packing + 1-respecting cuts, simulated on a
  // message-level CONGEST network.
  const DistMinCutResult cut = distributed_min_cut(g);
  std::cout << "\ndistributed exact minimum cut\n"
            << "  value        : " << cut.value << "\n"
            << "  side |X|     : "
            << std::count(cut.side.begin(), cut.side.end(), true) << " of "
            << g.num_nodes() << " nodes\n"
            << "  trees packed : " << cut.trees_packed << " (best at #"
            << cut.tree_of_best << ")\n"
            << "  fragments    : " << cut.fragments << " (√n ≈ "
            << isqrt_ceil(g.num_nodes()) << ")\n"
            << "  CONGEST cost : " << cut.stats.total_rounds()
            << " rounds (" << cut.stats.rounds << " executed + "
            << cut.stats.barrier_rounds << " barrier), "
            << cut.stats.messages << " messages\n";

  const CutResult oracle = stoer_wagner_min_cut(g);
  std::cout << "\nStoer–Wagner (centralized oracle): " << oracle.value
            << (oracle.value == cut.value ? "  ✓ match" : "  ✗ MISMATCH")
            << "\n";
  return cut.value == oracle.value ? 0 : 1;
}
