// Quickstart: open a solve session on a network, serve min-cut queries
// from it, and sanity-check the exact answer against Stoer–Wagner.
//
//   ./quickstart [--n=64] [--bridges=3] [--seed=7] [--threads=1]
//                [--algo=exact|approx|su|gk] [--eps=0.25]
//
// The instance is a "barbell": two cliques of n/2 nodes joined by a few
// bridge edges — the planted minimum cut is exactly the bridges.  A
// dmc::Session builds the simulated CONGEST network once; every solve()
// reuses it (bit-identical to a fresh one-shot run), which is how many
// queries against one graph are served cheaply.
#include <algorithm>
#include <iostream>

#include "central/stoer_wagner.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/bit_math.h"
#include "util/options.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const Options opt{argc, argv,
                    {"n", "bridges", "seed", "threads", "algo", "eps"}};
  const std::size_t n = opt.get_uint("n", 64);
  const std::size_t bridges = opt.get_uint("bridges", 3);
  const std::uint64_t seed = opt.get_uint("seed", 7);
  const unsigned threads =
      static_cast<unsigned>(opt.get_uint("threads", 1));
  const Algo algo = algo_from_string(
      opt.get_enum("algo", "exact", {"exact", "approx", "su", "gk"}));

  const double eps = opt.get_double("eps", 0.25);
  const Graph g = make_barbell(n, bridges, /*bridge_w=*/1, seed);
  std::cout << "graph: barbell, n=" << g.num_nodes()
            << " m=" << g.num_edges() << " D=" << diameter_exact(g) << "\n";

  // One session = one simulated network (mailboxes, reverse-port table,
  // worker pool), built once and reused by every query.
  Session session{g, SessionOptions{.engine_threads = threads}};

  MinCutRequest req;
  req.algo = algo;
  req.eps = eps;
  req.seed = seed;
  const MinCutReport cut = session.solve(req);

  std::cout << "\ndistributed minimum cut (" << to_string(cut.algo) << ")\n"
            << "  value        : " << cut.value << "\n";
  if (!cut.side.empty())
    std::cout << "  side |X|     : "
              << std::count(cut.side.begin(), cut.side.end(), true) << " of "
              << g.num_nodes() << " nodes\n"
              << "  trees packed : " << cut.trees_packed << " (best at #"
              << cut.tree_of_best << ")\n"
              << "  fragments    : " << cut.fragments << " (√n ≈ "
              << isqrt_ceil(g.num_nodes()) << ")\n";
  std::cout << "  CONGEST cost : " << cut.stats.total_rounds()
            << " rounds (" << cut.stats.rounds << " executed + "
            << cut.stats.barrier_rounds << " barrier), "
            << cut.stats.messages << " messages\n"
            << "  wall time    : " << cut.wall_seconds * 1e3 << " ms\n";

  const CutResult oracle = stoer_wagner_min_cut(g);
  std::cout << "\nStoer–Wagner (centralized oracle): " << oracle.value;
  if (cut.algo == Algo::kExact) {
    std::cout << (oracle.value == cut.value ? "  ✓ match" : "  ✗ MISMATCH");
  } else if (cut.algo == Algo::kApprox) {
    // An approx answer may legitimately sit anywhere in [λ, (1+ε)·λ].
    const bool in_band =
        cut.value >= oracle.value &&
        static_cast<double>(cut.value) <=
            (1.0 + eps) * static_cast<double>(oracle.value) + 1e-9;
    std::cout << (in_band ? "  ✓ within the (1+eps) band"
                          : "  ✗ OUTSIDE the (1+eps) band");
  } else {
    std::cout << "  (estimate-only algorithm; no exactness promised)";
  }
  std::cout << "\n";

  if (cut.algo == Algo::kExact) return cut.value == oracle.value ? 0 : 1;
  return 0;
}
