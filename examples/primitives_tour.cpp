// A tour of the CONGEST toolbox underneath the min-cut pipeline: leader
// election + BFS, convergecast, pipelined aggregate-broadcast, downcast,
// pairwise exchange, and the explicit barrier — each with its measured
// round cost next to the textbook bound.
//
//   ./primitives_tour [--rows=8] [--cols=16]
#include <iostream>

#include "congest/network.h"
#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/barrier.h"
#include "congest/primitives/convergecast.h"
#include "congest/primitives/downcast.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/primitives/pairwise_exchange.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const Options opt{argc, argv, {"rows", "cols"}};
  const std::size_t rows = opt.get_uint("rows", 8);
  const std::size_t cols = opt.get_uint("cols", 16);

  const Graph g = make_grid(rows, cols);
  const std::size_t n = g.num_nodes();
  Network net{g};
  Table t{{"primitive", "rounds", "textbook bound"}};

  // 1. Leader election + BFS tree.
  LeaderBfsProtocol lb{g};
  const auto r1 = net.run(lb);
  const TreeView bfs = lb.tree_view(g);
  const auto h = bfs.height(g);
  t.add_row({"leader election + BFS", Table::cell(r1),
             "O(D) = " + Table::cell(diameter_exact(g))});

  // 2. Convergecast (sum of all node ids, result broadcast back).
  std::vector<CValue> init(n);
  for (NodeId v = 0; v < n; ++v) init[v] = CValue{v, 0};
  ConvergecastProtocol cc{g, bfs, CombineOp::kSum, init, true};
  const auto r2 = net.run(cc);
  t.add_row({"convergecast + broadcast", Table::cell(r2),
             "2h+2 = " + Table::cell(2 * h + 2)});

  // 3. Aggregate-broadcast of k = 32 keyed counters to every node.
  const std::size_t k = 32;
  std::vector<std::vector<AggItem>> contrib(n);
  for (NodeId v = 0; v < n; ++v)
    contrib[v].push_back(AggItem{v % k, {1, 0, 0}});
  AggregateBroadcastProtocol agg{
      g, bfs, AggOptions{AggOp::kSum, true, false, false},
      std::move(contrib)};
  const auto r3 = net.run(agg);
  t.add_row({"aggregate-broadcast, k=32", Table::cell(r3),
             "O(h+k) = " + Table::cell(2 * (h + k) + 4)});

  // 4. Pipelined downcast of 16 items from the root.
  std::vector<std::vector<DownItem>> items(n);
  NodeId root = 0;
  for (NodeId v = 0; v < n; ++v)
    if (bfs.is_root(v)) root = v;
  for (Word i = 0; i < 16; ++i) items[root].push_back(DownItem{{i, 0, 0, 0}});
  PipelinedDowncastProtocol dc{g, bfs, std::move(items),
                               [](NodeId, const DownItem&) { return true; }};
  const auto r4 = net.run(dc);
  t.add_row({"downcast, 16 items", Table::cell(r4),
             "O(h+k) = " + Table::cell(h + 16 + 2)});

  // 5. Pairwise exchange of 8 words over every edge simultaneously.
  std::vector<std::vector<std::vector<Word>>> lists(n);
  for (NodeId v = 0; v < n; ++v)
    lists[v].assign(g.degree(v), std::vector<Word>(8, v));
  PairwiseExchangeProtocol px{g, std::move(lists)};
  const auto r5 = net.run(px);
  t.add_row({"pairwise exchange, 8 words", Table::cell(r5), "len+1 = 9"});

  // 6. Explicit barrier (what Schedule charges analytically).
  BarrierProtocol bar{g, bfs};
  const auto r6 = net.run(bar);
  t.add_row({"barrier", Table::cell(r6),
             "2h+2 = " + Table::cell(2 * h + 2)});

  std::cout << "grid " << rows << "×" << cols << " (n=" << n
            << ", D=" << diameter_exact(g) << ", BFS height " << h << ")\n\n";
  t.print(std::cout);
  std::cout << "\ntotals: " << net.stats().messages << " messages, "
            << net.stats().words << " words, max "
            << static_cast<int>(net.stats().max_words_per_message)
            << " words/message (budget " << static_cast<int>(kMaxWords)
            << ")\n";
  return 0;
}
