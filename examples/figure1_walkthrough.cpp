// A guided tour of the paper's Figure 1, executed for real: the 16-node
// example tree, its fragments, the fragment tree T_F, the merging nodes,
// T'_F, and finally the per-node δ↓ / ρ↓ / C(v↓) table of Theorem 2.1.
//
//   ./figure1_walkthrough
#include <iostream>

#include "congest/network.h"
#include "congest/schedule.h"
#include "core/ancestors.h"
#include "core/merging_nodes.h"
#include "core/one_respect.h"
#include "dist/tree_partition.h"
#include "graph/tree.h"
#include "util/table.h"

int main() {
  using namespace dmc;

  // The reconstruction of Figure 1a: root 0; fragment F(0) = {0,1,2,3,4};
  // child fragments rooted at 5, 6 (attached at the merging node 1) and 7
  // (attached below 2–4); leaves 8..15.
  Graph g{16};
  std::vector<EdgeId> tree;
  const auto te = [&](NodeId u, NodeId v) {
    tree.push_back(g.add_edge(u, v, 1));
  };
  te(0, 1);
  te(0, 2);
  te(2, 3);
  te(2, 4);
  te(1, 5);
  te(1, 6);
  te(4, 7);
  te(5, 8);
  te(5, 9);
  te(6, 10);
  te(6, 11);
  te(7, 12);
  te(7, 13);
  te(7, 14);
  te(7, 15);
  // Non-tree edges exercising the three LCA cases of Step 5 (Figure 1e).
  g.add_edge(8, 9, 2);   // case 1: same fragment, LCA 5
  g.add_edge(9, 10, 3);  // case 2: LCA = merging node 1
  g.add_edge(3, 14, 4);  // case 3: LCA 2 inside F(0)
  g.add_edge(8, 12, 5);  // case 2: LCA = merging node 0

  std::vector<std::uint32_t> frag(16, 0);
  for (const NodeId v : {5, 8, 9}) frag[v] = 1;
  for (const NodeId v : {6, 10, 11}) frag[v] = 2;
  for (const NodeId v : {7, 12, 13, 14, 15}) frag[v] = 3;

  const FragmentStructure fs =
      make_fragment_structure_centralized(g, tree, /*root=*/0, frag);

  std::cout << "=== Step 1: fragments and T_F (Figure 1b) ===\n";
  for (std::uint32_t f = 0; f < fs.k; ++f) {
    std::cout << "fragment " << f << " rooted at node "
              << fs.frag_root_node[f] << ", parent fragment ";
    if (fs.frag_parent[f] == kNoFrag)
      std::cout << "— (root fragment)";
    else
      std::cout << fs.frag_parent[f];
    std::cout << ", members:";
    for (NodeId v = 0; v < 16; ++v)
      if (fs.frag_idx[v] == f) std::cout << ' ' << v;
    std::cout << '\n';
  }

  Network net{g};
  Schedule sched{net};
  sched.set_barrier_height(fs.t_view.height(g));

  std::cout << "\n=== Step 2: ancestor sets (Figure 1c shows A(15)) ===\n";
  const AncestorData ad = compute_ancestors(sched, fs);
  std::cout << "A(15): own fragment:";
  for (const auto e : ad.own_chain(15)) std::cout << ' ' << e;
  std::cout << " | parent fragment:";
  for (const auto e : ad.parent_chain(15)) std::cout << ' ' << e;
  std::cout << "\nF(1) (fragments fully below node 1):";
  for (const auto f : fs.closure(ad.attach[1])) std::cout << ' ' << f;
  std::cout << "\n";

  std::cout << "\n=== Step 4: merging nodes and T'_F (Figure 1d) ===\n";
  const TfPrime tfp = compute_merging_nodes(sched, fs.t_view, fs, ad);
  std::cout << "merging nodes:";
  for (NodeId v = 0; v < 16; ++v)
    if (tfp.is_merging[v]) std::cout << ' ' << v;
  std::cout << "\nT'_F edges (child → parent):";
  for (const NodeId v : tfp.nodes)
    if (tfp.parent.at(v) != kNoNode)
      std::cout << ' ' << v << "→" << tfp.parent.at(v);
  std::cout << "\n";

  std::cout << "\n=== Steps 3+5: Theorem 2.1 per-node table ===\n";
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).w;
  const OneRespectResult r = one_respect_min_cut(sched, fs.t_view, fs, w);
  Table t{{"v", "fragment", "delta_down", "rho_down", "C(v_down)"}};
  for (NodeId v = 0; v < 16; ++v)
    t.add_row({Table::cell(v), Table::cell(fs.frag_idx[v]),
               Table::cell(r.delta_down[v]), Table::cell(r.rho_down[v]),
               Table::cell(r.cut_down[v])});
  t.print(std::cout);
  std::cout << "c* = " << r.c_star << " at v* = " << r.v_star
            << "  (cut side X = v*'s subtree)\n"
            << "CONGEST rounds for the walkthrough: "
            << sched.total_rounds() << "\n";
  return 0;
}
