// Community detection via minimum cut: a planted two-community network
// whose sparsest cut separates the communities.  Shows the exact algorithm
// recovering the planted partition and the (1+ε) variant trading accuracy
// for rounds.
//
//   ./community_detection [--n=64] [--cross=4] [--p_in=0.5] [--seed=3]
//                         [--eps=0.3]
#include <algorithm>
#include <iostream>

#include "central/stoer_wagner.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/options.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dmc;
  const Options opt{argc, argv, {"n", "cross", "p_in", "seed", "eps"}};
  const std::size_t n = opt.get_uint("n", 64);
  const std::size_t cross = opt.get_uint("cross", 4);
  const double p_in = opt.get_double("p_in", 0.5);
  const std::uint64_t seed = opt.get_uint("seed", 3);
  const double eps = opt.get_double("eps", 0.3);

  const Graph g = make_planted_cut(n, p_in, cross, /*cross_w=*/1, seed);
  std::cout << "planted two-community graph: n=" << g.num_nodes()
            << " m=" << g.num_edges() << " planted cut=" << cross << "\n\n";

  // Ground truth: community A is nodes [0, n/2).
  const auto community_accuracy = [&](const std::vector<bool>& side) {
    // The cut side may be either community; count the best alignment.
    std::size_t agree = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const bool in_a = v < g.num_nodes() / 2;
      if (side[v] == in_a) ++agree;
    }
    return std::max(agree, g.num_nodes() - agree);
  };

  // Both queries share one session (one simulated network).
  Session session{g};
  MinCutRequest exact_req;
  MinCutRequest approx_req;
  approx_req.algo = Algo::kApprox;
  approx_req.eps = eps;
  approx_req.seed = seed;
  const MinCutReport exact = session.solve(exact_req);
  const MinCutReport approx = session.solve(approx_req);

  Table t{{"algorithm", "cut value", "community accuracy", "rounds",
           "messages"}};
  t.add_row({"exact (paper)", Table::cell(exact.value),
             Table::cell(community_accuracy(exact.side)) + "/" +
                 Table::cell(g.num_nodes()),
             Table::cell(exact.stats.total_rounds()),
             Table::cell(exact.stats.messages)});
  t.add_row({"(1+eps) eps=" + Table::cell(eps, 2),
             Table::cell(approx.value),
             Table::cell(community_accuracy(approx.side)) + "/" +
                 Table::cell(g.num_nodes()),
             Table::cell(approx.stats.total_rounds()),
             Table::cell(approx.stats.messages)});
  t.print(std::cout);

  const Weight lambda = stoer_wagner_min_cut(g).value;
  std::cout << "\nStoer–Wagner λ = " << lambda
            << (exact.value == lambda ? "  ✓ exact algorithm matches"
                                      : "  ✗ MISMATCH")
            << "\n";
  return exact.value == lambda ? 0 : 1;
}
