// Distributed minimum spanning tree in Õ(√n + D) rounds — the controlled
// GHS + pipelined-Borůvka construction of Kutten–Peleg / Garay–Kutten–
// Peleg, which is Step 1's workhorse in the paper.
//
// Phase 1 (controlled GHS): fragments start as singletons and repeatedly
// merge along their minimum-key outgoing edge, but a fragment FREEZES once
// it reaches `freeze` nodes (default ⌈√n⌉), capping both fragment count
// (O(√n)) and fragment diameter (O(√n)) — exactly the (√n, O(√n))
// partition Theorem 2.1 needs.  Merges follow a coin-flip star schedule
// (seeded, deterministic): only TAIL fragments move, onto HEAD or frozen
// targets, so merge trees have depth 1 and diameters grow additively.
// Frozen fragments keep absorbing until they saturate at 4·freeze nodes;
// a fragment whose merge target is saturated freezes itself (its MST edge
// is found by phase 2 instead — exactness never depends on phase 1).
//
// Phase 2 (pipelined Borůvka): the surviving inter-fragment MST edges are
// computed in O(log n) Borůvka iterations over the fragment graph; each
// iteration pipelines the per-component minimum outgoing edges up and down
// the O(D)-height BFS tree.  Edge keys are compared EXACTLY under the
// tie-broken total order of mst.h (load/weight by cross-multiplication,
// then id): in-message keys use a 128-bit fixed-point encoding of
// load·2⁶⁴/w whose lexicographic order provably coincides with the
// rational order for w < 2³² (see ghs_mst.cpp), so the distributed tree is
// bit-identical to centralized Kruskal under the same keys.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "graph/mst.h"

namespace dmc {

/// One MST edge between two phase-1 fragments (a tree edge chosen by
/// phase 2).  Fragment ids are the ids of their leader nodes.
struct InterFragmentEdge {
  EdgeId eid{kNoEdge};
  NodeId node_a{kNoNode};
  NodeId node_b{kNoNode};
  NodeId frag_a{kNoNode};
  NodeId frag_b{kNoNode};
};

struct DistMstResult {
  /// Per-edge MST membership (the union of both phases).
  std::vector<bool> tree_edge;
  /// The subset chosen during controlled-GHS phase 1 (intra-fragment).
  std::vector<bool> phase1_edge;
  /// Phase-1 fragment of every node, named by its leader node's id.
  std::vector<NodeId> fragment_of;
  std::size_t num_fragments{0};
  /// Phase-1 super-phases executed (O(log n) by construction).
  std::uint32_t superphases{0};
  /// tree_edge minus phase1_edge, with endpoint/fragment bookkeeping.
  std::vector<InterFragmentEdge> inter_edges;
};

/// Runs the distributed MST under the given per-edge key order.  `keys`
/// must be globally consistent (same vector at every node — the repo's
/// protocols get it from broadcast weights or locally derivable loads).
/// `freeze == 0` picks ⌈√n⌉.  `seed` drives only the merge-coin schedule:
/// the resulting tree is seed-independent (the MST is unique under the
/// total order), the fragment partition is not.
[[nodiscard]] DistMstResult ghs_mst(Schedule& sched, const TreeView& bfs,
                                    std::span<const EdgeKey> keys,
                                    std::size_t freeze = 0,
                                    std::uint64_t seed = 0x5eed);

}  // namespace dmc
