#include "dist/ghs_mst.h"

#include <algorithm>
#include <map>

#include "congest/network.h"
#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/convergecast.h"
#include "congest/primitives/pairwise_exchange.h"
#include "util/bit_math.h"
#include "util/dsu.h"
#include "util/prng.h"

namespace dmc {

namespace {

// --- exact in-message edge-key encoding ---------------------------------
//
// EdgeKey orders edges by the rational load/w (cross-multiplied exactly),
// tie-broken by id.  Messages need that order as a lexicographic word
// tuple, so we ship q = ⌊load·2⁶⁴/w⌋ as (hi, lo).  This is EXACT: two keys
// with equal q have equal ratios, because distinct ratios a/b ≠ c/d with
// b, d ≤ kMaxWeight = 2³²−1 differ by at least 1/(bd) > 2⁻⁶⁴, while equal
// q bounds the difference strictly below 2⁻⁶⁴.  Loads stay below 2²⁶
// (tree-packing caps at 2²⁰ trees plus the 2²⁵ disabled bump), so
// load·2⁶⁴ < 2⁹⁰ fits unsigned __int128.
struct RatioKey {
  Word hi{0};
  Word lo{0};
};

RatioKey ratio_key(const EdgeKey& k) {
  DMC_ASSERT(k.w >= 1);
  const unsigned __int128 q =
      (static_cast<unsigned __int128>(k.load) << 64) / k.w;
  return RatioKey{static_cast<Word>(q >> 64), static_cast<Word>(q)};
}

/// (hi, lo, edge<<32 | extra) — lexicographic AggItem-payload order equals
/// the EdgeKey total order because ties in (hi, lo) mean equal ratios and
/// the edge id occupies the top 32 payload bits of the last word.
std::array<Word, 3> moe_payload(const EdgeKey& k, EdgeId e, NodeId extra) {
  const RatioKey r = ratio_key(k);
  return {r.hi, r.lo, (Word{e} << 32) | extra};
}

// --- per-super-phase merge-request protocol -----------------------------
//
// Round 1: the node owning its fragment's minimum outgoing edge announces
// ⟨my fragment⟩ over that edge.  Round 2: the receiving endpoint reads the
// request; both sides now hold identical information (the peer's fragment,
// status and coin are globally derivable or were exchanged this phase) and
// reach the same merge decision without further communication.
class MergeRequestProtocol final : public Protocol {
 public:
  struct Request {
    NodeId node{kNoNode};      ///< the sending MOE owner
    std::uint32_t port{0};     ///< the owner's port for the MOE edge
    NodeId frag{kNoNode};      ///< the owner's fragment
  };

  MergeRequestProtocol(const Graph& g, std::vector<Request> requests)
      : step_(g.num_nodes(), 0), received_(g.num_nodes()) {
    for (const Request& r : requests) outgoing_[r.node] = r;
  }

  [[nodiscard]] std::string name() const override { return "merge_request"; }

  void round(NodeId v, Mailbox& mb) override {
    for (const Delivery& d : mb.inbox())
      received_[v].push_back({v, d.port, static_cast<NodeId>(d.msg.at(0))});
    if (step_[v] == 0) {
      const auto it = outgoing_.find(v);
      if (it != outgoing_.end())
        mb.send(it->second.port, Message::make(kTag, {it->second.frag}));
    }
    ++step_[v];
  }

  [[nodiscard]] bool local_done(NodeId v) const override {
    return step_[v] >= 1;
  }

  /// Event-driven audit: senders fire in the dense first round; only the
  /// receiving endpoints act in round 2 (delivery activation).  An idle
  /// execution bumps step_ past 1, which nothing observes.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: received requests are keyed by (receiver,
  /// port) and sorted before use, so within-round arrival order is erased
  /// anyway.  A duplicated request would register one merge edge twice and
  /// a dropped one silently severs a fragment merge, so only reorder is
  /// declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  /// Requests delivered to v: (receiver, receiver port, requesting
  /// fragment).
  [[nodiscard]] const std::vector<Request>& received(NodeId v) const {
    return received_[v];
  }

 private:
  static constexpr std::uint32_t kTag = 0x6d72;  // "mr"
  std::map<NodeId, Request> outgoing_;
  std::vector<std::uint8_t> step_;
  std::vector<std::vector<Request>> received_;
};

// --- merge flood --------------------------------------------------------
//
// Every TAIL fragment re-roots at its attachment node and adopts the
// absorbing fragment's id; the new id floods from the attachment node
// through the fragment's (old) phase-1 tree, and each node's new
// intra-fragment parent is the port the flood arrived on — the flood IS
// the re-rooting.  Star merges keep floods inside disjoint old fragments,
// so all of them run concurrently in O(max fragment diameter) rounds.
class MergeFloodProtocol final : public Protocol {
 public:
  struct Seed {
    NodeId node{kNoNode};
    NodeId new_frag{kNoNode};
    std::uint32_t parent_port{kNoPort};  ///< port of the merge edge
  };

  MergeFloodProtocol(const Graph& g,
                     const std::vector<std::vector<std::uint32_t>>& p1_ports,
                     const std::vector<Seed>& seeds)
      : p1_ports_(&p1_ports),
        started_(g.num_nodes(), 0),
        new_frag_(g.num_nodes(), kNoNode),
        new_parent_(g.num_nodes(), kNoPort) {
    for (const Seed& s : seeds) seed_[s.node] = s;
  }

  [[nodiscard]] std::string name() const override { return "merge_flood"; }

  void round(NodeId v, Mailbox& mb) override {
    if (!started_[v]) {
      started_[v] = 1;
      const auto it = seed_.find(v);
      if (it != seed_.end()) {
        new_frag_[v] = it->second.new_frag;
        new_parent_[v] = it->second.parent_port;
        for (const std::uint32_t p : (*p1_ports_)[v])
          mb.send(p, Message::make(kTag, {new_frag_[v]}));
      }
    }
    for (const Delivery& d : mb.inbox()) {
      DMC_ASSERT_MSG(new_frag_[v] == kNoNode,
                     "merge flood reached node " << v << " twice");
      new_frag_[v] = static_cast<NodeId>(d.msg.at(0));
      new_parent_[v] = d.port;
      for (const std::uint32_t p : (*p1_ports_)[v])
        if (p != d.port) mb.send(p, Message::make(kTag, {new_frag_[v]}));
    }
  }

  [[nodiscard]] bool local_done(NodeId v) const override {
    return started_[v] != 0;
  }

  /// Event-driven audit: seeds start the floods in the dense first round;
  /// the wave then advances purely by deliveries.  An idle execution
  /// (started, empty inbox) is a no-op.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: the flood adopts the minimum seed over the
  /// inbox with a strict-< fold, so any within-round permutation reaches
  /// the same minimum.  Drop loses a wave forever (no retransmission) and
  /// dup re-triggers the adoption check whose parent assignment is not
  /// idempotent across copies, so neither is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  [[nodiscard]] NodeId new_frag(NodeId v) const { return new_frag_[v]; }
  [[nodiscard]] std::uint32_t new_parent(NodeId v) const {
    return new_parent_[v];
  }

 private:
  static constexpr std::uint32_t kTag = 0x6d66;  // "mf"
  const std::vector<std::vector<std::uint32_t>>* p1_ports_;
  std::map<NodeId, Seed> seed_;
  std::vector<std::uint8_t> started_;
  std::vector<NodeId> new_frag_;
  std::vector<std::uint32_t> new_parent_;
};

/// Packs a node's fragment id and phase-start status bits into one word
/// for the per-phase pairwise status exchange.
Word pack_status(NodeId frag, bool frozen, bool saturated) {
  return Word{frag} | (Word{frozen} << 32) | (Word{saturated} << 33);
}

}  // namespace

DistMstResult ghs_mst(Schedule& sched, const TreeView& bfs,
                      std::span<const EdgeKey> keys, std::size_t freeze,
                      std::uint64_t seed) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(keys.size() == g.num_edges());
  const std::size_t S = freeze == 0 ? isqrt_ceil(n) : freeze;
  const std::size_t kSaturation = 4 * S;

  DistMstResult out;
  out.tree_edge.assign(g.num_edges(), false);
  out.phase1_edge.assign(g.num_edges(), false);
  out.fragment_of.resize(n);
  for (NodeId v = 0; v < n; ++v) out.fragment_of[v] = v;

  // Local per-node state mirrored by the protocols: intra-fragment tree
  // ports and the parent port within the fragment (kNoPort at roots).
  std::vector<std::vector<std::uint32_t>> p1_ports(n);
  std::vector<std::uint32_t> frag_parent_port(n, kNoPort);

  // Per-fragment bookkeeping, indexed by leader node id (made global per
  // phase by the census broadcast).
  std::vector<std::uint32_t> frag_size(n, 1);
  std::vector<std::uint8_t> self_frozen(n, 0);
  const auto is_frozen = [&](NodeId f) {
    return frag_size[f] >= S || self_frozen[f] != 0;
  };
  const auto is_saturated = [&](NodeId f) {
    return frag_size[f] >= kSaturation;
  };
  const auto coin_is_head = [&](std::uint32_t phase, NodeId f) {
    return (derive_seed(seed, phase + 1, f) & 1) != 0;
  };

  const auto frag_forest_view = [&] {
    return TreeView::from_parent_ports(
        g, std::vector<std::uint32_t>(frag_parent_port));
  };

  std::size_t num_fragments = n;

  // ---------------------------------------------------------------------
  // Phase 1: controlled GHS.  Each super-phase costs O(S) rounds of
  // pipelined intra-fragment work plus O(1) edge exchanges; its sub-steps
  // have deterministic round budgets known to every node (S and the
  // saturation cap are global), so a real deployment needs no per-step
  // termination detection — we charge one barrier per super-phase.
  // ---------------------------------------------------------------------
  const std::uint32_t kMaxSuperphases =
      6 * (ceil_log2(std::max<std::size_t>(n, 2)) + 2) + 16;
  for (;;) {
    if (num_fragments <= 1) break;
    bool any_active = false;
    for (NodeId v = 0; v < n; ++v)
      if (out.fragment_of[v] == v && !is_frozen(v)) {
        any_active = true;
        break;
      }
    if (!any_active || out.superphases >= kMaxSuperphases) break;
    const std::uint32_t phase = out.superphases;

    // (a) status exchange: every edge learns both endpoints' fragment and
    // phase-start status (2 rounds, one word).  Flat per-directed-port
    // tables (indexed by g.port_offset(v) + p) — no per-node heap blocks.
    // The packed status spans 34 bits, so this exchange stays wide.
    const std::uint32_t dirs = g.port_offset(static_cast<NodeId>(n));
    std::vector<NodeId> port_frag(dirs);
    std::vector<std::uint8_t> port_frozen(dirs), port_sat(dirs);
    {
      PairwiseExchangeProtocol::Lists outgoing{g};
      for (NodeId v = 0; v < n; ++v) {
        const NodeId f = out.fragment_of[v];
        const Word s = pack_status(f, is_frozen(f), is_saturated(f));
        for (std::uint32_t p = 0; p < g.degree(v); ++p)
          outgoing.add(v, p, s);
      }
      PairwiseExchangeProtocol px{g, std::move(outgoing)};
      sched.run_uncharged(px);
      for (NodeId v = 0; v < n; ++v) {
        const std::uint32_t base = g.port_offset(v);
        for (std::uint32_t p = 0; p < g.degree(v); ++p) {
          const Word w = px.received(v, p).at(0);
          port_frag[base + p] = static_cast<NodeId>(w & 0xffffffffu);
          port_frozen[base + p] = (w >> 32) & 1;
          port_sat[base + p] = (w >> 33) & 1;
        }
      }
    }

    // (b) minimum outgoing edge per active fragment: keyed min-merge up
    // the fragment tree, result pipelined back to every member.
    std::map<NodeId, std::pair<EdgeId, std::uint64_t>> moe;
    {
      std::vector<std::vector<AggItem>> contrib(n);
      for (NodeId v = 0; v < n; ++v) {
        const NodeId f = out.fragment_of[v];
        if (is_frozen(f)) continue;
        const std::uint32_t base = g.port_offset(v);
        EdgeId best = kNoEdge;
        for (std::uint32_t p = 0; p < g.degree(v); ++p) {
          if (port_frag[base + p] == f) continue;
          const EdgeId e = g.ports(v)[p].edge;
          if (best == kNoEdge || keys[e] < keys[best]) best = e;
        }
        if (best != kNoEdge)
          contrib[v].push_back(AggItem{0, moe_payload(keys[best], best, 0)});
      }
      const TreeView forest = frag_forest_view();
      AggregateBroadcastProtocol bc{
          g, forest,
          AggOptions{AggOp::kMin, /*deliver_all=*/true, false, false},
          std::move(contrib)};
      sched.run_uncharged(bc);
      // The MOE owner is the unique member with the winning edge on a
      // port; record (edge, owner port) per fragment.
      for (NodeId v = 0; v < n; ++v) {
        const NodeId f = out.fragment_of[v];
        if (is_frozen(f) || bc.items(v).empty()) continue;
        const EdgeId e =
            static_cast<EdgeId>(bc.items(v)[0].p[2] >> 32);
        const std::uint32_t base = g.port_offset(v);
        for (std::uint32_t p = 0; p < g.degree(v); ++p)
          if (g.ports(v)[p].edge == e && port_frag[base + p] != f)
            moe[f] = {e, (Word{v} << 32) | p};
      }
    }

    // (c) merge requests over the chosen edges (2 rounds).
    {
      std::vector<MergeRequestProtocol::Request> reqs;
      for (const auto& [f, owner] : moe)
        reqs.push_back({static_cast<NodeId>(owner.second >> 32),
                        static_cast<std::uint32_t>(owner.second &
                                                   0xffffffffu),
                        f});
      MergeRequestProtocol mr{g, std::move(reqs)};
      sched.run_uncharged(mr);
    }

    // (d) decide merges.  Only TAIL fragments move; HEAD and frozen
    // fragments are immovable, so every merge tree is a star.  Both
    // endpoints of a request edge reach this decision from the same
    // information; the orchestrator computes it once.
    std::vector<MergeFloodProtocol::Seed> seeds;
    std::vector<EdgeId> merge_edges;
    for (const auto& [f, m] : moe) {
      const auto [e, packed] = m;
      const NodeId v = static_cast<NodeId>(packed >> 32);
      const std::uint32_t p = static_cast<std::uint32_t>(packed &
                                                         0xffffffffu);
      const std::uint32_t dir = g.port_offset(v) + p;
      const NodeId target = port_frag[dir];
      bool move = false;
      if (port_frozen[dir]) {
        if (port_sat[dir]) {
          // Saturated absorber: the MST edge is deferred to phase 2 and f
          // permanently stands down (the rare "self-frozen straggler").
          self_frozen[f] = 1;
        } else {
          move = !coin_is_head(phase, f);
        }
      } else {
        move = !coin_is_head(phase, f) && coin_is_head(phase, target);
      }
      if (move) {
        seeds.push_back({v, target, p});
        merge_edges.push_back(e);
      }
    }

    // (e) flood the new fragment ids through the moved fragments.
    {
      MergeFloodProtocol mf{g, p1_ports, seeds};
      sched.run_uncharged(mf);
      for (NodeId v = 0; v < n; ++v) {
        if (mf.new_frag(v) == kNoNode) continue;
        out.fragment_of[v] = mf.new_frag(v);
        frag_parent_port[v] = mf.new_parent(v);
      }
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        const EdgeId e = merge_edges[i];
        out.tree_edge[e] = out.phase1_edge[e] = true;
        const NodeId v = seeds[i].node;
        const std::uint32_t vp = seeds[i].parent_port;
        p1_ports[v].push_back(vp);
        // The absorbing endpoint adds its side of the new tree edge.
        const NodeId u = g.ports(v)[vp].peer;
        for (std::uint32_t q = 0; q < g.degree(u); ++q)
          if (g.ports(u)[q].edge == e) p1_ports[u].push_back(q);
      }
      num_fragments -= seeds.size();
    }

    // (f) census: every member learns its fragment's new size (and hence
    // the frozen/saturated flags the next phase starts from).
    {
      std::vector<CValue> init(n, CValue{1, 0});
      const TreeView forest = frag_forest_view();
      ConvergecastProtocol cc{g, forest, CombineOp::kSum, std::move(init),
                              /*broadcast_result=*/true};
      sched.run_uncharged(cc);
      for (NodeId v = 0; v < n; ++v)
        if (out.fragment_of[v] == v)
          frag_size[v] = static_cast<std::uint32_t>(cc.tree_value(v).w0);
    }

    ++out.superphases;
    sched.charge_barrier();
  }
  out.num_fragments = num_fragments;

  // ---------------------------------------------------------------------
  // Phase 2: pipelined Borůvka over the fragment graph.  Components are
  // tracked by an identical DSU at every node (merge lists are global
  // knowledge after each broadcast), so outgoing-edge tests are local.
  // ---------------------------------------------------------------------
  if (num_fragments > 1) {
    // Final fragment ids per port (one exchange; phase-1 statuses are
    // stale after the last merge wave).  Fragment ids are node ids, so
    // the exchange runs narrow into one flat per-directed-port table.
    std::vector<NodeId> port_frag(g.port_offset(static_cast<NodeId>(n)));
    {
      PairwiseExchangeProtocol::Lists outgoing{g, /*narrow=*/true};
      for (NodeId v = 0; v < n; ++v)
        for (std::uint32_t p = 0; p < g.degree(v); ++p)
          outgoing.add(v, p, Word{out.fragment_of[v]});
      PairwiseExchangeProtocol px{g, std::move(outgoing)};
      sched.run(px);
      for (NodeId v = 0; v < n; ++v) {
        const std::uint32_t base = g.port_offset(v);
        for (std::uint32_t p = 0; p < g.degree(v); ++p)
          port_frag[base + p] =
              static_cast<NodeId>(px.received(v, p).at(0));
      }
    }

    Dsu comp(n);
    std::size_t comps = num_fragments;
    const std::uint32_t kMaxIterations = ceil_log2(n) + 2;
    for (std::uint32_t iter = 0; comps > 1; ++iter) {
      DMC_ASSERT_MSG(iter < kMaxIterations,
                     "Borůvka failed to converge — disconnected graph?");
      std::vector<std::vector<AggItem>> contrib(n);
      for (NodeId v = 0; v < n; ++v) {
        const NodeId c = static_cast<NodeId>(comp.find(out.fragment_of[v]));
        const std::uint32_t base = g.port_offset(v);
        EdgeId best = kNoEdge;
        NodeId best_target = kNoNode;
        for (std::uint32_t p = 0; p < g.degree(v); ++p) {
          if (static_cast<NodeId>(comp.find(port_frag[base + p])) == c)
            continue;
          const EdgeId e = g.ports(v)[p].edge;
          if (best == kNoEdge || keys[e] < keys[best]) {
            best = e;
            best_target = port_frag[base + p];
          }
        }
        if (best != kNoEdge)
          contrib[v].push_back(
              AggItem{c, moe_payload(keys[best], best, best_target)});
      }
      // Only node 0's copy of the broadcast list is read below, so the
      // other n−1 copies need not be stored (messages are unchanged).
      AggOptions opt{AggOp::kMin, /*deliver_all=*/true, false, false};
      opt.keep = [](NodeId v, Word) { return v == 0; };
      AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
      sched.run(bc);

      // Everyone merges the announced component MOEs identically, in key
      // order (items arrive sorted).
      for (const AggItem& it : bc.items(0)) {
        const NodeId c = static_cast<NodeId>(it.key);
        const EdgeId e = static_cast<EdgeId>(it.p[2] >> 32);
        const NodeId target =
            static_cast<NodeId>(it.p[2] & 0xffffffffu);
        if (comp.find(c) == comp.find(target)) {
          // The mutual-MOE pair announced the same edge twice; the first
          // announcement already united them.
          continue;
        }
        comp.unite(c, target);
        --comps;
        out.tree_edge[e] = true;
        const Edge& ed = g.edge(e);
        out.inter_edges.push_back(InterFragmentEdge{
            e, ed.u, ed.v, out.fragment_of[ed.u], out.fragment_of[ed.v]});
      }
    }
  }

  // Sanity: exactly n-1 tree edges on a connected graph.
  std::size_t tree_count = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    tree_count += out.tree_edge[e] ? 1 : 0;
  DMC_ASSERT_MSG(tree_count + 1 == n || n == 0,
                 "distributed MST incomplete: " << tree_count
                                                << " edges for n=" << n);
  return out;
}

}  // namespace dmc
