// Step 1 (fragment structure): the rooted spanning tree T, its (√n, O(√n))
// fragment partition, and the fragment tree T_F as global knowledge.
//
// After ghs_mst every node knows its tree ports and its fragment; this
// module orients T at the leader and materializes what Steps 2–5 consume:
//
//   * t_view / parent_port_T — T rooted at the leader, as parent PORTS;
//   * frag_forest            — the per-fragment forest (fragment roots are
//                              forest roots; all fragments operate
//                              concurrently on disjoint edges);
//   * frag_idx / frag_root_node / frag_parent / frag_parent_eid /
//     tf_depth              — the fragment tree T_F, dense-indexed and
//                              globally known (O(√n) words, broadcast);
//   * depth_in_frag / depth_T / depth_key — depths for chain ordering;
//   * port_frag_idx          — each neighbor's fragment (one exchange).
//
// Construction cost: one O(D + √n) broadcast of the inter-fragment edges,
// one O(√n) intra-fragment orientation flood, one O(1) pairwise exchange,
// and one O(D + √n) broadcast of attachment depths — Õ(√n + D) total.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "dist/ghs_mst.h"
#include "graph/graph.h"

namespace dmc {

inline constexpr std::uint32_t kNoFrag = static_cast<std::uint32_t>(-1);

struct FragmentStructure {
  /// Number of fragments (dense indices 0..k-1, ordered by leader id).
  std::uint32_t k{0};
  /// The root of T (the elected leader).
  NodeId global_root{kNoNode};

  /// T rooted at global_root, and the fragment forest (same edges minus
  /// each fragment root's parent edge).  Local views: parent/children
  /// ports.
  TreeView t_view;
  TreeView frag_forest;

  // --- per-node, locally known ---
  std::vector<std::uint32_t> parent_port_T;  ///< == t_view parent ports
  std::vector<std::uint32_t> frag_idx;
  std::vector<std::uint32_t> depth_in_frag;  ///< hops below fragment root
  std::vector<std::uint32_t> depth_T;        ///< hops below global_root
  /// port_frag_idx[v][p] = fragment of the neighbor across port p.
  std::vector<std::vector<std::uint32_t>> port_frag_idx;

  // --- per-fragment, global knowledge (O(√n) words) ---
  std::vector<NodeId> frag_root_node;
  std::vector<std::uint32_t> frag_parent;  ///< kNoFrag at the root fragment
  std::vector<EdgeId> frag_parent_eid;     ///< attachment edge of non-roots
  std::vector<std::uint32_t> tf_depth;
  /// Euler intervals over T_F for O(1) ancestry.
  std::vector<std::uint32_t> tf_tin, tf_tout;

  [[nodiscard]] bool is_frag_root(NodeId v) const {
    return frag_root_node[frag_idx[v]] == v;
  }

  /// Totally ordered depth key: strictly increasing along every root path
  /// of T, locally computable, and unique (ties broken by id).
  [[nodiscard]] std::uint64_t depth_key(NodeId v) const {
    return (std::uint64_t{depth_T[v]} << 32) | v;
  }

  /// True iff fragment a is an ancestor of b in T_F (a == b counts).
  [[nodiscard]] bool tf_is_ancestor(std::uint32_t a, std::uint32_t b) const {
    return tf_tin[a] <= tf_tin[b] && tf_tout[b] <= tf_tout[a];
  }

  /// All fragments of a's T_F subtree (a first is NOT guaranteed; sorted).
  [[nodiscard]] std::vector<std::uint32_t> tf_subtree(std::uint32_t a) const;

  /// T_F-closure of a fragment set: the union of their subtrees, sorted
  /// and deduplicated.  F(v) = closure(Attach(v)) — locally computable
  /// from the global T_F.
  [[nodiscard]] std::vector<std::uint32_t> closure(
      const std::vector<std::uint32_t>& frags) const;
};

/// Distributed construction from a ghs_mst result: runs the orientation
/// and broadcast protocols on sched's network and charges their rounds.
[[nodiscard]] FragmentStructure build_fragment_structure(
    Schedule& sched, const TreeView& bfs, NodeId leader,
    const DistMstResult& mst);

/// Centralized constructor for tests and worked examples: `tree_edges`
/// must span g, `frag[v]` must be dense fragment ids 0..k-1 forming
/// connected subtrees of the tree rooted at `root` (frag labels are kept
/// as the dense indices).
[[nodiscard]] FragmentStructure make_fragment_structure_centralized(
    const Graph& g, const std::vector<EdgeId>& tree_edges, NodeId root,
    const std::vector<std::uint32_t>& frag);

}  // namespace dmc
