#include "dist/tree_partition.h"

#include <algorithm>
#include <map>

#include "congest/network.h"
#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/pairwise_exchange.h"

namespace dmc {

namespace {

/// Orientation flood: each fragment's T-root announces depth 0 and the
/// wave rolls down the fragment's phase-1 tree; a node's parent port is
/// the port the wave arrived on and its depth-in-fragment is the carried
/// hop count.  All fragments flood concurrently on disjoint edges, so the
/// cost is O(max fragment diameter) = O(√n) rounds.
class OrientFloodProtocol final : public Protocol {
 public:
  struct Seed {
    NodeId node{kNoNode};
    std::uint32_t parent_port{kNoPort};  ///< attachment port (kNoPort at the
                                         ///< global root)
  };

  OrientFloodProtocol(const Graph& g,
                      const std::vector<std::vector<std::uint32_t>>& p1_ports,
                      const std::vector<Seed>& seeds)
      : p1_ports_(&p1_ports),
        started_(g.num_nodes(), 0),
        depth_(g.num_nodes(), kUnset),
        parent_port_(g.num_nodes(), kNoPort) {
    for (const Seed& s : seeds) seed_[s.node] = s.parent_port;
  }

  [[nodiscard]] std::string name() const override { return "orient_flood"; }

  void round(NodeId v, Mailbox& mb) override {
    if (!started_[v]) {
      started_[v] = 1;
      const auto it = seed_.find(v);
      if (it != seed_.end()) {
        depth_[v] = 0;
        parent_port_[v] = it->second;
        for (const std::uint32_t p : (*p1_ports_)[v])
          mb.send(p, Message::make(kTag, {1}));
      }
    }
    for (const Delivery& d : mb.inbox()) {
      DMC_ASSERT_MSG(depth_[v] == kUnset,
                     "orientation flood reached node " << v << " twice");
      depth_[v] = static_cast<std::uint32_t>(d.msg.at(0));
      parent_port_[v] = d.port;
      for (const std::uint32_t p : (*p1_ports_)[v])
        if (p != d.port) mb.send(p, Message::make(kTag, {depth_[v] + 1}));
    }
  }

  [[nodiscard]] bool local_done(NodeId v) const override {
    return started_[v] != 0;
  }

  /// Event-driven audit: same shape as the merge flood — seeds act in the
  /// dense first round, the wave advances by deliveries, idle executions
  /// are no-ops.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: a node adopts the first seed it hears, and on
  /// a tree at most ONE port can deliver a seed in any round (the wave
  /// arrives from the unique parent side), so within-round order never
  /// offers a choice.  Drop kills the wave and dup re-runs a non-
  /// idempotent adoption, so neither is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  [[nodiscard]] std::uint32_t depth(NodeId v) const { return depth_[v]; }
  [[nodiscard]] std::uint32_t parent_port(NodeId v) const {
    return parent_port_[v];
  }

 private:
  static constexpr std::uint32_t kTag = 0x6f66;  // "of"
  static constexpr std::uint32_t kUnset = static_cast<std::uint32_t>(-1);
  const std::vector<std::vector<std::uint32_t>>* p1_ports_;
  std::map<NodeId, std::uint32_t> seed_;
  std::vector<std::uint8_t> started_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> parent_port_;
};

/// Assembles every derived field of a FragmentStructure from the per-node
/// quantities the protocols (or the centralized oracle) produced.  Pure
/// local computation over global knowledge — charges nothing.
FragmentStructure finalize(const Graph& g, NodeId root, std::uint32_t k,
                           std::vector<std::uint32_t> frag_idx,
                           std::vector<std::uint32_t> parent_port,
                           std::vector<std::uint32_t> depth_in_frag,
                           std::vector<std::uint32_t> depth_T,
                           std::vector<NodeId> frag_root_node,
                           std::vector<std::uint32_t> frag_parent,
                           std::vector<EdgeId> frag_parent_eid,
                           std::vector<std::vector<std::uint32_t>>
                               port_frag_idx) {
  const std::size_t n = g.num_nodes();
  FragmentStructure fs;
  fs.k = k;
  fs.global_root = root;
  fs.frag_idx = std::move(frag_idx);
  fs.parent_port_T = parent_port;
  fs.depth_in_frag = std::move(depth_in_frag);
  fs.depth_T = std::move(depth_T);
  fs.frag_root_node = std::move(frag_root_node);
  fs.frag_parent = std::move(frag_parent);
  fs.frag_parent_eid = std::move(frag_parent_eid);
  fs.port_frag_idx = std::move(port_frag_idx);

  // T and the fragment forest as local tree views.
  fs.t_view = TreeView::from_parent_ports(g, parent_port);
  std::vector<std::uint32_t> forest_pp = std::move(parent_port);
  for (NodeId v = 0; v < n; ++v)
    if (fs.frag_root_node[fs.frag_idx[v]] == v) forest_pp[v] = kNoPort;
  fs.frag_forest = TreeView::from_parent_ports(g, std::move(forest_pp));

  // T_F depths and Euler intervals (iterative DFS, children in dense
  // order for determinism).
  std::vector<std::vector<std::uint32_t>> tf_children(fs.k);
  std::uint32_t tf_root = kNoFrag;
  for (std::uint32_t f = 0; f < fs.k; ++f) {
    if (fs.frag_parent[f] == kNoFrag)
      tf_root = f;
    else
      tf_children[fs.frag_parent[f]].push_back(f);
  }
  DMC_ASSERT(tf_root != kNoFrag);
  fs.tf_depth.assign(fs.k, 0);
  fs.tf_tin.assign(fs.k, 0);
  fs.tf_tout.assign(fs.k, 0);
  std::uint32_t clock = 0;
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{tf_root, 0}};
  while (!stack.empty()) {
    auto& [f, child] = stack.back();
    if (child == 0) fs.tf_tin[f] = clock++;
    if (child < tf_children[f].size()) {
      const std::uint32_t c = tf_children[f][child++];
      fs.tf_depth[c] = fs.tf_depth[f] + 1;
      stack.emplace_back(c, 0);
    } else {
      fs.tf_tout[f] = clock;
      stack.pop_back();
    }
  }
  DMC_ASSERT_MSG(clock == fs.k, "T_F is not a single tree");
  return fs;
}

}  // namespace

std::vector<std::uint32_t> FragmentStructure::tf_subtree(
    std::uint32_t a) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t f = 0; f < k; ++f)
    if (tf_is_ancestor(a, f)) out.push_back(f);
  return out;
}

std::vector<std::uint32_t> FragmentStructure::closure(
    const std::vector<std::uint32_t>& frags) const {
  std::vector<std::uint32_t> out;
  for (const std::uint32_t f : frags)
    for (std::uint32_t s = 0; s < k; ++s)
      if (tf_is_ancestor(f, s)) out.push_back(s);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FragmentStructure build_fragment_structure(Schedule& sched,
                                           const TreeView& bfs,
                                           NodeId leader,
                                           const DistMstResult& mst) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(mst.fragment_of.size() == n);

  // --- (1) make the fragment tree global: broadcast the O(√n) inter-
  //     fragment edges over the BFS tree ---
  {
    std::vector<std::vector<AggItem>> contrib(n);
    for (const InterFragmentEdge& ie : mst.inter_edges) {
      const NodeId announcer = std::min(ie.node_a, ie.node_b);
      contrib[announcer].push_back(
          AggItem{ie.eid,
                  {ie.node_a, ie.node_b,
                   (Word{ie.frag_a} << 32) | ie.frag_b}});
    }
    // The rounds/messages are what this broadcast is charged for; no node
    // re-reads the delivered copies (the orchestrator works from
    // mst.inter_edges below), so nothing needs to be retained.
    AggOptions opt{AggOp::kUnique, /*deliver_all=*/true, false, false};
    opt.keep = [](NodeId, Word) { return false; };
    AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
    sched.run(bc);
  }
  // Every node now derives the same global picture; the orchestrator
  // computes it once from the same broadcast data.
  std::vector<NodeId> frag_leaders;
  for (NodeId v = 0; v < n; ++v)
    if (mst.fragment_of[v] == v) frag_leaders.push_back(v);
  std::sort(frag_leaders.begin(), frag_leaders.end());
  const std::uint32_t k = static_cast<std::uint32_t>(frag_leaders.size());
  DMC_ASSERT(k == mst.num_fragments);
  const auto dense = [&](NodeId leader_id) {
    const auto it = std::lower_bound(frag_leaders.begin(),
                                     frag_leaders.end(), leader_id);
    DMC_ASSERT(it != frag_leaders.end() && *it == leader_id);
    return static_cast<std::uint32_t>(it - frag_leaders.begin());
  };

  std::vector<std::uint32_t> frag_idx(n);
  for (NodeId v = 0; v < n; ++v) frag_idx[v] = dense(mst.fragment_of[v]);

  // Root T_F at the leader's fragment and orient every inter edge.
  const std::uint32_t root_frag = frag_idx[leader];
  std::vector<std::vector<std::pair<std::uint32_t, std::size_t>>> tf_adj(k);
  for (std::size_t i = 0; i < mst.inter_edges.size(); ++i) {
    const InterFragmentEdge& ie = mst.inter_edges[i];
    tf_adj[dense(ie.frag_a)].emplace_back(dense(ie.frag_b), i);
    tf_adj[dense(ie.frag_b)].emplace_back(dense(ie.frag_a), i);
  }
  std::vector<std::uint32_t> frag_parent(k, kNoFrag);
  std::vector<EdgeId> frag_parent_eid(k, kNoEdge);
  std::vector<NodeId> frag_root_node(k, kNoNode);
  frag_root_node[root_frag] = leader;
  {
    std::vector<std::uint8_t> seen(k, 0);
    std::vector<std::uint32_t> queue{root_frag};
    seen[root_frag] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t f = queue[head];
      for (const auto& [child, i] : tf_adj[f]) {
        if (seen[child]) continue;
        seen[child] = 1;
        const InterFragmentEdge& ie = mst.inter_edges[i];
        frag_parent[child] = f;
        frag_parent_eid[child] = ie.eid;
        frag_root_node[child] =
            dense(ie.frag_a) == child ? ie.node_a : ie.node_b;
        queue.push_back(child);
      }
    }
    DMC_ASSERT_MSG(queue.size() == k, "fragment tree is disconnected");
  }

  // --- (2) orient every fragment from its T-root over phase-1 edges ---
  std::vector<std::vector<std::uint32_t>> p1_ports(n);
  for (NodeId v = 0; v < n; ++v)
    for (std::uint32_t p = 0; p < g.degree(v); ++p)
      if (mst.phase1_edge[g.ports(v)[p].edge]) p1_ports[v].push_back(p);

  std::vector<std::uint32_t> parent_port(n, kNoPort);
  std::vector<std::uint32_t> depth_in_frag(n, 0);
  {
    std::vector<OrientFloodProtocol::Seed> seeds;
    for (std::uint32_t f = 0; f < k; ++f) {
      const NodeId r = frag_root_node[f];
      std::uint32_t attach = kNoPort;
      if (f != root_frag) {
        for (std::uint32_t p = 0; p < g.degree(r); ++p)
          if (g.ports(r)[p].edge == frag_parent_eid[f]) attach = p;
        DMC_ASSERT(attach != kNoPort);
      }
      seeds.push_back({r, attach});
    }
    OrientFloodProtocol flood{g, p1_ports, seeds};
    sched.run(flood);
    for (NodeId v = 0; v < n; ++v) {
      DMC_ASSERT_MSG(flood.depth(v) != static_cast<std::uint32_t>(-1),
                     "fragment of node " << v << " not spanned by phase-1 "
                                            "edges");
      parent_port[v] = flood.parent_port(v);
      depth_in_frag[v] = flood.depth(v);
    }
  }

  // --- (3) neighbors' fragments: one pairwise exchange ---
  std::vector<std::vector<std::uint32_t>> port_frag_idx(n);
  {
    PairwiseExchangeProtocol::Lists outgoing{g, /*narrow=*/true};
    for (NodeId v = 0; v < n; ++v)
      for (std::uint32_t p = 0; p < g.degree(v); ++p)
        outgoing.add(v, p, Word{frag_idx[v]});
    PairwiseExchangeProtocol px{g, std::move(outgoing)};
    sched.run(px);
    for (NodeId v = 0; v < n; ++v) {
      port_frag_idx[v].resize(g.degree(v));
      for (std::uint32_t p = 0; p < g.degree(v); ++p)
        port_frag_idx[v][p] =
            static_cast<std::uint32_t>(px.received(v, p).at(0));
    }
  }

  // --- (4) global depths: broadcast each attachment's depth within the
  //     parent fragment, then base offsets accumulate down T_F ---
  std::vector<std::uint32_t> depth_T(n, 0);
  {
    std::vector<std::vector<AggItem>> contrib(n);
    for (std::uint32_t f = 0; f < k; ++f) {
      if (f == root_frag) continue;
      const NodeId child_end = frag_root_node[f];
      const Edge& e = g.edge(frag_parent_eid[f]);
      const NodeId parent_end = e.u == child_end ? e.v : e.u;
      contrib[parent_end].push_back(
          AggItem{f, {depth_in_frag[parent_end], 0, 0}});
    }
    // Only the orchestrator's copy (node 0) is consulted below.
    AggOptions opt{AggOp::kUnique, /*deliver_all=*/true, false, false};
    opt.keep = [](NodeId v, Word) { return v == 0; };
    AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
    sched.run(bc);

    std::vector<std::uint32_t> base(k, 0);
    const auto& items = bc.items(0);
    const auto attach_depth = [&](std::uint32_t f) -> std::uint32_t {
      const auto it = std::lower_bound(
          items.begin(), items.end(), Word{f},
          [](const AggItem& a, Word key) { return a.key < key; });
      DMC_ASSERT(it != items.end() && it->key == f);
      return static_cast<std::uint32_t>(it->p[0]);
    };
    // Process fragments by increasing T_F depth via BFS from the root.
    std::vector<std::vector<std::uint32_t>> children(k);
    for (std::uint32_t f = 0; f < k; ++f)
      if (frag_parent[f] != kNoFrag) children[frag_parent[f]].push_back(f);
    std::vector<std::uint32_t> queue{root_frag};
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t f = queue[head];
      for (const std::uint32_t c : children[f]) {
        base[c] = base[f] + attach_depth(c) + 1;
        queue.push_back(c);
      }
    }
    for (NodeId v = 0; v < n; ++v)
      depth_T[v] = base[frag_idx[v]] + depth_in_frag[v];
  }

  return finalize(g, leader, k, std::move(frag_idx), std::move(parent_port),
                  std::move(depth_in_frag), std::move(depth_T),
                  std::move(frag_root_node), std::move(frag_parent),
                  std::move(frag_parent_eid), std::move(port_frag_idx));
}

FragmentStructure make_fragment_structure_centralized(
    const Graph& g, const std::vector<EdgeId>& tree_edges, NodeId root,
    const std::vector<std::uint32_t>& frag) {
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(frag.size() == n);
  DMC_REQUIRE(tree_edges.size() + 1 == n);

  // Orient the tree at `root` (BFS over tree edges).
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(n);
  for (const EdgeId e : tree_edges) {
    adj[g.edge(e).u].emplace_back(g.edge(e).v, e);
    adj[g.edge(e).v].emplace_back(g.edge(e).u, e);
  }
  std::vector<NodeId> parent(n, kNoNode);
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  std::vector<std::uint32_t> depth_T(n, 0);
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<NodeId> queue{root};
  seen[root] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    for (const auto& [u, e] : adj[v]) {
      if (seen[u]) continue;
      seen[u] = 1;
      parent[u] = v;
      parent_edge[u] = e;
      depth_T[u] = depth_T[v] + 1;
      queue.push_back(u);
    }
  }
  DMC_REQUIRE_MSG(queue.size() == n, "tree_edges do not span the graph");

  const std::uint32_t k =
      1 + *std::max_element(frag.begin(), frag.end());
  // Fragment roots: the unique shallowest member of each fragment.
  std::vector<NodeId> frag_root_node(k, kNoNode);
  for (NodeId v = 0; v < n; ++v) {
    NodeId& r = frag_root_node[frag[v]];
    if (r == kNoNode || depth_T[v] < depth_T[r]) r = v;
  }
  std::vector<std::uint32_t> frag_parent(k, kNoFrag);
  std::vector<EdgeId> frag_parent_eid(k, kNoEdge);
  for (std::uint32_t f = 0; f < k; ++f) {
    const NodeId r = frag_root_node[f];
    DMC_REQUIRE_MSG(r != kNoNode, "empty fragment " << f);
    if (r == root) continue;
    DMC_REQUIRE_MSG(frag[parent[r]] != f,
                    "fragment " << f << " has no unique root");
    frag_parent[f] = frag[parent[r]];
    frag_parent_eid[f] = parent_edge[r];
  }

  std::vector<std::uint32_t> depth_in_frag(n, 0);
  for (const NodeId v : queue) {  // BFS order: parents before children
    if (v == root) continue;
    DMC_REQUIRE_MSG(frag[v] == frag[parent[v]] ||
                        v == frag_root_node[frag[v]],
                    "fragment " << frag[v] << " is not a contiguous "
                                              "subtree");
    depth_in_frag[v] = v == frag_root_node[frag[v]]
                           ? 0
                           : depth_in_frag[parent[v]] + 1;
  }

  // Parent ports and neighbor fragments.
  std::vector<std::uint32_t> parent_port(n, kNoPort);
  std::vector<std::vector<std::uint32_t>> port_frag_idx(n);
  for (NodeId v = 0; v < n; ++v) {
    port_frag_idx[v].resize(g.degree(v));
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      port_frag_idx[v][p] = frag[g.ports(v)[p].peer];
      if (v != root && g.ports(v)[p].edge == parent_edge[v])
        parent_port[v] = p;
    }
  }

  return finalize(g, root, k, std::vector<std::uint32_t>(frag),
                  std::move(parent_port), std::move(depth_in_frag),
                  std::move(depth_T), std::move(frag_root_node),
                  std::move(frag_parent), std::move(frag_parent_eid),
                  std::move(port_frag_idx));
}

}  // namespace dmc
