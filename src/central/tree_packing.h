// Thorup's greedy tree packing [Tho07, Theorem 9], centralized version.
//
// Generate T₁, T₂, …  where Tᵢ is a minimum spanning tree with respect to
// the loads induced by {T₁,…,Tᵢ₋₁} (load(e) = #previous trees containing e,
// relative to w(e)).  Thorup shows that with Θ(λ⁷ log³ n) trees, some tree
// contains exactly one edge of the minimum cut — so the min-1-respecting
// cut over all packed trees equals λ.  Experiment E5 measures how many
// trees are needed in practice (far fewer).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/mst.h"

namespace dmc {

class GreedyTreePacking {
 public:
  explicit GreedyTreePacking(const Graph& g);

  /// Generates and returns the next tree of the packing (n-1 edge ids).
  const std::vector<EdgeId>& next_tree();

  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] const std::vector<EdgeId>& tree(std::size_t i) const {
    DMC_REQUIRE(i < trees_.size());
    return trees_[i];
  }
  [[nodiscard]] const std::vector<std::uint64_t>& loads() const {
    return loads_;
  }

  /// Thorup's sufficient tree count for exactness (astronomically
  /// conservative; exposed for the E5 comparison).
  [[nodiscard]] static std::uint64_t thorup_tree_bound(Weight lambda,
                                                       std::size_t n);

 private:
  const Graph* g_;
  std::vector<std::uint64_t> loads_;
  std::vector<std::vector<EdgeId>> trees_;
};

}  // namespace dmc
