// Karger–Stein recursive contraction: randomized exact minimum cut with
// high probability; a classical baseline (the paper's exact algorithm is a
// distributed descendant of Karger's line of work).
#pragma once

#include <cstdint>

#include "graph/cut.h"
#include "graph/graph.h"

namespace dmc {

/// Runs `trials` independent recursive-contraction attempts and returns the
/// best cut found.  With trials = Θ(log² n) the result is the true minimum
/// cut with high probability.
[[nodiscard]] CutResult karger_stein_min_cut(const Graph& g,
                                             std::uint64_t seed,
                                             std::size_t trials = 0);

/// One plain Karger contraction down to 2 super-nodes (success prob ~ 2/n²)
/// — exposed for tests of the contraction machinery.
[[nodiscard]] CutResult karger_single_contraction(const Graph& g,
                                                  std::uint64_t seed);

}  // namespace dmc
