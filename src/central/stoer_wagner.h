// Stoer–Wagner global minimum cut (exact, deterministic, O(n³)).
//
// This is the library's ground-truth oracle: every distributed result is
// verified against it in tests and experiments.  The maximum-adjacency
// ordering it performs is also the core of Nagamochi–Ibaraki certificates
// (see matula.h).
#pragma once

#include "graph/cut.h"
#include "graph/graph.h"

namespace dmc {

/// Exact minimum cut value and one side achieving it.
/// Requires a connected graph with n ≥ 2; O(n³) time, O(n²) memory —
/// guarded to n ≤ 4096.
[[nodiscard]] CutResult stoer_wagner_min_cut(const Graph& g);

}  // namespace dmc
