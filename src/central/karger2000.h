// Karger's randomized near-linear exact minimum cut [JACM 2000], laptop
// edition: sample a skeleton so its packing value is Θ(log n), greedily
// pack Θ(log n) trees OF THE SKELETON, and take the best cut that 1- or
// 2-respects any of them, evaluated with ORIGINAL weights.  Karger's
// Theorem 4.1: w.h.p. the true minimum cut 2-respects one of the packed
// trees, so the result is exact w.h.p.
//
// This is the centralized counterpart of what the paper's line of work
// later achieved distributively (2-respect in CONGEST), and serves here as
// (a) a second independent exact oracle and (b) the reference point for
// how few trees 2-respect needs versus 1-respect's poly(λ) (experiment
// E5's extension).
#pragma once

#include <cstdint>

#include "graph/cut.h"
#include "graph/graph.h"

namespace dmc {

struct Karger2000Result {
  CutResult cut;
  std::size_t trees_packed{0};
  bool used_two_respect{false};  ///< witness needed a second tree edge
  double p{1.0};
};

[[nodiscard]] Karger2000Result karger2000_min_cut(const Graph& g,
                                                  std::uint64_t seed,
                                                  std::size_t trees = 0);

}  // namespace dmc
