// Minimum cut that 2-RESPECTS a spanning tree (Karger [JACM 2000], §5):
// cuts whose edge set intersects the tree in at most TWO edges.  This is
// the paper's natural extension: with 2-respect, a greedy packing of only
// Θ(log n) sampled trees contains a witness for the EXACT minimum cut
// (versus poly(λ) trees for 1-respect) — the route taken by the follow-up
// work (e.g. Mukhopadhyay–Nanongkai, STOC 2020, in the distributed
// setting).
//
// For tree edges identified with their lower endpoints v, w:
//   * comparable   (v strictly below w):  X = w↓ ∖ v↓,
//       C(X) = C(v↓) + C(w↓) − 2·xcut(v, w),
//       xcut = weight of edges joining v↓ with V ∖ w↓;
//   * incomparable (disjoint subtrees):   X = v↓ ∪ w↓,
//       C(X) = C(v↓) + C(w↓) − 2·between(v, w),
//       between = weight of edges joining v↓ with w↓.
//
// This implementation is the O(n² + m·h²) verification oracle used by
// tests and the sampled exact algorithm below laptop scale; Karger's
// link-cut-tree speedups are out of scope.
#pragma once

#include <vector>

#include "graph/cut.h"
#include "graph/graph.h"
#include "graph/tree.h"

namespace dmc {

struct TwoRespectResult {
  Weight value{0};
  NodeId v{kNoNode};       ///< first tree edge (lower endpoint)
  NodeId w{kNoNode};       ///< second tree edge, or kNoNode if 1-respecting
  std::vector<bool> side;  ///< the achieving cut side
};

/// Minimum over all cuts 1- or 2-respecting the rooted tree.
[[nodiscard]] TwoRespectResult two_respect_min_cut(const Graph& g,
                                                   const RootedTree& t);

}  // namespace dmc
