#include "central/karger2000.h"

#include <cmath>

#include "central/skeleton.h"
#include "central/tree_packing.h"
#include "central/two_respect_dp.h"
#include "graph/algorithms.h"
#include "graph/tree.h"
#include "util/bit_math.h"
#include "util/prng.h"

namespace dmc {

Karger2000Result karger2000_min_cut(const Graph& g, std::uint64_t seed,
                                    std::size_t trees) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  const std::size_t n = g.num_nodes();
  if (trees == 0)
    trees = 6 * std::max<std::size_t>(1, ceil_log2(n));

  // Guess λ from above and sample down to a Θ(log n)-cut skeleton; retry
  // with a smaller guess whenever the skeleton shatters.
  Weight lambda_hat = g.min_weighted_degree();
  const double target = 6.0 * std::log(static_cast<double>(n));

  for (int attempt = 0; attempt < 64; ++attempt) {
    const double p = std::min(
        1.0, target / std::max<double>(1.0, static_cast<double>(lambda_hat)));
    const Skeleton sk =
        sample_skeleton(g, p, derive_seed(seed, 0x6b32ull, attempt));
    if (!is_connected(sk.graph)) {
      lambda_hat = std::max<Weight>(1, lambda_hat / 4);
      continue;
    }

    GreedyTreePacking packing{sk.graph};
    Karger2000Result out;
    out.p = p;
    out.cut.value = static_cast<Weight>(-1);
    for (std::size_t i = 0; i < trees; ++i) {
      const std::vector<EdgeId>& sk_edges = packing.next_tree();
      std::vector<EdgeId> orig(sk_edges.size());
      for (std::size_t j = 0; j < sk_edges.size(); ++j)
        orig[j] = sk.to_original[sk_edges[j]];
      const RootedTree tree = RootedTree::from_edges(g, orig, 0);
      const TwoRespectResult r = two_respect_min_cut(g, tree);
      ++out.trees_packed;
      if (r.value < out.cut.value) {
        out.cut.value = r.value;
        out.cut.side = r.side;
        out.used_two_respect = r.w != kNoNode;
      }
    }
    DMC_ASSERT(is_nontrivial(out.cut.side));
    return out;
  }
  throw InvariantError{"karger2000: skeleton guess loop did not converge"};
}

}  // namespace dmc
