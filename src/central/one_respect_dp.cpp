#include "central/one_respect_dp.h"

namespace dmc {

OneRespectValues one_respect_dp(const Graph& g, const RootedTree& t) {
  DMC_REQUIRE(g.num_nodes() == t.num_nodes());
  const std::size_t n = g.num_nodes();
  OneRespectValues out;
  out.delta.assign(n, 0);
  out.rho.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) out.delta[v] = g.weighted_degree(v);
  for (const Edge& e : g.edges()) out.rho[t.lca(e.u, e.v)] += e.w;
  out.delta_down = t.subtree_sum(out.delta);
  out.rho_down = t.subtree_sum(out.rho);
  out.cut_down.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    DMC_ASSERT_MSG(out.delta_down[v] >= 2 * out.rho_down[v],
                   "Karger identity underflow at node " << v);
    out.cut_down[v] = out.delta_down[v] - 2 * out.rho_down[v];
  }
  return out;
}

Weight OneRespectValues::min_cut(const RootedTree& t, NodeId* argmin) const {
  Weight best = static_cast<Weight>(-1);
  NodeId arg = kNoNode;
  for (NodeId v = 0; v < cut_down.size(); ++v) {
    if (v == t.root()) continue;  // C(root↓) == 0 is the trivial cut
    if (cut_down[v] < best) {
      best = cut_down[v];
      arg = v;
    }
  }
  DMC_ASSERT(arg != kNoNode);
  if (argmin) *argmin = arg;
  return best;
}

}  // namespace dmc
