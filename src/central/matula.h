// Matula-style (2+ε) minimum-cut approximation via Nagamochi–Ibaraki sparse
// certificates.
//
// This is the *quality* baseline for the (2+ε) class of algorithms the paper
// improves on (Ghaffari–Kuhn [DISC'13] carry the same guarantee).  The
// algorithm repeatedly: takes δ = current minimum weighted degree as a cut
// candidate, computes a k-certificate with k = ⌈δ/(2+ε)⌉ via a
// maximum-adjacency scan, contracts every non-certificate edge (cuts of
// value < k all survive), and recurses.  At the first stage whose
// contraction destroys the original minimum cut, λ ≥ k ≥ δ/(2+ε) holds, so
// the returned value ≤ δ ≤ (2+ε)·λ.
#pragma once

#include "graph/cut.h"
#include "graph/graph.h"

namespace dmc {

struct MatulaResult {
  Weight value{0};         ///< candidate cut value, λ ≤ value ≤ (2+ε)λ
  std::vector<bool> side;  ///< a cut achieving `value`
  std::size_t contraction_rounds{0};
};

[[nodiscard]] MatulaResult matula_approx_min_cut(const Graph& g, double eps);

/// The Nagamochi–Ibaraki k-certificate of g: keep[e] == true for edges in
/// the certificate.  Every cut of value < k retains all its edges.
[[nodiscard]] std::vector<bool> ni_certificate(const Graph& g, Weight k);

}  // namespace dmc
