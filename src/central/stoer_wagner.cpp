#include "central/stoer_wagner.h"

#include <algorithm>
#include <vector>

namespace dmc {

CutResult stoer_wagner_min_cut(const Graph& g) {
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(n >= 2);
  DMC_REQUIRE_MSG(n <= 4096, "stoer_wagner guarded to n ≤ 4096 (O(n²) memory)");

  // Dense symmetric weight matrix; parallel edges collapse by summation
  // (cut values are unaffected).
  std::vector<std::vector<Weight>> w(n, std::vector<Weight>(n, 0));
  for (const Edge& e : g.edges()) {
    w[e.u][e.v] += e.w;
    w[e.v][e.u] += e.w;
  }

  // merged_into[v]: the set of original nodes currently contracted into v.
  std::vector<std::vector<NodeId>> group(n);
  for (NodeId v = 0; v < n; ++v) group[v] = {v};

  std::vector<bool> dead(n, false);
  CutResult best;
  best.value = static_cast<Weight>(-1);

  for (std::size_t phase = 0; phase + 1 < n; ++phase) {
    // Maximum-adjacency order over alive super-nodes.
    std::vector<Weight> conn(n, 0);
    std::vector<bool> added(n, false);
    NodeId prev = kNoNode, last = kNoNode;
    const std::size_t alive = n - phase;
    for (std::size_t step = 0; step < alive; ++step) {
      NodeId pick = kNoNode;
      for (NodeId v = 0; v < n; ++v) {
        if (dead[v] || added[v]) continue;
        if (pick == kNoNode || conn[v] > conn[pick]) pick = v;
      }
      DMC_ASSERT(pick != kNoNode);
      added[pick] = true;
      prev = last;
      last = pick;
      for (NodeId v = 0; v < n; ++v)
        if (!dead[v] && !added[v]) conn[v] += w[pick][v];
    }

    // "Cut of the phase": C({last's group}).
    const Weight phase_cut = conn[last];
    if (phase_cut < best.value) {
      best.value = phase_cut;
      best.side.assign(n, false);
      for (const NodeId orig : group[last]) best.side[orig] = true;
    }

    // Contract last into prev.
    DMC_ASSERT(prev != kNoNode && prev != last);
    for (NodeId v = 0; v < n; ++v) {
      if (dead[v] || v == prev || v == last) continue;
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
    w[prev][last] = w[last][prev] = 0;
    dead[last] = true;
    group[prev].insert(group[prev].end(), group[last].begin(),
                       group[last].end());
    group[last].clear();
  }

  DMC_ASSERT(is_nontrivial(best.side));
  return best;
}

}  // namespace dmc
