// Karger's dynamic program for cuts that 1-respect a spanning tree
// (Lemma 5.9 of [Kar00]; Lemma 2.2 of the paper):
//
//     C(v↓) = δ↓(v) − 2·ρ↓(v)
//
// where δ↓(v) sums the weighted degrees inside the subtree v↓ and ρ↓(v) sums
// over u ∈ v↓ the weight ρ(u) of edges whose endpoint-LCA is u.
//
// This sequential oracle verifies, node by node, everything the distributed
// Steps 1–5 compute.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/tree.h"

namespace dmc {

struct OneRespectValues {
  std::vector<Weight> delta;       ///< δ(v): weighted degree
  std::vector<Weight> rho;         ///< ρ(v): weight of edges with LCA v
  std::vector<Weight> delta_down;  ///< δ↓(v)
  std::vector<Weight> rho_down;    ///< ρ↓(v)
  std::vector<Weight> cut_down;    ///< C(v↓) = δ↓(v) − 2ρ↓(v)

  /// Minimum over non-root nodes (the root's "cut" is the trivial ∅ / V).
  [[nodiscard]] Weight min_cut(const RootedTree& t, NodeId* argmin) const;
};

/// Computes all per-node quantities in O(m log n + n).
[[nodiscard]] OneRespectValues one_respect_dp(const Graph& g,
                                              const RootedTree& t);

}  // namespace dmc
