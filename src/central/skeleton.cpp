#include "central/skeleton.h"

#include <cmath>

#include "util/prng.h"

namespace dmc {

Weight sampled_edge_weight(Weight w, double p, std::uint64_t seed,
                           EdgeId edge) {
  if (p >= 1.0) return w;
  Prng rng{derive_seed(seed, 0x736bull, edge)};
  return rng.next_binomial(w, p);
}

Skeleton sample_skeleton(const Graph& g, double p, std::uint64_t seed) {
  DMC_REQUIRE(p > 0.0 && p <= 1.0);
  Skeleton s;
  s.p = p;
  s.graph = Graph{g.num_nodes()};
  s.sampled_w.assign(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Weight kept = sampled_edge_weight(g.edge(e).w, p, seed, e);
    s.sampled_w[e] = kept;
    if (kept == 0) continue;
    s.graph.add_edge(g.edge(e).u, g.edge(e).v, kept);
    s.to_original.push_back(e);
  }
  return s;
}

double skeleton_probability(std::size_t n, double eps, Weight lambda_hat) {
  DMC_REQUIRE(n >= 2 && eps > 0.0 && lambda_hat >= 1);
  const double p =
      3.0 * std::log(static_cast<double>(n)) /
      (eps * eps * static_cast<double>(lambda_hat));
  return std::min(1.0, p);
}

}  // namespace dmc
