#include "central/two_respect_dp.h"

#include "central/one_respect_dp.h"

namespace dmc {

TwoRespectResult two_respect_min_cut(const Graph& g, const RootedTree& t) {
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(n >= 2);
  DMC_REQUIRE_MSG(n <= 1024, "two_respect_dp guarded to n ≤ 1024 (O(n²))");

  const OneRespectValues one = one_respect_dp(g, t);

  // between[v][w]: weight of edges joining v↓ and w↓ for INCOMPARABLE v,w;
  // xcut[v][w]: weight of edges joining v↓ and V∖w↓ for v strictly below w.
  // Accumulated per edge over its endpoints' ancestor chains: an edge
  // (x,y) with LCA z joins a↓ and b↓ exactly when a is on x's chain below
  // z and b on y's chain below z (incomparable case), and leaves w↓ when
  // exactly one endpoint lies inside w↓ (comparable case handled via the
  // same chains against ancestors above z).
  std::vector<std::vector<Weight>> between(n, std::vector<Weight>(n, 0));
  std::vector<std::vector<Weight>> xcut(n, std::vector<Weight>(n, 0));

  const auto chain_below = [&](NodeId x, NodeId z) {
    std::vector<NodeId> c;
    for (NodeId u = x; u != z; u = t.parent(u)) c.push_back(u);
    return c;  // x … child-of-z (empty if x == z)
  };

  for (const Edge& e : g.edges()) {
    const NodeId z = t.lca(e.u, e.v);
    const auto cu = chain_below(e.u, z);
    const auto cv = chain_below(e.v, z);
    // Incomparable (a, b): the edge joins a↓ and b↓ iff a is an ancestor
    // of one endpoint and b of the other, both strictly below the LCA.
    for (const NodeId a : cu)
      for (const NodeId b : cv) {
        between[a][b] += e.w;
        between[b][a] += e.w;
      }
    // Comparable (a below w): the edge joins a↓ with V∖w↓ iff one endpoint
    // is below a and the other is NOT below w — i.e. both a and w sit on
    // the same endpoint's chain strictly below the LCA (the other endpoint
    // then branches off at the LCA, outside w↓).
    for (const NodeId a : cu)
      for (const NodeId w : cu)
        if (w != a && t.is_ancestor(w, a)) xcut[a][w] += e.w;
    for (const NodeId a : cv)
      for (const NodeId w : cv)
        if (w != a && t.is_ancestor(w, a)) xcut[a][w] += e.w;
  }

  TwoRespectResult best;
  best.value = static_cast<Weight>(-1);
  const auto consider = [&](Weight val, NodeId v, NodeId w) {
    if (val >= best.value) return;
    best.value = val;
    best.v = v;
    best.w = w;
  };

  // 1-respecting candidates.
  for (NodeId v = 0; v < n; ++v) {
    if (v == t.root()) continue;
    consider(one.cut_down[v], v, kNoNode);
  }
  // 2-respecting candidates.
  for (NodeId v = 0; v < n; ++v) {
    if (v == t.root()) continue;
    for (NodeId w = 0; w < n; ++w) {
      if (w == t.root() || w == v) continue;
      if (t.is_ancestor(w, v)) {
        // comparable: X = w↓ ∖ v↓ (nonempty since v ≠ w)
        const Weight val =
            one.cut_down[v] + one.cut_down[w] - 2 * xcut[v][w];
        consider(val, v, w);
      } else if (!t.is_ancestor(v, w) && v < w) {
        // incomparable: X = v↓ ∪ w↓ (v < w avoids double counting)
        const Weight val =
            one.cut_down[v] + one.cut_down[w] - 2 * between[v][w];
        consider(val, v, w);
      }
    }
  }

  // Materialize the side.
  best.side.assign(n, false);
  if (best.w == kNoNode) {
    for (NodeId u = 0; u < n; ++u) best.side[u] = t.is_ancestor(best.v, u);
  } else if (t.is_ancestor(best.w, best.v)) {
    for (NodeId u = 0; u < n; ++u)
      best.side[u] =
          t.is_ancestor(best.w, u) && !t.is_ancestor(best.v, u);
  } else {
    for (NodeId u = 0; u < n; ++u)
      best.side[u] = t.is_ancestor(best.v, u) || t.is_ancestor(best.w, u);
  }
  DMC_ASSERT(is_nontrivial(best.side));
  DMC_ASSERT_MSG(cut_value(g, best.side) == best.value,
                 "2-respect identity mismatch");
  return best;
}

}  // namespace dmc
