#include "central/mincut_central.h"

#include <cmath>

#include "central/one_respect_dp.h"
#include "central/skeleton.h"
#include "central/tree_packing.h"
#include "graph/algorithms.h"
#include "graph/mst.h"
#include "graph/tree.h"
#include "util/bit_math.h"
#include "util/prng.h"

namespace dmc {

PackingMinCutResult packing_min_cut(const Graph& g, const PackingOptions& opt) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  DMC_REQUIRE(opt.max_trees >= 1);
  GreedyTreePacking packing{g};
  PackingMinCutResult out;
  out.cut.value = static_cast<Weight>(-1);
  std::size_t since_improvement = 0;
  for (std::size_t i = 0; i < opt.max_trees; ++i) {
    const std::vector<EdgeId>& edges = packing.next_tree();
    const RootedTree tree = RootedTree::from_edges(g, edges, /*root=*/0);
    const OneRespectValues vals = one_respect_dp(g, tree);
    NodeId arg = kNoNode;
    const Weight best_here = vals.min_cut(tree, &arg);
    ++out.trees_packed;
    if (best_here < out.cut.value) {
      out.cut.value = best_here;
      out.cut.side = subtree_side(tree, arg);
      out.tree_of_best = i;
      since_improvement = 0;
    } else if (opt.patience > 0 && ++since_improvement >= opt.patience) {
      break;
    }
  }
  DMC_ASSERT(is_nontrivial(out.cut.side));
  return out;
}

ApproxMinCutResult approx_min_cut_central(const Graph& g, double eps,
                                          std::uint64_t seed) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  DMC_REQUIRE(eps > 0.0 && eps <= 1.0);
  const std::size_t n = g.num_nodes();

  ApproxMinCutResult out;
  // Initial guess: the minimum weighted degree bounds λ from above.
  Weight lambda_hat = g.min_weighted_degree();
  const double target = 3.0 * std::log(static_cast<double>(n)) / (eps * eps);

  for (int iter = 0; iter < 64; ++iter) {
    const double p = skeleton_probability(n, eps, lambda_hat);
    if (p >= 1.0) {
      // Cut already small: run the exact packing.
      const PackingMinCutResult exact = packing_min_cut(g);
      out.cut = exact.cut;
      out.p = 1.0;
      out.lambda_hat = lambda_hat;
      out.trees_packed = exact.trees_packed;
      out.sampled = false;
      return out;
    }
    const Skeleton sk =
        sample_skeleton(g, p, derive_seed(seed, 0x6170ull, iter));
    if (!is_connected(sk.graph)) {
      // Sampled graph shattered ⇒ p·λ ≪ log n ⇒ guess far too big.
      lambda_hat = std::max<Weight>(1, lambda_hat / 4);
      continue;
    }
    // Pack trees on the skeleton; evaluate candidate cuts with ORIGINAL
    // weights so every candidate is a true cut value of G.
    GreedyTreePacking packing{sk.graph};
    const std::size_t lg = std::max<std::size_t>(1, ceil_log2(n));
    const std::size_t trees = 4 * lg;
    Weight best_g = static_cast<Weight>(-1);
    Weight best_skel = static_cast<Weight>(-1);
    std::vector<bool> best_side;
    for (std::size_t i = 0; i < trees; ++i) {
      const std::vector<EdgeId>& sk_edges = packing.next_tree();
      // Map skeleton edge ids back to original ids for the tree topology.
      std::vector<EdgeId> orig_edges(sk_edges.size());
      for (std::size_t j = 0; j < sk_edges.size(); ++j)
        orig_edges[j] = sk.to_original[sk_edges[j]];
      const RootedTree tree = RootedTree::from_edges(g, orig_edges, 0);
      const OneRespectValues vals = one_respect_dp(g, tree);
      NodeId arg = kNoNode;
      const Weight here = vals.min_cut(tree, &arg);
      if (here < best_g) {
        best_g = here;
        best_side = subtree_side(tree, arg);
      }
      const OneRespectValues svals = one_respect_dp(sk.graph,
          RootedTree::from_edges(sk.graph, sk_edges, 0));
      NodeId sarg = kNoNode;
      const Weight shere =
          svals.min_cut(RootedTree::from_edges(sk.graph, sk_edges, 0), &sarg);
      best_skel = std::min(best_skel, shere);
    }
    // Consistency check on the guess: skeleton min cut should be ≈ p·λ ≈
    // target when λ̂ ≈ λ.  If way below, λ ≪ λ̂ — halve and retry.
    if (static_cast<double>(best_skel) < target / 4.0 && lambda_hat > 1) {
      lambda_hat = std::max<Weight>(1, lambda_hat / 2);
      continue;
    }
    out.cut.value = best_g;
    out.cut.side = std::move(best_side);
    out.p = p;
    out.lambda_hat = lambda_hat;
    out.trees_packed = trees;
    out.sampled = true;
    DMC_ASSERT(is_nontrivial(out.cut.side));
    return out;
  }
  throw InvariantError{"approx_min_cut_central: guess loop did not converge"};
}

}  // namespace dmc
