// Centralized end-to-end minimum-cut drivers built from the same blocks the
// distributed algorithm uses (packing + 1-respect DP + sampling).  These are
// the "paper's algorithm, run sequentially" — used to validate the
// distributed pipeline piecewise and to benchmark the packing behaviour
// (experiment E5) without simulator overhead.
#pragma once

#include <cstdint>

#include "graph/cut.h"
#include "graph/graph.h"

namespace dmc {

struct PackingMinCutResult {
  CutResult cut;
  std::size_t trees_packed{0};
  std::size_t tree_of_best{0};  ///< index of the tree that 1-respected it
};

struct PackingOptions {
  std::size_t max_trees{256};
  /// Stop after this many consecutive trees without improvement (0 = never).
  std::size_t patience{16};
};

/// Exact-by-packing: greedy trees, 1-respect DP per tree, running minimum.
/// Exact once enough trees are packed (Thorup); `patience` is the practical
/// stopping rule whose adequacy E5 measures.
[[nodiscard]] PackingMinCutResult packing_min_cut(const Graph& g,
                                                  const PackingOptions& opt =
                                                      {});

struct ApproxMinCutResult {
  CutResult cut;           ///< a true cut of G (value is exact for its side)
  double p{1.0};           ///< final sampling probability
  Weight lambda_hat{0};    ///< final guess used for p
  std::size_t trees_packed{0};
  bool sampled{false};     ///< false ⇒ p reached 1, ran exact packing
};

/// (1+ε)-approximation: skeleton sampling + packing on the skeleton +
/// 1-respect evaluated with ORIGINAL weights, so the output is a genuine
/// cut of G whose value bounds λ from above.
[[nodiscard]] ApproxMinCutResult approx_min_cut_central(const Graph& g,
                                                        double eps,
                                                        std::uint64_t seed);

}  // namespace dmc
