#include "central/tree_packing.h"

#include "util/bit_math.h"

namespace dmc {

GreedyTreePacking::GreedyTreePacking(const Graph& g)
    : g_(&g), loads_(g.num_edges(), 0) {
  DMC_REQUIRE(g.num_nodes() >= 2);
}

const std::vector<EdgeId>& GreedyTreePacking::next_tree() {
  std::vector<EdgeId> tree = kruskal(*g_, load_keys(*g_, loads_));
  for (const EdgeId e : tree) ++loads_[e];
  trees_.push_back(std::move(tree));
  return trees_.back();
}

std::uint64_t GreedyTreePacking::thorup_tree_bound(Weight lambda,
                                                   std::size_t n) {
  // Θ(λ⁷ log³ n); we instantiate the constant as 1 — the point of E5 is the
  // orders-of-magnitude gap to practice, not the constant.
  const std::uint64_t lg = std::max<std::uint64_t>(1, ceil_log2(n));
  std::uint64_t l7 = 1;
  for (int i = 0; i < 7; ++i) l7 *= std::max<Weight>(1, lambda);
  return l7 * lg * lg * lg;
}

}  // namespace dmc
