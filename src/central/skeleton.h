// Karger's skeleton sampling [Kar94] (see also [Tho07, Lemma 7]).
//
// Treat an edge of weight w as w parallel unit edges and keep each
// independently with probability p.  For p ≥ Θ(log n / (ε²λ)) every cut's
// sampled value is within (1±ε) of p times its true value, w.h.p. — so a
// minimum cut of the skeleton is a (1+O(ε))-minimum cut of G, while the
// skeleton's min cut value is only Θ(log n/ε²), making poly(λ_skeleton)
// tree packing cheap.
//
// Sampling decisions are keyed by (seed, edge id) only, so in the
// distributed setting both endpoints of an edge compute the identical
// sample without exchanging a single message.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace dmc {

struct Skeleton {
  Graph graph;                       ///< sampled multigraph (w' = kept units)
  std::vector<EdgeId> to_original;   ///< skeleton edge id → original edge id
  std::vector<Weight> sampled_w;     ///< per ORIGINAL edge id: kept units (0 if dropped)
  double p{1.0};
};

/// Samples the skeleton of g with keep-probability p.
[[nodiscard]] Skeleton sample_skeleton(const Graph& g, double p,
                                       std::uint64_t seed);

/// The sampled multiplicity of one edge — the pure function both endpoints
/// of the edge evaluate locally in the CONGEST version.
[[nodiscard]] Weight sampled_edge_weight(Weight w, double p,
                                         std::uint64_t seed, EdgeId edge);

/// Recommended keep-probability for target accuracy ε and cut-value guess
/// λ̂: p = min(1, 3·ln(n)/(ε²·λ̂)).
[[nodiscard]] double skeleton_probability(std::size_t n, double eps,
                                          Weight lambda_hat);

}  // namespace dmc
