#include "central/karger_stein.h"

#include <cmath>
#include <vector>

#include "util/bit_math.h"
#include "util/dsu.h"
#include "util/prng.h"

namespace dmc {

namespace {

/// Contraction state: a DSU over original nodes plus the list of surviving
/// (unself-looped) edges, each carrying its original endpoints.
struct ContractState {
  Dsu dsu;
  std::size_t alive;  ///< number of super-nodes

  explicit ContractState(std::size_t n) : dsu(n), alive(n) {}
};

/// Contracts a weighted-uniform random edge until `target` super-nodes
/// remain.  Weighted sampling: an edge is picked with probability
/// proportional to its weight, matching the unweighted analysis applied to
/// the implicit parallel-edge expansion.
void contract_to(const Graph& g, ContractState& st, std::size_t target,
                 Prng& rng) {
  while (st.alive > target) {
    // Total weight of non-self-loop edges.
    Weight total = 0;
    for (const Edge& e : g.edges())
      if (!st.dsu.same(e.u, e.v)) total += e.w;
    DMC_ASSERT_MSG(total > 0, "graph disconnected during contraction");
    Weight pick = rng.next_below(total);
    for (const Edge& e : g.edges()) {
      if (st.dsu.same(e.u, e.v)) continue;
      if (pick < e.w) {
        st.dsu.unite(e.u, e.v);
        --st.alive;
        break;
      }
      pick -= e.w;
    }
  }
}

Weight cut_of_state(const Graph& g, ContractState& st) {
  Weight val = 0;
  for (const Edge& e : g.edges())
    if (!st.dsu.same(e.u, e.v)) val += e.w;
  return val;
}

CutResult result_of_state(const Graph& g, ContractState& st) {
  CutResult r;
  r.value = cut_of_state(g, st);
  r.side.assign(g.num_nodes(), false);
  const std::uint64_t rep = st.dsu.find(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    r.side[v] = (st.dsu.find(v) != rep);
  return r;
}

CutResult recursive_contract(const Graph& g, ContractState st, Prng& rng) {
  const std::size_t n = st.alive;
  if (n <= 6) {
    contract_to(g, st, 2, rng);
    return result_of_state(g, st);
  }
  const std::size_t target =
      static_cast<std::size_t>(std::ceil(1.0 + n / std::sqrt(2.0)));
  CutResult best;
  best.value = static_cast<Weight>(-1);
  for (int branch = 0; branch < 2; ++branch) {
    ContractState copy = st;
    contract_to(g, copy, target, rng);
    CutResult r = recursive_contract(g, std::move(copy), rng);
    if (r.value < best.value) best = std::move(r);
  }
  return best;
}

}  // namespace

CutResult karger_single_contraction(const Graph& g, std::uint64_t seed) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  Prng rng{derive_seed(seed, 0x6b31ull)};
  ContractState st{g.num_nodes()};
  contract_to(g, st, 2, rng);
  return result_of_state(g, st);
}

CutResult karger_stein_min_cut(const Graph& g, std::uint64_t seed,
                               std::size_t trials) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  if (trials == 0) {
    const std::uint32_t lg = ceil_log2(g.num_nodes()) + 1;
    trials = static_cast<std::size_t>(lg) * lg;
  }
  CutResult best;
  best.value = static_cast<Weight>(-1);
  for (std::size_t t = 0; t < trials; ++t) {
    Prng rng{derive_seed(seed, 0x6b73ull, t)};
    CutResult r = recursive_contract(g, ContractState{g.num_nodes()}, rng);
    if (r.value < best.value) best = std::move(r);
  }
  DMC_ASSERT(is_nontrivial(best.side));
  return best;
}

}  // namespace dmc
