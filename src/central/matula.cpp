#include "central/matula.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <vector>

#include "central/stoer_wagner.h"
#include "util/checked.h"
#include "util/dsu.h"

namespace dmc {

std::vector<bool> ni_certificate(const Graph& g, Weight k) {
  DMC_REQUIRE(k >= 1);
  const std::size_t n = g.num_nodes();
  std::vector<bool> keep(g.num_edges(), false);
  if (n == 0) return keep;

  // Maximum-adjacency scan: repeatedly add the unscanned node with the
  // largest attachment weight r(v); an edge (u,v) scanned at u is certified
  // iff r(v) < k at that moment (it contributes one of the first k units of
  // attachment of v).
  std::vector<Weight> r(n, 0);
  std::vector<bool> scanned(n, false);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry> pq;
  for (NodeId v = 0; v < n; ++v) pq.push({0, v});
  std::size_t done = 0;
  while (done < n) {
    NodeId u = kNoNode;
    while (!pq.empty()) {
      const auto [key, cand] = pq.top();
      pq.pop();
      if (!scanned[cand] && key == r[cand]) {
        u = cand;
        break;
      }
    }
    if (u == kNoNode) break;  // only isolated stale entries left
    scanned[u] = true;
    ++done;
    for (const Port& p : g.ports(u)) {
      if (scanned[p.peer]) continue;
      if (r[p.peer] < k) keep[p.edge] = true;
      r[p.peer] += g.edge(p.edge).w;
      pq.push({r[p.peer], p.peer});
    }
  }
  return keep;
}

namespace {

/// Rebuilds the contraction of g by the DSU, collapsing parallel edges.
/// `rep_of` maps contracted node index → DSU representative,
/// `group` maps contracted node index → original nodes.
Graph contract(const Graph& g, Dsu& dsu, std::vector<std::vector<NodeId>>&
                                             group_out) {
  std::vector<std::uint32_t> index(g.num_nodes(),
                                   static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t rep = dsu.find(v);
    if (index[rep] == static_cast<std::uint32_t>(-1)) index[rep] = next++;
  }
  group_out.assign(next, {});
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    group_out[index[dsu.find(v)]].push_back(v);

  // Collapse parallel edges with a map keyed by the (min,max) pair.  The
  // map is ORDERED: its iteration order below fixes h's edge numbering,
  // which downstream contraction rounds (and hence the reported cut side)
  // inherit — a hash map here would make the result seed-dependent on
  // pointer layout.
  Graph h{next};
  std::map<std::uint64_t, Weight> bucket;
  for (const Edge& e : g.edges()) {
    const std::uint32_t a = index[dsu.find(e.u)];
    const std::uint32_t b = index[dsu.find(e.v)];
    if (a == b) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    bucket[key] = checked_add(bucket[key], e.w);
  }
  for (const auto& [key, w] : bucket)
    h.add_edge(static_cast<NodeId>(key >> 32),
               static_cast<NodeId>(key & 0xFFFFFFFFull), w);
  return h;
}

}  // namespace

MatulaResult matula_approx_min_cut(const Graph& g_in, double eps) {
  DMC_REQUIRE(g_in.num_nodes() >= 2);
  DMC_REQUIRE(eps > 0.0);

  MatulaResult result;
  result.value = static_cast<Weight>(-1);

  Graph g = g_in;
  // group[v] = original nodes contracted into current node v.
  std::vector<std::vector<NodeId>> group(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) group[v] = {v};

  const auto consider_min_degree = [&] {
    NodeId arg = 0;
    Weight best = g.weighted_degree(0);
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      const Weight d = g.weighted_degree(v);
      if (d < best) {
        best = d;
        arg = v;
      }
    }
    if (best < result.value) {
      result.value = best;
      result.side.assign(g_in.num_nodes(), false);
      for (const NodeId orig : group[arg]) result.side[orig] = true;
    }
  };

  while (g.num_nodes() > 2) {
    consider_min_degree();
    const Weight delta = g.min_weighted_degree();
    const Weight k = std::max<Weight>(
        1, static_cast<Weight>(std::ceil(static_cast<double>(delta) /
                                         (2.0 + eps))));
    const std::vector<bool> cert = ni_certificate(g, k);
    Dsu dsu{g.num_nodes()};
    bool contracted = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (cert[e]) continue;
      if (dsu.unite(g.edge(e).u, g.edge(e).v)) contracted = true;
    }
    if (!contracted) {
      // Certificate kept every edge (rare: forests / tiny-k corner cases).
      if (g.num_edges() + 1 == g.num_nodes()) {
        // Tree: the minimum cut is the lightest bridge.
        EdgeId lightest = 0;
        for (EdgeId e = 1; e < g.num_edges(); ++e)
          if (g.edge(e).w < g.edge(lightest).w) lightest = e;
        if (g.edge(lightest).w < result.value) {
          // Side = component of u after removing the bridge.
          Dsu comp{g.num_nodes()};
          for (EdgeId e = 0; e < g.num_edges(); ++e)
            if (e != lightest) comp.unite(g.edge(e).u, g.edge(e).v);
          result.value = g.edge(lightest).w;
          result.side.assign(g_in.num_nodes(), false);
          const std::size_t rep = comp.find(g.edge(lightest).u);
          for (NodeId v = 0; v < g.num_nodes(); ++v)
            if (comp.find(v) == rep)
              for (const NodeId orig : group[v]) result.side[orig] = true;
        }
      } else {
        // Fall back to the exact oracle on the stuck instance; preserves the
        // (2+ε) guarantee trivially and only triggers on degenerate inputs.
        const CutResult exact = stoer_wagner_min_cut(g);
        if (exact.value < result.value) {
          result.value = exact.value;
          result.side.assign(g_in.num_nodes(), false);
          for (NodeId v = 0; v < g.num_nodes(); ++v)
            if (exact.side[v])
              for (const NodeId orig : group[v]) result.side[orig] = true;
        }
      }
      break;
    }
    std::vector<std::vector<NodeId>> merged_groups;
    const Graph h = contract(g, dsu, merged_groups);
    // Re-attach original-node groups.
    std::vector<std::vector<NodeId>> new_group(h.num_nodes());
    {
      // merged_groups holds *current-graph* node ids; flatten to originals.
      for (std::uint32_t nv = 0; nv < merged_groups.size(); ++nv)
        for (const NodeId cur : merged_groups[nv])
          new_group[nv].insert(new_group[nv].end(), group[cur].begin(),
                               group[cur].end());
    }
    group = std::move(new_group);
    g = h;
    ++result.contraction_rounds;
    if (g.num_edges() == 0) break;
  }
  if (g.num_nodes() == 2 && g.num_edges() > 0) consider_min_degree();

  DMC_ASSERT(is_nontrivial(result.side));
  return result;
}

}  // namespace dmc
