// Rooted spanning tree toolkit: Euler tours, ancestor tests, LCA via binary
// lifting, and subtree aggregation.  This is the centralized counterpart of
// the structures the distributed Steps 1–5 compute, and the verification
// oracle for them.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace dmc {

class RootedTree {
 public:
  /// Builds from a parent array: parent[root] == kNoNode, every other node
  /// has a valid parent forming a single tree over 0..n-1.
  ///
  /// `parent_edge[v]` may carry the Graph EdgeId of (v,parent[v]) (or
  /// kNoEdge if the tree is synthetic).
  RootedTree(std::vector<NodeId> parent, std::vector<EdgeId> parent_edge,
             NodeId root);

  /// Builds the tree induced by tree_edges (must be exactly n-1 edges of g
  /// forming a spanning tree), rooted at `root`.
  [[nodiscard]] static RootedTree from_edges(
      const Graph& g, const std::vector<EdgeId>& tree_edges, NodeId root);

  [[nodiscard]] std::size_t num_nodes() const { return parent_.size(); }
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] NodeId parent(NodeId v) const { return parent_[v]; }
  [[nodiscard]] EdgeId parent_edge(NodeId v) const { return parent_edge_[v]; }
  [[nodiscard]] const std::vector<NodeId>& children(NodeId v) const {
    return children_[v];
  }
  [[nodiscard]] std::uint32_t depth(NodeId v) const { return depth_[v]; }
  [[nodiscard]] std::uint32_t height() const { return height_; }

  /// Euler-tour entry/exit times; v↓ = {u : tin(v) ≤ tin(u) < tout(v)}.
  [[nodiscard]] std::uint32_t tin(NodeId v) const { return tin_[v]; }
  [[nodiscard]] std::uint32_t tout(NodeId v) const { return tout_[v]; }

  /// True iff a is an ancestor of b (a == b counts).
  [[nodiscard]] bool is_ancestor(NodeId a, NodeId b) const {
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  [[nodiscard]] NodeId lca(NodeId a, NodeId b) const;

  /// Subtree size |v↓|.
  [[nodiscard]] std::uint32_t subtree_size(NodeId v) const {
    return tout_[v] - tin_[v];
  }

  /// Nodes in reverse BFS order (every node appears after all its
  /// descendants) — convenient for bottom-up DPs.
  [[nodiscard]] const std::vector<NodeId>& bottom_up_order() const {
    return bottom_up_;
  }

  /// Generic bottom-up aggregation: out[v] = leaf_value[v] + Σ out[child].
  template <typename T>
  [[nodiscard]] std::vector<T> subtree_sum(const std::vector<T>& value) const {
    DMC_REQUIRE(value.size() == num_nodes());
    std::vector<T> out = value;
    for (const NodeId v : bottom_up_) {
      if (parent_[v] != kNoNode) out[parent_[v]] += out[v];
    }
    return out;
  }

  /// All nodes of the subtree rooted at v.
  [[nodiscard]] std::vector<NodeId> subtree_nodes(NodeId v) const;

 private:
  void build_derived();

  std::vector<NodeId> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> tin_, tout_;
  std::vector<NodeId> bottom_up_;
  std::vector<std::vector<NodeId>> up_;  // binary lifting table
  NodeId root_;
  std::uint32_t height_{0};
};

}  // namespace dmc
