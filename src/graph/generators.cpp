#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "graph/algorithms.h"
#include "util/bit_math.h"
#include "util/prng.h"

namespace dmc {

namespace {
Weight pick_weight(Prng& rng, Weight min_w, Weight max_w) {
  DMC_REQUIRE(min_w >= 1 && min_w <= max_w);
  return min_w == max_w ? min_w : rng.next_in(min_w, max_w);
}
}  // namespace

Graph make_path(std::size_t n, Weight w) {
  DMC_REQUIRE(n >= 1);
  Graph g{n};
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, w);
  return g;
}

Graph make_cycle(std::size_t n, Weight w) {
  DMC_REQUIRE(n >= 3);
  Graph g{n};
  for (NodeId i = 0; i < n; ++i)
    g.add_edge(i, static_cast<NodeId>((i + 1) % n), w);
  return g;
}

Graph make_complete(std::size_t n, Weight w) {
  DMC_REQUIRE(n >= 2);
  Graph g{n};
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) g.add_edge(i, j, w);
  return g;
}

Graph make_star(std::size_t n, Weight w) {
  DMC_REQUIRE(n >= 2);
  Graph g{n};
  for (NodeId i = 1; i < n; ++i) g.add_edge(0, i, w);
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols, Weight w) {
  DMC_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Graph g{rows * cols};
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), w);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), w);
    }
  return g;
}

Graph make_torus(std::size_t rows, std::size_t cols, Weight w) {
  DMC_REQUIRE(rows >= 3 && cols >= 3);
  Graph g{rows * cols};
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols), w);
      g.add_edge(id(r, c), id((r + 1) % rows, c), w);
    }
  return g;
}

Graph make_hypercube(std::size_t dims, Weight w) {
  DMC_REQUIRE(dims >= 1 && dims <= 24);
  const std::size_t n = std::size_t{1} << dims;
  Graph g{n};
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t b = 0; b < dims; ++b) {
      const std::size_t u = v ^ (std::size_t{1} << b);
      if (u > v) g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u), w);
    }
  return g;
}

Graph make_erdos_renyi(std::size_t n, double p, std::uint64_t seed,
                       Weight min_w, Weight max_w) {
  DMC_REQUIRE(n >= 2 && p > 0.0 && p <= 1.0);
  for (int attempt = 0; attempt < 64; ++attempt) {
    Prng rng{derive_seed(seed, 0x6572ull, static_cast<std::uint64_t>(attempt))};
    Graph g{n};
    // Geometric skipping over the (n choose 2) pair sequence: O(m) expected.
    const double log_q = std::log1p(-p);
    const std::size_t pairs = n * (n - 1) / 2;
    std::size_t idx = 0;
    const auto pair_of = [n](std::size_t k) {
      // Row-major upper-triangle indexing.
      std::size_t u = 0;
      std::size_t row = n - 1;
      while (k >= row) {
        k -= row;
        ++u;
        --row;
      }
      return std::pair<NodeId, NodeId>{static_cast<NodeId>(u),
                                       static_cast<NodeId>(u + 1 + k)};
    };
    if (p >= 1.0) {
      for (std::size_t k = 0; k < pairs; ++k) {
        const auto [u, v] = pair_of(k);
        g.add_edge(u, v, pick_weight(rng, min_w, max_w));
      }
    } else {
      for (;;) {
        const double u01 = std::max(rng.next_double(), 1e-300);
        idx += static_cast<std::size_t>(std::floor(std::log(u01) / log_q)) + 1;
        if (idx > pairs) break;
        const auto [u, v] = pair_of(idx - 1);
        g.add_edge(u, v, pick_weight(rng, min_w, max_w));
      }
    }
    if (is_connected(g)) return g;
  }
  throw PreconditionError{
      "make_erdos_renyi: could not draw a connected sample; raise p"};
}

Graph make_random_regular(std::size_t n, std::size_t d, std::uint64_t seed,
                          Weight w) {
  DMC_REQUIRE(n >= d + 1 && d >= 2);
  DMC_REQUIRE_MSG(n * d % 2 == 0, "n·d must be even");
  for (int attempt = 0; attempt < 256; ++attempt) {
    Prng rng{derive_seed(seed, 0x7272ull, static_cast<std::uint64_t>(attempt))};
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    std::set<std::pair<NodeId, NodeId>> seen;
    Graph g{n};
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      NodeId a = stubs[i], b = stubs[i + 1];
      if (a == b) {
        ok = false;
        break;
      }
      if (a > b) std::swap(a, b);
      if (!seen.insert({a, b}).second) {
        ok = false;
        break;
      }
      g.add_edge(a, b, w);
    }
    if (ok && is_connected(g)) return g;
  }
  throw PreconditionError{
      "make_random_regular: rejection failed; use larger n or smaller d"};
}

Graph make_random_tree(std::size_t n, std::uint64_t seed, Weight min_w,
                       Weight max_w) {
  DMC_REQUIRE(n >= 1);
  Prng rng{derive_seed(seed, 0x7472ull)};
  Graph g{n};
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.next_below(i));
    g.add_edge(parent, i, pick_weight(rng, min_w, max_w));
  }
  return g;
}

Graph make_barbell(std::size_t n, std::size_t bridge_edges, Weight bridge_w,
                   std::uint64_t seed) {
  DMC_REQUIRE(n >= 4 && n % 2 == 0);
  const std::size_t half = n / 2;
  DMC_REQUIRE(bridge_edges >= 1 && bridge_edges <= half);
  Prng rng{derive_seed(seed, 0x6262ull)};
  Graph g{n};
  for (NodeId i = 0; i < half; ++i)
    for (NodeId j = i + 1; j < half; ++j) g.add_edge(i, j, 1);
  for (NodeId i = 0; i < half; ++i)
    for (NodeId j = i + 1; j < half; ++j)
      g.add_edge(static_cast<NodeId>(half + i), static_cast<NodeId>(half + j),
                 1);
  // Distinct cross pairs.
  std::set<std::pair<NodeId, NodeId>> cross;
  while (cross.size() < bridge_edges) {
    const NodeId a = static_cast<NodeId>(rng.next_below(half));
    const NodeId b = static_cast<NodeId>(half + rng.next_below(half));
    cross.insert({a, b});
  }
  for (const auto& [a, b] : cross) g.add_edge(a, b, bridge_w);
  return g;
}

Graph make_planted_cut(std::size_t n, double p_in, std::size_t cross,
                       Weight cross_w, std::uint64_t seed) {
  DMC_REQUIRE(n >= 4 && n % 2 == 0 && cross >= 1);
  const std::size_t half = n / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    Prng rng{derive_seed(seed, 0x7063ull, static_cast<std::uint64_t>(attempt))};
    Graph g{n};
    // Community A on [0, half), community B on [half, n).
    for (NodeId i = 0; i < half; ++i)
      for (NodeId j = i + 1; j < half; ++j) {
        if (rng.next_bool(p_in)) g.add_edge(i, j, 1);
      }
    for (NodeId i = 0; i < half; ++i)
      for (NodeId j = i + 1; j < half; ++j) {
        if (rng.next_bool(p_in))
          g.add_edge(static_cast<NodeId>(half + i),
                     static_cast<NodeId>(half + j), 1);
      }
    std::set<std::pair<NodeId, NodeId>> pairs;
    while (pairs.size() < cross) {
      const NodeId a = static_cast<NodeId>(rng.next_below(half));
      const NodeId b = static_cast<NodeId>(half + rng.next_below(half));
      pairs.insert({a, b});
    }
    for (const auto& [a, b] : pairs) g.add_edge(a, b, cross_w);
    if (is_connected(g)) return g;
  }
  throw PreconditionError{"make_planted_cut: raise p_in"};
}

Graph make_path_of_cliques(std::size_t cliques, std::size_t clique_size,
                           Weight w_chain, std::uint64_t /*seed*/) {
  DMC_REQUIRE(cliques >= 2 && clique_size >= 3);
  const std::size_t n = cliques * clique_size;
  Graph g{n};
  for (std::size_t c = 0; c < cliques; ++c) {
    const NodeId base = static_cast<NodeId>(c * clique_size);
    for (NodeId i = 0; i < clique_size; ++i)
      for (NodeId j = i + 1; j < clique_size; ++j)
        g.add_edge(base + i, base + j, 1);
    if (c + 1 < cliques) {
      // Chain edge from the "last" node of this clique to the "first" of the
      // next one.
      g.add_edge(base + static_cast<NodeId>(clique_size - 1),
                 base + static_cast<NodeId>(clique_size), w_chain);
    }
  }
  return g;
}

Graph make_random_connected(std::size_t n, std::size_t m, std::uint64_t seed,
                            Weight min_w, Weight max_w) {
  DMC_REQUIRE(n >= 2 && m >= n - 1);
  Prng rng{derive_seed(seed, 0x7263ull)};
  Graph g{n};
  std::set<std::pair<NodeId, NodeId>> used;
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.next_below(i));
    g.add_edge(parent, i, pick_weight(rng, min_w, max_w));
    used.insert({std::min(parent, i), std::max(parent, i)});
  }
  const std::size_t max_edges = n * (n - 1) / 2;
  DMC_REQUIRE_MSG(m <= max_edges, "m exceeds simple-graph capacity");
  while (g.num_edges() < m) {
    NodeId a = static_cast<NodeId>(rng.next_below(n));
    NodeId b = static_cast<NodeId>(rng.next_below(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!used.insert({a, b}).second) continue;
    g.add_edge(a, b, pick_weight(rng, min_w, max_w));
  }
  return g;
}

Graph with_random_weights(const Graph& g, std::uint64_t seed, Weight min_w,
                          Weight max_w) {
  Prng rng{derive_seed(seed, 0x7777ull)};
  Graph out{g.num_nodes()};
  for (const Edge& e : g.edges())
    out.add_edge(e.u, e.v, pick_weight(rng, min_w, max_w));
  return out;
}

namespace {

// Family adapters: each rounds n to whatever its generator structurally
// needs and spreads weights over [min_w, max_w].

Graph fam_erdos_renyi(std::size_t n, std::uint64_t seed, Weight min_w,
                      Weight max_w) {
  const double p = std::min(1.0, 10.0 / static_cast<double>(n));
  return make_erdos_renyi(n, p, seed, min_w, max_w);
}

Graph fam_random_regular(std::size_t n, std::uint64_t seed, Weight min_w,
                         Weight max_w) {
  const Graph g = make_random_regular(n - (n % 2), 4, seed);
  return with_random_weights(g, derive_seed(seed, 0xFA11), min_w, max_w);
}

Graph fam_torus(std::size_t n, std::uint64_t seed, Weight min_w,
                Weight max_w) {
  const std::size_t side = std::max<std::size_t>(3, isqrt(n));
  return with_random_weights(make_torus(side, side),
                             derive_seed(seed, 0xFA12), min_w, max_w);
}

Graph fam_grid(std::size_t n, std::uint64_t seed, Weight min_w,
               Weight max_w) {
  const std::size_t rows = std::max<std::size_t>(2, isqrt(n));
  return with_random_weights(make_grid(rows, rows),
                             derive_seed(seed, 0xFA13), min_w, max_w);
}

Graph fam_hypercube(std::size_t n, std::uint64_t seed, Weight min_w,
                    Weight max_w) {
  std::size_t dims = 2;
  while ((std::size_t{1} << (dims + 1)) <= n) ++dims;
  return with_random_weights(make_hypercube(dims),
                             derive_seed(seed, 0xFA14), min_w, max_w);
}

Graph fam_clique_chain(std::size_t n, std::uint64_t seed, Weight min_w,
                       Weight max_w) {
  const std::size_t cliques = std::max<std::size_t>(2, n / 6);
  return with_random_weights(make_path_of_cliques(cliques, 6),
                             derive_seed(seed, 0xFA15), min_w, max_w);
}

Graph fam_barbell(std::size_t n, std::uint64_t seed, Weight min_w,
                  Weight max_w) {
  const Weight bridge_w =
      min_w + (max_w > min_w ? seed % (max_w - min_w + 1) : 0);
  return make_barbell(n - (n % 2), 1 + seed % 4, bridge_w, seed);
}

Graph fam_planted_cut(std::size_t n, std::uint64_t seed, Weight min_w,
                      Weight max_w) {
  const Weight cross_w =
      min_w + (max_w > min_w ? seed % (max_w - min_w + 1) : 0);
  return make_planted_cut(n - (n % 2), 0.6, 2 + seed % 3, cross_w, seed);
}

Graph fam_random_tree(std::size_t n, std::uint64_t seed, Weight min_w,
                      Weight max_w) {
  return make_random_tree(n, seed, min_w, max_w);
}

constexpr GraphFamily kFamilies[] = {
    {"erdos_renyi", 8, fam_erdos_renyi},
    {"random_regular", 8, fam_random_regular},
    {"torus", 9, fam_torus},
    {"grid", 4, fam_grid},
    {"hypercube", 8, fam_hypercube},
    {"clique_chain", 12, fam_clique_chain},
    {"barbell", 8, fam_barbell},
    {"planted_cut", 10, fam_planted_cut},
    {"random_tree", 4, fam_random_tree},
};

}  // namespace

std::span<const GraphFamily> graph_families() { return kFamilies; }

const GraphFamily& graph_family(std::string_view name) {
  for (const GraphFamily& f : kFamilies)
    if (name == f.name) return f;
  std::string known;
  for (const GraphFamily& f : kFamilies) {
    if (!known.empty()) known += ", ";
    known += f.name;
  }
  throw PreconditionError{"unknown graph family '" + std::string{name} +
                          "' (known: " + known + ")"};
}

}  // namespace dmc
