// Cut evaluation and verification helpers.
//
// A cut is represented by its side: side[v] == true ⇔ v ∈ X.  The cut value
// C(X) = Σ w(x,y) over edges with exactly one endpoint in X — the quantity
// the paper minimizes.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/tree.h"

namespace dmc {

struct CutResult {
  Weight value{0};
  std::vector<bool> side;  ///< side[v] == true ⇔ v in X

  [[nodiscard]] std::size_t side_size() const {
    std::size_t c = 0;
    for (const bool b : side) c += b ? 1 : 0;
    return c;
  }
};

/// C(X) for X = {v : side[v]}.
[[nodiscard]] Weight cut_value(const Graph& g, const std::vector<bool>& side);

/// True iff X is a valid candidate: nonempty and not all of V.
[[nodiscard]] bool is_nontrivial(const std::vector<bool>& side);

/// The side induced by a subtree: X = v↓ in the given rooted tree.
[[nodiscard]] std::vector<bool> subtree_side(const RootedTree& t, NodeId v);

/// Exhaustive minimum cut over all 2^(n-1) sides — ground truth for tiny
/// graphs (n ≤ 24 enforced).
[[nodiscard]] CutResult brute_force_min_cut(const Graph& g);

/// Cut induced by the minimum weighted degree (trivial upper bound).
[[nodiscard]] CutResult min_degree_cut(const Graph& g);

}  // namespace dmc
