// Graph serialization: a minimal self-describing edge-list format, plus
// Graphviz DOT export used by the examples.
//
// Text format:
//   dmc-graph 1
//   <n> <m>
//   <u> <v> <w>     (m lines)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dmc {

void write_graph(std::ostream& os, const Graph& g);
[[nodiscard]] Graph read_graph(std::istream& is);

void save_graph(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_graph(const std::string& path);

/// DOT export; if `side` is non-null, nodes on the true side are filled —
/// used by examples to visualize the minimum cut.
void write_dot(std::ostream& os, const Graph& g,
               const std::vector<bool>* side = nullptr);

}  // namespace dmc
