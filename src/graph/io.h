// Graph serialization: a minimal self-describing edge-list format, plus
// Graphviz DOT export used by the examples.
//
// Text format:
//   dmc-graph 1
//   <n> <m>
//   <u> <v> <w>     (m lines)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace dmc {

/// Plausibility caps enforced by read_graph before allocating: a corrupt
/// header must not turn into a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxIoNodes = 1ull << 24;
inline constexpr std::uint64_t kMaxIoEdges = 1ull << 26;

void write_graph(std::ostream& os, const Graph& g);

/// Parses the text format.  Malformed content — bad magic/version,
/// truncated header or edge list, endpoints out of range, self-loops,
/// weights outside [1, kMaxWeight], trailing garbage, implausible sizes —
/// throws InvariantError; round-trips with write_graph bit-identically
/// (tests/test_graph_io.cpp).
[[nodiscard]] Graph read_graph(std::istream& is);

void save_graph(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_graph(const std::string& path);

/// DOT export; if `side` is non-null, nodes on the true side are filled —
/// used by examples to visualize the minimum cut.
void write_dot(std::ostream& os, const Graph& g,
               const std::vector<bool>* side = nullptr);

}  // namespace dmc
