#include "graph/cut.h"

#include "util/checked.h"

namespace dmc {

Weight cut_value(const Graph& g, const std::vector<bool>& side) {
  DMC_REQUIRE(side.size() == g.num_nodes());
  Weight sum = 0;
  for (const Edge& e : g.edges())
    if (side[e.u] != side[e.v]) sum = checked_add(sum, e.w);
  return sum;
}

bool is_nontrivial(const std::vector<bool>& side) {
  bool any_in = false, any_out = false;
  for (const bool b : side) (b ? any_in : any_out) = true;
  return any_in && any_out;
}

std::vector<bool> subtree_side(const RootedTree& t, NodeId v) {
  std::vector<bool> side(t.num_nodes(), false);
  for (NodeId u = 0; u < t.num_nodes(); ++u) side[u] = t.is_ancestor(v, u);
  return side;
}

CutResult brute_force_min_cut(const Graph& g) {
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(n >= 2);
  DMC_REQUIRE_MSG(n <= 24, "brute force limited to n ≤ 24");
  CutResult best;
  best.value = static_cast<Weight>(-1);
  // Fix node 0 on the "false" side: every cut has a representative with
  // side[0] == false, halving the enumeration.
  const std::size_t masks = std::size_t{1} << (n - 1);
  for (std::size_t m = 1; m < masks; ++m) {
    std::vector<bool> side(n, false);
    for (std::size_t b = 0; b + 1 < n; ++b)
      side[b + 1] = ((m >> b) & 1) != 0;
    const Weight val = cut_value(g, side);
    if (val < best.value) {
      best.value = val;
      best.side = std::move(side);
    }
  }
  return best;
}

CutResult min_degree_cut(const Graph& g) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  NodeId arg = 0;
  Weight best = g.weighted_degree(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    const Weight d = g.weighted_degree(v);
    if (d < best) {
      best = d;
      arg = v;
    }
  }
  CutResult r;
  r.value = best;
  r.side.assign(g.num_nodes(), false);
  r.side[arg] = true;
  return r;
}

}  // namespace dmc
