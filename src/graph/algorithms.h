// Centralized graph algorithms: traversal, connectivity, diameter.
// These are the sequential oracles the distributed protocols are verified
// against, and utilities for experiment setup (e.g. exact diameters).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace dmc {

struct BfsResult {
  std::vector<std::uint32_t> dist;    ///< hop distance; kUnreached if not seen
  std::vector<NodeId> parent;         ///< BFS-tree parent; kNoNode for source
  std::vector<EdgeId> parent_edge;    ///< edge used to reach node
  std::vector<NodeId> order;          ///< visit order (source first)

  static constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);
};

/// Breadth-first search over hop counts (weights ignored — the CONGEST
/// model charges one round per hop regardless of weight).
[[nodiscard]] BfsResult bfs(const Graph& g, NodeId source);

/// BFS restricted to edges with mask[e] == true.
[[nodiscard]] BfsResult bfs_masked(const Graph& g, NodeId source,
                                   const std::vector<bool>& mask);

/// Component id per node (0-based, in order of first discovery).
[[nodiscard]] std::vector<std::uint32_t> connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Exact hop diameter via BFS from every node — O(n·m); fine for the
/// laptop-scale instances in this repo's experiments.
[[nodiscard]] std::uint32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter — O(m); used when exact is too
/// slow and only a scaling reference is needed.
[[nodiscard]] std::uint32_t diameter_double_sweep(const Graph& g);

/// Eccentricity of v (max hop distance to any node).
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId v);

}  // namespace dmc
