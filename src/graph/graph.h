// Weighted undirected (multi)graph — the substrate every algorithm in this
// library operates on.
//
// Nodes are dense indices 0..n-1 (these double as the CONGEST node IDs).
// Edges are stored once, with stable EdgeId indices; per-node adjacency
// stores (neighbor, edge id) "ports", which is exactly the local view a
// CONGEST processor has of its incident links.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace dmc {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = std::uint64_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Maximum supported edge weight.  Keeping weights in 32 bits lets cut
/// values, degree sums, and load-by-weight cross products all fit in
/// uint64_t without overflow (n·W ≤ 2^52 in any laptop-scale experiment).
inline constexpr Weight kMaxWeight = (1ull << 32) - 1;

struct Edge {
  NodeId u{kNoNode};
  NodeId v{kNoNode};
  Weight w{1};

  [[nodiscard]] NodeId other(NodeId x) const {
    DMC_ASSERT(x == u || x == v);
    return x == u ? v : u;
  }
};

/// One entry of a node's adjacency list: which neighbor, over which edge.
struct Port {
  NodeId peer{kNoNode};
  EdgeId edge{kNoEdge};
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : n_(n) {}

  /// Adds an undirected edge; returns its EdgeId.  Parallel edges and
  /// self-loop-free multigraphs are supported (self-loops are rejected:
  /// they never affect any cut).  Weights outside [1, kMaxWeight] throw
  /// InvariantError — w > kMaxWeight would silently overflow 64-bit cut
  /// arithmetic downstream, w == 0 a zero-capacity pseudo-edge.
  EdgeId add_edge(NodeId u, NodeId v, Weight w = 1);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DMC_REQUIRE(e < edges_.size());
    return edges_[e];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// The ports (incident links) of node v, in insertion order.  Port index
  /// within this span is the CONGEST "port number" of the link at v.
  ///
  /// Adjacency is one flat CSR array (ports of v are contiguous at
  /// [port_offset(v), port_offset(v+1))), rebuilt lazily from the edge
  /// list on the first read after a mutation — a Graph is 2m Ports + n+1
  /// offsets, with no per-node heap blocks.  The rebuild is not
  /// thread-safe: call any read accessor once (e.g. by constructing the
  /// Network) before sharing a mutated Graph across threads.
  [[nodiscard]] std::span<const Port> ports(NodeId v) const {
    DMC_REQUIRE(v < n_);
    if (dirty_) finalize();
    return {flat_ports_.data() + offset_[v], offset_[v + 1] - offset_[v]};
  }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return ports(v).size();
  }

  /// Directed-port id of (v, port 0): ports are globally numbered by the
  /// CSR layout, so (v, p) ↦ port_offset(v) + p is a dense id in
  /// [0, 2·num_edges()).  Flat per-directed-port protocol state (fragment
  /// tables, exchange buffers, mail slots) is indexed by it.
  [[nodiscard]] std::uint32_t port_offset(NodeId v) const {
    DMC_REQUIRE(v <= n_);
    if (dirty_) finalize();
    return offset_[v];
  }

  /// δ(v): sum of weights of edges incident to v.
  [[nodiscard]] Weight weighted_degree(NodeId v) const;

  /// Σ_e w(e).
  [[nodiscard]] Weight total_weight() const;

  /// Smallest weighted degree over all nodes (a trivial min-cut upper
  /// bound, and the starting point of Matula's algorithm).
  [[nodiscard]] Weight min_weighted_degree() const;

  /// Returns a graph with identical topology but all weights = 1.
  [[nodiscard]] Graph unweighted_copy() const;

  /// Returns the subgraph keeping edge e iff keep[e] (same node set; edge
  /// ids are renumbered; `kept_to_original` maps new ids back).
  [[nodiscard]] Graph edge_subgraph(const std::vector<bool>& keep,
                                    std::vector<EdgeId>* kept_to_original =
                                        nullptr) const;

  /// Structural sanity check; throws InvariantError on corruption.
  void validate() const;

  /// Heap bytes held by the edge list and the CSR adjacency cache — the
  /// serving registry's byte-budget accounting (util/mem.h conventions:
  /// capacity-based, excludes sizeof(*this)).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  void finalize() const;

  std::size_t n_{0};
  std::vector<Edge> edges_;
  // Lazy CSR adjacency cache over edges_ (see ports()).
  mutable std::vector<Port> flat_ports_;
  mutable std::vector<std::uint32_t> offset_;
  mutable bool dirty_{true};
};

}  // namespace dmc
