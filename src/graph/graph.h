// Weighted undirected (multi)graph — the substrate every algorithm in this
// library operates on.
//
// Nodes are dense indices 0..n-1 (these double as the CONGEST node IDs).
// Edges are stored once, with stable EdgeId indices; per-node adjacency
// stores (neighbor, edge id) "ports", which is exactly the local view a
// CONGEST processor has of its incident links.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.h"

namespace dmc {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = std::uint64_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Maximum supported edge weight.  Keeping weights in 32 bits lets cut
/// values, degree sums, and load-by-weight cross products all fit in
/// uint64_t without overflow (n·W ≤ 2^52 in any laptop-scale experiment).
inline constexpr Weight kMaxWeight = (1ull << 32) - 1;

struct Edge {
  NodeId u{kNoNode};
  NodeId v{kNoNode};
  Weight w{1};

  [[nodiscard]] NodeId other(NodeId x) const {
    DMC_ASSERT(x == u || x == v);
    return x == u ? v : u;
  }
};

/// One entry of a node's adjacency list: which neighbor, over which edge.
struct Port {
  NodeId peer{kNoNode};
  EdgeId edge{kNoEdge};
};

/// One batched mutation (Graph::apply_updates): insert a new edge, delete
/// an existing one, or change a weight in place.
enum class UpdateKind : std::uint8_t { kInsert, kDelete, kReweight };

[[nodiscard]] const char* to_string(UpdateKind k);

/// A single entry of an update batch.  Edge ids refer to the PRE-BATCH
/// numbering extended by the batch's own inserts: a batch over a graph
/// with m edges numbers its inserts m, m+1, … in batch order, and later
/// entries of the same batch may delete or reweight them.  After the
/// batch, surviving edges are renumbered compactly in the original order
/// (exactly the ids a rebuild-from-scratch of the updated graph assigns).
struct EdgeUpdate {
  UpdateKind kind{UpdateKind::kInsert};
  NodeId u{kNoNode};     ///< kInsert: endpoints
  NodeId v{kNoNode};
  EdgeId edge{kNoEdge};  ///< kDelete / kReweight: target edge id
  Weight w{1};           ///< kInsert / kReweight: weight

  [[nodiscard]] static EdgeUpdate insert(NodeId u, NodeId v, Weight w = 1) {
    EdgeUpdate e;
    e.kind = UpdateKind::kInsert;
    e.u = u;
    e.v = v;
    e.w = w;
    return e;
  }
  [[nodiscard]] static EdgeUpdate remove(EdgeId edge) {
    EdgeUpdate e;
    e.kind = UpdateKind::kDelete;
    e.edge = edge;
    return e;
  }
  [[nodiscard]] static EdgeUpdate reweight(EdgeId edge, Weight w) {
    EdgeUpdate e;
    e.kind = UpdateKind::kReweight;
    e.edge = edge;
    e.w = w;
    return e;
  }
};

/// What one applied batch did — the contract between Graph::apply_updates
/// and the warm-state invalidation above it (core/session.h).
struct UpdateSummary {
  std::size_t inserted{0};
  std::size_t deleted{0};
  std::size_t reweighted{0};
  /// Distinct edges the batch named (inserts, deletes, reweight targets).
  std::size_t touched_edges{0};
  std::size_t edges_before{0};
  std::size_t edges_after{0};

  /// Inserts or deletes move ports and renumber ids — every structure
  /// derived from the topology (CSR, reverse-port table, BFS tree) is
  /// stale.  Reweight-only batches leave all of them valid.
  [[nodiscard]] bool topology_changed() const {
    return inserted != 0 || deleted != 0;
  }
  /// Fraction of the pre-batch edge set the batch touched — what
  /// SessionOptions::update_damage_threshold compares against.
  [[nodiscard]] double damage() const {
    return edges_before == 0
               ? 1.0
               : static_cast<double>(touched_edges) /
                     static_cast<double>(edges_before);
  }
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : n_(n) {}

  /// Adds an undirected edge; returns its EdgeId.  Parallel edges and
  /// self-loop-free multigraphs are supported (self-loops are rejected:
  /// they never affect any cut).  Weights outside [1, kMaxWeight] throw
  /// InvariantError — w > kMaxWeight would silently overflow 64-bit cut
  /// arithmetic downstream, w == 0 a zero-capacity pseudo-edge.
  EdgeId add_edge(NodeId u, NodeId v, Weight w = 1);

  /// Applies a batch of inserts / deletes / reweights atomically: the
  /// whole batch is validated first (self-loops, zero or overflowing
  /// weights, out-of-range endpoints, unknown or already-deleted edge ids
  /// all throw InvariantError — the same contract add_edge enforces) and
  /// only then applied, so a throwing batch leaves the graph untouched.
  /// Surviving edges keep their relative order and are renumbered
  /// compactly, identical to rebuilding the updated graph from scratch.
  /// The CSR adjacency is patched in place where the batch allows it
  /// (reweights don't touch it at all; a pure-insert batch appends into
  /// the existing layout); deletes fall back to the lazy rebuild.  Like
  /// add_edge, not thread-safe — callers re-finalize (any read accessor)
  /// before sharing across threads.
  UpdateSummary apply_updates(std::span<const EdgeUpdate> batch);

  [[nodiscard]] std::size_t num_nodes() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DMC_REQUIRE(e < edges_.size());
    return edges_[e];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// The ports (incident links) of node v, in insertion order.  Port index
  /// within this span is the CONGEST "port number" of the link at v.
  ///
  /// Adjacency is one flat CSR array (ports of v are contiguous at
  /// [port_offset(v), port_offset(v+1))), rebuilt lazily from the edge
  /// list on the first read after a mutation — a Graph is 2m Ports + n+1
  /// offsets, with no per-node heap blocks.  The rebuild is not
  /// thread-safe: call any read accessor once (e.g. by constructing the
  /// Network) before sharing a mutated Graph across threads.
  [[nodiscard]] std::span<const Port> ports(NodeId v) const {
    DMC_REQUIRE(v < n_);
    if (dirty_) finalize();
    return {flat_ports_.data() + offset_[v], offset_[v + 1] - offset_[v]};
  }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return ports(v).size();
  }

  /// Directed-port id of (v, port 0): ports are globally numbered by the
  /// CSR layout, so (v, p) ↦ port_offset(v) + p is a dense id in
  /// [0, 2·num_edges()).  Flat per-directed-port protocol state (fragment
  /// tables, exchange buffers, mail slots) is indexed by it.
  [[nodiscard]] std::uint32_t port_offset(NodeId v) const {
    DMC_REQUIRE(v <= n_);
    if (dirty_) finalize();
    return offset_[v];
  }

  /// δ(v): sum of weights of edges incident to v.
  [[nodiscard]] Weight weighted_degree(NodeId v) const;

  /// Σ_e w(e).
  [[nodiscard]] Weight total_weight() const;

  /// Smallest weighted degree over all nodes (a trivial min-cut upper
  /// bound, and the starting point of Matula's algorithm).
  [[nodiscard]] Weight min_weighted_degree() const;

  /// Returns a graph with identical topology but all weights = 1.
  [[nodiscard]] Graph unweighted_copy() const;

  /// Returns the subgraph keeping edge e iff keep[e] (same node set; edge
  /// ids are renumbered; `kept_to_original` maps new ids back).
  [[nodiscard]] Graph edge_subgraph(const std::vector<bool>& keep,
                                    std::vector<EdgeId>* kept_to_original =
                                        nullptr) const;

  /// Structural sanity check; throws InvariantError on corruption.
  void validate() const;

  /// Heap bytes held by the edge list and the CSR adjacency cache — the
  /// serving registry's byte-budget accounting (util/mem.h conventions:
  /// capacity-based, excludes sizeof(*this)).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  void finalize() const;
  /// In-place CSR append for a pure-insert batch: new edges have the
  /// largest ids, so each node's new ports belong at the end of its
  /// segment — slide segments right and fill, no counting re-sort.
  void patch_ports_for_inserts(std::size_t first_new) const;

  std::size_t n_{0};
  std::vector<Edge> edges_;
  // Lazy CSR adjacency cache over edges_ (see ports()).
  mutable std::vector<Port> flat_ports_;
  mutable std::vector<std::uint32_t> offset_;
  mutable bool dirty_{true};
};

}  // namespace dmc
