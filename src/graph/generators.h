// Graph family generators for tests, examples, and experiments.
//
// Families are chosen to stress the quantities in the paper's bounds:
//   * n-scaling with small diameter          → erdos_renyi, random_regular
//   * diameter-dominated instances           → path_of_cliques, cycle, grid
//   * known planted minimum cuts (λ control) → planted_cut, barbell,
//                                               planted_partition
// Every generator is deterministic in (parameters, seed).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "graph/graph.h"

namespace dmc {

/// Simple path 0-1-…-(n-1).
[[nodiscard]] Graph make_path(std::size_t n, Weight w = 1);

/// Cycle on n ≥ 3 nodes.  λ = 2w, D = ⌊n/2⌋.
[[nodiscard]] Graph make_cycle(std::size_t n, Weight w = 1);

/// Complete graph K_n.  λ = (n-1)·w, D = 1.
[[nodiscard]] Graph make_complete(std::size_t n, Weight w = 1);

/// Star with center 0.  λ = w, D = 2.
[[nodiscard]] Graph make_star(std::size_t n, Weight w = 1);

/// rows×cols grid.  λ = 2w (corner), D = rows+cols-2.
[[nodiscard]] Graph make_grid(std::size_t rows, std::size_t cols,
                              Weight w = 1);

/// rows×cols torus (wrap-around grid); needs rows,cols ≥ 3.  λ = 4w.
[[nodiscard]] Graph make_torus(std::size_t rows, std::size_t cols,
                               Weight w = 1);

/// d-dimensional hypercube (n = 2^d).  λ = d·w, D = d.
[[nodiscard]] Graph make_hypercube(std::size_t dims, Weight w = 1);

/// G(n, p) Erdős–Rényi; retries until connected (throws after 64 attempts —
/// pick p above the connectivity threshold).  Weights uniform in
/// [min_w, max_w].
[[nodiscard]] Graph make_erdos_renyi(std::size_t n, double p,
                                     std::uint64_t seed, Weight min_w = 1,
                                     Weight max_w = 1);

/// Random d-regular (configuration model with rejection of self-loops and
/// parallel edges); retries until simple and connected.
[[nodiscard]] Graph make_random_regular(std::size_t n, std::size_t d,
                                        std::uint64_t seed, Weight w = 1);

/// Uniform random spanning-tree-ish random tree: node i ≥ 1 attaches to a
/// uniform node < i (random recursive tree).
[[nodiscard]] Graph make_random_tree(std::size_t n, std::uint64_t seed,
                                     Weight min_w = 1, Weight max_w = 1);

/// Two cliques of size n/2 joined by `bridge_edges` cross edges of weight
/// `bridge_w`.  If bridge_w·bridge_edges < (n/2-1), the planted cut IS the
/// minimum cut with value bridge_edges·bridge_w.
[[nodiscard]] Graph make_barbell(std::size_t n, std::size_t bridge_edges,
                                 Weight bridge_w, std::uint64_t seed);

/// Two G(n/2, p_in) communities with exactly `cross` random cross edges of
/// weight `cross_w`.  Generator guarantees both sides connected.
[[nodiscard]] Graph make_planted_cut(std::size_t n, double p_in,
                                     std::size_t cross, Weight cross_w,
                                     std::uint64_t seed);

/// k cliques of size s chained by single edges — diameter Θ(k), so round
/// counts become D-dominated.  λ = chain edge weight w_chain.
[[nodiscard]] Graph make_path_of_cliques(std::size_t cliques,
                                         std::size_t clique_size,
                                         Weight w_chain = 1,
                                         std::uint64_t seed = 0);

/// Random connected graph with exactly m edges: a random recursive tree
/// plus m-(n-1) uniform extra edges (parallel edges allowed=false).
[[nodiscard]] Graph make_random_connected(std::size_t n, std::size_t m,
                                          std::uint64_t seed,
                                          Weight min_w = 1, Weight max_w = 1);

/// Reassigns uniform random weights in [min_w, max_w] (same topology).
[[nodiscard]] Graph with_random_weights(const Graph& g, std::uint64_t seed,
                                        Weight min_w, Weight max_w);

// --- named family registry (dmc::check scenario-matrix plumbing) ---------
// One uniform signature over the generators above: every family maps
// (n, seed, weight range) to a connected instance of roughly n nodes
// (families with structural constraints round n — e.g. random_regular
// needs it even, torus squares it).  Deterministic in all arguments.

struct GraphFamily {
  const char* name;
  std::size_t min_n;  ///< smallest supported target size
  Graph (*make)(std::size_t n, std::uint64_t seed, Weight min_w,
                Weight max_w);
};

/// All registered families, fixed order (scenario ids index into this).
[[nodiscard]] std::span<const GraphFamily> graph_families();

/// Lookup by name; throws PreconditionError listing the known names.
[[nodiscard]] const GraphFamily& graph_family(std::string_view name);

}  // namespace dmc
