// Minimum spanning trees under a *tie-broken total order* on edges.
//
// Thorup's greedy tree packing repeatedly asks for an MST with respect to
// cumulative loads: tree Tᵢ is a minimum spanning tree w.r.t. the loads
// induced by T₁…Tᵢ₋₁, where load(e) = (#previous trees containing e)/w(e).
// We therefore abstract the edge order as `EdgeKey` = the rational
// load/weight compared exactly by cross-multiplication, tie-broken by raw
// weight and finally EdgeId so the order is total and identical at every
// node of the distributed algorithm (determinism of the simulator and the
// MST cut/cycle properties both rely on totality).
#pragma once

#include <compare>
#include <vector>

#include "graph/graph.h"

namespace dmc {

/// Comparable key of an edge in a load-weighted MST computation.
struct EdgeKey {
  std::uint64_t load{0};  ///< number of previous trees using the edge
  Weight w{1};            ///< edge weight (≥ 1)
  EdgeId id{kNoEdge};     ///< tie-break

  /// Orders by exact rational load/w, then by id.  Cross products fit in
  /// u64: load ≤ #trees ≤ 2^20, w ≤ 2^32.
  [[nodiscard]] friend std::strong_ordering operator<=>(const EdgeKey& a,
                                                        const EdgeKey& b) {
    const std::uint64_t lhs = a.load * b.w;
    const std::uint64_t rhs = b.load * a.w;
    if (lhs != rhs) return lhs <=> rhs;
    return a.id <=> b.id;
  }
  [[nodiscard]] friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
    return (a <=> b) == std::strong_ordering::equal;
  }
};

/// Plain weight-ordered key (weight, id) for ordinary MSTs.
[[nodiscard]] std::vector<EdgeKey> weight_keys(const Graph& g);

/// Load-ordered keys for tree packing.
[[nodiscard]] std::vector<EdgeKey> load_keys(const Graph& g,
                                             const std::vector<std::uint64_t>&
                                                 loads);

/// Kruskal under the given key order; returns the n-1 chosen edge ids.
/// Requires a connected graph.
[[nodiscard]] std::vector<EdgeId> kruskal(const Graph& g,
                                          const std::vector<EdgeKey>& keys);

/// Kruskal under plain weights.
[[nodiscard]] std::vector<EdgeId> kruskal(const Graph& g);

/// Total weight of a set of edges.
[[nodiscard]] Weight edges_weight(const Graph& g,
                                  const std::vector<EdgeId>& ids);

}  // namespace dmc
