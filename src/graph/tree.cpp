#include "graph/tree.h"

#include <algorithm>

#include "util/bit_math.h"

namespace dmc {

RootedTree::RootedTree(std::vector<NodeId> parent,
                       std::vector<EdgeId> parent_edge, NodeId root)
    : parent_(std::move(parent)),
      parent_edge_(std::move(parent_edge)),
      root_(root) {
  DMC_REQUIRE(!parent_.empty());
  DMC_REQUIRE(parent_edge_.size() == parent_.size());
  DMC_REQUIRE(root_ < parent_.size());
  DMC_REQUIRE_MSG(parent_[root_] == kNoNode, "root must have no parent");
  build_derived();
}

RootedTree RootedTree::from_edges(const Graph& g,
                                  const std::vector<EdgeId>& tree_edges,
                                  NodeId root) {
  DMC_REQUIRE(root < g.num_nodes());
  DMC_REQUIRE_MSG(tree_edges.size() == g.num_nodes() - 1,
                  "spanning tree needs exactly n-1 edges");
  // Adjacency restricted to the tree edges.
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adj(g.num_nodes());
  for (const EdgeId e : tree_edges) {
    const Edge& ed = g.edge(e);
    adj[ed.u].push_back({ed.v, e});
    adj[ed.v].push_back({ed.u, e});
  }
  std::vector<NodeId> parent(g.num_nodes(), kNoNode);
  std::vector<EdgeId> parent_edge(g.num_nodes(), kNoEdge);
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack{root};
  seen[root] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++visited;
    for (const auto& [peer, e] : adj[v]) {
      if (seen[peer]) continue;
      seen[peer] = true;
      parent[peer] = v;
      parent_edge[peer] = e;
      stack.push_back(peer);
    }
  }
  DMC_REQUIRE_MSG(visited == g.num_nodes(),
                  "tree_edges do not span the graph");
  return RootedTree{std::move(parent), std::move(parent_edge), root};
}

void RootedTree::build_derived() {
  const std::size_t n = parent_.size();
  children_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (v == root_) continue;
    DMC_REQUIRE_MSG(parent_[v] != kNoNode && parent_[v] < n,
                    "node " << v << " has invalid parent");
    children_[parent_[v]].push_back(v);
  }

  depth_.assign(n, 0);
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  bottom_up_.clear();
  bottom_up_.reserve(n);

  // Iterative DFS from the root computing depth + Euler times.
  std::uint32_t timer = 0;
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.reserve(n);
  stack.push_back({root_, 0});
  tin_[root_] = timer++;
  std::size_t visited = 1;
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    if (idx < children_[v].size()) {
      const NodeId c = children_[v][idx++];
      depth_[c] = depth_[v] + 1;
      height_ = std::max(height_, depth_[c]);
      tin_[c] = timer++;
      ++visited;
      stack.push_back({c, 0});
    } else {
      tout_[v] = timer;
      bottom_up_.push_back(v);
      stack.pop_back();
    }
  }
  DMC_REQUIRE_MSG(visited == n, "parent array does not form a single tree");

  // Binary lifting.
  const std::uint32_t levels = std::max<std::uint32_t>(1, ceil_log2(n) + 1);
  up_.assign(levels, std::vector<NodeId>(n));
  for (NodeId v = 0; v < n; ++v)
    up_[0][v] = parent_[v] == kNoNode ? v : parent_[v];
  for (std::uint32_t k = 1; k < levels; ++k)
    for (NodeId v = 0; v < n; ++v) up_[k][v] = up_[k - 1][up_[k - 1][v]];
}

NodeId RootedTree::lca(NodeId a, NodeId b) const {
  DMC_REQUIRE(a < num_nodes() && b < num_nodes());
  if (is_ancestor(a, b)) return a;
  if (is_ancestor(b, a)) return b;
  for (std::size_t k = up_.size(); k-- > 0;) {
    if (!is_ancestor(up_[k][a], b)) a = up_[k][a];
  }
  return parent_[a];
}

std::vector<NodeId> RootedTree::subtree_nodes(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < num_nodes(); ++u)
    if (is_ancestor(v, u)) out.push_back(u);
  return out;
}

}  // namespace dmc
