#include "graph/graph.h"

#include "util/checked.h"
#include "util/mem.h"

namespace dmc {

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  DMC_REQUIRE(u < n_ && v < n_);
  DMC_REQUIRE_MSG(u != v, "self-loops are not allowed (node " << u << ")");
  // Weight-range violations are invariant (not precondition) errors: a
  // weight above kMaxWeight would not fail at insertion but silently
  // overflow cut values and degree sums deep inside the pipeline, and
  // w == 0 would make "edge exists" and "edge contributes to a cut"
  // disagree.  Both corrupt every downstream computation, so they fail
  // loud here with the invariant they would have broken.
  DMC_ASSERT_MSG(w >= 1 && w <= kMaxWeight,
                 "edge weight " << w << " out of [1, 2^32) — would overflow "
                 "64-bit cut arithmetic (w > kMaxWeight) or produce a "
                 "zero-capacity edge (w == 0)");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  dirty_ = true;
  return id;
}

void Graph::finalize() const {
  // Counting sort of the 2m directed ports by owner, stable in edge-id
  // order — per node that is exactly the insertion order the old
  // vector-of-vectors adjacency produced, so port numbers (and therefore
  // every protocol's observable behavior) are unchanged.
  offset_.assign(n_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offset_[e.u + 1];
    ++offset_[e.v + 1];
  }
  for (std::size_t v = 0; v < n_; ++v) offset_[v + 1] += offset_[v];
  flat_ports_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(offset_.begin(), offset_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    flat_ports_[cursor[e.u]++] = Port{e.v, id};
    flat_ports_[cursor[e.v]++] = Port{e.u, id};
  }
  dirty_ = false;
}

Weight Graph::weighted_degree(NodeId v) const {
  Weight sum = 0;
  for (const Port& p : ports(v)) sum = checked_add(sum, edges_[p.edge].w);
  return sum;
}

Weight Graph::total_weight() const {
  Weight sum = 0;
  for (const Edge& e : edges_) sum = checked_add(sum, e.w);
  return sum;
}

Weight Graph::min_weighted_degree() const {
  DMC_REQUIRE(num_nodes() > 0);
  Weight best = weighted_degree(0);
  for (NodeId v = 1; v < num_nodes(); ++v)
    best = std::min(best, weighted_degree(v));
  return best;
}

Graph Graph::unweighted_copy() const {
  Graph g{num_nodes()};
  for (const Edge& e : edges_) g.add_edge(e.u, e.v, 1);
  return g;
}

Graph Graph::edge_subgraph(const std::vector<bool>& keep,
                           std::vector<EdgeId>* kept_to_original) const {
  DMC_REQUIRE(keep.size() == edges_.size());
  Graph g{num_nodes()};
  if (kept_to_original) kept_to_original->clear();
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!keep[e]) continue;
    g.add_edge(edges_[e].u, edges_[e].v, edges_[e].w);
    if (kept_to_original) kept_to_original->push_back(e);
  }
  return g;
}

void Graph::validate() const {
  for (const Edge& e : edges_) {
    DMC_ASSERT(e.u < n_ && e.v < n_ && e.u != e.v);
    DMC_ASSERT(e.w >= 1 && e.w <= kMaxWeight);
  }
  std::size_t port_count = 0;
  for (NodeId v = 0; v < n_; ++v) {
    for (const Port& p : ports(v)) {
      DMC_ASSERT(p.peer < n_);
      DMC_ASSERT(p.edge < edges_.size());
      const Edge& e = edges_[p.edge];
      DMC_ASSERT((e.u == v && e.v == p.peer) || (e.v == v && e.u == p.peer));
      ++port_count;
    }
  }
  DMC_ASSERT(port_count == 2 * edges_.size());
}

std::size_t Graph::memory_bytes() const {
  return vec_bytes(edges_) + vec_bytes(flat_ports_) + vec_bytes(offset_);
}

}  // namespace dmc
