#include "graph/graph.h"

#include "util/checked.h"
#include "util/mem.h"

namespace dmc {

EdgeId Graph::add_edge(NodeId u, NodeId v, Weight w) {
  DMC_REQUIRE(u < n_ && v < n_);
  DMC_REQUIRE_MSG(u != v, "self-loops are not allowed (node " << u << ")");
  // Weight-range violations are invariant (not precondition) errors: a
  // weight above kMaxWeight would not fail at insertion but silently
  // overflow cut values and degree sums deep inside the pipeline, and
  // w == 0 would make "edge exists" and "edge contributes to a cut"
  // disagree.  Both corrupt every downstream computation, so they fail
  // loud here with the invariant they would have broken.
  DMC_ASSERT_MSG(w >= 1 && w <= kMaxWeight,
                 "edge weight " << w << " out of [1, 2^32) — would overflow "
                 "64-bit cut arithmetic (w > kMaxWeight) or produce a "
                 "zero-capacity edge (w == 0)");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{u, v, w});
  dirty_ = true;
  return id;
}

const char* to_string(UpdateKind k) {
  switch (k) {
    case UpdateKind::kInsert: return "insert";
    case UpdateKind::kDelete: return "delete";
    case UpdateKind::kReweight: return "reweight";
  }
  return "?";
}

UpdateSummary Graph::apply_updates(std::span<const EdgeUpdate> batch) {
  const std::size_t m0 = edges_.size();
  UpdateSummary s;
  s.edges_before = m0;

  // Pass 1 — validate the whole batch against the evolving id space
  // WITHOUT mutating anything, so a bad entry anywhere leaves the graph
  // exactly as it was.  `alive` tracks pre-batch ids plus the batch's own
  // inserts (ids m0, m0+1, … in batch order).
  std::vector<std::uint8_t> dead(m0, 0);
  std::vector<std::uint8_t> dead_new;
  std::size_t inserts_seen = 0;
  const auto alive = [&](EdgeId e) {
    if (e < m0) return dead[e] == 0;
    const std::size_t k = e - m0;
    return k < inserts_seen && dead_new[k] == 0;
  };
  const auto mark_dead = [&](EdgeId e) {
    if (e < m0)
      dead[e] = 1;
    else
      dead_new[e - m0] = 1;
  };
  for (const EdgeUpdate& u : batch) {
    switch (u.kind) {
      case UpdateKind::kInsert:
        // The add_edge contract, all as InvariantError: a bad entry deep
        // in a batch is corruption-in-waiting, not a caller typo.
        DMC_ASSERT_MSG(u.u < n_ && u.v < n_,
                       "update inserts edge (" << u.u << ", " << u.v
                           << ") with an endpoint out of range [0, " << n_
                           << ")");
        DMC_ASSERT_MSG(u.u != u.v, "update inserts a self-loop at node "
                                       << u.u
                                       << " — self-loops never affect any "
                                          "cut and are not allowed");
        DMC_ASSERT_MSG(u.w >= 1 && u.w <= kMaxWeight,
                       "update edge weight " << u.w << " out of [1, 2^32) — "
                           "would overflow 64-bit cut arithmetic "
                           "(w > kMaxWeight) or produce a zero-capacity "
                           "edge (w == 0)");
        ++inserts_seen;
        dead_new.push_back(0);
        break;
      case UpdateKind::kDelete:
        DMC_ASSERT_MSG(u.edge < m0 + inserts_seen,
                       "update deletes edge id " << u.edge
                           << " out of range [0, " << m0 + inserts_seen
                           << ")");
        DMC_ASSERT_MSG(alive(u.edge), "update deletes edge id "
                                          << u.edge
                                          << " twice in the same batch");
        mark_dead(u.edge);
        break;
      case UpdateKind::kReweight:
        DMC_ASSERT_MSG(u.edge < m0 + inserts_seen,
                       "update reweights edge id " << u.edge
                           << " out of range [0, " << m0 + inserts_seen
                           << ")");
        DMC_ASSERT_MSG(alive(u.edge), "update reweights edge id "
                                          << u.edge
                                          << " already deleted in this "
                                             "batch");
        DMC_ASSERT_MSG(u.w >= 1 && u.w <= kMaxWeight,
                       "update edge weight " << u.w << " out of [1, 2^32) — "
                           "would overflow 64-bit cut arithmetic "
                           "(w > kMaxWeight) or produce a zero-capacity "
                           "edge (w == 0)");
        break;
    }
  }

  // Pass 2 — mutate, in batch order (inserts append as encountered, so a
  // later delete/reweight of a batch-inserted id targets a real slot).
  const bool csr_was_clean = !dirty_;
  std::vector<std::uint8_t> touched(m0 + inserts_seen, 0);
  edges_.reserve(m0 + inserts_seen);
  for (const EdgeUpdate& u : batch) {
    switch (u.kind) {
      case UpdateKind::kInsert:
        touched[edges_.size()] = 1;
        edges_.push_back(Edge{u.u, u.v, u.w});
        ++s.inserted;
        break;
      case UpdateKind::kDelete:
        touched[u.edge] = 1;
        ++s.deleted;
        break;
      case UpdateKind::kReweight:
        touched[u.edge] = 1;
        edges_[u.edge].w = u.w;
        ++s.reweighted;
        break;
    }
  }
  for (const std::uint8_t t : touched) s.touched_edges += t;

  if (s.deleted != 0) {
    // Order-preserving compaction: surviving edges keep their relative
    // order, so the renumbering matches a from-scratch rebuild.  Ids
    // move, so the CSR goes through the full lazy counting-sort rebuild
    // (which reuses the buffers' capacity).
    std::size_t out = 0;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      const bool is_dead = e < m0 ? dead[e] != 0 : dead_new[e - m0] != 0;
      if (!is_dead) edges_[out++] = edges_[e];
    }
    edges_.resize(out);
    dirty_ = true;
  } else if (s.inserted != 0 && csr_was_clean) {
    patch_ports_for_inserts(m0);
  }
  // Reweight-only: ports store (peer, edge id), never weights — the CSR
  // stays valid untouched.

  s.edges_after = edges_.size();
  return s;
}

void Graph::patch_ports_for_inserts(std::size_t first_new) const {
  const std::size_t added = edges_.size() - first_new;
  if (added == 0) return;
  // extra[v] (after the prefix pass) = new ports of nodes < v; extra[n_]
  // = 2·added, the total shift.
  std::vector<std::uint32_t> extra(n_ + 1, 0);
  for (std::size_t id = first_new; id < edges_.size(); ++id) {
    ++extra[edges_[id].u + 1];
    ++extra[edges_[id].v + 1];
  }
  for (std::size_t v = 0; v < n_; ++v) extra[v + 1] += extra[v];
  flat_ports_.resize(flat_ports_.size() + 2 * added);
  // Slide each node's old segment right by its prefix shift, highest node
  // first — segments only move right, so a back-to-front walk never
  // overwrites unread ports.
  for (std::size_t v = n_; v-- > 0;) {
    if (extra[v] == 0) break;  // nodes below have zero shift
    const std::uint32_t len = offset_[v + 1] - offset_[v];
    const std::uint32_t dst = offset_[v] + extra[v];
    for (std::uint32_t i = len; i-- > 0;)
      flat_ports_[dst + i] = flat_ports_[offset_[v] + i];
  }
  // New ports go at the end of each node's (shifted) segment, in edge-id
  // order — exactly where the counting sort would place the largest ids.
  std::vector<std::uint32_t> cursor(n_);
  for (std::size_t v = 0; v < n_; ++v) cursor[v] = offset_[v + 1] + extra[v];
  for (std::size_t id = first_new; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    flat_ports_[cursor[e.u]++] = Port{e.v, static_cast<EdgeId>(id)};
    flat_ports_[cursor[e.v]++] = Port{e.u, static_cast<EdgeId>(id)};
  }
  for (std::size_t v = 0; v <= n_; ++v) offset_[v] += extra[v];
}

void Graph::finalize() const {
  // Counting sort of the 2m directed ports by owner, stable in edge-id
  // order — per node that is exactly the insertion order the old
  // vector-of-vectors adjacency produced, so port numbers (and therefore
  // every protocol's observable behavior) are unchanged.
  offset_.assign(n_ + 1, 0);
  for (const Edge& e : edges_) {
    ++offset_[e.u + 1];
    ++offset_[e.v + 1];
  }
  for (std::size_t v = 0; v < n_; ++v) offset_[v + 1] += offset_[v];
  flat_ports_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(offset_.begin(), offset_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    flat_ports_[cursor[e.u]++] = Port{e.v, id};
    flat_ports_[cursor[e.v]++] = Port{e.u, id};
  }
  dirty_ = false;
}

Weight Graph::weighted_degree(NodeId v) const {
  Weight sum = 0;
  for (const Port& p : ports(v)) sum = checked_add(sum, edges_[p.edge].w);
  return sum;
}

Weight Graph::total_weight() const {
  Weight sum = 0;
  for (const Edge& e : edges_) sum = checked_add(sum, e.w);
  return sum;
}

Weight Graph::min_weighted_degree() const {
  DMC_REQUIRE(num_nodes() > 0);
  Weight best = weighted_degree(0);
  for (NodeId v = 1; v < num_nodes(); ++v)
    best = std::min(best, weighted_degree(v));
  return best;
}

Graph Graph::unweighted_copy() const {
  Graph g{num_nodes()};
  for (const Edge& e : edges_) g.add_edge(e.u, e.v, 1);
  return g;
}

Graph Graph::edge_subgraph(const std::vector<bool>& keep,
                           std::vector<EdgeId>* kept_to_original) const {
  DMC_REQUIRE(keep.size() == edges_.size());
  Graph g{num_nodes()};
  if (kept_to_original) kept_to_original->clear();
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (!keep[e]) continue;
    g.add_edge(edges_[e].u, edges_[e].v, edges_[e].w);
    if (kept_to_original) kept_to_original->push_back(e);
  }
  return g;
}

void Graph::validate() const {
  for (const Edge& e : edges_) {
    DMC_ASSERT(e.u < n_ && e.v < n_ && e.u != e.v);
    DMC_ASSERT(e.w >= 1 && e.w <= kMaxWeight);
  }
  std::size_t port_count = 0;
  for (NodeId v = 0; v < n_; ++v) {
    for (const Port& p : ports(v)) {
      DMC_ASSERT(p.peer < n_);
      DMC_ASSERT(p.edge < edges_.size());
      const Edge& e = edges_[p.edge];
      DMC_ASSERT((e.u == v && e.v == p.peer) || (e.v == v && e.u == p.peer));
      ++port_count;
    }
  }
  DMC_ASSERT(port_count == 2 * edges_.size());
}

std::size_t Graph::memory_bytes() const {
  return vec_bytes(edges_) + vec_bytes(flat_ports_) + vec_bytes(offset_);
}

}  // namespace dmc
