#include "graph/io.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace dmc {

void write_graph(std::ostream& os, const Graph& g) {
  os << "dmc-graph 1\n" << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

Graph read_graph(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DMC_REQUIRE_MSG(magic == "dmc-graph" && version == 1,
                  "bad graph header: '" << magic << " " << version << "'");
  std::size_t n = 0, m = 0;
  is >> n >> m;
  DMC_REQUIRE_MSG(is.good(), "truncated graph header");
  Graph g{n};
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0, v = 0;
    Weight w = 0;
    is >> u >> v >> w;
    DMC_REQUIRE_MSG(!is.fail(), "truncated edge list at edge " << i);
    g.add_edge(u, v, w);
  }
  return g;
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream f{path};
  DMC_REQUIRE_MSG(f.good(), "cannot open '" << path << "' for writing");
  write_graph(f, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream f{path};
  DMC_REQUIRE_MSG(f.good(), "cannot open '" << path << "' for reading");
  return read_graph(f);
}

void write_dot(std::ostream& os, const Graph& g,
               const std::vector<bool>* side) {
  os << "graph dmc {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    if (side && (*side)[v])
      os << " [style=filled, fillcolor=lightblue]";
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v;
    if (e.w != 1) os << " [label=\"" << e.w << "\"]";
    const bool crossing = side && (*side)[e.u] != (*side)[e.v];
    if (crossing) os << " [color=red, penwidth=2]";
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace dmc
