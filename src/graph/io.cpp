#include "graph/io.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace dmc {

void write_graph(std::ostream& os, const Graph& g) {
  os << "dmc-graph 1\n" << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) os << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

Graph read_graph(std::istream& is) {
  // Malformed CONTENT is an InvariantError throughout (the bytes violate
  // the format's invariants — DESIGN.md "Verification architecture");
  // unopenable files in load_graph stay PreconditionError.
  std::string magic;
  int version = 0;
  is >> magic >> version;
  DMC_ASSERT_MSG(!is.fail() && magic == "dmc-graph" && version == 1,
                 "bad graph header: '" << magic << " " << version << "'");
  std::uint64_t n = 0, m = 0;
  is >> n >> m;
  DMC_ASSERT_MSG(!is.fail(), "truncated graph header");
  DMC_ASSERT_MSG(n <= kMaxIoNodes && m <= kMaxIoEdges,
                 "implausible graph header " << n << ' ' << m
                 << " (caps: " << kMaxIoNodes << " nodes, " << kMaxIoEdges
                 << " edges)");
  Graph g{n};
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0, w = 0;
    is >> u >> v >> w;
    DMC_ASSERT_MSG(!is.fail(), "truncated edge list at edge " << i);
    DMC_ASSERT_MSG(u < n && v < n,
                   "edge " << i << " endpoint out of range: " << u << ' '
                           << v << " (n = " << n << ")");
    DMC_ASSERT_MSG(u != v, "edge " << i << " is a self-loop at node " << u);
    // w == 0 / w > kMaxWeight fail inside add_edge (also InvariantError).
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  std::string trailing;
  DMC_ASSERT_MSG(!(is >> trailing),
                 "trailing garbage '" << trailing << "' after edge list");
  return g;
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream f{path};
  DMC_REQUIRE_MSG(f.good(), "cannot open '" << path << "' for writing");
  write_graph(f, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream f{path};
  DMC_REQUIRE_MSG(f.good(), "cannot open '" << path << "' for reading");
  return read_graph(f);
}

void write_dot(std::ostream& os, const Graph& g,
               const std::vector<bool>* side) {
  os << "graph dmc {\n  node [shape=circle];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v;
    if (side && (*side)[v])
      os << " [style=filled, fillcolor=lightblue]";
    os << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v;
    if (e.w != 1) os << " [label=\"" << e.w << "\"]";
    const bool crossing = side && (*side)[e.u] != (*side)[e.v];
    if (crossing) os << " [color=red, penwidth=2]";
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace dmc
