#include "graph/mst.h"

#include <algorithm>
#include <numeric>

#include "util/dsu.h"

namespace dmc {

std::vector<EdgeKey> weight_keys(const Graph& g) {
  std::vector<EdgeKey> keys(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    keys[e] = EdgeKey{/*load=*/g.edge(e).w, /*w=*/1, e};
  // Encoding weight as load with unit denominator gives the plain weight
  // order while reusing the same comparison machinery.
  return keys;
}

std::vector<EdgeKey> load_keys(const Graph& g,
                               const std::vector<std::uint64_t>& loads) {
  DMC_REQUIRE(loads.size() == g.num_edges());
  std::vector<EdgeKey> keys(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    keys[e] = EdgeKey{loads[e], g.edge(e).w, e};
  return keys;
}

std::vector<EdgeId> kruskal(const Graph& g, const std::vector<EdgeKey>& keys) {
  DMC_REQUIRE(keys.size() == g.num_edges());
  DMC_REQUIRE(g.num_nodes() >= 1);
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return keys[a] < keys[b]; });
  Dsu dsu{g.num_nodes()};
  std::vector<EdgeId> chosen;
  chosen.reserve(g.num_nodes() - 1);
  for (const EdgeId e : order) {
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) chosen.push_back(e);
    if (chosen.size() + 1 == g.num_nodes()) break;
  }
  DMC_REQUIRE_MSG(chosen.size() + 1 == g.num_nodes(),
                  "kruskal: graph is not connected");
  return chosen;
}

std::vector<EdgeId> kruskal(const Graph& g) {
  return kruskal(g, weight_keys(g));
}

Weight edges_weight(const Graph& g, const std::vector<EdgeId>& ids) {
  Weight sum = 0;
  for (const EdgeId e : ids) sum += g.edge(e).w;
  return sum;
}

}  // namespace dmc
