#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

namespace dmc {

BfsResult bfs(const Graph& g, NodeId source) {
  std::vector<bool> all(g.num_edges(), true);
  return bfs_masked(g, source, all);
}

BfsResult bfs_masked(const Graph& g, NodeId source,
                     const std::vector<bool>& mask) {
  DMC_REQUIRE(source < g.num_nodes());
  DMC_REQUIRE(mask.size() == g.num_edges());
  BfsResult r;
  r.dist.assign(g.num_nodes(), BfsResult::kUnreached);
  r.parent.assign(g.num_nodes(), kNoNode);
  r.parent_edge.assign(g.num_nodes(), kNoEdge);
  r.order.clear();
  std::queue<NodeId> q;
  r.dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    r.order.push_back(v);
    for (const Port& p : g.ports(v)) {
      if (!mask[p.edge]) continue;
      if (r.dist[p.peer] != BfsResult::kUnreached) continue;
      r.dist[p.peer] = r.dist[v] + 1;
      r.parent[p.peer] = v;
      r.parent_edge[p.peer] = p.edge;
      q.push(p.peer);
    }
  }
  return r;
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> comp(g.num_nodes(),
                                  static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != static_cast<std::uint32_t>(-1)) continue;
    const BfsResult r = bfs(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (r.dist[v] != BfsResult::kUnreached) comp[v] = next;
    ++next;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const BfsResult r = bfs(g, 0);
  return std::none_of(r.dist.begin(), r.dist.end(), [](std::uint32_t d) {
    return d == BfsResult::kUnreached;
  });
}

std::uint32_t eccentricity(const Graph& g, NodeId v) {
  const BfsResult r = bfs(g, v);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : r.dist) {
    DMC_REQUIRE_MSG(d != BfsResult::kUnreached,
                    "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Graph& g) {
  DMC_REQUIRE(g.num_nodes() >= 1);
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    best = std::max(best, eccentricity(g, v));
  return best;
}

std::uint32_t diameter_double_sweep(const Graph& g) {
  DMC_REQUIRE(g.num_nodes() >= 1);
  const BfsResult first = bfs(g, 0);
  NodeId far = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DMC_REQUIRE(first.dist[v] != BfsResult::kUnreached);
    if (first.dist[v] > first.dist[far]) far = v;
  }
  return eccentricity(g, far);
}

}  // namespace dmc
