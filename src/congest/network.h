// The synchronous CONGEST network engine.
//
// Execution model (standard CONGEST, [Pel00]):
//   * rounds are synchronous; in each round every node runs local
//     computation, then sends ≤ 1 message of ≤ kMaxWords words per incident
//     edge direction; messages are delivered at the start of the next round;
//   * node programs may not read each other's state, so the execution order
//     within a round is unobservable — the Network delegates the sweep to a
//     pluggable Engine (sequential or sharded; both bit-reproducible);
//   * a protocol run ends at quiescence: no message in flight and every
//     node `local_done`.  Quiescence is tracked by an incrementally
//     maintained done-counter (a node's done bit can only change when the
//     node executes), so no per-round O(n) scan exists in either
//     scheduling mode.  Real deployments detect this with an explicit
//     barrier over a BFS tree; see Schedule for how those rounds are
//     charged.
//
// Mail is slot-addressed: the "≤ 1 message per directed edge per round"
// rule means every delivery has a fixed slot, CSR-indexed by (receiver,
// receiver port).  Sending writes the message straight into the peer slot
// found via a reverse-port table precomputed at construction — O(1), no
// allocation, no sort, no contention under the sharded engine.  Two slot
// planes alternate by round parity (writes go to plane r&1, reads come
// from the previous round's plane), and occupancy is tracked by per-slot
// round stamps so nothing is ever cleared between rounds.
//
// Slot storage is structure-of-arrays (see DESIGN.md "Hot-loop memory
// layout"): per plane, a 32-bit stamp array (the only array the inbox scan
// touches — 16 slots per cache line), a packed tag/size header array, and
// a payload-word array.  Stamps are epoch-relative: the stored token is
// uint32(round − epoch_base).  When a very long session approaches the
// 32-bit token range the Network renormalizes between rounds — remaps the
// one live token in the read plane, wipes the dead write plane and
// activation marks to kNeverStamp32, and rebases the epoch.  Quiescence at
// run() boundaries plus parity-disjoint planes make the sweep invisible:
// results and stats are bit-identical whether or not it fires (enforced by
// tests/test_stamp_epoch.cpp with a tiny forced epoch).
//
// Scheduling: a protocol declares Dense (every node, every round) or
// EventDriven via Protocol::scheduling().  Under EventDriven the Network
// records, at send time, the receiver of every message into the sending
// shard's activation bucket (dedup'd by a per-shard round-stamp array, so
// the sharded engine stays contention-free); nodes with round-r+1 work but
// no incoming mail call Mailbox::request_wake().  Buckets are sub-bucketed
// by owner shard (owner_of(u) = u / ceil(n/S)), so begin_round() merges
// them one owner range at a time: each range concatenates S short runs and
// is sorted/dedup'd independently, and the owner ranges concatenate into a
// globally ascending active list without a global sort.  Both engines
// iterate only that list — node-step cost falls from rounds·n to
// Σ_r active(r), with bit-identical results and stats (see DESIGN.md
// "Sparse scheduling").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "congest/arena.h"
#include "congest/engine.h"
#include "congest/faults.h"
#include "congest/mailbox.h"
#include "congest/message.h"
#include "congest/observer.h"
#include "congest/protocol.h"
#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

class Network {
 public:
  /// `engine == nullptr` picks the sequential reference engine.
  explicit Network(const Graph& g, std::unique_ptr<Engine> engine = nullptr);

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] std::size_t num_nodes() const { return g_->num_nodes(); }
  [[nodiscard]] const Engine& engine() const { return *engine_; }

  /// Runs one protocol to quiescence.  Returns the number of rounds
  /// executed.  Throws InvariantError if `max_rounds` is exceeded (deadlock
  /// guard); max_rounds == 0 picks a generous default of
  /// 64·(n + m) + 1024.
  std::uint64_t run(Protocol& p, std::uint64_t max_rounds = 0);

  [[nodiscard]] const CongestStats& stats() const { return stats_; }
  [[nodiscard]] CongestStats& stats() { return stats_; }

  /// Returns the network to the pristine just-constructed state — stats
  /// zeroed, every mail-slot stamp and activation mark back to
  /// kNeverStamp32, round counter and stamp epoch at 0 — WITHOUT
  /// reallocating any buffer or restarting the engine's worker pool.  A
  /// protocol run after reset() is bit-identical (results and all stats)
  /// to the same run on a fresh Network over the same graph and engine;
  /// see DESIGN.md "Serving layer" for the argument,
  /// tests/test_session.cpp for the enforcement.  The forced-scheduling
  /// override and the installed observer are configuration, not run
  /// state, and survive the reset.
  void reset();

  /// Re-derives every graph-dependent table after the borrowed Graph was
  /// mutated in place (Graph::apply_updates): the port-offset CSR, the
  /// reverse-port table, and — only when the directed-slot count changed —
  /// the slot planes are rebuilt; allocations are reused otherwise.  Ends
  /// in reset(), so the network is pristine over the updated topology.
  /// The node count must be unchanged (updates touch edges only), and
  /// configuration (scheduling override, observer, fault plan) survives
  /// exactly as across reset().  Reweight-only batches don't move ports —
  /// a plain reset() suffices for those; callers route here only on
  /// topology changes.
  void rebind_graph();

  /// Installs a phase/round observer (nullptr to clear).  Borrowed, not
  /// owned: the observer must outlive every run() it watches.  Observers
  /// are read-only except for cooperative cancellation (observer.h).
  void set_observer(RoundObserver* obs) { observer_ = obs; }
  [[nodiscard]] RoundObserver* observer() const { return observer_; }

  /// Per-solve scratch arena (arena.h): drivers draw transient buffers
  /// (evaluation weights, per-node aggregates, packing keys) from here
  /// instead of the heap; reset() rewinds it, so at steady state a warm
  /// query performs no allocation for arena-backed state.
  [[nodiscard]] Arena& arena() { return arena_; }

  /// Installs a deterministic fault plan for every subsequent run()
  /// (faults.h); nullopt — or an inactive plan — restores the reliable
  /// network bit-for-bit.  Validated against the graph (throws
  /// PreconditionError on bad rates / crash windows).  Like the
  /// scheduling override and the observer, the plan is configuration,
  /// not run state: it survives reset().  Faults are injected at the
  /// slot→mailbox boundary when the receiver executes, keyed on
  /// (plan seed, run-local round, slot/node) counter hashes alone, so a
  /// faulted run stays bit-identical across engines, thread counts, and
  /// scheduling modes; crash windows are processed between rounds on the
  /// coordinator.  A protocol whose fault_tolerance() does not cover a
  /// fired kind makes run() throw InvariantError naming the protocol and
  /// the first injected fault — never a silently wrong answer.
  void set_fault_plan(std::optional<FaultPlan> plan);
  [[nodiscard]] const FaultPlan* fault_plan() const {
    return plan_ ? &*plan_ : nullptr;
  }
  /// True when an installed plan can actually perturb runs.
  [[nodiscard]] bool fault_plan_active() const {
    return plan_ && plan_->active();
  }

  /// Forces a scheduling mode for every subsequent run(), overriding the
  /// protocols' own declarations — the A/B hook the scheduling-equivalence
  /// tests and the Dense-vs-EventDriven benches use.  std::nullopt
  /// restores per-protocol declarations.
  void force_scheduling(std::optional<Scheduling> s) { forced_ = s; }

  /// Scheduling mode of the current (or most recent) run.
  [[nodiscard]] Scheduling scheduling() const { return mode_; }

  /// Shrinks the stamp epoch so renormalization fires every `limit`
  /// rounds instead of every ~2^32 — the hook the wraparound regression
  /// test uses to exercise the sweep in seconds.  limit must be ≥ 4 (the
  /// renormalized epoch re-bases two rounds back, so smaller limits would
  /// renormalize every round).
  void set_stamp_epoch_limit_for_test(std::uint32_t limit);

  /// Heap bytes of the simulator's retained buffers — slot planes (stamp,
  /// header, payload), CSR port tables, activation buckets, done tracking,
  /// and the per-solve arena high-water — the dominant share of a warm
  /// session's footprint and the basis of the serving registry's LRU byte
  /// budget (serve/registry.h).  Capacity-based, excludes sizeof(*this).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Node steps charged to each engine shard during the most recent run()
  /// (reset at every run() start) — the observability hook the skewed
  /// active-list test uses to prove dynamic chunking touched every shard.
  /// Deliberately not part of CongestStats: the split across shards is
  /// engine-dependent by design, only the total is schedule-invariant.
  [[nodiscard]] const std::vector<std::uint64_t>& shard_node_steps() const {
    return shard_node_steps_;
  }

  // --- engine hooks (called by Engine implementations only) -------------

  /// Routes this thread's stat updates to counter block `shard`.  Engines
  /// call it once per worker per round, before executing any node.
  void bind_shard(std::size_t shard);

  /// Builds node v's mailbox over its delivery slots and runs its step.
  /// Also charges one node_step and folds v's done bit into the shard's
  /// incremental done-counter delta.
  void execute_node(NodeId v, Protocol& p);

  /// True when the current round executes every node: all rounds of a
  /// Dense run, and the first round of an EventDriven run (every node must
  /// get one bootstrap step to emit its initial sends and done bit).
  [[nodiscard]] bool dense_round() const { return dense_round_; }

  /// The nodes to execute this round, ascending and duplicate-free.
  /// Valid only when !dense_round().
  [[nodiscard]] const std::vector<NodeId>& active_nodes() const {
    return active_;
  }

 private:
  friend class Mailbox;

  /// Stamp value no round ever produces (epoch tokens stay strictly below
  /// the epoch limit, which is below this).
  static constexpr std::uint32_t kNeverStamp32 = ~std::uint32_t{0};
  /// Default renormalization period: epochs re-base a little before the
  /// token space is exhausted, leaving headroom below kNeverStamp32.
  static constexpr std::uint32_t kDefaultEpochLimit = 0xfffffff0u;

  /// "No fault recorded": above every packed (index << 2 | kind) code.
  static constexpr std::uint64_t kNoFaultCode = ~std::uint64_t{0};

  /// Per-shard, per-round statistics; merged with commutative reductions
  /// at the end of every round, so totals are schedule-independent.
  /// Padded to a cache line to avoid false sharing between workers.
  struct alignas(64) ShardCounters {
    std::uint64_t messages{0};
    std::uint64_t words{0};
    std::uint64_t node_steps{0};
    std::int64_t done_delta{0};  ///< Σ (done bit flips) of executed nodes
    std::uint8_t max_words{0};
    std::uint32_t max_edge_msgs{0};
    // Fault-injection tallies (zero on reliable runs).  first_code packs
    // (slot-space index << 2 | FaultKind) of the shard's earliest
    // injected read-side fault this round in the canonical slot order;
    // first_bad_code restricts to kinds outside the running protocol's
    // tolerance.  Both merge via min, so "first" is engine-independent.
    std::uint64_t drops{0};
    std::uint64_t dups{0};
    std::uint64_t reorders{0};
    std::uint64_t first_code{kNoFaultCode};
    std::uint64_t first_bad_code{kNoFaultCode};
  };

  /// Per-shard bucket of nodes activated for the NEXT round, sub-bucketed
  /// by owner shard (owner_of(u) = u / owner_stride_) so begin_round()
  /// can merge per owner range instead of globally.  `mark[v] == wtoken_`
  /// means v is already in this shard's bucket this round, so each bucket
  /// is duplicate-free without clearing (epoch stamps, like the mail
  /// slots); cross-shard duplicates are removed by the per-range
  /// sort+unique merge.  Only the owning worker thread touches a bucket.
  struct alignas(64) ActivationBucket {
    std::vector<std::vector<NodeId>> by_owner;
    std::vector<std::uint32_t> mark;
  };

  void send_from(NodeId from, std::uint32_t port, const Message& m);
  /// Records that `u` must execute next round (current shard's bucket).
  void activate(NodeId u);
  /// Mailbox::request_wake target; no-op outside EventDriven runs.
  void request_wake(NodeId v);
  /// execute_node's slow path under an active plan: materializes v's
  /// inbox with drop/dup/permute decisions applied, or skips v entirely
  /// while it is crashed.
  void execute_node_faulted(NodeId v, Protocol& p);
  /// Records one injected read-side fault into the shard counter block;
  /// returns true when the kind is outside the running protocol's
  /// tolerance (the round is then doomed to the named rejection).
  bool note_read_fault(ShardCounters& c, FaultKind k, std::uint64_t index);
  /// Processes crash entries/restarts scheduled for the current round —
  /// coordinator only, between begin_round() and the engine sweep.
  void apply_crash_transitions(Protocol& p);
  /// Decodes a packed read-fault code into forensic text.
  [[nodiscard]] std::string describe_read_fault(std::uint64_t code) const;
  [[noreturn]] void throw_fault_rejection(const Protocol& p) const;
  /// (Re)computes port_base_ + reverse_slot_ from the graph's current
  /// CSR; returns the directed-slot count.  Constructor + rebind_graph().
  std::uint32_t rebuild_port_tables();
  void begin_round();
  /// Folds shard counters into stats_ and the done-counter; returns
  /// messages sent this round.
  std::uint64_t end_round();
  /// Epoch-relative stamp token of round r.
  [[nodiscard]] std::uint32_t token(std::uint64_t r) const {
    return static_cast<std::uint32_t>(r - epoch_base_);
  }
  /// Re-bases the stamp epoch (see file comment).  Called from
  /// begin_round() with round_ already advanced and no node executing.
  void renormalize_epoch();

  const Graph* g_;
  std::unique_ptr<Engine> engine_;
  CongestStats stats_;
  Arena arena_;
  RoundObserver* observer_{nullptr};

  // Flat CSR mail slots, one per directed edge, in two structure-of-array
  // planes alternated by round parity.  Headers pack (tag << 8) | size;
  // payload words live at slot·kMaxWords.  Header and payload bytes are
  // never initialized or cleared (reads are stamp-gated); stamps_ start at
  // kNeverStamp32 so nothing predates round 1.
  std::vector<std::uint32_t> port_base_;   ///< node → directed-slot offset
  std::vector<std::uint32_t> reverse_slot_;  ///< directed port → peer slot
  std::unique_ptr<Word[]> payload_[2];
  std::unique_ptr<std::uint32_t[]> hdr_[2];
  std::vector<std::uint32_t> stamps_[2];

  std::uint64_t round_{0};  ///< 1-based; write token of the current round
  std::uint64_t epoch_base_{0};   ///< stamp tokens are round − epoch_base_
  std::uint32_t epoch_limit_{kDefaultEpochLimit};
  std::uint32_t wtoken_{0};  ///< token(round_), cached per round
  std::uint32_t rtoken_{0};  ///< token(round_ − 1), cached per round
  std::vector<ShardCounters> counters_;
  std::vector<std::uint64_t> shard_node_steps_;  ///< per-run accumulation

  // --- scheduling state (per run; round_ is global across runs) ---------
  Scheduling mode_{Scheduling::kDense};
  std::optional<Scheduling> forced_;
  bool dense_round_{true};
  std::uint64_t first_round_{0};  ///< first round of the current run
  std::uint32_t owner_stride_{1};  ///< nodes per owner range (ceil(n/S))
  std::vector<NodeId> active_;    ///< this round's sorted active set
  std::vector<ActivationBucket> buckets_;
  std::vector<std::uint8_t> done_flag_;  ///< last observed local_done(v)
  std::uint64_t done_count_{0};          ///< Σ done_flag_ (incremental)

  // --- fault injection (plan is configuration; the rest is per-run) -----
  std::optional<FaultPlan> plan_;
  bool faults_on_{false};  ///< latched at run() start: plan_ is active
  unsigned tolerance_{kFaultTolerant};  ///< running protocol's declaration
  std::vector<std::uint8_t> crashed_;   ///< inside a crash window now
  std::vector<std::uint8_t> restart_mask_;  ///< restarted THIS round
  std::vector<NodeId> restarted_;  ///< nodes with restart_mask_ set
  std::size_t pending_restarts_{0};  ///< entered windows awaiting restart
  std::uint32_t round_fault_mask_{0};  ///< FaultKind bits fired this round
  std::string round_bad_fault_;  ///< first intolerable fault this round
  std::string first_fault_;      ///< first injected fault of the run
  std::string last_fault_;       ///< most recent (deadlock forensics)
};

}  // namespace dmc
