// The synchronous CONGEST network engine.
//
// Execution model (standard CONGEST, [Pel00]):
//   * rounds are synchronous; in each round every node runs local
//     computation, then sends ≤ 1 message of ≤ kMaxWords words per incident
//     edge direction; messages are delivered at the start of the next round;
//   * node programs may not read each other's state, so the execution order
//     within a round is unobservable — the Network delegates the sweep to a
//     pluggable Engine (sequential or sharded; both bit-reproducible);
//   * a protocol run ends at quiescence: no message in flight and every
//     node `local_done`.  Real deployments detect this with an explicit
//     barrier over a BFS tree; see Schedule for how those rounds are
//     charged.
//
// Mail is slot-addressed: the "≤ 1 message per directed edge per round"
// rule means every delivery has a fixed slot, CSR-indexed by (receiver,
// receiver port).  Sending writes the message straight into the peer slot
// found via a reverse-port table precomputed at construction — O(1), no
// allocation, no sort, no contention under the sharded engine.  Two slot
// planes alternate by round parity (writes go to plane r&1, reads come
// from the previous round's plane), and occupancy is tracked by per-slot
// round stamps so nothing is ever cleared between rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/engine.h"
#include "congest/mailbox.h"
#include "congest/message.h"
#include "congest/protocol.h"
#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

class Network {
 public:
  /// `engine == nullptr` picks the sequential reference engine.
  explicit Network(const Graph& g, std::unique_ptr<Engine> engine = nullptr);

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] std::size_t num_nodes() const { return g_->num_nodes(); }
  [[nodiscard]] const Engine& engine() const { return *engine_; }

  /// Runs one protocol to quiescence.  Returns the number of rounds
  /// executed.  Throws InvariantError if `max_rounds` is exceeded (deadlock
  /// guard); max_rounds == 0 picks a generous default of
  /// 64·(n + m) + 1024.
  std::uint64_t run(Protocol& p, std::uint64_t max_rounds = 0);

  [[nodiscard]] const CongestStats& stats() const { return stats_; }
  [[nodiscard]] CongestStats& stats() { return stats_; }

  // --- engine hooks (called by Engine implementations only) -------------

  /// Routes this thread's stat updates to counter block `shard`.  Engines
  /// call it once per worker per round, before executing any node.
  void bind_shard(std::size_t shard);

  /// Builds node v's mailbox over its delivery slots and runs its step.
  void execute_node(NodeId v, Protocol& p);

 private:
  friend class Mailbox;

  /// Per-shard, per-round statistics; merged with commutative reductions
  /// at the end of every round, so totals are schedule-independent.
  /// Padded to a cache line to avoid false sharing between workers.
  struct alignas(64) ShardCounters {
    std::uint64_t messages{0};
    std::uint64_t words{0};
    std::uint8_t max_words{0};
    std::uint32_t max_edge_msgs{0};
  };

  void send_from(NodeId from, std::uint32_t port, const Message& m);
  void begin_round();
  /// Folds shard counters into stats_; returns messages sent this round.
  std::uint64_t end_round();

  const Graph* g_;
  std::unique_ptr<Engine> engine_;
  CongestStats stats_;

  // Flat CSR mail slots, one per directed edge, in two planes alternated
  // by round parity.  slot port fields are filled once at construction;
  // stamps_ start at kNeverStamp so nothing predates round 1.
  static constexpr std::uint64_t kNeverStamp = ~std::uint64_t{0};
  std::vector<std::uint32_t> port_base_;   ///< node → directed-slot offset
  std::vector<std::uint32_t> reverse_slot_;  ///< directed port → peer slot
  std::vector<Delivery> slots_[2];
  std::vector<std::uint64_t> stamps_[2];

  std::uint64_t round_{0};  ///< 1-based; write token of the current round
  std::vector<ShardCounters> counters_;
};

}  // namespace dmc
