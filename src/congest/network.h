// The synchronous CONGEST network engine.
//
// Execution model (standard CONGEST, [Pel00]):
//   * rounds are synchronous; in each round every node runs local
//     computation, then sends ≤ 1 message of ≤ kMaxWords words per incident
//     edge direction; messages are delivered at the start of the next round;
//   * the engine iterates nodes deterministically (ascending id) — node
//     programs may not read each other's state, so the order is
//     unobservable, but it makes simulations bit-reproducible;
//   * a protocol run ends at quiescence: no message in flight and every
//     node `local_done`.  Real deployments detect this with an explicit
//     barrier over a BFS tree; see Schedule for how those rounds are
//     charged.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/mailbox.h"
#include "congest/message.h"
#include "congest/protocol.h"
#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

class Network {
 public:
  explicit Network(const Graph& g);

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] std::size_t num_nodes() const { return g_->num_nodes(); }

  /// Runs one protocol to quiescence.  Returns the number of rounds
  /// executed.  Throws InvariantError if `max_rounds` is exceeded (deadlock
  /// guard); max_rounds == 0 picks a generous default of
  /// 64·(n + m) + 1024.
  std::uint64_t run(Protocol& p, std::uint64_t max_rounds = 0);

  [[nodiscard]] const CongestStats& stats() const { return stats_; }
  [[nodiscard]] CongestStats& stats() { return stats_; }

 private:
  friend class Mailbox;
  void send_from(NodeId from, std::uint32_t port, const Message& m);

  const Graph* g_;
  CongestStats stats_;

  // Double-buffered mail: `pending_` holds messages sent this round,
  // delivered next round into `inbox_`.
  std::vector<std::vector<Delivery>> inbox_;
  std::vector<std::vector<Delivery>> pending_;
  std::vector<std::uint32_t> sent_this_round_;  // per directed port marker
  std::vector<std::uint32_t> port_base_;        // node → directed-port offset
  std::uint64_t in_flight_{0};
  std::uint32_t round_token_{0};
};

}  // namespace dmc
