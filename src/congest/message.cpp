#include "congest/message.h"

// Message is header-only; this translation unit exists so the build exposes
// a home for future non-inline helpers and keeps one object per header.
namespace dmc {}
