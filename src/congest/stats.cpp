#include "congest/stats.h"

#include <ostream>

#include "util/mem.h"

namespace dmc {

CongestStats CongestStats::without_node_steps() const {
  CongestStats s = *this;
  s.node_steps = 0;
  for (ProtocolStats& p : s.per_protocol) p.node_steps = 0;
  return s;
}

void CongestStats::reset() {
  rounds = 0;
  barrier_rounds = 0;
  messages = 0;
  words = 0;
  node_steps = 0;
  max_words_per_message = 0;
  max_messages_edge_round = 0;
  faults = FaultStats{};
  per_protocol.clear();
}

void CongestStats::print(std::ostream& os) const {
  os << "rounds=" << rounds << " (+" << barrier_rounds
     << " barrier) messages=" << messages << " words=" << words
     << " node_steps=" << node_steps
     << " max_words/msg=" << static_cast<int>(max_words_per_message) << '\n';
  if (faults.any() || faults.stabilization_rounds)
    os << "  faults: drops=" << faults.drops << " dups=" << faults.dups
       << " reordered=" << faults.reordered_inboxes
       << " crashes=" << faults.crashes << " restarts=" << faults.restarts
       << " stabilization_rounds=" << faults.stabilization_rounds
       << " stabilization_messages=" << faults.stabilization_messages
       << '\n';
  for (const ProtocolStats& p : per_protocol)
    os << "  " << p.name << ": rounds=" << p.rounds
       << " messages=" << p.messages << " node_steps=" << p.node_steps
       << '\n';
}

std::size_t CongestStats::memory_bytes() const {
  std::size_t total = vec_bytes(per_protocol);
  for (const ProtocolStats& p : per_protocol) total += str_bytes(p.name);
  return total;
}

}  // namespace dmc
