#include "congest/stats.h"

#include <ostream>

namespace dmc {

void CongestStats::print(std::ostream& os) const {
  os << "rounds=" << rounds << " (+" << barrier_rounds
     << " barrier) messages=" << messages << " words=" << words
     << " max_words/msg=" << static_cast<int>(max_words_per_message) << '\n';
  for (const ProtocolStats& p : per_protocol)
    os << "  " << p.name << ": rounds=" << p.rounds
       << " messages=" << p.messages << '\n';
}

}  // namespace dmc
