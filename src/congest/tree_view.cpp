#include "congest/tree_view.h"

#include <algorithm>
#include <queue>

#include "util/assert.h"
#include "util/mem.h"

namespace dmc {

TreeView TreeView::from_parent_ports(const Graph& g,
                                     std::vector<std::uint32_t> parent_port) {
  DMC_REQUIRE(parent_port.size() == g.num_nodes());
  const std::size_t n = g.num_nodes();
  TreeView tv;
  tv.parent_port_ = std::move(parent_port);

  // Two passes over the parent pointers fill the children CSR in place:
  // count per parent, prefix-sum, then scatter the reverse ports.
  tv.child_off_.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t pp = tv.parent_port_[v];
    if (pp == kNoPort) continue;
    DMC_REQUIRE(pp < g.degree(v));
    ++tv.child_off_[g.ports(v)[pp].peer + 1];
  }
  for (std::size_t v = 0; v < n; ++v) tv.child_off_[v + 1] += tv.child_off_[v];
  tv.child_ports_.resize(tv.child_off_[n]);
  std::vector<std::uint32_t> fill(tv.child_off_.begin(),
                                  tv.child_off_.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t pp = tv.parent_port_[v];
    if (pp == kNoPort) continue;
    const Port port = g.ports(v)[pp];
    // Find the reverse port at the parent.
    const auto peer_ports = g.ports(port.peer);
    for (std::uint32_t i = 0; i < peer_ports.size(); ++i) {
      if (peer_ports[i].edge == port.edge) {
        tv.child_ports_[fill[port.peer]++] = i;
        break;
      }
    }
  }
  for (NodeId v = 0; v < n; ++v)
    std::sort(tv.child_ports_.begin() + tv.child_off_[v],
              tv.child_ports_.begin() + tv.child_off_[v + 1]);
  tv.validate(g);
  return tv;
}

NodeId TreeView::parent_node(const Graph& g, NodeId v) const {
  const std::uint32_t pp = parent_port_[v];
  if (pp == kNoPort) return kNoNode;
  return g.ports(v)[pp].peer;
}

std::vector<std::uint32_t> TreeView::depths(const Graph& g) const {
  std::vector<std::uint32_t> depth(num_nodes(),
                                   static_cast<std::uint32_t>(-1));
  std::queue<NodeId> q;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_root(v)) {
      depth[v] = 0;
      q.push(v);
    }
  }
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const std::uint32_t cp : children_ports(v)) {
      const NodeId c = g.ports(v)[cp].peer;
      DMC_ASSERT(depth[c] == static_cast<std::uint32_t>(-1));
      depth[c] = depth[v] + 1;
      q.push(c);
    }
  }
  for (const std::uint32_t d : depth)
    DMC_ASSERT_MSG(d != static_cast<std::uint32_t>(-1),
                   "TreeView has an unreachable node (cycle?)");
  return depth;
}

std::uint32_t TreeView::height(const Graph& g) const {
  const auto d = depths(g);
  std::uint32_t h = 0;
  for (const std::uint32_t x : d) h = std::max(h, x);
  return h;
}

void TreeView::validate(const Graph& g) const {
  DMC_REQUIRE(parent_port_.size() == g.num_nodes());
  // depths() throws if the parent pointers contain a cycle or disconnect.
  (void)depths(g);
  // Children/parent consistency.
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const std::uint32_t cp : children_ports(v)) {
      DMC_ASSERT(cp < g.degree(v));
      const Port port = g.ports(v)[cp];
      const std::uint32_t child_pp = parent_port_[port.peer];
      DMC_ASSERT(child_pp != kNoPort);
      DMC_ASSERT(g.ports(port.peer)[child_pp].edge == port.edge);
    }
  }
}

std::size_t TreeView::memory_bytes() const {
  return vec_bytes(parent_port_) + vec_bytes(child_off_) +
         vec_bytes(child_ports_);
}

}  // namespace dmc
