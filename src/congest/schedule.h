// Schedule: runs a sequence of protocols on one Network with honest
// phase-transition accounting.
//
// Real CONGEST algorithms separate phases with a termination-detection
// barrier: a convergecast of "done" up a BFS tree followed by a broadcast
// of "go" (2·height + 2 rounds, +1 for the children-notification
// convention).  The simulator detects quiescence globally (free lunch) and
// therefore CHARGES exactly that barrier cost after every protocol run.
// The explicit BarrierProtocol in primitives/barrier.h is implemented and
// tested to cost what we charge.
//
// The very first phase (leader election / BFS construction) is special: it
// is charged with the height of the tree it builds — justified because
// ack-based BFS construction lets the root detect completion within
// O(height) rounds without a pre-existing tree.  Drivers run it with
// run_uncharged(), then set_barrier_height(h), then charge_barrier().
//
// A second legitimate use of run_uncharged + charge_barrier is a phase
// whose sub-steps have DETERMINISTIC round budgets known to every node
// (e.g. the controlled-GHS super-phases of dist/ghs_mst, bounded by the
// globally known freeze size): real nodes proceed after the fixed budget,
// so only one barrier per phase is owed, not one per sub-step.
//
// Charges are engine-independent: the underlying Network produces
// bit-identical round counts under the sequential and sharded engines.
#pragma once

#include <cstdint>

#include "congest/network.h"
#include "congest/protocol.h"

namespace dmc {

class Schedule {
 public:
  explicit Schedule(Network& net) : net_(&net) {}

  /// Runs `p` to quiescence and charges one barrier (height must be known).
  std::uint64_t run(Protocol& p, std::uint64_t max_rounds = 0);

  /// Runs `p` with no barrier charge (bootstrap phases only).
  std::uint64_t run_uncharged(Protocol& p, std::uint64_t max_rounds = 0);

  /// Height of the BFS tree used for barriers (its root's eccentricity).
  void set_barrier_height(std::uint32_t h) {
    barrier_height_ = h;
    height_known_ = true;
  }
  [[nodiscard]] bool height_known() const { return height_known_; }

  /// Adds one barrier charge (2·height + 3 rounds).
  void charge_barrier();

  [[nodiscard]] Network& network() { return *net_; }
  [[nodiscard]] const Network& network() const { return *net_; }
  [[nodiscard]] const CongestStats& stats() const { return net_->stats(); }

  /// Real + charged rounds so far.
  [[nodiscard]] std::uint64_t total_rounds() const {
    return net_->stats().total_rounds();
  }

 private:
  Network* net_;
  std::uint32_t barrier_height_{0};
  bool height_known_{false};
};

}  // namespace dmc
