// CONGEST messages.
//
// The model allows B = O(log n) bits per edge per round.  We fix a message
// to at most kMaxWords machine words, each holding one O(log n)-bit
// quantity (a node id, an edge id, a weight, a count) — a constant number
// of O(log n)-bit fields, i.e. O(log n) bits total, exactly the budget the
// paper's protocols assume.  The network enforces the word limit and "one
// message per directed edge per round" at send time, and records the
// maximum words ever used so experiment E7 can certify legality.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.h"

namespace dmc {

using Word = std::uint64_t;

/// Words per message.  6 words cover the widest message in the library
/// (pipeline-MST stream items: edge id, load, weight, two fragment ids).
inline constexpr std::uint8_t kMaxWords = 6;

/// Message tags are protocol-local discriminators, not payload: the mail
/// slots store tag and size packed into one 32-bit header word (tag in the
/// top 24 bits), so tags must stay below 2^24.  Every protocol in the
/// library uses single-digit tags or two-character mnemonics; the network
/// enforces the bound at send time.
inline constexpr std::uint32_t kMaxTag = (1u << 24) - 1;

struct Message {
  std::uint32_t tag{0};
  std::uint8_t size{0};
  std::array<Word, kMaxWords> w{};

  [[nodiscard]] static Message make(std::uint32_t tag,
                                    std::initializer_list<Word> words) {
    DMC_REQUIRE(words.size() <= kMaxWords);
    Message m;
    m.tag = tag;
    m.size = static_cast<std::uint8_t>(words.size());
    std::size_t i = 0;
    for (const Word word : words) m.w[i++] = word;
    return m;
  }

  [[nodiscard]] Word at(std::size_t i) const {
    DMC_REQUIRE(i < size);
    return w[i];
  }
};

/// A message delivered to a node, together with the local port (index into
/// the node's adjacency) it arrived on.
struct Delivery {
  std::uint32_t port{0};
  Message msg;
};

}  // namespace dmc
