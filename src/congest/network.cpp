#include "congest/network.h"

#include <algorithm>
#include <sstream>

#include "util/mem.h"
#include "util/prng.h"

namespace dmc {

namespace {
/// Where send_from routes this thread's stat updates.  Rebound by the
/// engine (via Network::bind_shard) at the start of every round, so the
/// pointer never dangles across rounds or Networks.
thread_local Network* tls_net = nullptr;
thread_local std::size_t tls_shard = 0;

/// fault_hash stream ids — one per independent decision family, so raising
/// one rate never shifts another family's coin flips.
constexpr std::uint32_t kStreamDrop = 0;
constexpr std::uint32_t kStreamDup = 1;
constexpr std::uint32_t kStreamReorder = 2;
constexpr std::uint32_t kStreamPermute = 3;
}  // namespace

Network::Network(const Graph& g, std::unique_ptr<Engine> engine)
    : g_(&g),
      engine_(engine ? std::move(engine) : make_sequential_engine()) {
  const std::size_t n = g.num_nodes();
  const std::uint32_t slots = rebuild_port_tables();

  // SoA slot planes.  Headers and payload words are deliberately left
  // uninitialized — every read is gated on the stamp matching the read
  // token, and a stamp only reaches a token value after send_from wrote
  // the header and payload it guards.
  for (auto& plane : payload_)
    plane = std::make_unique_for_overwrite<Word[]>(std::size_t{slots} *
                                                   kMaxWords);
  for (auto& plane : hdr_)
    plane = std::make_unique_for_overwrite<std::uint32_t[]>(slots);
  for (auto& plane : stamps_) plane.assign(slots, kNeverStamp32);

  const std::size_t shards = engine_->shard_count();
  counters_.resize(shards);
  shard_node_steps_.assign(shards, 0);
  owner_stride_ = static_cast<std::uint32_t>(
      n == 0 ? 1 : (n + shards - 1) / shards);
  buckets_.resize(shards);
  for (ActivationBucket& b : buckets_) {
    b.by_owner.resize(shards);
    b.mark.assign(n, kNeverStamp32);
  }
  done_flag_.assign(n, 0);
}

std::uint32_t Network::rebuild_port_tables() {
  const Graph& g = *g_;
  const std::size_t n = g.num_nodes();
  port_base_.resize(n + 1);
  port_base_[0] = 0;
  for (NodeId v = 0; v < n; ++v)
    port_base_[v + 1] =
        port_base_[v] + static_cast<std::uint32_t>(g.degree(v));
  const std::uint32_t slots = port_base_[n];

  // Reverse-port table: directed port (v, i) → the peer's slot for the
  // same edge.  Built in one pass by pairing the two directed copies of
  // each edge; kills the O(degree) reverse scan the send path used to do.
  reverse_slot_.assign(slots, 0);
  {
    std::vector<std::uint32_t> first_dir(g.num_edges(),
                                         ~std::uint32_t{0});
    for (NodeId v = 0; v < n; ++v) {
      const auto ports = g.ports(v);
      for (std::uint32_t i = 0; i < ports.size(); ++i) {
        const std::uint32_t dir = port_base_[v] + i;
        std::uint32_t& other = first_dir[ports[i].edge];
        if (other == ~std::uint32_t{0}) {
          other = dir;
        } else {
          reverse_slot_[dir] = other;
          reverse_slot_[other] = dir;
        }
      }
    }
  }
  return slots;
}

void Network::rebind_graph() {
  const std::uint32_t old_slots =
      static_cast<std::uint32_t>(reverse_slot_.size());
  const std::uint32_t slots = rebuild_port_tables();
  if (slots != old_slots) {
    // The slot count moved (inserts/deletes changed Σ degrees): the SoA
    // planes must be re-sized.  Contents don't matter — reads are stamp-
    // gated and reset() below returns every stamp to kNeverStamp32.
    for (auto& plane : payload_)
      plane = std::make_unique_for_overwrite<Word[]>(std::size_t{slots} *
                                                     kMaxWords);
    for (auto& plane : hdr_)
      plane = std::make_unique_for_overwrite<std::uint32_t[]>(slots);
    for (auto& plane : stamps_) plane.resize(slots);
  }
  reset();
}

void Network::reset() {
  // Everything here is a fill or a clear over buffers whose capacity is
  // retained, so a reset is O(n + m) writes with zero allocation, and the
  // engine (with any worker pool it spawned) is untouched.
  round_ = 0;
  epoch_base_ = 0;
  wtoken_ = 0;
  rtoken_ = 0;
  stats_.reset();
  arena_.rewind();
  for (auto& plane : stamps_)
    std::fill(plane.begin(), plane.end(), kNeverStamp32);
  for (ActivationBucket& b : buckets_) {
    for (auto& run : b.by_owner) run.clear();
    std::fill(b.mark.begin(), b.mark.end(), kNeverStamp32);
  }
  active_.clear();
  std::fill(done_flag_.begin(), done_flag_.end(), std::uint8_t{0});
  done_count_ = 0;
  std::fill(shard_node_steps_.begin(), shard_node_steps_.end(),
            std::uint64_t{0});
  mode_ = Scheduling::kDense;
  dense_round_ = true;
  first_round_ = 0;
  // Per-run fault scratch (the plan itself is configuration and stays).
  faults_on_ = false;
  std::fill(crashed_.begin(), crashed_.end(), std::uint8_t{0});
  std::fill(restart_mask_.begin(), restart_mask_.end(), std::uint8_t{0});
  restarted_.clear();
  pending_restarts_ = 0;
  round_fault_mask_ = 0;
  round_bad_fault_.clear();
  first_fault_.clear();
  last_fault_.clear();
}

std::size_t Network::memory_bytes() const {
  const std::size_t slots = reverse_slot_.size();
  std::size_t total = vec_bytes(port_base_) + vec_bytes(reverse_slot_);
  // The two SoA slot planes: payload words, packed headers, stamps.
  total += 2 * slots * (std::size_t{kMaxWords} * sizeof(Word) +
                        sizeof(std::uint32_t));
  for (const auto& plane : stamps_) total += vec_bytes(plane);
  total += vec_bytes(counters_) + vec_bytes(shard_node_steps_) +
           vec_bytes(active_) + vec_bytes(done_flag_);
  for (const ActivationBucket& b : buckets_)
    total += vec_bytes(b.by_owner) + vec_bytes(b.mark);
  total += vec_bytes(buckets_);
  total += vec_bytes(crashed_) + vec_bytes(restart_mask_) +
           vec_bytes(restarted_);
  total += stats_.memory_bytes() + arena_.bytes_reserved();
  return total;
}

void Network::set_fault_plan(std::optional<FaultPlan> plan) {
  if (plan) plan->validate(g_->num_nodes());
  plan_ = std::move(plan);
  if (plan_ && plan_->active()) {
    const std::size_t n = g_->num_nodes();
    crashed_.assign(n, 0);
    restart_mask_.assign(n, 0);
  }
}

void Network::set_stamp_epoch_limit_for_test(std::uint32_t limit) {
  DMC_REQUIRE_MSG(limit >= 4 && limit <= kDefaultEpochLimit,
                  "epoch limit " << limit << " out of range");
  epoch_limit_ = limit;
}

void Mailbox::send(std::uint32_t port, const Message& m) {
  net_->send_from(self_, port, m);
}

void Mailbox::request_wake() { net_->request_wake(self_); }

std::size_t Mailbox::num_ports() const {
  return net_->graph().degree(self_);
}

void Network::bind_shard(std::size_t shard) {
  DMC_ASSERT(shard < counters_.size());
  tls_net = this;
  tls_shard = shard;
}

void Network::activate(NodeId u) {
  DMC_ASSERT(tls_net == this);
  ActivationBucket& b = buckets_[tls_shard];
  if (b.mark[u] == wtoken_) return;
  b.mark[u] = wtoken_;
  b.by_owner[u / owner_stride_].push_back(u);
}

void Network::request_wake(NodeId v) {
  if (mode_ != Scheduling::kEventDriven) return;
  activate(v);
}

void Network::send_from(NodeId from, std::uint32_t port, const Message& m) {
  DMC_REQUIRE(from < g_->num_nodes());
  DMC_REQUIRE_MSG(port < g_->degree(from),
                  "node " << from << " has no port " << port);
  DMC_REQUIRE_MSG(m.size <= kMaxWords, "message exceeds word budget");
  DMC_REQUIRE_MSG(m.tag <= kMaxTag, "message tag " << m.tag
                                    << " exceeds kMaxTag");

  const std::size_t parity = round_ & 1;
  const std::uint32_t slot = reverse_slot_[port_base_[from] + port];
  std::uint32_t& stamp = stamps_[parity][slot];

  // Observed per-directed-edge congestion this round: derived from slot
  // occupancy (not assumed), so E7 certifies the ≤ 1 legality bound.
  DMC_ASSERT(tls_net == this);
  ShardCounters& c = counters_[tls_shard];
  const std::uint32_t occupancy = stamp == wtoken_ ? 2 : 1;
  c.max_edge_msgs = std::max(c.max_edge_msgs, occupancy);
  DMC_REQUIRE_MSG(occupancy == 1, "node " << from << " sent twice on port "
                                          << port << " in one round");

  stamp = wtoken_;
  hdr_[parity][slot] = (m.tag << 8) | m.size;
  Word* w = payload_[parity].get() + std::size_t{slot} * kMaxWords;
  for (std::uint8_t k = 0; k < m.size; ++k) w[k] = m.w[k];
  ++c.messages;
  c.words += m.size;
  c.max_words = std::max(c.max_words, m.size);

  // The receiver has a delivery next round, so it must execute then.
  if (mode_ == Scheduling::kEventDriven)
    activate(g_->ports(from)[port].peer);
}

void Network::execute_node(NodeId v, Protocol& p) {
  if (faults_on_) [[unlikely]] {
    execute_node_faulted(v, p);
    return;
  }
  const std::size_t read_parity = (round_ - 1) & 1;
  const std::uint32_t base = port_base_[v];
  Mailbox mb{*this, v,
             InboxView{payload_[read_parity].get() +
                           std::size_t{base} * kMaxWords,
                       hdr_[read_parity].get() + base,
                       stamps_[read_parity].data() + base,
                       port_base_[v + 1] - base, rtoken_}};
  p.round(v, mb);

  // Quiescence bookkeeping: only an executed node can change its done bit
  // (state is per-node), so tracking flips here keeps the global counter
  // exact with no end-of-round scan.
  ShardCounters& c = counters_[tls_shard];
  ++c.node_steps;
  const std::uint8_t now = p.local_done(v) ? 1 : 0;
  if (now != done_flag_[v]) {
    done_flag_[v] = now;
    c.done_delta += now ? 1 : -1;
  }
}

bool Network::note_read_fault(ShardCounters& c, FaultKind k,
                              std::uint64_t index) {
  const std::uint64_t code =
      (index << 2) | static_cast<std::uint64_t>(k);
  c.first_code = std::min(c.first_code, code);
  if ((tolerance_ & tolerance_bit(k)) != 0u) return false;
  c.first_bad_code = std::min(c.first_bad_code, code);
  return true;
}

void Network::execute_node_faulted(NodeId v, Protocol& p) {
  // A crashed node neither computes, reads, nor pays a node_step.
  if (crashed_[v]) return;
  const FaultPlan& plan = *plan_;
  ShardCounters& c = counters_[tls_shard];
  // Run-local 1-based round — the coordinate the plan's hashes are keyed
  // on, so one plan hits every protocol of a pipeline identically.
  const std::uint64_t e = round_ - first_round_ + 1;
  const std::uint32_t base = port_base_[v];
  const std::uint32_t degree = port_base_[v + 1] - base;

  // Materialize the inbox, applying per-(round, slot) drop/dup decisions
  // and an optional per-(round, node) permutation.  Decisions depend on
  // counter-hash coordinates alone — never on which engine, thread, or
  // scheduling mode got here first — so the same faults fire everywhere.
  std::vector<Delivery> list;
  if (!restart_mask_[v]) {
    list.reserve(degree);
    const std::size_t read_parity = (round_ - 1) & 1;
    const std::uint32_t* stamps = stamps_[read_parity].data() + base;
    const std::uint32_t* hdr = hdr_[read_parity].get() + base;
    const Word* payload =
        payload_[read_parity].get() + std::size_t{base} * kMaxWords;
    for (std::uint32_t i = 0; i < degree; ++i) {
      if (stamps[i] != rtoken_) continue;
      const std::uint64_t slot = base + i;
      if (plan.drop_rate > 0.0 &&
          fault_u01(fault_hash(plan.seed, kStreamDrop, e, slot)) <
              plan.drop_rate) {
        ++c.drops;
        // An intolerable fault dooms the round to the named rejection at
        // end_round; don't hand the protocol an inbox it never claimed
        // to absorb (it could trip its own asserts mid-round instead of
        // failing with the fault diagnostic).  Deterministic: tolerance_
        // is run-constant and the coin is counter-hashed.
        if (note_read_fault(c, FaultKind::kDrop, slot)) return;
        continue;
      }
      Delivery d;
      d.port = i;
      const std::uint32_t h = hdr[i];
      d.msg.tag = h >> 8;
      d.msg.size = static_cast<std::uint8_t>(h & 0xffu);
      const Word* w = payload + std::size_t{i} * kMaxWords;
      for (std::uint8_t k = 0; k < d.msg.size; ++k) d.msg.w[k] = w[k];
      list.push_back(d);
      if (plan.dup_rate > 0.0 &&
          fault_u01(fault_hash(plan.seed, kStreamDup, e, slot)) <
              plan.dup_rate) {
        ++c.dups;
        if (note_read_fault(c, FaultKind::kDup, slot)) return;
        list.push_back(d);
      }
    }
    if (list.size() >= 2 && plan.reorder_within_round > 0.0 &&
        fault_u01(fault_hash(plan.seed, kStreamReorder, e, v)) <
            plan.reorder_within_round) {
      Prng perm{fault_hash(plan.seed, kStreamPermute, e, v)};
      perm.shuffle(list);
      ++c.reorders;
      // Slot-space index (the node's first slot) keeps one total order
      // across all three read-fault families; kind bits break ties.
      if (note_read_fault(c, FaultKind::kReorder, base)) return;
    }
  }
  // restart_mask_: the node restarted at the top of this round — mail
  // delivered while it was down is discarded, so it sees an empty inbox.

  Mailbox mb{*this, v,
             InboxView{list.data(), static_cast<std::uint32_t>(list.size())}};
  p.round(v, mb);

  ++c.node_steps;
  const std::uint8_t now = p.local_done(v) ? 1 : 0;
  if (now != done_flag_[v]) {
    done_flag_[v] = now;
    c.done_delta += now ? 1 : -1;
  }
}

void Network::apply_crash_transitions(Protocol& p) {
  // Coordinator only, between begin_round() and the engine sweep: crash
  // state is plain (non-atomic) because workers observe it strictly after
  // the engine's round barrier.
  for (const NodeId v : restarted_) restart_mask_[v] = 0;
  restarted_.clear();
  const std::uint64_t e = round_ - first_round_ + 1;
  for (const CrashWindow& w : plan_->crash_schedule) {
    if (w.r0 == e) {
      crashed_[w.node] = 1;
      if (w.r1 != CrashWindow::kNoRestart) ++pending_restarts_;
      ++stats_.faults.crashes;
      // A crashed node must not block quiescence: mark it done so live
      // nodes can finish around a permanent crash.  pending_restarts_
      // keeps a run with a scheduled restart alive until it happens.
      if (!done_flag_[w.node]) {
        done_flag_[w.node] = 1;
        ++done_count_;
      }
      round_fault_mask_ |= tolerance_bit(FaultKind::kCrash);
      std::ostringstream os;
      os << "crash(round=" << e << ", node=" << w.node << ")";
      last_fault_ = os.str();
      if (first_fault_.empty()) first_fault_ = last_fault_;
      if ((tolerance_ & kTolerateCrash) == 0u && round_bad_fault_.empty())
        round_bad_fault_ = last_fault_;
    }
    if (w.r1 == e) {
      crashed_[w.node] = 0;
      --pending_restarts_;
      ++stats_.faults.restarts;
      p.on_crash_restart(w.node);
      restart_mask_[w.node] = 1;
      restarted_.push_back(w.node);
      if (done_flag_[w.node]) {
        done_flag_[w.node] = 0;
        --done_count_;
      }
      // The wiped node must execute this round even under event-driven
      // scheduling — it has no delivery (its mail was discarded), so
      // nothing else would activate it.
      if (!dense_round_) {
        const auto it =
            std::lower_bound(active_.begin(), active_.end(), w.node);
        if (it == active_.end() || *it != w.node)
          active_.insert(it, w.node);
      }
    }
  }
  if ((round_fault_mask_ & ~tolerance_) != 0u) throw_fault_rejection(p);
}

std::string Network::describe_read_fault(std::uint64_t code) const {
  const auto kind = static_cast<FaultKind>(code & 3u);
  const std::uint64_t index = code >> 2;
  const std::uint64_t e = round_ - first_round_ + 1;
  // Recover the receiver owning this slot (reorder codes use the node's
  // first slot, so the same lookup works for all three families).
  const auto it =
      std::upper_bound(port_base_.begin(), port_base_.end(),
                       static_cast<std::uint32_t>(index));
  const NodeId v =
      static_cast<NodeId>((it - port_base_.begin()) - 1);
  std::ostringstream os;
  if (kind == FaultKind::kReorder) {
    os << "reorder(round=" << e << ", node=" << v << ")";
  } else {
    os << to_string(kind) << "(round=" << e << ", to=" << v
       << ", port=" << index - port_base_[v] << ")";
  }
  return os.str();
}

void Network::throw_fault_rejection(const Protocol& p) const {
  std::ostringstream os;
  os << "protocol '" << p.name()
     << "' does not tolerate injected faults: first intolerable fault "
     << round_bad_fault_ << " under " << plan_->describe()
     << " (first injected fault of the run: " << first_fault_ << ")";
  throw InvariantError{os.str()};
}

void Network::renormalize_epoch() {
  // Called between rounds (round_ already advanced, no node executing).
  // The only token that still matters is last round's: the read plane's
  // deliveries for the round about to execute.  Map it to 1, everything
  // else — the write plane (whose newest stamps are two rounds old, hence
  // dead) and the activation marks (compared only against the current
  // round's write token) — to never.  Re-basing the epoch two rounds back
  // makes last round's token 1 and this round's 2, so tokens stay unique
  // until the next renormalization.
  const std::uint32_t live = token(round_ - 1);
  std::vector<std::uint32_t>& read_plane = stamps_[(round_ - 1) & 1];
  for (std::uint32_t& s : read_plane)
    s = s == live ? 1u : kNeverStamp32;
  std::vector<std::uint32_t>& write_plane = stamps_[round_ & 1];
  std::fill(write_plane.begin(), write_plane.end(), kNeverStamp32);
  for (ActivationBucket& b : buckets_)
    std::fill(b.mark.begin(), b.mark.end(), kNeverStamp32);
  epoch_base_ = round_ - 2;
}

void Network::begin_round() {
  ++round_;
  if (round_ - epoch_base_ >= epoch_limit_) renormalize_epoch();
  wtoken_ = token(round_);
  rtoken_ = token(round_ - 1);
  for (ShardCounters& c : counters_) c = ShardCounters{};
  round_fault_mask_ = 0;
  round_bad_fault_.clear();
  if (mode_ == Scheduling::kEventDriven && round_ != first_round_) {
    // Merge the per-shard buckets filled last round into one sorted,
    // duplicate-free active list.  Sorting makes the sweep order — and
    // therefore everything observable — independent of which shard
    // recorded an activation first.  Buckets are sub-bucketed by owner
    // range, and owner ranges partition the id space in ascending blocks,
    // so merging one range at a time sorts S short runs per range instead
    // of one global list — and the concatenation is globally ascending by
    // construction.
    active_.clear();
    for (std::size_t o = 0; o < buckets_.size(); ++o) {
      const auto seg = static_cast<std::ptrdiff_t>(active_.size());
      for (ActivationBucket& b : buckets_) {
        std::vector<NodeId>& run = b.by_owner[o];
        active_.insert(active_.end(), run.begin(), run.end());
        run.clear();
      }
      std::sort(active_.begin() + seg, active_.end());
      active_.erase(std::unique(active_.begin() + seg, active_.end()),
                    active_.end());
    }
    dense_round_ = false;
  } else {
    dense_round_ = true;
  }
}

std::uint64_t Network::end_round() {
  std::uint64_t sent = 0;
  std::int64_t done_delta = 0;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const ShardCounters& c = counters_[i];
    sent += c.messages;
    stats_.messages += c.messages;
    stats_.words += c.words;
    stats_.node_steps += c.node_steps;
    shard_node_steps_[i] += c.node_steps;
    done_delta += c.done_delta;
    stats_.max_words_per_message =
        std::max(stats_.max_words_per_message, c.max_words);
    stats_.max_messages_edge_round =
        std::max(stats_.max_messages_edge_round, c.max_edge_msgs);
  }
  done_count_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(done_count_) + done_delta);
  if (faults_on_) {
    std::uint64_t drops = 0, dups = 0, reorders = 0;
    std::uint64_t first = kNoFaultCode;
    std::uint64_t first_bad = kNoFaultCode;
    for (const ShardCounters& c : counters_) {
      drops += c.drops;
      dups += c.dups;
      reorders += c.reorders;
      first = std::min(first, c.first_code);
      first_bad = std::min(first_bad, c.first_bad_code);
    }
    stats_.faults.drops += drops;
    stats_.faults.dups += dups;
    stats_.faults.reordered_inboxes += reorders;
    if (drops) round_fault_mask_ |= tolerance_bit(FaultKind::kDrop);
    if (dups) round_fault_mask_ |= tolerance_bit(FaultKind::kDup);
    if (reorders) round_fault_mask_ |= tolerance_bit(FaultKind::kReorder);
    if (first != kNoFaultCode) {
      last_fault_ = describe_read_fault(first);
      if (first_fault_.empty()) first_fault_ = last_fault_;
    }
    if (first_bad != kNoFaultCode && round_bad_fault_.empty())
      round_bad_fault_ = describe_read_fault(first_bad);
  }
  return sent;
}

std::uint64_t Network::run(Protocol& p, std::uint64_t max_rounds) {
  if (max_rounds == 0)
    max_rounds = 64 * (g_->num_nodes() + g_->num_edges()) + 1024;

  const std::size_t n = g_->num_nodes();
  mode_ = forced_ ? *forced_ : p.scheduling();
  first_round_ = round_ + 1;
  // Latch fault state for this run.  tolerance_ is run-constant, so
  // worker threads may read it freely inside note_read_fault.
  faults_on_ = plan_.has_value() && plan_->active();
  tolerance_ = faults_on_ ? p.fault_tolerance() : kFaultTolerant;
  if (faults_on_) {
    std::fill(crashed_.begin(), crashed_.end(), std::uint8_t{0});
    std::fill(restart_mask_.begin(), restart_mask_.end(), std::uint8_t{0});
    restarted_.clear();
    pending_restarts_ = 0;
    first_fault_.clear();
    last_fault_.clear();
  }
  // Reset the quiescence tracker and drop stale activations (a previous
  // run's final-round wakes must not leak into this protocol).
  std::fill(done_flag_.begin(), done_flag_.end(), std::uint8_t{0});
  done_count_ = 0;
  for (ActivationBucket& b : buckets_)
    for (auto& run : b.by_owner) run.clear();
  std::fill(shard_node_steps_.begin(), shard_node_steps_.end(),
            std::uint64_t{0});

  std::uint64_t executed = 0;
  const std::uint64_t messages_before = stats_.messages;
  const std::uint64_t words_before = stats_.words;
  const std::uint64_t node_steps_before = stats_.node_steps;

  if (observer_) observer_->on_phase_begin(p.name());

  for (;;) {
    begin_round();
    if (faults_on_) apply_crash_transitions(p);
    engine_->execute_round(*this, p);
    const std::uint64_t sent = end_round();
    ++executed;
    ++stats_.rounds;

    // A fault of a kind the protocol did not declare fired this round:
    // fail loudly (never a silently wrong answer).  Crash entries were
    // already rejected at the top of the round by apply_crash_transitions.
    if (faults_on_ && (round_fault_mask_ & ~tolerance_) != 0u)
      throw_fault_rejection(p);

    // Cooperative cancellation: checked between rounds on this (the
    // coordinator) thread, so the worker pool is always quiescent when
    // the exception unwinds and the Network can be reset() and reused.
    if (observer_ && !observer_->on_round(stats_))
      throw CancelledError{"protocol '" + p.name() +
                           "' cancelled by observer after " +
                           std::to_string(stats_.total_rounds()) +
                           " total rounds"};

    // Quiescent?  Nothing in flight and every node locally done — read
    // off the incremental counter; no O(n) scan in any scheduling mode.
    // A crash window with a scheduled restart keeps the run alive until
    // the restart happens, even though the crashed node counts as done.
    if (sent == 0 && done_count_ == n && pending_restarts_ == 0) break;

    DMC_ASSERT_MSG(
        executed < max_rounds,
        "protocol '" << p.name() << "' exceeded " << max_rounds
                     << " rounds (deadlock?) at round " << round_ << "; "
                     << (n - done_count_) << " of " << n
                     << " nodes not locally done"
                     << (faults_on_
                             ? "; active " + plan_->describe() +
                                   (last_fault_.empty()
                                        ? std::string{
                                              ", no fault injected yet"}
                                        : ", last injected fault: " +
                                              last_fault_)
                             : std::string{}));
  }

  stats_.per_protocol.push_back(ProtocolStats{
      p.name(), executed, stats_.messages - messages_before,
      stats_.words - words_before, stats_.node_steps - node_steps_before});
  if (observer_) observer_->on_phase_end(p.name(), stats_.per_protocol.back());
  return executed;
}

}  // namespace dmc
