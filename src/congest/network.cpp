#include "congest/network.h"

#include <algorithm>

namespace dmc {

namespace {
/// Where send_from routes this thread's stat updates.  Rebound by the
/// engine (via Network::bind_shard) at the start of every round, so the
/// pointer never dangles across rounds or Networks.
thread_local Network* tls_net = nullptr;
thread_local std::size_t tls_shard = 0;
}  // namespace

Network::Network(const Graph& g, std::unique_ptr<Engine> engine)
    : g_(&g),
      engine_(engine ? std::move(engine) : make_sequential_engine()) {
  const std::size_t n = g.num_nodes();
  port_base_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    port_base_[v + 1] =
        port_base_[v] + static_cast<std::uint32_t>(g.degree(v));
  const std::uint32_t slots = port_base_[n];

  // Reverse-port table: directed port (v, i) → the peer's slot for the
  // same edge.  Built in one pass by pairing the two directed copies of
  // each edge; kills the O(degree) reverse scan the send path used to do.
  reverse_slot_.assign(slots, 0);
  {
    std::vector<std::uint32_t> first_dir(g.num_edges(),
                                         ~std::uint32_t{0});
    for (NodeId v = 0; v < n; ++v) {
      const auto ports = g.ports(v);
      for (std::uint32_t i = 0; i < ports.size(); ++i) {
        const std::uint32_t dir = port_base_[v] + i;
        std::uint32_t& other = first_dir[ports[i].edge];
        if (other == ~std::uint32_t{0}) {
          other = dir;
        } else {
          reverse_slot_[dir] = other;
          reverse_slot_[other] = dir;
        }
      }
    }
  }

  // SoA slot planes.  Headers and payload words are deliberately left
  // uninitialized — every read is gated on the stamp matching the read
  // token, and a stamp only reaches a token value after send_from wrote
  // the header and payload it guards.
  for (auto& plane : payload_)
    plane = std::make_unique_for_overwrite<Word[]>(std::size_t{slots} *
                                                   kMaxWords);
  for (auto& plane : hdr_)
    plane = std::make_unique_for_overwrite<std::uint32_t[]>(slots);
  for (auto& plane : stamps_) plane.assign(slots, kNeverStamp32);

  const std::size_t shards = engine_->shard_count();
  counters_.resize(shards);
  shard_node_steps_.assign(shards, 0);
  owner_stride_ = static_cast<std::uint32_t>(
      n == 0 ? 1 : (n + shards - 1) / shards);
  buckets_.resize(shards);
  for (ActivationBucket& b : buckets_) {
    b.by_owner.resize(shards);
    b.mark.assign(n, kNeverStamp32);
  }
  done_flag_.assign(n, 0);
}

void Network::reset() {
  // Everything here is a fill or a clear over buffers whose capacity is
  // retained, so a reset is O(n + m) writes with zero allocation, and the
  // engine (with any worker pool it spawned) is untouched.
  round_ = 0;
  epoch_base_ = 0;
  wtoken_ = 0;
  rtoken_ = 0;
  stats_.reset();
  arena_.rewind();
  for (auto& plane : stamps_)
    std::fill(plane.begin(), plane.end(), kNeverStamp32);
  for (ActivationBucket& b : buckets_) {
    for (auto& run : b.by_owner) run.clear();
    std::fill(b.mark.begin(), b.mark.end(), kNeverStamp32);
  }
  active_.clear();
  std::fill(done_flag_.begin(), done_flag_.end(), std::uint8_t{0});
  done_count_ = 0;
  std::fill(shard_node_steps_.begin(), shard_node_steps_.end(),
            std::uint64_t{0});
  mode_ = Scheduling::kDense;
  dense_round_ = true;
  first_round_ = 0;
}

void Network::set_stamp_epoch_limit_for_test(std::uint32_t limit) {
  DMC_REQUIRE_MSG(limit >= 4 && limit <= kDefaultEpochLimit,
                  "epoch limit " << limit << " out of range");
  epoch_limit_ = limit;
}

void Mailbox::send(std::uint32_t port, const Message& m) {
  net_->send_from(self_, port, m);
}

void Mailbox::request_wake() { net_->request_wake(self_); }

std::size_t Mailbox::num_ports() const {
  return net_->graph().degree(self_);
}

void Network::bind_shard(std::size_t shard) {
  DMC_ASSERT(shard < counters_.size());
  tls_net = this;
  tls_shard = shard;
}

void Network::activate(NodeId u) {
  DMC_ASSERT(tls_net == this);
  ActivationBucket& b = buckets_[tls_shard];
  if (b.mark[u] == wtoken_) return;
  b.mark[u] = wtoken_;
  b.by_owner[u / owner_stride_].push_back(u);
}

void Network::request_wake(NodeId v) {
  if (mode_ != Scheduling::kEventDriven) return;
  activate(v);
}

void Network::send_from(NodeId from, std::uint32_t port, const Message& m) {
  DMC_REQUIRE(from < g_->num_nodes());
  DMC_REQUIRE_MSG(port < g_->degree(from),
                  "node " << from << " has no port " << port);
  DMC_REQUIRE_MSG(m.size <= kMaxWords, "message exceeds word budget");
  DMC_REQUIRE_MSG(m.tag <= kMaxTag, "message tag " << m.tag
                                    << " exceeds kMaxTag");

  const std::size_t parity = round_ & 1;
  const std::uint32_t slot = reverse_slot_[port_base_[from] + port];
  std::uint32_t& stamp = stamps_[parity][slot];

  // Observed per-directed-edge congestion this round: derived from slot
  // occupancy (not assumed), so E7 certifies the ≤ 1 legality bound.
  DMC_ASSERT(tls_net == this);
  ShardCounters& c = counters_[tls_shard];
  const std::uint32_t occupancy = stamp == wtoken_ ? 2 : 1;
  c.max_edge_msgs = std::max(c.max_edge_msgs, occupancy);
  DMC_REQUIRE_MSG(occupancy == 1, "node " << from << " sent twice on port "
                                          << port << " in one round");

  stamp = wtoken_;
  hdr_[parity][slot] = (m.tag << 8) | m.size;
  Word* w = payload_[parity].get() + std::size_t{slot} * kMaxWords;
  for (std::uint8_t k = 0; k < m.size; ++k) w[k] = m.w[k];
  ++c.messages;
  c.words += m.size;
  c.max_words = std::max(c.max_words, m.size);

  // The receiver has a delivery next round, so it must execute then.
  if (mode_ == Scheduling::kEventDriven)
    activate(g_->ports(from)[port].peer);
}

void Network::execute_node(NodeId v, Protocol& p) {
  const std::size_t read_parity = (round_ - 1) & 1;
  const std::uint32_t base = port_base_[v];
  Mailbox mb{*this, v,
             InboxView{payload_[read_parity].get() +
                           std::size_t{base} * kMaxWords,
                       hdr_[read_parity].get() + base,
                       stamps_[read_parity].data() + base,
                       port_base_[v + 1] - base, rtoken_}};
  p.round(v, mb);

  // Quiescence bookkeeping: only an executed node can change its done bit
  // (state is per-node), so tracking flips here keeps the global counter
  // exact with no end-of-round scan.
  ShardCounters& c = counters_[tls_shard];
  ++c.node_steps;
  const std::uint8_t now = p.local_done(v) ? 1 : 0;
  if (now != done_flag_[v]) {
    done_flag_[v] = now;
    c.done_delta += now ? 1 : -1;
  }
}

void Network::renormalize_epoch() {
  // Called between rounds (round_ already advanced, no node executing).
  // The only token that still matters is last round's: the read plane's
  // deliveries for the round about to execute.  Map it to 1, everything
  // else — the write plane (whose newest stamps are two rounds old, hence
  // dead) and the activation marks (compared only against the current
  // round's write token) — to never.  Re-basing the epoch two rounds back
  // makes last round's token 1 and this round's 2, so tokens stay unique
  // until the next renormalization.
  const std::uint32_t live = token(round_ - 1);
  std::vector<std::uint32_t>& read_plane = stamps_[(round_ - 1) & 1];
  for (std::uint32_t& s : read_plane)
    s = s == live ? 1u : kNeverStamp32;
  std::vector<std::uint32_t>& write_plane = stamps_[round_ & 1];
  std::fill(write_plane.begin(), write_plane.end(), kNeverStamp32);
  for (ActivationBucket& b : buckets_)
    std::fill(b.mark.begin(), b.mark.end(), kNeverStamp32);
  epoch_base_ = round_ - 2;
}

void Network::begin_round() {
  ++round_;
  if (round_ - epoch_base_ >= epoch_limit_) renormalize_epoch();
  wtoken_ = token(round_);
  rtoken_ = token(round_ - 1);
  for (ShardCounters& c : counters_) c = ShardCounters{};
  if (mode_ == Scheduling::kEventDriven && round_ != first_round_) {
    // Merge the per-shard buckets filled last round into one sorted,
    // duplicate-free active list.  Sorting makes the sweep order — and
    // therefore everything observable — independent of which shard
    // recorded an activation first.  Buckets are sub-bucketed by owner
    // range, and owner ranges partition the id space in ascending blocks,
    // so merging one range at a time sorts S short runs per range instead
    // of one global list — and the concatenation is globally ascending by
    // construction.
    active_.clear();
    for (std::size_t o = 0; o < buckets_.size(); ++o) {
      const auto seg = static_cast<std::ptrdiff_t>(active_.size());
      for (ActivationBucket& b : buckets_) {
        std::vector<NodeId>& run = b.by_owner[o];
        active_.insert(active_.end(), run.begin(), run.end());
        run.clear();
      }
      std::sort(active_.begin() + seg, active_.end());
      active_.erase(std::unique(active_.begin() + seg, active_.end()),
                    active_.end());
    }
    dense_round_ = false;
  } else {
    dense_round_ = true;
  }
}

std::uint64_t Network::end_round() {
  std::uint64_t sent = 0;
  std::int64_t done_delta = 0;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const ShardCounters& c = counters_[i];
    sent += c.messages;
    stats_.messages += c.messages;
    stats_.words += c.words;
    stats_.node_steps += c.node_steps;
    shard_node_steps_[i] += c.node_steps;
    done_delta += c.done_delta;
    stats_.max_words_per_message =
        std::max(stats_.max_words_per_message, c.max_words);
    stats_.max_messages_edge_round =
        std::max(stats_.max_messages_edge_round, c.max_edge_msgs);
  }
  done_count_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(done_count_) + done_delta);
  return sent;
}

std::uint64_t Network::run(Protocol& p, std::uint64_t max_rounds) {
  if (max_rounds == 0)
    max_rounds = 64 * (g_->num_nodes() + g_->num_edges()) + 1024;

  const std::size_t n = g_->num_nodes();
  mode_ = forced_ ? *forced_ : p.scheduling();
  first_round_ = round_ + 1;
  // Reset the quiescence tracker and drop stale activations (a previous
  // run's final-round wakes must not leak into this protocol).
  std::fill(done_flag_.begin(), done_flag_.end(), std::uint8_t{0});
  done_count_ = 0;
  for (ActivationBucket& b : buckets_)
    for (auto& run : b.by_owner) run.clear();
  std::fill(shard_node_steps_.begin(), shard_node_steps_.end(),
            std::uint64_t{0});

  std::uint64_t executed = 0;
  const std::uint64_t messages_before = stats_.messages;
  const std::uint64_t words_before = stats_.words;
  const std::uint64_t node_steps_before = stats_.node_steps;

  if (observer_) observer_->on_phase_begin(p.name());

  for (;;) {
    begin_round();
    engine_->execute_round(*this, p);
    const std::uint64_t sent = end_round();
    ++executed;
    ++stats_.rounds;

    // Cooperative cancellation: checked between rounds on this (the
    // coordinator) thread, so the worker pool is always quiescent when
    // the exception unwinds and the Network can be reset() and reused.
    if (observer_ && !observer_->on_round(stats_))
      throw CancelledError{"protocol '" + p.name() +
                           "' cancelled by observer after " +
                           std::to_string(stats_.total_rounds()) +
                           " total rounds"};

    // Quiescent?  Nothing in flight and every node locally done — read
    // off the incremental counter; no O(n) scan in any scheduling mode.
    if (sent == 0 && done_count_ == n) break;

    DMC_ASSERT_MSG(executed < max_rounds,
                   "protocol '" << p.name() << "' exceeded " << max_rounds
                                << " rounds (deadlock?)");
  }

  stats_.per_protocol.push_back(ProtocolStats{
      p.name(), executed, stats_.messages - messages_before,
      stats_.words - words_before, stats_.node_steps - node_steps_before});
  if (observer_) observer_->on_phase_end(p.name(), stats_.per_protocol.back());
  return executed;
}

}  // namespace dmc
