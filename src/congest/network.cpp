#include "congest/network.h"

#include <algorithm>

namespace dmc {

Network::Network(const Graph& g) : g_(&g) {
  const std::size_t n = g.num_nodes();
  inbox_.resize(n);
  pending_.resize(n);
  port_base_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    port_base_[v + 1] = port_base_[v] +
                        static_cast<std::uint32_t>(g.degree(v));
  sent_this_round_.assign(port_base_[n], 0);
}

void Mailbox::send(std::uint32_t port, const Message& m) {
  net_->send_from(self_, port, m);
}

std::size_t Mailbox::num_ports() const {
  return net_->graph().degree(self_);
}

void Network::send_from(NodeId from, std::uint32_t port, const Message& m) {
  DMC_REQUIRE(from < g_->num_nodes());
  DMC_REQUIRE_MSG(port < g_->degree(from),
                  "node " << from << " has no port " << port);
  DMC_REQUIRE_MSG(m.size <= kMaxWords, "message exceeds word budget");

  // One message per directed edge per round.
  std::uint32_t& marker = sent_this_round_[port_base_[from] + port];
  DMC_REQUIRE_MSG(marker != round_token_,
                  "node " << from << " sent twice on port " << port
                          << " in one round");
  marker = round_token_;

  const Port p = g_->ports(from)[port];
  // Find the reverse port index at the peer (cached lookup would be an
  // optimization; degree scans are fine at this scale).
  std::uint32_t reverse = 0;
  {
    const auto peer_ports = g_->ports(p.peer);
    bool found = false;
    for (std::uint32_t i = 0; i < peer_ports.size(); ++i) {
      if (peer_ports[i].edge == p.edge) {
        reverse = i;
        found = true;
        break;
      }
    }
    DMC_ASSERT(found);
  }
  pending_[p.peer].push_back(Delivery{reverse, m});
  ++in_flight_;
  ++stats_.messages;
  stats_.words += m.size;
  stats_.max_words_per_message =
      std::max(stats_.max_words_per_message, m.size);
}

std::uint64_t Network::run(Protocol& p, std::uint64_t max_rounds) {
  if (max_rounds == 0)
    max_rounds = 64 * (g_->num_nodes() + g_->num_edges()) + 1024;

  const std::size_t n = g_->num_nodes();
  std::uint64_t executed = 0;
  const std::uint64_t messages_before = stats_.messages;
  const std::uint64_t words_before = stats_.words;

  for (;;) {
    // Deliver last round's sends.
    for (NodeId v = 0; v < n; ++v) {
      inbox_[v].clear();
      std::swap(inbox_[v], pending_[v]);
      std::sort(inbox_[v].begin(), inbox_[v].end(),
                [](const Delivery& a, const Delivery& b) {
                  return a.port < b.port;
                });
    }
    in_flight_ = 0;
    ++round_token_;

    // Execute every node.
    for (NodeId v = 0; v < n; ++v) {
      Mailbox mb{*this, v, std::span<const Delivery>{inbox_[v]}};
      p.round(v, mb);
    }
    ++executed;
    ++stats_.rounds;

    // Worst per-edge congestion: the send-twice check above enforces ≤ 1
    // message per directed edge per round, so the observed maximum is 1
    // whenever any message was sent.  E7 reports this observed value.
    if (in_flight_ > 0)
      stats_.max_messages_edge_round =
          std::max<std::uint32_t>(stats_.max_messages_edge_round, 1);

    // Quiescent?
    if (in_flight_ == 0) {
      bool all_done = true;
      for (NodeId v = 0; v < n; ++v) {
        if (!p.local_done(v)) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
    }

    DMC_ASSERT_MSG(executed < max_rounds,
                   "protocol '" << p.name() << "' exceeded " << max_rounds
                                << " rounds (deadlock?)");
  }

  stats_.per_protocol.push_back(ProtocolStats{
      p.name(), executed, stats_.messages - messages_before,
      stats_.words - words_before});
  return executed;
}

}  // namespace dmc
