#include "congest/faults.h"

#include <sstream>

#include "util/assert.h"
#include "util/prng.h"

namespace dmc {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDup: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

void FaultPlan::validate(std::size_t n) const {
  const auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  DMC_REQUIRE_MSG(rate_ok(drop_rate) && rate_ok(dup_rate) &&
                      rate_ok(reorder_within_round),
                  "fault rates must lie in [0, 1]");
  std::vector<std::uint8_t> seen(n, 0);
  for (const CrashWindow& w : crash_schedule) {
    DMC_REQUIRE_MSG(w.node < n,
                    "crash window names node " << w.node << " but the graph"
                                               << " has " << n << " nodes");
    DMC_REQUIRE_MSG(w.r0 >= 1 && w.r0 < w.r1,
                    "crash window [" << w.r0 << ", " << w.r1
                                     << ") on node " << w.node
                                     << " is empty or starts before round 1");
    DMC_REQUIRE_MSG(!seen[w.node], "node " << w.node
                                           << " has two crash windows");
    seen[w.node] = 1;
  }
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "FaultPlan(seed=" << seed;
  if (drop_rate > 0.0) os << ", drop=" << drop_rate;
  if (dup_rate > 0.0) os << ", dup=" << dup_rate;
  if (reorder_within_round > 0.0) os << ", reorder=" << reorder_within_round;
  if (!crash_schedule.empty()) {
    os << ", crash=[";
    for (std::size_t i = 0; i < crash_schedule.size(); ++i) {
      const CrashWindow& w = crash_schedule[i];
      if (i) os << ", ";
      os << w.node << "@[" << w.r0 << ", ";
      if (w.r1 == CrashWindow::kNoRestart)
        os << "inf)";
      else
        os << w.r1 << ')';
    }
    os << ']';
  }
  os << ')';
  return os.str();
}

std::uint64_t fault_hash(std::uint64_t seed, std::uint32_t stream,
                         std::uint64_t round, std::uint64_t index) {
  // Three chained SplitMix64 steps over the coordinates, each offset by a
  // distinct odd constant so (stream, round, index) permutations cannot
  // collide by commutativity.  Purely positional — no state is consumed,
  // so the value is independent of evaluation order (the whole point).
  std::uint64_t h = mix64(seed ^ (0x9e3779b97f4a7c15ull * (stream + 1)));
  h = mix64(h ^ (round * 0xbf58476d1ce4e5b9ull));
  h = mix64(h ^ (index * 0x94d049bb133111ebull));
  return h;
}

}  // namespace dmc
