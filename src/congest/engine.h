// Pluggable round-execution engines for the CONGEST simulator.
//
// A Network delegates the per-round node sweep to an Engine.  Two
// implementations ship:
//
//   * SequentialEngine — the classic deterministic ascending-id loop;
//   * ShardedEngine    — a persistent worker pool whose workers claim
//     fixed-size chunks of the round's domain off an atomic ticket
//     counter (each shard also owns one reserved starter chunk), so
//     skewed active lists spread over all workers instead of serializing
//     on whichever shard owns the hot node range.
//
// Both produce BIT-IDENTICAL protocol results and statistics.  The
// argument (see DESIGN.md):
//
//   1. the model allows ≤ 1 message per directed edge per round, so every
//      delivery has a fixed slot keyed by (receiver, receiver port) — a
//      send is a write to a location no other sender may touch this round;
//   2. node programs only mutate state indexed by the node being executed
//      (the locality discipline of protocol.h), so executing nodes in any
//      order — or concurrently — is unobservable;
//   3. statistics are merged from per-shard counters with commutative,
//      associative reductions (sum / max), so the totals are
//      order-independent too.
//
// Engines are stateless with respect to a particular Network; one engine
// instance may serve many runs (the sharded pool persists across rounds
// and runs, so thread start-up cost is paid once per Network, not once per
// round).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace dmc {

class Network;
class Protocol;

class Engine {
 public:
  virtual ~Engine() = default;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of independent stat-counter blocks the engine writes into
  /// (one per shard).  The Network pre-sizes its per-round counters with
  /// this before every round.
  [[nodiscard]] virtual std::size_t shard_count() const = 0;

  /// Executes `p.round(v, mailbox)` exactly once for every node of the
  /// round's domain: all nodes when `net.dense_round()`, else exactly
  /// `net.active_nodes()` (ascending, duplicate-free).  Must be observably
  /// equivalent to the ascending-id sequential sweep over that domain;
  /// with slot-addressed mailboxes any schedule is.  Exceptions thrown by
  /// node programs must propagate to the caller.
  ///
  /// Quiescence is NOT the engine's concern: the Network maintains an
  /// incremental done-counter inside execute_node, so there is no
  /// per-round all-nodes scan anywhere.
  virtual void execute_round(Network& net, Protocol& p) = 0;
};

/// The deterministic single-threaded reference engine.
[[nodiscard]] std::unique_ptr<Engine> make_sequential_engine();

/// The sharded multi-threaded engine.  `threads == 0` picks the hardware
/// concurrency; `threads == 1` degenerates to the sequential sweep (no
/// worker pool is spawned).
[[nodiscard]] std::unique_ptr<Engine> make_sharded_engine(
    unsigned threads = 0);

/// Convenience for option structs: 1 → sequential, else sharded(threads).
[[nodiscard]] std::unique_ptr<Engine> make_engine(unsigned threads);

}  // namespace dmc
