// TreeView: a rooted forest over the network, described from each node's
// local perspective (parent PORT and children PORTS).
//
// The same protocol code (convergecast, downcast, …) runs unchanged on
//   * the global BFS tree   (one tree spanning all nodes), and
//   * the fragment forest   (one tree per fragment; all fragments operate
//     concurrently on disjoint edges),
// which is exactly how the paper reuses its primitives across Steps 1–5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dmc {

inline constexpr std::uint32_t kNoPort = static_cast<std::uint32_t>(-1);

class TreeView {
 public:
  TreeView() = default;

  /// Builds from per-node parent ports (kNoPort ⇒ the node is a root).
  /// Children lists are derived — equivalent to the standard 1-round
  /// "notify parent" step, accounted for by the Schedule's barrier charge.
  [[nodiscard]] static TreeView from_parent_ports(
      const Graph& g, std::vector<std::uint32_t> parent_port);

  [[nodiscard]] std::size_t num_nodes() const { return parent_port_.size(); }

  [[nodiscard]] bool is_root(NodeId v) const {
    return parent_port_[v] == kNoPort;
  }
  [[nodiscard]] std::uint32_t parent_port(NodeId v) const {
    return parent_port_[v];
  }
  /// Children ports of v, ascending.  CSR-backed: a forest over 10^6
  /// nodes costs two flat arrays, not 10^6 heap blocks.
  [[nodiscard]] std::span<const std::uint32_t> children_ports(
      NodeId v) const {
    return {child_ports_.data() + child_off_[v],
            child_off_[v + 1] - child_off_[v]};
  }

  /// The parent NODE (simulator-side convenience; protocols use ports).
  [[nodiscard]] NodeId parent_node(const Graph& g, NodeId v) const;

  /// Height of the forest (max depth over all trees) — simulator-side, used
  /// for barrier charging and round-bound sanity checks.
  [[nodiscard]] std::uint32_t height(const Graph& g) const;

  /// Depth of every node within its tree (simulator-side oracle).
  [[nodiscard]] std::vector<std::uint32_t> depths(const Graph& g) const;

  /// Checks the forest is acyclic and parent/children are consistent.
  void validate(const Graph& g) const;

  /// Heap bytes of the three flat arrays (registry byte accounting).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::vector<std::uint32_t> parent_port_;
  std::vector<std::uint32_t> child_off_;    ///< n+1 offsets
  std::vector<std::uint32_t> child_ports_;  ///< sorted per segment
};

}  // namespace dmc
