// The CONGEST protocol interface.
//
// A Protocol is the code a single algorithm phase runs at EVERY node.  The
// engine calls `round(v, mb)` for each node once per synchronous round; the
// node may read the messages delivered this round (sent last round) and
// send at most one ≤ kMaxWords message per incident port.
//
// Locality discipline: an implementation may only touch per-node state of
// the node it was invoked for, its mailbox, and immutable globally-known
// configuration (n, √n thresholds, information previously broadcast to all
// nodes by an earlier protocol).  The orchestrator-with-state-vectors
// layout is an implementation convenience; the message layer is the only
// inter-node channel.
//
// The discipline is also the parallel-execution contract: the sharded
// Engine runs `round(v, ·)` for different v concurrently, so state written
// during round(v, ·) must be indexed by v (and deliveries are written into
// per-directed-edge slots that only the executing sender may touch).  Every
// protocol honouring the discipline is automatically engine-agnostic and
// bit-reproducible; see engine.h.
#pragma once

#include <string>

#include "congest/mailbox.h"
#include "graph/graph.h"

namespace dmc {

class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Human-readable name for stats breakdowns.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Executes node v's step for the current round.
  virtual void round(NodeId v, Mailbox& mb) = 0;

  /// True when node v has nothing more to do *unless* a message arrives.
  /// The engine declares the protocol finished when every node is locally
  /// done and no message is in flight.
  [[nodiscard]] virtual bool local_done(NodeId v) const = 0;
};

}  // namespace dmc
