// The CONGEST protocol interface.
//
// A Protocol is the code a single algorithm phase runs at EVERY node.  The
// engine calls `round(v, mb)` for each node once per synchronous round; the
// node may read the messages delivered this round (sent last round) and
// send at most one ≤ kMaxWords message per incident port.
//
// Locality discipline: an implementation may only touch per-node state of
// the node it was invoked for, its mailbox, and immutable globally-known
// configuration (n, √n thresholds, information previously broadcast to all
// nodes by an earlier protocol).  The orchestrator-with-state-vectors
// layout is an implementation convenience; the message layer is the only
// inter-node channel.
//
// The discipline is also the parallel-execution contract: the sharded
// Engine runs `round(v, ·)` for different v concurrently, so state written
// during round(v, ·) must be indexed by v (and deliveries are written into
// per-directed-edge slots that only the executing sender may touch).  Every
// protocol honouring the discipline is automatically engine-agnostic and
// bit-reproducible; see engine.h.
#pragma once

#include <string>

#include "congest/faults.h"
#include "congest/mailbox.h"
#include "graph/graph.h"
#include "util/assert.h"

namespace dmc {

/// How the engine picks which nodes to execute each round.
enum class Scheduling {
  /// Every node executes every round — the classic reference sweep.
  /// Always safe; the default for protocols that have not been audited.
  kDense,
  /// After a dense first round, a round executes exactly the nodes with a
  /// delivery this round plus the nodes that called `request_wake()` last
  /// round.  Node-step cost drops from rounds·n to Σ_r active(r).
  ///
  /// A protocol may opt in iff it is IDLE-IDEMPOTENT: executing a node
  /// with an empty inbox that did not request a wake must send nothing,
  /// leave every observable output and `local_done(v)` unchanged (benign
  /// rewrites of the same value are fine).  Any node that must act in
  /// round r+1 without receiving mail (a pipeline with a queued item, a
  /// stream with more to emit) calls `mb.request_wake()` in round r; such
  /// a node must not be locally done, or quiescence could drop the wake.
  kEventDriven,
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Human-readable name for stats breakdowns.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Executes node v's step for the current round.
  virtual void round(NodeId v, Mailbox& mb) = 0;

  /// True when node v has nothing more to do *unless* a message arrives.
  /// The engine declares the protocol finished when every node is locally
  /// done and no message is in flight.
  [[nodiscard]] virtual bool local_done(NodeId v) const = 0;

  /// Scheduling contract of this protocol (see Scheduling).  Overriding to
  /// kEventDriven asserts idle-idempotence; results, rounds, and message
  /// stats must be bit-identical to a dense run — only node_steps shrinks.
  [[nodiscard]] virtual Scheduling scheduling() const {
    return Scheduling::kDense;
  }

  /// Fault-tolerance declaration — a FaultTolerance bitmask over the
  /// FaultKinds this protocol has been AUDITED to absorb (faults.h).  The
  /// default declares none: under an active FaultPlan, the first injected
  /// fault of an undeclared kind makes Network::run throw InvariantError
  /// naming the protocol and the fault, so a reliable-only protocol can
  /// never return a silently wrong answer from a perturbed run.  An
  /// override is a correctness claim, not a wish — each one should carry
  /// the audit argument in a comment (see the primitives for examples).
  [[nodiscard]] virtual unsigned fault_tolerance() const {
    return kReliableOnly;
  }

  /// Crash-restart hook: called once, between rounds on the coordinator
  /// thread, when node v restarts after a crash window.  An implementation
  /// must reinitialize exactly v's slice of protocol state to its
  /// just-constructed value (the network discards v's pending mail
  /// itself).  Only meaningful for protocols declaring kTolerateCrash; the
  /// default throws, which keeps an unaudited protocol from silently
  /// resuming a wiped node with stale state.
  virtual void on_crash_restart(NodeId v) {
    DMC_ASSERT_MSG(false, "protocol '"
                              << name() << "' declares no crash tolerance "
                              << "but node " << v
                              << " was crash-restarted by a FaultPlan");
  }
};

}  // namespace dmc
