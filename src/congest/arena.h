// Arena: a rewindable bump allocator for per-solve transient buffers.
//
// The serving layer's goal is that a warm query allocates nothing: the
// Network's own structures (slot planes, stamps, buckets) are retained
// buffers that reset() merely refills, and the drivers' per-solve scratch
// (evaluation weight tables, per-node aggregates, per-tree key arrays)
// comes from this arena.  Allocation is a pointer bump inside a retained
// chunk; Network::reset() rewinds the arena between queries, so after the
// first solve has grown the chunks to the workload's high-water mark,
// repeated solves perform no heap allocation for arena-backed state.
//
// Deliberately restricted to trivially copyable, trivially destructible
// element types (weights, ids, keys): nothing is ever destroyed, rewind
// just forgets.  Returned spans are zero-filled — same contents as the
// `std::vector<T>(n, 0)` they replace, and no stale bytes from the
// previous query can leak into this one (determinism: a warm solve must
// be bit-identical to a cold one).  Spans stay valid until the next
// rewind(): chunks are never reallocated, only appended.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/assert.h"

namespace dmc {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A zero-filled span of `count` Ts, valid until the next rewind().
  template <class T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena holds only trivial types — nothing is destroyed");
    static_assert(alignof(T) <= kAlign, "over-aligned type");
    if (count == 0) return {};
    std::byte* p = raw(count * sizeof(T));
    std::memset(p, 0, count * sizeof(T));
    return {reinterpret_cast<T*>(p), count};
  }

  /// Forgets every allocation; chunk capacity is retained, so the next
  /// round of alloc() calls reuses the same memory.
  void rewind() {
    chunk_ = 0;
    used_ = 0;
  }

  /// Total bytes held across chunks (the high-water measure E9 reports).
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  // One alignment for everything the simulator stores (≤ 8-byte scalars
  // and small trivial structs): keeps the bump arithmetic branch-free.
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kMinChunk = std::size_t{1} << 16;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };

  [[nodiscard]] std::byte* raw(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    // Advance past retained chunks that cannot fit this request; their
    // remaining tails are wasted until rewind, which is fine — chunk
    // sizes only grow, so steady state settles into the first chunks.
    while (chunk_ < chunks_.size() && used_ + bytes > chunks_[chunk_].size) {
      ++chunk_;
      used_ = 0;
    }
    if (chunk_ == chunks_.size()) {
      Chunk c;
      c.size = std::max(kMinChunk, bytes);
      c.data = std::make_unique<std::byte[]>(c.size);
      chunks_.push_back(std::move(c));
      used_ = 0;
    }
    std::byte* p = chunks_[chunk_].data.get() + used_;
    used_ += bytes;
    return p;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_{0};  ///< chunk currently bumped into
  std::size_t used_{0};   ///< bytes used within that chunk
};

}  // namespace dmc
