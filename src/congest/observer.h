// Observation and cooperative cancellation hooks for Network::run.
//
// A RoundObserver sees the simulation at protocol-phase granularity
// (on_phase_begin / on_phase_end bracket every Network::run call, i.e.
// every Protocol executed to quiescence) and at round granularity
// (on_round fires after every executed round with a snapshot of the
// cumulative stats).  Observation is strictly read-only: an observer can
// never change what a protocol computes, which round executes which
// nodes, or any statistic — the engine-equivalence and scheduling-
// equivalence guarantees therefore hold with or without one installed.
//
// The one way an observer influences a run is COOPERATIVE CANCELLATION:
// returning false from on_round makes the Network abandon the run by
// throwing CancelledError before the next round starts.  The throw
// happens on the coordinator thread between rounds — never inside a
// worker sweep — so the sharded engine's pool is always quiescent when
// the exception unwinds, and the owning Network can simply be reset()
// and reused.  This is the hook serving layers need for round budgets
// and wall-clock deadlines (see core/session.h).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "congest/stats.h"

namespace dmc {

/// Thrown by Network::run when an observer cancels the run (round budget
/// or deadline exceeded, caller shutdown, …).  Deliberately distinct from
/// InvariantError/PreconditionError: cancellation is not a bug, and a
/// serving layer routinely catches exactly this type.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// The named protocol is about to execute its first round.  Phases never
  /// overlap: every on_phase_begin is matched by exactly one on_phase_end
  /// (or by a thrown error) before the next phase begins.
  virtual void on_phase_begin(std::string_view protocol) {
    (void)protocol;
  }

  /// The named protocol reached quiescence; `phase` is its per-protocol
  /// stats entry (rounds/messages/words/node_steps of this run only).
  virtual void on_phase_end(std::string_view protocol,
                            const ProtocolStats& phase) {
    (void)protocol;
    (void)phase;
  }

  /// Called after every executed round with the cumulative stats of the
  /// underlying Network (all phases so far, barrier charges included).
  /// Return false to cancel: the Network throws CancelledError instead of
  /// starting another round.  Called between rounds on the coordinator
  /// thread, so implementations need no synchronization.
  [[nodiscard]] virtual bool on_round(const CongestStats& snapshot) {
    (void)snapshot;
    return true;
  }
};

}  // namespace dmc
