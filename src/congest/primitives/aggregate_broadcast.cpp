#include "congest/primitives/aggregate_broadcast.h"

#include <algorithm>

namespace dmc {

namespace {
constexpr std::uint32_t kTagUpItem = 1;
constexpr std::uint32_t kTagUpDone = 2;
constexpr std::uint32_t kTagDownItem = 3;
constexpr std::uint32_t kTagDownDone = 4;

AggItem combine_items(AggOp op, const AggItem& a, const AggItem& b) {
  DMC_ASSERT(a.key == b.key);
  switch (op) {
    case AggOp::kSum:
      return AggItem{a.key, {a.p[0] + b.p[0], a.p[1] + b.p[1],
                             a.p[2] + b.p[2]}};
    case AggOp::kMin:
      return a.p <= b.p ? a : b;
    case AggOp::kUnique:
      throw InvariantError{"AggOp::kUnique saw a duplicate key"};
  }
  throw InvariantError{"unknown AggOp"};
}
}  // namespace

AggregateBroadcastProtocol::AggregateBroadcastProtocol(
    const Graph& g, const TreeView& tv, AggOptions options,
    std::vector<std::vector<AggItem>> contributions)
    : tv_(&tv), opt_(options) {
  DMC_REQUIRE(contributions.size() == g.num_nodes());
  const std::size_t n = g.num_nodes();
  st_.resize(n);
  final_.assign(n, {});
  if (opt_.keep) root_list_.assign(n, {});
  tapped_.assign(n, {});
  absorbed_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    State& s = st_[v];
    s.own = std::move(contributions[v]);
    std::sort(s.own.begin(), s.own.end(),
              [](const AggItem& a, const AggItem& b) { return a.key < b.key; });
    // Pre-combine equal keys within one node's contribution.
    std::vector<AggItem> merged;
    for (const AggItem& it : s.own) {
      if (!merged.empty() && merged.back().key == it.key)
        merged.back() = combine_items(opt_.op, merged.back(), it);
      else
        merged.push_back(it);
    }
    s.own = std::move(merged);
    s.child.resize(tv.children_ports(v).size());
  }
}

bool AggregateBroadcastProtocol::up_blocked(const State& s) const {
  for (const ChildStream& c : s.child)
    if (!c.done && c.buf.empty()) return true;
  return false;
}

bool AggregateBroadcastProtocol::up_exhausted(const State& s) const {
  if (s.own_ptr < s.own.size()) return false;
  for (const ChildStream& c : s.child)
    if (!c.done || !c.buf.empty()) return false;
  return true;
}

AggItem AggregateBroadcastProtocol::pop_min(State& s) {
  // Precondition: !up_blocked && !up_exhausted.
  bool have = false;
  Word k = 0;
  if (s.own_ptr < s.own.size()) {
    k = s.own[s.own_ptr].key;
    have = true;
  }
  for (const ChildStream& c : s.child) {
    if (c.buf.empty()) continue;
    if (!have || c.buf.front().key < k) {
      k = c.buf.front().key;
      have = true;
    }
  }
  DMC_ASSERT(have);
  AggItem out{};
  bool first = true;
  if (s.own_ptr < s.own.size() && s.own[s.own_ptr].key == k) {
    out = s.own[s.own_ptr];
    ++s.own_ptr;
    first = false;
  }
  for (ChildStream& c : s.child) {
    if (!c.buf.empty() && c.buf.front().key == k) {
      out = first ? c.buf.front() : combine_items(opt_.op, out, c.buf.front());
      c.buf.pop_front();
      first = false;
    }
  }
  return out;
}

bool AggregateBroadcastProtocol::next_outgoing(NodeId v, AggItem& out) {
  State& s = st_[v];
  while (!up_blocked(s) && !up_exhausted(s)) {
    AggItem it = pop_min(s);
    if (opt_.tap) tapped_[v].push_back(it);
    if (opt_.absorb && it.key == v) {
      absorbed_[v].push_back(it);
      continue;  // absorbed: free to pop another this round
    }
    out = it;
    return true;
  }
  return false;
}

void AggregateBroadcastProtocol::round(NodeId v, Mailbox& mb) {
  State& s = st_[v];
  const auto& children = tv_->children_ports(v);

  // ---- receive ----
  for (const Delivery& d : mb.inbox()) {
    switch (d.msg.tag) {
      case kTagUpItem:
      case kTagUpDone: {
        std::size_t idx = static_cast<std::size_t>(-1);
        for (std::size_t i = 0; i < children.size(); ++i)
          if (children[i] == d.port) {
            idx = i;
            break;
          }
        DMC_ASSERT_MSG(idx != static_cast<std::size_t>(-1),
                       "up-message from a non-child port");
        if (d.msg.tag == kTagUpItem)
          s.child[idx].buf.push_back(
              AggItem{d.msg.at(0), {d.msg.at(1), d.msg.at(2), d.msg.at(3)}});
        else
          s.child[idx].done = true;
        break;
      }
      case kTagDownItem: {
        DMC_ASSERT(d.port == tv_->parent_port(v));
        const AggItem it{d.msg.at(0),
                         {d.msg.at(1), d.msg.at(2), d.msg.at(3)}};
        if (!opt_.keep || opt_.keep(v, it.key)) final_[v].push_back(it);
        s.down_queue.push_back(it);
        break;
      }
      case kTagDownDone:
        s.parent_down_done = true;
        break;
      default:
        throw InvariantError{"agg_broadcast: unknown tag"};
    }
  }

  // ---- up phase ----
  if (!s.up_complete) {
    if (tv_->is_root(v)) {
      // The root absorbs greedily: its children deliver at most one item
      // each per round, so draining is local computation.  With a keep
      // filter the full stream goes to root_list_ (the down phase must
      // replay it) and only kept items land in final_.
      std::vector<AggItem>& full =
          opt_.keep ? root_list_[v] : final_[v];
      AggItem it;
      while (next_outgoing(v, it)) {
        if (!full.empty() && full.back().key == it.key)
          full.back() = combine_items(opt_.op, full.back(), it);
        else
          full.push_back(it);
        if (opt_.keep && opt_.keep(v, it.key)) {
          if (!final_[v].empty() && final_[v].back().key == it.key)
            final_[v].back() =
                combine_items(opt_.op, final_[v].back(), it);
          else
            final_[v].push_back(it);
        }
      }
      if (up_exhausted(s)) s.up_complete = true;
    } else {
      AggItem it;
      if (next_outgoing(v, it)) {
        mb.send(tv_->parent_port(v),
                Message::make(kTagUpItem, {it.key, it.p[0], it.p[1],
                                           it.p[2]}));
      } else if (up_exhausted(s) && !s.up_done_sent) {
        mb.send(tv_->parent_port(v), Message::make(kTagUpDone, {}));
        s.up_done_sent = true;
        s.up_complete = true;
      }
    }
  }

  // Work that will fire next round without a new delivery: more poppable
  // up-stream items at a non-root (blocked-on-child states instead wake by
  // delivery; an exhausted stream completed above in this same round).
  const bool up_pending =
      !tv_->is_root(v) && !s.up_complete && !up_blocked(s);

  // ---- down phase ----
  if (!opt_.deliver_all) {
    s.down_complete = s.up_complete;
    if (up_pending) mb.request_wake();
    return;
  }
  if (tv_->is_root(v)) {
    if (s.up_complete && !s.down_done_sent) {
      const std::vector<AggItem>& down_src =
          opt_.keep ? root_list_[v] : final_[v];
      if (s.root_down_ptr < down_src.size()) {
        const AggItem& it = down_src[s.root_down_ptr++];
        const Message m = Message::make(
            kTagDownItem, {it.key, it.p[0], it.p[1], it.p[2]});
        for (const std::uint32_t cp : children) mb.send(cp, m);
      } else {
        const Message m = Message::make(kTagDownDone, {});
        for (const std::uint32_t cp : children) mb.send(cp, m);
        s.down_done_sent = true;
        s.down_complete = true;
      }
    }
  } else {
    if (!s.down_queue.empty()) {
      const AggItem it = s.down_queue.front();
      s.down_queue.pop_front();
      const Message m =
          Message::make(kTagDownItem, {it.key, it.p[0], it.p[1], it.p[2]});
      for (const std::uint32_t cp : children) mb.send(cp, m);
    } else if (s.parent_down_done && !s.down_done_sent) {
      const Message m = Message::make(kTagDownDone, {});
      for (const std::uint32_t cp : children) mb.send(cp, m);
      s.down_done_sent = true;
      s.down_complete = true;
    }
  }

  // Down-phase local work left over for next round: queued items, or the
  // DOWN_DONE owed once the queue just drained; the root streams its final
  // list autonomously.  (The root's up phase needs no wake — it only ever
  // waits on child deliveries.)
  const bool down_pending =
      tv_->is_root(v)
          ? (s.up_complete && !s.down_done_sent)
          : (!s.down_queue.empty() ||
             (s.parent_down_done && !s.down_done_sent));
  if (up_pending || down_pending) mb.request_wake();
}

bool AggregateBroadcastProtocol::local_done(NodeId v) const {
  const State& s = st_[v];
  if (!s.up_complete) return false;
  if (!opt_.deliver_all) return true;
  return s.down_complete;
}

}  // namespace dmc
