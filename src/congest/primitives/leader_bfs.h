// Leader election + BFS spanning-tree construction by min-id flooding.
//
// Every node floods (candidate_root, distance); a node adopts a candidate
// that is smaller, or the same candidate at a smaller distance, and
// re-floods.  At quiescence the unique minimum id has won everywhere and
// parent pointers form its BFS tree (synchronous flooding ⇒ first arrival
// = shortest hop distance ⇒ distances are exact).  O(D) rounds.
//
// When the root is already known (every phase after election), pass it to
// the constructor: only the root starts as a candidate, so the single BFS
// wave touches each node O(1) times — Σ active(r) = O(m) node-steps under
// event-driven scheduling, versus Θ(D·n) dense (Θ(n²) on a path).
#pragma once

#include <vector>

#include "congest/protocol.h"
#include "congest/tree_view.h"

namespace dmc {

class LeaderBfsProtocol final : public Protocol {
 public:
  /// `root == kNoNode` elects the minimum id; otherwise builds the BFS
  /// tree of the designated (globally known) root.
  explicit LeaderBfsProtocol(const Graph& g, NodeId root = kNoNode);

  [[nodiscard]] std::string name() const override { return "leader_bfs"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: after the dense first round (where every node
  /// floods its own candidacy), a node acts only on deliveries — an idle
  /// execution finds dirty == false, sends nothing, and rewrites dist_[v]
  /// with its unchanged value.  Θ(n²) → Θ(n) node-steps on a path.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: the adoption fold is a strict-< lexicographic
  /// minimum over the inbox, and ties break toward the incumbent whatever
  /// the arrival order, so any permutation yields the same state.  Dup: a
  /// second copy of (root, dist) loses the strict-< comparison against the
  /// state the first copy just installed — a no-op.  Drops lose waves
  /// forever and a crash wipes adopted candidates; neither is recoverable
  /// without retransmission, so neither is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder | kTolerateDup;
  }

  /// Results, valid after the run.
  [[nodiscard]] NodeId leader() const;
  [[nodiscard]] std::uint32_t depth(NodeId v) const { return dist_[v]; }
  [[nodiscard]] TreeView tree_view(const Graph& g) const;

 private:
  struct State {
    std::uint64_t best_root;
    std::uint32_t dist;
    std::uint32_t parent_port;
    bool dirty;     ///< needs to (re)flood
    bool started;
  };
  std::vector<State> st_;
  std::vector<std::uint32_t> dist_;
};

}  // namespace dmc
