// Leader election + BFS spanning-tree construction by min-id flooding.
//
// Every node floods (candidate_root, distance); a node adopts a candidate
// that is smaller, or the same candidate at a smaller distance, and
// re-floods.  At quiescence the unique minimum id has won everywhere and
// parent pointers form its BFS tree (synchronous flooding ⇒ first arrival
// = shortest hop distance ⇒ distances are exact).  O(D) rounds.
#pragma once

#include <vector>

#include "congest/protocol.h"
#include "congest/tree_view.h"

namespace dmc {

class LeaderBfsProtocol final : public Protocol {
 public:
  explicit LeaderBfsProtocol(const Graph& g);

  [[nodiscard]] std::string name() const override { return "leader_bfs"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;

  /// Results, valid after the run.
  [[nodiscard]] NodeId leader() const;
  [[nodiscard]] std::uint32_t depth(NodeId v) const { return dist_[v]; }
  [[nodiscard]] TreeView tree_view(const Graph& g) const;

 private:
  struct State {
    std::uint64_t best_root;
    std::uint32_t dist;
    std::uint32_t parent_port;
    bool dirty;     ///< needs to (re)flood
    bool started;
  };
  std::vector<State> st_;
  std::vector<std::uint32_t> dist_;
};

}  // namespace dmc
