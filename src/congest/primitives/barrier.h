// BarrierProtocol: explicit termination-detection barrier over a rooted
// tree — convergecast of DONE from the leaves, then broadcast of GO from
// the root.  Costs exactly 2·height + 2 rounds.
//
// The Schedule charges this cost after every protocol run instead of
// executing it; this protocol exists so tests can verify the charge matches
// the real thing (test_barrier.cpp).
#pragma once

#include <vector>

#include "congest/protocol.h"
#include "congest/tree_view.h"

namespace dmc {

class BarrierProtocol final : public Protocol {
 public:
  BarrierProtocol(const Graph& g, const TreeView& tv);

  [[nodiscard]] std::string name() const override { return "barrier"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: leaves send DONE in the dense first round; every
  /// later transition (DONE countdown, GO forwarding) fires in the round
  /// its triggering delivery arrives.  An idle execution changes nothing.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: one DONE per child and at most one GO per
  /// round arrive on distinct ports; the countdown and GO forwarding fold
  /// them commutatively, so inbox order is invisible.  A duplicated DONE
  /// would double-decrement the countdown and a dropped one would wedge
  /// the barrier, so only reorder is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  /// True once v observed GO (valid after the run: true everywhere).
  [[nodiscard]] bool released(NodeId v) const { return go_[v] != 0; }

 private:
  const TreeView* tv_;
  std::vector<std::uint32_t> waiting_;
  std::vector<std::uint8_t> done_sent_;
  std::vector<std::uint8_t> go_;
  std::vector<std::uint8_t> go_forwarded_;
};

}  // namespace dmc
