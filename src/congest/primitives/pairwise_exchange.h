// PairwiseExchange: every node streams a word list to each neighbor over
// the shared edge, one word per round, terminated by an END marker; both
// endpoints end up with each other's full list.
//
// This is Step 5's "x and y can compute the LCA of (x,y) by exchanging
// O(√n) messages through edge (x,y)": all edges run concurrently, each
// edge's traffic rides only on itself, so the round cost is
// max_e(list length) + 1.
//
// Storage is flat CSR indexed by directed-port id (Graph::port_offset(v)
// + port): outgoing lists are built through the Lists appender, and the
// receive side is sized EXACTLY up front — each directed port receives
// precisely the peer port's outgoing length, known from the reverse-port
// pairing — so a protocol instance is a handful of O(m)-proportioned
// arrays with no per-node or per-port heap blocks.  Lists supports a
// narrow mode that stores 32-bit words (ids, packed flags) at half the
// memory; the wire format is unchanged.
#pragma once

#include <vector>

#include "congest/protocol.h"

namespace dmc {

class PairwiseExchangeProtocol final : public Protocol {
 public:
  /// Builder for the per-directed-port outgoing word lists.  Append with
  /// add(v, port, w); the (v, port) pairs must be non-decreasing in
  /// directed-port order — the natural "for v ascending, for port
  /// ascending" fill — so the words land in CSR order without a second
  /// pass.  With narrow == true every word must fit 32 bits (checked) and
  /// is stored in half the space.
  class Lists {
   public:
    explicit Lists(const Graph& g, bool narrow = false);
    void add(NodeId v, std::uint32_t port, Word w);

   private:
    friend class PairwiseExchangeProtocol;
    const Graph* g_;
    bool narrow_;
    std::vector<std::uint32_t> len_;  ///< per directed port
    std::vector<Word> w64_;
    std::vector<std::uint32_t> w32_;
    std::uint32_t cur_{0};  ///< highest directed port appended so far
  };

  /// Read-only view of one port's received words; widens transparently
  /// when the exchange ran narrow.
  class WordView {
   public:
    WordView(const Word* w64, const std::uint32_t* w32, std::uint32_t size)
        : w64_(w64), w32_(w32), size_(size) {}

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] Word operator[](std::size_t i) const {
      DMC_ASSERT(i < size_);
      return w64_ ? w64_[i] : Word{w32_[i]};
    }
    [[nodiscard]] Word at(std::size_t i) const {
      DMC_REQUIRE(i < size_);
      return (*this)[i];
    }

    class iterator {
     public:
      using value_type = Word;
      using difference_type = std::ptrdiff_t;
      iterator(const WordView* view, std::size_t i) : view_(view), i_(i) {}
      [[nodiscard]] Word operator*() const { return (*view_)[i_]; }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      [[nodiscard]] friend bool operator==(const iterator& a,
                                           const iterator& b) {
        return a.i_ == b.i_;
      }

     private:
      const WordView* view_;
      std::size_t i_;
    };
    [[nodiscard]] iterator begin() const { return {this, 0}; }
    [[nodiscard]] iterator end() const { return {this, size_}; }

    [[nodiscard]] std::vector<Word> to_vector() const {
      std::vector<Word> out(size_);
      for (std::size_t i = 0; i < size_; ++i) out[i] = (*this)[i];
      return out;
    }

   private:
    const Word* w64_;
    const std::uint32_t* w32_;
    std::uint32_t size_;
  };

  PairwiseExchangeProtocol(const Graph& g, Lists outgoing);
  /// Convenience for small call sites: outgoing[v][port] = the word list v
  /// sends over that port (converted to the flat layout up front).
  PairwiseExchangeProtocol(
      const Graph& g, std::vector<std::vector<std::vector<Word>>> outgoing);

  [[nodiscard]] std::string name() const override {
    return "pairwise_exchange";
  }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: a node streams autonomously while any port still
  /// owes words or its END marker (wake requested); once every END is
  /// sent, the remaining work is receive-only (delivery activation).
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: incoming words append to per-PORT receive
  /// buffers, and one round delivers at most one message per port, so a
  /// within-round permutation interleaves appends to disjoint buffers —
  /// every buffer ends the round with identical contents.  Dup corrupts a
  /// stream (word counted twice) and drop truncates it, so neither is
  /// declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  /// Words received by v on `port` (valid after the run).
  [[nodiscard]] WordView received(NodeId v, std::uint32_t port) const;

 private:
  static constexpr std::uint8_t kEndSent = 1;
  static constexpr std::uint8_t kEndReceived = 2;

  const Graph* g_;
  bool narrow_;
  // Outgoing CSR (from Lists): words of directed port d live at
  // [out_off_[d], out_off_[d+1]).
  std::vector<std::uint32_t> out_off_;
  std::vector<Word> out64_;
  std::vector<std::uint32_t> out32_;
  // Receive CSR, sized exactly at construction: port d receives
  // out length of its reverse port.
  std::vector<std::uint32_t> recv_off_;
  std::vector<Word> recv64_;
  std::vector<std::uint32_t> recv32_;
  // Per-directed-port progress.
  std::vector<std::uint32_t> sent_;
  std::vector<std::uint32_t> recv_cnt_;
  std::vector<std::uint8_t> flags_;
};

}  // namespace dmc
