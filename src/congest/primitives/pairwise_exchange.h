// PairwiseExchange: every node streams a word list to each neighbor over
// the shared edge, one word per round, terminated by an END marker; both
// endpoints end up with each other's full list.
//
// This is Step 5's "x and y can compute the LCA of (x,y) by exchanging
// O(√n) messages through edge (x,y)": all edges run concurrently, each
// edge's traffic rides only on itself, so the round cost is
// max_e(list length) + 1.
#pragma once

#include <vector>

#include "congest/protocol.h"

namespace dmc {

class PairwiseExchangeProtocol final : public Protocol {
 public:
  /// outgoing[v][port] = the word list v sends over that port.
  explicit PairwiseExchangeProtocol(
      const Graph& g, std::vector<std::vector<std::vector<Word>>> outgoing);

  [[nodiscard]] std::string name() const override {
    return "pairwise_exchange";
  }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: a node streams autonomously while any port still
  /// owes words or its END marker (wake requested); once every END is
  /// sent, the remaining work is receive-only (delivery activation).
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }

  /// Words received by v on `port` (valid after the run).
  [[nodiscard]] const std::vector<Word>& received(NodeId v,
                                                  std::uint32_t port) const {
    return received_[v][port];
  }

 private:
  struct PortState {
    std::size_t sent{0};
    bool end_sent{false};
    bool end_received{false};
  };
  std::vector<std::vector<std::vector<Word>>> outgoing_;
  std::vector<std::vector<std::vector<Word>>> received_;
  std::vector<std::vector<PortState>> ps_;
};

}  // namespace dmc
