#include "congest/primitives/barrier.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagDone = 1;
constexpr std::uint32_t kTagGo = 2;
}  // namespace

BarrierProtocol::BarrierProtocol(const Graph& g, const TreeView& tv)
    : tv_(&tv) {
  const std::size_t n = g.num_nodes();
  waiting_.resize(n);
  done_sent_.assign(n, 0);
  go_.assign(n, 0);
  go_forwarded_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v)
    waiting_[v] = static_cast<std::uint32_t>(tv.children_ports(v).size());
}

void BarrierProtocol::round(NodeId v, Mailbox& mb) {
  for (const Delivery& d : mb.inbox()) {
    if (d.msg.tag == kTagDone) {
      DMC_ASSERT(waiting_[v] > 0);
      --waiting_[v];
    } else {
      DMC_ASSERT(d.msg.tag == kTagGo);
      go_[v] = 1;
    }
  }
  if (!done_sent_[v] && waiting_[v] == 0) {
    done_sent_[v] = 1;
    if (tv_->is_root(v))
      go_[v] = 1;
    else
      mb.send(tv_->parent_port(v), Message::make(kTagDone, {}));
  }
  if (go_[v] && !go_forwarded_[v]) {
    go_forwarded_[v] = 1;
    for (const std::uint32_t cp : tv_->children_ports(v))
      mb.send(cp, Message::make(kTagGo, {}));
  }
}

bool BarrierProtocol::local_done(NodeId v) const {
  return go_[v] != 0 && go_forwarded_[v] != 0;
}

}  // namespace dmc
