#include "congest/primitives/stable_leader.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagClaim = 1;
/// Cache sentinel: "nothing heard on this port yet"; loses to any claim.
constexpr std::uint64_t kNoLeader = ~std::uint64_t{0};
}  // namespace

StableLeaderProtocol::StableLeaderProtocol(const Graph& g,
                                           std::uint32_t hop_cap,
                                           std::uint32_t repeats)
    : g_(&g),
      hop_cap_(hop_cap == 0 ? static_cast<std::uint32_t>(g.num_nodes())
                            : hop_cap),
      repeats_(repeats) {
  DMC_REQUIRE_MSG(repeats_ >= 1, "stable_leader needs repeats >= 1");
  const std::size_t n = g.num_nodes();
  st_.resize(n);
  cache_base_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    cache_base_[v + 1] =
        cache_base_[v] + static_cast<std::uint32_t>(g.degree(v));
  cache_.assign(cache_base_[n], Claim{kNoLeader, 0});
  for (NodeId v = 0; v < n; ++v) reset_node(v);
}

void StableLeaderProtocol::reset_node(NodeId v) {
  st_[v] = State{/*claim=*/Claim{v, 0}, /*parent_port=*/kNoPort,
                 /*countdown=*/0, /*started=*/false};
}

void StableLeaderProtocol::round(NodeId v, Mailbox& mb) {
  State& s = st_[v];
  const bool fresh = !s.started;
  s.started = true;
  Claim* cache = cache_.data() + cache_base_[v];

  // Pass 1: fold heard claims into the per-port cache.  Assignments to
  // distinct per-port entries, last-write idempotent — inbox order and
  // duplicate deliveries cannot change the outcome of the recompute below.
  for (const Delivery& d : mb.inbox()) {
    DMC_ASSERT(d.msg.tag == kTagClaim);
    cache[d.port] =
        Claim{d.msg.at(0), static_cast<std::uint32_t>(d.msg.at(1))};
  }

  // Recompute the claim from scratch (never patched incrementally): the
  // lex-min of self-candidacy and every cached claim stepped one hop,
  // lowest achieving port breaking ties as the parent.
  Claim best{v, 0};
  std::uint32_t parent = kNoPort;
  const std::uint32_t deg = cache_base_[v + 1] - cache_base_[v];
  for (std::uint32_t pt = 0; pt < deg; ++pt) {
    const Claim& heard = cache[pt];
    if (heard.leader == kNoLeader || heard.hop + 1 > hop_cap_) continue;
    const Claim via{heard.leader, heard.hop + 1};
    if (less(via, best)) {
      best = via;
      parent = pt;
    }
  }
  const bool changed = fresh || best.leader != s.claim.leader ||
                       best.hop != s.claim.hop;
  s.claim = best;
  s.parent_port = parent;

  // Pass 2 (correction): a sender whose claim is strictly worse than what
  // v could offer it just lost state (restart) or missed a wave — re-arm
  // the rebroadcast so v teaches it, even though v's own claim is stable.
  bool correct = false;
  if (!changed) {
    const Claim offer{s.claim.leader, s.claim.hop + 1};
    for (const Delivery& d : mb.inbox()) {
      const Claim heard{d.msg.at(0),
                        static_cast<std::uint32_t>(d.msg.at(1))};
      if (less(offer, heard)) {
        correct = true;
        break;
      }
    }
  }

  if (changed || correct) s.countdown = repeats_;
  if (s.countdown > 0) {
    const Message m =
        Message::make(kTagClaim, {s.claim.leader, s.claim.hop});
    for (std::uint32_t pt = 0; pt < deg; ++pt) mb.send(pt, m);
    --s.countdown;
    if (s.countdown > 0) mb.request_wake();
  }
}

bool StableLeaderProtocol::local_done(NodeId v) const {
  return st_[v].started && st_[v].countdown == 0;
}

void StableLeaderProtocol::on_crash_restart(NodeId v) {
  reset_node(v);
  Claim* cache = cache_.data() + cache_base_[v];
  const std::uint32_t deg = cache_base_[v + 1] - cache_base_[v];
  for (std::uint32_t pt = 0; pt < deg; ++pt)
    cache[pt] = Claim{kNoLeader, 0};
}

NodeId StableLeaderProtocol::leader() const {
  return static_cast<NodeId>(st_[0].claim.leader);
}

bool StableLeaderProtocol::agreed() const {
  for (const State& s : st_)
    if (s.claim.leader != st_[0].claim.leader) return false;
  return true;
}

TreeView StableLeaderProtocol::tree_view(const Graph& g) const {
  std::vector<std::uint32_t> pp(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) pp[v] = st_[v].parent_port;
  return TreeView::from_parent_ports(g, std::move(pp));
}

void record_stabilization(CongestStats& stats) {
  for (auto it = stats.per_protocol.rbegin();
       it != stats.per_protocol.rend(); ++it) {
    if (it->name == "stable_leader") {
      stats.faults.stabilization_rounds += it->rounds;
      stats.faults.stabilization_messages += it->messages;
      return;
    }
  }
}

}  // namespace dmc
