// AggregateBroadcast: the paper's "collect k items and disseminate"
// pattern, implemented as sorted keyed stream merging (pipelined
// convergecast):
//
//   * every node contributes 0+ (key, payload) items;
//   * items stream up the tree in increasing key order, one per edge per
//     round; equal keys are combined en route (Sum / Min / Unique);
//   * the root obtains the combined sorted list; optionally it is then
//     pipelined down so EVERY node holds all k items (deliver_all);
//   * optionally every node records the combined items that passed through
//     it (tap) — for node v that is exactly the set of items originated in
//     v's subtree, e.g. Step 2's "child fragments attached below v";
//   * optionally an item whose key equals a node id is absorbed at that
//     node instead of travelling further (absorb) — Step 5(ii)'s
//     "count messages ⟨v⟩ within v↓ ∩ F_i by summing through the tree".
//
// Round cost: O(height + k) up, O(height + k) down — the standard
// pipelining bound the paper charges for Steps 1–5.
//
// Runs on a forest: each tree aggregates independently (used per-fragment).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "congest/protocol.h"
#include "congest/tree_view.h"
#include "util/small_queue.h"

namespace dmc {

struct AggItem {
  Word key{0};
  std::array<Word, 3> p{};  ///< payload

  [[nodiscard]] friend bool operator<(const AggItem& a, const AggItem& b) {
    return a.key < b.key;
  }
};

enum class AggOp {
  kSum,     ///< payload words add
  kMin,     ///< lexicographically smaller payload wins
  kUnique,  ///< duplicate keys are an invariant violation
};

struct AggOptions {
  AggOp op{AggOp::kSum};
  bool deliver_all{false};  ///< pipeline the final list back down
  bool tap{false};          ///< record items passing through each node
  bool absorb{false};       ///< item with key == node id stops there

  /// Storage filter: when set, node v records a combined item in items(v)
  /// only if keep(v, key).  Messages, rounds, and stats are UNCHANGED —
  /// every item still travels the full tree — only the per-node final_
  /// retention shrinks, from O(n·k) words to what nodes actually read.
  /// The canonical deliver_all consumers read one or two keys per node
  /// (their own id, a fragment index, the root's list), so this turns the
  /// dominant protocol-side allocation at scale into O(n + k).
  std::function<bool(NodeId, Word)> keep{};
};

class AggregateBroadcastProtocol final : public Protocol {
 public:
  AggregateBroadcastProtocol(const Graph& g, const TreeView& tv,
                             AggOptions options,
                             std::vector<std::vector<AggItem>> contributions);

  [[nodiscard]] std::string name() const override { return "agg_broadcast"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: a node can act without new mail only while (a) it
  /// can still pop up-stream items (not blocked on a child, not complete —
  /// includes the pending UP_DONE marker), (b) the root is draining its
  /// final list downward, or (c) a non-root holds queued down items or a
  /// pending DOWN_DONE.  round() requests a wake in exactly those states;
  /// every other transition is triggered by a delivery.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: up-stream items land in per-child slots and
  /// down-stream items arrive only from the unique parent (≤ 1 per
  /// round), so a within-round permutation only interleaves writes to
  /// disjoint buffers.  The up/down pipelines sequence items, which dup
  /// duplicates and drop punctures, so neither is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  /// Final combined list: at every node if deliver_all, else at roots.
  /// With AggOptions::keep set, only the kept subset (still key-sorted).
  [[nodiscard]] const std::vector<AggItem>& items(NodeId v) const {
    return final_[v];
  }
  /// Items recorded in tap mode (valid after the run).
  [[nodiscard]] const std::vector<AggItem>& tapped(NodeId v) const {
    return tapped_[v];
  }
  /// Items absorbed at v in absorb mode (combined; usually 0 or 1).
  [[nodiscard]] const std::vector<AggItem>& absorbed(NodeId v) const {
    return absorbed_[v];
  }

 private:
  // Relay queues are SmallQueue, not std::deque: a deque costs ~600 B of
  // heap even when empty, and this protocol holds one queue per node plus
  // one per tree child — at the 10^6-node tier that dominated the
  // simulator's resident memory.
  struct ChildStream {
    SmallQueue<AggItem> buf;
    bool done{false};
  };
  struct State {
    std::vector<AggItem> own;   ///< sorted, pre-combined
    std::size_t own_ptr{0};
    std::vector<ChildStream> child;   ///< parallel to children_ports
    bool up_complete{false};
    bool up_done_sent{false};
    SmallQueue<AggItem> down_queue;
    bool parent_down_done{false};
    bool down_done_sent{false};
    std::size_t root_down_ptr{0};
    bool down_complete{false};
  };

  [[nodiscard]] bool up_blocked(const State& s) const;
  [[nodiscard]] bool up_exhausted(const State& s) const;
  AggItem pop_min(State& s);
  /// Pops the next item that must travel onward (absorbing en route);
  /// returns false if exhausted/blocked before finding one.
  bool next_outgoing(NodeId v, AggItem& out);

  const TreeView* tv_;
  AggOptions opt_;
  std::vector<State> st_;
  std::vector<std::vector<AggItem>> final_;
  /// Roots' unfiltered lists when opt_.keep is set: the down stream must
  /// carry every item even when the root itself keeps only a few.
  std::vector<std::vector<AggItem>> root_list_;
  std::vector<std::vector<AggItem>> tapped_;
  std::vector<std::vector<AggItem>> absorbed_;
};

}  // namespace dmc
