// PipelinedDowncast: items originate at arbitrary nodes and flow DOWN the
// tree (each node relays one item per round to all of its children), with a
// pluggable per-node filter deciding delivery and further forwarding.
//
// This implements Step 2 of the paper: ancestor ids (and (ancestor,
// fragment) pairs) travel from each node down through its own fragment and
// the child fragments, stopping at the child fragments' leaves.
//
// Termination: the protocol is quiescent exactly when every relay queue has
// drained; in a real deployment nodes stop after a deterministic round
// budget computable from globally known quantities (max fragment diameter +
// max items per edge, both O(√n)), a cost dominated by the barrier charge
// the Schedule already applies.  Round cost: O(max path length + max items
// crossing one edge).
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "congest/protocol.h"
#include "congest/tree_view.h"
#include "util/small_queue.h"

namespace dmc {

struct DownItem {
  std::array<Word, 4> w{};
};

class PipelinedDowncastProtocol final : public Protocol {
 public:
  /// `on_receive(v, item)` is invoked when v receives an item from its
  /// parent; it may record the item locally and returns true to forward it
  /// to v's children.  Originated items are forwarded unconditionally
  /// (origin nodes deliver to themselves before the run if they wish).
  using ReceiveFn = std::function<bool(NodeId, const DownItem&)>;

  PipelinedDowncastProtocol(const Graph& g, const TreeView& tv,
                            std::vector<std::vector<DownItem>> originated,
                            ReceiveFn on_receive);

  [[nodiscard]] std::string name() const override { return "downcast"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: originated items enter the queues before the
  /// dense first round; afterwards a node acts iff its queue is non-empty
  /// (it requests a wake while it is) or an item arrives (delivery
  /// activation).  An idle execution with an empty queue is a no-op.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: each node receives at most one stream item per
  /// round (from its unique parent), so a within-round permutation can
  /// only shuffle deliveries of unrelated nodes — per-node behaviour is
  /// untouched.  The pipeline's item sequencing breaks under dup (item
  /// forwarded twice) and drop (hole in the stream), so neither is
  /// declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

 private:
  const TreeView* tv_;
  ReceiveFn on_receive_;
  /// Per-node relay FIFOs; SmallQueue so idle nodes cost no heap.
  std::vector<SmallQueue<DownItem>> queue_;
};

}  // namespace dmc
