// Convergecast: bottom-up aggregation over a TreeView forest, optionally
// followed by a top-down broadcast of each tree's result.
//
// Every node v also learns its own subtree aggregate — the quantity
// Σ_{u ∈ v↓∩tree} value(u) — which is precisely what Step 3 of the paper
// needs within fragments (δ↓ restricted to the fragment).
//
// Values are (w0, w1) word pairs with a pluggable combine operation; the
// combine must be associative and commutative and is evaluated identically
// at every node.
//
// Round cost: height+1 up, +height+1 down if broadcasting.
#pragma once

#include <functional>
#include <vector>

#include "congest/protocol.h"
#include "congest/tree_view.h"

namespace dmc {

struct CValue {
  Word w0{0};
  Word w1{0};
};

enum class CombineOp {
  kSum,     ///< component-wise sum
  kMin,     ///< lexicographic (w0, w1) minimum
  kMax,     ///< lexicographic (w0, w1) maximum
};

[[nodiscard]] CValue combine(CombineOp op, const CValue& a, const CValue& b);

class ConvergecastProtocol final : public Protocol {
 public:
  /// `inactive` nodes (optional) neither send nor count; they must not be
  /// interior to any tree of the view.
  ConvergecastProtocol(const Graph& g, const TreeView& tv, CombineOp op,
                       std::vector<CValue> initial, bool broadcast_result);

  [[nodiscard]] std::string name() const override { return "convergecast"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: every transition fires in the round that enables
  /// it — leaves send up in the dense first round; an interior node sends
  /// up in the round the last child report arrives; the result forwards in
  /// the round it is received.  An idle execution changes nothing.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: child reports land on distinct ports and fold
  /// through a commutative aggregate, so any within-round permutation
  /// produces the same sum and the same pending-child countdown.  A
  /// duplicate report would be aggregated twice and a dropped one stalls
  /// the subtree forever, so only reorder is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  /// v's subtree aggregate (valid after the run).
  [[nodiscard]] const CValue& subtree_value(NodeId v) const {
    return acc_[v];
  }
  /// The whole-tree result at v's tree root (valid after the run if
  /// broadcast_result; otherwise valid only at roots).
  [[nodiscard]] const CValue& tree_value(NodeId v) const {
    return result_[v];
  }

 private:
  const TreeView* tv_;
  CombineOp op_;
  bool broadcast_;
  std::vector<CValue> acc_;
  std::vector<CValue> result_;
  std::vector<std::uint32_t> waiting_;   ///< children yet to report
  std::vector<std::uint8_t> sent_up_;
  std::vector<std::uint8_t> got_result_;
  std::vector<std::uint8_t> fwd_result_;
};

}  // namespace dmc
