#include "congest/primitives/downcast.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagItem = 1;
}

PipelinedDowncastProtocol::PipelinedDowncastProtocol(
    const Graph& g, const TreeView& tv,
    std::vector<std::vector<DownItem>> originated, ReceiveFn on_receive)
    : tv_(&tv), on_receive_(std::move(on_receive)) {
  DMC_REQUIRE(originated.size() == g.num_nodes());
  queue_.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (const DownItem& it : originated[v]) queue_[v].push_back(it);
}

void PipelinedDowncastProtocol::round(NodeId v, Mailbox& mb) {
  for (const Delivery& d : mb.inbox()) {
    DMC_ASSERT(d.msg.tag == kTagItem);
    DMC_ASSERT(d.port == tv_->parent_port(v));
    DownItem it;
    it.w = {d.msg.at(0), d.msg.at(1), d.msg.at(2), d.msg.at(3)};
    if (on_receive_(v, it)) queue_[v].push_back(it);
  }
  if (queue_[v].empty()) return;
  if (tv_->children_ports(v).empty()) {
    queue_[v].clear();  // leaf: nothing below to forward to
    return;
  }
  const DownItem it = queue_[v].front();
  queue_[v].pop_front();
  const Message m =
      Message::make(kTagItem, {it.w[0], it.w[1], it.w[2], it.w[3]});
  for (const std::uint32_t cp : tv_->children_ports(v)) mb.send(cp, m);
  // More queued items relay next round with or without new deliveries.
  if (!queue_[v].empty()) mb.request_wake();
}

bool PipelinedDowncastProtocol::local_done(NodeId v) const {
  return queue_[v].empty();
}

}  // namespace dmc
