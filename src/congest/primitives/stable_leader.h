// Self-stabilizing leader election + BFS tree (PraSLE-style lexicographic
// rule), built to run under an active FaultPlan.
//
// Every node v maintains a claim (leader, hop) — "I can reach `leader` in
// `hop` hops" — plus a per-port cache of the last claim heard on each port.
// Each execution recomputes the claim from scratch as the lexicographic
// minimum of {(v, 0)} and {(L, h + 1) : (L, h) cached on some port,
// h + 1 ≤ hop cap}; the lowest port achieving the minimum becomes the
// parent port.  Because the claim is re-derived from the cache every time
// (never incrementally patched), a crash-restarted node — state wiped via
// on_crash_restart, pending mail discarded — rebuilds a correct claim from
// whatever it hears next, with no global reset().
//
// Two mechanisms make this converge under faults rather than merely under
// a perfect network:
//   * R-round rebroadcast: any claim change (or fresh start) arms a
//     countdown of `repeats` rounds during which the node re-announces its
//     claim on every port, so a single dropped copy is retried.
//   * Correction rule: when v hears a claim strictly lex-greater than what
//     v itself could offer the sender — received (L, h) with
//     (v.leader, v.hop + 1) <lex (L, h) — the sender is worse-informed
//     (e.g. it just restarted), so v re-arms its countdown even though its
//     own claim did not change.  This is what re-teaches a restarted node
//     whose neighbours are already converged and would otherwise stay
//     silent.
//
// Phantom containment: a claim chain is supported hop-by-hop and grounded
// at hop 0 only by the leader itself, so a stale (phantom) claim cannot
// out-compete the true minimum forever — its hop count grows past the cap
// within O(cap) rounds and it is discarded.  Convergence after a crash
// restart takes O(dist to the restarted region) + repeats rounds ≤ O(D).
//
// Audited tolerance: ALL four fault kinds.  Reorder/dup — the cache fold
// writes distinct per-port entries with idempotent assignments, and the
// claim is recomputed only after the full fold, so inbox order and
// duplicate deliveries are invisible.  Drop — absorbed by the rebroadcast
// countdown plus the correction rule (a run can still quiesce disagreeing
// if EVERY copy across a countdown window drops in both directions on some
// edge, probability ≤ drop_rate^(2·repeats) per edge per change;
// deterministic per plan seed — see DESIGN.md).  Crash — handled by
// on_crash_restart as above.  Known limitation, also in DESIGN.md: a
// PERMANENT leader crash is not recovered (neighbour caches hold its claim
// forever; aging caches out needs timeouts this synchronous layer does not
// model) — crash-RESTART is the supported recovery scenario.
#pragma once

#include <vector>

#include "congest/protocol.h"
#include "congest/stats.h"
#include "congest/tree_view.h"

namespace dmc {

class StableLeaderProtocol final : public Protocol {
 public:
  /// `hop_cap` bounds believable claim distances (0 ⇒ n, always sound on a
  /// connected graph); `repeats` is the rebroadcast window R.
  explicit StableLeaderProtocol(const Graph& g, std::uint32_t hop_cap = 0,
                                std::uint32_t repeats = 3);

  [[nodiscard]] std::string name() const override { return "stable_leader"; }
  void round(NodeId v, Mailbox& mb) override;
  [[nodiscard]] bool local_done(NodeId v) const override;
  /// Event-driven audit: an idle execution (empty inbox, countdown == 0)
  /// folds nothing, recomputes the identical claim from the unchanged
  /// cache, and sends nothing; while countdown > 0 the node requests its
  /// own wake, so quiescence never drops a pending rebroadcast.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// See the file comment for the per-kind audit arguments.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kFaultTolerant;
  }
  /// Wipes v back to its just-constructed claim (v, 0) and forgets v's own
  /// port cache.  Neighbour caches still hold v's old claims; the
  /// correction rule re-teaches v and the stale entries are overwritten by
  /// v's fresh announcements.
  void on_crash_restart(NodeId v) override;

  /// Results, valid after the run (all nodes agree at a converged
  /// quiescence).
  [[nodiscard]] NodeId leader() const;
  [[nodiscard]] std::uint32_t hop(NodeId v) const { return st_[v].claim.hop; }
  [[nodiscard]] bool agreed() const;  ///< every node names the same leader
  [[nodiscard]] TreeView tree_view(const Graph& g) const;

 private:
  struct Claim {
    std::uint64_t leader;
    std::uint32_t hop;
  };
  struct State {
    Claim claim;
    std::uint32_t parent_port;
    std::uint32_t countdown;  ///< rebroadcast rounds still owed
    bool started;
  };
  [[nodiscard]] static bool less(const Claim& a, const Claim& b) {
    return a.leader < b.leader || (a.leader == b.leader && a.hop < b.hop);
  }
  void reset_node(NodeId v);

  const Graph* g_;
  std::uint32_t hop_cap_;
  std::uint32_t repeats_;
  std::vector<State> st_;
  std::vector<std::uint32_t> cache_base_;  ///< CSR offsets into cache_
  std::vector<Claim> cache_;  ///< last claim heard per directed port
};

/// Folds the most recent `stable_leader` per-protocol entry of `stats`
/// into its FaultStats stabilization counters — the "how long did
/// re-stabilization take, and what message overhead did it pay" metrics
/// the robustness tests and dmc_check report.  No-op if the protocol has
/// no entry.
void record_stabilization(CongestStats& stats);

}  // namespace dmc
