#include "congest/primitives/leader_bfs.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagFlood = 1;
}

LeaderBfsProtocol::LeaderBfsProtocol(const Graph& g, NodeId root) {
  st_.resize(g.num_nodes());
  dist_.resize(g.num_nodes());
  // kNoCandidate loses to every real candidate, so a designated-root run
  // adopts the unique wave on first arrival and never re-floods.
  constexpr std::uint64_t kNoCandidate = ~std::uint64_t{0};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool candidate = root == kNoNode || v == root;
    st_[v] = State{/*best_root=*/candidate ? std::uint64_t{v} : kNoCandidate,
                   /*dist=*/0, /*parent_port=*/kNoPort,
                   /*dirty=*/candidate, /*started=*/false};
  }
}

void LeaderBfsProtocol::round(NodeId v, Mailbox& mb) {
  State& s = st_[v];
  s.started = true;
  for (const Delivery& d : mb.inbox()) {
    DMC_ASSERT(d.msg.tag == kTagFlood);
    const std::uint64_t root = d.msg.at(0);
    const std::uint32_t dist = static_cast<std::uint32_t>(d.msg.at(1)) + 1;
    if (root < s.best_root ||
        (root == s.best_root && dist < s.dist)) {
      s.best_root = root;
      s.dist = dist;
      s.parent_port = d.port;
      s.dirty = true;
    }
  }
  if (s.dirty) {
    const Message m = Message::make(kTagFlood, {s.best_root, s.dist});
    for (std::uint32_t p = 0; p < mb.num_ports(); ++p) mb.send(p, m);
    s.dirty = false;
  }
  dist_[v] = s.dist;
}

bool LeaderBfsProtocol::local_done(NodeId v) const {
  return st_[v].started && !st_[v].dirty;
}

NodeId LeaderBfsProtocol::leader() const {
  // All nodes agree at quiescence; read node 0's view (== min id).
  return static_cast<NodeId>(st_[0].best_root);
}

TreeView LeaderBfsProtocol::tree_view(const Graph& g) const {
  std::vector<std::uint32_t> pp(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) pp[v] = st_[v].parent_port;
  return TreeView::from_parent_ports(g, std::move(pp));
}

}  // namespace dmc
