#include "congest/primitives/pairwise_exchange.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagWord = 1;
constexpr std::uint32_t kTagEnd = 2;
}  // namespace

PairwiseExchangeProtocol::PairwiseExchangeProtocol(
    const Graph& g, std::vector<std::vector<std::vector<Word>>> outgoing)
    : outgoing_(std::move(outgoing)) {
  DMC_REQUIRE(outgoing_.size() == g.num_nodes());
  received_.resize(g.num_nodes());
  ps_.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DMC_REQUIRE(outgoing_[v].size() == g.degree(v));
    received_[v].resize(g.degree(v));
    ps_[v].resize(g.degree(v));
  }
}

void PairwiseExchangeProtocol::round(NodeId v, Mailbox& mb) {
  for (const Delivery& d : mb.inbox()) {
    PortState& p = ps_[v][d.port];
    if (d.msg.tag == kTagWord) {
      DMC_ASSERT(!p.end_received);
      received_[v][d.port].push_back(d.msg.at(0));
    } else {
      DMC_ASSERT(d.msg.tag == kTagEnd);
      p.end_received = true;
    }
  }
  bool more_to_send = false;
  for (std::uint32_t port = 0; port < ps_[v].size(); ++port) {
    PortState& p = ps_[v][port];
    if (p.sent < outgoing_[v][port].size()) {
      mb.send(port,
              Message::make(kTagWord, {outgoing_[v][port][p.sent]}));
      ++p.sent;
      more_to_send = true;  // at least the END marker is still owed
    } else if (!p.end_sent) {
      mb.send(port, Message::make(kTagEnd, {}));
      p.end_sent = true;
    }
  }
  if (more_to_send) mb.request_wake();
}

bool PairwiseExchangeProtocol::local_done(NodeId v) const {
  for (const PortState& p : ps_[v])
    if (!p.end_sent || !p.end_received) return false;
  return true;
}

}  // namespace dmc
