#include "congest/primitives/pairwise_exchange.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagWord = 1;
constexpr std::uint32_t kTagEnd = 2;
}  // namespace

PairwiseExchangeProtocol::Lists::Lists(const Graph& g, bool narrow)
    : g_(&g), narrow_(narrow), len_(g.port_offset(g.num_nodes()), 0) {}

void PairwiseExchangeProtocol::Lists::add(NodeId v, std::uint32_t port,
                                          Word w) {
  const std::uint32_t dir = g_->port_offset(v) + port;
  DMC_REQUIRE(port < g_->degree(v));
  DMC_REQUIRE_MSG(dir >= cur_,
                  "Lists::add out of order: directed port " << dir
                  << " after " << cur_);
  cur_ = dir;
  ++len_[dir];
  if (narrow_) {
    DMC_REQUIRE_MSG(w <= 0xffffffffull,
                    "word " << w << " does not fit the narrow exchange");
    w32_.push_back(static_cast<std::uint32_t>(w));
  } else {
    w64_.push_back(w);
  }
}

PairwiseExchangeProtocol::PairwiseExchangeProtocol(const Graph& g,
                                                   Lists outgoing)
    : g_(&g), narrow_(outgoing.narrow_) {
  DMC_REQUIRE(outgoing.g_ == &g);
  const std::uint32_t dirs = g.port_offset(g.num_nodes());
  out_off_.assign(dirs + 1, 0);
  for (std::uint32_t d = 0; d < dirs; ++d)
    out_off_[d + 1] = out_off_[d] + outgoing.len_[d];
  out64_ = std::move(outgoing.w64_);
  out32_ = std::move(outgoing.w32_);

  // Pair the two directed copies of every edge (as the Network does for
  // its reverse-slot table): port d will receive exactly the peer port's
  // outgoing length, so the receive CSR is exact — no push_back growth.
  std::vector<std::uint32_t> reverse(dirs, 0);
  {
    std::vector<std::uint32_t> first_dir(g.num_edges(), ~std::uint32_t{0});
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto ports = g.ports(v);
      for (std::uint32_t i = 0; i < ports.size(); ++i) {
        const std::uint32_t dir = g.port_offset(v) + i;
        std::uint32_t& other = first_dir[ports[i].edge];
        if (other == ~std::uint32_t{0}) {
          other = dir;
        } else {
          reverse[dir] = other;
          reverse[other] = dir;
        }
      }
    }
  }
  recv_off_.assign(dirs + 1, 0);
  for (std::uint32_t d = 0; d < dirs; ++d)
    recv_off_[d + 1] =
        recv_off_[d] + (out_off_[reverse[d] + 1] - out_off_[reverse[d]]);
  if (narrow_)
    recv32_.resize(recv_off_[dirs]);
  else
    recv64_.resize(recv_off_[dirs]);

  sent_.assign(dirs, 0);
  recv_cnt_.assign(dirs, 0);
  flags_.assign(dirs, 0);
}

namespace {
PairwiseExchangeProtocol::Lists nested_to_lists(
    const Graph& g, std::vector<std::vector<std::vector<Word>>> outgoing) {
  DMC_REQUIRE(outgoing.size() == g.num_nodes());
  PairwiseExchangeProtocol::Lists lists{g};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DMC_REQUIRE(outgoing[v].size() == g.degree(v));
    for (std::uint32_t p = 0; p < outgoing[v].size(); ++p)
      for (const Word w : outgoing[v][p]) lists.add(v, p, w);
  }
  return lists;
}
}  // namespace

PairwiseExchangeProtocol::PairwiseExchangeProtocol(
    const Graph& g, std::vector<std::vector<std::vector<Word>>> outgoing)
    : PairwiseExchangeProtocol(g, nested_to_lists(g, std::move(outgoing))) {}

void PairwiseExchangeProtocol::round(NodeId v, Mailbox& mb) {
  const std::uint32_t base = g_->port_offset(v);
  for (const Delivery& d : mb.inbox()) {
    const std::uint32_t dir = base + d.port;
    if (d.msg.tag == kTagWord) {
      DMC_ASSERT(!(flags_[dir] & kEndReceived));
      const std::uint32_t at = recv_off_[dir] + recv_cnt_[dir]++;
      DMC_ASSERT(at < recv_off_[dir + 1]);
      if (narrow_)
        recv32_[at] = static_cast<std::uint32_t>(d.msg.at(0));
      else
        recv64_[at] = d.msg.at(0);
    } else {
      DMC_ASSERT(d.msg.tag == kTagEnd);
      flags_[dir] |= kEndReceived;
    }
  }
  bool more_to_send = false;
  const std::uint32_t degree = g_->port_offset(v + 1) - base;
  for (std::uint32_t port = 0; port < degree; ++port) {
    const std::uint32_t dir = base + port;
    if (out_off_[dir] + sent_[dir] < out_off_[dir + 1]) {
      const std::uint32_t at = out_off_[dir] + sent_[dir];
      const Word w = narrow_ ? Word{out32_[at]} : out64_[at];
      mb.send(port, Message::make(kTagWord, {w}));
      ++sent_[dir];
      more_to_send = true;  // at least the END marker is still owed
    } else if (!(flags_[dir] & kEndSent)) {
      mb.send(port, Message::make(kTagEnd, {}));
      flags_[dir] |= kEndSent;
    }
  }
  if (more_to_send) mb.request_wake();
}

bool PairwiseExchangeProtocol::local_done(NodeId v) const {
  const std::uint32_t base = g_->port_offset(v);
  const std::uint32_t end = g_->port_offset(v + 1);
  for (std::uint32_t dir = base; dir < end; ++dir)
    if (flags_[dir] != (kEndSent | kEndReceived)) return false;
  return true;
}

PairwiseExchangeProtocol::WordView PairwiseExchangeProtocol::received(
    NodeId v, std::uint32_t port) const {
  DMC_REQUIRE(port < g_->degree(v));
  const std::uint32_t dir = g_->port_offset(v) + port;
  const std::uint32_t off = recv_off_[dir];
  if (narrow_) return WordView{nullptr, recv32_.data() + off, recv_cnt_[dir]};
  return WordView{recv64_.data() + off, nullptr, recv_cnt_[dir]};
}

}  // namespace dmc
