#include "congest/primitives/convergecast.h"

#include "util/checked.h"

namespace dmc {

namespace {
constexpr std::uint32_t kTagUp = 1;
constexpr std::uint32_t kTagDown = 2;
}  // namespace

CValue combine(CombineOp op, const CValue& a, const CValue& b) {
  switch (op) {
    case CombineOp::kSum:
      // Guarded: a wide-regime aggregate (δ↓ sums, crossing-weight
      // recounts) must fail loudly, never wrap (util/checked.h).
      return CValue{checked_add(a.w0, b.w0), checked_add(a.w1, b.w1)};
    case CombineOp::kMin:
      if (b.w0 < a.w0 || (b.w0 == a.w0 && b.w1 < a.w1)) return b;
      return a;
    case CombineOp::kMax:
      if (b.w0 > a.w0 || (b.w0 == a.w0 && b.w1 > a.w1)) return b;
      return a;
  }
  throw InvariantError{"unknown CombineOp"};
}

ConvergecastProtocol::ConvergecastProtocol(const Graph& g, const TreeView& tv,
                                           CombineOp op,
                                           std::vector<CValue> initial,
                                           bool broadcast_result)
    : tv_(&tv), op_(op), broadcast_(broadcast_result),
      acc_(std::move(initial)) {
  DMC_REQUIRE(acc_.size() == g.num_nodes());
  const std::size_t n = g.num_nodes();
  result_.assign(n, CValue{});
  waiting_.resize(n);
  sent_up_.assign(n, 0);
  got_result_.assign(n, 0);
  fwd_result_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v)
    waiting_[v] =
        static_cast<std::uint32_t>(tv.children_ports(v).size());
}

void ConvergecastProtocol::round(NodeId v, Mailbox& mb) {
  for (const Delivery& d : mb.inbox()) {
    if (d.msg.tag == kTagUp) {
      acc_[v] = combine(op_, acc_[v], CValue{d.msg.at(0), d.msg.at(1)});
      DMC_ASSERT(waiting_[v] > 0);
      --waiting_[v];
    } else {
      DMC_ASSERT(d.msg.tag == kTagDown);
      result_[v] = CValue{d.msg.at(0), d.msg.at(1)};
      got_result_[v] = 1;
    }
  }

  if (!sent_up_[v] && waiting_[v] == 0) {
    sent_up_[v] = 1;
    if (tv_->is_root(v)) {
      result_[v] = acc_[v];
      got_result_[v] = 1;
    } else {
      mb.send(tv_->parent_port(v),
              Message::make(kTagUp, {acc_[v].w0, acc_[v].w1}));
    }
  }

  if (broadcast_ && got_result_[v] && !fwd_result_[v]) {
    fwd_result_[v] = 1;
    const Message m =
        Message::make(kTagDown, {result_[v].w0, result_[v].w1});
    for (const std::uint32_t cp : tv_->children_ports(v)) mb.send(cp, m);
  }
}

bool ConvergecastProtocol::local_done(NodeId v) const {
  if (!sent_up_[v]) return false;
  if (broadcast_ && !fwd_result_[v]) return false;
  return true;
}

}  // namespace dmc
