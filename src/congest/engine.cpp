#include "congest/engine.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "congest/network.h"

namespace dmc {

namespace {

/// The ascending-id reference sweep over this round's domain, shared by
/// the sequential engine and the sharded engine's pool-less
/// single-thread configuration.
void sweep_all(Network& net, Protocol& p) {
  net.bind_shard(0);
  if (net.dense_round()) {
    const std::size_t n = net.num_nodes();
    for (NodeId v = 0; v < n; ++v) net.execute_node(v, p);
  } else {
    for (const NodeId v : net.active_nodes()) net.execute_node(v, p);
  }
}

class SequentialEngine final : public Engine {
 public:
  [[nodiscard]] std::string name() const override { return "sequential"; }
  [[nodiscard]] std::size_t shard_count() const override { return 1; }

  void execute_round(Network& net, Protocol& p) override {
    sweep_all(net, p);
  }
};

/// Persistent worker pool.  Workers sleep between rounds; every round the
/// coordinator publishes a job generation plus a chunk decomposition of
/// the round's domain, each worker claims chunks off a shared atomic
/// ticket counter (after one reserved starter chunk), and the coordinator
/// (which doubles as shard 0) waits for all shards to finish — that
/// rendezvous is the synchronous-round barrier, and its mutex hand-off is
/// what sequences slot writes before next round's slot reads.
class ShardedEngine final : public Engine {
 public:
  explicit ShardedEngine(unsigned threads)
      : threads_(threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                              : threads) {
    for (unsigned w = 1; w < threads_; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ~ShardedEngine() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++generation_;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  [[nodiscard]] std::string name() const override {
    return "sharded(" + std::to_string(threads_) + ")";
  }
  [[nodiscard]] std::size_t shard_count() const override { return threads_; }

  void execute_round(Network& net, Protocol& p) override {
    if (threads_ == 1) {
      sweep_all(net, p);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      net_ = &net;
      protocol_ = &p;
      pending_ = threads_ - 1;
      failed_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      // Chunk geometry for this round's domain.  ~8 chunks per thread
      // bounds the imbalance from a skewed active list at ~1/8 of one
      // thread's share, while a 64-node floor keeps the ticket counter
      // cold on tiny rounds.  Tickets start at threads_: chunk s < threads_
      // is reserved for shard s (below the counter's start, so no ticket
      // ever returns it), which gives every shard a deterministic first
      // chunk regardless of scheduling timing.
      const std::size_t total =
          net.dense_round() ? net.num_nodes() : net.active_nodes().size();
      chunk_size_ = std::max<std::size_t>(
          64, (total + 8 * threads_ - 1) / (8 * threads_));
      num_chunks_ = (total + chunk_size_ - 1) / chunk_size_;
      next_ticket_.store(threads_, std::memory_order_relaxed);
      ++generation_;
    }
    cv_work_.notify_all();
    try {
      run_shard(net, p, 0);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
    {
      // Wait for every worker even on failure: they hold references to
      // net/p and must be quiesced before the exception unwinds them.
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [this] { return pending_ == 0; });
      if (error_) std::rethrow_exception(error_);
    }
  }

 private:
  void run_shard(Network& net, Protocol& p, unsigned shard) {
    net.bind_shard(shard);
    // Dynamic chunk tickets over the round's domain: the node range when
    // dense, the sorted active list when sparse.  Each chunk is claimed
    // exactly once — the reserved chunks sit below the ticket counter's
    // starting value, and fetch_add hands out each higher index once — so
    // every domain entry is executed by exactly one shard and activation
    // buckets / done deltas stay single-writer.  Which shard runs which
    // chunk is timing-dependent, but that is unobservable: node programs
    // are order-independent (slot-addressed mail) and stats merge with
    // commutative reductions.
    const bool dense = net.dense_round();
    const std::vector<NodeId>* active = dense ? nullptr : &net.active_nodes();
    const std::size_t total = dense ? net.num_nodes() : active->size();
    const auto run_chunk = [&](std::size_t c) {
      const std::size_t lo = c * chunk_size_;
      const std::size_t hi = std::min(total, lo + chunk_size_);
      for (std::size_t i = lo; i < hi; ++i) {
        if (failed_.load(std::memory_order_relaxed)) return;
        net.execute_node(dense ? static_cast<NodeId>(i) : (*active)[i], p);
      }
    };
    if (shard < num_chunks_) run_chunk(shard);
    for (;;) {
      const std::size_t c =
          next_ticket_.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks_) return;
      run_chunk(c);
    }
  }

  void worker_loop(unsigned shard) {
    std::uint64_t seen = 0;
    for (;;) {
      Network* net;
      Protocol* p;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (stop_) return;
        net = net_;
        p = protocol_;
      }
      try {
        run_shard(*net, *p, shard);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) cv_done_.notify_one();
      }
    }
  }

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_{0};
  std::size_t chunk_size_{0};   ///< published with generation_, under mu_
  std::size_t num_chunks_{0};
  std::atomic<std::size_t> next_ticket_{0};
  unsigned pending_{0};
  bool stop_{false};
  Network* net_{nullptr};
  Protocol* protocol_{nullptr};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace

std::unique_ptr<Engine> make_sequential_engine() {
  return std::make_unique<SequentialEngine>();
}

std::unique_ptr<Engine> make_sharded_engine(unsigned threads) {
  return std::make_unique<ShardedEngine>(threads);
}

std::unique_ptr<Engine> make_engine(unsigned threads) {
  if (threads == 1) return make_sequential_engine();
  return make_sharded_engine(threads);
}

}  // namespace dmc
