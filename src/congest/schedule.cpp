#include "congest/schedule.h"

namespace dmc {

std::uint64_t Schedule::run(Protocol& p, std::uint64_t max_rounds) {
  const std::uint64_t executed = run_uncharged(p, max_rounds);
  charge_barrier();
  return executed;
}

std::uint64_t Schedule::run_uncharged(Protocol& p, std::uint64_t max_rounds) {
  return net_->run(p, max_rounds);
}

void Schedule::charge_barrier() {
  DMC_REQUIRE_MSG(height_known_,
                  "barrier charged before the BFS height is known — run the "
                  "leader/BFS phase with run_uncharged + set_barrier_height");
  net_->stats().barrier_rounds += 2ull * barrier_height_ + 3;
}

}  // namespace dmc
