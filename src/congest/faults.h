// Deterministic fault injection for the CONGEST simulator.
//
// A FaultPlan perturbs deliveries at the slot→mailbox boundary: a delivery
// may be dropped or duplicated, a node's inbox view may be permuted within
// a round, and a node may crash for a window of rounds [r0, r1) — its
// local protocol state and pending mailbox are wiped and it re-enters via
// Protocol::on_crash_restart.  Every decision is driven by a counter-based
// hash of (plan seed, stream, run-local round, slot-or-node index), never
// by a stateful RNG consumed in execution order.  Because the coordinates
// are the same no matter which engine, thread count, or scheduling mode
// executes the round, the exact same faults fire everywhere: a faulted run
// is bit-identical across {sequential, sharded(k)} × {Dense, EventDriven}
// and replayable from the one (plan, seed) coordinate.  DESIGN.md "Fault
// model and determinism" carries the full argument.
//
// Rounds in a plan are RUN-LOCAL (1-based from each Network::run), so one
// plan perturbs every protocol of a multi-phase pipeline the same way and
// a replayed phase sees the same faults as the original.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dmc {

/// The four injectable fault classes.  Values double as bit positions in
/// the FaultTolerance mask below.
enum class FaultKind : std::uint8_t {
  kDrop = 0,     ///< a delivery vanishes before the receiver sees it
  kDup = 1,      ///< a delivery appears twice in the receiver's inbox
  kReorder = 2,  ///< a node's inbox view is permuted within the round
  kCrash = 3,    ///< a node is silent for [r0, r1), state wiped at restart
};

[[nodiscard]] const char* to_string(FaultKind k);

/// Protocol fault-tolerance declarations — a bitmask over FaultKind.  A
/// protocol declares exactly the perturbations it has been audited to
/// absorb; when a fault of an undeclared kind fires during its run, the
/// Network fails loudly (InvariantError naming the protocol and the first
/// injected fault) instead of computing a silently wrong answer.
enum FaultTolerance : unsigned {
  kReliableOnly = 0u,  ///< the default: assumes a perfect network
  kTolerateDrop = 1u << static_cast<unsigned>(FaultKind::kDrop),
  kTolerateDup = 1u << static_cast<unsigned>(FaultKind::kDup),
  kTolerateReorder = 1u << static_cast<unsigned>(FaultKind::kReorder),
  kTolerateCrash = 1u << static_cast<unsigned>(FaultKind::kCrash),
  kFaultTolerant =
      kTolerateDrop | kTolerateDup | kTolerateReorder | kTolerateCrash,
};

/// Bit of `k` in a FaultTolerance mask.
[[nodiscard]] constexpr unsigned tolerance_bit(FaultKind k) {
  return 1u << static_cast<unsigned>(k);
}

/// One crash window: `node` is silent for run-local rounds [r0, r1).  At
/// the start of round r0 the node stops executing (it counts as locally
/// done so live nodes can quiesce around a permanent crash); at the start
/// of round r1 its protocol state is wiped (Protocol::on_crash_restart),
/// any mail delivered while down is discarded, and it executes again from
/// round r1 on.  r1 == kNoRestart means the node never comes back.
struct CrashWindow {
  NodeId node{kNoNode};
  std::uint64_t r0{0};
  std::uint64_t r1{0};

  static constexpr std::uint64_t kNoRestart = ~std::uint64_t{0};
};

/// A deterministic fault schedule.  Rates are probabilities in [0, 1]
/// evaluated per (round, slot) for drop/dup and per (round, node) for
/// reorder; the crash schedule is explicit.  A default-constructed plan
/// (all rates zero, no windows) is inactive: setting it on a Network is
/// bit-identical to setting none at all.
struct FaultPlan {
  std::uint64_t seed{0};
  double drop_rate{0.0};
  double dup_rate{0.0};
  double reorder_within_round{0.0};
  std::vector<CrashWindow> crash_schedule;

  /// True when the plan can perturb anything at all.
  [[nodiscard]] bool active() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_within_round > 0.0 ||
           !crash_schedule.empty();
  }

  /// Throws PreconditionError unless rates are in [0, 1] and every crash
  /// window names a node < n with 1 ≤ r0 < r1 and at most one window per
  /// node (overlapping windows on one node have no coherent semantics).
  void validate(std::size_t n) const;

  /// One-line human-readable summary, e.g.
  /// "FaultPlan(seed=7, drop=0.25, crash=[12@[2,5)])".
  [[nodiscard]] std::string describe() const;
};

/// The counter-based fault hash: a well-mixed 64-bit value determined
/// solely by its four coordinates.  `stream` separates the independent
/// decision families (drop vs dup vs reorder vs the permutation seed) so
/// raising one rate never shifts another family's decisions.
[[nodiscard]] std::uint64_t fault_hash(std::uint64_t seed,
                                       std::uint32_t stream,
                                       std::uint64_t round,
                                       std::uint64_t index);

/// Uniform [0, 1) from a fault_hash value (53-bit mantissa path).
[[nodiscard]] inline double fault_u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace dmc
