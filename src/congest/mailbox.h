// Per-node, per-round view of the network: delivered messages and the send
// API.  Constructed by the Network (via its Engine) for each node each
// round.
//
// Deliveries live in fixed slots — one per directed edge, CSR-indexed by
// (receiver, receiver port) — so the inbox is not a materialized list but a
// zero-copy view over the node's slot range.  Slot storage is
// structure-of-arrays: a 32-bit epoch stamp plane (the only plane the scan
// loop touches — 16 stamps per cache line), a packed tag/size header
// plane, and a payload-word plane.  A slot holds this round's message iff
// its stamp equals the delivering round's token; iteration skips empty
// slots and therefore yields messages in ascending port order by
// construction (no sort, no allocation).  The iterator materializes each
// Delivery on demand — the slot index IS the port, so ports are never
// stored.
//
// Under an active FaultPlan the Network instead hands the mailbox a
// MATERIALIZED inbox (the second constructor): a span of Delivery records
// built after applying drop/duplicate/permute decisions at the slot
// boundary.  The iterator then walks the list verbatim — duplicates and
// permuted orders are representable, which fixed slots are not.  The
// zero-copy slot view remains the only path reliable runs touch.
#pragma once

#include <cstdint>

#include "congest/message.h"
#include "graph/graph.h"

namespace dmc {

class Network;

/// Iterable view over the messages delivered to one node this round.
class InboxView {
 public:
  class iterator {
   public:
    using value_type = Delivery;
    using difference_type = std::ptrdiff_t;
    using reference = Delivery;

    iterator(const InboxView* view, std::uint32_t i) : view_(view), i_(i) {
      skip_empty();
    }

    [[nodiscard]] Delivery operator*() const {
      if (view_->list_ != nullptr) return view_->list_[i_];
      Delivery d;
      d.port = i_;
      const std::uint32_t hdr = view_->hdr_[i_];
      d.msg.tag = hdr >> 8;
      d.msg.size = static_cast<std::uint8_t>(hdr & 0xffu);
      const Word* w = view_->payload_ + std::size_t{i_} * kMaxWords;
      for (std::uint8_t k = 0; k < d.msg.size; ++k) d.msg.w[k] = w[k];
      return d;
    }
    iterator& operator++() {
      ++i_;
      skip_empty();
      return *this;
    }
    [[nodiscard]] friend bool operator==(const iterator& a,
                                         const iterator& b) {
      return a.i_ == b.i_;
    }
    [[nodiscard]] friend bool operator!=(const iterator& a,
                                         const iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    void skip_empty() {
      if (view_->list_ != nullptr) return;  // list mode: every entry real
      while (i_ < view_->degree_ && view_->stamps_[i_] != view_->token_)
        ++i_;
    }
    const InboxView* view_;
    std::uint32_t i_;
  };

  InboxView() = default;
  InboxView(const Word* payload, const std::uint32_t* hdr,
            const std::uint32_t* stamps, std::uint32_t degree,
            std::uint32_t token)
      : payload_(payload),
        hdr_(hdr),
        stamps_(stamps),
        degree_(degree),
        token_(token) {}
  /// Materialized-list mode (fault-injected rounds): iterate `count`
  /// prebuilt deliveries verbatim.  The list is borrowed and must outlive
  /// the node's round() call — the Network keeps it on the executing
  /// worker's stack.
  InboxView(const Delivery* list, std::uint32_t count)
      : degree_(count), list_(list) {}

  [[nodiscard]] iterator begin() const { return iterator{this, 0}; }
  [[nodiscard]] iterator end() const { return iterator{this, degree_}; }
  [[nodiscard]] bool empty() const { return begin() == end(); }

 private:
  friend class iterator;
  const Word* payload_{nullptr};
  const std::uint32_t* hdr_{nullptr};
  const std::uint32_t* stamps_{nullptr};
  std::uint32_t degree_{0};  ///< slot count, or list length in list mode
  std::uint32_t token_{0};
  const Delivery* list_{nullptr};  ///< non-null ⇒ materialized-list mode
};

class Mailbox {
 public:
  Mailbox(Network& net, NodeId self, InboxView inbox)
      : net_(&net), self_(self), inbox_(inbox) {}

  /// Messages delivered to this node this round, ordered by port.
  [[nodiscard]] const InboxView& inbox() const { return inbox_; }

  /// Sends m over the given local port (index into graph().ports(self)).
  /// At most one send per port per round (enforced).  Zero heap
  /// allocations: the message is written straight into its delivery slot.
  void send(std::uint32_t port, const Message& m);

  /// Guarantees this node executes next round even if nothing is delivered
  /// to it.  Only meaningful under Scheduling::kEventDriven (a no-op in
  /// dense runs, where every node executes anyway); a node requesting a
  /// wake must not be locally done.
  void request_wake();

  [[nodiscard]] NodeId self() const { return self_; }

  /// Degree of this node (number of ports).
  [[nodiscard]] std::size_t num_ports() const;

 private:
  Network* net_;
  NodeId self_;
  InboxView inbox_;
};

}  // namespace dmc
