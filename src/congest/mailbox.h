// Per-node, per-round view of the network: delivered messages and the send
// API.  Constructed by the Network for each node each round.
#pragma once

#include <span>

#include "congest/message.h"
#include "graph/graph.h"

namespace dmc {

class Network;

class Mailbox {
 public:
  Mailbox(Network& net, NodeId self, std::span<const Delivery> inbox)
      : net_(&net), self_(self), inbox_(inbox) {}

  /// Messages delivered to this node this round, ordered by port.
  [[nodiscard]] std::span<const Delivery> inbox() const { return inbox_; }

  /// Sends m over the given local port (index into graph().ports(self)).
  /// At most one send per port per round (enforced).
  void send(std::uint32_t port, const Message& m);

  [[nodiscard]] NodeId self() const { return self_; }

  /// Degree of this node (number of ports).
  [[nodiscard]] std::size_t num_ports() const;

 private:
  Network* net_;
  NodeId self_;
  std::span<const Delivery> inbox_;
};

}  // namespace dmc
