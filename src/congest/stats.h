// Round/message/congestion accounting for the CONGEST simulator.
//
// `rounds` counts executed communication rounds; `barrier_rounds` counts the
// synthetic rounds charged for phase transitions (see Schedule).  The paper
// measures exactly `rounds + barrier_rounds`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dmc {

struct ProtocolStats {
  std::string name;
  std::uint64_t rounds{0};
  std::uint64_t messages{0};
  std::uint64_t words{0};
  std::uint64_t node_steps{0};  ///< node executions (Σ_r active(r))

  [[nodiscard]] friend bool operator==(const ProtocolStats&,
                                       const ProtocolStats&) = default;
};

/// Fault-injection accounting (faults.h).  All zero on reliable runs.
/// Drop/dup/reorder counters flow through the per-shard counter blocks
/// (commutative sums, so they are engine- and scheduling-independent);
/// crash/restart events are counted on the coordinator straight from the
/// plan.  The stabilization pair is written by record_stabilization
/// (primitives/stable_leader.h): the rounds and messages a
/// self-stabilizing protocol spent reaching its fixpoint.
struct FaultStats {
  std::uint64_t drops{0};
  std::uint64_t dups{0};
  std::uint64_t reordered_inboxes{0};
  std::uint64_t crashes{0};
  std::uint64_t restarts{0};
  std::uint64_t stabilization_rounds{0};
  std::uint64_t stabilization_messages{0};

  [[nodiscard]] bool any() const {
    return drops || dups || reordered_inboxes || crashes || restarts;
  }
  [[nodiscard]] friend bool operator==(const FaultStats&,
                                       const FaultStats&) = default;
};

struct CongestStats {
  std::uint64_t rounds{0};          ///< real executed rounds
  std::uint64_t barrier_rounds{0};  ///< charged phase-transition rounds
  std::uint64_t messages{0};
  std::uint64_t words{0};
  /// Total node executions.  Dense scheduling pays rounds·n; event-driven
  /// scheduling pays Σ_r active(r).  The ONLY stat scheduling may change.
  std::uint64_t node_steps{0};
  std::uint8_t max_words_per_message{0};
  /// Max messages observed over one directed edge in one round (legal: 1).
  std::uint32_t max_messages_edge_round{0};
  /// Injected-fault counters; all zero unless a FaultPlan was active.
  FaultStats faults;
  std::vector<ProtocolStats> per_protocol;

  [[nodiscard]] std::uint64_t total_rounds() const {
    return rounds + barrier_rounds;
  }

  /// Stats are aggregated with commutative reductions from per-shard
  /// counters, so two runs under different engines (or thread counts) must
  /// compare equal field for field — the engine-equivalence tests rely on
  /// this being exact, not approximate.
  [[nodiscard]] friend bool operator==(const CongestStats&,
                                       const CongestStats&) = default;

  /// Copy with every node_steps counter (total and per-protocol) zeroed.
  /// Cross-scheduling comparisons go through this: dense and event-driven
  /// runs must agree on every stat except node executions.
  [[nodiscard]] CongestStats without_node_steps() const;

  /// Zeroes every counter and clears per_protocol IN PLACE (capacity
  /// retained — Network::reset() relies on the no-allocation property).
  /// Lives next to the field list so a new field cannot be compared by
  /// operator== yet forgotten here.
  void reset();

  void print(std::ostream& os) const;

  /// Heap bytes of the per-protocol entries (registry byte accounting).
  [[nodiscard]] std::size_t memory_bytes() const;
};

}  // namespace dmc
