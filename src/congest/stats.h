// Round/message/congestion accounting for the CONGEST simulator.
//
// `rounds` counts executed communication rounds; `barrier_rounds` counts the
// synthetic rounds charged for phase transitions (see Schedule).  The paper
// measures exactly `rounds + barrier_rounds`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dmc {

struct ProtocolStats {
  std::string name;
  std::uint64_t rounds{0};
  std::uint64_t messages{0};
  std::uint64_t words{0};
  std::uint64_t node_steps{0};  ///< node executions (Σ_r active(r))

  [[nodiscard]] friend bool operator==(const ProtocolStats&,
                                       const ProtocolStats&) = default;
};

struct CongestStats {
  std::uint64_t rounds{0};          ///< real executed rounds
  std::uint64_t barrier_rounds{0};  ///< charged phase-transition rounds
  std::uint64_t messages{0};
  std::uint64_t words{0};
  /// Total node executions.  Dense scheduling pays rounds·n; event-driven
  /// scheduling pays Σ_r active(r).  The ONLY stat scheduling may change.
  std::uint64_t node_steps{0};
  std::uint8_t max_words_per_message{0};
  /// Max messages observed over one directed edge in one round (legal: 1).
  std::uint32_t max_messages_edge_round{0};
  std::vector<ProtocolStats> per_protocol;

  [[nodiscard]] std::uint64_t total_rounds() const {
    return rounds + barrier_rounds;
  }

  /// Stats are aggregated with commutative reductions from per-shard
  /// counters, so two runs under different engines (or thread counts) must
  /// compare equal field for field — the engine-equivalence tests rely on
  /// this being exact, not approximate.
  [[nodiscard]] friend bool operator==(const CongestStats&,
                                       const CongestStats&) = default;

  /// Copy with every node_steps counter (total and per-protocol) zeroed.
  /// Cross-scheduling comparisons go through this: dense and event-driven
  /// runs must agree on every stat except node executions.
  [[nodiscard]] CongestStats without_node_steps() const;

  /// Zeroes every counter and clears per_protocol IN PLACE (capacity
  /// retained — Network::reset() relies on the no-allocation property).
  /// Lives next to the field list so a new field cannot be compared by
  /// operator== yet forgotten here.
  void reset();

  void print(std::ostream& os) const;
};

}  // namespace dmc
