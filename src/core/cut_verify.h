// Distributed cut verification — the "distributed verification" theme of
// Das Sarma et al. [STOC 2011] (the paper's lower-bound reference), as a
// positive tool: given that every node holds a side bit, verify in
// O(D) + 1 rounds that the crossing weight equals a claimed value.
//
// Protocol: one round of side-bit exchange over every edge (each endpoint
// then knows which of its incident edges cross), a sum-convergecast of
// locally-seen crossing weight over the BFS tree (halved at the root:
// every crossing edge is seen by both endpoints), and the broadcast of the
// result.  This is how a deployment would audit the min-cut algorithms'
// outputs without central collection.
#pragma once

#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "graph/graph.h"

namespace dmc {

/// Returns the exact crossing weight of {v : side[v]}, computed by the
/// network itself; every node ends up knowing it.
[[nodiscard]] Weight verify_cut_dist(Schedule& sched, const TreeView& bfs,
                                     const std::vector<bool>& side);

}  // namespace dmc
