// Step 5 of the paper: every node v learns ρ(v) — the total weight of
// edges whose endpoints' least common ancestor is v.
//
// Per graph edge (x, y), both endpoints compute the LCA z locally after one
// pairwise exchange over the edge itself (case 1: same fragment — exchange
// the in-fragment ancestor chains, O(√n) words; cases 2/3: different
// fragments — two words: the L(·) answer for the peer's fragment and the
// lowest T'_F ancestor).  The case split is decided locally from the global
// T_F ancestry of the two fragments:
//   * frag(x) ancestor of frag(y) in T_F  ⇒  z = L(x)[frag(y)] ∈ frag(x);
//   * frag(y) ancestor of frag(x)         ⇒  z = L(y)[frag(x)] ∈ frag(y);
//   * otherwise                            ⇒  z = LCA_{T'_F}(a(x), a(y)),
//     a merging node in neither fragment.
//
// Accumulation (both weighted):
//   type (i)  — z in neither endpoint's fragment (z is a merging node):
//               summed over the BFS tree, keyed by z, O(√n) keys;
//   type (ii) — the endpoint sharing z's fragment keeps ⟨z, w⟩; keyed
//               absorb-convergecast up the fragment trees delivers the sum
//               exactly at z.
//
// O(√n + D) rounds total.
#pragma once

#include <span>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "core/ancestors.h"
#include "core/merging_nodes.h"
#include "dist/tree_partition.h"

namespace dmc {

/// Returns ρ(v) for every node.  Every edge of g (tree and non-tree alike)
/// contributes weights[e] to exactly one node's ρ — `weights` is indexed by
/// EdgeId and lets callers evaluate with original weights on a
/// skeleton-packed tree (or 0/1 indicators for bridge tests).
[[nodiscard]] std::vector<Weight> compute_rho(
    Schedule& sched, const TreeView& bfs, const FragmentStructure& fs,
    const AncestorData& ad, const TfPrime& tfp,
    std::span<const Weight> weights);

}  // namespace dmc
