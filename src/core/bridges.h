// Distributed bridge finding in Õ(√n + D) rounds — a free corollary of
// Theorem 2.1's machinery (and the role Thurimella's algorithm plays in
// Su's concurrent work):
//
// Fix any spanning tree T.  Every bridge of G is a tree edge, and the tree
// edge above v is a bridge iff NO non-tree edge crosses the cut (v↓, rest)
// — i.e. iff C'(v↓) = 0 where C' evaluates tree edges at weight 0 and
// non-tree edges at weight 1.  One run of the 1-respect pipeline with
// those indicator weights therefore reports, at every node
// simultaneously, whether its parent edge is a bridge.
#pragma once

#include <vector>

#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

struct BridgesResult {
  std::vector<bool> is_bridge;  ///< by EdgeId
  std::size_t count{0};
  CongestStats stats;
};

/// Finds ALL bridges of g distributively (each endpoint of a bridge knows).
[[nodiscard]] BridgesResult distributed_bridges(const Graph& g);

/// Centralized oracle (edge-removal connectivity test per tree edge;
/// O(m²) — test-scale only).
[[nodiscard]] std::vector<bool> bridges_oracle(const Graph& g);

}  // namespace dmc
