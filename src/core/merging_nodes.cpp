#include "core/merging_nodes.h"

#include <algorithm>
#include <set>

#include "congest/primitives/aggregate_broadcast.h"

namespace dmc {

namespace {

/// One round: every non-root node tells its T-parent whether its branch
/// contains a whole fragment (F(v) ≠ ∅ ⇔ Attach(v) ≠ ∅ for same-fragment
/// children; inter-fragment children count structurally at the parent).
class ChildBitProtocol final : public Protocol {
 public:
  ChildBitProtocol(const Graph& g, const FragmentStructure& fs,
                   const AncestorData& ad)
      : fs_(&fs), ad_(&ad) {
    sent_.assign(g.num_nodes(), 0);
    branch_count_.assign(g.num_nodes(), 0);
  }
  [[nodiscard]] std::string name() const override { return "child_bits"; }

  void round(NodeId v, Mailbox& mb) override {
    for (const Delivery& d : mb.inbox()) {
      // A same-fragment child reporting F(child) ≠ ∅.
      if (d.msg.at(0) != 0) ++branch_count_[v];
    }
    if (!sent_[v]) {
      sent_[v] = 1;
      // Structural count: children in child fragments always carry one.
      for (const std::uint32_t cp : fs_->t_view.children_ports(v))
        if (fs_->port_frag_idx[v][cp] != fs_->frag_idx[v])
          ++branch_count_[v];
      if (!fs_->t_view.is_root(v)) {
        const bool same_frag =
            fs_->port_frag_idx[v][fs_->t_view.parent_port(v)] ==
            fs_->frag_idx[v];
        if (same_frag) {
          const Word bit = ad_->attach[v].empty() ? 0 : 1;
          mb.send(fs_->t_view.parent_port(v), Message::make(1, {bit}));
        }
      }
    }
  }
  [[nodiscard]] bool local_done(NodeId v) const override {
    return sent_[v] != 0;
  }

  /// Event-driven audit: every node sends in the dense first round; round
  /// 2 counts arrived bits at the receivers only; idle executions no-op.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: round 2 counts set bits over the inbox — a
  /// commutative sum, indifferent to arrival order.  A duplicated bit
  /// would be counted twice and a dropped one undercounts, so only
  /// reorder is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }

  /// Number of children branches of v containing a whole fragment.
  [[nodiscard]] std::uint32_t branches(NodeId v) const {
    return branch_count_[v];
  }

 private:
  const FragmentStructure* fs_;
  const AncestorData* ad_;
  std::vector<std::uint8_t> sent_;
  std::vector<std::uint32_t> branch_count_;
};

}  // namespace

NodeId TfPrime::lca(NodeId a, NodeId b) const {
  DMC_REQUIRE(contains(a) && contains(b));
  std::set<NodeId> seen;
  for (NodeId cur = a;;) {
    seen.insert(cur);
    const auto it = parent.find(cur);
    DMC_ASSERT(it != parent.end());
    if (it->second == kNoNode) break;
    cur = it->second;
  }
  for (NodeId cur = b;;) {
    if (seen.count(cur)) return cur;
    const auto it = parent.find(cur);
    DMC_ASSERT(it != parent.end());
    DMC_ASSERT_MSG(it->second != kNoNode, "T'_F nodes in different trees");
    cur = it->second;
  }
}

TfPrime compute_merging_nodes(Schedule& sched, const TreeView& bfs,
                              const FragmentStructure& fs,
                              const AncestorData& ad) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();

  TfPrime tfp;
  tfp.is_merging.assign(n, 0);
  tfp.lowest_tf.assign(n, kNoNode);

  // --- merging detection (1 round of child bits) ---
  ChildBitProtocol bits{g, fs, ad};
  sched.run(bits);
  for (NodeId v = 0; v < n; ++v)
    tfp.is_merging[v] = bits.branches(v) >= 2 ? 1 : 0;

  // --- broadcast merging-node ids (+ their fragments) ---
  {
    std::vector<std::vector<AggItem>> contrib(n);
    for (NodeId v = 0; v < n; ++v)
      if (tfp.is_merging[v])
        contrib[v].push_back(AggItem{v, {fs.frag_idx[v], 0, 0}});
    // The orchestrator reads one copy of the (globally identical) list;
    // storing it at every node would be pure replication.
    AggOptions opt{AggOp::kUnique, true, false, false};
    opt.keep = [](NodeId v, Word) { return v == 0; };
    AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
    sched.run(bc);
    for (const AggItem& it : bc.items(0)) {
      const NodeId m = static_cast<NodeId>(it.key);
      tfp.frag_of[m] = static_cast<std::uint32_t>(it.p[0]);
      tfp.nodes.push_back(m);
    }
  }
  // Fragment roots are T'_F nodes too (already global knowledge).
  for (std::uint32_t f = 0; f < fs.k; ++f) {
    const NodeId r = fs.frag_root_node[f];
    if (!tfp.frag_of.count(r)) tfp.nodes.push_back(r);
    tfp.frag_of[r] = f;
  }
  std::sort(tfp.nodes.begin(), tfp.nodes.end());
  tfp.nodes.erase(std::unique(tfp.nodes.begin(), tfp.nodes.end()),
                  tfp.nodes.end());

  const auto in_tfp = [&](NodeId v) {
    return std::binary_search(tfp.nodes.begin(), tfp.nodes.end(), v);
  };

  // --- a(v): lowest T'_F ancestor-or-self (local from the chains) ---
  for (NodeId v = 0; v < n; ++v) {
    if (in_tfp(v)) {
      tfp.lowest_tf[v] = v;
      continue;
    }
    const auto oc = ad.own_chain(v);
    for (auto it = oc.rbegin(); it != oc.rend(); ++it) {
      if (in_tfp(*it)) {
        tfp.lowest_tf[v] = *it;
        break;
      }
    }
    DMC_ASSERT_MSG(tfp.lowest_tf[v] != kNoNode,
                   "own-fragment chain must contain the fragment root");
  }

  // --- T'_F edges: every T'_F node computes its parent locally, then the
  //     edges are broadcast ---
  {
    std::vector<std::vector<AggItem>> contrib(n);
    for (NodeId v = 0; v < n; ++v) {
      if (!in_tfp(v)) continue;
      if (v == fs.global_root) continue;  // T'_F root
      NodeId parent = kNoNode;
      const auto oc = ad.own_chain(v);
      for (auto it = oc.rbegin(); it != oc.rend(); ++it)
        if (in_tfp(*it)) {
          parent = *it;
          break;
        }
      if (parent == kNoNode) {
        const auto pc = ad.parent_chain(v);
        for (auto it = pc.rbegin(); it != pc.rend(); ++it)
          if (in_tfp(*it)) {
            parent = *it;
            break;
          }
      }
      DMC_ASSERT_MSG(parent != kNoNode,
                     "non-root T'_F node must see a T'_F ancestor");
      contrib[v].push_back(AggItem{v, {parent, 0, 0}});
    }
    AggOptions opt{AggOp::kUnique, true, false, false};
    opt.keep = [](NodeId v, Word) { return v == 0; };
    AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
    sched.run(bc);
    for (const AggItem& it : bc.items(0))
      tfp.parent[static_cast<NodeId>(it.key)] =
          static_cast<NodeId>(it.p[0]);
    tfp.parent[fs.global_root] = kNoNode;
  }

  return tfp;
}

}  // namespace dmc
