#include "core/su_baseline.h"

#include <cmath>

#include "congest/network.h"
#include "congest/schedule.h"
#include "core/one_respect.h"
#include "core/session.h"
#include "core/skeleton_dist.h"
#include "core/warm.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "util/prng.h"

namespace dmc {

SuEstimateResult su_estimate_min_cut(Network& net, const SuEstimateOptions& opt,
                                     const SessionInfra* warm) {
  const Graph& g = net.graph();
  const std::uint64_t seed = opt.seed;
  DMC_REQUIRE(g.num_nodes() >= 2);
  const std::size_t n = g.num_nodes();

  Schedule sched{net};
  SessionInfra storage;
  const SessionInfra& infra = acquire_session_infra(sched, warm, storage);
  const TreeView& bfs = infra.bfs;
  const NodeId leader = infra.leader;

  // One packing tree (plain weights) reused across sampling levels; Su
  // packs Θ(log n) trees — we pack one per level, which keeps the shape
  // comparison honest while exercising the same machinery.  The tree is
  // a pure function of the graph, so a warm session replays it.
  DistMstResult mst_local;
  FragmentStructure fs_local;
  const DistMstResult* mst;
  const FragmentStructure* fs;
  if (warm != nullptr && warm->has_su_tree) {
    warm->su_tree.delta.replay(net, "su packing tree");
    mst = &warm->su_tree.mst;
    fs = &warm->su_tree.fs;
  } else {
    mst_local = ghs_mst(sched, bfs, weight_keys(g));
    fs_local = build_fragment_structure(sched, bfs, leader, mst_local);
    mst = &mst_local;
    fs = &fs_local;
  }

  SuEstimateResult out;
  // Halve q until some tree edge becomes a bridge in (tree ∪ sampled
  // non-tree edges): P[cut of v↓ empties] ≈ e^{-q·C(v↓)}, so the threshold
  // sits near q* ≈ ln(deg)/λ; we report λ̃ = ln(n)/q*.
  double q = 1.0;
  for (int level = 0; level < 40; ++level) {
    ++out.attempts;
    const DistSkeleton sk = sample_skeleton_dist(
        g, q, derive_seed(seed, 0x7375ull, level));
    // Evaluation weights: sampled units on NON-tree edges, 0 on tree edges:
    // C(v↓) == 0 ⇔ the tree edge above v is a bridge in the sampled graph.
    std::span<Weight> eval = net.arena().alloc<Weight>(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (!mst->tree_edge[e]) eval[e] = sk.sampled_w[e];
    const OneRespectResult r = one_respect_min_cut(sched, bfs, *fs, eval);
    if (r.c_star == 0) {
      out.q_threshold = q;
      // Weight-aware refinement: the sampled formula ln(n)/q* is blind to
      // the bridging tree edge's own capacity — on weighted instances (a
      // heavy bridge, a weighted tree) it reported Θ(log n) regardless of
      // λ (found by the dmc::check wide-weight matrix, shrunk to K2 with
      // one heavy edge).  One more 1-respect pass with ORIGINAL weights
      // on tree edges and the sampled units on non-tree edges lower-bounds
      // the bridging cut's true weight; take the larger of the two reads.
      std::span<Weight> refine = net.arena().alloc<Weight>(g.num_edges());
      for (EdgeId e = 0; e < g.num_edges(); ++e)
        refine[e] = mst->tree_edge[e] ? g.edge(e).w : sk.sampled_w[e];
      const OneRespectResult r2 = one_respect_min_cut(sched, bfs, *fs, refine);
      const double est = std::log(static_cast<double>(n)) / q;
      out.estimate =
          std::max<Weight>(std::max<Weight>(1, static_cast<Weight>(est)),
                           r2.c_star);
      out.stats = net.stats();
      return out;
    }
    if (q <= 1e-9) break;
    q /= 2.0;
  }
  // No bridge even at minuscule q: the cut is enormous; report the last
  // 1-respect value as the estimate.
  out.q_threshold = q;
  out.estimate = 1;
  out.stats = net.stats();
  return out;
}

SuEstimateResult su_estimate_min_cut(const Graph& g,
                                     const SuEstimateOptions& opt) {
  Session session{g};
  MinCutRequest req;
  req.algo = Algo::kSu;
  req.seed = opt.seed;
  return to_su_result(session.solve(req));
}

SuEstimateResult su_estimate_min_cut(const Graph& g, std::uint64_t seed) {
  return su_estimate_min_cut(g, SuEstimateOptions{seed});
}

}  // namespace dmc
