#include "core/bridges.h"

#include "congest/network.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/schedule.h"
#include "core/one_respect.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "graph/algorithms.h"

namespace dmc {

BridgesResult distributed_bridges(const Graph& g) {
  DMC_REQUIRE(g.num_nodes() >= 2);
  Network net{g};
  Schedule sched{net};

  LeaderBfsProtocol lb{g};
  sched.run_uncharged(lb);
  const TreeView bfs = lb.tree_view(g);
  sched.set_barrier_height(bfs.height(g));
  sched.charge_barrier();

  const DistMstResult mst = ghs_mst(sched, bfs, weight_keys(g));
  const FragmentStructure fs =
      build_fragment_structure(sched, bfs, lb.leader(), mst);

  // Indicator weights: non-tree edges count 1, tree edges 0 — then
  // C'(v↓) == 0 ⇔ the tree edge above v is a bridge.
  std::vector<Weight> indicator(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!mst.tree_edge[e]) indicator[e] = 1;
  const OneRespectResult r = one_respect_min_cut(sched, bfs, fs, indicator);

  BridgesResult out;
  out.is_bridge.assign(g.num_edges(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == fs.global_root) continue;
    if (r.cut_down[v] == 0) {
      const EdgeId e = g.ports(v)[fs.parent_port_T[v]].edge;
      out.is_bridge[e] = true;
    }
  }
  for (const auto b : out.is_bridge) out.count += b ? 1 : 0;
  out.stats = net.stats();
  return out;
}

std::vector<bool> bridges_oracle(const Graph& g) {
  std::vector<bool> out(g.num_edges(), false);
  std::vector<bool> mask(g.num_edges(), true);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    mask[e] = false;
    const BfsResult r = bfs_masked(g, g.edge(e).u, mask);
    out[e] = r.dist[g.edge(e).v] == BfsResult::kUnreached;
    mask[e] = true;
  }
  return out;
}

}  // namespace dmc
