// dmc::Session — the reusable solve-session façade over the paper's
// pipeline (Nanongkai PODC'14; the Nanongkai–Su arXiv:1408.0557 exact /
// approx pair, plus the Su'14 and GK'13-proxy estimator baselines).
//
// The one-shot free functions in api.h rebuild the entire simulated
// network per call — CSR slot mailboxes, reverse-port table, sharded
// worker pool.  A Session pays that setup once at construction and then
// serves any number of solve() calls against it:
//
//   Session session{g, SessionOptions{.engine_threads = 8}};
//   MinCutRequest req;                 // algorithm, eps, seed, budgets…
//   req.algo = Algo::kApprox;
//   req.eps = 0.25;
//   MinCutReport rep = session.solve(req);
//   // rep.value, rep.side, rep.stats.total_rounds(), rep.wall_seconds…
//
// Between queries the owned Network is reset() to the pristine state
// without reallocating buffers or restarting the worker pool (per-solve
// scratch comes from a rewindable arena), and the per-graph bootstrap —
// leader election, rooted BFS TreeView, barrier pricing, the min-degree
// opener — is replayed from a warm cache built on the first solve
// (core/warm.h) instead of re-simulated.  A reused session is therefore
// BIT-IDENTICAL (results and every stat) to a fresh network per query
// while doing strictly less work — test-enforced in
// tests/test_session.cpp, argued in DESIGN.md "Serving layer" and "Warm
// sessions".  Serving-layer hooks: a RoundObserver
// (phase begin/end + per-round stats snapshots) and per-request round /
// wall-clock budgets that cancel cooperatively with CancelledError.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "congest/network.h"
#include "congest/observer.h"
#include "core/approx_mincut.h"
#include "core/exact_mincut.h"
#include "core/gk_estimator.h"
#include "core/su_baseline.h"
#include "graph/graph.h"

namespace dmc {

/// Per-session (per-graph) configuration: everything that shapes the
/// simulator itself rather than an individual query.
struct SessionOptions {
  /// 1 = sequential reference engine, 0 = sharded over all hardware
  /// threads, k > 1 = sharded over k threads (bit-identical either way).
  unsigned engine_threads{1};
  /// Scheduling override for every run; nullopt = per-protocol
  /// declarations (see Scheduling).  Only node_steps may change.
  std::optional<Scheduling> scheduling{};
  /// Deterministic fault plan applied to every run of every solve
  /// (congest/faults.h); nullopt = reliable network.  An ACTIVE plan
  /// disables the warm-infrastructure cache: the bootstrap must re-run —
  /// and re-absorb its faults — under every query, so replaying a
  /// recorded reliable bootstrap would silently un-inject the plan.
  std::optional<FaultPlan> fault_plan{};
  /// apply() fallback knob: a reweight-only batch touching more than this
  /// fraction of the pre-batch edges drops the whole warm cache (full
  /// lazy rebuild) instead of repairing stages in place — past that point
  /// the weight-dependent stages dominate the cache and the repair
  /// bookkeeping stops paying.  Policy only: both paths are bit-identical
  /// to rebuild-from-scratch by construction (test-enforced in
  /// tests/test_dynamic.cpp).
  double update_damage_threshold{0.25};
};

/// The algorithms a Session can dispatch.
enum class Algo : std::uint8_t {
  kExact,   ///< exact min cut, Õ((√n+D)·poly λ) (tree packing + 1-respect)
  kApprox,  ///< (1+ε) approximation via Karger skeletons, Õ((√n+D)/poly ε)
  kSu,      ///< Su [SPAA'14]-style estimate (sampling + bridge finding)
  kGk,      ///< Ghaffari–Kuhn-style constant-factor estimate
};

[[nodiscard]] const char* to_string(Algo a);

/// Parses "exact" | "approx" | "su" | "gk" (the --algo CLI vocabulary);
/// throws PreconditionError listing the accepted names otherwise.
[[nodiscard]] Algo algo_from_string(const std::string& s);

/// One query: a single tagged request type covering all four algorithms.
/// Fields irrelevant to the chosen algorithm are ignored.
struct MinCutRequest {
  Algo algo{Algo::kExact};

  // --- exact: greedy packing extent --------------------------------------
  std::size_t max_trees{48};
  std::size_t patience{12};

  // --- approx ------------------------------------------------------------
  double eps{0.2};
  std::size_t trees_factor{4};  ///< trees = factor · ⌈log₂ n⌉ per attempt

  // --- approx / su / gk --------------------------------------------------
  std::uint64_t seed{1};

  // --- serving budgets (any algorithm) -----------------------------------
  /// Cancel (CancelledError) once stats.total_rounds() exceeds this;
  /// 0 = unlimited.  Checked cooperatively after every executed round.
  std::uint64_t round_budget{0};
  /// Cancel once the query's wall time exceeds this many seconds;
  /// 0 = unlimited.  Same cooperative granularity as round_budget.
  double time_budget_s{0.0};
};

/// The unified result type: algorithm tag, value, cut side (empty for the
/// estimate-only baselines), per-algorithm extras, full CONGEST stats and
/// the query's wall time.
struct MinCutReport {
  Algo algo{Algo::kExact};
  /// Cut value (kExact/kApprox) or λ estimate (kSu/kGk).
  Weight value{0};
  /// Every node's side bit of the found cut; empty when the algorithm
  /// only estimates (kSu/kGk output no cut — the paper's qualitative gap).
  std::vector<bool> side;

  // --- exact / approx extras --------------------------------------------
  NodeId v_star{kNoNode};
  std::size_t trees_packed{0};
  std::size_t tree_of_best{0};
  std::size_t fragments{0};

  // --- approx extras -----------------------------------------------------
  double p{1.0};         ///< final sampling probability
  Weight lambda_hat{0};  ///< final guess
  bool sampled{false};   ///< false ⇒ p clamped to 1, exact path taken

  // --- approx / su / gk extras -------------------------------------------
  std::size_t attempts{0};  ///< guess attempts / sampling levels / probes
  double q_threshold{0.0};  ///< kSu: probability where a bridge appeared

  CongestStats stats;      ///< rounds (incl. barrier charges), messages, …
  double wall_seconds{0};  ///< simulator wall clock for this query
};

/// One-line human-readable request description — the algorithm tag plus
/// exactly the fields that algorithm consumes, e.g.
/// "approx(eps=0.25, seed=7, trees_factor=4)".  Used by dmc::check
/// failure reports so a printed cell is replayable by inspection.
[[nodiscard]] std::string describe(const MinCutRequest& req);

/// Conversions back to the per-algorithm result structs (used by the
/// one-shot wrappers; handy for code migrating to the façade piecemeal).
[[nodiscard]] DistMinCutResult to_exact_result(const MinCutReport& rep);
[[nodiscard]] DistApproxResult to_approx_result(const MinCutReport& rep);
[[nodiscard]] SuEstimateResult to_su_result(const MinCutReport& rep);
[[nodiscard]] GkEstimateResult to_gk_result(const MinCutReport& rep);

class Session {
 public:
  /// Builds the simulated network (mailbox planes, reverse-port table,
  /// worker pool) once.  `g` is borrowed and must outlive the session.
  explicit Session(const Graph& g, SessionOptions opt = {});
  /// Mutable-graph session: identical, and additionally enables apply() —
  /// batched in-place edge updates with scoped invalidation of the warm
  /// state.  (A non-const Graph lvalue binds here automatically.)
  explicit Session(Graph& g, SessionOptions opt = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Serves one query on the session's network (reset to pristine first,
  /// so every query is independent and bit-identical to a one-shot run).
  /// Throws CancelledError when the request's budget is exceeded — the
  /// session stays valid and serves subsequent queries normally.
  [[nodiscard]] MinCutReport solve(const MinCutRequest& req);

  /// Batched serving: solve each request in order on the one network.
  /// A cancelled request propagates its CancelledError; completed
  /// reports before it are lost, so batch budgeted queries separately.
  [[nodiscard]] std::vector<MinCutReport> solve_many(
      std::span<const MinCutRequest> reqs);

  /// Applies a batched edge update (insert / delete / reweight —
  /// graph/graph.h) to the session's graph IN PLACE, then re-derives the
  /// session's state with SCOPED INVALIDATION: a topology change rebinds
  /// the network's port tables and drops the warm cache whole (the
  /// bootstrap's message counts moved); a reweight-only batch under
  /// options().update_damage_threshold keeps the topology-only warm
  /// stages and repairs the rest (core/warm.h reweight_session_infra),
  /// falling back to a full drop past the threshold.  Either way every
  /// subsequent solve is bit-identical (results + stats) to a fresh
  /// session over the updated graph.  Requires the mutable-graph
  /// constructor (PreconditionError otherwise); an invalid batch throws
  /// InvariantError and changes nothing.  Not thread-safe against
  /// concurrent solves — pools serialize via SessionPool::apply.
  UpdateSummary apply(std::span<const EdgeUpdate> batch);

  /// The pool path: the SHARED graph was already patched (summary in
  /// hand) — re-derive this session's network tables and run the same
  /// scoped invalidation, without touching the graph.  Also valid on
  /// const-graph sessions.
  void absorb_update(const UpdateSummary& summary);

  /// How apply()/absorb_update() treated the warm cache so far — lets
  /// tests assert that both the incremental-repair and the
  /// damage-fallback paths actually exercised.
  struct UpdateStats {
    std::size_t batches{0};
    std::size_t incremental_repairs{0};  ///< warm stages survived (scoped)
    std::size_t full_invalidations{0};   ///< warm cache dropped entirely
  };
  [[nodiscard]] const UpdateStats& update_stats() const {
    return update_stats_;
  }

  /// Observer for every subsequent solve(): phase begin/end + per-round
  /// stats snapshots, and cooperative cancel (observer.h).  Borrowed;
  /// nullptr to clear.  Budget enforcement is layered on top — both the
  /// observer's verdict and the request budgets can cancel.
  void set_observer(RoundObserver* obs) { observer_ = obs; }

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] const SessionOptions& options() const { return opt_; }
  /// Queries served to completion (cancelled ones excluded).
  [[nodiscard]] std::size_t queries_served() const { return served_; }

  /// The underlying network — for tests and power users; treat as const
  /// between solve() calls.
  [[nodiscard]] Network& network() { return net_; }

  /// True once the per-graph infrastructure cache (core/warm.h) has been
  /// built — i.e. after the first uncancelled warm-eligible solve().
  [[nodiscard]] bool warmed() const { return infra_ != nullptr; }

  /// Heap bytes this session retains between queries: the Network's slot
  /// planes / buckets / arena plus the warm infrastructure cache (once
  /// built).  The serving registry's LRU byte budget charges entries by
  /// this measure (serve/registry.h); it grows as stages build lazily, so
  /// the registry re-reads it after every dispatched batch.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// Returns the warm infra for this solve — building, on first use, the
  /// stages the request's algorithm consumes — or nullptr when the solve
  /// must run cold (a user observer is installed — it is owed the
  /// complete bootstrap phase/round event stream).
  [[nodiscard]] const SessionInfra* warm_infra(const MinCutRequest& req);

  const Graph* g_;
  /// Non-null iff constructed over a mutable graph — the apply() gate.
  Graph* mutable_g_{nullptr};
  SessionOptions opt_;
  Network net_;
  RoundObserver* observer_{nullptr};
  std::size_t served_{0};
  UpdateStats update_stats_;
  /// Built once per session by warm_infra(); every subsequent solve
  /// replays it instead of re-running leader election + BFS.  Behind a
  /// unique_ptr so this façade header needs only the forward declaration
  /// (core/warm.h stays an implementation include).
  std::unique_ptr<SessionInfra> infra_;
};

}  // namespace dmc
