#include "core/cut_verify.h"

#include "congest/primitives/convergecast.h"
#include "congest/protocol.h"
#include "util/checked.h"

namespace dmc {

namespace {

/// One round: every node announces its side bit on all ports; each node
/// then knows the crossing weight of its incident edges.
class SideExchange final : public Protocol {
 public:
  SideExchange(const Graph& g, const std::vector<bool>& side)
      : g_(&g), side_(&side) {
    sent_.assign(g.num_nodes(), 0);
    local_cross_.assign(g.num_nodes(), 0);
  }
  [[nodiscard]] std::string name() const override { return "side_exchange"; }
  void round(NodeId v, Mailbox& mb) override {
    for (const Delivery& d : mb.inbox()) {
      const bool peer_side = d.msg.at(0) != 0;
      if (peer_side != (*side_)[v])
        local_cross_[v] = checked_add(local_cross_[v],
                                      g_->edge(g_->ports(v)[d.port].edge).w);
    }
    if (!sent_[v]) {
      sent_[v] = 1;
      const Message m =
          Message::make(1, {(*side_)[v] ? Word{1} : Word{0}});
      for (std::uint32_t p = 0; p < mb.num_ports(); ++p) mb.send(p, m);
    }
  }
  [[nodiscard]] bool local_done(NodeId v) const override {
    return sent_[v] != 0;
  }
  /// Event-driven audit: all side bits go out in the dense first round;
  /// round 2 accumulates crossing weight at receivers; idle no-ops.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder: crossing weight accumulates as a commutative
  /// sum over the inbox, so arrival order is invisible.  Dup double-counts
  /// an edge's weight and drop loses it, so neither is declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder;
  }
  [[nodiscard]] Weight local_cross(NodeId v) const {
    return local_cross_[v];
  }

 private:
  const Graph* g_;
  const std::vector<bool>* side_;
  std::vector<std::uint8_t> sent_;
  std::vector<Weight> local_cross_;
};

}  // namespace

Weight verify_cut_dist(Schedule& sched, const TreeView& bfs,
                       const std::vector<bool>& side) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  DMC_REQUIRE(side.size() == g.num_nodes());

  SideExchange xchg{g, side};
  sched.run(xchg);

  std::vector<CValue> init(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    init[v] = CValue{xchg.local_cross(v), 0};
  ConvergecastProtocol sum{g, bfs, CombineOp::kSum, std::move(init),
                           /*broadcast_result=*/true};
  sched.run(sum);

  // Every crossing edge was counted at both endpoints.
  const Weight doubled = sum.tree_value(0).w0;
  DMC_ASSERT_MSG(doubled % 2 == 0, "crossing weight must be even-counted");
  return doubled / 2;
}

}  // namespace dmc
