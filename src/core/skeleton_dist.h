// Distributed skeleton machinery: coordination-free edge sampling and a
// connectivity check for sampled subgraphs.
//
// Sampling is a pure function of (seed, edge id) — both endpoints of an
// edge evaluate it identically with no messages (see central/skeleton.h).
// The connectivity check floods a token from the leader over enabled edges
// and counts reached nodes over the BFS tree, O(D_H + D) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "graph/graph.h"

namespace dmc {

struct DistSkeleton {
  std::vector<Weight> sampled_w;  ///< per edge; 0 ⇒ dropped
  std::vector<bool> enabled;      ///< sampled_w > 0
  double p{1.0};
};

/// Every node evaluates the sampling locally; the returned vectors are the
/// (identical) per-edge views.
[[nodiscard]] DistSkeleton sample_skeleton_dist(const Graph& g, double p,
                                                std::uint64_t seed);

/// True iff the subgraph of enabled edges is connected — decided at every
/// node after the protocol (flood + count + broadcast).
[[nodiscard]] bool skeleton_connected_dist(Schedule& sched,
                                           const TreeView& bfs, NodeId leader,
                                           const std::vector<bool>& enabled);

}  // namespace dmc
