// Su [SPAA 2014]-style baseline, as sketched in the paper's "Concurrent
// Result" paragraph: like ours it starts from Thorup's packing, but finds
// the 1-respecting cut by EDGE SAMPLING + BRIDGE FINDING — sample edges so
// the minimum cut of the sampled graph drops to ≈ 1, then look for a tree
// edge that became a bridge (here: a zero 1-respect value with 0/1
// evaluation weights on sampled non-tree edges, reusing Theorem 2.1's
// machinery in place of Thurimella's algorithm).
//
// The drawback the paper notes is inherent: the result is an ESTIMATE of λ
// (from the sampling probability at which bridges appear), not an exact
// value — "minimum cut cannot be computed exactly, even when it is small."
#pragma once

#include <cstdint>

#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

class Network;
struct SessionInfra;

struct SuEstimateOptions {
  std::uint64_t seed{1};
};

struct SuEstimateResult {
  Weight estimate{0};     ///< multiplicative estimate of λ
  double q_threshold{0};  ///< sampling probability where a bridge appeared
  std::size_t attempts{0};
  CongestStats stats;
};

/// Session-parameterized runner over an existing (pristine or reset)
/// network; see exact_mincut.h for the pattern (incl. the `warm` infra).
[[nodiscard]] SuEstimateResult su_estimate_min_cut(
    Network& net, const SuEstimateOptions& opt = {},
    const SessionInfra* warm = nullptr);

/// One-shot convenience over a temporary single-use dmc::Session.
[[nodiscard]] SuEstimateResult su_estimate_min_cut(
    const Graph& g, const SuEstimateOptions& opt = {});

/// Deprecated positional-seed spelling; use the options overload.
[[deprecated("use su_estimate_min_cut(g, SuEstimateOptions{...})")]]
[[nodiscard]] SuEstimateResult su_estimate_min_cut(const Graph& g,
                                                   std::uint64_t seed);

}  // namespace dmc
