#include "core/ancestors.h"

#include <algorithm>
#include <utility>

#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/downcast.h"

namespace dmc {

NodeId AncestorData::lowest_anc(NodeId v, std::uint32_t f) const {
  const auto ents = lowest_entries(v);
  const auto it = std::lower_bound(
      ents.begin(), ents.end(), f,
      [](const LEntry& e, std::uint32_t key) { return e.frag < key; });
  if (it == ents.end() || it->frag != f) return kNoNode;
  return it->node;
}

bool AncestorData::in_f_of(const FragmentStructure& fs, NodeId v,
                           std::uint32_t f_prime) const {
  for (const std::uint32_t a : attach[v])
    if (fs.tf_is_ancestor(a, f_prime)) return true;
  return false;
}

namespace {

/// Flattens (receiver, node) pairs into a CSR indexed by receiver, each
/// segment ordered by depth (shallowest first, fs.depth_key ties by id).
void build_chain_csr(const FragmentStructure& fs, std::size_t n,
                     std::vector<std::pair<NodeId, NodeId>>& pairs,
                     std::vector<std::uint32_t>& off,
                     std::vector<NodeId>& nodes) {
  std::sort(pairs.begin(), pairs.end(),
            [&fs](const std::pair<NodeId, NodeId>& a,
                  const std::pair<NodeId, NodeId>& b) {
              if (a.first != b.first) return a.first < b.first;
              return fs.depth_key(a.second) < fs.depth_key(b.second);
            });
  off.assign(n + 1, 0);
  for (const auto& [w, node] : pairs) ++off[w + 1];
  for (std::size_t v = 0; v < n; ++v) off[v + 1] += off[v];
  nodes.resize(pairs.size());
  std::size_t i = 0;
  for (const auto& [w, node] : pairs) nodes[i++] = node;
  pairs.clear();
  pairs.shrink_to_fit();
}

/// Working L(v) slot during the downcast: deepest origin wins per fragment.
struct LBest {
  std::uint32_t frag;
  NodeId node;
  std::uint64_t depth_key;
};

}  // namespace

AncestorData compute_ancestors(Schedule& sched, const FragmentStructure& fs) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();

  AncestorData ad;
  ad.attach.resize(n);

  // --- Attach(v): pipelined tap-upcast of child-fragment attachments ---
  {
    std::vector<std::vector<AggItem>> contrib(n);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < g.degree(v); ++p) {
        const std::uint32_t cf = fs.port_frag_idx[v][p];
        if (cf == fs.frag_idx[v]) continue;
        if (fs.frag_parent[cf] != fs.frag_idx[v]) continue;
        if (fs.frag_parent_eid[cf] != g.ports(v)[p].edge) continue;
        // v is the parent-side endpoint of cf's attachment edge.
        contrib[v].push_back(AggItem{cf, {v, 0, 0}});
      }
    }
    AggregateBroadcastProtocol tap{
        g, fs.frag_forest,
        AggOptions{AggOp::kUnique, /*deliver_all=*/false, /*tap=*/true,
                   /*absorb=*/false},
        std::move(contrib)};
    sched.run(tap);
    for (NodeId v = 0; v < n; ++v) {
      for (const AggItem& it : tap.tapped(v))
        ad.attach[v].push_back(static_cast<std::uint32_t>(it.key));
      std::sort(ad.attach[v].begin(), ad.attach[v].end());
    }
  }

  // Materialized F(v) closures (pure local computation from global T_F).
  std::vector<std::vector<std::uint32_t>> f_closure(n);
  for (NodeId v = 0; v < n; ++v) f_closure[v] = fs.closure(ad.attach[v]);
  const auto in_closure = [&](NodeId v, std::uint32_t f_prime) {
    return std::binary_search(f_closure[v].begin(), f_closure[v].end(),
                              f_prime);
  };

  // --- A(v): downcast ancestor ids through own + child fragments ---
  // Received pairs accumulate in two flat buffers (8 bytes each, not a
  // 16-byte entry in a per-node vector); depth keys are re-derived when
  // the CSR is ordered.
  {
    std::vector<std::pair<NodeId, NodeId>> own_pairs, parent_pairs;
    std::vector<std::vector<DownItem>> orig(n);
    for (NodeId u = 0; u < n; ++u)
      orig[u].push_back(DownItem{{u, fs.frag_idx[u], 0, 0}});
    PipelinedDowncastProtocol dc{
        g, fs.t_view, std::move(orig),
        [&](NodeId w, const DownItem& it) {
          const std::uint32_t fo = static_cast<std::uint32_t>(it.w[1]);
          const std::uint32_t fw = fs.frag_idx[w];
          if (fw == fo) {
            own_pairs.emplace_back(w, static_cast<NodeId>(it.w[0]));
            return true;
          }
          if (fs.frag_parent[fw] == fo) {
            parent_pairs.emplace_back(w, static_cast<NodeId>(it.w[0]));
            return true;  // keep flowing within this child fragment
          }
          return false;  // grandchild fragment: out of scope
        }};
    sched.run(dc);
    build_chain_csr(fs, n, own_pairs, ad.own_off, ad.own_nodes);
    build_chain_csr(fs, n, parent_pairs, ad.parent_off, ad.parent_nodes);
  }

  // --- L(v): downcast (u, F') pairs, filtered by F' ∉ F(receiver) ---
  {
    std::vector<std::vector<DownItem>> orig(n);
    for (NodeId u = 0; u < n; ++u)
      for (const std::uint32_t f_prime : f_closure[u])
        orig[u].push_back(
            DownItem{{u, f_prime, fs.frag_idx[u], fs.depth_key(u)}});

    // Deepest origin seen per (node, fragment), in per-node fragment-sorted
    // runs (tiny: |F(v)|-ish entries each) instead of n hash maps.
    std::vector<std::vector<LBest>> lbest(n);
    PipelinedDowncastProtocol dc{
        g, fs.t_view, std::move(orig),
        [&](NodeId w, const DownItem& it) {
          const NodeId u = static_cast<NodeId>(it.w[0]);
          const std::uint32_t f_prime = static_cast<std::uint32_t>(it.w[1]);
          const std::uint32_t fo = static_cast<std::uint32_t>(it.w[2]);
          const std::uint64_t dk = it.w[3];
          const std::uint32_t fw = fs.frag_idx[w];
          const bool in_scope = (fw == fo) || (fs.frag_parent[fw] == fo);
          if (!in_scope) return false;
          auto& run = lbest[w];
          const auto slot = std::lower_bound(
              run.begin(), run.end(), f_prime,
              [](const LBest& e, std::uint32_t key) { return e.frag < key; });
          if (slot == run.end() || slot->frag != f_prime) {
            run.insert(slot, LBest{f_prime, u, dk});
          } else if (dk > slot->depth_key) {
            slot->node = u;
            slot->depth_key = dk;
          }
          // The paper's filter: stop once the receiver itself contains F'.
          return !in_closure(w, f_prime);
        }};
    sched.run(dc);

    // Flatten, with self entries dominating anything received from above:
    // every F' ∈ F(v) maps to v itself.
    ad.l_off.assign(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      // Merged size = |lbest[v] ∪ f_closure[v]| (both fragment-sorted).
      std::size_t cnt = f_closure[v].size();
      for (const LBest& e : lbest[v])
        if (!in_closure(v, e.frag)) ++cnt;
      ad.l_off[v + 1] = ad.l_off[v] + static_cast<std::uint32_t>(cnt);
    }
    ad.l_entries.resize(ad.l_off[n]);
    for (NodeId v = 0; v < n; ++v) {
      std::size_t i = ad.l_off[v];
      auto rit = lbest[v].begin();
      auto cit = f_closure[v].begin();
      while (rit != lbest[v].end() || cit != f_closure[v].end()) {
        if (cit == f_closure[v].end() ||
            (rit != lbest[v].end() && rit->frag < *cit)) {
          ad.l_entries[i++] = AncestorData::LEntry{rit->frag, rit->node};
          ++rit;
        } else {
          if (rit != lbest[v].end() && rit->frag == *cit) ++rit;
          ad.l_entries[i++] = AncestorData::LEntry{*cit, v};
          ++cit;
        }
      }
      DMC_ASSERT(i == ad.l_off[v + 1]);
    }
  }

  return ad;
}

}  // namespace dmc
