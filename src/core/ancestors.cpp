#include "core/ancestors.h"

#include <algorithm>

#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/downcast.h"

namespace dmc {

bool AncestorData::in_f_of(const FragmentStructure& fs, NodeId v,
                           std::uint32_t f_prime) const {
  for (const std::uint32_t a : attach[v])
    if (fs.tf_is_ancestor(a, f_prime)) return true;
  return false;
}

AncestorData compute_ancestors(Schedule& sched, const FragmentStructure& fs) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();

  AncestorData ad;
  ad.own_chain.resize(n);
  ad.parent_chain.resize(n);
  ad.attach.resize(n);
  ad.lowest_anc.resize(n);

  // --- Attach(v): pipelined tap-upcast of child-fragment attachments ---
  {
    std::vector<std::vector<AggItem>> contrib(n);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < g.degree(v); ++p) {
        const std::uint32_t cf = fs.port_frag_idx[v][p];
        if (cf == fs.frag_idx[v]) continue;
        if (fs.frag_parent[cf] != fs.frag_idx[v]) continue;
        if (fs.frag_parent_eid[cf] != g.ports(v)[p].edge) continue;
        // v is the parent-side endpoint of cf's attachment edge.
        contrib[v].push_back(AggItem{cf, {v, 0, 0}});
      }
    }
    AggregateBroadcastProtocol tap{
        g, fs.frag_forest,
        AggOptions{AggOp::kUnique, /*deliver_all=*/false, /*tap=*/true,
                   /*absorb=*/false},
        std::move(contrib)};
    sched.run(tap);
    for (NodeId v = 0; v < n; ++v) {
      for (const AggItem& it : tap.tapped(v))
        ad.attach[v].push_back(static_cast<std::uint32_t>(it.key));
      std::sort(ad.attach[v].begin(), ad.attach[v].end());
    }
  }

  // Materialized F(v) closures (pure local computation from global T_F).
  std::vector<std::vector<std::uint32_t>> f_closure(n);
  for (NodeId v = 0; v < n; ++v) f_closure[v] = fs.closure(ad.attach[v]);
  const auto in_closure = [&](NodeId v, std::uint32_t f_prime) {
    return std::binary_search(f_closure[v].begin(), f_closure[v].end(),
                              f_prime);
  };

  // --- A(v): downcast ancestor ids through own + child fragments ---
  {
    std::vector<std::vector<DownItem>> orig(n);
    for (NodeId u = 0; u < n; ++u)
      orig[u].push_back(DownItem{{u, fs.frag_idx[u], fs.depth_key(u), 0}});
    PipelinedDowncastProtocol dc{
        g, fs.t_view, std::move(orig),
        [&](NodeId w, const DownItem& it) {
          const std::uint32_t fo = static_cast<std::uint32_t>(it.w[1]);
          const std::uint32_t fw = fs.frag_idx[w];
          if (fw == fo) {
            ad.own_chain[w].push_back(
                AncestorEntry{static_cast<NodeId>(it.w[0]), it.w[2]});
            return true;
          }
          if (fs.frag_parent[fw] == fo) {
            ad.parent_chain[w].push_back(
                AncestorEntry{static_cast<NodeId>(it.w[0]), it.w[2]});
            return true;  // keep flowing within this child fragment
          }
          return false;  // grandchild fragment: out of scope
        }};
    sched.run(dc);
    const auto by_depth = [](const AncestorEntry& a, const AncestorEntry& b) {
      return a.depth_key < b.depth_key;
    };
    for (NodeId v = 0; v < n; ++v) {
      std::sort(ad.own_chain[v].begin(), ad.own_chain[v].end(), by_depth);
      std::sort(ad.parent_chain[v].begin(), ad.parent_chain[v].end(),
                by_depth);
    }
  }

  // --- L(v): downcast (u, F') pairs, filtered by F' ∉ F(receiver) ---
  {
    std::vector<std::vector<DownItem>> orig(n);
    for (NodeId u = 0; u < n; ++u)
      for (const std::uint32_t f_prime : f_closure[u])
        orig[u].push_back(
            DownItem{{u, f_prime, fs.frag_idx[u], fs.depth_key(u)}});

    // Track the deepest origin seen per (node, fragment).
    std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> best_depth(
        n);
    PipelinedDowncastProtocol dc{
        g, fs.t_view, std::move(orig),
        [&](NodeId w, const DownItem& it) {
          const NodeId u = static_cast<NodeId>(it.w[0]);
          const std::uint32_t f_prime = static_cast<std::uint32_t>(it.w[1]);
          const std::uint32_t fo = static_cast<std::uint32_t>(it.w[2]);
          const std::uint64_t dk = it.w[3];
          const std::uint32_t fw = fs.frag_idx[w];
          const bool in_scope = (fw == fo) || (fs.frag_parent[fw] == fo);
          if (!in_scope) return false;
          auto [slot, inserted] = best_depth[w].try_emplace(f_prime, dk);
          if (inserted || dk > slot->second) {
            slot->second = dk;
            ad.lowest_anc[w][f_prime] = u;
          }
          // The paper's filter: stop once the receiver itself contains F'.
          return !in_closure(w, f_prime);
        }};
    sched.run(dc);
  }

  // Self entries dominate anything received from above.
  for (NodeId v = 0; v < n; ++v)
    for (const std::uint32_t f_prime : f_closure[v])
      ad.lowest_anc[v][f_prime] = v;

  return ad;
}

}  // namespace dmc
