// SessionPool — concurrent-query serving on top of dmc::Session.
//
// One Session serializes its queries (each solve owns the network).  A
// pool holds k independent warm sessions over the SAME borrowed graph and
// dispatches a batch across them on k threads, so independent queries
// overlap.  Results are deterministic and position-stable: every report
// equals what a single warm Session would have produced for that request
// (sessions are interchangeable — each solve starts from a reset network
// and the warm infra is a pure function of (graph, options)), so
// pool.solve_many(batch) is bit-identical to session.solve_many(batch)
// regardless of which session served which request — test-enforced in
// tests/test_session.cpp.
//
// Teardown ordering: every solve path enters an in-flight gate, and both
// drain() and the destructor wait on it, so destroying a pool — e.g. the
// serving registry evicting a warm entry (serve/registry.h) — can never
// race a solve that is still running on another thread.  After drain()
// the pool is closed: further solves throw PreconditionError instead of
// touching half-destroyed sessions.  TSan-covered in tests/test_serve.cpp.
//
// Memory: each pooled session owns its own slot planes and arena, so the
// footprint is k× a single session; size the pool to the expected
// concurrency, not the batch size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/session.h"

namespace dmc {

class SessionPool {
 public:
  /// One request's result under solve_each: the report, or the exception
  /// that ended it (CancelledError on budget overruns, InvariantError on
  /// e.g. fault rejections).  `error == nullptr` means `report` is valid.
  struct SolveOutcome {
    MinCutReport report;
    std::exception_ptr error;
  };

  /// Builds `sessions` warm-capable sessions over `g` (borrowed, must
  /// outlive the pool).  `sessions == 0` picks the hardware concurrency.
  explicit SessionPool(const Graph& g, std::size_t sessions = 0,
                       SessionOptions opt = {});
  /// Mutable-graph pool: identical, and additionally enables apply() —
  /// one batched update of the shared graph absorbed by every pooled
  /// session.  (A non-const Graph lvalue binds here automatically.)
  explicit SessionPool(Graph& g, std::size_t sessions = 0,
                       SessionOptions opt = {});
  /// Waits for in-flight solves (drain()), then tears the sessions down.
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  [[nodiscard]] std::size_t size() const { return sessions_.size(); }
  [[nodiscard]] const Graph& graph() const { return sessions_[0]->graph(); }
  [[nodiscard]] const SessionOptions& options() const {
    return sessions_[0]->options();
  }

  /// Solves every request, dispatching across the pooled sessions on up
  /// to size() threads; reports come back in request order.  If any
  /// request cancels (round/time budget), the lowest-index failure is
  /// rethrown after all in-flight work finished and the other reports are
  /// lost — batch budgeted queries separately, exactly as with
  /// Session::solve_many.  The pool stays valid after a cancellation.
  [[nodiscard]] std::vector<MinCutReport> solve_many(
      std::span<const MinCutRequest> reqs);

  /// Serving-layer variant: same dispatch, but every request's outcome is
  /// captured individually — one failed (budget-cancelled, fault-rejected)
  /// request never discards its neighbours' completed reports.  Outcomes
  /// come back in request order.
  [[nodiscard]] std::vector<SolveOutcome> solve_each(
      std::span<const MinCutRequest> reqs);

  /// Batched edge update of the SHARED graph under an exclusive window:
  /// waits for every in-flight solve, patches the graph once
  /// (Graph::apply_updates), then every pooled session absorbs the
  /// summary with scoped invalidation (Session::absorb_update) — all
  /// while holding the pool's gate, so no solve can start against a
  /// half-updated pool.  Requires the mutable-graph constructor
  /// (PreconditionError otherwise, as on a drained pool); an invalid
  /// batch throws InvariantError with the pool unchanged.
  UpdateSummary apply(std::span<const EdgeUpdate> batch);

  /// Blocks until every in-flight solve has finished, then closes the
  /// pool: subsequent solve calls throw PreconditionError.  Idempotent.
  /// This is the explicit form of the destructor's ordering guarantee —
  /// call it when eviction must complete before the owner releases other
  /// resources (e.g. the graph) the sessions borrow.
  void drain();

  /// Queries served to completion across all pooled sessions.
  [[nodiscard]] std::size_t queries_served() const;

  /// Σ session.memory_bytes() — the registry's per-entry byte charge.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// RAII pass through the in-flight gate; throws if the pool is drained.
  class InflightGuard;

  std::vector<std::unique_ptr<Session>> sessions_;
  /// Non-null iff constructed over a mutable graph — the apply() gate.
  Graph* mutable_g_{nullptr};

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t inflight_{0};
  bool closed_{false};
};

}  // namespace dmc
