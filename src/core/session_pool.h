// SessionPool — concurrent-query serving on top of dmc::Session.
//
// One Session serializes its queries (each solve owns the network).  A
// pool holds k independent warm sessions over the SAME borrowed graph and
// dispatches a batch across them on k threads, so independent queries
// overlap.  Results are deterministic and position-stable: every report
// equals what a single warm Session would have produced for that request
// (sessions are interchangeable — each solve starts from a reset network
// and the warm infra is a pure function of (graph, options)), so
// pool.solve_many(batch) is bit-identical to session.solve_many(batch)
// regardless of which session served which request — test-enforced in
// tests/test_session.cpp.
//
// Memory: each pooled session owns its own slot planes and arena, so the
// footprint is k× a single session; size the pool to the expected
// concurrency, not the batch size.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/session.h"

namespace dmc {

class SessionPool {
 public:
  /// Builds `sessions` warm-capable sessions over `g` (borrowed, must
  /// outlive the pool).  `sessions == 0` picks the hardware concurrency.
  explicit SessionPool(const Graph& g, std::size_t sessions = 0,
                       SessionOptions opt = {});

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  [[nodiscard]] std::size_t size() const { return sessions_.size(); }
  [[nodiscard]] const Graph& graph() const { return sessions_[0]->graph(); }
  [[nodiscard]] const SessionOptions& options() const {
    return sessions_[0]->options();
  }

  /// Solves every request, dispatching across the pooled sessions on up
  /// to size() threads; reports come back in request order.  If any
  /// request cancels (round/time budget), the lowest-index failure is
  /// rethrown after all in-flight work finished and the other reports are
  /// lost — batch budgeted queries separately, exactly as with
  /// Session::solve_many.  The pool stays valid after a cancellation.
  [[nodiscard]] std::vector<MinCutReport> solve_many(
      std::span<const MinCutRequest> reqs);

  /// Queries served to completion across all pooled sessions.
  [[nodiscard]] std::size_t queries_served() const;

 private:
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace dmc
