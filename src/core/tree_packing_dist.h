// Distributed greedy tree packing (Thorup) + per-tree 1-respect minimum.
//
// Tree Tᵢ is the distributed MST under EdgeKey(load, w, id) where load(e) =
// #previous trees containing e — a quantity both endpoints of e maintain
// locally, so the keys are consistent with zero communication.  After each
// tree, Theorem 2.1's machinery computes min_v C(v↓); the running global
// minimum (and its cut side) is retained by every node.
//
// Options support the sampled-skeleton mode: packing restricted to enabled
// edges with skeleton weights while cut values are evaluated with original
// weights (the (1+ε) reduction), or with arbitrary evaluation weights (the
// Su-style bridge test).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "graph/graph.h"

namespace dmc {

struct SessionInfra;

struct DistPackingOptions {
  std::size_t max_trees{32};
  /// Stop after this many consecutive trees without improvement (0: never).
  std::size_t patience{8};
  /// Cut-evaluation weight per edge (default: the graph's weights).
  const std::vector<Weight>* eval_weights{nullptr};
  /// If set, the packing may only use edges with enabled[e] (skeleton).
  const std::vector<bool>* edge_enabled{nullptr};
  /// MST key weights (default: the graph's weights; skeleton: sampled).
  const std::vector<Weight>* packing_weights{nullptr};
  /// Stop packing as soon as the running minimum hits zero — used by
  /// bridge-style searches, where any zero-weight cut ends the hunt.
  bool stop_at_zero{false};
  /// Warm session cache (core/warm.h).  When set and no skeleton override
  /// (eval_weights / edge_enabled / packing_weights) is active, tree 1 —
  /// the zero-load MST, its fragments, and its 1-respect sweep, all pure
  /// functions of the graph — is replayed from the cache instead of
  /// re-simulated; results and stats stay bit-identical.
  const SessionInfra* warm{nullptr};
};

struct DistPackingResult {
  Weight c_star{static_cast<Weight>(-1)};
  NodeId v_star{kNoNode};
  std::size_t tree_of_best{0};
  std::size_t trees_packed{0};
  std::vector<bool> in_cut;       ///< membership bits of the best cut
  std::size_t fragments_last{0};  ///< fragment count of the last tree
};

[[nodiscard]] DistPackingResult dist_tree_packing(
    Schedule& sched, const TreeView& bfs, NodeId leader,
    const DistPackingOptions& opt);

}  // namespace dmc
