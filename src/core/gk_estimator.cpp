#include "core/gk_estimator.h"

#include <cmath>

#include "congest/network.h"
#include "congest/schedule.h"
#include "core/session.h"
#include "core/skeleton_dist.h"
#include "core/warm.h"
#include "util/prng.h"

namespace dmc {

GkEstimateResult gk_estimate_min_cut(Network& net, const GkEstimateOptions& opt,
                                     const SessionInfra* warm) {
  const Graph& g = net.graph();
  const std::uint64_t seed = opt.seed;
  DMC_REQUIRE(g.num_nodes() >= 2);
  const std::size_t n = g.num_nodes();

  Schedule sched{net};
  SessionInfra storage;
  const SessionInfra& infra = acquire_session_infra(sched, warm, storage);
  const TreeView& bfs = infra.bfs;
  const NodeId leader = infra.leader;

  // Upper bound: the global minimum weighted degree (converge/broadcast,
  // replayed from the warm cache when the session carries it).
  const Weight delta_min = acquire_min_degree(sched, bfs, warm);

  const double c = 2.0 * std::log(static_cast<double>(n));
  GkEstimateResult out;
  Weight lambda_hat = 1;
  for (;;) {
    const double p = std::min(1.0, c / static_cast<double>(lambda_hat));
    if (p < 1.0) {
      ++out.probes;
      const DistSkeleton sk = sample_skeleton_dist(
          g, p, derive_seed(seed, 0x676bull, lambda_hat));
      if (!skeleton_connected_dist(sched, bfs, leader, sk.enabled)) {
        // First disconnection: λ sits below the guess (up to the sampling
        // slack); report the bracket midpoint.
        out.estimate = std::max<Weight>(1, lambda_hat / 2);
        out.stats = net.stats();
        return out;
      }
    }
    if (lambda_hat >= delta_min) {
      // λ ≤ δ_min and every probe up to it stayed connected.
      out.estimate = delta_min;
      out.stats = net.stats();
      return out;
    }
    lambda_hat *= 2;
  }
}

GkEstimateResult gk_estimate_min_cut(const Graph& g,
                                     const GkEstimateOptions& opt) {
  Session session{g};
  MinCutRequest req;
  req.algo = Algo::kGk;
  req.seed = opt.seed;
  return to_gk_result(session.solve(req));
}

GkEstimateResult gk_estimate_min_cut(const Graph& g, std::uint64_t seed) {
  return gk_estimate_min_cut(g, GkEstimateOptions{seed});
}

}  // namespace dmc
