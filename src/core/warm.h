// Warm per-session infrastructure — the fix for the E9 regression where a
// reused dmc::Session answered repeated queries SLOWER than building a
// fresh network per query.
//
// Nanongkai (arXiv:1403.6188) and Nanongkai–Su (arXiv:1408.0557) treat the
// rooted BFS tree and its O(D)-depth aggregation machinery as fixed
// per-graph infrastructure: every phase of every algorithm (skeleton
// sampling, tree packing, 1/2-respect sweeps) runs over the SAME tree.
// The simulator's drivers, however, used to re-elect the leader and
// rebuild everything inside every solve() — so a "warm" session paid the
// whole bootstrap again per query and the façade bought nothing.
//
// SessionInfra is every per-graph product of the drivers' preambles,
// captured once per (graph, scheduling, engine_threads) — all pinned by a
// Session's construction:
//
//   * the elected leader and its rooted BFS TreeView, the tree height
//     that prices every barrier charge, and the bootstrap stats snapshot;
//   * the min-weighted-degree opener approx and gk both start with;
//   * the two per-graph tree scaffolds: Su's packing tree (the MST under
//     the weight-key order) and tree 1 of the greedy packing (the MST
//     under zero loads), each with its fragment structure — plus tree 1's
//     1-respect sweep under original weights, which seeds every
//     default-weights packing run (exact, and approx's p = 1 path).
//
// Stats fidelity: each cached stage stores a PhaseDelta — its exact stats
// contribution (counter increments + per-protocol entries).  Replaying a
// stage applies the delta instead of executing rounds, so the cumulative
// stats a warm solve reports are bit-identical to a cold solve's no
// matter which prefix of stages a given driver replays.  The skipped
// protocols are deterministic (pure functions of the graph), later
// protocols only ever compare mail-slot stamps for equality against the
// current round token, and every run's scheduling state is keyed off its
// own first round — so values, witnesses, and every stat match a cold
// one-shot exactly; tests/test_session.cpp enforces it across every
// algorithm × scheduling × engine cell.  DESIGN.md "Warm sessions:
// per-graph vs per-solve state" carries the full argument.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/schedule.h"
#include "congest/stats.h"
#include "congest/tree_view.h"
#include "core/one_respect.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "graph/graph.h"

namespace dmc {

/// The exact stats contribution of a cached stage: counter increments
/// plus the per-protocol entries it appended.  `replay` applies it to a
/// network's live counters (max fields merge via max — they are
/// idempotent, so replaying over any prefix reproduces the cold value)
/// and gives an installed observer one cancellation checkpoint, since
/// the replayed stage executes no rounds for the observer to veto
/// (cold-path budgets that would have expired mid-stage still cancel,
/// at stage rather than round granularity).
struct PhaseDelta {
  std::uint64_t rounds{0};
  std::uint64_t barrier_rounds{0};
  std::uint64_t messages{0};
  std::uint64_t words{0};
  std::uint64_t node_steps{0};
  std::uint8_t max_words{0};       ///< post-stage value, merged via max
  std::uint32_t max_edge_msgs{0};  ///< post-stage value, merged via max
  std::vector<ProtocolStats> phases;

  [[nodiscard]] static PhaseDelta capture(const CongestStats& before,
                                          const CongestStats& after);
  void replay(Network& net, const char* what) const;

  [[nodiscard]] std::size_t memory_bytes() const;
};

/// One cached MST + fragment scaffold (the `ghs_mst` +
/// `build_fragment_structure` pair every tree-based phase opens with).
struct TreeScaffold {
  DistMstResult mst;
  FragmentStructure fs;
  PhaseDelta delta;

  [[nodiscard]] std::size_t memory_bytes() const;
};

/// The per-graph bootstrap product shared by all four drivers
/// (exact_mincut, approx_mincut, su_baseline, gk_estimator).
struct SessionInfra {
  NodeId leader{kNoNode};
  TreeView bfs;             ///< rooted at `leader`, children lists built
  std::uint32_t height{0};  ///< bfs height = the per-barrier price
  /// Stats snapshot right after the bootstrap (leader_bfs rounds, its
  /// per-protocol entry, and the first barrier charge) on a pristine
  /// network — the base every driver starts from.
  CongestStats bootstrap;

  // --- stage two: global minimum weighted degree (approx/gk opener) ----
  bool has_min_degree{false};
  Weight min_degree{0};  ///< min_v weighted_degree(v)
  PhaseDelta min_degree_delta;

  // --- independent tree-scaffold stages (built per algorithm need) -----
  bool has_su_tree{false};
  TreeScaffold su_tree;  ///< MST under weight_keys (Su's one tree)

  bool has_packing_tree{false};
  TreeScaffold packing_first;  ///< packing tree 1: zero loads over weights
  /// Tree 1's 1-respect minimum under ORIGINAL weights — the first
  /// iteration of every default-weights packing run, results and stats.
  /// Its own stage, separate from the scaffold: the scaffold's MST is
  /// id-ordered (zero loads make every EdgeKey comparison degenerate to
  /// the id tiebreak) and therefore weight-INdependent, while this sweep
  /// evaluates original weights — so a reweight-only update keeps the
  /// scaffold and rebuilds only the sweep (reweight_session_infra).
  bool has_first_sweep{false};
  OneRespectResult first_sweep;
  PhaseDelta first_sweep_delta;

  /// Heap bytes of every cached stage (built stages only) — what the
  /// serving registry charges a warm entry for beyond its Network
  /// (serve/registry.h; util/mem.h accounting conventions).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Runs the bootstrap live on `sched`'s network (which must be pristine:
/// freshly constructed or reset) and captures stage one: leader election /
/// BFS via run_uncharged, set_barrier_height, one barrier charge, stats
/// snapshot.  This is exactly the preamble every driver used to inline.
[[nodiscard]] SessionInfra build_session_infra(Schedule& sched);

/// Replays stage one onto `sched`'s pristine network: restores the stats
/// snapshot, prices the schedule's barriers, and checkpoints the
/// observer — no protocol runs.
void replay_session_infra(Schedule& sched, const SessionInfra& infra);

/// The live-or-replay switch used by the drivers: with `warm` replays it
/// and returns it; without, builds into `storage` and returns that.
[[nodiscard]] const SessionInfra& acquire_session_infra(
    Schedule& sched, const SessionInfra* warm, SessionInfra& storage);

/// Stage-two build: runs the min-weighted-degree convergecast live on a
/// network in exactly the post-bootstrap state `infra` describes and
/// caches its value + delta.
void extend_session_infra_min_degree(Schedule& sched, SessionInfra& infra);

/// Tree-stage builds, one per scaffold so a session only ever pays for
/// what its queries use (a one-shot gk must not fund packing trees).
/// Each requires the post-bootstrap state (e.g. reset + replay); the
/// network is left mid-build and must be reset before serving.
void extend_session_infra_su_tree(Schedule& sched, SessionInfra& infra);
void extend_session_infra_packing_tree(Schedule& sched, SessionInfra& infra);
/// Tree 1's 1-respect sweep under original weights — requires the packing
/// scaffold (has_packing_tree); replays its delta, then runs the sweep
/// live, so the captured delta composes with the scaffold's on replay.
void extend_session_infra_first_sweep(Schedule& sched, SessionInfra& infra);

/// Scoped invalidation for a REWEIGHT-ONLY update batch on the session's
/// graph (Graph::apply_updates with topology_changed() == false).  Keeps
/// every topology-only stage, repairs the weight-derived min-degree value
/// centrally, and drops the weight-dependent stages so they lazily
/// rebuild:
///   * bootstrap (leader, BFS tree, height, stats snapshot) — topology-
///     only, kept verbatim;
///   * min_degree — the convergecast's STATS are value-independent
///     (one report up + one broadcast down per tree edge either way), so
///     the delta is kept and only the value is recomputed centrally; it
///     provably equals what the protocol would recompute (both are
///     min_v δ(v), and the broadcast value is the weight component of the
///     lexicographic minimum);
///   * packing_first — the scaffold's MST under EdgeKey{0, w, e} orders
///     by id alone (zero loads), weight-independent, kept;
///   * su_tree (MST under the raw weight order) and first_sweep (weights
///     evaluated directly) — dropped.
/// Topology-changing batches must not come here: they invalidate the
/// bootstrap itself (message counts move), so the whole infra is rebuilt.
void reweight_session_infra(SessionInfra& infra, const Graph& g);

/// The approx/gk opener: the global minimum weighted degree, known at
/// every node after one charged min-convergecast over the BFS tree.
/// With a warm cache carrying stage two, replays its delta instead of
/// running the protocol.
[[nodiscard]] Weight acquire_min_degree(Schedule& sched, const TreeView& bfs,
                                        const SessionInfra* warm);

}  // namespace dmc
