// Step 3 of the paper (and the identical aggregation reused for ρ↓ at the
// end of Step 5): given a per-node quantity x(v), make every node know
//
//     x↓(v) = Σ_{u ∈ v↓} x(u)
//
// computed as  (sum of x inside v↓ ∩ F_i, via an intra-fragment
// convergecast)  +  (Σ_{F_j ∈ F(v)} x(F_j), via a broadcast of the O(√n)
// per-fragment totals over the BFS tree, combined locally using
// F(v) = closure(Attach(v))).
//
// O(√n + D) rounds.
#pragma once

#include <span>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "core/ancestors.h"
#include "dist/tree_partition.h"

namespace dmc {

[[nodiscard]] std::vector<std::uint64_t> subtree_sums(
    Schedule& sched, const TreeView& bfs, const FragmentStructure& fs,
    const AncestorData& ad, std::span<const std::uint64_t> value);

}  // namespace dmc
