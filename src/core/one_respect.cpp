#include "core/one_respect.h"

#include <algorithm>

#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/convergecast.h"
#include "core/ancestors.h"
#include "core/lca_rho.h"
#include "core/merging_nodes.h"
#include "core/subtree_sums.h"
#include "util/checked.h"

namespace dmc {

OneRespectResult one_respect_min_cut(Schedule& sched, const TreeView& bfs,
                                     const FragmentStructure& fs,
                                     std::span<const Weight> weights) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(weights.size() == g.num_edges());
  DMC_REQUIRE(n >= 2);

  // Step 2: ancestors, fragment containment, L maps.
  const AncestorData ad = compute_ancestors(sched, fs);

  // Step 3: δ↓ from local weighted degrees (arena scratch: per-solve;
  // guarded adds — the wide regime must fail loudly, never wrap).
  std::span<std::uint64_t> delta = net.arena().alloc<std::uint64_t>(n);
  for (NodeId v = 0; v < n; ++v)
    for (const Port& p : g.ports(v))
      delta[v] = checked_add(delta[v], weights[p.edge]);
  OneRespectResult out;
  out.delta_down = subtree_sums(sched, bfs, fs, ad, delta);

  // Step 4: merging nodes and T'_F.
  const TfPrime tfp = compute_merging_nodes(sched, bfs, fs, ad);

  // Step 5: ρ, then ρ↓ through the same aggregation as Step 3.
  const std::vector<Weight> rho =
      compute_rho(sched, bfs, fs, ad, tfp, weights);
  out.rho_down = subtree_sums(sched, bfs, fs, ad, rho);

  // Karger's identity, evaluated locally at every node.  The doubling is
  // guarded: 2ρ↓ wrapping 64 bits would make the subtraction "succeed"
  // with a garbage cut value instead of tripping the underflow check.
  out.cut_down.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const Weight rho2 = checked_double(out.rho_down[v]);
    DMC_ASSERT_MSG(out.delta_down[v] >= rho2,
                   "C(v↓) underflow at node " << v);
    out.cut_down[v] = out.delta_down[v] - rho2;
  }

  // Global minimum over v ≠ root (the root's subtree is the trivial cut).
  {
    std::vector<CValue> init(n);
    for (NodeId v = 0; v < n; ++v)
      init[v] = v == fs.global_root ? CValue{~Word{0}, v}
                                    : CValue{out.cut_down[v], v};
    ConvergecastProtocol cc{g, bfs, CombineOp::kMin, std::move(init),
                            /*broadcast_result=*/true};
    sched.run(cc);
    out.c_star = cc.tree_value(0).w0;
    out.v_star = static_cast<NodeId>(cc.tree_value(0).w1);
  }

  // Cut side: v* announces itself, its fragment, and F(v*); each node then
  // decides membership in v*↓ locally.
  {
    std::vector<std::vector<AggItem>> contrib(n);
    if (out.v_star != kNoNode) {
      auto& c = contrib[out.v_star];
      c.push_back(AggItem{0, {out.v_star, fs.frag_idx[out.v_star], 0}});
      for (const std::uint32_t fj : fs.closure(ad.attach[out.v_star]))
        c.push_back(AggItem{Word{1} + fj, {0, 0, 0}});
    }
    // Each node reads exactly two keys: the v* announcement (key 0) and
    // its own fragment's membership bit — everything else is dropped at
    // delivery instead of stored n times over.
    AggOptions opt{AggOp::kUnique, true, false, false};
    opt.keep = [&fs](NodeId u, Word key) {
      return key == 0 || key == Word{1} + fs.frag_idx[u];
    };
    AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
    sched.run(bc);
    out.in_cut.assign(n, false);
    for (NodeId u = 0; u < n; ++u) {
      const auto& items = bc.items(u);
      DMC_ASSERT(!items.empty() && items[0].key == 0);
      const NodeId vstar = static_cast<NodeId>(items[0].p[0]);
      const std::uint32_t f_vstar = static_cast<std::uint32_t>(items[0].p[1]);
      const Word want = Word{1} + fs.frag_idx[u];
      const auto it = std::lower_bound(
          items.begin() + 1, items.end(), want,
          [](const AggItem& a, Word key) { return a.key < key; });
      bool in = it != items.end() && it->key == want;
      if (!in && fs.frag_idx[u] == f_vstar) {
        if (u == vstar) {
          in = true;
        } else {
          for (const NodeId a : ad.own_chain(u))
            if (a == vstar) {
              in = true;
              break;
            }
        }
      }
      out.in_cut[u] = in;
    }
  }
  return out;
}

}  // namespace dmc
