// dmc — distributed minimum cut in the CONGEST model.
//
// Public façade over the full pipeline; the one header downstream users and
// the examples need.  See README.md for a tour.
//
//   Graph g = make_barbell(64, 3, 1, /*seed=*/7);
//   auto out = dmc::distributed_min_cut(g);
//   // out.value == 3, out.side[v] == (v in the planted half),
//   // out.stats.total_rounds() == the CONGEST round count.
#pragma once

#include "core/approx_mincut.h"
#include "core/exact_mincut.h"
#include "core/gk_estimator.h"
#include "core/su_baseline.h"
#include "graph/graph.h"

namespace dmc {

/// Exact minimum cut (the paper's Õ((√n+D)·poly(λ)) algorithm).
/// Every node of the simulated network ends up knowing the value and its
/// own side bit; the result aggregates those local outputs.
[[nodiscard]] DistMinCutResult distributed_min_cut(
    const Graph& g, const ExactMinCutOptions& opt = {});

/// (1+ε)-approximate minimum cut (the paper's Õ((√n+D)/poly(ε)) variant).
[[nodiscard]] DistApproxResult distributed_approx_min_cut(
    const Graph& g, double eps, std::uint64_t seed = 1);

/// Su [SPAA'14]-style estimate (concurrent-work baseline).
[[nodiscard]] SuEstimateResult distributed_su_estimate(const Graph& g,
                                                       std::uint64_t seed = 1);

/// Ghaffari–Kuhn-style constant-factor estimate (prior-work baseline
/// proxy; see DESIGN.md).
[[nodiscard]] GkEstimateResult distributed_gk_estimate(const Graph& g,
                                                       std::uint64_t seed = 1);

}  // namespace dmc
