// dmc — distributed minimum cut in the CONGEST model.
//
// Public façade over the full pipeline; the one header downstream users and
// the examples need.  See README.md for a tour.
//
// Serving many queries against one graph?  Use dmc::Session (session.h):
// the network setup (slot mailboxes, reverse-port table, worker pool) is
// paid once and every solve() reuses it, bit-identical to a fresh run:
//
//   Graph g = make_barbell(64, 3, 1, /*seed=*/7);
//   Session session{g};
//   MinCutRequest req;               // algorithm, eps, seed, budgets…
//   MinCutReport rep = session.solve(req);
//   // rep.value == 3, rep.side[v] == (v in the planted half),
//   // rep.stats.total_rounds() == the CONGEST round count.
//
// The free functions below are thin one-shot wrappers over a temporary
// session — convenient for single queries, with a uniform options-struct
// signature (the positional-seed spellings are deprecated).
#pragma once

#include "core/approx_mincut.h"
#include "core/exact_mincut.h"
#include "core/gk_estimator.h"
#include "core/session.h"
#include "core/session_pool.h"
#include "core/su_baseline.h"
#include "graph/graph.h"

namespace dmc {

/// Exact minimum cut (the paper's Õ((√n+D)·poly(λ)) algorithm).
/// Every node of the simulated network ends up knowing the value and its
/// own side bit; the result aggregates those local outputs.
[[nodiscard]] DistMinCutResult distributed_min_cut(
    const Graph& g, const ExactMinCutOptions& opt = {});

/// (1+ε)-approximate minimum cut (the paper's Õ((√n+D)/poly(ε)) variant).
[[nodiscard]] DistApproxResult distributed_approx_min_cut(
    const Graph& g, const ApproxMinCutOptions& opt = {});

/// Su [SPAA'14]-style estimate (concurrent-work baseline).
[[nodiscard]] SuEstimateResult distributed_su_estimate(
    const Graph& g, const SuEstimateOptions& opt = {});

/// Ghaffari–Kuhn-style constant-factor estimate (prior-work baseline
/// proxy; see DESIGN.md).
[[nodiscard]] GkEstimateResult distributed_gk_estimate(
    const Graph& g, const GkEstimateOptions& opt = {});

// --- deprecated positional-seed spellings --------------------------------
// The four entry points used to disagree on shape (bare eps/seed here, an
// options struct there); they now all take a defaulted options struct that
// forwards to MinCutRequest.  These overloads remain for source
// compatibility one release.

[[deprecated("use distributed_approx_min_cut(g, ApproxMinCutOptions{...})")]]
[[nodiscard]] DistApproxResult distributed_approx_min_cut(
    const Graph& g, double eps, std::uint64_t seed = 1);

[[deprecated("use distributed_su_estimate(g, SuEstimateOptions{...})")]]
[[nodiscard]] SuEstimateResult distributed_su_estimate(const Graph& g,
                                                       std::uint64_t seed);

[[deprecated("use distributed_gk_estimate(g, GkEstimateOptions{...})")]]
[[nodiscard]] GkEstimateResult distributed_gk_estimate(const Graph& g,
                                                       std::uint64_t seed);

}  // namespace dmc
