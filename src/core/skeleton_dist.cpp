#include "core/skeleton_dist.h"

#include "central/skeleton.h"
#include "congest/primitives/convergecast.h"
#include "congest/protocol.h"

namespace dmc {

DistSkeleton sample_skeleton_dist(const Graph& g, double p,
                                  std::uint64_t seed) {
  DistSkeleton s;
  s.p = p;
  s.sampled_w.resize(g.num_edges());
  s.enabled.resize(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    s.sampled_w[e] = sampled_edge_weight(g.edge(e).w, p, seed, e);
    s.enabled[e] = s.sampled_w[e] > 0;
  }
  return s;
}

namespace {

/// Floods a token from the leader along enabled edges only.
class MaskedFlood final : public Protocol {
 public:
  MaskedFlood(const Graph& g, NodeId leader, const std::vector<bool>& mask)
      : g_(&g), leader_(leader), mask_(&mask) {
    reached_.assign(g.num_nodes(), 0);
    started_.assign(g.num_nodes(), 0);
  }
  [[nodiscard]] std::string name() const override { return "masked_flood"; }
  void round(NodeId v, Mailbox& mb) override {
    bool newly = false;
    for (const Delivery& d : mb.inbox()) {
      (void)d;
      if (!reached_[v]) {
        reached_[v] = 1;
        newly = true;
      }
    }
    if (!started_[v]) {
      started_[v] = 1;
      if (v == leader_) {
        reached_[v] = 1;
        newly = true;
      }
    }
    if (newly) {
      for (std::uint32_t p = 0; p < g_->degree(v); ++p)
        if ((*mask_)[g_->ports(v)[p].edge])
          mb.send(p, Message::make(1, {1}));
    }
  }
  [[nodiscard]] bool local_done(NodeId v) const override {
    return started_[v] != 0;
  }
  /// Event-driven audit: the leader seeds the flood in the dense first
  /// round; the wave advances by deliveries; an already-reached (or
  /// never-reached) idle node is a no-op.
  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }
  /// Fault audit — reorder/dup: reaching a node sets a sticky bit; a
  /// second copy (any order, any port) finds the bit already set and
  /// no-ops, so the fold is idempotent AND commutative.  Drop severs the
  /// flood with no retransmission, so it is not declared.
  [[nodiscard]] unsigned fault_tolerance() const override {
    return kTolerateReorder | kTolerateDup;
  }
  [[nodiscard]] bool reached(NodeId v) const { return reached_[v] != 0; }

 private:
  const Graph* g_;
  NodeId leader_;
  const std::vector<bool>* mask_;
  std::vector<std::uint8_t> reached_, started_;
};

}  // namespace

bool skeleton_connected_dist(Schedule& sched, const TreeView& bfs,
                             NodeId leader,
                             const std::vector<bool>& enabled) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();

  MaskedFlood flood{g, leader, enabled};
  sched.run(flood);

  std::vector<CValue> init(n);
  for (NodeId v = 0; v < n; ++v)
    init[v] = CValue{flood.reached(v) ? Word{1} : Word{0}, 0};
  ConvergecastProtocol count{g, bfs, CombineOp::kSum, std::move(init),
                             /*broadcast_result=*/true};
  sched.run(count);
  // Every node compares the count to n (n is globally known).
  return count.tree_value(0).w0 == n;
}

}  // namespace dmc
