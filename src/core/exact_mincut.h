// The paper's headline algorithm: exact minimum cut in
// Õ((√n + D) · poly(λ)) CONGEST rounds.
//
// Pipeline: leader election + BFS  →  greedy tree packing, one distributed
// MST per tree (Kutten–Peleg's role)  →  Theorem 2.1's 1-respect minimum
// per tree  →  running global minimum with its cut side at every node.
//
// The poly(λ) factor is the number of packed trees; Thorup's Θ(λ⁷ log³ n)
// bound guarantees exactness, experiment E5 shows a handful of trees
// suffice in practice (the `max_trees`/`patience` knobs).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "congest/protocol.h"
#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

class Network;
struct SessionInfra;

struct ExactMinCutOptions {
  std::size_t max_trees{48};
  std::size_t patience{12};
  /// Simulation backend: 1 = sequential reference engine, 0 = sharded
  /// executor over all hardware threads, k > 1 = sharded over k threads.
  /// Results and stats are bit-identical for every setting (engine.h).
  /// Consumed by the one-shot wrapper only — on the Network&-taking
  /// runner the session already owns the engine.
  unsigned engine_threads{1};
  /// Scheduling override: nullopt lets each protocol declare its own mode
  /// (every shipped protocol is event-driven); forcing kDense restores the
  /// full per-round sweep for A/B measurement.  Results and all stats but
  /// node_steps are bit-identical either way.  One-shot wrapper only,
  /// like engine_threads.
  std::optional<Scheduling> scheduling{};
};

struct DistMinCutResult {
  Weight value{0};
  NodeId v_star{kNoNode};
  std::vector<bool> side;  ///< every node's local output bit, collected
  std::size_t trees_packed{0};
  std::size_t tree_of_best{0};
  std::size_t fragments{0};
  CongestStats stats;      ///< rounds (incl. barrier charges), messages, …
};

/// Session-parameterized runner: runs the full exact pipeline on an
/// existing network (pristine or reset; see Network::reset), which is how
/// dmc::Session serves repeated queries without rebuilding the simulator.
/// Uses only the algorithm knobs of `opt` (max_trees/patience) — the
/// engine and scheduling are whatever `net` was configured with.  With
/// `warm` (core/warm.h) the leader/BFS bootstrap is replayed from the
/// cached infra instead of re-run — bit-identical results and stats.
[[nodiscard]] DistMinCutResult exact_min_cut_dist(
    Network& net, const ExactMinCutOptions& opt = {},
    const SessionInfra* warm = nullptr);

/// One-shot convenience: a temporary single-use dmc::Session over g
/// (fresh network per call), honouring opt.engine_threads/scheduling.
[[nodiscard]] DistMinCutResult exact_min_cut_dist(
    const Graph& g, const ExactMinCutOptions& opt = {});

}  // namespace dmc
