#include "core/subtree_sums.h"

#include <algorithm>

#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/convergecast.h"
#include "util/checked.h"

namespace dmc {

std::vector<std::uint64_t> subtree_sums(Schedule& sched, const TreeView& bfs,
                                        const FragmentStructure& fs,
                                        const AncestorData& ad,
                                        std::span<const std::uint64_t> value) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(value.size() == n);

  // (i) intra-fragment subtree sums.
  std::vector<CValue> init(n);
  for (NodeId v = 0; v < n; ++v) init[v] = CValue{value[v], 0};
  ConvergecastProtocol cc{g, fs.frag_forest, CombineOp::kSum, std::move(init),
                          /*broadcast_result=*/false};
  sched.run(cc);

  // (ii) fragment totals, announced by each fragment root over the BFS tree
  // (whose height is O(D), unlike T itself).
  std::vector<std::vector<AggItem>> contrib(n);
  for (NodeId v = 0; v < n; ++v)
    if (fs.is_frag_root(v))
      contrib[v].push_back(
          AggItem{fs.frag_idx[v], {cc.subtree_value(v).w0, 0, 0}});
  // Node v only reads the totals of the fragments in F(v); precompute
  // those key sets once so delivery keeps just them instead of all k
  // totals at every node.
  std::vector<std::vector<std::uint32_t>> need(n);
  for (NodeId v = 0; v < n; ++v) {
    need[v] = fs.closure(ad.attach[v]);
    std::sort(need[v].begin(), need[v].end());
  }
  AggOptions opt{AggOp::kUnique, /*deliver_all=*/true, false, false};
  opt.keep = [&need](NodeId v, Word key) {
    return std::binary_search(need[v].begin(), need[v].end(),
                              static_cast<std::uint32_t>(key));
  };
  AggregateBroadcastProtocol bc{g, bfs, opt, std::move(contrib)};
  sched.run(bc);

  // Combine locally: x↓(v) = intra-fragment part + Σ_{F_j ∈ F(v)} total.
  std::vector<std::uint64_t> out(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto& items = bc.items(v);
    std::uint64_t sum = cc.subtree_value(v).w0;
    for (const std::uint32_t fj : need[v]) {
      const auto it = std::lower_bound(
          items.begin(), items.end(), fj,
          [](const AggItem& a, std::uint32_t key) { return a.key < key; });
      DMC_ASSERT(it != items.end() && it->key == fj);
      sum = checked_add(sum, it->p[0]);
    }
    out[v] = sum;
  }
  return out;
}

}  // namespace dmc
