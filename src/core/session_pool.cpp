#include "core/session_pool.h"

#include <atomic>
#include <exception>
#include <functional>
#include <thread>

namespace dmc {

SessionPool::SessionPool(const Graph& g, std::size_t sessions,
                         SessionOptions opt) {
  if (sessions == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    sessions = hw != 0 ? hw : 1;
  }
  sessions_.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i)
    sessions_.push_back(std::make_unique<Session>(g, opt));
}

std::vector<MinCutReport> SessionPool::solve_many(
    std::span<const MinCutRequest> reqs) {
  std::vector<MinCutReport> reports(reqs.size());
  std::vector<std::exception_ptr> errors(reqs.size());
  std::atomic<std::size_t> next{0};

  // Work stealing by atomic index: each worker owns one session and pulls
  // the next unclaimed request.  Which session serves which request is
  // timing-dependent, but irrelevant to the output (header).
  const auto worker = [&](Session& session) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= reqs.size()) return;
      try {
        reports[i] = session.solve(reqs[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  const std::size_t workers = std::min(sessions_.size(), reqs.size());
  if (workers <= 1) {
    if (!reqs.empty()) worker(*sessions_.front());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    try {
      for (std::size_t s = 0; s < workers; ++s)
        threads.emplace_back(worker, std::ref(*sessions_[s]));
    } catch (...) {
      // Thread-resource exhaustion mid-spawn: drain what did start
      // (workers exit once `next` runs past the batch) before
      // propagating, or the vector of joinable threads would terminate().
      next.store(reqs.size(), std::memory_order_relaxed);
      for (std::thread& t : threads) t.join();
      throw;
    }
    for (std::thread& t : threads) t.join();
  }

  for (std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return reports;
}

std::size_t SessionPool::queries_served() const {
  std::size_t total = 0;
  for (const auto& s : sessions_) total += s->queries_served();
  return total;
}

}  // namespace dmc
