#include "core/session_pool.h"

#include <atomic>
#include <functional>
#include <thread>
#include <utility>

#include "util/assert.h"

namespace dmc {

/// Counts a solve call in and out of the pool.  Entering a closed pool
/// throws; the last exit wakes drain()/the destructor.
class SessionPool::InflightGuard {
 public:
  explicit InflightGuard(SessionPool& pool) : pool_(&pool) {
    std::lock_guard lock{pool_->mu_};
    DMC_REQUIRE_MSG(!pool_->closed_,
                    "SessionPool is drained — no further solves");
    ++pool_->inflight_;
  }
  ~InflightGuard() {
    std::lock_guard lock{pool_->mu_};
    if (--pool_->inflight_ == 0) pool_->idle_cv_.notify_all();
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  SessionPool* pool_;
};

SessionPool::SessionPool(const Graph& g, std::size_t sessions,
                         SessionOptions opt) {
  if (sessions == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    sessions = hw != 0 ? hw : 1;
  }
  sessions_.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i)
    sessions_.push_back(std::make_unique<Session>(g, opt));
}

SessionPool::SessionPool(Graph& g, std::size_t sessions, SessionOptions opt)
    : SessionPool(static_cast<const Graph&>(g), sessions, opt) {
  mutable_g_ = &g;
}

SessionPool::~SessionPool() { drain(); }

UpdateSummary SessionPool::apply(std::span<const EdgeUpdate> batch) {
  std::unique_lock lock{mu_};
  DMC_REQUIRE_MSG(!closed_, "SessionPool is drained — no further updates");
  DMC_REQUIRE_MSG(mutable_g_ != nullptr,
                  "SessionPool::apply needs the mutable-graph constructor — "
                  "this pool borrows its graph as const");
  // Exclusive window: wait out in-flight solves and keep holding mu_
  // (every solve path enters through InflightGuard, which locks mu_), so
  // the shared graph and all sessions are patched with nothing running.
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
  const UpdateSummary summary = mutable_g_->apply_updates(batch);
  for (auto& session : sessions_) session->absorb_update(summary);
  return summary;
}

void SessionPool::drain() {
  std::unique_lock lock{mu_};
  closed_ = true;
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::vector<SessionPool::SolveOutcome> SessionPool::solve_each(
    std::span<const MinCutRequest> reqs) {
  InflightGuard inflight{*this};
  std::vector<SolveOutcome> outcomes(reqs.size());
  std::atomic<std::size_t> next{0};

  // Work stealing by atomic index: each worker owns one session and pulls
  // the next unclaimed request.  Which session serves which request is
  // timing-dependent, but irrelevant to the output (header).
  const auto worker = [&](Session& session) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= reqs.size()) return;
      try {
        outcomes[i].report = session.solve(reqs[i]);
      } catch (...) {
        outcomes[i].error = std::current_exception();
      }
    }
  };

  const std::size_t workers = std::min(sessions_.size(), reqs.size());
  if (workers <= 1) {
    if (!reqs.empty()) worker(*sessions_.front());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    try {
      for (std::size_t s = 0; s < workers; ++s)
        threads.emplace_back(worker, std::ref(*sessions_[s]));
    } catch (...) {
      // Thread-resource exhaustion mid-spawn: drain what did start
      // (workers exit once `next` runs past the batch) before
      // propagating, or the vector of joinable threads would terminate().
      next.store(reqs.size(), std::memory_order_relaxed);
      for (std::thread& t : threads) t.join();
      throw;
    }
    for (std::thread& t : threads) t.join();
  }
  return outcomes;
}

std::vector<MinCutReport> SessionPool::solve_many(
    std::span<const MinCutRequest> reqs) {
  std::vector<SolveOutcome> outcomes = solve_each(reqs);
  for (SolveOutcome& o : outcomes)
    if (o.error) std::rethrow_exception(o.error);
  std::vector<MinCutReport> reports;
  reports.reserve(outcomes.size());
  for (SolveOutcome& o : outcomes) reports.push_back(std::move(o.report));
  return reports;
}

std::size_t SessionPool::queries_served() const {
  std::size_t total = 0;
  for (const auto& s : sessions_) total += s->queries_served();
  return total;
}

std::size_t SessionPool::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& s : sessions_) total += s->memory_bytes();
  return total;
}

}  // namespace dmc
