// The paper's (1+ε)-approximation in Õ((√n + D)/poly(ε)) rounds:
// Karger's skeleton sampling reduces the minimum cut to Õ(1/ε²), the tree
// packing runs on the skeleton (polylog trees suffice), and every candidate
// cut is evaluated with ORIGINAL weights via Theorem 2.1 — so the output is
// a genuine cut of G with value ≤ (1+ε)·λ w.h.p.
#pragma once

#include <cstdint>

#include "core/exact_mincut.h"
#include "graph/graph.h"

namespace dmc {

class Network;
struct SessionInfra;

struct ApproxMinCutOptions {
  double eps{0.2};
  std::uint64_t seed{1};
  std::size_t trees_factor{4};  ///< trees = factor · ⌈log₂ n⌉ per attempt
};

struct DistApproxResult {
  DistMinCutResult result;
  double p{1.0};         ///< final sampling probability
  Weight lambda_hat{0};  ///< final guess
  bool sampled{false};   ///< false ⇒ p clamped to 1, exact path taken
  std::size_t attempts{0};
};

/// Session-parameterized runner over an existing (pristine or reset)
/// network; see exact_mincut.h for the pattern (incl. the `warm` infra).
[[nodiscard]] DistApproxResult approx_min_cut_dist(
    Network& net, const ApproxMinCutOptions& opt = {},
    const SessionInfra* warm = nullptr);

/// One-shot convenience over a temporary single-use dmc::Session.
[[nodiscard]] DistApproxResult approx_min_cut_dist(
    const Graph& g, const ApproxMinCutOptions& opt = {});

}  // namespace dmc
