#include "core/lca_rho.h"

#include <algorithm>

#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/pairwise_exchange.h"

namespace dmc {

namespace {
/// "No L answer" sentinel in the narrow (32-bit) exchange: node ids stay
/// below kNoNode, so the all-ones pattern is free.
constexpr Word kNone32 = 0xffffffffull;
}

std::vector<Weight> compute_rho(Schedule& sched, const TreeView& bfs,
                                const FragmentStructure& fs,
                                const AncestorData& ad, const TfPrime& tfp,
                                std::span<const Weight> weights) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(weights.size() == g.num_edges());

  // --- pairwise exchange: per edge, what the peer needs for the LCA ---
  // Everything shipped is a node id, so the exchange runs narrow (32-bit
  // storage): the dominant O(√n)-words-per-edge buffer costs 4 bytes per
  // word on each side instead of 8, in one flat CSR block.
  PairwiseExchangeProtocol::Lists outgoing{g, /*narrow=*/true};
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const std::uint32_t peer_frag = fs.port_frag_idx[v][p];
      if (peer_frag == fs.frag_idx[v]) {
        // Case 1: only the keeper endpoint (min id — the one that will
        // materialize the ⟨z⟩ message) computes the LCA, so only the
        // other endpoint ships its chain; this halves the dominant
        // O(√n)-per-edge buffer.  Shipped shallowest first, ending with
        // the sender itself.
        const NodeId peer = g.ports(v)[p].peer;
        if (v > peer) {
          for (const NodeId a : ad.own_chain(v)) outgoing.add(v, p, a);
          outgoing.add(v, p, v);
        }
      } else {
        // Cases 2/3: the L answer for the peer's fragment + a(v).
        const NodeId la = ad.lowest_anc(v, peer_frag);
        outgoing.add(v, p, la == kNoNode ? kNone32 : Word{la});
        outgoing.add(v, p, tfp.lowest_tf[v]);
      }
    }
  }
  PairwiseExchangeProtocol px{g, std::move(outgoing)};
  sched.run(px);

  // --- local LCA per incident edge; create type (i)/(ii) items ---
  std::vector<std::vector<AggItem>> type1(n), type2(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const Port port = g.ports(v)[p];
      const NodeId peer = port.peer;
      const Weight w = weights[port.edge];
      const std::uint32_t fv = fs.frag_idx[v];
      const std::uint32_t fp = fs.port_frag_idx[v][p];

      NodeId z = kNoNode;
      std::uint32_t frag_z = kNoFrag;
      if (fp == fv) {
        // Case 1: the keeper compares the peer's root-anchored chain with
        // its own; the non-keeper shipped its chain and is done.
        if (v > peer) continue;
        const auto in = px.received(v, p);
        const auto mine = ad.own_chain(v);
        const std::size_t limit = std::min(mine.size() + 1, in.size());
        std::size_t i = 0;
        while (i < limit) {
          const NodeId m = i < mine.size() ? mine[i] : v;
          if (m != static_cast<NodeId>(in[i])) break;
          ++i;
        }
        DMC_ASSERT_MSG(i > 0, "same-fragment chains must share the root");
        z = i - 1 < mine.size() ? mine[i - 1] : v;
        frag_z = fv;
      } else if (fs.tf_is_ancestor(fv, fp)) {
        // Case 3 at v: the LCA lies in v's own fragment.
        z = ad.lowest_anc(v, fp);
        DMC_ASSERT_MSG(z != kNoNode,
                       "L(v) must contain a T_F-descendant fragment");
        frag_z = fv;
      } else if (fs.tf_is_ancestor(fp, fv)) {
        // Case 3 at the peer: it shipped L(peer)[frag(v)].
        const auto in = px.received(v, p);
        DMC_ASSERT(in.size() == 2);
        DMC_ASSERT_MSG(in[0] != kNone32, "peer's L answer must exist");
        z = static_cast<NodeId>(in[0]);
        frag_z = fp;
      } else {
        // Case 2: z is a merging node, the T'_F LCA of the two anchors.
        const auto in = px.received(v, p);
        DMC_ASSERT(in.size() == 2);
        const NodeId a_peer = static_cast<NodeId>(in[1]);
        z = tfp.lca(tfp.lowest_tf[v], a_peer);
        const auto fit = tfp.frag_of.find(z);
        DMC_ASSERT(fit != tfp.frag_of.end());
        frag_z = fit->second;
        DMC_ASSERT_MSG(frag_z != fv && frag_z != fp,
                       "case-2 LCA must lie outside both fragments");
      }

      // Exactly one endpoint materializes the ⟨z⟩ message.
      if (frag_z == fv || frag_z == fp) {
        // Type (ii): keeper = the endpoint inside z's fragment (min id if
        // both are).
        const bool v_inside = frag_z == fv;
        const bool peer_inside = frag_z == fp;
        const bool keeper =
            v_inside && (!peer_inside || v < peer);
        if (keeper) type2[v].push_back(AggItem{z, {w, 0, 0}});
      } else {
        // Type (i): contributor = the smaller endpoint id.
        if (v < peer) type1[v].push_back(AggItem{z, {w, 0, 0}});
      }
    }
  }

  // --- type (i): global keyed sums over the BFS tree ---
  // Every node reads only its own key from the delivered list, so the
  // keep filter drops the O(n·k) replication to one item per node.
  AggOptions opt1{AggOp::kSum, /*deliver_all=*/true, false, false};
  opt1.keep = [](NodeId v, Word key) { return key == v; };
  AggregateBroadcastProtocol sum1{g, bfs, opt1, std::move(type1)};
  sched.run(sum1);

  // --- type (ii): absorb-convergecast up the fragment trees ---
  AggregateBroadcastProtocol sum2{
      g, fs.frag_forest,
      AggOptions{AggOp::kSum, false, false, /*absorb=*/true},
      std::move(type2)};
  sched.run(sum2);

  std::vector<Weight> rho(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& global = sum1.items(v);  // identical everywhere; read own
    const auto it = std::lower_bound(
        global.begin(), global.end(), Word{v},
        [](const AggItem& a, Word key) { return a.key < key; });
    if (it != global.end() && it->key == v) rho[v] += it->p[0];
    for (const AggItem& a : sum2.absorbed(v)) {
      DMC_ASSERT(a.key == v);
      rho[v] += a.p[0];
    }
    // Nothing may leak past a fragment root in absorb mode.
    if (fs.is_frag_root(v))
      DMC_ASSERT_MSG(sum2.items(v).empty(),
                     "type-(ii) message escaped its fragment");
  }
  return rho;
}

}  // namespace dmc
