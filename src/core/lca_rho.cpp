#include "core/lca_rho.h"

#include <algorithm>

#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/pairwise_exchange.h"

namespace dmc {

namespace {
constexpr Word kNone64 = ~Word{0};
}

std::vector<Weight> compute_rho(Schedule& sched, const TreeView& bfs,
                                const FragmentStructure& fs,
                                const AncestorData& ad, const TfPrime& tfp,
                                std::span<const Weight> weights) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(weights.size() == g.num_edges());

  // --- pairwise exchange: per edge, what the peer needs for the LCA ---
  std::vector<std::vector<std::vector<Word>>> outgoing(n);
  for (NodeId v = 0; v < n; ++v) {
    outgoing[v].resize(g.degree(v));
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const std::uint32_t peer_frag = fs.port_frag_idx[v][p];
      std::vector<Word>& out = outgoing[v][p];
      if (peer_frag == fs.frag_idx[v]) {
        // Case 1: ship the in-fragment ancestor chain, shallowest first,
        // ending with v itself.
        out.reserve(ad.own_chain[v].size() + 1);
        for (const AncestorEntry& e : ad.own_chain[v]) out.push_back(e.node);
        out.push_back(v);
      } else {
        // Cases 2/3: the L answer for the peer's fragment + a(v).
        const auto it = ad.lowest_anc[v].find(peer_frag);
        out.push_back(it == ad.lowest_anc[v].end() ? kNone64
                                                   : Word{it->second});
        out.push_back(tfp.lowest_tf[v]);
      }
    }
  }
  PairwiseExchangeProtocol px{g, std::move(outgoing)};
  sched.run(px);

  // --- local LCA per incident edge; create type (i)/(ii) items ---
  std::vector<std::vector<AggItem>> type1(n), type2(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint32_t p = 0; p < g.degree(v); ++p) {
      const Port port = g.ports(v)[p];
      const NodeId peer = port.peer;
      const Weight w = weights[port.edge];
      const std::uint32_t fv = fs.frag_idx[v];
      const std::uint32_t fp = fs.port_frag_idx[v][p];
      const std::vector<Word>& in = px.received(v, p);

      NodeId z = kNoNode;
      std::uint32_t frag_z = kNoFrag;
      if (fp == fv) {
        // Case 1: longest common prefix of the two root-anchored chains.
        std::vector<NodeId> mine;
        mine.reserve(ad.own_chain[v].size() + 1);
        for (const AncestorEntry& e : ad.own_chain[v]) mine.push_back(e.node);
        mine.push_back(v);
        const std::size_t limit = std::min(mine.size(), in.size());
        std::size_t i = 0;
        while (i < limit && mine[i] == static_cast<NodeId>(in[i])) ++i;
        DMC_ASSERT_MSG(i > 0, "same-fragment chains must share the root");
        z = mine[i - 1];
        frag_z = fv;
      } else if (fs.tf_is_ancestor(fv, fp)) {
        // Case 3 at v: the LCA lies in v's own fragment.
        const auto it = ad.lowest_anc[v].find(fp);
        DMC_ASSERT_MSG(it != ad.lowest_anc[v].end(),
                       "L(v) must contain a T_F-descendant fragment");
        z = it->second;
        frag_z = fv;
      } else if (fs.tf_is_ancestor(fp, fv)) {
        // Case 3 at the peer: it shipped L(peer)[frag(v)].
        DMC_ASSERT(in.size() == 2);
        DMC_ASSERT_MSG(in[0] != kNone64, "peer's L answer must exist");
        z = static_cast<NodeId>(in[0]);
        frag_z = fp;
      } else {
        // Case 2: z is a merging node, the T'_F LCA of the two anchors.
        DMC_ASSERT(in.size() == 2);
        const NodeId a_peer = static_cast<NodeId>(in[1]);
        z = tfp.lca(tfp.lowest_tf[v], a_peer);
        const auto fit = tfp.frag_of.find(z);
        DMC_ASSERT(fit != tfp.frag_of.end());
        frag_z = fit->second;
        DMC_ASSERT_MSG(frag_z != fv && frag_z != fp,
                       "case-2 LCA must lie outside both fragments");
      }

      // Exactly one endpoint materializes the ⟨z⟩ message.
      if (frag_z == fv || frag_z == fp) {
        // Type (ii): keeper = the endpoint inside z's fragment (min id if
        // both are).
        const bool v_inside = frag_z == fv;
        const bool peer_inside = frag_z == fp;
        const bool keeper =
            v_inside && (!peer_inside || v < peer);
        if (keeper) type2[v].push_back(AggItem{z, {w, 0, 0}});
      } else {
        // Type (i): contributor = the smaller endpoint id.
        if (v < peer) type1[v].push_back(AggItem{z, {w, 0, 0}});
      }
    }
  }

  // --- type (i): global keyed sums over the BFS tree ---
  AggregateBroadcastProtocol sum1{
      g, bfs, AggOptions{AggOp::kSum, /*deliver_all=*/true, false, false},
      std::move(type1)};
  sched.run(sum1);

  // --- type (ii): absorb-convergecast up the fragment trees ---
  AggregateBroadcastProtocol sum2{
      g, fs.frag_forest,
      AggOptions{AggOp::kSum, false, false, /*absorb=*/true},
      std::move(type2)};
  sched.run(sum2);

  std::vector<Weight> rho(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& global = sum1.items(v);  // identical everywhere; read own
    const auto it = std::lower_bound(
        global.begin(), global.end(), Word{v},
        [](const AggItem& a, Word key) { return a.key < key; });
    if (it != global.end() && it->key == v) rho[v] += it->p[0];
    for (const AggItem& a : sum2.absorbed(v)) {
      DMC_ASSERT(a.key == v);
      rho[v] += a.p[0];
    }
    // Nothing may leak past a fragment root in absorb mode.
    if (fs.is_frag_root(v))
      DMC_ASSERT_MSG(sum2.items(v).empty(),
                     "type-(ii) message escaped its fragment");
  }
  return rho;
}

}  // namespace dmc
