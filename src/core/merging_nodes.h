// Step 4 of the paper: identify merging nodes (nodes with ≥ 2 children
// whose branches contain whole fragments) and build the tree T'_F whose
// nodes are the fragment roots and the merging nodes, with parent = lowest
// T'_F ancestor in T.  T'_F has O(√n) nodes and is made global knowledge.
//
// Protocols: a 1-round child-bit exchange, then two O(√n + D)
// AggregateBroadcasts over the BFS tree (merging-node ids; T'_F edges).
#pragma once

#include <map>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "core/ancestors.h"
#include "dist/tree_partition.h"

namespace dmc {

struct TfPrime {
  /// Global knowledge (identical at every node after the broadcasts).
  /// Ordered maps: T'_F is global knowledge that downstream passes may
  /// iterate, so its containers carry a deterministic order by contract.
  std::vector<NodeId> nodes;                    ///< sorted T'_F node ids
  std::map<NodeId, NodeId> parent;              ///< child → parent (root → kNoNode)
  std::map<NodeId, std::uint32_t> frag_of;      ///< T'_F node → fragment

  /// Local knowledge.
  std::vector<std::uint8_t> is_merging;  ///< per node
  std::vector<NodeId> lowest_tf;         ///< a(v): lowest T'_F ancestor-or-self

  [[nodiscard]] bool contains(NodeId v) const {
    return parent.count(v) > 0;
  }

  /// LCA of two T'_F nodes within T'_F (local walk over the global tree).
  [[nodiscard]] NodeId lca(NodeId a, NodeId b) const;
};

[[nodiscard]] TfPrime compute_merging_nodes(Schedule& sched,
                                            const TreeView& bfs,
                                            const FragmentStructure& fs,
                                            const AncestorData& ad);

}  // namespace dmc
