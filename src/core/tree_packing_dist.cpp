#include "core/tree_packing_dist.h"

#include "core/one_respect.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"

namespace dmc {

namespace {
/// Disabled edges sort after every enabled edge: enabled ratios are at most
/// load/1 < 2^24 (the tree cap), and 2^25/1 exceeds that, while keeping all
/// cross products below 2^57 (no overflow with w ≤ 2^32).
constexpr std::uint64_t kDisabledBump = 1ull << 25;
}  // namespace

DistPackingResult dist_tree_packing(Schedule& sched, const TreeView& bfs,
                                    NodeId leader,
                                    const DistPackingOptions& opt) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(n >= 2);
  DMC_REQUIRE(opt.max_trees >= 1 && opt.max_trees < (1u << 20));

  std::vector<Weight> eval(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    eval[e] = opt.eval_weights ? (*opt.eval_weights)[e] : g.edge(e).w;

  // Per-edge load counters (conceptually one copy at each endpoint; they
  // are updated from locally known tree membership so both agree).
  std::vector<std::uint64_t> loads(g.num_edges(), 0);

  DistPackingResult out;
  out.in_cut.assign(n, false);
  std::size_t since_improvement = 0;

  for (std::size_t i = 0; i < opt.max_trees; ++i) {
    // Keys for this tree.
    std::vector<EdgeKey> keys(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const bool enabled = !opt.edge_enabled || (*opt.edge_enabled)[e];
      const Weight pw = opt.packing_weights
                            ? std::max<Weight>(1, (*opt.packing_weights)[e])
                            : g.edge(e).w;
      keys[e] = EdgeKey{enabled ? loads[e] : loads[e] + kDisabledBump,
                        enabled ? pw : Weight{1}, e};
    }

    const DistMstResult mst = ghs_mst(sched, bfs, keys);
    if (opt.edge_enabled) {
      for (EdgeId e = 0; e < g.num_edges(); ++e)
        DMC_ASSERT_MSG(!mst.tree_edge[e] || (*opt.edge_enabled)[e],
                       "packing tree used a disabled edge — "
                       "skeleton is disconnected");
    }
    const FragmentStructure fs =
        build_fragment_structure(sched, bfs, leader, mst);
    const OneRespectResult r = one_respect_min_cut(sched, bfs, fs, eval);

    // Update loads from local tree membership.
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (mst.tree_edge[e]) ++loads[e];

    ++out.trees_packed;
    out.fragments_last = fs.k;
    if (r.c_star < out.c_star) {
      out.c_star = r.c_star;
      out.v_star = r.v_star;
      out.tree_of_best = i;
      out.in_cut = r.in_cut;
      since_improvement = 0;
    } else if (opt.patience > 0 && ++since_improvement >= opt.patience) {
      break;
    }
    if (opt.stop_at_zero && out.c_star == 0) break;
  }
  return out;
}

}  // namespace dmc
