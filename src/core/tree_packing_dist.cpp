#include "core/tree_packing_dist.h"

#include "core/one_respect.h"
#include "core/warm.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"

namespace dmc {

namespace {
/// Disabled edges sort after every enabled edge: enabled ratios are at most
/// load/1 < 2^24 (the tree cap), and 2^25/1 exceeds that, while keeping all
/// cross products below 2^57 (no overflow with w ≤ 2^32).
constexpr std::uint64_t kDisabledBump = 1ull << 25;
}  // namespace

DistPackingResult dist_tree_packing(Schedule& sched, const TreeView& bfs,
                                    NodeId leader,
                                    const DistPackingOptions& opt) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  const std::size_t n = g.num_nodes();
  DMC_REQUIRE(n >= 2);
  DMC_REQUIRE(opt.max_trees >= 1 && opt.max_trees < (1u << 20));

  // Per-solve scratch from the network's arena (rewound by reset()):
  // evaluation weights, load counters, and one key table rewritten per
  // tree — a warm query's packing loop allocates nothing here.
  Arena& arena = net.arena();
  std::span<Weight> eval = arena.alloc<Weight>(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    eval[e] = opt.eval_weights ? (*opt.eval_weights)[e] : g.edge(e).w;

  // Per-edge load counters (conceptually one copy at each endpoint; they
  // are updated from locally known tree membership so both agree).
  std::span<std::uint64_t> loads = arena.alloc<std::uint64_t>(g.num_edges());

  DistPackingResult out;
  out.in_cut.assign(n, false);
  std::size_t since_improvement = 0;
  std::size_t first_tree = 0;

  // Warm path: tree 1 with default weights is a pure function of the
  // graph — replay the cached MST + fragments + sweep (stats included)
  // and enter the loop at tree 2 with the loads it left behind.
  if (opt.warm != nullptr && opt.warm->has_packing_tree &&
      opt.warm->has_first_sweep && !opt.eval_weights && !opt.edge_enabled &&
      !opt.packing_weights) {
    const SessionInfra& infra = *opt.warm;
    infra.packing_first.delta.replay(net, "packing tree 1");
    infra.first_sweep_delta.replay(net, "packing sweep 1");
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (infra.packing_first.mst.tree_edge[e]) ++loads[e];
    ++out.trees_packed;
    out.fragments_last = infra.packing_first.fs.k;
    out.c_star = infra.first_sweep.c_star;
    out.v_star = infra.first_sweep.v_star;
    out.tree_of_best = 0;
    out.in_cut = infra.first_sweep.in_cut;
    if (opt.stop_at_zero && out.c_star == 0) return out;
    first_tree = 1;
  }

  std::span<EdgeKey> keys = arena.alloc<EdgeKey>(g.num_edges());
  for (std::size_t i = first_tree; i < opt.max_trees; ++i) {
    // Keys for this tree.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const bool enabled = !opt.edge_enabled || (*opt.edge_enabled)[e];
      const Weight pw = opt.packing_weights
                            ? std::max<Weight>(1, (*opt.packing_weights)[e])
                            : g.edge(e).w;
      keys[e] = EdgeKey{enabled ? loads[e] : loads[e] + kDisabledBump,
                        enabled ? pw : Weight{1}, e};
    }

    const DistMstResult mst = ghs_mst(sched, bfs, keys);
    if (opt.edge_enabled) {
      for (EdgeId e = 0; e < g.num_edges(); ++e)
        DMC_ASSERT_MSG(!mst.tree_edge[e] || (*opt.edge_enabled)[e],
                       "packing tree used a disabled edge — "
                       "skeleton is disconnected");
    }
    const FragmentStructure fs =
        build_fragment_structure(sched, bfs, leader, mst);
    const OneRespectResult r = one_respect_min_cut(sched, bfs, fs, eval);

    // Update loads from local tree membership.
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (mst.tree_edge[e]) ++loads[e];

    ++out.trees_packed;
    out.fragments_last = fs.k;
    if (r.c_star < out.c_star) {
      out.c_star = r.c_star;
      out.v_star = r.v_star;
      out.tree_of_best = i;
      out.in_cut = r.in_cut;
      since_improvement = 0;
    } else if (opt.patience > 0 && ++since_improvement >= opt.patience) {
      break;
    }
    if (opt.stop_at_zero && out.c_star == 0) break;
  }
  return out;
}

}  // namespace dmc
