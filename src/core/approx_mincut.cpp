#include "core/approx_mincut.h"

#include "central/skeleton.h"
#include "congest/network.h"
#include "congest/schedule.h"
#include "core/session.h"
#include "core/skeleton_dist.h"
#include "core/tree_packing_dist.h"
#include "core/warm.h"
#include "util/bit_math.h"
#include "util/prng.h"

namespace dmc {

DistApproxResult approx_min_cut_dist(Network& net,
                                     const ApproxMinCutOptions& opt,
                                     const SessionInfra* warm) {
  const Graph& g = net.graph();
  DMC_REQUIRE(g.num_nodes() >= 2);
  DMC_REQUIRE(opt.eps > 0.0 && opt.eps <= 1.0);
  const std::size_t n = g.num_nodes();

  Schedule sched{net};
  SessionInfra storage;
  const SessionInfra& infra = acquire_session_infra(sched, warm, storage);
  const TreeView& bfs = infra.bfs;
  const NodeId leader = infra.leader;

  // λ̂₀ = global minimum weighted degree (one converge/broadcast, replayed
  // from the warm cache when the session carries it).
  Weight lambda_hat = acquire_min_degree(sched, bfs, warm);

  DistApproxResult out;
  const std::size_t trees =
      opt.trees_factor * std::max<std::size_t>(1, ceil_log2(n));

  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    ++out.attempts;
    const double p = skeleton_probability(n, opt.eps, lambda_hat);
    if (p >= 1.0) {
      // Small cut: the exact packing within the same simulation.
      DistPackingOptions popt;
      popt.max_trees = 48;
      popt.patience = 12;
      popt.warm = warm;
      const DistPackingResult packing =
          dist_tree_packing(sched, bfs, leader, popt);
      out.result.value = packing.c_star;
      out.result.v_star = packing.v_star;
      out.result.side = packing.in_cut;
      out.result.trees_packed = packing.trees_packed;
      out.result.fragments = packing.fragments_last;
      out.result.stats = net.stats();
      out.p = 1.0;
      out.lambda_hat = lambda_hat;
      out.sampled = false;
      return out;
    }

    const DistSkeleton sk = sample_skeleton_dist(
        g, p, derive_seed(opt.seed, 0x6473ull, attempt));
    if (!skeleton_connected_dist(sched, bfs, leader, sk.enabled)) {
      lambda_hat = std::max<Weight>(1, lambda_hat / 4);
      continue;
    }

    DistPackingOptions popt;
    popt.max_trees = trees;
    popt.patience = 0;  // fixed tree count on the skeleton
    popt.edge_enabled = &sk.enabled;
    popt.packing_weights = &sk.sampled_w;
    const DistPackingResult packing =
        dist_tree_packing(sched, bfs, leader, popt);

    // Guess validation: the found value is an upper bound on λ.  If it is
    // far below the guess, the skeleton was too sparse for the target
    // accuracy — tighten and retry.
    if (packing.c_star * 2 < lambda_hat) {
      lambda_hat = std::max<Weight>(1, packing.c_star);
      continue;
    }
    out.result.value = packing.c_star;
    out.result.v_star = packing.v_star;
    out.result.side = packing.in_cut;
    out.result.trees_packed = packing.trees_packed;
    out.result.fragments = packing.fragments_last;
    out.result.stats = net.stats();
    out.p = p;
    out.lambda_hat = lambda_hat;
    out.sampled = true;
    return out;
  }
  throw InvariantError{"approx_min_cut_dist: guess loop did not converge"};
}

DistApproxResult approx_min_cut_dist(const Graph& g,
                                     const ApproxMinCutOptions& opt) {
  Session session{g};
  MinCutRequest req;
  req.algo = Algo::kApprox;
  req.eps = opt.eps;
  req.seed = opt.seed;
  req.trees_factor = opt.trees_factor;
  return to_approx_result(session.solve(req));
}

}  // namespace dmc
