#include "core/warm.h"

#include <string>
#include <utility>

#include "congest/network.h"
#include "congest/primitives/convergecast.h"
#include "congest/primitives/leader_bfs.h"
#include "graph/mst.h"
#include "util/mem.h"

namespace dmc {

namespace {

/// The shared opener of approx_mincut and gk_estimator: every node offers
/// (weighted_degree, id), the tree takes the lexicographic minimum and
/// broadcasts it back down.
Weight run_min_degree_convergecast(Schedule& sched, const TreeView& bfs) {
  const Graph& g = sched.network().graph();
  const std::size_t n = g.num_nodes();
  std::vector<CValue> init(n);
  for (NodeId v = 0; v < n; ++v) init[v] = CValue{g.weighted_degree(v), v};
  ConvergecastProtocol cc{g, bfs, CombineOp::kMin, std::move(init),
                          /*broadcast_result=*/true};
  sched.run(cc);
  return cc.tree_value(0).w0;
}

/// Runs ghs_mst + build_fragment_structure under `keys` and captures the
/// scaffold with its stats delta.
TreeScaffold build_scaffold(Schedule& sched, const SessionInfra& infra,
                            const std::vector<EdgeKey>& keys) {
  Network& net = sched.network();
  TreeScaffold out;
  const CongestStats before = net.stats();
  out.mst = ghs_mst(sched, infra.bfs, keys);
  out.fs = build_fragment_structure(sched, infra.bfs, infra.leader, out.mst);
  out.delta = PhaseDelta::capture(before, net.stats());
  return out;
}

}  // namespace

PhaseDelta PhaseDelta::capture(const CongestStats& before,
                               const CongestStats& after) {
  DMC_REQUIRE(after.per_protocol.size() >= before.per_protocol.size());
  PhaseDelta d;
  d.rounds = after.rounds - before.rounds;
  d.barrier_rounds = after.barrier_rounds - before.barrier_rounds;
  d.messages = after.messages - before.messages;
  d.words = after.words - before.words;
  d.node_steps = after.node_steps - before.node_steps;
  d.max_words = after.max_words_per_message;
  d.max_edge_msgs = after.max_messages_edge_round;
  d.phases.assign(after.per_protocol.begin() +
                      static_cast<std::ptrdiff_t>(before.per_protocol.size()),
                  after.per_protocol.end());
  return d;
}

void PhaseDelta::replay(Network& net, const char* what) const {
  CongestStats& s = net.stats();
  s.rounds += rounds;
  s.barrier_rounds += barrier_rounds;
  s.messages += messages;
  s.words += words;
  s.node_steps += node_steps;
  s.max_words_per_message = std::max(s.max_words_per_message, max_words);
  s.max_messages_edge_round =
      std::max(s.max_messages_edge_round, max_edge_msgs);
  s.per_protocol.insert(s.per_protocol.end(), phases.begin(), phases.end());

  // A replayed stage executes no rounds, so an installed observer (in
  // practice the Session's budget guard) gets one checkpoint with the
  // advanced cumulative stats — any budget the cold path would have
  // exhausted DURING the stage cancels here instead.
  RoundObserver* obs = net.observer();
  if (obs != nullptr && !obs->on_round(s))
    throw CancelledError{std::string{what} +
                         " replay cancelled by observer after " +
                         std::to_string(s.total_rounds()) + " total rounds"};
}

SessionInfra build_session_infra(Schedule& sched) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  DMC_REQUIRE_MSG(net.stats().rounds == 0 && net.stats().per_protocol.empty(),
                  "session infra must be built on a pristine network");

  // NOTE: building under an active FaultPlan is legitimate — this IS the
  // cold path's bootstrap, and it must run live so the plan's faults hit
  // it (the crash profile rejects right here, in leader election).  Only
  // REPLAYING a cached build is guarded below: a recorded bootstrap
  // predates the plan's perturbations.

  SessionInfra infra;
  LeaderBfsProtocol lb{g};
  sched.run_uncharged(lb);
  infra.leader = lb.leader();
  infra.bfs = lb.tree_view(g);
  infra.height = infra.bfs.height(g);
  sched.set_barrier_height(infra.height);
  sched.charge_barrier();
  infra.bootstrap = net.stats();
  return infra;
}

void replay_session_infra(Schedule& sched, const SessionInfra& infra) {
  Network& net = sched.network();
  DMC_REQUIRE_MSG(net.stats().rounds == 0 && net.stats().per_protocol.empty(),
                  "session infra replayed onto a non-pristine network");
  DMC_REQUIRE_MSG(infra.bfs.num_nodes() == net.graph().num_nodes(),
                  "session infra belongs to a different graph");
  DMC_REQUIRE_MSG(!net.fault_plan_active(),
                  "session infra cannot be replayed under an active "
                  "FaultPlan (" << net.fault_plan()->describe()
                      << ") — fault-injected sessions must solve cold");
  net.stats() = infra.bootstrap;
  sched.set_barrier_height(infra.height);

  RoundObserver* obs = net.observer();
  if (obs != nullptr && !obs->on_round(net.stats()))
    throw CancelledError{std::string{"bootstrap replay cancelled by "
                                     "observer after "} +
                         std::to_string(net.stats().total_rounds()) +
                         " total rounds"};
}

const SessionInfra& acquire_session_infra(Schedule& sched,
                                          const SessionInfra* warm,
                                          SessionInfra& storage) {
  if (warm != nullptr) {
    replay_session_infra(sched, *warm);
    return *warm;
  }
  storage = build_session_infra(sched);
  return storage;
}

void extend_session_infra_min_degree(Schedule& sched, SessionInfra& infra) {
  DMC_REQUIRE_MSG(sched.network().stats() == infra.bootstrap,
                  "min-degree stage must extend the post-bootstrap state");
  const CongestStats before = sched.network().stats();
  infra.min_degree = run_min_degree_convergecast(sched, infra.bfs);
  infra.min_degree_delta =
      PhaseDelta::capture(before, sched.network().stats());
  infra.has_min_degree = true;
}

void extend_session_infra_su_tree(Schedule& sched, SessionInfra& infra) {
  Network& net = sched.network();
  DMC_REQUIRE_MSG(net.stats() == infra.bootstrap,
                  "tree stage must extend the post-bootstrap state");
  // Su's packing tree: the MST under the plain weight order.  The clean
  // base matters: a delta's max fields are post-stage values merged via
  // max on replay, so the capture base must be a prefix of the replaying
  // driver's own sequence — the bootstrap is.
  infra.su_tree = build_scaffold(sched, infra, weight_keys(net.graph()));
  infra.has_su_tree = true;
}

void extend_session_infra_packing_tree(Schedule& sched, SessionInfra& infra) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  DMC_REQUIRE_MSG(net.stats() == infra.bootstrap,
                  "tree stage must extend the post-bootstrap state");

  // Tree 1 of the greedy packing: zero loads over graph weights — ratio 0
  // for every enabled edge, so the id tiebreak decides.  Deterministic
  // per graph, like everything cached here — and weight-independent, so
  // a reweight-only update keeps this stage (reweight_session_infra).
  std::vector<EdgeKey> first_keys(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    first_keys[e] = EdgeKey{0, g.edge(e).w, e};
  infra.packing_first = build_scaffold(sched, infra, first_keys);
  infra.has_packing_tree = true;
}

void extend_session_infra_first_sweep(Schedule& sched, SessionInfra& infra) {
  Network& net = sched.network();
  const Graph& g = net.graph();
  DMC_REQUIRE_MSG(net.stats() == infra.bootstrap,
                  "tree stage must extend the post-bootstrap state");
  DMC_REQUIRE_MSG(infra.has_packing_tree,
                  "the 1-respect sweep stage extends the packing scaffold");

  // Tree 1's 1-respect sweep under original weights — the whole first
  // iteration of a default-weights packing run.  Built over the replayed
  // scaffold delta, so the captured delta composes exactly as the warm
  // driver replays the two stages in sequence (protocols are insensitive
  // to absolute round numbers — the warm-replay property of DESIGN.md).
  infra.packing_first.delta.replay(net, "packing scaffold");
  std::vector<Weight> eval(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) eval[e] = g.edge(e).w;
  const CongestStats before = net.stats();
  infra.first_sweep =
      one_respect_min_cut(sched, infra.bfs, infra.packing_first.fs, eval);
  infra.first_sweep_delta = PhaseDelta::capture(before, net.stats());
  infra.has_first_sweep = true;
}

void reweight_session_infra(SessionInfra& infra, const Graph& g) {
  DMC_REQUIRE_MSG(infra.bfs.num_nodes() == g.num_nodes(),
                  "reweight invalidation on a different graph's infra");
  // Kept: bootstrap (topology-only) and the packing scaffold (id-ordered
  // MST — see extend_session_infra_packing_tree).  Repaired: the
  // min-degree VALUE (its convergecast delta is value-independent).
  // Dropped: the weight-ordered su_tree and the 1-respect sweep.
  if (infra.has_min_degree) infra.min_degree = g.min_weighted_degree();
  infra.has_su_tree = false;
  infra.su_tree = TreeScaffold{};
  infra.has_first_sweep = false;
  infra.first_sweep = OneRespectResult{};
  infra.first_sweep_delta = PhaseDelta{};
}

Weight acquire_min_degree(Schedule& sched, const TreeView& bfs,
                          const SessionInfra* warm) {
  if (warm != nullptr && warm->has_min_degree) {
    warm->min_degree_delta.replay(sched.network(), "min-degree");
    return warm->min_degree;
  }
  return run_min_degree_convergecast(sched, bfs);
}

// --- registry byte accounting (util/mem.h conventions) ---------------------

namespace {

std::size_t mst_bytes(const DistMstResult& r) {
  return vec_bytes(r.tree_edge) + vec_bytes(r.phase1_edge) +
         vec_bytes(r.fragment_of) + vec_bytes(r.inter_edges);
}

std::size_t fragment_bytes(const FragmentStructure& fs) {
  return fs.t_view.memory_bytes() + fs.frag_forest.memory_bytes() +
         vec_bytes(fs.parent_port_T) + vec_bytes(fs.frag_idx) +
         vec_bytes(fs.depth_in_frag) + vec_bytes(fs.depth_T) +
         vec_bytes(fs.port_frag_idx) + vec_bytes(fs.frag_root_node) +
         vec_bytes(fs.frag_parent) + vec_bytes(fs.frag_parent_eid) +
         vec_bytes(fs.tf_depth) + vec_bytes(fs.tf_tin) + vec_bytes(fs.tf_tout);
}

std::size_t one_respect_bytes(const OneRespectResult& r) {
  return vec_bytes(r.delta_down) + vec_bytes(r.rho_down) +
         vec_bytes(r.cut_down) + vec_bytes(r.in_cut);
}

}  // namespace

std::size_t PhaseDelta::memory_bytes() const {
  std::size_t total = vec_bytes(phases);
  for (const ProtocolStats& p : phases) total += str_bytes(p.name);
  return total;
}

std::size_t TreeScaffold::memory_bytes() const {
  return mst_bytes(mst) + fragment_bytes(fs) + delta.memory_bytes();
}

std::size_t SessionInfra::memory_bytes() const {
  std::size_t total = bfs.memory_bytes() + bootstrap.memory_bytes() +
                      min_degree_delta.memory_bytes();
  if (has_su_tree) total += su_tree.memory_bytes();
  if (has_packing_tree) total += packing_first.memory_bytes();
  if (has_first_sweep)
    total += one_respect_bytes(first_sweep) + first_sweep_delta.memory_bytes();
  return total;
}

}  // namespace dmc
