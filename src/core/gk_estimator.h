// Ghaffari–Kuhn-style constant-factor λ estimator (baseline proxy; see
// DESIGN.md "Substitutions").
//
// Built on the same primitive GK's (2+ε) algorithm rests on — Karger's
// sampling theorem: a subgraph sampled with p = c·ln n/λ̂ is connected
// w.h.p. iff λ̂ ≲ λ.  Doubling λ̂ until the sampled subgraph first
// disconnects brackets λ within a multiplicative O(log n) band; each probe
// is a flood + count, O(D_sample + D) rounds.  Estimate-only: it does not
// output a cut — which is exactly the qualitative gap to the paper's
// algorithm that experiment E3 exhibits.
#pragma once

#include <cstdint>

#include "congest/stats.h"
#include "graph/graph.h"

namespace dmc {

class Network;
struct SessionInfra;

struct GkEstimateOptions {
  std::uint64_t seed{1};
};

struct GkEstimateResult {
  Weight estimate{0};
  std::size_t probes{0};
  CongestStats stats;
};

/// Session-parameterized runner over an existing (pristine or reset)
/// network; see exact_mincut.h for the pattern (incl. the `warm` infra).
[[nodiscard]] GkEstimateResult gk_estimate_min_cut(
    Network& net, const GkEstimateOptions& opt = {},
    const SessionInfra* warm = nullptr);

/// One-shot convenience over a temporary single-use dmc::Session.
[[nodiscard]] GkEstimateResult gk_estimate_min_cut(
    const Graph& g, const GkEstimateOptions& opt = {});

/// Deprecated positional-seed spelling; use the options overload.
[[deprecated("use gk_estimate_min_cut(g, GkEstimateOptions{...})")]]
[[nodiscard]] GkEstimateResult gk_estimate_min_cut(const Graph& g,
                                                   std::uint64_t seed);

}  // namespace dmc
