// Theorem 2.1 of the paper, end to end: given the rooted spanning tree T
// with its (√n, O(√n)) fragment partition, compute in Õ(√n + D) rounds
//
//   * C(v↓) at every node v (via Karger's identity C(v↓) = δ↓(v) − 2ρ↓(v)),
//   * c* = min_{v ≠ r} C(v↓) and an argmin v*,
//   * the cut side: every node ends up knowing whether it belongs to v*↓
//     (the paper's output convention: "every node outputs whether it is in
//     X in the end").
//
// Orchestrates Steps 2–5 (ancestors, subtree sums, merging nodes, LCA/ρ)
// plus the final min-convergecast and cut-side dissemination.
#pragma once

#include <span>
#include <vector>

#include "congest/schedule.h"
#include "congest/tree_view.h"
#include "dist/tree_partition.h"

namespace dmc {

struct OneRespectResult {
  std::vector<Weight> delta_down;  ///< δ↓(v), known at v
  std::vector<Weight> rho_down;    ///< ρ↓(v), known at v
  std::vector<Weight> cut_down;    ///< C(v↓), known at v
  Weight c_star{0};                ///< min over v ≠ root (known everywhere)
  NodeId v_star{kNoNode};          ///< an argmin (known everywhere)
  std::vector<bool> in_cut;        ///< membership bit, known at each node
};

/// `weights` gives the per-edge weight used for δ/ρ (indexed by EdgeId);
/// pass the graph's own weights for the plain algorithm, or the original
/// weights when running on a sampled skeleton's tree (the (1+ε) pipeline
/// evaluates true G-cut values on skeleton-packed trees).  A span so
/// callers can hand arena-backed scratch (congest/arena.h) as well as
/// vectors.
[[nodiscard]] OneRespectResult one_respect_min_cut(
    Schedule& sched, const TreeView& bfs, const FragmentStructure& fs,
    std::span<const Weight> weights);

}  // namespace dmc
