#include "core/session.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "central/skeleton.h"
#include "core/warm.h"

namespace dmc {

namespace {

// Wall-clock time budgets: the clock only decides WHEN to cancel
// (CancelledError between rounds), never what a completed solve answers;
// results stay bit-identical across machines.
// dmc-lint: allow(R1) -- time budget clock, feeds no answer (see above)
using Clock = std::chrono::steady_clock;

/// Per-query observer installed by Session::solve: forwards every event
/// to the user observer (if any) and layers the request's round /
/// wall-clock budgets on top.  Returning false makes Network::run throw
/// CancelledError between rounds (observer.h), so budget overruns surface
/// as clean errors, never deadlocks.
class BudgetGuard final : public RoundObserver {
 public:
  BudgetGuard(RoundObserver* inner, const MinCutRequest& req,
              Clock::time_point start)
      : inner_(inner), req_(&req), start_(start) {}

  void on_phase_begin(std::string_view protocol) override {
    if (inner_) inner_->on_phase_begin(protocol);
  }
  void on_phase_end(std::string_view protocol,
                    const ProtocolStats& phase) override {
    if (inner_) inner_->on_phase_end(protocol, phase);
  }
  [[nodiscard]] bool on_round(const CongestStats& snapshot) override {
    if (inner_ && !inner_->on_round(snapshot)) return false;
    if (req_->round_budget != 0 &&
        snapshot.total_rounds() > req_->round_budget)
      return false;
    if (req_->time_budget_s > 0.0 &&
        std::chrono::duration<double>(Clock::now() - start_).count() >
            req_->time_budget_s)
      return false;
    return true;
  }

 private:
  RoundObserver* inner_;
  const MinCutRequest* req_;
  Clock::time_point start_;
};

/// Clears the network's observer on every exit path of solve().
class ObserverScope {
 public:
  ObserverScope(Network& net, RoundObserver* obs) : net_(&net) {
    net_->set_observer(obs);
  }
  ~ObserverScope() { net_->set_observer(nullptr); }
  ObserverScope(const ObserverScope&) = delete;
  ObserverScope& operator=(const ObserverScope&) = delete;

 private:
  Network* net_;
};

// One mapping per algorithm, result → report, moving the heavy vectors
// (side, stats.per_protocol) out of the runner's result.  The inverse
// mappings are the public to_*_result converters below; a new extras
// field is added in exactly these two places.

MinCutReport report_from(DistMinCutResult&& r) {
  MinCutReport rep;
  rep.algo = Algo::kExact;
  rep.value = r.value;
  rep.v_star = r.v_star;
  rep.side = std::move(r.side);
  rep.trees_packed = r.trees_packed;
  rep.tree_of_best = r.tree_of_best;
  rep.fragments = r.fragments;
  rep.stats = std::move(r.stats);
  return rep;
}

MinCutReport report_from(DistApproxResult&& r) {
  MinCutReport rep = report_from(std::move(r.result));
  rep.algo = Algo::kApprox;
  rep.p = r.p;
  rep.lambda_hat = r.lambda_hat;
  rep.sampled = r.sampled;
  rep.attempts = r.attempts;
  return rep;
}

MinCutReport report_from(SuEstimateResult&& r) {
  MinCutReport rep;
  rep.algo = Algo::kSu;
  rep.value = r.estimate;
  rep.q_threshold = r.q_threshold;
  rep.attempts = r.attempts;
  rep.stats = std::move(r.stats);
  return rep;
}

MinCutReport report_from(GkEstimateResult&& r) {
  MinCutReport rep;
  rep.algo = Algo::kGk;
  rep.value = r.estimate;
  rep.attempts = r.probes;
  rep.stats = std::move(r.stats);
  return rep;
}

}  // namespace

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kExact: return "exact";
    case Algo::kApprox: return "approx";
    case Algo::kSu: return "su";
    case Algo::kGk: return "gk";
  }
  return "?";
}

Algo algo_from_string(const std::string& s) {
  if (s == "exact") return Algo::kExact;
  if (s == "approx") return Algo::kApprox;
  if (s == "su") return Algo::kSu;
  if (s == "gk") return Algo::kGk;
  throw PreconditionError{"unknown algorithm '" + s +
                          "' (accepted: exact, approx, su, gk)"};
}

std::string describe(const MinCutRequest& req) {
  std::ostringstream os;
  os << to_string(req.algo) << '(';
  switch (req.algo) {
    case Algo::kExact:
      os << "max_trees=" << req.max_trees << ", patience=" << req.patience;
      break;
    case Algo::kApprox:
      os << "eps=" << req.eps << ", seed=" << req.seed
         << ", trees_factor=" << req.trees_factor;
      break;
    case Algo::kSu:
    case Algo::kGk:
      os << "seed=" << req.seed;
      break;
  }
  if (req.round_budget != 0) os << ", round_budget=" << req.round_budget;
  if (req.time_budget_s > 0.0) os << ", time_budget_s=" << req.time_budget_s;
  os << ')';
  return os.str();
}

DistMinCutResult to_exact_result(const MinCutReport& rep) {
  DistMinCutResult out;
  out.value = rep.value;
  out.v_star = rep.v_star;
  out.side = rep.side;
  out.trees_packed = rep.trees_packed;
  out.tree_of_best = rep.tree_of_best;
  out.fragments = rep.fragments;
  out.stats = rep.stats;
  return out;
}

DistApproxResult to_approx_result(const MinCutReport& rep) {
  DistApproxResult out;
  out.result = to_exact_result(rep);
  out.p = rep.p;
  out.lambda_hat = rep.lambda_hat;
  out.sampled = rep.sampled;
  out.attempts = rep.attempts;
  return out;
}

SuEstimateResult to_su_result(const MinCutReport& rep) {
  SuEstimateResult out;
  out.estimate = rep.value;
  out.q_threshold = rep.q_threshold;
  out.attempts = rep.attempts;
  out.stats = rep.stats;
  return out;
}

GkEstimateResult to_gk_result(const MinCutReport& rep) {
  GkEstimateResult out;
  out.estimate = rep.value;
  out.probes = rep.attempts;
  out.stats = rep.stats;
  return out;
}

Session::Session(const Graph& g, SessionOptions opt)
    : g_(&g), opt_(opt), net_(g, make_engine(opt.engine_threads)) {
  net_.force_scheduling(opt.scheduling);
  net_.set_fault_plan(opt.fault_plan);
}

Session::Session(Graph& g, SessionOptions opt)
    : Session(static_cast<const Graph&>(g), opt) {
  mutable_g_ = &g;
}

Session::~Session() = default;

UpdateSummary Session::apply(std::span<const EdgeUpdate> batch) {
  DMC_REQUIRE_MSG(mutable_g_ != nullptr,
                  "Session::apply needs the mutable-graph constructor — "
                  "this session borrows its graph as const");
  const UpdateSummary summary = mutable_g_->apply_updates(batch);
  absorb_update(summary);
  return summary;
}

void Session::absorb_update(const UpdateSummary& summary) {
  ++update_stats_.batches;
  // Re-finalize the CSR before the network re-derives its tables (and
  // before the graph is shared across pool threads again) — the lazy
  // rebuild after a delete is not thread-safe.
  if (g_->num_nodes() > 0) (void)g_->port_offset(0);

  if (summary.topology_changed()) {
    // Inserts/deletes move every port and the bootstrap's own message
    // counts: re-derive the slot planes and drop the warm cache whole —
    // it rebuilds lazily, stage by stage, on the next solves.
    net_.rebind_graph();
    if (infra_) {
      infra_.reset();
      ++update_stats_.full_invalidations;
    }
    return;
  }

  // Reweight-only: the network's tables are weight-blind — plain reset.
  net_.reset();
  if (!infra_) return;
  if (summary.damage() > opt_.update_damage_threshold) {
    // Past the damage threshold most of the cache is weight-dependent
    // anyway; drop it whole rather than repair (policy only — both paths
    // are bit-identical to a rebuild).
    infra_.reset();
    ++update_stats_.full_invalidations;
    return;
  }
  reweight_session_infra(*infra_, *g_);
  ++update_stats_.incremental_repairs;
}

const SessionInfra* Session::warm_infra(const MinCutRequest& req) {
  // A user observer is owed the full event stream, bootstrap phases
  // included, so its solves run cold — results and stats are identical
  // either way (warm replay restores the exact bootstrap snapshot), only
  // the events differ.  The internal BudgetGuard has no such contract.
  if (observer_ != nullptr) return nullptr;

  // An active fault plan also forces cold solves: the cache records a
  // RELIABLE bootstrap, so replaying it would hand the query a bootstrap
  // that never absorbed the plan's faults — silently un-injecting them.
  // (core/warm.cpp rejects build/replay under an active plan outright.)
  if (net_.fault_plan_active()) return nullptr;

  // Stages build lazily, each on a clean post-bootstrap base, and only
  // for the algorithms that consume them — a one-shot session must never
  // pay for a scaffold its single query does not use.
  if (!infra_) {
    net_.reset();
    Schedule boot{net_};
    infra_ = std::make_unique<SessionInfra>(build_session_infra(boot));
  }
  const auto on_clean_base = [&](auto&& extend) {
    net_.reset();
    Schedule sched{net_};
    replay_session_infra(sched, *infra_);
    extend(sched, *infra_);
  };
  const Algo algo = req.algo;
  if ((algo == Algo::kApprox || algo == Algo::kGk) && !infra_->has_min_degree)
    on_clean_base(extend_session_infra_min_degree);
  if (algo == Algo::kSu && !infra_->has_su_tree)
    on_clean_base(extend_session_infra_su_tree);
  // The packing tree serves every exact query, but an approx query only
  // on its p = 1 (small-cut) path — predicted from the cached min degree
  // exactly as the driver computes its first attempt.  A sampled-path
  // approx one-shot must not fund a scaffold it will skip; if a later
  // guess-refinement attempt still reaches p = 1, that packing simply
  // runs cold within the solve.
  // Guard the prediction against an invalid eps (the driver rejects it
  // right after bootstrap; a bad request must not fund a scaffold).
  const bool approx_exact_path =
      algo == Algo::kApprox && req.eps > 0.0 && req.eps <= 1.0 &&
      skeleton_probability(graph().num_nodes(), req.eps,
                           infra_->min_degree) >= 1.0;
  if (algo == Algo::kExact || approx_exact_path) {
    // Two stages: the weight-independent scaffold, then its 1-respect
    // sweep under the current weights.  Split so a reweight update can
    // keep the first and rebuild only the second (absorb_update).
    if (!infra_->has_packing_tree)
      on_clean_base(extend_session_infra_packing_tree);
    if (!infra_->has_first_sweep)
      on_clean_base(extend_session_infra_first_sweep);
  }
  return infra_.get();
}

MinCutReport Session::solve(const MinCutRequest& req) {
  const auto t0 = Clock::now();
  BudgetGuard guard{observer_, req, t0};
  const bool need_guard = observer_ != nullptr || req.round_budget != 0 ||
                          req.time_budget_s > 0.0;
  ObserverScope scope{net_, need_guard ? &guard : nullptr};

  // Warm per-graph infrastructure (leader, BFS TreeView, barrier pricing,
  // the min-degree opener, the per-graph tree scaffolds) is computed once
  // per session and replayed into every query — the drivers skip leader
  // election, BFS construction, and the first-tree machinery entirely on
  // the warm path (core/warm.h).  Built INSIDE the guard scope: the
  // stage protocols run live the first time, and a query's round/time
  // budget must be able to cancel them just as it cancels the cold
  // path's bootstrap (a cancelled build leaves the unfinished stage
  // unpublished — its has_* flag is set last — so the session stays
  // serviceable and the next solve rebuilds).
  const SessionInfra* warm = warm_infra(req);

  // Pristine state per query: a reused session must be indistinguishable
  // from a fresh network (DESIGN.md "Serving layer").
  net_.reset();

  MinCutReport rep;
  switch (req.algo) {
    case Algo::kExact: {
      ExactMinCutOptions opt;
      opt.max_trees = req.max_trees;
      opt.patience = req.patience;
      rep = report_from(exact_min_cut_dist(net_, opt, warm));
      break;
    }
    case Algo::kApprox: {
      ApproxMinCutOptions opt;
      opt.eps = req.eps;
      opt.seed = req.seed;
      opt.trees_factor = req.trees_factor;
      rep = report_from(approx_min_cut_dist(net_, opt, warm));
      break;
    }
    case Algo::kSu:
      rep = report_from(
          su_estimate_min_cut(net_, SuEstimateOptions{req.seed}, warm));
      break;
    case Algo::kGk:
      rep = report_from(
          gk_estimate_min_cut(net_, GkEstimateOptions{req.seed}, warm));
      break;
  }
  rep.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  ++served_;
  return rep;
}

std::size_t Session::memory_bytes() const {
  return net_.memory_bytes() + (infra_ ? infra_->memory_bytes() : 0);
}

std::vector<MinCutReport> Session::solve_many(
    std::span<const MinCutRequest> reqs) {
  std::vector<MinCutReport> reports;
  reports.reserve(reqs.size());
  for (const MinCutRequest& req : reqs) reports.push_back(solve(req));
  return reports;
}

}  // namespace dmc
