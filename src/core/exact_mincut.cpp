#include "core/exact_mincut.h"

#include "congest/network.h"
#include "congest/schedule.h"
#include "core/session.h"
#include "core/tree_packing_dist.h"
#include "core/warm.h"

namespace dmc {

DistMinCutResult exact_min_cut_dist(Network& net, const ExactMinCutOptions& opt,
                                    const SessionInfra* warm) {
  const Graph& g = net.graph();
  DMC_REQUIRE(g.num_nodes() >= 2);
  Schedule sched{net};
  SessionInfra storage;
  const SessionInfra& infra = acquire_session_infra(sched, warm, storage);

  DistPackingOptions popt;
  popt.max_trees = opt.max_trees;
  popt.patience = opt.patience;
  popt.warm = warm;
  const DistPackingResult packing =
      dist_tree_packing(sched, infra.bfs, infra.leader, popt);

  DistMinCutResult out;
  out.value = packing.c_star;
  out.v_star = packing.v_star;
  out.side = packing.in_cut;
  out.trees_packed = packing.trees_packed;
  out.tree_of_best = packing.tree_of_best;
  out.fragments = packing.fragments_last;
  out.stats = net.stats();
  return out;
}

DistMinCutResult exact_min_cut_dist(const Graph& g,
                                    const ExactMinCutOptions& opt) {
  Session session{g, SessionOptions{opt.engine_threads, opt.scheduling}};
  MinCutRequest req;
  req.algo = Algo::kExact;
  req.max_trees = opt.max_trees;
  req.patience = opt.patience;
  return to_exact_result(session.solve(req));
}

}  // namespace dmc
