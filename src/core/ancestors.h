// Step 2 of the paper: every node v learns
//   * A(v) — its ancestors within its own fragment and within the parent
//     fragment (ordered by depth);
//   * Attach(v) — the child fragments of v's fragment attached inside
//     v↓ ∩ F(v's fragment); the paper's F(v) is the T_F-closure of this set
//     (fs.closure), computable locally from the global T_F;
//   * L(v) — for each fragment F', the lowest ancestor u ∈ A(v) ∪ {v} with
//     F' ∈ F(u) (the paper's "(u', F')" messages).
//
// Protocols: one pipelined tap-upcast per fragment (Attach), and two
// pipelined downcasts scoped to "own fragment + child fragments"
// (ancestor ids; (u, F') pairs filtered by F' ∉ F(receiver)).
// All are O(√n) rounds on (√n, O(√n)) partitions.
//
// Storage is flat: the Θ(n√n)-entry ancestor chains live in two CSR
// blocks of 4-byte node ids (depth order is implied, never stored — it is
// re-derivable from fs.depth_key), and L(v) is a CSR of 8-byte
// (fragment, node) entries sorted by fragment per node.  The per-node
// nested containers this replaces cost ~6x as much resident memory.
#pragma once

#include <span>
#include <vector>

#include "congest/schedule.h"
#include "dist/tree_partition.h"

namespace dmc {

struct AncestorData {
  /// One L(v) entry: the lowest ancestor-or-self `node` of v with
  /// `frag` ∈ F(node).
  struct LEntry {
    std::uint32_t frag{0};
    NodeId node{kNoNode};
  };

  /// Proper ancestors of v inside v's own fragment, shallowest first
  /// (starts at the fragment root unless v is the root itself).
  [[nodiscard]] std::span<const NodeId> own_chain(NodeId v) const {
    return {own_nodes.data() + own_off[v], own_off[v + 1] - own_off[v]};
  }
  /// Ancestors of v inside the parent fragment, shallowest first.
  [[nodiscard]] std::span<const NodeId> parent_chain(NodeId v) const {
    return {parent_nodes.data() + parent_off[v],
            parent_off[v + 1] - parent_off[v]};
  }
  /// All of L(v), sorted by fragment index.
  [[nodiscard]] std::span<const LEntry> lowest_entries(NodeId v) const {
    return {l_entries.data() + l_off[v], l_off[v + 1] - l_off[v]};
  }
  /// L(v)[f]: lowest ancestor-or-self u with f ∈ F(u); kNoNode if absent.
  [[nodiscard]] NodeId lowest_anc(NodeId v, std::uint32_t f) const;

  /// Membership test F' ∈ F(v) (locally computable at v).
  [[nodiscard]] bool in_f_of(const FragmentStructure& fs, NodeId v,
                             std::uint32_t f_prime) const;

  /// Child fragments of frag(v) attached strictly inside v's fragment
  /// subtree (sorted fragment indices).  F(v) = fs.closure(attach[v]).
  std::vector<std::vector<std::uint32_t>> attach;

  // --- flat storage (filled by compute_ancestors; read via accessors) ---
  std::vector<std::uint32_t> own_off, parent_off, l_off;  ///< n+1 each
  std::vector<NodeId> own_nodes, parent_nodes;
  std::vector<LEntry> l_entries;
};

[[nodiscard]] AncestorData compute_ancestors(Schedule& sched,
                                             const FragmentStructure& fs);

}  // namespace dmc
