// Step 2 of the paper: every node v learns
//   * A(v) — its ancestors within its own fragment and within the parent
//     fragment (ordered by depth);
//   * Attach(v) — the child fragments of v's fragment attached inside
//     v↓ ∩ F(v's fragment); the paper's F(v) is the T_F-closure of this set
//     (fs.closure), computable locally from the global T_F;
//   * L(v) — for each fragment F', the lowest ancestor u ∈ A(v) ∪ {v} with
//     F' ∈ F(u) (the paper's "(u', F')" messages).
//
// Protocols: one pipelined tap-upcast per fragment (Attach), and two
// pipelined downcasts scoped to "own fragment + child fragments"
// (ancestor ids; (u, F') pairs filtered by F' ∉ F(receiver)).
// All are O(√n) rounds on (√n, O(√n)) partitions.
#pragma once

#include <unordered_map>
#include <vector>

#include "congest/schedule.h"
#include "dist/tree_partition.h"

namespace dmc {

struct AncestorEntry {
  NodeId node{kNoNode};
  std::uint64_t depth_key{0};  ///< fs.depth_key(node); orders the chain
};

struct AncestorData {
  /// Proper ancestors of v inside v's own fragment, shallowest first
  /// (starts at the fragment root unless v is the root itself).
  std::vector<std::vector<AncestorEntry>> own_chain;
  /// Ancestors of v inside the parent fragment, shallowest first.
  std::vector<std::vector<AncestorEntry>> parent_chain;
  /// Child fragments of frag(v) attached strictly inside v's fragment
  /// subtree (sorted fragment indices).  F(v) = fs.closure(attach[v]).
  std::vector<std::vector<std::uint32_t>> attach;
  /// L(v): fragment index → lowest ancestor-or-self u with F' ∈ F(u).
  std::vector<std::unordered_map<std::uint32_t, NodeId>> lowest_anc;

  /// Membership test F' ∈ F(v) (locally computable at v).
  [[nodiscard]] bool in_f_of(const FragmentStructure& fs, NodeId v,
                             std::uint32_t f_prime) const;
};

[[nodiscard]] AncestorData compute_ancestors(Schedule& sched,
                                             const FragmentStructure& fs);

}  // namespace dmc
