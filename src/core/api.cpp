#include "core/api.h"

namespace dmc {

DistMinCutResult distributed_min_cut(const Graph& g,
                                     const ExactMinCutOptions& opt) {
  return exact_min_cut_dist(g, opt);
}

DistApproxResult distributed_approx_min_cut(const Graph& g,
                                            const ApproxMinCutOptions& opt) {
  return approx_min_cut_dist(g, opt);
}

SuEstimateResult distributed_su_estimate(const Graph& g,
                                         const SuEstimateOptions& opt) {
  return su_estimate_min_cut(g, opt);
}

GkEstimateResult distributed_gk_estimate(const Graph& g,
                                         const GkEstimateOptions& opt) {
  return gk_estimate_min_cut(g, opt);
}

DistApproxResult distributed_approx_min_cut(const Graph& g, double eps,
                                            std::uint64_t seed) {
  ApproxMinCutOptions opt;
  opt.eps = eps;
  opt.seed = seed;
  return approx_min_cut_dist(g, opt);
}

SuEstimateResult distributed_su_estimate(const Graph& g, std::uint64_t seed) {
  return su_estimate_min_cut(g, SuEstimateOptions{seed});
}

GkEstimateResult distributed_gk_estimate(const Graph& g, std::uint64_t seed) {
  return gk_estimate_min_cut(g, GkEstimateOptions{seed});
}

}  // namespace dmc
