// dmc_lint file discovery: walk the configured scan roots and return
// every C++ source file as a (full path, repo-relative path) pair, in
// sorted repo-relative order — the scan itself obeys R1 (no dependence on
// directory enumeration order).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "lint/rules.h"

namespace dmc::lint {

struct ScannedFile {
  std::string full_path;  ///< openable path (root-prefixed)
  std::string rel_path;   ///< repo-relative, '/'-separated (rule scoping)
};

/// Files under cfg.root/cfg.paths with extension .h or .cpp, sorted by
/// rel_path.  Skips tests/lint_fixtures (the planted-violation corpus the
/// self-tests feed through the rules on purpose), build trees, and dot
/// directories.  A configured path that is a single file is taken as-is.
[[nodiscard]] std::vector<ScannedFile> collect_files(const LintConfig& cfg);

/// Lints every collected file.  The scan is the whole tool: lex, rules,
/// suppressions, aggregated into one result.
[[nodiscard]] LintResult run_lint(const LintConfig& cfg);

}  // namespace dmc::lint
