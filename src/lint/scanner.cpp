#include "lint/scanner.h"

#include <algorithm>
#include <filesystem>

#include "lint/source.h"
#include "util/assert.h"

namespace dmc::lint {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool wanted_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

[[nodiscard]] std::string to_rel(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

[[nodiscard]] bool excluded(const std::string& rel) {
  // The fixture corpus exists to violate the rules; scanning it would
  // make every run red.  Build trees and dot dirs are not ours.
  if (rel.find("lint_fixtures") != std::string::npos) return true;
  if (rel.rfind("build", 0) == 0) return true;
  for (std::size_t i = 0, seg = 0; i < rel.size(); ++i) {
    if (rel[i] == '/')
      seg = i + 1;
    else if (i == seg && rel[i] == '.')
      return true;  // dot segment: ".git/…", hidden files
  }
  return false;
}

}  // namespace

std::vector<ScannedFile> collect_files(const LintConfig& cfg) {
  const fs::path root{cfg.root};
  DMC_REQUIRE_MSG(fs::exists(root),
                  "dmc_lint: root '" << cfg.root << "' does not exist");
  std::vector<ScannedFile> out;
  for (const std::string& rel : cfg.paths) {
    const fs::path base = root / rel;
    if (!fs::exists(base)) continue;  // optional scan roots may be absent
    if (fs::is_regular_file(base)) {
      out.push_back({base.string(), to_rel(base, root)});
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !wanted_extension(entry.path()))
        continue;
      std::string r = to_rel(entry.path(), root);
      if (excluded(r)) continue;
      out.push_back({entry.path().string(), std::move(r)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ScannedFile& a, const ScannedFile& b) {
              return a.rel_path < b.rel_path;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ScannedFile& a, const ScannedFile& b) {
                          return a.rel_path == b.rel_path;
                        }),
            out.end());
  return out;
}

LintResult run_lint(const LintConfig& cfg) {
  LintResult result;
  for (const ScannedFile& f : collect_files(cfg))
    lint_file(load_source(f.full_path, f.rel_path), cfg, result);
  return result;
}

}  // namespace dmc::lint
