#include "lint/report.h"

#include <ostream>

namespace dmc::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_text_report(const LintResult& result, std::ostream& os) {
  for (const Finding& f : result.findings)
    os << f.path << ':' << f.line << ": [" << f.rule << "] " << f.message
       << '\n';
  os << "dmc_lint: " << result.files_scanned << " files, "
     << result.findings.size() << " finding"
     << (result.findings.size() == 1 ? "" : "s") << ", "
     << result.suppressed.size() << " suppressed";
  if (!result.per_rule.empty()) {
    os << " (";
    bool first = true;
    for (const auto& [rule, st] : result.per_rule) {
      if (!first) os << ", ";
      first = false;
      os << rule << ": " << st.findings << '+' << st.suppressed
         << " suppressed";
    }
    os << ')';
  }
  os << '\n';
}

namespace {

void write_finding_array(const std::vector<Finding>& fs, std::ostream& os) {
  os << '[';
  for (std::size_t i = 0; i < fs.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"rule\":\"" << json_escape(fs[i].rule) << "\",\"file\":\""
       << json_escape(fs[i].path) << "\",\"line\":" << fs[i].line
       << ",\"message\":\"" << json_escape(fs[i].message) << "\"}";
  }
  os << ']';
}

}  // namespace

void write_json_report(const LintResult& result, std::ostream& os) {
  os << "{\"tool\":\"dmc_lint\",\"files_scanned\":" << result.files_scanned
     << ",\"clean\":" << (result.clean() ? "true" : "false")
     << ",\"findings\":";
  write_finding_array(result.findings, os);
  os << ",\"suppressed\":";
  write_finding_array(result.suppressed, os);
  os << ",\"rules\":{";
  bool first = true;
  for (const auto& [rule, st] : result.per_rule) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(rule) << "\":{\"findings\":" << st.findings
       << ",\"suppressed\":" << st.suppressed << '}';
  }
  os << "}}\n";
}

}  // namespace dmc::lint
