// dmc_lint source model: one scanned file, lexed so rules can tell code
// from comments and string literals.
//
// The lexer is deliberately token-level, not a parser: every rule in this
// subsystem is a convention the repo enforces on itself (see rules.h), and
// the failure mode we care about is a HUMAN re-introducing a banned
// construct, not an adversary hiding one.  The representation keeps three
// same-length views of every line:
//   raw     — the bytes as written;
//   code    — string/char-literal contents and comments blanked to spaces
//             (quote characters kept, so literal extents stay visible);
//   comment — only the comment text, everything else blanked.
// Same-length means a column index is valid in all three views, which is
// what lets rules match tokens in `code` and then read exact literal text
// back out of `raw`.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dmc::lint {

struct SourceFile {
  /// Repo-relative path with '/' separators (stable across platforms —
  /// findings and suppression reports key on it).
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;

  [[nodiscard]] std::size_t num_lines() const { return raw.size(); }
  [[nodiscard]] bool is_header() const {
    return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  }
};

/// Splits `text` into lines and runs the comment/string state machine.
/// Handles //, /* */, "…" with escapes, '…', and R"delim(…)delim" raw
/// strings; a state left open at end-of-file simply blanks to the end.
[[nodiscard]] SourceFile lex_source(std::string path, std::string_view text);

/// Loads and lexes one file from disk; throws PreconditionError when the
/// file cannot be read.  `path` is used verbatim as the repo-relative
/// name; `full_path` is where the bytes live.
[[nodiscard]] SourceFile load_source(const std::string& full_path,
                                     std::string path);

// ---------------------------------------------------------------------
// Suppressions.  A finding is an error unless a suppression comment
// covers it:
//
//   // dmc-lint: allow(R1) -- reason why this exemption is sound
//   // dmc-lint: allow(R1,R3) -- reasons may cover several rules
//   // dmc-lint: allow-file(R2) -- whole-file exemption
//
// `allow` covers findings on the comment's own line and the line directly
// below it; `allow-file` covers the whole file.  The reason after `--` is
// MANDATORY: an unexplained suppression is itself reported (rule
// "suppression"), so exemptions can never accumulate silently.
// ---------------------------------------------------------------------

struct Suppression {
  std::size_t line{0};  ///< 1-based line the comment sits on
  std::vector<std::string> rules;
  std::string reason;
  bool file_wide{false};
};

struct SuppressionScan {
  std::vector<Suppression> suppressions;
  /// Malformed suppression comments (bad syntax or missing reason),
  /// reported as findings by the rule runner: (line, message).
  std::vector<std::pair<std::size_t, std::string>> malformed;
};

[[nodiscard]] SuppressionScan scan_suppressions(const SourceFile& sf);

}  // namespace dmc::lint
