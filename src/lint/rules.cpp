#include "lint/rules.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <set>
#include <string_view>

namespace dmc::lint {

namespace {

// ------------------------------------------------------------- helpers

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool path_starts_with(const std::string& path,
                                    std::string_view prefix) {
  return path.size() >= prefix.size() &&
         path.compare(0, prefix.size(), prefix) == 0;
}

struct Token {
  std::string_view text;
  std::size_t pos;  ///< byte offset into the scanned string
};

/// Identifier tokens of `code` (letters/digits/underscore runs starting
/// with a non-digit), in order.
[[nodiscard]] std::vector<Token> tokenize(std::string_view code) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_ident_char(code[i]) &&
        std::isdigit(static_cast<unsigned char>(code[i])) == 0) {
      const std::size_t b = i;
      while (i < code.size() && is_ident_char(code[i])) ++i;
      out.push_back({code.substr(b, i - b), b});
    } else {
      ++i;
    }
  }
  return out;
}

[[nodiscard]] std::size_t skip_spaces(std::string_view s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0)
    ++i;
  return i;
}

/// The whole file as one string per view, plus a 1-based line number per
/// byte.  Offsets are shared between `code` and `raw` (the lexer keeps
/// the views same-length), so multi-line rules can match structure in
/// code and read literal text back out of raw.
struct Joined {
  std::string code;
  std::string raw;
  std::vector<std::size_t> line_of;

  explicit Joined(const SourceFile& sf) {
    for (std::size_t li = 0; li < sf.num_lines(); ++li) {
      code += sf.code[li];
      code += '\n';
      raw += sf.raw[li];
      raw += '\n';
      line_of.resize(code.size(), li + 1);
    }
  }
};

void add(std::vector<Finding>& out, const char* rule,
         const SourceFile& sf, std::size_t line, std::string msg) {
  out.push_back(Finding{rule, sf.path, line, std::move(msg)});
}

// ------------------------------------------------------ R1 determinism

constexpr std::array<std::string_view, 7> kBannedRng = {
    "rand", "srand", "drand48", "lrand48", "mrand48", "random_shuffle",
    "random_device"};
constexpr std::array<std::string_view, 3> kBannedClocks = {
    "system_clock", "steady_clock", "high_resolution_clock"};
constexpr std::array<std::string_view, 4> kBannedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void rule_r1(const SourceFile& sf, std::vector<Finding>& out) {
  if (!path_starts_with(sf.path, "src/") &&
      !path_starts_with(sf.path, "include/"))
    return;
  for (std::size_t li = 0; li < sf.num_lines(); ++li) {
    const std::string& code = sf.code[li];
    for (const Token& t : tokenize(code)) {
      const auto in = [&](const auto& set) {
        return std::find(set.begin(), set.end(), t.text) != set.end();
      };
      if (in(kBannedRng)) {
        add(out, "R1", sf, li + 1,
            "nondeterministic RNG source '" + std::string(t.text) +
                "' — derive randomness from util/prng.h (seeded, "
                "replayable) instead");
      } else if (in(kBannedClocks)) {
        add(out, "R1", sf, li + 1,
            "wall clock '" + std::string(t.text) +
                "' in a deterministic layer — results must be a pure "
                "function of (graph, seed, options)");
      } else if (in(kBannedContainers)) {
        add(out, "R1", sf, li + 1,
            "hash container 'std::" + std::string(t.text) +
                "' — iteration order is not deterministic across "
                "libstdc++/ASLR; use std::map/std::set or an indexed "
                "vector");
      } else if (t.text == "time") {
        const std::size_t after = skip_spaces(code, t.pos + t.text.size());
        const bool member = t.pos > 0 && (code[t.pos - 1] == '.' ||
                                          code[t.pos - 1] == '>');
        if (!member && after < code.size() && code[after] == '(')
          add(out, "R1", sf, li + 1,
              "wall-clock time() call in a deterministic layer");
      }
    }
  }
}

// ------------------------------------------------ R2 protocol contract

/// True when `body` contains identifier token `name` immediately
/// followed (mod whitespace) by `next_char` (0 = any).
[[nodiscard]] bool body_has(std::string_view body, std::string_view name,
                            char next_char) {
  for (const Token& t : tokenize(body)) {
    if (t.text != name) continue;
    if (next_char == '\0') return true;
    const std::size_t after = skip_spaces(body, t.pos + t.text.size());
    if (after < body.size() && body[after] == next_char) return true;
  }
  return false;
}

void rule_r2(const SourceFile& sf, std::vector<Finding>& out) {
  if (!path_starts_with(sf.path, "src/")) return;
  const Joined j{sf};
  const std::vector<Token> toks = tokenize(j.code);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "class" && toks[i].text != "struct") continue;
    if (i > 0 && toks[i - 1].text == "enum") continue;
    const Token& name = toks[i + 1];
    // Scan the head (between the name and '{' or ';') for a public
    // Protocol base.
    std::size_t head_end = name.pos;
    while (head_end < j.code.size() && j.code[head_end] != '{' &&
           j.code[head_end] != ';')
      ++head_end;
    if (head_end >= j.code.size() || j.code[head_end] == ';') continue;
    const std::string_view head{j.code.data() + name.pos,
                                head_end - name.pos};
    bool derived = false;
    {
      const std::vector<Token> ht = tokenize(head);
      for (std::size_t k = 0; k + 1 < ht.size(); ++k) {
        if (ht[k].text != "public") continue;
        if (ht[k + 1].text == "Protocol" ||
            (ht[k + 1].text == "dmc" && k + 2 < ht.size() &&
             ht[k + 2].text == "Protocol"))
          derived = true;
      }
    }
    if (!derived) continue;
    // Extract the class body by brace matching (strings/comments are
    // already blanked, so every brace in `code` is structural).
    std::size_t depth = 0, body_end = head_end;
    for (std::size_t p = head_end; p < j.code.size(); ++p) {
      if (j.code[p] == '{') ++depth;
      if (j.code[p] == '}' && --depth == 0) {
        body_end = p;
        break;
      }
    }
    const std::string_view body{j.code.data() + head_end,
                                body_end - head_end};
    const std::size_t line = j.line_of[toks[i].pos];
    const std::string cls{name.text};
    if (!body_has(body, "scheduling", '('))
      add(out, "R2", sf, line,
          "protocol class '" + cls +
              "' does not override scheduling() — every protocol must "
              "declare its Dense/EventDriven audit explicitly");
    if (!body_has(body, "fault_tolerance", '('))
      add(out, "R2", sf, line,
          "protocol class '" + cls +
              "' does not override fault_tolerance() — every protocol "
              "must declare which injected FaultKinds it absorbs");
    const bool declares_crash = body_has(body, "kTolerateCrash", '\0') ||
                                body_has(body, "kFaultTolerant", '\0');
    if (declares_crash && !body_has(body, "on_crash_restart", '('))
      add(out, "R2", sf, line,
          "protocol class '" + cls +
              "' declares crash tolerance but does not override "
              "on_crash_restart — a restarted node would resume with "
              "stale state");
  }
}

// ----------------------------------------------- R3 checked arithmetic

/// Accumulation sites where Weight sums are audited to go through
/// util/checked.h.  Extend this list when a new file grows a cut-value /
/// weighted-degree / aggregate accumulation loop.
constexpr std::array<std::string_view, 7> kR3Files = {
    "src/graph/graph.cpp",
    "src/graph/cut.cpp",
    "src/congest/primitives/convergecast.cpp",
    "src/core/subtree_sums.cpp",
    "src/core/cut_verify.cpp",
    "src/core/one_respect.cpp",
    "src/central/matula.cpp",
};

void rule_r3(const SourceFile& sf, std::vector<Finding>& out) {
  if (std::find(kR3Files.begin(), kR3Files.end(), sf.path) ==
      kR3Files.end())
    return;
  // Pass 1: identifiers declared with type Weight ("Weight x", "const
  // Weight& x").  Function names with a Weight return type land in the
  // set too, which is harmless — nothing applies += to a function name.
  std::set<std::string, std::less<>> weight_vars;
  for (const std::string& code : sf.code) {
    const std::vector<Token> toks = tokenize(code);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text != "Weight") continue;
      std::size_t p = toks[i].pos + toks[i].text.size();
      while (p < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[p])) != 0 ||
              code[p] == '&' || code[p] == '*'))
        ++p;
      if (p == toks[i + 1].pos) weight_vars.insert(std::string(toks[i + 1].text));
    }
  }
  // Pass 2: raw accumulation on those identifiers.
  for (std::size_t li = 0; li < sf.num_lines(); ++li) {
    const std::string& code = sf.code[li];
    const std::vector<Token> toks = tokenize(code);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (weight_vars.find(t.text) == weight_vars.end()) continue;
      const std::size_t after = skip_spaces(code, t.pos + t.text.size());
      const bool plus_eq = after + 1 < code.size() &&
                           code[after] == '+' && code[after + 1] == '=';
      // "x = x + …" — same accumulator on both sides of a raw plus.
      bool self_add = false;
      if (after < code.size() && code[after] == '=' &&
          (after + 1 >= code.size() || code[after + 1] != '=') &&
          i + 1 < toks.size() && toks[i + 1].text == t.text) {
        const std::size_t after2 =
            skip_spaces(code, toks[i + 1].pos + toks[i + 1].text.size());
        self_add = after2 < code.size() && code[after2] == '+';
      }
      if (plus_eq || self_add)
        add(out, "R3", sf, li + 1,
            "raw accumulation on Weight-typed '" + std::string(t.text) +
                "' — route through checked_add/checked_double "
                "(util/checked.h) so 64-bit wraparound throws instead "
                "of corrupting the cut value");
    }
  }
}

// ---------------------------------------------------- R4 error hygiene

void rule_r4(const SourceFile& sf, std::vector<Finding>& out) {
  if (!path_starts_with(sf.path, "src/") &&
      !path_starts_with(sf.path, "include/") &&
      !path_starts_with(sf.path, "tools/"))
    return;
  const Joined j{sf};
  const std::vector<Token> toks = tokenize(j.code);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "throw") continue;
    const Token& type = toks[i + 1];
    if (type.text != "InvariantError" && type.text != "PreconditionError")
      continue;
    std::size_t p = skip_spaces(j.code, type.pos + type.text.size());
    if (p >= j.code.size() || (j.code[p] != '{' && j.code[p] != '('))
      continue;
    const char close = j.code[p] == '{' ? '}' : ')';
    p = skip_spaces(j.code, p + 1);
    if (p >= j.code.size() || j.code[p] != '"') continue;
    const std::size_t q1 = p;
    const std::size_t q2 = j.code.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::size_t end = skip_spaces(j.code, q2 + 1);
    if (end >= j.code.size() || j.code[end] != close)
      continue;  // built message (concatenation / ostream) — has context
    const std::string_view literal{j.raw.data() + q1 + 1, q2 - q1 - 1};
    if (literal.find(' ') == std::string_view::npos)
      add(out, "R4", sf, j.line_of[toks[i].pos],
          "bare error message \"" + std::string(literal) + "\" in throw " +
              std::string(type.text) +
              " — say what failed and include the offending values");
  }
}

// -------------------------------------------------- R5 include hygiene

void rule_r5(const SourceFile& sf, const LintConfig& cfg,
             std::vector<Finding>& out) {
  if (!sf.is_header()) return;
  if (!path_starts_with(sf.path, "src/") &&
      !path_starts_with(sf.path, "include/"))
    return;
  // Match in the CODE view (a "#pragma once" inside a comment or string
  // must not satisfy the rule), read literal text back out of raw.
  bool has_pragma = false;
  for (const std::string& codeline : sf.code)
    if (codeline.find("#pragma once") != std::string::npos) {
      has_pragma = true;
      break;
    }
  if (!has_pragma)
    add(out, "R5", sf, 1,
        "header has no #pragma once — double inclusion breaks the "
        "self-containedness contract");

  namespace fs = std::filesystem;
  for (std::size_t li = 0; li < sf.num_lines(); ++li) {
    const std::string& codeline = sf.code[li];
    const std::size_t h = codeline.find("#include \"");
    if (h == std::string::npos) continue;
    const std::size_t b = h + 10;
    const std::size_t e = codeline.find('"', b);
    if (e == std::string::npos) continue;
    // The path bytes are string contents — blanked in code, real in raw.
    const std::string inc = sf.raw[li].substr(b, e - b);
    if (inc.rfind("../", 0) == 0 || inc.rfind("./", 0) == 0) {
      add(out, "R5", sf, li + 1,
          "relative include \"" + inc +
              "\" — project includes are rooted at src/ or include/");
      continue;
    }
    const fs::path root{cfg.root};
    if (!fs::exists(root / "src" / inc) &&
        !fs::exists(root / "include" / inc))
      add(out, "R5", sf, li + 1,
          "include \"" + inc +
              "\" does not resolve under src/ or include/");
  }
}

}  // namespace

// ----------------------------------------------------------- dispatch

bool LintConfig::rule_enabled(const std::string& r) const {
  return rules.empty() ||
         std::find(rules.begin(), rules.end(), r) != rules.end();
}

void run_rules(const SourceFile& sf, const LintConfig& cfg,
               std::vector<Finding>& out) {
  if (cfg.rule_enabled("R1")) rule_r1(sf, out);
  if (cfg.rule_enabled("R2")) rule_r2(sf, out);
  if (cfg.rule_enabled("R3")) rule_r3(sf, out);
  if (cfg.rule_enabled("R4")) rule_r4(sf, out);
  if (cfg.rule_enabled("R5")) rule_r5(sf, cfg, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
}

void apply_suppressions(const SourceFile& sf, std::vector<Finding> raw,
                        LintResult& result) {
  const SuppressionScan scan = scan_suppressions(sf);
  for (const auto& [line, msg] : scan.malformed) {
    result.findings.push_back(Finding{"suppression", sf.path, line, msg});
    ++result.per_rule["suppression"].findings;
  }
  for (Finding& f : raw) {
    const auto covered = [&](const Suppression& s) {
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) ==
          s.rules.end())
        return false;
      return s.file_wide || s.line == f.line || s.line + 1 == f.line;
    };
    const bool suppressed =
        std::any_of(scan.suppressions.begin(), scan.suppressions.end(),
                    covered);
    if (suppressed) {
      ++result.per_rule[f.rule].suppressed;
      result.suppressed.push_back(std::move(f));
    } else {
      ++result.per_rule[f.rule].findings;
      result.findings.push_back(std::move(f));
    }
  }
}

void lint_file(const SourceFile& sf, const LintConfig& cfg,
               LintResult& result) {
  std::vector<Finding> raw;
  run_rules(sf, cfg, raw);
  apply_suppressions(sf, std::move(raw), result);
  ++result.files_scanned;
}

}  // namespace dmc::lint
