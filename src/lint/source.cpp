#include "lint/source.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/assert.h"

namespace dmc::lint {

namespace {

enum class LexState {
  kCode,
  kString,
  kChar,
  kRawString,
  kLineComment,
  kBlockComment,
};

}  // namespace

SourceFile lex_source(std::string path, std::string_view text) {
  SourceFile sf;
  sf.path = std::move(path);

  LexState state = LexState::kCode;
  std::string raw_delim;  // raw-string closing delimiter: )delim"
  std::string line_raw, line_code, line_comment;

  const auto flush_line = [&] {
    sf.raw.push_back(line_raw);
    sf.code.push_back(line_code);
    sf.comment.push_back(line_comment);
    line_raw.clear();
    line_code.clear();
    line_comment.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == LexState::kLineComment) state = LexState::kCode;
      flush_line();
      continue;
    }
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    char code_c = ' ';
    char comment_c = ' ';
    switch (state) {
      case LexState::kCode:
        if (c == '/' && next == '/') {
          state = LexState::kLineComment;
          comment_c = ' ';
        } else if (c == '/' && next == '*') {
          state = LexState::kBlockComment;
          ++i;
          line_raw += "/*";
          line_code += "  ";
          line_comment += "  ";
          continue;
        } else if (c == '"') {
          // R"delim( raw string?  Look back over the code we just wrote.
          if (!line_code.empty() && line_code.back() == 'R') {
            std::size_t j = i + 1;
            std::string delim;
            while (j < text.size() && text[j] != '(' && text[j] != '"' &&
                   text[j] != '\n' && delim.size() < 16)
              delim += text[j++];
            if (j < text.size() && text[j] == '(') {
              state = LexState::kRawString;
              raw_delim = ")" + delim + "\"";
              code_c = '"';
              break;
            }
          }
          state = LexState::kString;
          code_c = '"';
        } else if (c == '\'') {
          state = LexState::kChar;
          code_c = '\'';
        } else {
          code_c = c;
        }
        break;
      case LexState::kString:
        if (c == '\\' && next != '\0') {
          line_raw += c;
          line_raw += next;
          line_code += "  ";
          line_comment += "  ";
          ++i;
          continue;
        }
        if (c == '"') {
          state = LexState::kCode;
          code_c = '"';
        }
        break;
      case LexState::kChar:
        if (c == '\\' && next != '\0') {
          line_raw += c;
          line_raw += next;
          line_code += "  ";
          line_comment += "  ";
          ++i;
          continue;
        }
        if (c == '\'') {
          state = LexState::kCode;
          code_c = '\'';
        }
        break;
      case LexState::kRawString:
        if (c == ')' &&
            text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size() && i < text.size();
               ++k, ++i) {
            if (text[i] == '\n') {
              flush_line();
              continue;
            }
            line_raw += text[i];
            line_code += text[i] == '"' ? '"' : ' ';
            line_comment += ' ';
          }
          --i;
          state = LexState::kCode;
          continue;
        }
        break;
      case LexState::kLineComment:
        comment_c = c;
        break;
      case LexState::kBlockComment:
        if (c == '*' && next == '/') {
          state = LexState::kCode;
          line_raw += "*/";
          line_code += "  ";
          line_comment += "  ";
          ++i;
          continue;
        }
        comment_c = c;
        break;
    }
    line_raw += c;
    line_code += code_c;
    line_comment += comment_c;
  }
  if (!line_raw.empty()) flush_line();
  return sf;
}

SourceFile load_source(const std::string& full_path, std::string path) {
  std::ifstream in(full_path, std::ios::binary);
  DMC_REQUIRE_MSG(in.good(), "dmc_lint: cannot read '" << full_path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return lex_source(std::move(path), buf.str());
}

namespace {

/// Parses "allow(R1,R2) -- reason" starting right after the marker.
/// Returns false on malformed syntax (message in *err).
bool parse_allow(std::string_view rest, std::size_t line, bool file_wide,
                 SuppressionScan& out, std::string* err) {
  const std::size_t open = rest.find('(');
  const std::size_t close = rest.find(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    *err = "expected allow(<rule>[,<rule>…])";
    return false;
  }
  Suppression s;
  s.line = line;
  s.file_wide = file_wide;
  std::string rule;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = i < close ? rest[i] : ',';
    if (c == ',' ) {
      if (!rule.empty()) s.rules.push_back(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule += c;
    }
  }
  if (s.rules.empty()) {
    *err = "empty rule list";
    return false;
  }
  const std::size_t dashes = rest.find("--", close);
  if (dashes == std::string_view::npos) {
    *err = "missing ' -- reason' (suppressions must be justified)";
    return false;
  }
  std::size_t b = dashes + 2;
  while (b < rest.size() &&
         std::isspace(static_cast<unsigned char>(rest[b])))
    ++b;
  s.reason = std::string(rest.substr(b));
  while (!s.reason.empty() &&
         std::isspace(static_cast<unsigned char>(s.reason.back())))
    s.reason.pop_back();
  if (s.reason.empty()) {
    *err = "missing ' -- reason' (suppressions must be justified)";
    return false;
  }
  out.suppressions.push_back(std::move(s));
  return true;
}

}  // namespace

SuppressionScan scan_suppressions(const SourceFile& sf) {
  SuppressionScan out;
  constexpr std::string_view kMarker = "dmc-lint:";
  for (std::size_t li = 0; li < sf.num_lines(); ++li) {
    const std::string& com = sf.comment[li];
    const std::size_t at = com.find(kMarker);
    if (at == std::string::npos) continue;
    std::string_view rest{com};
    rest.remove_prefix(at + kMarker.size());
    while (!rest.empty() &&
           std::isspace(static_cast<unsigned char>(rest.front())))
      rest.remove_prefix(1);
    std::string err;
    bool ok = false;
    if (rest.rfind("allow-file", 0) == 0) {
      ok = parse_allow(rest.substr(10), li + 1, /*file_wide=*/true, out,
                       &err);
    } else if (rest.rfind("allow", 0) == 0) {
      ok = parse_allow(rest.substr(5), li + 1, /*file_wide=*/false, out,
                       &err);
    } else {
      err = "unknown directive (expected allow(...) or allow-file(...))";
    }
    if (!ok)
      out.malformed.emplace_back(li + 1,
                                 "malformed dmc-lint comment: " + err);
  }
  return out;
}

}  // namespace dmc::lint
