// dmc_lint output: human text and machine JSON for the same LintResult.
//
// The text form is what a developer reads locally; the JSON form is what
// CI uploads as an artifact, so a red lint job carries its full evidence
// without re-running anything.  Suppressions are first-class in both —
// the per-rule suppressed counts are the whole point of requiring
// justified exemptions (they can be watched, and a drift upward is a
// review conversation).
#pragma once

#include <iosfwd>

#include "lint/rules.h"

namespace dmc::lint {

/// findings as "path:line: [rule] message" lines + a per-rule summary.
void write_text_report(const LintResult& result, std::ostream& os);

/// One JSON object: {"files_scanned", "clean", "findings": […],
/// "suppressed": […], "rules": {rule: {findings, suppressed}}}.
void write_json_report(const LintResult& result, std::ostream& os);

/// Minimal JSON string escaping for the report writer.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace dmc::lint
