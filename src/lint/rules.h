// dmc_lint rule catalogue — project-specific conventions, each one the
// source-level shadow of a guarantee a test suite enforces downstream:
//
//   R1 determinism      No nondeterminism sources in the deterministic
//                       layers (src/, include/): rand()/random_device/
//                       time()/wall clocks, and no std::unordered_map /
//                       unordered_set (hash iteration order varies across
//                       libstdc++ versions and ASLR; one stray iteration
//                       breaks the engines × threads × scheduling ×
//                       faults bit-identicality suites).
//   R2 protocol contract Every class deriving Protocol must explicitly
//                       override scheduling() and fault_tolerance() — the
//                       audits PR 2/PR 7 made mandatory — and a class
//                       declaring crash tolerance must override
//                       on_crash_restart.
//   R3 checked arithmetic In the listed accumulation sites, a raw `+=` on
//                       a Weight-typed accumulator must route through
//                       util/checked.h (silent 64-bit wraparound corrupts
//                       cut values instead of failing).
//   R4 error hygiene    throw InvariantError/PreconditionError with a
//                       bare one-word literal is useless at triage time;
//                       messages must carry context.
//   R5 include hygiene  Headers under src/ and include/ must start from
//                       #pragma once and every quoted include must
//                       resolve inside the project roots (no ../ paths).
//                       True self-containedness is compile-checked by the
//                       generated test_header_hygiene target; this rule
//                       catches the cheap structural half statically.
//
// Rules are token-level over the lexed views in source.h — no real C++
// parsing.  That is a feature: the rules stay ~200 lines, run in
// milliseconds over the repo, and their misses are conventions a reviewer
// would miss too.  Suppression comments (source.h) are the escape hatch,
// counted in every report so exemptions stay visible.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/source.h"

namespace dmc::lint {

struct Finding {
  std::string rule;     ///< "R1".."R5" or "suppression"
  std::string path;     ///< repo-relative
  std::size_t line{0};  ///< 1-based
  std::string message;

  [[nodiscard]] bool operator==(const Finding&) const = default;
};

struct LintConfig {
  /// Repo root all scanned paths and rule scopes are relative to.
  std::string root{"."};
  /// Scan roots, relative to `root`.
  std::vector<std::string> paths{"src", "include", "tools", "bench",
                                 "tests"};
  /// Enabled rules; empty = all.
  std::vector<std::string> rules;

  [[nodiscard]] bool rule_enabled(const std::string& r) const;
};

/// Per-rule outcome counts for the summary/report.
struct RuleStats {
  std::size_t findings{0};   ///< unsuppressed (these fail the run)
  std::size_t suppressed{0};
};

struct LintResult {
  std::vector<Finding> findings;    ///< unsuppressed, file/line order
  std::vector<Finding> suppressed;  ///< suppressed, kept for the report
  std::map<std::string, RuleStats> per_rule;
  std::size_t files_scanned{0};

  [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Runs every enabled rule over one lexed file, appending RAW findings
/// (suppressions not yet applied).  Exposed separately so the fixture
/// self-tests can assert exactly which lines fire.
void run_rules(const SourceFile& sf, const LintConfig& cfg,
               std::vector<Finding>& out);

/// Applies the file's suppression comments to raw findings: covered
/// findings move to `suppressed`, malformed dmc-lint comments become
/// "suppression" findings.  Returns counts merged into `result`.
void apply_suppressions(const SourceFile& sf, std::vector<Finding> raw,
                        LintResult& result);

/// Scans one file end to end: lex is the caller's job (load_source),
/// rules + suppressions happen here.
void lint_file(const SourceFile& sf, const LintConfig& cfg,
               LintResult& result);

}  // namespace dmc::lint
