// Umbrella header for dmc_lint, the project-specific static-analysis
// pass.
//
// Why a bespoke linter: every guarantee this repo sells — bit-identical
// results across engines × threads × scheduling × faults × updates —
// rests on coding conventions no general-purpose tool knows about
// (seeded randomness only, no hash-ordered iteration in protocol code,
// complete Protocol contracts, checked Weight accumulation).  dmc_lint
// machine-enforces them at the source level; see rules.h for the
// catalogue and DESIGN.md "Static analysis and determinism lint" for the
// mapping from each rule to the runtime guarantee it protects.
//
//   LintConfig cfg;           // root + scan paths + enabled rules
//   LintResult r = run_lint(cfg);
//   write_text_report(r, std::cout);
//   return r.clean() ? 0 : 1;
#pragma once

#include "lint/report.h"
#include "lint/rules.h"
#include "lint/scanner.h"
#include "lint/source.h"
