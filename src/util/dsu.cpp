#include "util/dsu.h"

#include <numeric>

#include "util/assert.h"

namespace dmc {

Dsu::Dsu(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t Dsu::find(std::size_t x) {
  DMC_REQUIRE(x < parent_.size());
  std::size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const std::size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool Dsu::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --components_;
  return true;
}

bool Dsu::same(std::size_t a, std::size_t b) { return find(a) == find(b); }

std::size_t Dsu::component_size(std::size_t x) { return size_[find(x)]; }

std::uint64_t SparseDsu::find(std::uint64_t x) {
  auto it = parent_.find(x);
  if (it == parent_.end()) {
    parent_.emplace(x, x);
    rank_.emplace(x, 0);
    return x;
  }
  std::uint64_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const std::uint64_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool SparseDsu::unite(std::uint64_t a, std::uint64_t b) {
  std::uint64_t ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  return true;
}

bool SparseDsu::same(std::uint64_t a, std::uint64_t b) {
  return find(a) == find(b);
}

}  // namespace dmc
