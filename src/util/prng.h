// Deterministic pseudo-random number generation.
//
// Every randomized component of the library takes an explicit 64-bit seed so
// experiments are reproducible.  We use xoshiro256** seeded via SplitMix64
// (the generator's authors' recommended seeding procedure).  A free-standing
// `mix64` is exposed for *coordination-free sampling*: both endpoints of a
// graph edge hash (seed, edge id) identically and therefore agree on the
// sampling decision without exchanging any message — this is how the
// distributed skeleton sampling of Section "sampling" works.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dmc {

/// SplitMix64 single step: maps any 64-bit value to a well-mixed 64-bit
/// value.  Stateless; usable as a hash.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

/// Combines a seed with up to two stream identifiers into a fresh seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                                        std::uint64_t b = 0);

/// xoshiro256** — fast, high-quality, 256-bit state.
class Prng {
 public:
  explicit Prng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform over [0, bound); bound must be ≥ 1.  Unbiased (rejection).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound);

  /// Uniform over [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  [[nodiscard]] double next_double();

  /// Bernoulli(p).
  [[nodiscard]] bool next_bool(double p);

  /// Binomial(trials, p) sample.  Uses geometric skipping, O(successes)
  /// expected time, which is fast in the sparse regimes the skeleton
  /// sampling operates in (p ≪ 1).  Falls back to a normal approximation
  /// for very large expected counts (documented deviation; only reachable
  /// with extreme weights).
  [[nodiscard]] std::uint64_t next_binomial(std::uint64_t trials, double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dmc
