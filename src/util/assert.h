// Always-on invariant checking for the dmc library.
//
// We prefer throwing over aborting (C++ Core Guidelines E.2): simulator
// experiments are long-running and a caller (tests, benches) should be able
// to observe a violated invariant as an exception with context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dmc {

/// Thrown when an internal invariant of the library is violated (a bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError{os.str()};
}

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError{os.str()};
}
}  // namespace detail

}  // namespace dmc

/// Internal invariant; always checked (the simulator is the test oracle, so
/// we never compile these out).
#define DMC_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::dmc::detail::throw_invariant(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define DMC_ASSERT_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream dmc_os_;                                         \
      dmc_os_ << msg;                                                     \
      ::dmc::detail::throw_invariant(#expr, __FILE__, __LINE__,           \
                                     dmc_os_.str());                      \
    }                                                                     \
  } while (false)

/// Caller-facing precondition.
#define DMC_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::dmc::detail::throw_precondition(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define DMC_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream dmc_os_;                                          \
      dmc_os_ << msg;                                                      \
      ::dmc::detail::throw_precondition(#expr, __FILE__, __LINE__,         \
                                        dmc_os_.str());                    \
    }                                                                      \
  } while (false)
