// Small integer helpers used throughout the library.
#pragma once

#include <cstdint>

#include "util/assert.h"

namespace dmc {

/// ⌈log2(x)⌉ for x ≥ 1; ceil_log2(1) == 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  DMC_REQUIRE(x >= 1);
  std::uint32_t bits = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// ⌊log2(x)⌋ for x ≥ 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) {
  DMC_REQUIRE(x >= 1);
  std::uint32_t bits = 0;
  while (x >>= 1) ++bits;
  return bits;
}

/// ⌈a / b⌉ for b > 0.
[[nodiscard]] constexpr std::uint64_t div_ceil(std::uint64_t a,
                                               std::uint64_t b) {
  DMC_REQUIRE(b > 0);
  return (a + b - 1) / b;
}

/// ⌊√x⌋ computed exactly with integer arithmetic.
[[nodiscard]] constexpr std::uint64_t isqrt(std::uint64_t x) {
  if (x < 2) return x;
  std::uint64_t lo = 1, hi = 0xFFFFFFFFull;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (mid * mid <= x)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

/// ⌈√x⌉.
[[nodiscard]] constexpr std::uint64_t isqrt_ceil(std::uint64_t x) {
  const std::uint64_t r = isqrt(x);
  return r * r == x ? r : r + 1;
}

}  // namespace dmc
