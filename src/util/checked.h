// Guarded 64-bit accumulation for the wide-weight regime.
//
// Weight is 64-bit and a single edge is capped at kMaxWeight = 2³²−1, so
// a sum wraps only past ~2³¹ contributions — far beyond today's test
// sizes, but silent wraparound in cut accumulation (a cut value, a
// weighted degree, a δ↓/ρ↓ aggregate, the double-counted crossing sum)
// would corrupt answers invisibly rather than fail.  Every such
// accumulation therefore goes through these helpers: one overflow flag
// per add, throwing InvariantError instead of wrapping.  dmc::check's
// wide regime and the kMaxWeight regressions in test_cut_verify /
// test_check exercise the paths near the cap.
#pragma once

#include <cstdint>

#include "util/assert.h"

namespace dmc {

/// a + b, throwing InvariantError on 64-bit wraparound.
[[nodiscard]] inline std::uint64_t checked_add(std::uint64_t a,
                                               std::uint64_t b) {
  std::uint64_t s = 0;
  DMC_ASSERT_MSG(!__builtin_add_overflow(a, b, &s),
                 "64-bit accumulation overflow: " << a << " + " << b);
  return s;
}

/// 2·a with the same guard (Karger's identity C(v↓) = δ↓ − 2ρ↓ and the
/// both-endpoints crossing count are the doubling hot spots).
[[nodiscard]] inline std::uint64_t checked_double(std::uint64_t a) {
  return checked_add(a, a);
}

}  // namespace dmc
