#include "util/prng.h"

#include <cmath>

#include "util/assert.h"

namespace dmc {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                          std::uint64_t b) {
  return mix64(mix64(seed ^ mix64(a)) ^ mix64(b ^ 0xA5A5A5A5A5A5A5A5ull));
}

Prng::Prng(std::uint64_t seed) {
  // SplitMix64 seeding as recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& word : s_) {
    x += 0x9E3779B97F4A7C15ull;
    word = mix64(x);
  }
  // All-zero state is invalid for xoshiro; mix64 of distinct inputs cannot
  // produce four zeros, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Prng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::next_below(std::uint64_t bound) {
  DMC_REQUIRE(bound >= 1);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Prng::next_in(std::uint64_t lo, std::uint64_t hi) {
  DMC_REQUIRE(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Prng::next_double() {
  // 53 top bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Prng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Prng::next_binomial(std::uint64_t trials, double p) {
  if (trials == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return trials;
  const double expected = static_cast<double>(trials) * p;
  if (expected > 1e6) {
    // Normal approximation with continuity correction; only reachable with
    // extreme weight × probability combinations (documented in DESIGN.md).
    const double sigma = std::sqrt(expected * (1.0 - p));
    // Box–Muller.
    const double u1 = std::max(next_double(), 1e-300);
    const double u2 = next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double x = expected + sigma * z + 0.5;
    if (x < 0) x = 0;
    if (x > static_cast<double>(trials)) x = static_cast<double>(trials);
    return static_cast<std::uint64_t>(x);
  }
  // Geometric skipping: the gap to the next success is Geometric(p); expected
  // O(trials·p) iterations.
  const double log_q = std::log1p(-p);
  std::uint64_t successes = 0;
  double position = 0.0;
  for (;;) {
    const double u = std::max(next_double(), 1e-300);
    position += std::floor(std::log(u) / log_q) + 1.0;
    if (position > static_cast<double>(trials)) return successes;
    ++successes;
  }
}

}  // namespace dmc
