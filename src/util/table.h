// Column-aligned ASCII table printer for benchmark/experiment output.
//
// Every bench binary in bench/ prints its experiment as one of these tables
// so EXPERIMENTS.md can quote the output verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dmc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with `cell()` below.
  [[nodiscard]] static std::string cell(const std::string& s) { return s; }
  [[nodiscard]] static std::string cell(const char* s) { return s; }
  [[nodiscard]] static std::string cell(double v, int precision = 3);
  [[nodiscard]] static std::string cell(std::uint64_t v);
  [[nodiscard]] static std::string cell(std::int64_t v);
  [[nodiscard]] static std::string cell(std::uint32_t v);
  [[nodiscard]] static std::string cell(int v);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmc
