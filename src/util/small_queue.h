// SmallQueue: a FIFO that costs nothing until the first push.
//
// std::deque is the wrong tool for per-node relay queues: libstdc++
// eagerly allocates a block map plus one 512-byte node for every deque,
// even one that never sees an element.  A protocol holding one queue per
// node (and one per tree child) therefore pays ~1.5 KB/node of resident
// memory before the first message moves — the dominant allocation at the
// 10^5–10^6-node scaling tier.  This queue is a vector plus a head index:
// an empty queue is 32 bytes of inline storage and zero heap, push_back
// amortizes like vector, and the dead prefix is compacted once it
// dominates the buffer, keeping space O(live elements).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dmc {

template <typename T>
class SmallQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }

  void push_back(const T& t) { buf_.push_back(t); }
  void push_back(T&& t) { buf_.push_back(std::move(t)); }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }

  void pop_front() {
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 16 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_{0};
};

}  // namespace dmc
