// Minimal command-line option parser for examples and bench binaries.
//
// Syntax: --key=value or --flag.  Positional arguments are rejected — the
// binaries in this repo are all fully keyword-configured for
// scriptability.  Binaries declare their accepted keys up front, so a
// typo ("--tres=8") fails loudly with the accepted-key list instead of
// being silently swallowed.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

namespace dmc {

class Options {
 public:
  /// Strict form — every binary should use this: any --key outside
  /// `known` throws PreconditionError listing the accepted keys.
  Options(int argc, const char* const* argv,
          std::initializer_list<const char*> known);

  /// Permissive form (accepts any key); for tests and embedding only.
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Closed-vocabulary value (e.g. --algo=exact|approx|su|gk): returns the
  /// value (or `fallback` when the key is absent) after checking it is one
  /// of `allowed`; throws PreconditionError listing the allowed values
  /// otherwise.  The fallback itself must be an allowed value.
  [[nodiscard]] std::string get_enum(
      const std::string& key, const std::string& fallback,
      std::initializer_list<const char*> allowed) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace dmc
