// Minimal command-line option parser for examples and bench binaries.
//
// Syntax: --key=value or --flag.  Positional arguments are rejected — the
// binaries in this repo are all fully keyword-configured for scriptability.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dmc {

class Options {
 public:
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace dmc
