#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.h"

namespace dmc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DMC_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DMC_REQUIRE_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, table has "
                             << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(std::uint32_t v) { return std::to_string(v); }
std::string Table::cell(int v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
         << row[c] << " |";
    os << '\n';
  };
  const auto print_rule = [&] {
    os << '+';
    for (const std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace dmc
