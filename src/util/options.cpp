#include "util/options.h"

#include <stdexcept>

#include "util/assert.h"

namespace dmc {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    DMC_REQUIRE_MSG(arg.rfind("--", 0) == 0,
                    "expected --key=value or --flag, got '" << arg << "'");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos)
      kv_[body] = "true";
    else
      kv_[body.substr(0, eq)] = body.substr(eq + 1);
  }
}

Options::Options(int argc, const char* const* argv,
                 std::initializer_list<const char*> known)
    : Options(argc, argv) {
  for (const auto& [key, value] : kv_) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (ok) continue;
    std::string accepted;
    for (const char* k : known) {
      if (!accepted.empty()) accepted += ", ";
      accepted += "--";
      accepted += k;
    }
    DMC_REQUIRE_MSG(false, "unknown option --"
                               << key << "; accepted keys: "
                               << (accepted.empty() ? "(none)" : accepted));
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stoll(it->second);
}

std::uint64_t Options::get_uint(const std::string& key,
                                std::uint64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stoull(it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Options::get_enum(
    const std::string& key, const std::string& fallback,
    std::initializer_list<const char*> allowed) const {
  const std::string value = get_string(key, fallback);
  for (const char* a : allowed)
    if (value == a) return value;
  std::string list;
  for (const char* a : allowed) {
    if (!list.empty()) list += "|";
    list += a;
  }
  throw PreconditionError{"--" + key + "=" + value +
                          " is not a valid choice (expected --" + key + "=" +
                          list + ")"};
}

}  // namespace dmc
