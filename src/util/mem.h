// Heap-footprint helpers for byte-budgeted caches (serve/registry.h).
//
// The serving layer's LRU eviction works in bytes, so the structures it
// caches (Network slot planes, SessionInfra scaffolds, Graph CSR) expose a
// memory_bytes() built from these helpers.  The accounting is capacity-
// based (what the allocator holds, not what is logically in use) and
// deliberately excludes the containing object's own sizeof — callers
// charge that once at the top level if they care.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dmc {

/// Heap bytes held by a vector (capacity, not size).
template <class T>
[[nodiscard]] inline std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// vector<bool> packs ~8 bits per byte.
[[nodiscard]] inline std::size_t vec_bytes(const std::vector<bool>& v) {
  return v.capacity() / 8;
}

/// Strings below the SSO threshold hold no heap memory.
[[nodiscard]] inline std::size_t str_bytes(const std::string& s) {
  return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
}

/// Nested vectors: the outer spine plus every inner vector's heap block.
template <class T>
[[nodiscard]] inline std::size_t vec_bytes(
    const std::vector<std::vector<T>>& v) {
  std::size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const std::vector<T>& inner : v) total += vec_bytes(inner);
  return total;
}

}  // namespace dmc
