// Disjoint-set union (union–find) with union by size and path compression.
//
// Two flavors:
//  * `Dsu`      — dense, indices 0..n-1 (used by Kruskal, contraction, …).
//  * `SparseDsu`— keyed by arbitrary 64-bit ids (used by the CONGEST pipeline
//                 MST where fragment ids are leader node-ids not yet globally
//                 renumbered).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace dmc {

class Dsu {
 public:
  explicit Dsu(std::size_t n);

  /// Representative of x's component.
  [[nodiscard]] std::size_t find(std::size_t x);

  /// Merges the components of a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b);

  [[nodiscard]] bool same(std::size_t a, std::size_t b);

  /// Number of distinct components.
  [[nodiscard]] std::size_t components() const { return components_; }

  /// Size of x's component.
  [[nodiscard]] std::size_t component_size(std::size_t x);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t components_;
};

class SparseDsu {
 public:
  SparseDsu() = default;

  /// Representative of x's component (auto-inserts singletons).
  [[nodiscard]] std::uint64_t find(std::uint64_t x);

  bool unite(std::uint64_t a, std::uint64_t b);

  [[nodiscard]] bool same(std::uint64_t a, std::uint64_t b);

  [[nodiscard]] std::size_t known_keys() const { return parent_.size(); }

 private:
  // Ordered maps by determinism policy (dmc_lint R1): find/unite never
  // iterate, but keeping the whole deterministic layer hash-map-free is
  // cheaper than auditing every future caller.
  std::map<std::uint64_t, std::uint64_t> parent_;
  std::map<std::uint64_t, std::uint32_t> rank_;
};

}  // namespace dmc
