// Umbrella header for dmc::serve — the multi-graph serving layer.
//
//   serve/registry.h   GraphId, GraphRegistry (LRU byte-budgeted warm cache)
//   serve/admission.h  AdmissionController (bounded backlog, deterministic)
//   serve/server.h     Server, ServeRequest/Response, ServeOutcome
//   serve/workload.h   Workload synthesis + trace text format
//   serve/stats.h      RegistryStats, AdmissionStats, DispatchStats
//
// DESIGN.md "Multi-graph serving architecture" carries the design notes.
#pragma once

#include "serve/admission.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/stats.h"
#include "serve/workload.h"
