#include "serve/workload.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/assert.h"
#include "util/prng.h"

namespace dmc {

namespace {

/// Inverse-CDF Zipf sampler over [0, n): P(i) ∝ 1/(i+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    DMC_REQUIRE(n > 0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] std::size_t draw(Prng& prng) const {
    const double u = prng.next_double();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Workload synth_workload(const SynthOptions& opt) {
  DMC_REQUIRE(opt.num_graphs > 0);
  DMC_REQUIRE(opt.zipf_s >= 0.0);
  DMC_REQUIRE(opt.mean_interarrival_s >= 0.0);

  Workload w;
  w.graphs.reserve(opt.num_graphs);
  for (std::size_t i = 0; i < opt.num_graphs; ++i) {
    WorkloadGraphSpec spec;
    spec.family = opt.family;
    spec.n = opt.n;
    spec.min_w = opt.min_w;
    spec.max_w = opt.max_w;
    spec.seed = derive_seed(opt.seed, /*a=*/1, /*b=*/i);
    w.graphs.push_back(std::move(spec));
  }

  const ZipfSampler zipf{opt.num_graphs, opt.zipf_s};
  Prng prng{derive_seed(opt.seed, /*a=*/2)};
  double t = 0.0;
  w.requests.reserve(opt.num_requests);
  for (std::size_t i = 0; i < opt.num_requests; ++i) {
    WorkloadRequest req;
    req.graph = zipf.draw(prng);
    req.algo = opt.algo;
    req.eps = opt.eps;
    req.deadline_s = opt.deadline_s;
    req.seed = derive_seed(opt.seed, /*a=*/3, /*b=*/i);
    if (opt.mean_interarrival_s > 0.0) {
      // Exponential gap; 1 - u ∈ (0, 1] keeps the log finite.
      t += -opt.mean_interarrival_s * std::log(1.0 - prng.next_double());
    }
    req.at_s = t;
    w.requests.push_back(req);
  }
  return w;
}

Graph build_graph(const WorkloadGraphSpec& spec) {
  const GraphFamily& family = graph_family(spec.family);
  return family.make(spec.n, spec.seed, spec.min_w, spec.max_w);
}

std::string write_workload(const Workload& w) {
  std::ostringstream out;
  out << "# dmc_serve workload: " << w.graphs.size() << " graphs, "
      << w.requests.size() << " requests\n";
  out << "# graph <family> <n> <min_w> <max_w> <seed>\n";
  for (const WorkloadGraphSpec& g : w.graphs)
    out << "graph " << g.family << ' ' << g.n << ' ' << g.min_w << ' '
        << g.max_w << ' ' << g.seed << '\n';
  out << "# req <at_s> <graph_index> <algo> <seed> <eps> <deadline_s>\n";
  for (const WorkloadRequest& r : w.requests)
    out << "req " << r.at_s << ' ' << r.graph << ' ' << to_string(r.algo)
        << ' ' << r.seed << ' ' << r.eps << ' ' << r.deadline_s << '\n';
  return out.str();
}

Workload parse_workload(const std::string& text) {
  Workload w;
  std::istringstream in{text};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    std::string kind;
    fields >> kind;
    if (kind == "graph") {
      WorkloadGraphSpec g;
      fields >> g.family >> g.n >> g.min_w >> g.max_w >> g.seed;
      DMC_REQUIRE_MSG(static_cast<bool>(fields),
                      "workload line " + std::to_string(lineno) +
                          ": expected 'graph <family> <n> <min_w> <max_w> "
                          "<seed>'");
      (void)graph_family(g.family);  // validate the name now, loudly
      w.graphs.push_back(std::move(g));
    } else if (kind == "req") {
      WorkloadRequest r;
      std::string algo;
      fields >> r.at_s >> r.graph >> algo >> r.seed >> r.eps >> r.deadline_s;
      DMC_REQUIRE_MSG(static_cast<bool>(fields),
                      "workload line " + std::to_string(lineno) +
                          ": expected 'req <at_s> <graph_index> <algo> "
                          "<seed> <eps> <deadline_s>'");
      r.algo = algo_from_string(algo);
      DMC_REQUIRE_MSG(r.graph < w.graphs.size(),
                      "workload line " + std::to_string(lineno) +
                          ": graph_index " + std::to_string(r.graph) +
                          " out of range (graph lines must come first)");
      w.requests.push_back(r);
    } else {
      DMC_REQUIRE_MSG(false, "workload line " + std::to_string(lineno) +
                                 ": unknown record '" + kind + "'");
    }
  }
  return w;
}

void save_workload(const Workload& w, const std::string& path) {
  std::ofstream out{path};
  DMC_REQUIRE_MSG(out.good(), "cannot open for write: " + path);
  out << write_workload(w);
  DMC_REQUIRE_MSG(out.good(), "write failed: " + path);
}

Workload load_workload(const std::string& path) {
  std::ifstream in{path};
  DMC_REQUIRE_MSG(in.good(), "cannot open workload file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_workload(buf.str());
}

}  // namespace dmc
