// Serving workloads: a deterministic synthesis of "many graphs, skewed
// popularity" request traces, plus a line-oriented text format shared by
// the dmc_serve CLI replayer (tools/dmc_serve.cpp) and the E10 latency
// bench (bench/bench_e10_serve_latency.cpp).
//
// A workload is G graph specs plus a time-stamped request trace.  The
// synthesizer draws each request's graph from a Zipf(s) popularity law
// (P(i) ∝ 1/(i+1)^s — a few graphs soak up most queries, the shape the
// registry's LRU is built for) and arrival times from exponential
// interarrivals (open-loop Poisson process), all from one seed, so the
// same spec always produces byte-identical traces — which is what makes
// admission-rejection patterns replayable (serve/admission.h).
//
// Text format (one record per line; '#' starts a comment):
//
//   graph <family> <n> <min_w> <max_w> <seed>
//   req <at_s> <graph_index> <algo> <seed> <eps> <deadline_s>
//
// graph_index is 0-based into the graph lines in file order; at_s is the
// arrival offset in seconds from trace start (0 everywhere = closed loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.h"
#include "graph/generators.h"

namespace dmc {

/// One registered graph, as parameters (instances rebuild via
/// build_graph, deterministic in the spec).
struct WorkloadGraphSpec {
  std::string family{"erdos_renyi"};
  std::size_t n{256};
  Weight min_w{12};
  Weight max_w{24};
  std::uint64_t seed{1};
};

/// One timed query against one of the workload's graphs.
struct WorkloadRequest {
  double at_s{0.0};
  std::size_t graph{0};  ///< index into Workload::graphs
  Algo algo{Algo::kGk};
  std::uint64_t seed{1};
  double eps{0.25};
  double deadline_s{0.0};  ///< 0 = no deadline
};

struct Workload {
  std::vector<WorkloadGraphSpec> graphs;
  std::vector<WorkloadRequest> requests;
};

/// Synthesis knobs.  Defaults target the E10 smoke shape: a handful of
/// medium graphs, gk queries, heavy skew.
struct SynthOptions {
  std::size_t num_graphs{8};
  std::size_t num_requests{200};
  /// Zipf exponent for graph popularity; larger = more skew.
  double zipf_s{1.1};
  /// Mean of the exponential interarrival gaps; 0 = closed loop (all
  /// requests at t = 0, back-to-back service).
  double mean_interarrival_s{0.0};
  /// Graph spec shared by every generated graph (seeds differ).
  std::string family{"erdos_renyi"};
  std::size_t n{256};
  Weight min_w{12};
  Weight max_w{24};
  Algo algo{Algo::kGk};
  double eps{0.25};
  double deadline_s{0.0};
  std::uint64_t seed{1};
};

/// Deterministic in `opt` (bit-identical trace for the same options).
[[nodiscard]] Workload synth_workload(const SynthOptions& opt);

/// Materializes a spec via the named-family registry
/// (graph/generators.h); deterministic in the spec.
[[nodiscard]] Graph build_graph(const WorkloadGraphSpec& spec);

/// Serializes to / parses from the text format above.  parse_workload
/// throws PreconditionError naming the offending line on malformed input.
[[nodiscard]] std::string write_workload(const Workload& w);
[[nodiscard]] Workload parse_workload(const std::string& text);

/// File convenience wrappers; throw PreconditionError on I/O failure.
void save_workload(const Workload& w, const std::string& path);
[[nodiscard]] Workload load_workload(const std::string& path);

}  // namespace dmc
