// dmc::Server — the library-level multi-graph serving layer.
//
// A long-lived Server fronts the warm-session machinery (core/session.h,
// core/warm.h, core/session_pool.h) for MANY graphs at once:
//
//   * a GraphRegistry (serve/registry.h) owns the registered graphs and
//     an LRU, byte-budgeted cache of warm per-graph serving state;
//   * an AdmissionController (serve/admission.h) bounds the request
//     backlog — past a depth/bytes watermark a request is rejected
//     immediately with Overloaded instead of queued without limit;
//   * a single dispatcher drains the queue in arrival order, COALESCING
//     each contiguous run of same-graph requests into one batch on that
//     graph's warm pool, so a hot graph amortizes its warm infrastructure
//     across the run while cold graphs build lazily on first touch;
//   * per-request deadlines ride the existing cooperative-cancellation
//     budgets: the remaining deadline becomes the query's time budget,
//     and an expired request reports DeadlineExpired, never a stale
//     answer.
//
// Correctness contract: every Ok response is BIT-IDENTICAL (value, side,
// every stat) to what a fresh cold Session over the same graph would
// produce for the same request — through warm hits, LRU eviction and
// rewarm cycles, and pool dispatch alike (tests/test_serve.cpp enforces
// all three).  Requests carrying a FaultPlan route AROUND the registry:
// a faulted bootstrap must re-run under every query (the warm cache
// records a reliable bootstrap — core/warm.h refuses to replay under a
// plan), so they solve on a private cold session and are counted loudly
// (RegistryStats::fault_bypasses) instead of silently missing the cache.
//
//   Server server;                       // default options
//   GraphId g = server.register_graph(make_erdos_renyi(256, 0.02, 1));
//   ServeRequest req;
//   req.graph = g;
//   req.query.algo = Algo::kGk;
//   ServeResponse r = server.serve(req); // admission → queue → dispatch
//   // r.outcome == ServeOutcome::kOk, r.report.value, r.warm_hit, …
//
// Threading: register/release/submit/serve/stats are safe from any
// thread.  One dispatcher thread (started by default) serializes all
// solving; with ServeOptions::start_dispatcher == false the owner drains
// explicitly via drain_queued() — the deterministic mode the admission
// tests and the latency bench's closed-loop phases use.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/registry.h"
#include "serve/stats.h"

namespace dmc {

struct ServeOptions {
  /// Registry: LRU byte budget for warm state and sessions per entry.
  std::size_t warm_byte_budget{std::size_t{64} << 20};
  std::size_t pool_sessions{1};
  /// Simulator configuration shared by every entry (one Server = one
  /// (scheduling, engine_threads) cell; see registry.h "Keying").
  unsigned engine_threads{1};
  std::optional<Scheduling> scheduling{};
  /// Admission watermarks (admission.h; 0 disables the respective one).
  std::size_t max_queue_depth{256};
  std::size_t max_queue_bytes{0};
  /// Longest same-graph run one dispatch may coalesce (0 = unlimited).
  /// Bounding it keeps a hot graph from starving a cold one forever.
  std::size_t max_coalesce{64};
  /// false = no dispatcher thread; the owner calls drain_queued().
  bool start_dispatcher{true};
};

struct ServeRequest {
  GraphId graph{0};
  MinCutRequest query{};
  /// Non-empty = this is an UPDATE request: the batch patches the
  /// registered graph in place (GraphRegistry::apply_update) and `query`,
  /// `fault_plan`, and `deadline_s` are ignored — an admitted update is
  /// never dropped, because every later query's answer depends on it.
  /// Updates never coalesce with queries and always break a same-graph
  /// run, so queue order defines which graph version each query sees.
  std::vector<EdgeUpdate> updates{};
  /// Deterministic fault plan for THIS query (congest/faults.h).  An
  /// active plan bypasses the warm registry: the query solves on a
  /// private cold session so its bootstrap re-absorbs the plan's faults,
  /// and the bypass is counted (never cached, never silent).
  std::optional<FaultPlan> fault_plan{};
  /// Seconds from submission the response stops being useful; 0 = none.
  /// Enforced cooperatively: the remaining deadline at dispatch becomes
  /// the query's time budget (min with query.time_budget_s).
  double deadline_s{0.0};
};

enum class ServeOutcome : std::uint8_t {
  kOk,
  kOverloaded,       ///< rejected at admission (depth/bytes watermark)
  kUnknownGraph,     ///< GraphId not registered (or released meanwhile)
  kDeadlineExpired,  ///< deadline passed before or during the solve
  kCancelled,        ///< the query's own round/time budget fired
  kFailed,           ///< solver threw (e.g. fault-tolerance rejection)
};

[[nodiscard]] const char* to_string(ServeOutcome o);

struct ServeResponse {
  ServeOutcome outcome{ServeOutcome::kOk};
  /// Valid iff outcome == kOk.
  MinCutReport report{};
  /// The dispatch found a live warm entry for the graph (registry hit).
  bool warm_hit{false};
  /// Served on a private cold session because of a fault plan.
  bool cold_bypass{false};
  double queue_seconds{0.0};  ///< submission → dispatch start
  double solve_seconds{0.0};  ///< dispatch start → completion
  /// Valid iff the request was an update and outcome == kOk: what the
  /// batch did to the graph (counts + damage inputs).
  UpdateSummary update{};
  /// Diagnostic for kFailed (the solver exception's message).
  std::string error;
};

class Server {
 public:
  explicit Server(ServeOptions opt = {});
  /// Stops the dispatcher, then serves the remaining backlog inline so
  /// every outstanding future resolves (admitted work is never dropped).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a graph for serving; the returned id names it in requests.
  [[nodiscard]] GraphId register_graph(Graph g);
  /// Unregisters; queued requests for the id resolve as kUnknownGraph.
  bool release_graph(GraphId id);

  /// Admission (immediate Overloaded/UnknownGraph resolution) or enqueue.
  /// The future resolves when the dispatcher — or a drain_queued() call —
  /// serves the request.
  [[nodiscard]] std::future<ServeResponse> submit(const ServeRequest& req);

  /// Synchronous convenience: submit and wait.  Without a dispatcher the
  /// calling thread drains the queue itself.
  [[nodiscard]] ServeResponse serve(const ServeRequest& req);

  /// Submits the whole batch (preserving adjacency, so same-graph runs
  /// coalesce) and waits for every response, in request order.
  [[nodiscard]] std::vector<ServeResponse> serve_many(
      std::span<const ServeRequest> reqs);

  /// Processes queued requests until the queue is empty; returns how many
  /// requests were served.  The manual-dispatch mode
  /// (start_dispatcher == false); also safe after stop().
  std::size_t drain_queued();

  /// Stops the dispatcher thread after its current run (idempotent).
  /// Queued requests stay queued for drain_queued() or the destructor.
  void stop();

  [[nodiscard]] ServeStats stats() const;
  /// Direct registry access for tests and operational tooling (eviction,
  /// byte interrogation).  Thread-safe.
  [[nodiscard]] GraphRegistry& registry() { return registry_; }
  [[nodiscard]] const ServeOptions& options() const { return opt_; }

 private:
  struct Pending {
    ServeRequest req;
    std::promise<ServeResponse> promise;
    // dmc-lint: allow(R1) -- deadline bookkeeping only (see server.cpp).
    std::chrono::steady_clock::time_point arrival;
    std::size_t bytes{0};  ///< admission charge, released at dispatch
  };

  void dispatcher_loop();
  /// Pops the longest coalescible same-graph run off the queue front.
  /// Requires queue_mu_ held; returns empty when the queue is empty.
  [[nodiscard]] std::vector<Pending> pop_run_locked();
  void dispatch_run(std::vector<Pending> run);
  /// Serves one update request: patches the registered graph through the
  /// registry (warm entries via their pool, cold graphs directly).
  void dispatch_update(Pending& p,
                       // dmc-lint: allow(R1) -- deadline bookkeeping only.
                       std::chrono::steady_clock::time_point dispatch_start);
  /// The fault-plan cold path: a private Session per request.
  void dispatch_cold(Pending& p, const Graph& g, bool warm_hit);
  /// Classifies one solved outcome into a response (deadline vs budget
  /// cancellation vs failure) and fulfils the promise.
  void settle(Pending& p, SessionPool::SolveOutcome&& outcome,
              bool warm_hit, bool cold_bypass,
              // dmc-lint: allow(R1) -- deadline bookkeeping only.
              std::chrono::steady_clock::time_point dispatch_start);

  ServeOptions opt_;
  GraphRegistry registry_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  AdmissionController admission_;  ///< guarded by queue_mu_
  std::deque<Pending> queue_;      ///< guarded by queue_mu_
  bool stop_{false};               ///< guarded by queue_mu_

  mutable std::mutex dispatch_mu_;  ///< guards dispatch_
  DispatchStats dispatch_;

  std::thread dispatcher_;
};

}  // namespace dmc
