// Serving-layer counters — one snapshot struct covering admission, the
// graph registry, coalescing, and per-outcome totals.
//
// The Server assembles a ServeStats from its components under its own
// locks, so a snapshot is internally consistent; individual counters are
// monotone except the two gauges (queue_depth, warm_bytes_resident).
// Everything here is observable cheaply — the latency-tier bench (E10)
// and the dmc_serve CLI print these next to their percentile tables.
#pragma once

#include <cstdint>

namespace dmc {

/// Registry-side counters (serve/registry.h).
struct RegistryStats {
  std::uint64_t hits{0};    ///< acquire found a live warm entry
  std::uint64_t misses{0};  ///< acquire had to build one (first touch)
  /// Misses on a graph whose warm entry existed before — i.e. an LRU
  /// eviction was paid back by a rebuild.  Subset of `misses`.
  std::uint64_t rewarms{0};
  std::uint64_t evictions{0};  ///< warm entries destroyed by the budget
  /// Queries that deliberately routed AROUND the registry because they
  /// carry a fault plan: a faulted bootstrap must re-run per query, and a
  /// faulted build may not pollute the warm cache (PR 7's warm-replay
  /// refusal).  Loud by design — a silent bypass would read as a miss.
  std::uint64_t fault_bypasses{0};
  std::uint64_t warm_bytes_resident{0};  ///< gauge: Σ live entry bytes
  std::uint64_t warm_bytes_high_water{0};
  std::uint64_t graphs_registered{0};  ///< gauge: live GraphIds
  /// Update batches applied through apply_update() — warm (patched via
  /// the entry's pool) and cold (patched directly) alike.
  std::uint64_t updates_applied{0};

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Admission-control counters (serve/admission.h).
struct AdmissionStats {
  std::uint64_t submitted{0};
  std::uint64_t admitted{0};
  std::uint64_t rejected_depth{0};  ///< Overloaded: queue depth watermark
  std::uint64_t rejected_bytes{0};  ///< Overloaded: queued-bytes watermark
  std::uint64_t queue_depth{0};     ///< gauge
  std::uint64_t queue_depth_high_water{0};
  std::uint64_t queued_bytes{0};  ///< gauge
};

/// Dispatch-side counters (serve/server.h).
struct DispatchStats {
  std::uint64_t completed{0};         ///< served to an Ok report
  std::uint64_t deadline_expired{0};  ///< deadline hit before/mid solve
  std::uint64_t cancelled{0};         ///< the request's own budget fired
  std::uint64_t failed{0};            ///< solver threw (e.g. fault reject)
  std::uint64_t unknown_graph{0};
  /// Contiguous same-graph runs drained as one batch, and the queries
  /// served inside runs of length ≥ 2 (the coalescing win).
  std::uint64_t coalesced_runs{0};
  std::uint64_t coalesced_queries{0};
  std::uint64_t warm_hits{0};  ///< responses served off a live warm entry
  std::uint64_t cold_serves{0};  ///< cold builds + fault bypasses
  std::uint64_t updates_applied{0};  ///< Update requests served to kOk
};

/// The full serving snapshot (Server::stats()).
struct ServeStats {
  AdmissionStats admission;
  RegistryStats registry;
  DispatchStats dispatch;
};

}  // namespace dmc
