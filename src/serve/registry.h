// The multi-graph registry: GraphId → owned graph + byte-budgeted LRU
// cache of warm serving state.
//
// The north-star workload is "millions of users, each with their own
// graph": far more registered graphs than fit in memory as warm
// simulators.  The cost shape of Nanongkai (PODC'14) / Nanongkai–Su
// (arXiv:1408.0557) makes λ-queries cheap to ANSWER once the per-graph
// infrastructure (slot planes, leader/BFS, scaffolds — core/warm.h)
// exists, but expensive to WARM UP — exactly the shape an LRU exploits:
// hot graphs keep their warm SessionPool resident, cold graphs hold only
// their Graph (CSR edge lists, ~100× smaller) and rebuild on next touch.
//
// Keying: one registry serves one (scheduling, engine_threads)
// configuration — those are pinned in Options::session at construction,
// so the warm state cached per GraphId is exactly the warm state per
// (graph, scheduling, engine_threads) triple.  Eviction and rewarm are
// CORRECTNESS-NEUTRAL: warm infrastructure is a pure function of that
// triple (test-enforced bit-identicality in tests/test_session.cpp), so a
// rebuilt entry answers bit-identically to the evicted one and to a fresh
// cold session (tests/test_serve.cpp closes the loop through this class).
//
// Concurrency: every method is safe to call from any thread (one internal
// mutex).  acquire() hands out shared_ptr leases; eviction drops the
// registry's reference, and an entry still leased by an in-flight
// dispatch is destroyed when the last lease releases — SessionPool's
// drain()-ordered destructor makes that teardown safe (TSan-covered).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
// dmc-lint: allow(R1) -- entries_ is lookup-only by GraphId; see below.
#include <unordered_map>

#include "core/session_pool.h"
#include "serve/stats.h"

namespace dmc {

/// Dense handle for a registered graph; assigned by the registry,
/// starting at 1 (0 is never a valid id).
using GraphId = std::uint64_t;

class GraphRegistry {
 public:
  struct Options {
    /// Evict least-recently-used warm entries once their summed
    /// memory_bytes() exceeds this; 0 = never evict.  The most recently
    /// acquired entry is never evicted, so one oversized graph still
    /// serves (over budget) rather than thrashing.
    std::size_t warm_byte_budget{std::size_t{64} << 20};
    /// Sessions per warm entry (SessionPool size).
    std::size_t pool_sessions{1};
    /// Simulator configuration every entry is built with.  fault_plan
    /// must stay empty: faulted queries bypass the registry entirely
    /// (Server routes them cold; note_fault_bypass() keeps the count).
    SessionOptions session{};
  };

  /// One live warm entry: the shared graph plus its warm pool.  The
  /// shared_ptr returned by acquire() is a lease — hold it across the
  /// whole dispatch so eviction can never pull the pool out from under a
  /// running solve.
  struct WarmEntry {
    /// Mutable so apply_update() can patch a live entry through its pool;
    /// read paths only ever see it as const (graph()).
    std::shared_ptr<Graph> graph;
    SessionPool pool;
    /// Serializes dispatches onto `pool` (SessionPool::solve_each calls
    /// must not overlap — workers claim sessions by fixed index).  Held
    /// by the Server around each coalesced run, and across the
    /// update_bytes() that follows it (byte reads need a quiescent pool);
    /// apply_update() holds it too, so updates serialize with runs.
    std::mutex dispatch_mu;

    WarmEntry(std::shared_ptr<Graph> g, std::size_t sessions,
              const SessionOptions& opt)
        : graph(std::move(g)), pool(*graph, sessions, opt) {}
  };

  explicit GraphRegistry(Options opt);

  /// Registers a graph and returns its id.  The graph is owned by the
  /// registry (shared with leases), so callers hand over by value.
  [[nodiscard]] GraphId add(Graph g);

  /// Unregisters `id`: drops the graph and any warm state.  Live leases
  /// keep both alive until released.  False when the id is unknown.
  bool erase(GraphId id);

  /// The registered graph, or nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const Graph> graph(GraphId id) const;

  /// A warm lease for `id`, building the entry on a miss; LRU-touches the
  /// entry and evicts colder entries past the byte budget.  Returns
  /// nullptr when the id is unknown.  `*warm_hit` (optional) reports
  /// whether a live warm entry served the call.
  [[nodiscard]] std::shared_ptr<WarmEntry> acquire(GraphId id,
                                                   bool* warm_hit = nullptr);

  /// Patches a registered graph IN PLACE (Graph::apply_updates) and
  /// re-accounts its warm bytes.  A live warm entry is patched through
  /// its pool — exclusive quiescent window + scoped invalidation of every
  /// pooled session (SessionPool::apply) — under the entry's dispatch_mu,
  /// so updates serialize with dispatched runs; a cold graph is patched
  /// directly and re-finalized.  Returns false when the id is unknown;
  /// throws InvariantError on an invalid batch (the graph is unchanged).
  /// `summary` (optional) receives what the batch did.
  bool apply_update(GraphId id, std::span<const EdgeUpdate> batch,
                    UpdateSummary* summary = nullptr);

  /// Re-reads the entry's memory_bytes() and re-applies the budget.  Call
  /// after a dispatched batch, while the pool is quiescent from the
  /// caller's side (warm stages build lazily, so bytes grow after the
  /// first queries of each algorithm class).
  void update_bytes(GraphId id);

  /// Drops `id`'s warm state only (the graph stays registered); false
  /// when the id is unknown or already cold.  The budget sweep uses this
  /// internally; exposed for tests and operational tooling.
  bool evict(GraphId id);

  /// Counts one query that routed around the warm cache because it
  /// carries a fault plan (Server's cold path — see stats.h).
  void note_fault_bypass();

  [[nodiscard]] RegistryStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<Graph> graph;  ///< read paths hand out const views
    std::shared_ptr<WarmEntry> warm;  ///< nullptr = cold
    std::size_t warm_bytes{0};
    bool was_warm_before{false};  ///< a prior warm entry was evicted
    std::list<GraphId>::iterator lru;  ///< valid iff warm != nullptr
  };

  /// Evicts LRU-tail entries (except `keep`) until within budget.
  /// Requires mu_ held.
  void evict_to_budget_locked(GraphId keep);
  void drop_warm_locked(Entry& e);

  mutable std::mutex mu_;
  Options opt_;
  // Never iterated: every access is a find() by GraphId, and eviction
  // order comes from lru_ (an explicit list), so no answer or eviction
  // decision can depend on hash iteration order.
  // dmc-lint: allow(R1) -- lookup-only by GraphId, never iterated
  std::unordered_map<GraphId, Entry> entries_;
  std::list<GraphId> lru_;  ///< front = most recently used warm entry
  GraphId next_id_{1};
  RegistryStats stats_;
};

}  // namespace dmc
