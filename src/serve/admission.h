// Admission control for the serving queue: a bounded backlog with two
// watermarks, rejected loudly instead of buffered without limit.
//
// The controller is deliberately a pure occupancy automaton: a decision
// depends only on (current depth, current queued bytes, the watermarks) —
// never on wall time, thread timing, or the dispatcher's progress within
// a round.  That makes rejection DETERMINISTIC under a replayed arrival
// trace: feed the same sequence of offer()/release() calls and exactly
// the same requests are rejected (test-enforced in tests/test_serve.cpp).
// The Server serializes offer/release under its queue mutex; the
// controller itself carries no lock.
//
// Rationale for rejecting at admission rather than queueing forever: a
// λ-query is cheap to ANSWER warm but expensive to warm up (the paper's
// cost shape), so under overload an unbounded queue converts transient
// bursts into unbounded latency for everyone.  Shedding at a depth/bytes
// watermark keeps the served requests' latency bounded and gives clients
// an immediate, retryable Overloaded signal.
#pragma once

#include <cstddef>

#include "serve/stats.h"

namespace dmc {

class AdmissionController {
 public:
  struct Options {
    /// Reject once the queue already holds this many requests (0 = no
    /// depth watermark).
    std::size_t max_queue_depth{256};
    /// Reject once the queued requests' accounted bytes reach this (0 =
    /// no bytes watermark).
    std::size_t max_queue_bytes{0};
  };

  enum class Decision : unsigned char {
    kAdmit,
    kRejectDepth,  ///< Overloaded: depth watermark
    kRejectBytes,  ///< Overloaded: bytes watermark
  };

  explicit AdmissionController(Options opt) : opt_(opt) {}

  /// Offers one request of `bytes` accounted size.  kAdmit charges the
  /// occupancy; a rejection changes nothing but the counters.
  [[nodiscard]] Decision offer(std::size_t bytes);

  /// The request left the queue (dispatched or abandoned); must pair with
  /// a successful offer() of the same `bytes`.
  void release(std::size_t bytes);

  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  Options opt_;
  AdmissionStats stats_;
};

}  // namespace dmc
