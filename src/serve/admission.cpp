#include "serve/admission.h"

#include <algorithm>

#include "util/assert.h"

namespace dmc {

AdmissionController::Decision AdmissionController::offer(std::size_t bytes) {
  ++stats_.submitted;
  if (opt_.max_queue_depth != 0 && stats_.queue_depth >= opt_.max_queue_depth) {
    ++stats_.rejected_depth;
    return Decision::kRejectDepth;
  }
  if (opt_.max_queue_bytes != 0 &&
      stats_.queued_bytes + bytes > opt_.max_queue_bytes) {
    ++stats_.rejected_bytes;
    return Decision::kRejectBytes;
  }
  ++stats_.admitted;
  ++stats_.queue_depth;
  stats_.queued_bytes += bytes;
  stats_.queue_depth_high_water =
      std::max(stats_.queue_depth_high_water, stats_.queue_depth);
  return Decision::kAdmit;
}

void AdmissionController::release(std::size_t bytes) {
  DMC_ASSERT(stats_.queue_depth > 0 && stats_.queued_bytes >= bytes);
  --stats_.queue_depth;
  stats_.queued_bytes -= bytes;
}

}  // namespace dmc
