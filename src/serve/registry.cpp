#include "serve/registry.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace dmc {

GraphRegistry::GraphRegistry(Options opt) : opt_(std::move(opt)) {
  DMC_REQUIRE_MSG(!opt_.session.fault_plan || !opt_.session.fault_plan->active(),
                  "registry sessions must be reliable — faulted queries "
                  "bypass the warm cache (Server routes them cold)");
  if (opt_.pool_sessions == 0) opt_.pool_sessions = 1;
}

GraphId GraphRegistry::add(Graph g) {
  // Finalize the CSR adjacency before the graph is shared across threads
  // (Graph::ports() rebuilds lazily and is not thread-safe while dirty).
  if (g.num_nodes() > 0) (void)g.port_offset(0);
  std::lock_guard lock{mu_};
  const GraphId id = next_id_++;
  Entry e;
  e.graph = std::make_shared<Graph>(std::move(g));
  entries_.emplace(id, std::move(e));
  ++stats_.graphs_registered;
  return id;
}

bool GraphRegistry::erase(GraphId id) {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.warm) drop_warm_locked(it->second);
  entries_.erase(it);
  --stats_.graphs_registered;
  return true;
}

std::shared_ptr<const Graph> GraphRegistry::graph(GraphId id) const {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.graph;
}

std::shared_ptr<GraphRegistry::WarmEntry> GraphRegistry::acquire(
    GraphId id, bool* warm_hit) {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  Entry& e = it->second;

  const bool hit = e.warm != nullptr;
  if (hit) {
    ++stats_.hits;
    lru_.erase(e.lru);  // touch: move to the front
  } else {
    ++stats_.misses;
    if (e.was_warm_before) ++stats_.rewarms;
    // Built under mu_: construction is cheap (the expensive warm stages
    // build lazily inside the first solves), and holding the lock keeps a
    // concurrent acquire of the same id from racing a second build.
    e.warm = std::make_shared<WarmEntry>(e.graph, opt_.pool_sessions,
                                         opt_.session);
    e.warm_bytes = e.warm->pool.memory_bytes();
    stats_.warm_bytes_resident += e.warm_bytes;
  }
  lru_.push_front(id);
  e.lru = lru_.begin();
  stats_.warm_bytes_high_water =
      std::max(stats_.warm_bytes_high_water, stats_.warm_bytes_resident);
  evict_to_budget_locked(/*keep=*/id);
  if (warm_hit) *warm_hit = hit;
  return e.warm;
}

bool GraphRegistry::apply_update(GraphId id,
                                 std::span<const EdgeUpdate> batch,
                                 UpdateSummary* summary) {
  // Snapshot the graph + warm lease under mu_, then patch OUTSIDE it —
  // SessionPool::apply can block on in-flight solves, and holding the
  // registry lock across that would stall every other graph's dispatch.
  std::shared_ptr<Graph> g;
  std::shared_ptr<WarmEntry> warm;
  {
    std::lock_guard lock{mu_};
    const auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    g = it->second.graph;
    warm = it->second.warm;
  }
  UpdateSummary s;
  if (warm) {
    // Serialize with dispatched runs exactly as the Server does, then let
    // the pool run its exclusive quiescent window + scoped invalidation.
    std::lock_guard dispatch_lock{warm->dispatch_mu};
    s = warm->pool.apply(batch);
  } else {
    s = g->apply_updates(batch);
    // Re-finalize before the graph is shared across threads again (the
    // lazy CSR rebuild after a delete is not thread-safe).
    if (g->num_nodes() > 0) (void)g->port_offset(0);
  }
  {
    std::lock_guard lock{mu_};
    ++stats_.updates_applied;
  }
  update_bytes(id);
  if (summary) *summary = s;
  return true;
}

void GraphRegistry::update_bytes(GraphId id) {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.warm) return;
  Entry& e = it->second;
  const std::size_t now = e.warm->pool.memory_bytes();
  stats_.warm_bytes_resident = stats_.warm_bytes_resident - e.warm_bytes + now;
  e.warm_bytes = now;
  stats_.warm_bytes_high_water =
      std::max(stats_.warm_bytes_high_water, stats_.warm_bytes_resident);
  evict_to_budget_locked(/*keep=*/id);
}

bool GraphRegistry::evict(GraphId id) {
  std::lock_guard lock{mu_};
  const auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.warm) return false;
  drop_warm_locked(it->second);
  ++stats_.evictions;
  return true;
}

void GraphRegistry::note_fault_bypass() {
  std::lock_guard lock{mu_};
  ++stats_.fault_bypasses;
}

RegistryStats GraphRegistry::stats() const {
  std::lock_guard lock{mu_};
  return stats_;
}

void GraphRegistry::evict_to_budget_locked(GraphId keep) {
  if (opt_.warm_byte_budget == 0) return;
  while (stats_.warm_bytes_resident > opt_.warm_byte_budget && !lru_.empty()) {
    const GraphId victim = lru_.back();
    // Never evict the entry just touched: an oversized single graph must
    // serve over budget, not rebuild on every query.
    if (victim == keep) break;
    const auto it = entries_.find(victim);
    DMC_ASSERT(it != entries_.end() && it->second.warm);
    drop_warm_locked(it->second);
    ++stats_.evictions;
  }
}

void GraphRegistry::drop_warm_locked(Entry& e) {
  // Dropping the registry's reference; an in-flight lease keeps the pool
  // alive until its dispatch completes (the pool destructor drains).
  stats_.warm_bytes_resident -= e.warm_bytes;
  e.warm_bytes = 0;
  e.warm.reset();
  e.was_warm_before = true;
  lru_.erase(e.lru);
}

}  // namespace dmc
