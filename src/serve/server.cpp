#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"
#include "util/mem.h"

namespace dmc {

namespace {

// Deadline enforcement and latency stats: the clock classifies timeouts
// and measures queue wait, never feeds the simulator, so every Ok answer
// stays bit-identical to a cold solve.
// dmc-lint: allow(R1) -- deadline/latency clock, feeds no answer
using Clock = std::chrono::steady_clock;

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Admission byte charge for one queued request: the queue node plus the
/// heap payloads a request can carry (a fault plan's crash schedule, an
/// update batch).
std::size_t request_bytes(const ServeRequest& req) {
  std::size_t bytes = sizeof(ServeRequest) + sizeof(std::promise<ServeResponse>);
  if (req.fault_plan) bytes += vec_bytes(req.fault_plan->crash_schedule);
  bytes += vec_bytes(req.updates);
  return bytes;
}

/// Remaining deadline seconds at `now`; negative = already expired.
double remaining_deadline(const ServeRequest& req, Clock::time_point arrival,
                          Clock::time_point now) {
  return req.deadline_s - secs(arrival, now);
}

}  // namespace

const char* to_string(ServeOutcome o) {
  switch (o) {
    case ServeOutcome::kOk: return "ok";
    case ServeOutcome::kOverloaded: return "overloaded";
    case ServeOutcome::kUnknownGraph: return "unknown_graph";
    case ServeOutcome::kDeadlineExpired: return "deadline_expired";
    case ServeOutcome::kCancelled: return "cancelled";
    case ServeOutcome::kFailed: return "failed";
  }
  return "?";
}

Server::Server(ServeOptions opt)
    : opt_(opt),
      registry_([&] {
        GraphRegistry::Options r;
        r.warm_byte_budget = opt.warm_byte_budget;
        r.pool_sessions = opt.pool_sessions;
        r.session.engine_threads = opt.engine_threads;
        r.session.scheduling = opt.scheduling;
        return r;
      }()),
      admission_({opt.max_queue_depth, opt.max_queue_bytes}) {
  if (opt_.start_dispatcher)
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Server::~Server() {
  stop();
  // Admitted work is never dropped: the backlog resolves before the
  // registry and queue are torn down.
  (void)drain_queued();
}

GraphId Server::register_graph(Graph g) { return registry_.add(std::move(g)); }

bool Server::release_graph(GraphId id) { return registry_.erase(id); }

std::future<ServeResponse> Server::submit(const ServeRequest& req) {
  Pending p;
  p.req = req;
  p.arrival = Clock::now();
  p.bytes = request_bytes(req);
  std::future<ServeResponse> fut = p.promise.get_future();

  // Unknown ids resolve immediately (dispatch re-checks — a graph can be
  // released while its requests sit queued).
  if (!registry_.graph(req.graph)) {
    {
      std::lock_guard lock{dispatch_mu_};
      ++dispatch_.unknown_graph;
    }
    ServeResponse r;
    r.outcome = ServeOutcome::kUnknownGraph;
    p.promise.set_value(std::move(r));
    return fut;
  }

  {
    std::lock_guard lock{queue_mu_};
    if (admission_.offer(p.bytes) != AdmissionController::Decision::kAdmit) {
      ServeResponse r;
      r.outcome = ServeOutcome::kOverloaded;
      p.promise.set_value(std::move(r));
      return fut;
    }
    queue_.push_back(std::move(p));
  }
  queue_cv_.notify_one();
  return fut;
}

ServeResponse Server::serve(const ServeRequest& req) {
  std::future<ServeResponse> fut = submit(req);
  if (!dispatcher_.joinable()) (void)drain_queued();
  return fut.get();
}

std::vector<ServeResponse> Server::serve_many(
    std::span<const ServeRequest> reqs) {
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(reqs.size());
  for (const ServeRequest& req : reqs) futures.push_back(submit(req));
  if (!dispatcher_.joinable()) (void)drain_queued();
  std::vector<ServeResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

void Server::stop() {
  {
    std::lock_guard lock{queue_mu_};
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServeStats Server::stats() const {
  ServeStats s;
  {
    std::lock_guard lock{queue_mu_};
    s.admission = admission_.stats();
  }
  s.registry = registry_.stats();
  {
    std::lock_guard lock{dispatch_mu_};
    s.dispatch = dispatch_;
  }
  return s;
}

void Server::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> run;
    {
      std::unique_lock lock{queue_mu_};
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      run = pop_run_locked();
    }
    dispatch_run(std::move(run));
  }
}

std::size_t Server::drain_queued() {
  std::size_t served = 0;
  for (;;) {
    std::vector<Pending> run;
    {
      std::lock_guard lock{queue_mu_};
      run = pop_run_locked();
    }
    if (run.empty()) return served;
    served += run.size();
    dispatch_run(std::move(run));
  }
}

std::vector<Server::Pending> Server::pop_run_locked() {
  std::vector<Pending> run;
  if (queue_.empty()) return run;
  const GraphId gid = queue_.front().req.graph;
  const bool faulted = queue_.front().req.fault_plan &&
                       queue_.front().req.fault_plan->active();
  const bool update = !queue_.front().req.updates.empty();
  while (!queue_.empty() &&
         (opt_.max_coalesce == 0 || run.size() < opt_.max_coalesce)) {
    Pending& front = queue_.front();
    const bool front_faulted =
        front.req.fault_plan && front.req.fault_plan->active();
    // Coalesce only same-graph, same-path (warm vs fault-bypass) runs;
    // faulted requests each need a private cold session anyway.  Updates
    // always pop alone and break any run: queue order defines which graph
    // version each query sees, so an update may never be reordered into
    // or past a query batch.
    if (front.req.graph != gid || front_faulted != faulted ||
        !front.req.updates.empty() != update)
      break;
    if ((faulted || update) && !run.empty()) break;
    admission_.release(front.bytes);
    run.push_back(std::move(front));
    queue_.pop_front();
  }
  return run;
}

void Server::dispatch_run(std::vector<Pending> run) {
  const auto start = Clock::now();
  const GraphId gid = run.front().req.graph;
  if (!run.front().req.updates.empty()) {
    // Updates pop alone (pop_run_locked) and don't count as coalesced
    // runs — they are graph mutations, not query batches.
    DMC_ASSERT(run.size() == 1);
    dispatch_update(run.front(), start);
    return;
  }
  {
    std::lock_guard lock{dispatch_mu_};
    ++dispatch_.coalesced_runs;
    if (run.size() >= 2) dispatch_.coalesced_queries += run.size();
  }

  const bool faulted =
      run.front().req.fault_plan && run.front().req.fault_plan->active();
  if (faulted) {
    // Fault-plan route: AROUND the warm registry, loudly counted.  The
    // cached bootstrap is reliable — replaying it would silently
    // un-inject the plan (core/warm.h), and a faulted build must never
    // pollute the cache.
    const std::shared_ptr<const Graph> g = registry_.graph(gid);
    for (Pending& p : run) {
      if (!g) {
        std::lock_guard lock{dispatch_mu_};
        ++dispatch_.unknown_graph;
        ServeResponse r;
        r.outcome = ServeOutcome::kUnknownGraph;
        p.promise.set_value(std::move(r));
        continue;
      }
      registry_.note_fault_bypass();
      dispatch_cold(p, *g, /*warm_hit=*/false);
    }
    return;
  }

  bool warm_hit = false;
  const std::shared_ptr<GraphRegistry::WarmEntry> lease =
      registry_.acquire(gid, &warm_hit);
  if (!lease) {
    for (Pending& p : run) {
      std::lock_guard lock{dispatch_mu_};
      ++dispatch_.unknown_graph;
      ServeResponse r;
      r.outcome = ServeOutcome::kUnknownGraph;
      p.promise.set_value(std::move(r));
    }
    return;
  }

  // Deadline pass: expired requests settle without solving; live ones get
  // the remaining deadline folded into their cooperative time budget.
  std::vector<MinCutRequest> effective;
  std::vector<std::size_t> live;
  effective.reserve(run.size());
  live.reserve(run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    Pending& p = run[i];
    MinCutRequest q = p.req.query;
    if (p.req.deadline_s > 0.0) {
      const double left = remaining_deadline(p.req, p.arrival, Clock::now());
      if (left <= 0.0) {
        std::lock_guard lock{dispatch_mu_};
        ++dispatch_.deadline_expired;
        ServeResponse r;
        r.outcome = ServeOutcome::kDeadlineExpired;
        r.warm_hit = warm_hit;
        r.queue_seconds = secs(p.arrival, start);
        p.promise.set_value(std::move(r));
        continue;
      }
      q.time_budget_s =
          q.time_budget_s > 0.0 ? std::min(q.time_budget_s, left) : left;
    }
    effective.push_back(q);
    live.push_back(i);
  }

  {
    // Serialize onto this entry's pool (solve_each calls must not
    // overlap) and keep the byte re-read inside the quiescent window.
    std::lock_guard dispatch_lock{lease->dispatch_mu};
    std::vector<SessionPool::SolveOutcome> outcomes =
        lease->pool.solve_each(effective);
    for (std::size_t j = 0; j < outcomes.size(); ++j)
      settle(run[live[j]], std::move(outcomes[j]), warm_hit,
             /*cold_bypass=*/false, start);
    registry_.update_bytes(gid);
  }
}

void Server::dispatch_update(Pending& p, Clock::time_point dispatch_start) {
  ServeResponse r;
  r.queue_seconds = secs(p.arrival, dispatch_start);
  try {
    UpdateSummary summary;
    if (!registry_.apply_update(p.req.graph, p.req.updates, &summary)) {
      r.outcome = ServeOutcome::kUnknownGraph;
      std::lock_guard lock{dispatch_mu_};
      ++dispatch_.unknown_graph;
    } else {
      r.outcome = ServeOutcome::kOk;
      r.update = summary;
      r.solve_seconds = secs(dispatch_start, Clock::now());
      std::lock_guard lock{dispatch_mu_};
      ++dispatch_.updates_applied;
    }
  } catch (const std::exception& e) {
    // An invalid batch (InvariantError) leaves the graph unchanged — the
    // submitter learns why; queued queries keep serving the old graph.
    r.outcome = ServeOutcome::kFailed;
    r.error = e.what();
    std::lock_guard lock{dispatch_mu_};
    ++dispatch_.failed;
  }
  p.promise.set_value(std::move(r));
}

void Server::dispatch_cold(Pending& p, const Graph& g, bool warm_hit) {
  const auto start = Clock::now();
  SessionOptions sopt;
  sopt.engine_threads = opt_.engine_threads;
  sopt.scheduling = opt_.scheduling;
  sopt.fault_plan = p.req.fault_plan;

  MinCutRequest q = p.req.query;
  if (p.req.deadline_s > 0.0) {
    const double left = remaining_deadline(p.req, p.arrival, Clock::now());
    if (left <= 0.0) {
      std::lock_guard lock{dispatch_mu_};
      ++dispatch_.deadline_expired;
      ServeResponse r;
      r.outcome = ServeOutcome::kDeadlineExpired;
      r.queue_seconds = secs(p.arrival, start);
      p.promise.set_value(std::move(r));
      return;
    }
    q.time_budget_s =
        q.time_budget_s > 0.0 ? std::min(q.time_budget_s, left) : left;
  }

  SessionPool::SolveOutcome outcome;
  try {
    Session session{g, sopt};
    outcome.report = session.solve(q);
  } catch (...) {
    outcome.error = std::current_exception();
  }
  settle(p, std::move(outcome), warm_hit, /*cold_bypass=*/true, start);
}

void Server::settle(Pending& p, SessionPool::SolveOutcome&& outcome,
                    bool warm_hit, bool cold_bypass,
                    Clock::time_point dispatch_start) {
  ServeResponse r;
  r.warm_hit = warm_hit;
  r.cold_bypass = cold_bypass;
  r.queue_seconds = secs(p.arrival, dispatch_start);
  r.solve_seconds = secs(dispatch_start, Clock::now());

  std::lock_guard lock{dispatch_mu_};
  if (!outcome.error) {
    r.outcome = ServeOutcome::kOk;
    r.report = std::move(outcome.report);
    ++dispatch_.completed;
    if (warm_hit)
      ++dispatch_.warm_hits;
    else
      ++dispatch_.cold_serves;
  } else {
    try {
      std::rethrow_exception(outcome.error);
    } catch (const CancelledError&) {
      // A deadline-derived budget and the request's own budget both
      // surface as CancelledError; the deadline clock disambiguates.
      if (p.req.deadline_s > 0.0 &&
          remaining_deadline(p.req, p.arrival, Clock::now()) <= 0.0) {
        r.outcome = ServeOutcome::kDeadlineExpired;
        ++dispatch_.deadline_expired;
      } else {
        r.outcome = ServeOutcome::kCancelled;
        ++dispatch_.cancelled;
      }
    } catch (const std::exception& e) {
      r.outcome = ServeOutcome::kFailed;
      r.error = e.what();
      ++dispatch_.failed;
    }
  }
  p.promise.set_value(std::move(r));
}

}  // namespace dmc
