#include "check/scenario.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <string_view>
#include <utility>

#include "congest/message.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/schedule.h"
#include "core/cut_verify.h"
#include "graph/algorithms.h"
#include "graph/cut.h"
#include "graph/io.h"
#include "util/prng.h"

namespace dmc::check {

namespace {

/// Estimate-only baselines (kSu/kGk) carry no per-instance guarantee
/// tighter than a multiplicative band; this is the sweep-wide bound
/// (the per-instance tests in tests/test_mincut_dist.cpp use 16–32×).
constexpr double kEstimateBand = 64.0;
constexpr double kApproxEps = 0.25;

const OracleRegistry& registry_of(const RunnerOptions& opt) {
  return opt.oracles ? *opt.oracles : OracleRegistry::standard();
}

/// Outcome of the graph-level differential check — the unit both
/// run_cell and the shrink predicate are built from.
struct GraphCheck {
  bool ok{true};
  std::string message;  ///< first violated contract
  Weight lambda{0};
  std::size_t oracles_consulted{0};
  std::size_t assertions{0};
  bool rejected{false};  ///< the fault plan was rejected loudly (see cell)
  MinCutReport report;
};

MinCutRequest request_for(const Scenario& s, std::uint64_t seed) {
  MinCutRequest req;
  req.algo = s.algo;
  req.eps = kApproxEps;
  req.seed = derive_seed(seed, s.id, 7);
  return req;
}

/// The loud-rejection marker Network::run stamps into the InvariantError
/// it throws when a fault of an undeclared kind fires.
[[nodiscard]] bool is_fault_rejection(const std::exception& e) {
  return std::string_view{e.what()}.find(
             "does not tolerate injected faults") != std::string_view::npos;
}

/// First field on which two reports differ (ignoring wall time), or ""
/// when bit-identical — the update axis's warm-vs-cold contract.
std::string diff_reports(const MinCutReport& a, const MinCutReport& b) {
  std::ostringstream os;
  const auto field = [&os](const char* name, auto x, auto y) {
    if (os.tellp() == 0 && !(x == y))
      os << name << ": warm " << x << " vs fresh " << y;
  };
  field("algo", static_cast<int>(a.algo), static_cast<int>(b.algo));
  field("value", a.value, b.value);
  if (os.tellp() == 0 && a.side != b.side) os << "side bitmaps differ";
  field("v_star", a.v_star, b.v_star);
  field("trees_packed", a.trees_packed, b.trees_packed);
  field("tree_of_best", a.tree_of_best, b.tree_of_best);
  field("fragments", a.fragments, b.fragments);
  field("p", a.p, b.p);
  field("lambda_hat", a.lambda_hat, b.lambda_hat);
  field("sampled", a.sampled, b.sampled);
  field("attempts", a.attempts, b.attempts);
  field("q_threshold", a.q_threshold, b.q_threshold);
  // CongestStats::operator== is exact, per-protocol breakdown included.
  if (os.tellp() == 0 && !(a.stats == b.stats)) os << "CONGEST stats differ";
  return os.str();
}

/// One update rendered for failure reports, e.g. "reweight e3 -> 7".
std::string format_update(const EdgeUpdate& u) {
  std::ostringstream os;
  switch (u.kind) {
    case UpdateKind::kInsert:
      os << "insert " << u.u << '-' << u.v << " w" << u.w;
      break;
    case UpdateKind::kDelete:
      os << "delete e" << u.edge;
      break;
    case UpdateKind::kReweight:
      os << "reweight e" << u.edge << " -> " << u.w;
      break;
  }
  return os.str();
}

std::string format_updates(std::span<const EdgeUpdate> batch) {
  std::ostringstream os;
  for (std::size_t i = 0; i < batch.size(); ++i)
    os << (i ? "; " : "") << format_update(batch[i]);
  return os.str();
}

/// Semantic pre-validation of a candidate batch against `m0` pre-batch
/// edges — the shrinker removes arbitrary subsequences, which can orphan
/// a delete/reweight of a batch-inserted id; such candidates are INVALID
/// (not failing) and must never shrink-accept.  Mirrors the id rules of
/// Graph::apply_updates exactly.
bool valid_update_batch(std::size_t m0, std::span<const EdgeUpdate> batch,
                        std::size_t n) {
  std::size_t inserts = 0;
  std::vector<bool> deleted(m0 + batch.size(), false);
  for (const EdgeUpdate& u : batch) {
    switch (u.kind) {
      case UpdateKind::kInsert:
        if (u.u >= n || u.v >= n || u.u == u.v || u.w < 1 ||
            u.w > kMaxWeight)
          return false;
        ++inserts;
        break;
      case UpdateKind::kDelete:
        if (u.edge >= m0 + inserts || deleted[u.edge]) return false;
        deleted[u.edge] = true;
        break;
      case UpdateKind::kReweight:
        if (u.edge >= m0 + inserts || deleted[u.edge] || u.w < 1 ||
            u.w > kMaxWeight)
          return false;
        break;
    }
  }
  return true;
}

/// λ and the algorithm contract on one concrete graph.  Deterministic in
/// (g, s, seed); exceptions anywhere inside count as failures, so crashes
/// shrink exactly like wrong answers.
GraphCheck check_graph(const Graph& g, const Scenario& s, std::uint64_t seed,
                       const RunnerOptions& opt) {
  GraphCheck out;
  const auto fail = [&out](const std::string& msg) {
    if (out.ok) {
      out.ok = false;
      out.message = msg;
    }
  };
  try {
    // 1. Establish λ by consensus of independent centralized oracles.
    const ConsensusResult consensus = oracle_consensus(
        registry_of(opt), g, derive_seed(seed, s.id), opt.audit_distributed);
    out.lambda = consensus.lambda;
    out.oracles_consulted = consensus.oracles_consulted;
    ++out.assertions;
    if (!consensus.ok()) {
      fail("oracle dissent: " + consensus.dissent_summary());
      return out;
    }

    // 2. Run the system under test through the session façade — under the
    //    cell's deterministic fault plan when the fault axis is active.
    SessionOptions sopt{s.engine_threads, s.scheduling};
    if (s.faults != FaultProfile::kNone)
      sopt.fault_plan = fault_plan_for(s.faults, g.num_nodes(),
                                       derive_seed(seed, s.id, 11));
    Session session{g, sopt};
    try {
      out.report = session.solve(request_for(s, seed));
    } catch (const InvariantError& e) {
      ++out.assertions;
      // Loud rejection — never a wrong λ — is the accepted outcome for
      // kDrop/kDupReorder (some pipeline protocol is drop/dup-intolerant)
      // and the REQUIRED one for kCrash.  Reorder is declared by every
      // protocol in the pipeline, so a kReorder rejection is a real bug.
      if (s.faults != FaultProfile::kNone &&
          s.faults != FaultProfile::kReorder && is_fault_rejection(e)) {
        out.rejected = true;
        return out;
      }
      throw;  // re-caught below as a cell failure
    }
    if (s.faults != FaultProfile::kNone) {
      ++out.assertions;
      if (s.faults == FaultProfile::kCrash) {
        // The crash window fires in round 2 of the (crash-intolerant)
        // bootstrap leader election of every cold solve, so completing
        // means the injection silently vanished.
        fail("crash plan produced an answer instead of a loud rejection");
        return out;
      }
    }
    const MinCutReport& rep = out.report;
    std::ostringstream why;

    // 3. The algorithm's contract against consensus λ.
    const Weight lambda = consensus.lambda;
    switch (s.algo) {
      case Algo::kExact:
        ++out.assertions;
        if (rep.value != lambda) {
          why << "exact value " << rep.value << " != lambda " << lambda;
          fail(why.str());
        }
        break;
      case Algo::kApprox: {
        ++out.assertions;
        const auto bound = static_cast<double>(lambda) * (1.0 + kApproxEps);
        if (rep.value < lambda ||
            static_cast<double>(rep.value) > bound) {
          why << "approx value " << rep.value << " outside [" << lambda
              << ", " << bound << "]";
          fail(why.str());
        }
        break;
      }
      case Algo::kSu:
      case Algo::kGk: {
        ++out.assertions;
        const double ratio = static_cast<double>(rep.value) /
                             static_cast<double>(std::max<Weight>(lambda, 1));
        if (rep.value < 1 || ratio > kEstimateBand ||
            ratio < 1.0 / kEstimateBand) {
          why << to_string(s.algo) << " estimate " << rep.value
              << " outside the " << kEstimateBand << "x band of lambda "
              << lambda;
          fail(why.str());
        }
        break;
      }
    }

    // 4. Witness validation for the cut-producing algorithms: central
    //    recount, and the network's own O(D)-round audit (cut_verify).
    if (s.algo == Algo::kExact || s.algo == Algo::kApprox) {
      ++out.assertions;
      if (rep.side.size() != g.num_nodes() || !is_nontrivial(rep.side)) {
        fail("witness side is malformed or trivial");
      } else if (cut_value(g, rep.side) != rep.value) {
        why << "witness achieves " << cut_value(g, rep.side)
            << ", reported " << rep.value;
        fail(why.str());
      } else if (opt.audit_distributed) {
        ++out.assertions;
        Network net{g};
        Schedule sched{net};
        LeaderBfsProtocol lb{g};
        sched.run_uncharged(lb);
        const TreeView bfs = lb.tree_view(g);
        sched.set_barrier_height(bfs.height(g));
        if (verify_cut_dist(sched, bfs, rep.side) != rep.value)
          fail("distributed cut_verify disagrees with the reported value");
      }
    }

    // 5. CONGEST legality on every run.
    ++out.assertions;
    if (rep.stats.max_messages_edge_round > 1)
      fail("CONGEST violation: >1 message per edge per round");
    ++out.assertions;
    if (rep.stats.max_words_per_message > kMaxWords)
      fail("CONGEST violation: message exceeds the word budget");
  } catch (const std::exception& e) {
    fail(std::string{"exception: "} + e.what());
  }
  return out;
}

/// The update axis's differential flow on one concrete (graph, batch):
/// warm a mutable copy's session with one solve, apply the batch
/// (Session::apply — scoped invalidation or fallback, per damage), solve
/// again, then run the FULL graph contract on the updated graph (fresh
/// oracle consensus, fresh cold session, witness + CONGEST audits) and
/// require the warm answer to be bit-identical to the fresh one.
/// Deterministic in (g, batch, s, seed); exceptions count as failures.
GraphCheck check_update(const Graph& g, std::span<const EdgeUpdate> batch,
                        const Scenario& s, std::uint64_t seed,
                        const RunnerOptions& opt) {
  GraphCheck out;
  try {
    Graph mut = g;
    Session session{mut, SessionOptions{s.engine_threads, s.scheduling}};
    // Warm-up solve: the update must land on BUILT warm infrastructure,
    // or the repair/invalidate machinery under test never runs.
    (void)session.solve(request_for(s, seed));
    (void)session.apply(batch);
    const MinCutReport warm = session.solve(request_for(s, seed));
    // Full contract on the updated graph — also produces the fresh cold
    // report the warm answer must match bit for bit.
    out = check_graph(mut, s, seed, opt);
    if (!out.ok) return out;
    ++out.assertions;
    const std::string diff = diff_reports(warm, out.report);
    if (!diff.empty()) {
      out.ok = false;
      out.message =
          "post-update warm solve differs from rebuild-from-scratch — " +
          diff;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = std::string{"exception: "} + e.what();
  }
  return out;
}

}  // namespace

const char* to_string(WeightRegime r) {
  switch (r) {
    case WeightRegime::kUnit: return "unit";
    case WeightRegime::kSmall: return "small";
    case WeightRegime::kWide: return "wide";
  }
  return "?";
}

std::pair<Weight, Weight> weight_range(WeightRegime r) {
  switch (r) {
    case WeightRegime::kUnit: return {1, 1};
    case WeightRegime::kSmall: return {1, 9};
    case WeightRegime::kWide: return {1, Weight{1} << 20};
  }
  return {1, 1};
}

const char* to_string(FaultProfile p) {
  switch (p) {
    case FaultProfile::kNone: return "none";
    case FaultProfile::kReorder: return "reorder";
    case FaultProfile::kDupReorder: return "dupreorder";
    case FaultProfile::kDrop: return "drop";
    case FaultProfile::kCrash: return "crash";
  }
  return "?";
}

FaultPlan fault_plan_for(FaultProfile p, std::size_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  switch (p) {
    case FaultProfile::kNone:
      break;
    case FaultProfile::kReorder:
      plan.reorder_within_round = 1.0;
      break;
    case FaultProfile::kDupReorder:
      plan.dup_rate = 0.1;
      plan.reorder_within_round = 0.5;
      break;
    case FaultProfile::kDrop:
      plan.drop_rate = 0.1;
      break;
    case FaultProfile::kCrash:
      // Window [2, 4) fires in round 2 of EVERY run (rounds are
      // run-local), i.e. already during the bootstrap leader election —
      // which is crash-intolerant, so the rejection is deterministic on
      // any multi-round instance.
      plan.crash_schedule = {
          CrashWindow{n > 1 ? NodeId{1} : NodeId{0}, 2, 4}};
      break;
  }
  return plan;
}

const char* to_string(UpdateProfile p) {
  switch (p) {
    case UpdateProfile::kNone: return "none";
    case UpdateProfile::kReweight: return "reweight";
    case UpdateProfile::kMixed: return "mixed";
    case UpdateProfile::kChurn: return "churn";
  }
  return "?";
}

std::vector<EdgeUpdate> update_batch_for(UpdateProfile p, const Graph& g,
                                         std::uint64_t seed) {
  std::vector<EdgeUpdate> batch;
  const std::size_t m = g.num_edges();
  const std::size_t n = g.num_nodes();
  if (p == UpdateProfile::kNone || m == 0 || n < 2) return batch;
  Prng rng{seed};

  const auto shuffled_ids = [&] {
    std::vector<EdgeId> ids(m);
    for (std::size_t e = 0; e < m; ++e) ids[e] = static_cast<EdgeId>(e);
    rng.shuffle(ids);
    return ids;
  };
  const auto reweight_some = [&](std::size_t count) {
    std::vector<EdgeId> ids = shuffled_ids();
    ids.resize(std::min(count, m));
    for (const EdgeId e : ids) {
      // Nudge off the current weight so no reweight is a silent no-op.
      const Weight w = g.edge(e).w;
      Weight nw = rng.next_in(1, 9);
      if (nw == w) nw = w == 9 ? 1 : w + 1;
      batch.push_back(EdgeUpdate::reweight(e, nw));
    }
  };

  switch (p) {
    case UpdateProfile::kNone:
      break;
    case UpdateProfile::kReweight:
      // ≤ m/8 touched edges keeps damage() well under the 0.25 default
      // threshold — the incremental-repair (scoped invalidation) path.
      reweight_some(std::max<std::size_t>(std::size_t{1}, m / 8));
      break;
    case UpdateProfile::kChurn:
      // > m/2 touched edges drives damage() past the threshold — the
      // full-invalidation fallback, still reweight-only so the topology
      // stages stay comparable across both policies.
      reweight_some(m / 2 + 1);
      break;
    case UpdateProfile::kMixed: {
      // Deletes first: up to two pre-batch edges whose joint removal
      // keeps the graph connected (candidates re-checked cumulatively).
      std::vector<EdgeId> dels;
      for (const EdgeId e : shuffled_ids()) {
        if (dels.size() == 2) break;
        Graph h{n};
        for (EdgeId f = 0; f < m; ++f) {
          if (f == e ||
              std::find(dels.begin(), dels.end(), f) != dels.end())
            continue;
          const Edge& ed = g.edge(f);
          (void)h.add_edge(ed.u, ed.v, ed.w);
        }
        if (h.num_edges() > 0 && is_connected(h)) dels.push_back(e);
      }
      // Two inserts between random distinct endpoints (parallel edges are
      // legal), two reweights of surviving pre-batch edges, with the
      // kinds interleaved so ordering inside a batch is exercised.
      std::vector<EdgeUpdate> inserts;
      for (int i = 0; i < 2; ++i) {
        const auto u = static_cast<NodeId>(rng.next_below(n));
        auto v = static_cast<NodeId>(rng.next_below(n - 1));
        if (v >= u) ++v;
        inserts.push_back(
            EdgeUpdate::insert(u, v, static_cast<Weight>(rng.next_in(1, 9))));
      }
      std::vector<EdgeUpdate> reweights;
      for (const EdgeId e : shuffled_ids()) {
        if (reweights.size() == 2) break;
        if (std::find(dels.begin(), dels.end(), e) != dels.end()) continue;
        const Weight w = g.edge(e).w;
        Weight nw = rng.next_in(1, 9);
        if (nw == w) nw = w == 9 ? 1 : w + 1;
        reweights.push_back(EdgeUpdate::reweight(e, nw));
      }
      for (std::size_t i = 0; i < 2; ++i) {
        if (i < inserts.size()) batch.push_back(inserts[i]);
        if (i < reweights.size()) batch.push_back(reweights[i]);
        if (i < dels.size()) batch.push_back(EdgeUpdate::remove(dels[i]));
      }
      break;
    }
  }
  return batch;
}

std::string Scenario::name() const {
  std::ostringstream os;
  os << 's' << id << '_' << family << "_n" << n << '_'
     << check::to_string(regime) << '_' << dmc::to_string(algo) << '_'
     << (scheduling == Scheduling::kDense ? "dense" : "event") << "_t"
     << engine_threads;
  if (faults != FaultProfile::kNone)
    os << "_f" << check::to_string(faults);
  if (updates != UpdateProfile::kNone)
    os << "_u" << check::to_string(updates);
  return os.str();
}

ScenarioMatrix::ScenarioMatrix(std::string name, ScenarioAxes axes)
    : name_(std::move(name)), axes_(std::move(axes)) {
  DMC_REQUIRE_MSG(!axes_.families.empty() && !axes_.sizes.empty() &&
                      !axes_.regimes.empty() && !axes_.algos.empty() &&
                      !axes_.schedulings.empty() &&
                      !axes_.engine_threads.empty(),
                  "every scenario axis needs at least one value");
  // A singleton {kNone} axis multiplies the size by 1 and decodes every
  // id to "no faults"/"no updates" — matrices predating these axes keep
  // their printed ids.
  if (axes_.faults.empty()) axes_.faults = {FaultProfile::kNone};
  if (axes_.updates.empty()) axes_.updates = {UpdateProfile::kNone};
  for (const std::string& f : axes_.families) {
    const GraphFamily& fam = graph_family(f);  // throws on unknown names
    for (const std::size_t n : axes_.sizes)
      DMC_REQUIRE_MSG(n >= fam.min_n, "family " << f << " needs n >= "
                                                << fam.min_n);
  }
  size_ = axes_.families.size() * axes_.sizes.size() * axes_.regimes.size() *
          axes_.algos.size() * axes_.schedulings.size() *
          axes_.engine_threads.size() * axes_.faults.size() *
          axes_.updates.size();
}

Scenario ScenarioMatrix::decode(std::uint64_t id) const {
  DMC_REQUIRE_MSG(id < size_, "scenario id " << id << " out of range (matrix "
                                             << name_ << " has " << size_
                                             << " cells)");
  Scenario s;
  s.id = id;
  // Mixed radix, family fastest: axis order here is the addressing scheme
  // — changing it invalidates every printed scenario id.
  auto take = [&id](std::size_t radix) {
    const std::size_t digit = id % radix;
    id /= radix;
    return digit;
  };
  s.family = axes_.families[take(axes_.families.size())];
  s.n = axes_.sizes[take(axes_.sizes.size())];
  s.regime = axes_.regimes[take(axes_.regimes.size())];
  s.algo = axes_.algos[take(axes_.algos.size())];
  s.scheduling = axes_.schedulings[take(axes_.schedulings.size())];
  s.engine_threads = axes_.engine_threads[take(axes_.engine_threads.size())];
  // Appended LAST (faults, then updates) so every pre-axis id decodes
  // unchanged.
  s.faults = axes_.faults[take(axes_.faults.size())];
  s.updates = axes_.updates[take(axes_.updates.size())];
  return s;
}

const ScenarioMatrix& ScenarioMatrix::tier1() {
  static const ScenarioMatrix m{
      "tier1",
      ScenarioAxes{
          {"erdos_renyi", "random_regular", "torus", "clique_chain",
           "barbell", "random_tree"},
          {16, 26},
          {WeightRegime::kUnit, WeightRegime::kSmall},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u, 2u},
          /*faults=*/{},
          /*updates=*/{},
      }};
  return m;
}

const ScenarioMatrix& ScenarioMatrix::nightly() {
  static const ScenarioMatrix m{
      "nightly",
      ScenarioAxes{
          {"erdos_renyi", "random_regular", "torus", "grid", "hypercube",
           "clique_chain", "barbell", "planted_cut", "random_tree"},
          {16, 36, 64},
          {WeightRegime::kUnit, WeightRegime::kSmall, WeightRegime::kWide},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u, 2u, 8u},
          /*faults=*/{},
          /*updates=*/{},
      }};
  return m;
}

const ScenarioMatrix& ScenarioMatrix::tier1_faults() {
  static const ScenarioMatrix m{
      "tier1_faults",
      ScenarioAxes{
          {"erdos_renyi", "torus"},
          {16, 26},
          {WeightRegime::kUnit},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u, 2u},
          {FaultProfile::kReorder, FaultProfile::kDupReorder,
           FaultProfile::kDrop, FaultProfile::kCrash},
          /*updates=*/{},
      }};
  return m;
}

const ScenarioMatrix& ScenarioMatrix::tier1_updates() {
  static const ScenarioMatrix m{
      "tier1_updates",
      ScenarioAxes{
          {"erdos_renyi", "torus"},
          {16, 26},
          {WeightRegime::kUnit, WeightRegime::kSmall},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u},
          {},  // faults: normalized to {kNone}
          {UpdateProfile::kReweight, UpdateProfile::kMixed,
           UpdateProfile::kChurn},
      }};
  return m;
}

std::string replay_line(std::string_view matrix_name,
                        std::uint64_t scenario_id, std::uint64_t seed) {
  std::ostringstream os;
  os << "replay: ./build/dmc_check --matrix=" << matrix_name
     << " --scenario=" << scenario_id << " --seed=" << seed;
  return os.str();
}

ScenarioRunner::ScenarioRunner(const ScenarioMatrix& matrix,
                               RunnerOptions opt)
    : matrix_(&matrix), opt_(opt) {}

Graph ScenarioRunner::instance(const Scenario& s, std::uint64_t seed) const {
  const auto [min_w, max_w] = weight_range(s.regime);
  // Note: the instance depends only on (family, n, regime, seed) — cells
  // differing in algorithm/engine all see the same graph, which is what
  // makes the matrix differential across algorithms.
  return graph_family(s.family).make(s.n, seed, min_w, max_w);
}

CellReport ScenarioRunner::run_cell(std::uint64_t scenario_id,
                                    std::uint64_t seed) const {
  Scenario s = matrix_->decode(scenario_id);
  if (opt_.force_faults) s.faults = *opt_.force_faults;
  if (opt_.force_updates) s.updates = *opt_.force_updates;
  CellReport cell;
  cell.scenario = s;
  cell.seed = seed;

  const auto report_failure = [&](const Graph& failing,
                                  const std::string& context,
                                  const std::string& what) {
    std::ostringstream os;
    os << "FAILED cell (matrix=" << matrix_->name() << ", scenario="
       << scenario_id << ", seed=" << seed << ") " << s.name() << '\n'
       << context << what << '\n'
       << "request: " << describe(request_for(s, seed)) << '\n'
       << replay_line(matrix_->name(), scenario_id, seed) << '\n';
    // Shrink against the graph-level differential check so the minimal
    // instance still fails for the same class of reason.  A failure the
    // differential predicate cannot see (e.g. a wrong λ-mapping in a
    // transform under test) is reported unshrunk.
    RunnerOptions inner = opt_;
    inner.audit_distributed = false;  // candidates are checked centrally
    const FailurePredicate reproduces = [&](const Graph& candidate) {
      return !check_graph(candidate, s, seed, inner).ok;
    };
    if (opt_.shrink_on_failure && reproduces(failing)) {
      const ShrinkResult shrunk = shrink_counterexample(failing, reproduces);
      os << "shrunk counterexample (" << shrunk.graph.num_nodes()
         << " nodes, " << shrunk.graph.num_edges() << " edges, "
         << shrunk.predicate_calls << " predicate calls):\n";
      write_graph(os, shrunk.graph);
    } else {
      os << "instance:\n";
      write_graph(os, failing);
    }
    cell.failure = os.str();
  };

  const Graph g = instance(s, seed);

  // Update cells run the dedicated differential flow: warm session →
  // apply batch → re-solve, vs full contract + fresh cold session on the
  // updated graph, bit-compared.  On failure the BATCH is delta-debugged
  // (shrink_updates), not the graph — the minimal subsequence that still
  // breaks warm-vs-rebuild identity is the actionable artifact.
  if (s.updates != UpdateProfile::kNone) {
    DMC_REQUIRE_MSG(s.faults == FaultProfile::kNone,
                    "the update axis does not compose with the fault axis "
                    "(updates patch a warm RELIABLE session)");
    const std::vector<EdgeUpdate> batch =
        update_batch_for(s.updates, g, derive_seed(seed, s.id, 13));
    GraphCheck base = check_update(g, batch, s, seed, opt_);
    cell.lambda = base.lambda;  // λ of the UPDATED graph
    cell.oracles_consulted = base.oracles_consulted;
    cell.assertions = base.assertions;
    cell.report = std::move(base.report);
    if (!base.ok) {
      std::ostringstream os;
      os << "FAILED cell (matrix=" << matrix_->name() << ", scenario="
         << scenario_id << ", seed=" << seed << ") " << s.name() << '\n'
         << base.message << '\n'
         << "request: " << describe(request_for(s, seed)) << '\n'
         << replay_line(matrix_->name(), scenario_id, seed);
      if (opt_.force_updates)
        os << " --updates=" << check::to_string(*opt_.force_updates);
      os << '\n';
      RunnerOptions inner = opt_;
      inner.audit_distributed = false;  // candidates are checked centrally
      const UpdateFailurePredicate reproduces =
          [&](std::span<const EdgeUpdate> cand) {
            // Subsequence removal can orphan a delete/reweight of a
            // batch-inserted id — those candidates are invalid, not
            // failing.
            return valid_update_batch(g.num_edges(), cand, g.num_nodes()) &&
                   !check_update(g, cand, s, seed, inner).ok;
          };
      if (opt_.shrink_on_failure && reproduces(batch)) {
        const UpdateShrinkResult shrunk = shrink_updates(batch, reproduces);
        os << "shrunk update sequence (" << shrunk.updates.size() << " of "
           << batch.size() << " updates, " << shrunk.predicate_calls
           << " predicate calls): " << format_updates(shrunk.updates)
           << '\n';
      } else {
        os << "update batch: " << format_updates(batch) << '\n';
      }
      os << "instance (pre-update):\n";
      write_graph(os, g);
      cell.failure = os.str();
    }
    return cell;
  }

  GraphCheck base = check_graph(g, s, seed, opt_);
  cell.lambda = base.lambda;
  cell.oracles_consulted = base.oracles_consulted;
  cell.assertions = base.assertions;
  cell.rejected = base.rejected;
  cell.report = std::move(base.report);
  if (!base.ok) {
    report_failure(g, "", base.message);
    return cell;
  }

  // Metamorphic expansion: replay the same algorithm on derived graphs
  // whose λ is known from the base consensus — no further oracle work.
  // Skipped for fault cells: the λ-mapping contracts assume the solve
  // COMPLETES, while a fault cell's accepted outcome may be rejection.
  if (s.faults == FaultProfile::kNone && opt_.metamorphic &&
      g.num_nodes() <= opt_.metamorphic_max_n) {
    for (DerivedInstance& derived :
         metamorphic_suite(g, derive_seed(seed, scenario_id, 3))) {
      // Su tracks the minimum 1-RESPECT cut of its packed tree.  The
      // subdivided midpoint cut {x} crosses both path edges, i.e. it
      // 2-respects every spanning tree containing them — structurally
      // invisible to the 1-respect estimator, so min(λ, 2w) is not a
      // sound expectation for kSu (it is for kGk: connectivity probing
      // sees every cut).  Found by the nightly wide-weight sweep.
      if (s.algo == Algo::kSu && derived.transform == "subdivide_edge")
        continue;
      const Weight expected = derived.map.apply(cell.lambda);
      GraphCheck dc;
      try {
        Session session{derived.graph,
                        SessionOptions{s.engine_threads, s.scheduling}};
        const MinCutReport rep = session.solve(request_for(s, seed));
        ++cell.assertions;
        std::ostringstream why;
        bool ok = true;
        switch (s.algo) {
          case Algo::kExact:
            ok = rep.value == expected;
            break;
          case Algo::kApprox:
            ok = rep.value >= expected &&
                 static_cast<double>(rep.value) <=
                     static_cast<double>(expected) * (1.0 + kApproxEps);
            break;
          case Algo::kSu:
          case Algo::kGk: {
            const double ratio =
                static_cast<double>(rep.value) /
                static_cast<double>(std::max<Weight>(expected, 1));
            ok = rep.value >= 1 && ratio <= kEstimateBand &&
                 ratio >= 1.0 / kEstimateBand;
            break;
          }
        }
        if ((s.algo == Algo::kExact || s.algo == Algo::kApprox) && ok) {
          ++cell.assertions;
          ok = rep.side.size() == derived.graph.num_nodes() &&
               is_nontrivial(rep.side) &&
               cut_value(derived.graph, rep.side) == rep.value;
          if (!ok) why << "derived witness invalid; ";
        }
        if (!ok) {
          why << "metamorphic " << derived.transform << ": value "
              << rep.value << " vs expected lambda' " << expected
              << " (base lambda " << cell.lambda << ")";
          dc.ok = false;
          dc.message = why.str();
        }
      } catch (const std::exception& e) {
        dc.ok = false;
        dc.message = std::string{"metamorphic "} + derived.transform +
                     ": exception: " + e.what();
      }
      if (!dc.ok) {
        report_failure(derived.graph,
                       "transform=" + derived.transform + ": ", dc.message);
        return cell;
      }
    }
  }
  return cell;
}

}  // namespace dmc::check
