#include "check/scenario.h"

#include <algorithm>
#include <exception>
#include <sstream>
#include <string_view>
#include <utility>

#include "congest/message.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/schedule.h"
#include "core/cut_verify.h"
#include "graph/algorithms.h"
#include "graph/cut.h"
#include "graph/io.h"
#include "util/prng.h"

namespace dmc::check {

namespace {

/// Estimate-only baselines (kSu/kGk) carry no per-instance guarantee
/// tighter than a multiplicative band; this is the sweep-wide bound
/// (the per-instance tests in tests/test_mincut_dist.cpp use 16–32×).
constexpr double kEstimateBand = 64.0;
constexpr double kApproxEps = 0.25;

const OracleRegistry& registry_of(const RunnerOptions& opt) {
  return opt.oracles ? *opt.oracles : OracleRegistry::standard();
}

/// Outcome of the graph-level differential check — the unit both
/// run_cell and the shrink predicate are built from.
struct GraphCheck {
  bool ok{true};
  std::string message;  ///< first violated contract
  Weight lambda{0};
  std::size_t oracles_consulted{0};
  std::size_t assertions{0};
  bool rejected{false};  ///< the fault plan was rejected loudly (see cell)
  MinCutReport report;
};

MinCutRequest request_for(const Scenario& s, std::uint64_t seed) {
  MinCutRequest req;
  req.algo = s.algo;
  req.eps = kApproxEps;
  req.seed = derive_seed(seed, s.id, 7);
  return req;
}

/// The loud-rejection marker Network::run stamps into the InvariantError
/// it throws when a fault of an undeclared kind fires.
[[nodiscard]] bool is_fault_rejection(const std::exception& e) {
  return std::string_view{e.what()}.find(
             "does not tolerate injected faults") != std::string_view::npos;
}

/// λ and the algorithm contract on one concrete graph.  Deterministic in
/// (g, s, seed); exceptions anywhere inside count as failures, so crashes
/// shrink exactly like wrong answers.
GraphCheck check_graph(const Graph& g, const Scenario& s, std::uint64_t seed,
                       const RunnerOptions& opt) {
  GraphCheck out;
  const auto fail = [&out](const std::string& msg) {
    if (out.ok) {
      out.ok = false;
      out.message = msg;
    }
  };
  try {
    // 1. Establish λ by consensus of independent centralized oracles.
    const ConsensusResult consensus = oracle_consensus(
        registry_of(opt), g, derive_seed(seed, s.id), opt.audit_distributed);
    out.lambda = consensus.lambda;
    out.oracles_consulted = consensus.oracles_consulted;
    ++out.assertions;
    if (!consensus.ok()) {
      fail("oracle dissent: " + consensus.dissent_summary());
      return out;
    }

    // 2. Run the system under test through the session façade — under the
    //    cell's deterministic fault plan when the fault axis is active.
    SessionOptions sopt{s.engine_threads, s.scheduling};
    if (s.faults != FaultProfile::kNone)
      sopt.fault_plan = fault_plan_for(s.faults, g.num_nodes(),
                                       derive_seed(seed, s.id, 11));
    Session session{g, sopt};
    try {
      out.report = session.solve(request_for(s, seed));
    } catch (const InvariantError& e) {
      ++out.assertions;
      // Loud rejection — never a wrong λ — is the accepted outcome for
      // kDrop/kDupReorder (some pipeline protocol is drop/dup-intolerant)
      // and the REQUIRED one for kCrash.  Reorder is declared by every
      // protocol in the pipeline, so a kReorder rejection is a real bug.
      if (s.faults != FaultProfile::kNone &&
          s.faults != FaultProfile::kReorder && is_fault_rejection(e)) {
        out.rejected = true;
        return out;
      }
      throw;  // re-caught below as a cell failure
    }
    if (s.faults != FaultProfile::kNone) {
      ++out.assertions;
      if (s.faults == FaultProfile::kCrash) {
        // The crash window fires in round 2 of the (crash-intolerant)
        // bootstrap leader election of every cold solve, so completing
        // means the injection silently vanished.
        fail("crash plan produced an answer instead of a loud rejection");
        return out;
      }
    }
    const MinCutReport& rep = out.report;
    std::ostringstream why;

    // 3. The algorithm's contract against consensus λ.
    const Weight lambda = consensus.lambda;
    switch (s.algo) {
      case Algo::kExact:
        ++out.assertions;
        if (rep.value != lambda) {
          why << "exact value " << rep.value << " != lambda " << lambda;
          fail(why.str());
        }
        break;
      case Algo::kApprox: {
        ++out.assertions;
        const auto bound = static_cast<double>(lambda) * (1.0 + kApproxEps);
        if (rep.value < lambda ||
            static_cast<double>(rep.value) > bound) {
          why << "approx value " << rep.value << " outside [" << lambda
              << ", " << bound << "]";
          fail(why.str());
        }
        break;
      }
      case Algo::kSu:
      case Algo::kGk: {
        ++out.assertions;
        const double ratio = static_cast<double>(rep.value) /
                             static_cast<double>(std::max<Weight>(lambda, 1));
        if (rep.value < 1 || ratio > kEstimateBand ||
            ratio < 1.0 / kEstimateBand) {
          why << to_string(s.algo) << " estimate " << rep.value
              << " outside the " << kEstimateBand << "x band of lambda "
              << lambda;
          fail(why.str());
        }
        break;
      }
    }

    // 4. Witness validation for the cut-producing algorithms: central
    //    recount, and the network's own O(D)-round audit (cut_verify).
    if (s.algo == Algo::kExact || s.algo == Algo::kApprox) {
      ++out.assertions;
      if (rep.side.size() != g.num_nodes() || !is_nontrivial(rep.side)) {
        fail("witness side is malformed or trivial");
      } else if (cut_value(g, rep.side) != rep.value) {
        why << "witness achieves " << cut_value(g, rep.side)
            << ", reported " << rep.value;
        fail(why.str());
      } else if (opt.audit_distributed) {
        ++out.assertions;
        Network net{g};
        Schedule sched{net};
        LeaderBfsProtocol lb{g};
        sched.run_uncharged(lb);
        const TreeView bfs = lb.tree_view(g);
        sched.set_barrier_height(bfs.height(g));
        if (verify_cut_dist(sched, bfs, rep.side) != rep.value)
          fail("distributed cut_verify disagrees with the reported value");
      }
    }

    // 5. CONGEST legality on every run.
    ++out.assertions;
    if (rep.stats.max_messages_edge_round > 1)
      fail("CONGEST violation: >1 message per edge per round");
    ++out.assertions;
    if (rep.stats.max_words_per_message > kMaxWords)
      fail("CONGEST violation: message exceeds the word budget");
  } catch (const std::exception& e) {
    fail(std::string{"exception: "} + e.what());
  }
  return out;
}

}  // namespace

const char* to_string(WeightRegime r) {
  switch (r) {
    case WeightRegime::kUnit: return "unit";
    case WeightRegime::kSmall: return "small";
    case WeightRegime::kWide: return "wide";
  }
  return "?";
}

std::pair<Weight, Weight> weight_range(WeightRegime r) {
  switch (r) {
    case WeightRegime::kUnit: return {1, 1};
    case WeightRegime::kSmall: return {1, 9};
    case WeightRegime::kWide: return {1, Weight{1} << 20};
  }
  return {1, 1};
}

const char* to_string(FaultProfile p) {
  switch (p) {
    case FaultProfile::kNone: return "none";
    case FaultProfile::kReorder: return "reorder";
    case FaultProfile::kDupReorder: return "dupreorder";
    case FaultProfile::kDrop: return "drop";
    case FaultProfile::kCrash: return "crash";
  }
  return "?";
}

FaultPlan fault_plan_for(FaultProfile p, std::size_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  switch (p) {
    case FaultProfile::kNone:
      break;
    case FaultProfile::kReorder:
      plan.reorder_within_round = 1.0;
      break;
    case FaultProfile::kDupReorder:
      plan.dup_rate = 0.1;
      plan.reorder_within_round = 0.5;
      break;
    case FaultProfile::kDrop:
      plan.drop_rate = 0.1;
      break;
    case FaultProfile::kCrash:
      // Window [2, 4) fires in round 2 of EVERY run (rounds are
      // run-local), i.e. already during the bootstrap leader election —
      // which is crash-intolerant, so the rejection is deterministic on
      // any multi-round instance.
      plan.crash_schedule = {
          CrashWindow{n > 1 ? NodeId{1} : NodeId{0}, 2, 4}};
      break;
  }
  return plan;
}

std::string Scenario::name() const {
  std::ostringstream os;
  os << 's' << id << '_' << family << "_n" << n << '_'
     << check::to_string(regime) << '_' << dmc::to_string(algo) << '_'
     << (scheduling == Scheduling::kDense ? "dense" : "event") << "_t"
     << engine_threads;
  if (faults != FaultProfile::kNone)
    os << "_f" << check::to_string(faults);
  return os.str();
}

ScenarioMatrix::ScenarioMatrix(std::string name, ScenarioAxes axes)
    : name_(std::move(name)), axes_(std::move(axes)) {
  DMC_REQUIRE_MSG(!axes_.families.empty() && !axes_.sizes.empty() &&
                      !axes_.regimes.empty() && !axes_.algos.empty() &&
                      !axes_.schedulings.empty() &&
                      !axes_.engine_threads.empty(),
                  "every scenario axis needs at least one value");
  // A singleton {kNone} axis multiplies the size by 1 and decodes every
  // id to "no faults" — matrices predating the fault axis keep their ids.
  if (axes_.faults.empty()) axes_.faults = {FaultProfile::kNone};
  for (const std::string& f : axes_.families) {
    const GraphFamily& fam = graph_family(f);  // throws on unknown names
    for (const std::size_t n : axes_.sizes)
      DMC_REQUIRE_MSG(n >= fam.min_n, "family " << f << " needs n >= "
                                                << fam.min_n);
  }
  size_ = axes_.families.size() * axes_.sizes.size() * axes_.regimes.size() *
          axes_.algos.size() * axes_.schedulings.size() *
          axes_.engine_threads.size() * axes_.faults.size();
}

Scenario ScenarioMatrix::decode(std::uint64_t id) const {
  DMC_REQUIRE_MSG(id < size_, "scenario id " << id << " out of range (matrix "
                                             << name_ << " has " << size_
                                             << " cells)");
  Scenario s;
  s.id = id;
  // Mixed radix, family fastest: axis order here is the addressing scheme
  // — changing it invalidates every printed scenario id.
  auto take = [&id](std::size_t radix) {
    const std::size_t digit = id % radix;
    id /= radix;
    return digit;
  };
  s.family = axes_.families[take(axes_.families.size())];
  s.n = axes_.sizes[take(axes_.sizes.size())];
  s.regime = axes_.regimes[take(axes_.regimes.size())];
  s.algo = axes_.algos[take(axes_.algos.size())];
  s.scheduling = axes_.schedulings[take(axes_.schedulings.size())];
  s.engine_threads = axes_.engine_threads[take(axes_.engine_threads.size())];
  // Appended LAST so every pre-fault-axis id decodes unchanged.
  s.faults = axes_.faults[take(axes_.faults.size())];
  return s;
}

const ScenarioMatrix& ScenarioMatrix::tier1() {
  static const ScenarioMatrix m{
      "tier1",
      ScenarioAxes{
          {"erdos_renyi", "random_regular", "torus", "clique_chain",
           "barbell", "random_tree"},
          {16, 26},
          {WeightRegime::kUnit, WeightRegime::kSmall},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u, 2u},
      }};
  return m;
}

const ScenarioMatrix& ScenarioMatrix::nightly() {
  static const ScenarioMatrix m{
      "nightly",
      ScenarioAxes{
          {"erdos_renyi", "random_regular", "torus", "grid", "hypercube",
           "clique_chain", "barbell", "planted_cut", "random_tree"},
          {16, 36, 64},
          {WeightRegime::kUnit, WeightRegime::kSmall, WeightRegime::kWide},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u, 2u, 8u},
      }};
  return m;
}

const ScenarioMatrix& ScenarioMatrix::tier1_faults() {
  static const ScenarioMatrix m{
      "tier1_faults",
      ScenarioAxes{
          {"erdos_renyi", "torus"},
          {16, 26},
          {WeightRegime::kUnit},
          {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk},
          {Scheduling::kDense, Scheduling::kEventDriven},
          {1u, 2u},
          {FaultProfile::kReorder, FaultProfile::kDupReorder,
           FaultProfile::kDrop, FaultProfile::kCrash},
      }};
  return m;
}

std::string replay_line(std::string_view matrix_name,
                        std::uint64_t scenario_id, std::uint64_t seed) {
  std::ostringstream os;
  os << "replay: ./build/dmc_check --matrix=" << matrix_name
     << " --scenario=" << scenario_id << " --seed=" << seed;
  return os.str();
}

ScenarioRunner::ScenarioRunner(const ScenarioMatrix& matrix,
                               RunnerOptions opt)
    : matrix_(&matrix), opt_(opt) {}

Graph ScenarioRunner::instance(const Scenario& s, std::uint64_t seed) const {
  const auto [min_w, max_w] = weight_range(s.regime);
  // Note: the instance depends only on (family, n, regime, seed) — cells
  // differing in algorithm/engine all see the same graph, which is what
  // makes the matrix differential across algorithms.
  return graph_family(s.family).make(s.n, seed, min_w, max_w);
}

CellReport ScenarioRunner::run_cell(std::uint64_t scenario_id,
                                    std::uint64_t seed) const {
  Scenario s = matrix_->decode(scenario_id);
  if (opt_.force_faults) s.faults = *opt_.force_faults;
  CellReport cell;
  cell.scenario = s;
  cell.seed = seed;

  const auto report_failure = [&](const Graph& failing,
                                  const std::string& context,
                                  const std::string& what) {
    std::ostringstream os;
    os << "FAILED cell (matrix=" << matrix_->name() << ", scenario="
       << scenario_id << ", seed=" << seed << ") " << s.name() << '\n'
       << context << what << '\n'
       << "request: " << describe(request_for(s, seed)) << '\n'
       << replay_line(matrix_->name(), scenario_id, seed) << '\n';
    // Shrink against the graph-level differential check so the minimal
    // instance still fails for the same class of reason.  A failure the
    // differential predicate cannot see (e.g. a wrong λ-mapping in a
    // transform under test) is reported unshrunk.
    RunnerOptions inner = opt_;
    inner.audit_distributed = false;  // candidates are checked centrally
    const FailurePredicate reproduces = [&](const Graph& candidate) {
      return !check_graph(candidate, s, seed, inner).ok;
    };
    if (opt_.shrink_on_failure && reproduces(failing)) {
      const ShrinkResult shrunk = shrink_counterexample(failing, reproduces);
      os << "shrunk counterexample (" << shrunk.graph.num_nodes()
         << " nodes, " << shrunk.graph.num_edges() << " edges, "
         << shrunk.predicate_calls << " predicate calls):\n";
      write_graph(os, shrunk.graph);
    } else {
      os << "instance:\n";
      write_graph(os, failing);
    }
    cell.failure = os.str();
  };

  const Graph g = instance(s, seed);
  GraphCheck base = check_graph(g, s, seed, opt_);
  cell.lambda = base.lambda;
  cell.oracles_consulted = base.oracles_consulted;
  cell.assertions = base.assertions;
  cell.rejected = base.rejected;
  cell.report = std::move(base.report);
  if (!base.ok) {
    report_failure(g, "", base.message);
    return cell;
  }

  // Metamorphic expansion: replay the same algorithm on derived graphs
  // whose λ is known from the base consensus — no further oracle work.
  // Skipped for fault cells: the λ-mapping contracts assume the solve
  // COMPLETES, while a fault cell's accepted outcome may be rejection.
  if (s.faults == FaultProfile::kNone && opt_.metamorphic &&
      g.num_nodes() <= opt_.metamorphic_max_n) {
    for (DerivedInstance& derived :
         metamorphic_suite(g, derive_seed(seed, scenario_id, 3))) {
      // Su tracks the minimum 1-RESPECT cut of its packed tree.  The
      // subdivided midpoint cut {x} crosses both path edges, i.e. it
      // 2-respects every spanning tree containing them — structurally
      // invisible to the 1-respect estimator, so min(λ, 2w) is not a
      // sound expectation for kSu (it is for kGk: connectivity probing
      // sees every cut).  Found by the nightly wide-weight sweep.
      if (s.algo == Algo::kSu && derived.transform == "subdivide_edge")
        continue;
      const Weight expected = derived.map.apply(cell.lambda);
      GraphCheck dc;
      try {
        Session session{derived.graph,
                        SessionOptions{s.engine_threads, s.scheduling}};
        const MinCutReport rep = session.solve(request_for(s, seed));
        ++cell.assertions;
        std::ostringstream why;
        bool ok = true;
        switch (s.algo) {
          case Algo::kExact:
            ok = rep.value == expected;
            break;
          case Algo::kApprox:
            ok = rep.value >= expected &&
                 static_cast<double>(rep.value) <=
                     static_cast<double>(expected) * (1.0 + kApproxEps);
            break;
          case Algo::kSu:
          case Algo::kGk: {
            const double ratio =
                static_cast<double>(rep.value) /
                static_cast<double>(std::max<Weight>(expected, 1));
            ok = rep.value >= 1 && ratio <= kEstimateBand &&
                 ratio >= 1.0 / kEstimateBand;
            break;
          }
        }
        if ((s.algo == Algo::kExact || s.algo == Algo::kApprox) && ok) {
          ++cell.assertions;
          ok = rep.side.size() == derived.graph.num_nodes() &&
               is_nontrivial(rep.side) &&
               cut_value(derived.graph, rep.side) == rep.value;
          if (!ok) why << "derived witness invalid; ";
        }
        if (!ok) {
          why << "metamorphic " << derived.transform << ": value "
              << rep.value << " vs expected lambda' " << expected
              << " (base lambda " << cell.lambda << ")";
          dc.ok = false;
          dc.message = why.str();
        }
      } catch (const std::exception& e) {
        dc.ok = false;
        dc.message = std::string{"metamorphic "} + derived.transform +
                     ": exception: " + e.what();
      }
      if (!dc.ok) {
        report_failure(derived.graph,
                       "transform=" + derived.transform + ": ", dc.message);
        return cell;
      }
    }
  }
  return cell;
}

}  // namespace dmc::check
