// dmc::check counterexample minimizer — delta debugging for graphs.
//
// A failing fuzz case on a 4096-node instance is unactionable; the same
// failure on 6 nodes and 8 edges is a unit test.  Given a failing graph
// and a predicate `fails` (true ⇔ the bug reproduces), the shrinker
// greedily applies reductions, keeping each one only if the candidate
// still fails, until no single reduction preserves the failure — a
// LOCALLY MINIMAL counterexample (ddmin's 1-minimality, Zeller–Hildebrandt
// 2002).  Reductions, strongest first:
//   * edge deletion, binary-chunked (ddmin) then per-edge
//   * vertex deletion (with incident edges)
//   * degree-2 vertex smoothing (path contraction, min of the two weights)
//   * weight simplification (w → 1, else w → ⌈w/2⌉)
// Every candidate handed to the predicate is connected with ≥ 2 nodes, so
// predicates may assume the library's standard preconditions.  The
// predicate must be deterministic (derive any seeds from the graph or fix
// them) or the shrink may thrash; termination holds regardless because
// every accepted step strictly decreases (edges, nodes, total weight).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dmc::check {

/// True ⇔ the failure reproduces on this candidate.  Called only on
/// connected graphs with ≥ 2 nodes.  Exceptions propagate — wrap the
/// check and translate "check blew up" into true if crashes should be
/// shrunk too (ScenarioRunner does).
using FailurePredicate = std::function<bool(const Graph&)>;

struct ShrinkOptions {
  /// Cap on full reduction passes; each pass that accepts anything is
  /// followed by another, so this only bites on pathological predicates.
  std::size_t max_rounds{64};
  /// Also minimize weights (off when the failure is weight-sensitive and
  /// the caller wants the original weights preserved).
  bool shrink_weights{true};
};

struct ShrinkResult {
  Graph graph;                     ///< locally-minimal failing instance
  std::size_t accepted_steps{0};   ///< reductions that kept the failure
  std::size_t predicate_calls{0};  ///< how often `fails` ran
};

/// Requires fails(g) == true; returns a locally-minimal shrunk graph that
/// still fails.  Deterministic in (g, fails).
[[nodiscard]] ShrinkResult shrink_counterexample(Graph g,
                                                 const FailurePredicate& fails,
                                                 ShrinkOptions opt = {});

/// g without node v (incident edges dropped, higher ids shifted down) —
/// exposed for tests; the shrinker's vertex-deletion step.
[[nodiscard]] Graph remove_vertex(const Graph& g, NodeId v);

/// g with degree-2 node v replaced by one edge between its two distinct
/// neighbors carrying min of the two incident weights (path contraction).
[[nodiscard]] Graph smooth_vertex(const Graph& g, NodeId v);

/// True ⇔ the failure reproduces when THIS update subsequence is applied
/// (to a graph the caller closes over).  Candidates are arbitrary
/// subsequences of the original batch — including the empty one — so the
/// predicate must itself reject candidates its id semantics make invalid
/// (a delete referencing a removed insert's id, say) by returning false.
using UpdateFailurePredicate =
    std::function<bool(std::span<const EdgeUpdate>)>;

struct UpdateShrinkResult {
  std::vector<EdgeUpdate> updates;  ///< locally-minimal failing sequence
  std::size_t predicate_calls{0};
};

/// ddmin over an update SEQUENCE: chunk-halving subsequence removal,
/// original order preserved, down to 1-minimality (no single remaining
/// update can be removed without losing the failure).  Requires
/// fails(updates) == true; deterministic in (updates, fails).
[[nodiscard]] UpdateShrinkResult shrink_updates(
    std::vector<EdgeUpdate> updates, const UpdateFailurePredicate& fails);

}  // namespace dmc::check
