#include "check/metamorphic.h"

#include <algorithm>
#include <numeric>

#include "util/prng.h"

namespace dmc::check {

DerivedInstance relabel_vertices(const Graph& g, std::uint64_t seed) {
  Prng rng{derive_seed(seed, 0x51AB)};
  std::vector<NodeId> perm(g.num_nodes());
  std::iota(perm.begin(), perm.end(), NodeId{0});
  rng.shuffle(perm);
  std::vector<EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), EdgeId{0});
  rng.shuffle(order);

  Graph out{g.num_nodes()};
  for (const EdgeId e : order) {
    const Edge& edge = g.edge(e);
    out.add_edge(perm[edge.u], perm[edge.v], edge.w);
  }
  return DerivedInstance{"relabel_vertices", std::move(out), LambdaMap{}};
}

DerivedInstance scale_weights(const Graph& g, Weight k) {
  DMC_REQUIRE(k >= 1);
  Graph out{g.num_nodes()};
  for (const Edge& e : g.edges()) {
    DMC_REQUIRE_MSG(e.w <= kMaxWeight / k,
                    "scale_weights(" << k << ") would overflow weight "
                                     << e.w);
    out.add_edge(e.u, e.v, e.w * k);
  }
  return DerivedInstance{"scale_weights", std::move(out), LambdaMap{k}};
}

DerivedInstance split_parallel(const Graph& g, EdgeId e) {
  const Edge& target = g.edge(e);
  DMC_REQUIRE_MSG(target.w >= 2, "split_parallel needs weight >= 2");
  Graph out{g.num_nodes()};
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    const Edge& edge = g.edge(i);
    if (i == e) {
      out.add_edge(edge.u, edge.v, edge.w / 2);
      out.add_edge(edge.u, edge.v, edge.w - edge.w / 2);
    } else {
      out.add_edge(edge.u, edge.v, edge.w);
    }
  }
  return DerivedInstance{"split_parallel", std::move(out), LambdaMap{}};
}

DerivedInstance subdivide_edge(const Graph& g, EdgeId e) {
  const Edge target = g.edge(e);
  Graph out{g.num_nodes() + 1};
  const NodeId x = static_cast<NodeId>(g.num_nodes());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    const Edge& edge = g.edge(i);
    if (i == e) {
      out.add_edge(edge.u, x, edge.w);
      out.add_edge(x, edge.v, edge.w);
    } else {
      out.add_edge(edge.u, edge.v, edge.w);
    }
  }
  // 2w ≤ kMaxWeight·2 fits in Weight; the cap is a value, not an edge.
  return DerivedInstance{"subdivide_edge", std::move(out),
                         LambdaMap{1, 2 * target.w}};
}

DerivedInstance attach_pendant(const Graph& g, NodeId v, Weight w) {
  DMC_REQUIRE(v < g.num_nodes());
  Graph out{g.num_nodes() + 1};
  for (const Edge& edge : g.edges()) out.add_edge(edge.u, edge.v, edge.w);
  out.add_edge(v, static_cast<NodeId>(g.num_nodes()), w);
  return DerivedInstance{"attach_pendant", std::move(out), LambdaMap{1, w}};
}

DerivedInstance union_bridge(const Graph& g, Weight bridge_w,
                             std::uint64_t seed) {
  Prng rng{derive_seed(seed, 0xB41D)};
  const auto n = static_cast<NodeId>(g.num_nodes());
  Graph out{2 * g.num_nodes()};
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v, e.w);
  for (const Edge& e : g.edges()) out.add_edge(e.u + n, e.v + n, e.w);
  const auto a = static_cast<NodeId>(rng.next_below(n));
  const auto b = static_cast<NodeId>(n + rng.next_below(n));
  out.add_edge(a, b, bridge_w);
  return DerivedInstance{"union_bridge", std::move(out),
                         LambdaMap{1, bridge_w}};
}

std::vector<DerivedInstance> metamorphic_suite(const Graph& g,
                                               std::uint64_t seed) {
  DMC_REQUIRE(g.num_nodes() >= 2 && g.num_edges() >= 1);
  Prng rng{derive_seed(seed, 0x3E7A)};
  std::vector<DerivedInstance> out;
  out.push_back(relabel_vertices(g, seed));

  Weight max_w = 0;
  for (const Edge& e : g.edges()) max_w = std::max(max_w, e.w);
  if (max_w <= kMaxWeight / 3) out.push_back(scale_weights(g, 3));

  EdgeId heavy = kNoEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (g.edge(e).w >= 2) {
      heavy = e;
      break;
    }
  if (heavy != kNoEdge) out.push_back(split_parallel(g, heavy));

  out.push_back(subdivide_edge(
      g, static_cast<EdgeId>(rng.next_below(g.num_edges()))));
  out.push_back(attach_pendant(
      g, static_cast<NodeId>(rng.next_below(g.num_nodes())),
      1 + rng.next_below(5)));
  out.push_back(union_bridge(g, 1 + rng.next_below(3), seed));
  return out;
}

}  // namespace dmc::check
