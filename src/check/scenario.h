// dmc::check scenario matrix + runner — the declarative workload grid
// {generator × n × weight regime × algorithm × scheduling × engine
// threads}, enumerated into cells addressable by a single integer id, so
// any failure anywhere (unit test, fuzz trial, nightly sweep, a future
// workload PR) prints one replayable coordinate:
//
//   FAILED cell (matrix=tier1, scenario=217, seed=5)
//   replay: ./build/dmc_check --matrix=tier1 --scenario=217 --seed=5
//
// Each cell: generate the instance, establish λ by oracle consensus
// (oracle.h, ≥ 2 independent centralized solvers, witnesses re-counted by
// the network itself via core/cut_verify), run the requested algorithm
// through dmc::Session under the requested engine/scheduling, and assert
// the algorithm's contract (exact: value == λ with a valid witness;
// approx: λ ≤ value ≤ (1+ε)λ with a valid witness; su/gk: estimate inside
// their multiplicative bands).  Metamorphic mode replays the same
// algorithm on 5–6 derived graphs with known λ-mappings (metamorphic.h).
// On failure the instance is delta-debugged to a locally-minimal
// counterexample (shrink.h) before reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/metamorphic.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "core/session.h"
#include "graph/generators.h"

namespace dmc::check {

/// Weight regimes stress different arithmetic paths: unit weights (pure
/// topology), small weights (ties + small multiples), wide weights
/// (overflow headroom, sampling with extreme totals).
enum class WeightRegime : std::uint8_t { kUnit, kSmall, kWide };

[[nodiscard]] const char* to_string(WeightRegime r);
/// The [min_w, max_w] range a regime draws from.
[[nodiscard]] std::pair<Weight, Weight> weight_range(WeightRegime r);

/// Fault axis of a cell: which deterministic FaultPlan shape perturbs the
/// session (congest/faults.h).  kReorder cells must still satisfy the full
/// λ contract (every protocol in the pipeline is audited reorder-
/// tolerant); kDrop / kDupReorder cells must EITHER satisfy the contract
/// OR reject loudly (InvariantError naming the protocol and fault) —
/// never return a wrong λ; kCrash cells must always reject (the bootstrap
/// leader election is crash-intolerant and the plan's window fires in its
/// second round).
enum class FaultProfile : std::uint8_t {
  kNone,
  kReorder,     ///< reorder_within_round = 1.0
  kDupReorder,  ///< dup_rate = 0.1, reorder_within_round = 0.5
  kDrop,        ///< drop_rate = 0.1
  kCrash,       ///< one node crashes for run-local rounds [2, 4)
};

[[nodiscard]] const char* to_string(FaultProfile p);
/// The concrete deterministic plan a profile denotes on an n-node
/// instance, seeded for replayability.
[[nodiscard]] FaultPlan fault_plan_for(FaultProfile p, std::size_t n,
                                       std::uint64_t seed);

/// Update axis of a cell: which seeded edge-update batch is applied to a
/// WARM session mid-cell (Session::apply).  An update cell runs the full
/// differential contract on the UPDATED graph (fresh oracle consensus,
/// witness audit, CONGEST legality) and additionally requires the warm
/// session's post-update answer to be BIT-IDENTICAL — every report field
/// and every CONGEST stat — to a fresh cold session over the updated
/// graph.  kReweight stays under the damage threshold (scoped repair
/// path); kChurn reweights past it (full-invalidation fallback); kMixed
/// inserts + deletes + reweights (topology rebind path).
enum class UpdateProfile : std::uint8_t {
  kNone,
  kReweight,  ///< ~m/8 edges reweighted — incremental-repair path
  kMixed,     ///< inserts + connectivity-safe deletes + reweights
  kChurn,     ///< > m/2 edges reweighted — damage-threshold fallback
};

[[nodiscard]] const char* to_string(UpdateProfile p);
/// The concrete batch a profile denotes on `g`, deterministic in
/// (profile, g, seed).  kMixed deletes only edges whose removal keeps the
/// graph connected; kNone yields an empty batch.
[[nodiscard]] std::vector<EdgeUpdate> update_batch_for(UpdateProfile p,
                                                       const Graph& g,
                                                       std::uint64_t seed);

/// The declarative matrix: one vector per axis; the matrix is their cross
/// product.  Axes must be non-empty — except `faults` and `updates`,
/// where empty is normalized to {kNone} so matrices predating those axes
/// keep their printed scenario ids.
struct ScenarioAxes {
  std::vector<std::string> families;  ///< names from graph_families()
  std::vector<std::size_t> sizes;
  std::vector<WeightRegime> regimes;
  std::vector<Algo> algos;
  std::vector<Scheduling> schedulings;
  std::vector<unsigned> engine_threads;
  std::vector<FaultProfile> faults;    ///< empty ⇒ {kNone}
  std::vector<UpdateProfile> updates;  ///< empty ⇒ {kNone}
};

/// One decoded cell (still parameterized by the per-run seed).
struct Scenario {
  std::uint64_t id{0};
  std::string family;
  std::size_t n{0};
  WeightRegime regime{WeightRegime::kUnit};
  Algo algo{Algo::kExact};
  Scheduling scheduling{Scheduling::kDense};
  unsigned engine_threads{1};
  FaultProfile faults{FaultProfile::kNone};
  UpdateProfile updates{UpdateProfile::kNone};

  /// Compact unique label, e.g. "s217_barbell_n26_small_approx_event_t2"
  /// (fault cells append "_fdrop", update cells "_umixed", etc.) — legal
  /// as a gtest parameter name.
  [[nodiscard]] std::string name() const;
};

class ScenarioMatrix {
 public:
  ScenarioMatrix(std::string name, ScenarioAxes axes);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ScenarioAxes& axes() const { return axes_; }
  /// Number of scenarios (the product of the axis sizes).
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Mixed-radix decode; requires id < size().  decode(id).id == id.
  [[nodiscard]] Scenario decode(std::uint64_t id) const;

  /// The push-gated grid: every algorithm, both schedulings, 1 and 2
  /// engine threads, two sizes and weight regimes over six families —
  /// a few hundred cells, each cheap enough for tier-1.
  [[nodiscard]] static const ScenarioMatrix& tier1();
  /// The full grid (all families, three sizes up to 64, wide weights,
  /// up to 8 engine threads) for the scheduled nightly sweep.
  [[nodiscard]] static const ScenarioMatrix& nightly();
  /// The fault grid: two families × two sizes × unit weights × every
  /// algorithm × both schedulings × 1/2 threads × the four active fault
  /// profiles — 256 cells asserting the per-profile contract described at
  /// FaultProfile.  Push-gated alongside tier1.
  [[nodiscard]] static const ScenarioMatrix& tier1_faults();
  /// The dynamic-update grid: two families × two sizes × two weight
  /// regimes × every algorithm × both schedulings × the three active
  /// update profiles — 192 cells, each applying a seeded batch to a warm
  /// session and running the full differential contract PLUS warm-vs-cold
  /// bit-identicality on the updated graph.  Push-gated alongside tier1.
  [[nodiscard]] static const ScenarioMatrix& tier1_updates();

 private:
  std::string name_;
  ScenarioAxes axes_;
  std::size_t size_;
};

/// "replay: ./build/dmc_check --matrix=<m> --scenario=<id> --seed=<s>"
[[nodiscard]] std::string replay_line(std::string_view matrix_name,
                                      std::uint64_t scenario_id,
                                      std::uint64_t seed);

struct RunnerOptions {
  /// Oracle panel; nullptr → OracleRegistry::standard().  Borrowed.
  const OracleRegistry* oracles{nullptr};
  /// Re-count every oracle witness with the distributed verifier
  /// (core/cut_verify) in addition to the central cut_value check.
  bool audit_distributed{true};
  /// Replay the cell's algorithm on the metamorphic suite of the
  /// instance (5–6 derived graphs with known λ-mappings)…
  bool metamorphic{true};
  /// …but only when the base instance has at most this many nodes (the
  /// derived run costs one extra solve per transform).
  std::size_t metamorphic_max_n{24};
  /// Delta-debug a failing instance to a locally-minimal counterexample
  /// before reporting (adds shrink time only on failure).
  bool shrink_on_failure{true};
  /// Force every cell's fault axis to this profile, overriding the
  /// decoded value — the dmc_check --faults knob.  nullopt = decoded.
  std::optional<FaultProfile> force_faults{};
  /// Force every cell's update axis to this profile, overriding the
  /// decoded value — the dmc_check --updates knob.  nullopt = decoded.
  std::optional<UpdateProfile> force_updates{};
};

struct CellReport {
  Scenario scenario;
  std::uint64_t seed{0};
  Weight lambda{0};                  ///< consensus λ of the base instance
  std::size_t oracles_consulted{0};  ///< per acceptance: must be ≥ 2
  std::size_t assertions{0};         ///< contract checks that ran (incl. derived)
  /// True when an active fault plan made the session reject loudly
  /// (InvariantError naming the protocol and fault) — the PASSING outcome
  /// for kCrash cells and an accepted one for kDrop/kDupReorder; `report`
  /// is then default-constructed.
  bool rejected{false};
  MinCutReport report;               ///< the session's answer on the base
  /// Empty ⇔ the cell passed.  Otherwise a multi-line report containing
  /// the violated contract, the replay line, and (when shrinking is on)
  /// the minimized counterexample as a dmc-graph block.
  std::string failure;

  [[nodiscard]] bool ok() const { return failure.empty(); }
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioMatrix& matrix,
                          RunnerOptions opt = {});

  [[nodiscard]] const ScenarioMatrix& matrix() const { return *matrix_; }

  /// The deterministic instance of a cell (exposed so tests and the
  /// driver can dump or re-derive it).
  [[nodiscard]] Graph instance(const Scenario& s, std::uint64_t seed) const;

  /// Runs one cell end to end.  Never throws on a CHECK failure (the
  /// report carries it); propagates only misuse (bad scenario id).
  [[nodiscard]] CellReport run_cell(std::uint64_t scenario_id,
                                    std::uint64_t seed) const;

 private:
  const ScenarioMatrix* matrix_;
  RunnerOptions opt_;
};

}  // namespace dmc::check
