// dmc::check metamorphic transforms — graph rewrites with a KNOWN effect
// on the minimum-cut value, so every checked scenario yields a handful of
// derived assertions for free: compute λ(G) once (oracle consensus), apply
// a transform T with λ-mapping f, and the system under test must answer
// f(λ) on T(G) without any further oracle work.
//
// Every shipped mapping is of the form λ' = min(scale·λ, cap):
//   relabel_vertices   λ' = λ            (cut structure is label-invariant)
//   scale_weights(k)   λ' = k·λ          (cuts scale linearly)
//   split_parallel     λ' = λ            (w = w₁+w₂ parallel pair, same cuts)
//   subdivide_edge     λ' = min(λ, 2w)   (only new cut isolates the midpoint)
//   attach_pendant     λ' = min(λ, w)    (only new cut isolates the pendant)
//   union_bridge       λ' = min(λ, w_b)  (two copies of G joined by one edge)
// Correctness arguments: DESIGN.md "Verification architecture".
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dmc::check {

inline constexpr Weight kNoCap = std::numeric_limits<Weight>::max();

/// λ' = min(scale·λ, cap).
struct LambdaMap {
  Weight scale{1};
  Weight cap{kNoCap};

  [[nodiscard]] Weight apply(Weight lambda) const {
    const Weight scaled = lambda * scale;
    return scaled < cap ? scaled : cap;
  }
};

struct DerivedInstance {
  std::string transform;  ///< which transform produced it (for messages)
  Graph graph;
  LambdaMap map;  ///< λ(graph) == map.apply(λ(base))
};

/// Random vertex permutation + random edge insertion order.  λ' = λ.
[[nodiscard]] DerivedInstance relabel_vertices(const Graph& g,
                                               std::uint64_t seed);

/// Multiplies every weight by k (k ≥ 1; k·max-weight must stay within
/// kMaxWeight).  λ' = k·λ.
[[nodiscard]] DerivedInstance scale_weights(const Graph& g, Weight k);

/// Replaces edge e (weight w ≥ 2) with two parallel edges ⌊w/2⌋ and
/// ⌈w/2⌉.  λ' = λ.
[[nodiscard]] DerivedInstance split_parallel(const Graph& g, EdgeId e);

/// Replaces edge e = (u,v,w) with a path u–x–v of two weight-w edges
/// through a new node x.  λ' = min(λ, 2w).
[[nodiscard]] DerivedInstance subdivide_edge(const Graph& g, EdgeId e);

/// Attaches a new degree-1 node to v with weight w.  λ' = min(λ, w).
[[nodiscard]] DerivedInstance attach_pendant(const Graph& g, NodeId v,
                                             Weight w);

/// Disjoint union of g with a copy of itself plus one bridge of weight
/// bridge_w between seed-chosen endpoints.  λ' = min(λ, bridge_w).
[[nodiscard]] DerivedInstance union_bridge(const Graph& g, Weight bridge_w,
                                           std::uint64_t seed);

/// The full applicable suite for g — 5 or 6 instances (split_parallel is
/// skipped when every edge has weight 1), deterministic in (g, seed).
[[nodiscard]] std::vector<DerivedInstance> metamorphic_suite(
    const Graph& g, std::uint64_t seed);

}  // namespace dmc::check
