#include "check/shrink.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "graph/algorithms.h"

namespace dmc::check {

namespace {

struct Budget {
  std::size_t accepted{0};
  std::size_t calls{0};
};

/// Candidate gate: structural preconditions first (free), predicate last.
bool accept(const Graph& candidate, const FailurePredicate& fails,
            Budget& budget) {
  if (candidate.num_nodes() < 2) return false;
  if (!is_connected(candidate)) return false;
  ++budget.calls;
  return fails(candidate);
}

/// ddmin over edges: try deleting aligned chunks, halving the chunk size
/// down to single edges.  Greedy: an accepted deletion restarts the scan
/// at the same granularity on the (smaller) survivor.
bool pass_delete_edges(Graph& g, const FailurePredicate& fails,
                       Budget& budget) {
  bool progress = false;
  for (std::size_t chunk = std::max<std::size_t>(1, g.num_edges() / 2);
       chunk >= 1; chunk /= 2) {
    bool accepted_at_this_size = true;
    while (accepted_at_this_size) {
      accepted_at_this_size = false;
      const std::size_t m = g.num_edges();
      for (std::size_t start = 0; start < m; start += chunk) {
        std::vector<bool> keep(m, true);
        for (std::size_t e = start; e < std::min(m, start + chunk); ++e)
          keep[e] = false;
        Graph candidate = g.edge_subgraph(keep);
        if (accept(candidate, fails, budget)) {
          g = std::move(candidate);
          ++budget.accepted;
          progress = accepted_at_this_size = true;
          break;
        }
      }
    }
    if (chunk == 1) break;
  }
  return progress;
}

bool pass_delete_vertices(Graph& g, const FailurePredicate& fails,
                          Budget& budget) {
  bool progress = false;
  bool accepted = true;
  while (accepted && g.num_nodes() > 2) {
    accepted = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      Graph candidate = remove_vertex(g, v);
      if (accept(candidate, fails, budget)) {
        g = std::move(candidate);
        ++budget.accepted;
        progress = accepted = true;
        break;
      }
    }
  }
  return progress;
}

bool pass_smooth_vertices(Graph& g, const FailurePredicate& fails,
                          Budget& budget) {
  bool progress = false;
  bool accepted = true;
  while (accepted && g.num_nodes() > 2) {
    accepted = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(v) != 2) continue;
      const auto ports = g.ports(v);
      if (ports[0].peer == ports[1].peer || ports[0].peer == v) continue;
      Graph candidate = smooth_vertex(g, v);
      if (accept(candidate, fails, budget)) {
        g = std::move(candidate);
        ++budget.accepted;
        progress = accepted = true;
        break;
      }
    }
  }
  return progress;
}

bool pass_shrink_weights(Graph& g, const FailurePredicate& fails,
                         Budget& budget) {
  bool progress = false;
  bool accepted = true;
  while (accepted) {
    accepted = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Weight w = g.edge(e).w;
      if (w == 1) continue;
      // Strongest first: w → 1, else halve (round up so the step is
      // strictly decreasing and never reaches 0).
      for (const Weight candidate_w : {Weight{1}, (w + 1) / 2}) {
        if (candidate_w >= w) continue;
        Graph candidate{g.num_nodes()};
        for (EdgeId i = 0; i < g.num_edges(); ++i) {
          const Edge& edge = g.edge(i);
          candidate.add_edge(edge.u, edge.v, i == e ? candidate_w : edge.w);
        }
        if (accept(candidate, fails, budget)) {
          g = std::move(candidate);
          ++budget.accepted;
          progress = accepted = true;
          break;
        }
      }
      if (accepted) break;
    }
  }
  return progress;
}

}  // namespace

Graph remove_vertex(const Graph& g, NodeId v) {
  DMC_REQUIRE(v < g.num_nodes() && g.num_nodes() >= 2);
  Graph out{g.num_nodes() - 1};
  const auto map = [v](NodeId u) { return u < v ? u : u - 1; };
  for (const Edge& e : g.edges()) {
    if (e.u == v || e.v == v) continue;
    out.add_edge(map(e.u), map(e.v), e.w);
  }
  return out;
}

Graph smooth_vertex(const Graph& g, NodeId v) {
  DMC_REQUIRE_MSG(g.degree(v) == 2, "smoothing needs a degree-2 node");
  const auto ports = g.ports(v);
  const NodeId a = ports[0].peer;
  const NodeId b = ports[1].peer;
  DMC_REQUIRE_MSG(a != b, "smoothing needs two distinct neighbors");
  const Weight w = std::min(g.edge(ports[0].edge).w, g.edge(ports[1].edge).w);
  const auto map = [v](NodeId u) { return u < v ? u : u - 1; };
  Graph out{g.num_nodes() - 1};
  for (const Edge& e : g.edges()) {
    if (e.u == v || e.v == v) continue;
    out.add_edge(map(e.u), map(e.v), e.w);
  }
  out.add_edge(map(a), map(b), w);
  return out;
}

ShrinkResult shrink_counterexample(Graph g, const FailurePredicate& fails,
                                   ShrinkOptions opt) {
  DMC_REQUIRE_MSG(fails(g), "shrink_counterexample needs a failing input");
  Budget budget;
  ++budget.calls;  // the precondition check above
  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    bool progress = false;
    progress |= pass_delete_edges(g, fails, budget);
    progress |= pass_delete_vertices(g, fails, budget);
    progress |= pass_smooth_vertices(g, fails, budget);
    if (opt.shrink_weights) progress |= pass_shrink_weights(g, fails, budget);
    if (!progress) break;
  }
  return ShrinkResult{std::move(g), budget.accepted, budget.calls};
}

UpdateShrinkResult shrink_updates(std::vector<EdgeUpdate> updates,
                                  const UpdateFailurePredicate& fails) {
  UpdateShrinkResult out;
  out.updates = std::move(updates);
  ++out.predicate_calls;
  DMC_REQUIRE_MSG(fails(out.updates),
                  "shrink_updates needs a failing input sequence");
  // ddmin: try removing ever-finer chunks; any accepted removal restarts
  // at the coarsest granularity on the (strictly shorter) survivor, so
  // termination is by length; no removal at chunk size 1 ⇒ 1-minimal.
  std::size_t granularity = 2;
  while (!out.updates.empty()) {
    const std::size_t n = out.updates.size();
    const std::size_t chunk =
        std::max<std::size_t>(1, (n + granularity - 1) / granularity);
    bool accepted = false;
    for (std::size_t start = 0; start < n && !accepted; start += chunk) {
      const std::size_t end = std::min(start + chunk, n);
      std::vector<EdgeUpdate> candidate;
      candidate.reserve(n - (end - start));
      for (std::size_t i = 0; i < n; ++i)
        if (i < start || i >= end) candidate.push_back(out.updates[i]);
      ++out.predicate_calls;
      if (fails(candidate)) {
        out.updates = std::move(candidate);
        accepted = true;
      }
    }
    if (accepted)
      granularity = 2;
    else if (chunk == 1)
      break;  // 1-minimal
    else
      granularity = std::min(2 * granularity, 2 * n);
  }
  return out;
}

}  // namespace dmc::check
