// dmc::check oracle layer — every centralized minimum-cut solver in
// src/central behind one interface, plus consensus voting.
//
// The paper's claim (a (1+ε)-approximation of λ in Õ(D + √n) rounds) is
// only trustworthy at scale if each distributed answer is mechanically
// cross-checked against INDEPENDENT centralized references, the way
// Nanongkai–Su (arXiv:1408.0557) and Ghaffari–Kuhn (arXiv:1305.5520)
// validate against exact λ.  One lying reference would poison every
// differential test, so λ is established by a vote: run all applicable
// oracles, validate every witness (the side must actually achieve the
// claimed value — centrally via cut_value, and optionally by the simulated
// network itself via core/cut_verify), take the minimum validated value,
// and flag any exact oracle that disagrees with it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/cut.h"
#include "graph/graph.h"

namespace dmc::check {

/// One oracle's answer.  `side` may be empty for value-only oracles; when
/// present it must be a genuine cut achieving `value` (consensus checks).
struct OracleAnswer {
  Weight value{0};
  std::vector<bool> side;
};

/// A centralized minimum-cut reference.  Exact oracles claim value == λ
/// (deterministically or w.h.p. — seeds are fixed in every caller, so a
/// passing configuration stays passing); inexact ones guarantee
/// λ ≤ value ≤ factor()·λ.
class CutOracle {
 public:
  virtual ~CutOracle() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual bool exact() const = 0;
  /// Approximation guarantee: value ≤ factor()·λ.  1.0 for exact oracles.
  [[nodiscard]] virtual double factor() const { return 1.0; }
  /// Applicability guard (e.g. Stoer–Wagner is O(n³); brute force 2^n).
  [[nodiscard]] virtual std::size_t max_nodes() const { return 4096; }

  [[nodiscard]] virtual OracleAnswer solve(const Graph& g,
                                           std::uint64_t seed) const = 0;
};

/// Owning, append-only collection of oracles.  `standard()` is the
/// library's default panel: Stoer–Wagner (deterministic exact),
/// Karger–Stein and Karger'2000 (randomized exact, independent of each
/// other and of the distributed pipeline's tree packing), Matula (2+ε),
/// and brute force on tiny graphs.
class OracleRegistry {
 public:
  OracleRegistry() = default;
  OracleRegistry(OracleRegistry&&) = default;
  OracleRegistry& operator=(OracleRegistry&&) = default;

  void add(std::unique_ptr<CutOracle> oracle);

  [[nodiscard]] std::size_t size() const { return oracles_.size(); }
  [[nodiscard]] const CutOracle& at(std::size_t i) const;
  [[nodiscard]] const CutOracle* find(std::string_view name) const;

  [[nodiscard]] static const OracleRegistry& standard();

  /// A fresh instance of the standard panel, for callers that extend it
  /// (e.g. dmc_check --inject-failure planting a known-bad oracle to
  /// prove the failure path end to end).  standard() is this, memoized.
  [[nodiscard]] static OracleRegistry make_standard();

 private:
  std::vector<std::unique_ptr<CutOracle>> oracles_;
};

/// One oracle's contribution to a consensus round.
struct OracleVote {
  std::string name;
  Weight value{0};
  bool exact{false};
  bool witness_ok{true};  ///< false ⇒ side did not achieve the claim
};

struct ConsensusResult {
  /// The agreed λ: minimum over answers with a VALIDATED witness.  Every
  /// validated witness is an actual cut (so ≥ λ), hence the minimum is
  /// exactly λ as soon as one exact oracle succeeds — and dissent catches
  /// the ones that don't.  Value-only claims are vote-checked against
  /// this minimum but never define it (an under-reporting value-only
  /// oracle must not lower λ); a panel with no witness-producing oracle
  /// dissents with "no oracle produced a validated answer".
  Weight lambda{0};
  std::size_t oracles_consulted{0};  ///< applicable oracles that ran
  std::size_t exact_consulted{0};
  std::vector<OracleVote> votes;
  /// Human-readable disagreements; empty ⇔ full consensus.
  std::vector<std::string> dissent;

  [[nodiscard]] bool ok() const { return dissent.empty(); }
  [[nodiscard]] std::string dissent_summary() const;
};

/// Runs every applicable oracle in `reg` on g and votes.  Witnesses are
/// validated centrally (nontrivial side, cut_value(side) == value); with
/// `audit_distributed` each witness is additionally re-counted by the
/// simulated CONGEST network itself via core/cut_verify (O(D) rounds per
/// witness, one shared BFS).  Requires a connected g with ≥ 2 nodes.
[[nodiscard]] ConsensusResult oracle_consensus(const OracleRegistry& reg,
                                               const Graph& g,
                                               std::uint64_t seed,
                                               bool audit_distributed = false);

}  // namespace dmc::check
