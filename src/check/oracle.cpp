#include "check/oracle.h"

#include <sstream>
#include <utility>

#include "central/karger2000.h"
#include "central/karger_stein.h"
#include "central/matula.h"
#include "central/stoer_wagner.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/schedule.h"
#include "core/cut_verify.h"
#include "graph/algorithms.h"
#include "util/prng.h"

namespace dmc::check {

namespace {

class StoerWagnerOracle final : public CutOracle {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "stoer_wagner";
  }
  [[nodiscard]] bool exact() const override { return true; }
  [[nodiscard]] std::size_t max_nodes() const override { return 1024; }
  [[nodiscard]] OracleAnswer solve(const Graph& g,
                                   std::uint64_t /*seed*/) const override {
    CutResult r = stoer_wagner_min_cut(g);
    return OracleAnswer{r.value, std::move(r.side)};
  }
};

class KargerSteinOracle final : public CutOracle {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "karger_stein";
  }
  [[nodiscard]] bool exact() const override { return true; }
  [[nodiscard]] std::size_t max_nodes() const override { return 512; }
  [[nodiscard]] OracleAnswer solve(const Graph& g,
                                   std::uint64_t seed) const override {
    CutResult r = karger_stein_min_cut(g, seed);
    return OracleAnswer{r.value, std::move(r.side)};
  }
};

class Karger2000Oracle final : public CutOracle {
 public:
  [[nodiscard]] std::string_view name() const override { return "karger2000"; }
  [[nodiscard]] bool exact() const override { return true; }
  [[nodiscard]] std::size_t max_nodes() const override { return 512; }
  [[nodiscard]] OracleAnswer solve(const Graph& g,
                                   std::uint64_t seed) const override {
    Karger2000Result r = karger2000_min_cut(g, seed);
    return OracleAnswer{r.cut.value, std::move(r.cut.side)};
  }
};

class MatulaOracle final : public CutOracle {
 public:
  [[nodiscard]] std::string_view name() const override { return "matula"; }
  [[nodiscard]] bool exact() const override { return false; }
  [[nodiscard]] double factor() const override { return 2.0 + kEps; }
  [[nodiscard]] std::size_t max_nodes() const override { return 1024; }
  [[nodiscard]] OracleAnswer solve(const Graph& g,
                                   std::uint64_t /*seed*/) const override {
    MatulaResult r = matula_approx_min_cut(g, kEps);
    return OracleAnswer{r.value, std::move(r.side)};
  }

 private:
  static constexpr double kEps = 0.5;
};

class BruteForceOracle final : public CutOracle {
 public:
  [[nodiscard]] std::string_view name() const override { return "brute_force"; }
  [[nodiscard]] bool exact() const override { return true; }
  [[nodiscard]] std::size_t max_nodes() const override { return 12; }
  [[nodiscard]] OracleAnswer solve(const Graph& g,
                                   std::uint64_t /*seed*/) const override {
    CutResult r = brute_force_min_cut(g);
    return OracleAnswer{r.value, std::move(r.side)};
  }
};

}  // namespace

void OracleRegistry::add(std::unique_ptr<CutOracle> oracle) {
  DMC_REQUIRE(oracle != nullptr);
  oracles_.push_back(std::move(oracle));
}

const CutOracle& OracleRegistry::at(std::size_t i) const {
  DMC_REQUIRE(i < oracles_.size());
  return *oracles_[i];
}

const CutOracle* OracleRegistry::find(std::string_view name) const {
  for (const auto& o : oracles_)
    if (o->name() == name) return o.get();
  return nullptr;
}

OracleRegistry OracleRegistry::make_standard() {
  OracleRegistry r;
  r.add(std::make_unique<StoerWagnerOracle>());
  r.add(std::make_unique<KargerSteinOracle>());
  r.add(std::make_unique<Karger2000Oracle>());
  r.add(std::make_unique<MatulaOracle>());
  r.add(std::make_unique<BruteForceOracle>());
  return r;
}

const OracleRegistry& OracleRegistry::standard() {
  static const OracleRegistry reg = make_standard();
  return reg;
}

std::string ConsensusResult::dissent_summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dissent.size(); ++i) {
    if (i) os << "; ";
    os << dissent[i];
  }
  return os.str();
}

ConsensusResult oracle_consensus(const OracleRegistry& reg, const Graph& g,
                                 std::uint64_t seed,
                                 bool audit_distributed) {
  DMC_REQUIRE_MSG(g.num_nodes() >= 2 && is_connected(g),
                  "oracle consensus needs a connected graph with >= 2 nodes");
  ConsensusResult out;

  // The distributed auditor (one BFS, reused for every witness).
  std::optional<Network> net;
  std::optional<Schedule> sched;
  TreeView bfs;
  if (audit_distributed) {
    net.emplace(g);
    sched.emplace(*net);
    LeaderBfsProtocol lb{g};
    sched->run_uncharged(lb);
    bfs = lb.tree_view(g);
    sched->set_barrier_height(bfs.height(g));
  }

  bool have_lambda = false;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const CutOracle& oracle = reg.at(i);
    if (g.num_nodes() > oracle.max_nodes()) continue;
    OracleAnswer ans = oracle.solve(g, derive_seed(seed, i));

    OracleVote vote;
    vote.name = std::string{oracle.name()};
    vote.value = ans.value;
    vote.exact = oracle.exact();
    ++out.oracles_consulted;
    if (oracle.exact()) ++out.exact_consulted;

    // Only answers backed by a VALIDATED witness may define λ: a
    // value-only claim is checked against the consensus (the vote loop
    // below) but never folded into the minimum — an under-reporting
    // value-only oracle must not silently lower λ.
    bool validated = !ans.side.empty();
    if (!ans.side.empty()) {
      if (ans.side.size() != g.num_nodes() || !is_nontrivial(ans.side)) {
        vote.witness_ok = validated = false;
        out.dissent.push_back(vote.name + ": malformed witness side");
      } else if (cut_value(g, ans.side) != ans.value) {
        vote.witness_ok = validated = false;
        std::ostringstream os;
        os << vote.name << ": witness achieves " << cut_value(g, ans.side)
           << ", claimed " << ans.value;
        out.dissent.push_back(os.str());
      } else if (audit_distributed &&
                 verify_cut_dist(*sched, bfs, ans.side) != ans.value) {
        vote.witness_ok = validated = false;
        out.dissent.push_back(vote.name +
                              ": distributed cut_verify disagrees with claim");
      }
    }

    if (validated) {
      if (!have_lambda || ans.value < out.lambda) out.lambda = ans.value;
      have_lambda = true;
    }
    out.votes.push_back(std::move(vote));
  }

  if (!have_lambda) {
    out.dissent.emplace_back("no oracle produced a validated answer");
    return out;
  }

  // Vote: every exact oracle must land on the minimum; inexact ones must
  // stay within their guaranteed factor of it.
  for (const OracleVote& vote : out.votes) {
    if (!vote.witness_ok) continue;
    if (vote.exact) {
      if (vote.value != out.lambda) {
        std::ostringstream os;
        os << vote.name << ": exact oracle voted " << vote.value
           << " but consensus lambda is " << out.lambda;
        out.dissent.push_back(os.str());
      }
    } else {
      const double bound = reg.find(vote.name)->factor() *
                           static_cast<double>(out.lambda);
      if (static_cast<double>(vote.value) > bound) {
        std::ostringstream os;
        os << vote.name << ": value " << vote.value
           << " exceeds its factor bound " << bound << " (lambda "
           << out.lambda << ")";
        out.dissent.push_back(os.str());
      }
    }
  }
  return out;
}

}  // namespace dmc::check
