// dmc::check — the differential-verification subsystem, one include.
//
//   oracle.h       centralized oracle registry + consensus voting
//   metamorphic.h  graph transforms with known λ-mappings
//   scenario.h     declarative scenario matrix + replayable cell runner
//   shrink.h       delta-debugging counterexample minimizer
//
// The same machinery serves unit tests (tests/test_check.cpp), the tier-1
// sweep (tests/test_property_sweeps.cpp), fuzzing (tests/test_fuzz.cpp),
// the nightly matrix (tests/test_check_nightly.cpp), and interactive
// replay (tools/dmc_check.cpp).  DESIGN.md "Verification architecture"
// has the soundness arguments.
#pragma once

#include "check/metamorphic.h"
#include "check/oracle.h"
#include "check/scenario.h"
#include "check/shrink.h"
