# Empty compiler generated dependencies file for example_backbone_bottleneck.
# This may be replaced when dependencies are built.
