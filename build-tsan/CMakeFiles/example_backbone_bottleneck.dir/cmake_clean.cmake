file(REMOVE_RECURSE
  "CMakeFiles/example_backbone_bottleneck.dir/examples/backbone_bottleneck.cpp.o"
  "CMakeFiles/example_backbone_bottleneck.dir/examples/backbone_bottleneck.cpp.o.d"
  "example_backbone_bottleneck"
  "example_backbone_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backbone_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
