file(REMOVE_RECURSE
  "CMakeFiles/test_figure1.dir/tests/test_figure1.cpp.o"
  "CMakeFiles/test_figure1.dir/tests/test_figure1.cpp.o.d"
  "test_figure1"
  "test_figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
