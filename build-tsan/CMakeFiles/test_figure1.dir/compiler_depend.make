# Empty compiler generated dependencies file for test_figure1.
# This may be replaced when dependencies are built.
