# Empty compiler generated dependencies file for test_engine_parallel.
# This may be replaced when dependencies are built.
