file(REMOVE_RECURSE
  "CMakeFiles/test_engine_parallel.dir/tests/test_engine_parallel.cpp.o"
  "CMakeFiles/test_engine_parallel.dir/tests/test_engine_parallel.cpp.o.d"
  "test_engine_parallel"
  "test_engine_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
