file(REMOVE_RECURSE
  "CMakeFiles/test_skeleton.dir/tests/test_skeleton.cpp.o"
  "CMakeFiles/test_skeleton.dir/tests/test_skeleton.cpp.o.d"
  "test_skeleton"
  "test_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
