file(REMOVE_RECURSE
  "CMakeFiles/test_subtree_sums.dir/tests/test_subtree_sums.cpp.o"
  "CMakeFiles/test_subtree_sums.dir/tests/test_subtree_sums.cpp.o.d"
  "test_subtree_sums"
  "test_subtree_sums.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subtree_sums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
