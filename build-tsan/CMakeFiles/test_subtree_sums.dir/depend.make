# Empty dependencies file for test_subtree_sums.
# This may be replaced when dependencies are built.
