file(REMOVE_RECURSE
  "CMakeFiles/test_one_respect_dp.dir/tests/test_one_respect_dp.cpp.o"
  "CMakeFiles/test_one_respect_dp.dir/tests/test_one_respect_dp.cpp.o.d"
  "test_one_respect_dp"
  "test_one_respect_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_respect_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
