# Empty dependencies file for test_one_respect_dp.
# This may be replaced when dependencies are built.
