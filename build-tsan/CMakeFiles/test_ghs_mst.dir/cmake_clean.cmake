file(REMOVE_RECURSE
  "CMakeFiles/test_ghs_mst.dir/tests/test_ghs_mst.cpp.o"
  "CMakeFiles/test_ghs_mst.dir/tests/test_ghs_mst.cpp.o.d"
  "test_ghs_mst"
  "test_ghs_mst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghs_mst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
