# Empty compiler generated dependencies file for test_two_respect.
# This may be replaced when dependencies are built.
