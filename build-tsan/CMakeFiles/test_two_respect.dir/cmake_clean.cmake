file(REMOVE_RECURSE
  "CMakeFiles/test_two_respect.dir/tests/test_two_respect.cpp.o"
  "CMakeFiles/test_two_respect.dir/tests/test_two_respect.cpp.o.d"
  "test_two_respect"
  "test_two_respect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_respect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
