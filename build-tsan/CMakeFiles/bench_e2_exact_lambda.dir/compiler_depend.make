# Empty compiler generated dependencies file for bench_e2_exact_lambda.
# This may be replaced when dependencies are built.
