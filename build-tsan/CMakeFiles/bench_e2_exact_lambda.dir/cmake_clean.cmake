file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_exact_lambda.dir/bench/bench_e2_exact_lambda.cpp.o"
  "CMakeFiles/bench_e2_exact_lambda.dir/bench/bench_e2_exact_lambda.cpp.o.d"
  "bench_e2_exact_lambda"
  "bench_e2_exact_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_exact_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
