# Empty dependencies file for example_figure1_walkthrough.
# This may be replaced when dependencies are built.
