file(REMOVE_RECURSE
  "CMakeFiles/example_figure1_walkthrough.dir/examples/figure1_walkthrough.cpp.o"
  "CMakeFiles/example_figure1_walkthrough.dir/examples/figure1_walkthrough.cpp.o.d"
  "example_figure1_walkthrough"
  "example_figure1_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_figure1_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
