# Empty compiler generated dependencies file for bench_e3_approx_quality.
# This may be replaced when dependencies are built.
