file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_approx_quality.dir/bench/bench_e3_approx_quality.cpp.o"
  "CMakeFiles/bench_e3_approx_quality.dir/bench/bench_e3_approx_quality.cpp.o.d"
  "bench_e3_approx_quality"
  "bench_e3_approx_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_approx_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
