# Empty dependencies file for test_tree_partition.
# This may be replaced when dependencies are built.
