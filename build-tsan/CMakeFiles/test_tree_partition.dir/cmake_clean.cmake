file(REMOVE_RECURSE
  "CMakeFiles/test_tree_partition.dir/tests/test_tree_partition.cpp.o"
  "CMakeFiles/test_tree_partition.dir/tests/test_tree_partition.cpp.o.d"
  "test_tree_partition"
  "test_tree_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
