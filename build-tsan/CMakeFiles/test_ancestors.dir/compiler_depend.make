# Empty compiler generated dependencies file for test_ancestors.
# This may be replaced when dependencies are built.
