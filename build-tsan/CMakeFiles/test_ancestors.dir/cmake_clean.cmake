file(REMOVE_RECURSE
  "CMakeFiles/test_ancestors.dir/tests/test_ancestors.cpp.o"
  "CMakeFiles/test_ancestors.dir/tests/test_ancestors.cpp.o.d"
  "test_ancestors"
  "test_ancestors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ancestors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
