file(REMOVE_RECURSE
  "CMakeFiles/test_mincut_dist.dir/tests/test_mincut_dist.cpp.o"
  "CMakeFiles/test_mincut_dist.dir/tests/test_mincut_dist.cpp.o.d"
  "test_mincut_dist"
  "test_mincut_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mincut_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
