# Empty dependencies file for test_mincut_dist.
# This may be replaced when dependencies are built.
