# Empty compiler generated dependencies file for test_tree_view.
# This may be replaced when dependencies are built.
