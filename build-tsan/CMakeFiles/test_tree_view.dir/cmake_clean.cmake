file(REMOVE_RECURSE
  "CMakeFiles/test_tree_view.dir/tests/test_tree_view.cpp.o"
  "CMakeFiles/test_tree_view.dir/tests/test_tree_view.cpp.o.d"
  "test_tree_view"
  "test_tree_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
