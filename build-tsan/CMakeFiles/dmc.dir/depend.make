# Empty dependencies file for dmc.
# This may be replaced when dependencies are built.
