
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/central/karger2000.cpp" "CMakeFiles/dmc.dir/src/central/karger2000.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/karger2000.cpp.o.d"
  "/root/repo/src/central/karger_stein.cpp" "CMakeFiles/dmc.dir/src/central/karger_stein.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/karger_stein.cpp.o.d"
  "/root/repo/src/central/matula.cpp" "CMakeFiles/dmc.dir/src/central/matula.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/matula.cpp.o.d"
  "/root/repo/src/central/mincut_central.cpp" "CMakeFiles/dmc.dir/src/central/mincut_central.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/mincut_central.cpp.o.d"
  "/root/repo/src/central/one_respect_dp.cpp" "CMakeFiles/dmc.dir/src/central/one_respect_dp.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/one_respect_dp.cpp.o.d"
  "/root/repo/src/central/skeleton.cpp" "CMakeFiles/dmc.dir/src/central/skeleton.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/skeleton.cpp.o.d"
  "/root/repo/src/central/stoer_wagner.cpp" "CMakeFiles/dmc.dir/src/central/stoer_wagner.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/stoer_wagner.cpp.o.d"
  "/root/repo/src/central/tree_packing.cpp" "CMakeFiles/dmc.dir/src/central/tree_packing.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/tree_packing.cpp.o.d"
  "/root/repo/src/central/two_respect_dp.cpp" "CMakeFiles/dmc.dir/src/central/two_respect_dp.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/central/two_respect_dp.cpp.o.d"
  "/root/repo/src/congest/engine.cpp" "CMakeFiles/dmc.dir/src/congest/engine.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/engine.cpp.o.d"
  "/root/repo/src/congest/message.cpp" "CMakeFiles/dmc.dir/src/congest/message.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/message.cpp.o.d"
  "/root/repo/src/congest/network.cpp" "CMakeFiles/dmc.dir/src/congest/network.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/network.cpp.o.d"
  "/root/repo/src/congest/primitives/aggregate_broadcast.cpp" "CMakeFiles/dmc.dir/src/congest/primitives/aggregate_broadcast.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/primitives/aggregate_broadcast.cpp.o.d"
  "/root/repo/src/congest/primitives/barrier.cpp" "CMakeFiles/dmc.dir/src/congest/primitives/barrier.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/primitives/barrier.cpp.o.d"
  "/root/repo/src/congest/primitives/convergecast.cpp" "CMakeFiles/dmc.dir/src/congest/primitives/convergecast.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/primitives/convergecast.cpp.o.d"
  "/root/repo/src/congest/primitives/downcast.cpp" "CMakeFiles/dmc.dir/src/congest/primitives/downcast.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/primitives/downcast.cpp.o.d"
  "/root/repo/src/congest/primitives/leader_bfs.cpp" "CMakeFiles/dmc.dir/src/congest/primitives/leader_bfs.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/primitives/leader_bfs.cpp.o.d"
  "/root/repo/src/congest/primitives/pairwise_exchange.cpp" "CMakeFiles/dmc.dir/src/congest/primitives/pairwise_exchange.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/primitives/pairwise_exchange.cpp.o.d"
  "/root/repo/src/congest/schedule.cpp" "CMakeFiles/dmc.dir/src/congest/schedule.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/schedule.cpp.o.d"
  "/root/repo/src/congest/stats.cpp" "CMakeFiles/dmc.dir/src/congest/stats.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/stats.cpp.o.d"
  "/root/repo/src/congest/tree_view.cpp" "CMakeFiles/dmc.dir/src/congest/tree_view.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/congest/tree_view.cpp.o.d"
  "/root/repo/src/core/ancestors.cpp" "CMakeFiles/dmc.dir/src/core/ancestors.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/ancestors.cpp.o.d"
  "/root/repo/src/core/api.cpp" "CMakeFiles/dmc.dir/src/core/api.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/api.cpp.o.d"
  "/root/repo/src/core/approx_mincut.cpp" "CMakeFiles/dmc.dir/src/core/approx_mincut.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/approx_mincut.cpp.o.d"
  "/root/repo/src/core/bridges.cpp" "CMakeFiles/dmc.dir/src/core/bridges.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/bridges.cpp.o.d"
  "/root/repo/src/core/cut_verify.cpp" "CMakeFiles/dmc.dir/src/core/cut_verify.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/cut_verify.cpp.o.d"
  "/root/repo/src/core/exact_mincut.cpp" "CMakeFiles/dmc.dir/src/core/exact_mincut.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/exact_mincut.cpp.o.d"
  "/root/repo/src/core/gk_estimator.cpp" "CMakeFiles/dmc.dir/src/core/gk_estimator.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/gk_estimator.cpp.o.d"
  "/root/repo/src/core/lca_rho.cpp" "CMakeFiles/dmc.dir/src/core/lca_rho.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/lca_rho.cpp.o.d"
  "/root/repo/src/core/merging_nodes.cpp" "CMakeFiles/dmc.dir/src/core/merging_nodes.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/merging_nodes.cpp.o.d"
  "/root/repo/src/core/one_respect.cpp" "CMakeFiles/dmc.dir/src/core/one_respect.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/one_respect.cpp.o.d"
  "/root/repo/src/core/skeleton_dist.cpp" "CMakeFiles/dmc.dir/src/core/skeleton_dist.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/skeleton_dist.cpp.o.d"
  "/root/repo/src/core/su_baseline.cpp" "CMakeFiles/dmc.dir/src/core/su_baseline.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/su_baseline.cpp.o.d"
  "/root/repo/src/core/subtree_sums.cpp" "CMakeFiles/dmc.dir/src/core/subtree_sums.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/subtree_sums.cpp.o.d"
  "/root/repo/src/core/tree_packing_dist.cpp" "CMakeFiles/dmc.dir/src/core/tree_packing_dist.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/core/tree_packing_dist.cpp.o.d"
  "/root/repo/src/dist/ghs_mst.cpp" "CMakeFiles/dmc.dir/src/dist/ghs_mst.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/dist/ghs_mst.cpp.o.d"
  "/root/repo/src/dist/tree_partition.cpp" "CMakeFiles/dmc.dir/src/dist/tree_partition.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/dist/tree_partition.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "CMakeFiles/dmc.dir/src/graph/algorithms.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/cut.cpp" "CMakeFiles/dmc.dir/src/graph/cut.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/cut.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "CMakeFiles/dmc.dir/src/graph/generators.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/dmc.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "CMakeFiles/dmc.dir/src/graph/io.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/io.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "CMakeFiles/dmc.dir/src/graph/mst.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/mst.cpp.o.d"
  "/root/repo/src/graph/tree.cpp" "CMakeFiles/dmc.dir/src/graph/tree.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/graph/tree.cpp.o.d"
  "/root/repo/src/util/dsu.cpp" "CMakeFiles/dmc.dir/src/util/dsu.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/util/dsu.cpp.o.d"
  "/root/repo/src/util/options.cpp" "CMakeFiles/dmc.dir/src/util/options.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/util/options.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "CMakeFiles/dmc.dir/src/util/prng.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/util/prng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/dmc.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/dmc.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
