file(REMOVE_RECURSE
  "libdmc.a"
)
