file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_fragment_ablation.dir/bench/bench_e6_fragment_ablation.cpp.o"
  "CMakeFiles/bench_e6_fragment_ablation.dir/bench/bench_e6_fragment_ablation.cpp.o.d"
  "bench_e6_fragment_ablation"
  "bench_e6_fragment_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_fragment_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
