# Empty compiler generated dependencies file for bench_e6_fragment_ablation.
# This may be replaced when dependencies are built.
