# Empty compiler generated dependencies file for bench_e5_tree_packing.
# This may be replaced when dependencies are built.
