file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_tree_packing.dir/bench/bench_e5_tree_packing.cpp.o"
  "CMakeFiles/bench_e5_tree_packing.dir/bench/bench_e5_tree_packing.cpp.o.d"
  "bench_e5_tree_packing"
  "bench_e5_tree_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_tree_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
