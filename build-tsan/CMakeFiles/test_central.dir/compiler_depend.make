# Empty compiler generated dependencies file for test_central.
# This may be replaced when dependencies are built.
