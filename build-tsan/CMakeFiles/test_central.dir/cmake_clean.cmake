file(REMOVE_RECURSE
  "CMakeFiles/test_central.dir/tests/test_central.cpp.o"
  "CMakeFiles/test_central.dir/tests/test_central.cpp.o.d"
  "test_central"
  "test_central.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_central.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
