file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_congestion.dir/bench/bench_e7_congestion.cpp.o"
  "CMakeFiles/bench_e7_congestion.dir/bench/bench_e7_congestion.cpp.o.d"
  "bench_e7_congestion"
  "bench_e7_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
