# Empty dependencies file for test_skeleton_dist.
# This may be replaced when dependencies are built.
