file(REMOVE_RECURSE
  "CMakeFiles/test_skeleton_dist.dir/tests/test_skeleton_dist.cpp.o"
  "CMakeFiles/test_skeleton_dist.dir/tests/test_skeleton_dist.cpp.o.d"
  "test_skeleton_dist"
  "test_skeleton_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skeleton_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
