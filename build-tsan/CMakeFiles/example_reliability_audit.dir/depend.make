# Empty dependencies file for example_reliability_audit.
# This may be replaced when dependencies are built.
