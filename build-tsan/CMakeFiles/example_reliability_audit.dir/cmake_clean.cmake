file(REMOVE_RECURSE
  "CMakeFiles/example_reliability_audit.dir/examples/reliability_audit.cpp.o"
  "CMakeFiles/example_reliability_audit.dir/examples/reliability_audit.cpp.o.d"
  "example_reliability_audit"
  "example_reliability_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reliability_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
