# Empty dependencies file for bench_e1_rounds_scaling.
# This may be replaced when dependencies are built.
