file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_rounds_scaling.dir/bench/bench_e1_rounds_scaling.cpp.o"
  "CMakeFiles/bench_e1_rounds_scaling.dir/bench/bench_e1_rounds_scaling.cpp.o.d"
  "bench_e1_rounds_scaling"
  "bench_e1_rounds_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_rounds_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
