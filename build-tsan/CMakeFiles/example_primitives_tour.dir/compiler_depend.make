# Empty compiler generated dependencies file for example_primitives_tour.
# This may be replaced when dependencies are built.
