file(REMOVE_RECURSE
  "CMakeFiles/example_primitives_tour.dir/examples/primitives_tour.cpp.o"
  "CMakeFiles/example_primitives_tour.dir/examples/primitives_tour.cpp.o.d"
  "example_primitives_tour"
  "example_primitives_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_primitives_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
