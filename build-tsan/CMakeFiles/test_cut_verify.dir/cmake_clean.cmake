file(REMOVE_RECURSE
  "CMakeFiles/test_cut_verify.dir/tests/test_cut_verify.cpp.o"
  "CMakeFiles/test_cut_verify.dir/tests/test_cut_verify.cpp.o.d"
  "test_cut_verify"
  "test_cut_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cut_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
