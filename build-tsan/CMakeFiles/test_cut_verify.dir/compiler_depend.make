# Empty compiler generated dependencies file for test_cut_verify.
# This may be replaced when dependencies are built.
