file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_micro.dir/bench/bench_e8_micro.cpp.o"
  "CMakeFiles/bench_e8_micro.dir/bench/bench_e8_micro.cpp.o.d"
  "bench_e8_micro"
  "bench_e8_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
