# Empty dependencies file for test_one_respect_dist.
# This may be replaced when dependencies are built.
