file(REMOVE_RECURSE
  "CMakeFiles/test_one_respect_dist.dir/tests/test_one_respect_dist.cpp.o"
  "CMakeFiles/test_one_respect_dist.dir/tests/test_one_respect_dist.cpp.o.d"
  "test_one_respect_dist"
  "test_one_respect_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_respect_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
