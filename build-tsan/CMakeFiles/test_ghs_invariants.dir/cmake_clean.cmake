file(REMOVE_RECURSE
  "CMakeFiles/test_ghs_invariants.dir/tests/test_ghs_invariants.cpp.o"
  "CMakeFiles/test_ghs_invariants.dir/tests/test_ghs_invariants.cpp.o.d"
  "test_ghs_invariants"
  "test_ghs_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghs_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
