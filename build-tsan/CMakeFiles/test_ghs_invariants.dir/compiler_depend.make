# Empty compiler generated dependencies file for test_ghs_invariants.
# This may be replaced when dependencies are built.
