// Public umbrella header for the dmc library.
//
// Pulls in the whole embedder-facing surface: the one-shot min-cut API
// (core/api.h), graphs and generators, sessions and pools
// (<dmc/session.h>), and the multi-graph serving layer (<dmc/serve.h>).
// Add both include/ and src/ to the include path (CMake consumers get
// them from the `dmc` target) and write `#include <dmc/dmc.h>`.
#pragma once

#include "core/api.h"
#include "graph/generators.h"
#include "graph/graph.h"

#include "dmc/serve.h"
#include "dmc/session.h"
