// Public header: the solve-session layer.
//
// Re-exports dmc::Session / SessionOptions / MinCutRequest / MinCutReport
// (core/session.h) and dmc::SessionPool (core/session_pool.h) under the
// installable include/dmc/ prefix.  Embedders add include/ to their
// include path and write `#include <dmc/session.h>`; the internal src/
// tree stays the single source of truth.
#pragma once

#include "core/session.h"
#include "core/session_pool.h"
