// Public header: the multi-graph serving layer.
//
// Re-exports dmc::Server, GraphRegistry, AdmissionController, the
// workload synthesis/trace tools, and the serve stats structs
// (src/serve/serve.h).  Use as `#include <dmc/serve.h>` with include/ on
// the include path.
#pragma once

#include "serve/serve.h"
