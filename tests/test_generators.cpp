// Generator tests: structural invariants of every graph family.
#include <gtest/gtest.h>

#include "central/stoer_wagner.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace dmc {
namespace {

TEST(Generators, Path) {
  const Graph g = make_path(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter_exact(g), 5u);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(8);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(diameter_exact(g), 4u);
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 2u);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(diameter_exact(g), 1u);
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 5u);
}

TEST(Generators, Star) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(diameter_exact(g), 2u);
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 1u);
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // horizontal + vertical
  EXPECT_EQ(diameter_exact(g), 5u);
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 2u);
}

TEST(Generators, Torus) {
  const Graph g = make_torus(4, 4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 4u);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  EXPECT_EQ(diameter_exact(g), 4u);
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 4u);
}

TEST(Generators, ErdosRenyiConnectedAndDeterministic) {
  const Graph a = make_erdos_renyi(64, 0.15, 7);
  const Graph b = make_erdos_renyi(64, 0.15, 7);
  EXPECT_TRUE(is_connected(a));
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
  }
  const Graph c = make_erdos_renyi(64, 0.15, 8);
  EXPECT_TRUE(is_connected(c));
}

TEST(Generators, ErdosRenyiEdgeCountPlausible) {
  const Graph g = make_erdos_renyi(200, 0.1, 3);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.8);
  EXPECT_LT(g.num_edges(), expected * 1.2);
}

TEST(Generators, RandomRegular) {
  const Graph g = make_random_regular(50, 4, 11);
  EXPECT_TRUE(is_connected(g));
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  EXPECT_THROW(make_random_regular(5, 3, 1), PreconditionError);
}

TEST(Generators, RandomTree) {
  const Graph g = make_random_tree(40, 5);
  EXPECT_EQ(g.num_edges(), 39u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarbellPlantedCut) {
  const Graph g = make_barbell(20, 3, 1, 17);
  EXPECT_TRUE(is_connected(g));
  // Two K10's joined by 3 unit edges: min cut = 3 < 9 = internal degree.
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 3u);
}

TEST(Generators, PlantedCutValue) {
  const Graph g = make_planted_cut(32, 0.8, 4, 1, 23);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 4u);
}

TEST(Generators, PathOfCliques) {
  const Graph g = make_path_of_cliques(5, 6);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 1u);
  EXPECT_GE(diameter_exact(g), 8u);  // D grows with the chain
}

TEST(Generators, RandomConnectedExactEdgeCount) {
  const Graph g = make_random_connected(30, 60, 9);
  EXPECT_EQ(g.num_edges(), 60u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WithRandomWeightsPreservesTopology) {
  const Graph g = make_cycle(10);
  const Graph w = with_random_weights(g, 3, 2, 9);
  ASSERT_EQ(w.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(w.edge(e).u, g.edge(e).u);
    EXPECT_EQ(w.edge(e).v, g.edge(e).v);
    EXPECT_GE(w.edge(e).w, 2u);
    EXPECT_LE(w.edge(e).w, 9u);
  }
}

}  // namespace
}  // namespace dmc
