// The paper's Figure 1 worked example, reconstructed as an executable test.
//
// A 16-node tree rooted at 0, partitioned into four fragments — F(0) =
// {0,1,2,3,4} containing the root, and three child fragments rooted at 5,
// 6, and 7 — so that, exactly as the figure annotates:
//   * fragments (5), (6), (7) are children of fragment (0)    [Fig. 1b]
//   * A(15) consists of 7 (own fragment) and 0, 2, 4 (parent) [Fig. 1c]
//   * nodes 0 and 1 are the merging nodes                     [Fig. 1a/d]
//   * T'_F has root 0 with children 1 and 7, and 1 has 5, 6   [Fig. 1d]
// Extra non-tree edges exercise all three LCA cases of Step 5 [Fig. 1e/f].
#include <gtest/gtest.h>

#include "central/one_respect_dp.h"
#include "congest/network.h"
#include "congest/schedule.h"
#include "core/ancestors.h"
#include "core/merging_nodes.h"
#include "core/one_respect.h"
#include "dist/tree_partition.h"
#include "graph/cut.h"
#include "graph/tree.h"

namespace dmc {
namespace {

struct Figure1 {
  Graph g{16};
  std::vector<EdgeId> tree;
  std::vector<std::uint32_t> frag;  // 0: root fragment, 1↔F5, 2↔F6, 3↔F7
  EdgeId e_case1{kNoEdge}, e_case2{kNoEdge}, e_case3{kNoEdge};

  Figure1() {
    const auto te = [&](NodeId u, NodeId v) {
      tree.push_back(g.add_edge(u, v, 1));
    };
    // Fragment F(0): 0-1, 0-2, 2-3, 2-4.
    te(0, 1);
    te(0, 2);
    te(2, 3);
    te(2, 4);
    // Child fragments: F5 = {5,8,9}, F6 = {6,10,11}, F7 = {7,12,13,14,15}.
    te(1, 5);   // attachment of F5 at node 1
    te(1, 6);   // attachment of F6 at node 1
    te(4, 7);   // attachment of F7 at node 4
    te(5, 8);
    te(5, 9);
    te(6, 10);
    te(6, 11);
    te(7, 12);
    te(7, 13);
    te(7, 14);
    te(7, 15);
    // Non-tree edges covering Step 5's three LCA cases (Figure 1e):
    e_case1 = g.add_edge(8, 9, 2);    // same fragment; LCA 5
    e_case2 = g.add_edge(9, 10, 3);   // F5 vs F6; LCA = merging node 1
    e_case3 = g.add_edge(3, 14, 4);   // F0 vs F7; LCA 2 ∈ F0 (case 3)
    g.add_edge(8, 12, 5);             // F5 vs F7; LCA = merging node 0

    frag.assign(16, 0);
    for (const NodeId v : {5, 8, 9}) frag[v] = 1;
    for (const NodeId v : {6, 10, 11}) frag[v] = 2;
    for (const NodeId v : {7, 12, 13, 14, 15}) frag[v] = 3;
  }
};

TEST(Figure1, FragmentTreeMatchesPanelB) {
  Figure1 f;
  const FragmentStructure fs =
      make_fragment_structure_centralized(f.g, f.tree, 0, f.frag);
  EXPECT_EQ(fs.k, 4u);
  EXPECT_EQ(fs.frag_root_node[0], 0u);
  EXPECT_EQ(fs.frag_root_node[1], 5u);
  EXPECT_EQ(fs.frag_root_node[2], 6u);
  EXPECT_EQ(fs.frag_root_node[3], 7u);
  // Fragments (5), (6), (7) are children of fragment (0).
  EXPECT_EQ(fs.frag_parent[1], 0u);
  EXPECT_EQ(fs.frag_parent[2], 0u);
  EXPECT_EQ(fs.frag_parent[3], 0u);
  EXPECT_EQ(fs.frag_parent[0], kNoFrag);
}

TEST(Figure1, AncestorsOfNode15MatchPanelC) {
  Figure1 f;
  const FragmentStructure fs =
      make_fragment_structure_centralized(f.g, f.tree, 0, f.frag);
  Network net{f.g};
  Schedule sched{net};
  sched.set_barrier_height(4);
  const AncestorData ad = compute_ancestors(sched, fs);
  // Own-fragment ancestors of 15: just 7.
  ASSERT_EQ(ad.own_chain(15).size(), 1u);
  EXPECT_EQ(ad.own_chain(15)[0], 7u);
  // Parent-fragment ancestors of 15: 0, 2, 4 in that (depth) order.
  ASSERT_EQ(ad.parent_chain(15).size(), 3u);
  EXPECT_EQ(ad.parent_chain(15)[0], 0u);
  EXPECT_EQ(ad.parent_chain(15)[1], 2u);
  EXPECT_EQ(ad.parent_chain(15)[2], 4u);
  // F(v) examples: F(1) = {F5, F6}; F(2) = {F7}; F(0's root) = all three.
  EXPECT_EQ(fs.closure(ad.attach[1]),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(fs.closure(ad.attach[2]), (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(fs.closure(ad.attach[0]),
            (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(Figure1, MergingNodesAndTfPrimeMatchPanelD) {
  Figure1 f;
  const FragmentStructure fs =
      make_fragment_structure_centralized(f.g, f.tree, 0, f.frag);
  Network net{f.g};
  Schedule sched{net};
  sched.set_barrier_height(4);
  // The BFS tree is only a broadcast backbone; T itself works here.
  const AncestorData ad = compute_ancestors(sched, fs);
  const TfPrime tfp = compute_merging_nodes(sched, fs.t_view, fs, ad);

  // "e.g. nodes 0 and 1 in Figure 1a" are the merging nodes.
  for (NodeId v = 0; v < 16; ++v)
    EXPECT_EQ(tfp.is_merging[v] != 0, v == 0 || v == 1) << "node " << v;

  // T'_F: nodes {0, 1, 5, 6, 7}; 1 and 7 hang off 0; 5 and 6 off 1.
  EXPECT_EQ(tfp.nodes, (std::vector<NodeId>{0, 1, 5, 6, 7}));
  EXPECT_EQ(tfp.parent.at(1), 0u);
  EXPECT_EQ(tfp.parent.at(7), 0u);
  EXPECT_EQ(tfp.parent.at(5), 1u);
  EXPECT_EQ(tfp.parent.at(6), 1u);
  EXPECT_EQ(tfp.parent.at(0), kNoNode);
  EXPECT_EQ(tfp.lca(5, 6), 1u);
  EXPECT_EQ(tfp.lca(5, 7), 0u);
  EXPECT_EQ(tfp.lca(6, 7), 0u);
}

TEST(Figure1, OneRespectValuesMatchKargerDp) {
  Figure1 f;
  const FragmentStructure fs =
      make_fragment_structure_centralized(f.g, f.tree, 0, f.frag);
  Network net{f.g};
  Schedule sched{net};
  sched.set_barrier_height(4);
  std::vector<Weight> w(f.g.num_edges());
  for (EdgeId e = 0; e < f.g.num_edges(); ++e) w[e] = f.g.edge(e).w;
  const OneRespectResult got =
      one_respect_min_cut(sched, fs.t_view, fs, w);

  const RootedTree t = RootedTree::from_edges(f.g, f.tree, 0);
  const OneRespectValues oracle = one_respect_dp(f.g, t);
  for (NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(got.delta_down[v], oracle.delta_down[v]) << "node " << v;
    EXPECT_EQ(got.rho_down[v], oracle.rho_down[v]) << "node " << v;
    EXPECT_EQ(got.cut_down[v], oracle.cut_down[v]) << "node " << v;
  }
  EXPECT_EQ(cut_value(f.g, got.in_cut), got.c_star);

  // Hand-checked values: ρ(5) counts the (8,9) edge (weight 2); C(8↓) is
  // node 8's degree = 1 + 2 + 5.
  EXPECT_EQ(oracle.rho[5], 2u + 1u + 1u);  // edges (8,9), (5,8), (5,9)
  EXPECT_EQ(got.cut_down[8], 8u);
}

TEST(Figure1, LcaCaseClassification) {
  // Sanity of the constructed example: the three extra edges land in the
  // intended LCA cases (verified via the tree oracle).
  Figure1 f;
  const RootedTree t = RootedTree::from_edges(f.g, f.tree, 0);
  EXPECT_EQ(t.lca(8, 9), 5u);    // case 1, inside F5
  EXPECT_EQ(t.lca(9, 10), 1u);   // case 2, merging node 1
  EXPECT_EQ(t.lca(3, 14), 2u);   // case 3, z ∈ F0
  EXPECT_EQ(t.lca(8, 12), 0u);   // case 2, merging node 0
}

}  // namespace
}  // namespace dmc
