// Stamp-epoch wraparound: the Network stamps delivery slots with 32-bit
// round tokens and renormalizes them when the epoch nears exhaustion
// (network.h).  Renormalization must be INVISIBLE — same protocol results,
// same CongestStats bit for bit — no matter how often it fires, under every
// engine and both scheduling modes.  These tests shrink the epoch with
// set_stamp_epoch_limit_for_test so the renormalization sweep runs dozens
// of times in a workload that would otherwise never trigger it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "congest/network.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/schedule.h"
#include "core/one_respect.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "graph/generators.h"
#include "graph/mst.h"

namespace dmc {
namespace {

/// A relay chain: node 0 emits `count` numbered tokens, one per round;
/// every node forwards tokens up the path; the last node records what
/// arrives, in order.  Each token is in flight for ~n rounds, so a tiny
/// epoch limit renormalizes live slot stamps under it many times — if the
/// sweep ever corrupted or dropped a live stamp, the recorded sequence
/// would change.
class RelayChainProtocol final : public Protocol {
 public:
  RelayChainProtocol(const Graph& g, std::uint32_t count)
      : g_(&g), count_(count) {}

  [[nodiscard]] std::string name() const override { return "relay_chain"; }

  void round(NodeId v, Mailbox& mb) override {
    const NodeId last = g_->num_nodes() - 1;
    for (const Delivery d : mb.inbox()) {
      if (v == last) {
        received_.push_back(d.msg.w[0]);
      } else {
        // Forward to the upward neighbour, whichever port that is.
        const auto ports = g_->ports(v);
        for (std::uint32_t p = 0; p < ports.size(); ++p)
          if (ports[p].peer == v + 1) mb.send(p, d.msg);
      }
    }
    if (v == 0 && emitted_ < count_) {
      mb.send(0, Message::make(3, {Word{emitted_} * 0x9e3779b9u + 1}));
      ++emitted_;
      if (emitted_ < count_) mb.request_wake();
    }
  }

  [[nodiscard]] bool local_done(NodeId v) const override {
    return v != 0 || emitted_ == count_;
  }

  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }

  [[nodiscard]] const std::vector<Word>& received() const {
    return received_;
  }

 private:
  const Graph* g_;
  std::uint32_t count_;
  std::uint32_t emitted_{0};
  std::vector<Word> received_;
};

struct RelayOut {
  std::vector<Word> received;
  CongestStats stats;
};

RelayOut run_relay(const Graph& g, std::unique_ptr<Engine> engine,
                   Scheduling forced,
                   std::optional<std::uint32_t> epoch_limit) {
  Network net{g, std::move(engine)};
  if (epoch_limit) net.set_stamp_epoch_limit_for_test(*epoch_limit);
  net.force_scheduling(forced);
  RelayChainProtocol p{g, /*count=*/24};
  net.run(p);
  return {p.received(), net.stats()};
}

TEST(StampEpoch, RelayChainSurvivesConstantRenormalization) {
  const Graph g = make_path(40);
  for (const Scheduling forced :
       {Scheduling::kDense, Scheduling::kEventDriven}) {
    const RelayOut base =
        run_relay(g, make_sequential_engine(), forced, std::nullopt);
    // 24 tokens over a 40-hop path: >60 rounds, so limit 4 renormalizes
    // every other round while payloads are in flight.
    ASSERT_GT(base.stats.rounds, 60u);
    ASSERT_EQ(base.received.size(), 24u);
    for (const std::uint32_t limit : {4u, 8u, 13u}) {
      const RelayOut renorm =
          run_relay(g, make_sequential_engine(), forced, limit);
      EXPECT_EQ(base.received, renorm.received) << "limit " << limit;
      EXPECT_TRUE(base.stats == renorm.stats)
          << "stats diverged at limit " << limit;
    }
    for (const unsigned threads : {2u, 8u}) {
      const RelayOut par =
          run_relay(g, make_sharded_engine(threads), forced, 4u);
      EXPECT_EQ(base.received, par.received) << threads << " threads";
      EXPECT_TRUE(base.stats == par.stats)
          << "stats diverged at " << threads << " threads";
    }
  }
}

struct PipelineOut {
  OneRespectResult r;
  CongestStats stats;
};

/// The one-respecting pipeline (leader BFS + GHS + fragment structure +
/// Steps 2–5) under a given engine / scheduling / epoch limit.
PipelineOut run_pipeline(const Graph& g, std::unique_ptr<Engine> engine,
                         Scheduling forced,
                         std::optional<std::uint32_t> epoch_limit) {
  Network net{g, std::move(engine)};
  if (epoch_limit) net.set_stamp_epoch_limit_for_test(*epoch_limit);
  net.force_scheduling(forced);
  Schedule sched{net};
  LeaderBfsProtocol lb{g};
  sched.run_uncharged(lb);
  const TreeView bfs = lb.tree_view(g);
  sched.set_barrier_height(bfs.height(g));
  sched.charge_barrier();
  const DistMstResult mst = ghs_mst(sched, bfs, weight_keys(g));
  const FragmentStructure fs =
      build_fragment_structure(sched, bfs, lb.leader(), mst);
  std::vector<Weight> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).w;
  const OneRespectResult r = one_respect_min_cut(sched, bfs, fs, w);
  return {r, net.stats()};
}

TEST(StampEpoch, OneRespectPipelineBitIdenticalUnderForcedRenorm) {
  const Graph g = make_planted_cut(36, 0.45, /*cross=*/3, /*cross_w=*/1,
                                   /*seed=*/5);
  for (const Scheduling forced :
       {Scheduling::kDense, Scheduling::kEventDriven}) {
    const PipelineOut base =
        run_pipeline(g, make_sequential_engine(), forced, std::nullopt);
    // The pipeline runs far more rounds than the forced limit, so the
    // renormalized runs below re-base their epochs many times.
    ASSERT_GT(base.stats.rounds, 8u);
    const struct {
      const char* what;
      std::unique_ptr<Engine> (*make)();
    } engines[] = {
        {"sequential", +[] { return make_sequential_engine(); }},
        {"sharded(2)", +[] { return make_sharded_engine(2); }},
        {"sharded(8)", +[] { return make_sharded_engine(8); }},
    };
    for (const auto& e : engines) {
      const PipelineOut renorm = run_pipeline(g, e.make(), forced, 8u);
      EXPECT_EQ(base.r.c_star, renorm.r.c_star) << e.what;
      EXPECT_EQ(base.r.v_star, renorm.r.v_star) << e.what;
      EXPECT_EQ(base.r.cut_down, renorm.r.cut_down) << e.what;
      EXPECT_EQ(base.r.delta_down, renorm.r.delta_down) << e.what;
      EXPECT_EQ(base.r.rho_down, renorm.r.rho_down) << e.what;
      EXPECT_EQ(base.r.in_cut, renorm.r.in_cut) << e.what;
      EXPECT_TRUE(base.stats == renorm.stats)
          << e.what << ": stats diverged under forced renormalization";
    }
  }
}

}  // namespace
}  // namespace dmc
