// dmc::serve — the multi-graph serving layer's correctness contract:
//
//   * every Ok response is bit-identical (value, side, every stat) to a
//     fresh cold Session over the same graph — through warm hits, LRU
//     eviction + rewarm cycles, pool dispatch, and coalescing alike;
//   * the registry's byte accounting is coherent (resident = Σ entry
//     bytes, eviction subtracts what acquire added, high-water is
//     monotone) and the LRU evicts coldest-first, never the entry just
//     touched;
//   * admission control is a pure occupancy automaton: a seeded arrival
//     trace replays to exactly the same rejection pattern;
//   * fault-plan requests route AROUND the warm registry (cold solve,
//     fault_bypasses counter, no cache pollution);
//   * SessionPool's drain()/destructor ordering: a drained pool refuses
//     further solves; solve_each captures per-request failures without
//     discarding neighbours.
//
// The concurrent sections (ServeConcurrent*) are the TSan targets CI runs
// alongside test_faults (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "serve/serve.h"
#include "util/assert.h"
#include "util/prng.h"

namespace dmc {
namespace {

void expect_report_identical(const MinCutReport& a, const MinCutReport& b,
                             const std::string& what) {
  EXPECT_EQ(a.algo, b.algo) << what;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.side, b.side) << what;
  EXPECT_EQ(a.v_star, b.v_star) << what;
  EXPECT_EQ(a.trees_packed, b.trees_packed) << what;
  EXPECT_EQ(a.tree_of_best, b.tree_of_best) << what;
  EXPECT_EQ(a.fragments, b.fragments) << what;
  EXPECT_EQ(a.p, b.p) << what;
  EXPECT_EQ(a.lambda_hat, b.lambda_hat) << what;
  EXPECT_EQ(a.sampled, b.sampled) << what;
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.q_threshold, b.q_threshold) << what;
  EXPECT_TRUE(a.stats == b.stats) << what << ": stats diverged";
}

Graph test_graph(std::uint64_t seed, std::size_t n = 64) {
  return make_erdos_renyi(n, 0.12, seed, /*min_w=*/2, /*max_w=*/9);
}

MinCutRequest gk_query(std::uint64_t seed) {
  MinCutRequest q;
  q.algo = Algo::kGk;
  q.seed = seed;
  return q;
}

/// Manual-dispatch server (no dispatcher thread): submissions queue until
/// drain_queued() — the deterministic mode the admission tests need.
ServeOptions manual_options() {
  ServeOptions opt;
  opt.start_dispatcher = false;
  return opt;
}

// ---------------------------------------------------------------- serving

TEST(Serve, OkResponseIsBitIdenticalToFreshColdSession) {
  Server server{manual_options()};
  const Graph g = test_graph(3);
  const GraphId id = server.register_graph(test_graph(3));

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ServeRequest req;
    req.graph = id;
    req.query = gk_query(seed);
    const ServeResponse r = server.serve(req);
    ASSERT_EQ(r.outcome, ServeOutcome::kOk);
    EXPECT_EQ(r.warm_hit, seed > 1);  // first touch builds, then hits

    Session cold{g};
    expect_report_identical(r.report, cold.solve(req.query),
                            "served vs fresh cold, seed " +
                                std::to_string(seed));
  }
}

TEST(Serve, UpdateRequestPatchesWarmEntryAndStaysBitIdentical) {
  Server server{manual_options()};
  const Graph base = test_graph(5);
  const GraphId id = server.register_graph(test_graph(5));

  // Warm the entry, then stream: query, update, query — queue order
  // defines which graph version each query sees (updates never coalesce).
  ServeRequest query;
  query.graph = id;
  query.query = gk_query(2);
  ASSERT_EQ(server.serve(query).outcome, ServeOutcome::kOk);
  const std::size_t warm_bytes_before =
      server.stats().registry.warm_bytes_resident;

  ServeRequest update;
  update.graph = id;
  update.updates = {EdgeUpdate::reweight(0, 7), EdgeUpdate::insert(1, 9, 3)};
  const ServeResponse u = server.serve(update);
  ASSERT_EQ(u.outcome, ServeOutcome::kOk);
  EXPECT_EQ(u.update.reweighted, 1u);
  EXPECT_EQ(u.update.inserted, 1u);
  EXPECT_TRUE(u.update.topology_changed());

  const ServeResponse after = server.serve(query);
  ASSERT_EQ(after.outcome, ServeOutcome::kOk);
  EXPECT_TRUE(after.warm_hit) << "the update must patch, not evict";

  Graph rebuilt = base;
  (void)rebuilt.apply_updates(update.updates);
  Session cold{rebuilt};
  expect_report_identical(after.report, cold.solve(query.query),
                          "post-update serve vs fresh cold on rebuilt");

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.registry.updates_applied, 1u);
  EXPECT_EQ(stats.dispatch.updates_applied, 1u);
  // memory_bytes() was re-accounted after the patch (a full invalidation
  // dropped warm stages, so resident bytes moved).
  EXPECT_NE(stats.registry.warm_bytes_resident, 0u);
  EXPECT_LE(stats.registry.warm_bytes_resident,
            stats.registry.warm_bytes_high_water);
  (void)warm_bytes_before;  // informational; lazily-built stages may shift

  // Cold-entry path: updating an unwarmed registered graph patches the
  // graph directly; an unknown id reports kUnknownGraph.
  const GraphId cold_id = server.register_graph(test_graph(6));
  ServeRequest cold_update;
  cold_update.graph = cold_id;
  cold_update.updates = {EdgeUpdate::reweight(2, 5)};
  EXPECT_EQ(server.serve(cold_update).outcome, ServeOutcome::kOk);
  EXPECT_EQ(server.registry().graph(cold_id)->edge(2).w, 5u);
  ServeRequest unknown;
  unknown.graph = 999;
  unknown.updates = {EdgeUpdate::reweight(0, 2)};
  EXPECT_EQ(server.serve(unknown).outcome, ServeOutcome::kUnknownGraph);

  // An invalid batch fails loudly and leaves the graph unchanged.
  ServeRequest bad;
  bad.graph = cold_id;
  bad.updates = {EdgeUpdate::insert(3, 3, 1)};
  const ServeResponse rb = server.serve(bad);
  EXPECT_EQ(rb.outcome, ServeOutcome::kFailed);
  EXPECT_FALSE(rb.error.empty());
  EXPECT_EQ(server.registry().graph(cold_id)->edge(2).w, 5u);
}

TEST(Serve, EvictRewarmPreservesBitIdenticality) {
  // Three answers for the same query: never-evicted warm, evicted +
  // rewarmed, and a fresh cold session — all must match exactly.
  Server server{manual_options()};
  const GraphId id = server.register_graph(test_graph(5));
  ServeRequest req;
  req.graph = id;
  req.query = gk_query(7);

  const ServeResponse warm_first = server.serve(req);
  const ServeResponse never_evicted = server.serve(req);
  ASSERT_EQ(never_evicted.outcome, ServeOutcome::kOk);
  EXPECT_TRUE(never_evicted.warm_hit);

  ASSERT_TRUE(server.registry().evict(id));
  const ServeResponse rewarmed = server.serve(req);
  ASSERT_EQ(rewarmed.outcome, ServeOutcome::kOk);
  EXPECT_FALSE(rewarmed.warm_hit);  // the rewarm rebuilds on a miss

  const Graph g = test_graph(5);
  Session cold{g};
  const MinCutReport fresh = cold.solve(req.query);
  expect_report_identical(warm_first.report, fresh, "first warm vs cold");
  expect_report_identical(never_evicted.report, fresh,
                          "never-evicted vs cold");
  expect_report_identical(rewarmed.report, fresh, "evict+rewarm vs cold");

  const RegistryStats rs = server.stats().registry;
  EXPECT_EQ(rs.evictions, 1u);
  EXPECT_EQ(rs.rewarms, 1u);  // the post-eviction miss counts as a rewarm
}

TEST(Serve, CoalescesContiguousSameGraphRuns) {
  Server server{manual_options()};
  const GraphId a = server.register_graph(test_graph(11));
  const GraphId b = server.register_graph(test_graph(12));

  // a a a b b a — three runs: [a a a] [b b] [a].
  std::vector<ServeRequest> reqs;
  for (const GraphId gid : {a, a, a, b, b, a}) {
    ServeRequest req;
    req.graph = gid;
    req.query = gk_query(reqs.size() + 1);
    reqs.push_back(req);
  }
  const std::vector<ServeResponse> responses = server.serve_many(reqs);
  ASSERT_EQ(responses.size(), reqs.size());
  for (const ServeResponse& r : responses)
    EXPECT_EQ(r.outcome, ServeOutcome::kOk);

  const DispatchStats ds = server.stats().dispatch;
  EXPECT_EQ(ds.coalesced_runs, 3u);
  EXPECT_EQ(ds.coalesced_queries, 5u);  // the two multi-request runs

  // Coalesced dispatch must not perturb answers: each response matches a
  // fresh cold session for its own graph.
  const Graph ga = test_graph(11), gb = test_graph(12);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    Session cold{reqs[i].graph == a ? ga : gb};
    expect_report_identical(responses[i].report, cold.solve(reqs[i].query),
                            "coalesced request " + std::to_string(i));
  }
}

TEST(Serve, UnknownGraphResolvesImmediately) {
  Server server{manual_options()};
  ServeRequest req;
  req.graph = 999;
  req.query = gk_query(1);
  const ServeResponse r = server.serve(req);
  EXPECT_EQ(r.outcome, ServeOutcome::kUnknownGraph);
  EXPECT_EQ(server.stats().dispatch.unknown_graph, 1u);
}

TEST(Serve, ReleasedGraphResolvesQueuedRequestsAsUnknown) {
  Server server{manual_options()};
  const GraphId id = server.register_graph(test_graph(2));
  ServeRequest req;
  req.graph = id;
  req.query = gk_query(1);
  std::future<ServeResponse> fut = server.submit(req);
  ASSERT_TRUE(server.release_graph(id));
  EXPECT_EQ(server.drain_queued(), 1u);
  EXPECT_EQ(fut.get().outcome, ServeOutcome::kUnknownGraph);
}

TEST(Serve, ExpiredDeadlineReportsDeadlineExpiredNotAStaleAnswer) {
  Server server{manual_options()};
  const GraphId id = server.register_graph(test_graph(2));
  ServeRequest req;
  req.graph = id;
  req.query = gk_query(1);
  req.deadline_s = 1e-9;  // expires before any drain can run
  std::future<ServeResponse> fut = server.submit(req);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(server.drain_queued(), 1u);
  EXPECT_EQ(fut.get().outcome, ServeOutcome::kDeadlineExpired);
  EXPECT_EQ(server.stats().dispatch.deadline_expired, 1u);
}

TEST(Serve, RoundBudgetCancellationIsPerRequestNotPerBatch) {
  // One impossibly tight budget inside a healthy batch: the budgeted
  // request reports kCancelled, its neighbours still answer (solve_each's
  // per-request capture, not solve_many's first-error rethrow).
  Server server{manual_options()};
  const GraphId id = server.register_graph(test_graph(4));
  std::vector<ServeRequest> reqs(3);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].graph = id;
    reqs[i].query = gk_query(i + 1);
  }
  reqs[1].query.round_budget = 1;
  const std::vector<ServeResponse> responses = server.serve_many(reqs);
  EXPECT_EQ(responses[0].outcome, ServeOutcome::kOk);
  EXPECT_EQ(responses[1].outcome, ServeOutcome::kCancelled);
  EXPECT_EQ(responses[2].outcome, ServeOutcome::kOk);
  EXPECT_EQ(server.stats().dispatch.cancelled, 1u);
}

// -------------------------------------------------------------- admission

TEST(ServeAdmission, RejectsPastDepthWatermarkAndIsDeterministic) {
  // A seeded arrival trace in manual mode: bursts of submissions between
  // drains.  Replaying the identical trace must reject the identical
  // request indices — admission is a pure occupancy automaton.
  const auto run_trace = [](std::uint64_t seed) -> std::vector<std::size_t> {
    ServeOptions opt = manual_options();
    opt.max_queue_depth = 4;
    Server server{opt};
    const GraphId id = server.register_graph(test_graph(1, /*n=*/24));

    Prng prng{seed};
    std::vector<std::size_t> rejected;
    std::vector<std::future<ServeResponse>> futures;
    for (std::size_t i = 0; i < 40; ++i) {
      ServeRequest req;
      req.graph = id;
      req.query = gk_query(i + 1);
      std::future<ServeResponse> fut = server.submit(req);
      // A rejected future is resolved immediately.
      if (fut.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        const ServeResponse r = fut.get();
        EXPECT_EQ(r.outcome, ServeOutcome::kOverloaded);
        rejected.push_back(i);
      } else {
        futures.push_back(std::move(fut));
      }
      if (prng.next_bool(0.25)) (void)server.drain_queued();
    }
    (void)server.drain_queued();
    for (auto& f : futures)
      EXPECT_EQ(f.get().outcome, ServeOutcome::kOk);
    const AdmissionStats as = server.stats().admission;
    EXPECT_EQ(as.submitted, 40u);
    EXPECT_EQ(as.rejected_depth, rejected.size());
    EXPECT_EQ(as.rejected_bytes, 0u);
    EXPECT_LE(as.queue_depth_high_water, 4u);
    return rejected;
  };

  const std::vector<std::size_t> first = run_trace(17);
  EXPECT_FALSE(first.empty()) << "trace never hit the watermark";
  EXPECT_EQ(first, run_trace(17)) << "same trace, different rejections";
  EXPECT_NE(first, run_trace(18)) << "different trace should differ";
}

TEST(ServeAdmission, BytesWatermarkRejectsIndependently) {
  AdmissionController ctrl{{/*max_queue_depth=*/0, /*max_queue_bytes=*/100}};
  EXPECT_EQ(ctrl.offer(60), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctrl.offer(60), AdmissionController::Decision::kRejectBytes);
  ctrl.release(60);
  EXPECT_EQ(ctrl.offer(60), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctrl.stats().rejected_bytes, 1u);
}

// --------------------------------------------------------------- registry

TEST(ServeRegistry, LruEvictsColdestFirstUnderByteBudget) {
  GraphRegistry::Options opt;
  opt.warm_byte_budget = 1;  // every second acquire must evict
  GraphRegistry registry{opt};
  const GraphId a = registry.add(test_graph(1, 24));
  const GraphId b = registry.add(test_graph(2, 24));

  bool hit = false;
  auto lease_a = registry.acquire(a, &hit);
  ASSERT_NE(lease_a, nullptr);
  EXPECT_FALSE(hit);
  // Touch b: over budget, a is the LRU tail, b was just touched → evict a.
  auto lease_b = registry.acquire(b, &hit);
  ASSERT_NE(lease_b, nullptr);
  EXPECT_FALSE(hit);

  const RegistryStats after_b = registry.stats();
  EXPECT_EQ(after_b.evictions, 1u);

  // Re-acquiring a is a miss that counts as a rewarm; b gets evicted.
  auto lease_a2 = registry.acquire(a, &hit);
  EXPECT_FALSE(hit);
  const RegistryStats after_a2 = registry.stats();
  EXPECT_EQ(after_a2.rewarms, 1u);
  EXPECT_EQ(after_a2.evictions, 2u);

  // The leases still work after eviction (eviction drops the registry's
  // reference, not the caller's).
  EXPECT_NO_THROW((void)lease_b->pool.solve_many(
      std::vector<MinCutRequest>{gk_query(1)}));
}

TEST(ServeRegistry, ByteAccountingIsCoherent) {
  GraphRegistry registry{GraphRegistry::Options{}};
  const GraphId a = registry.add(test_graph(1, 24));
  const GraphId b = registry.add(test_graph(2, 48));

  EXPECT_EQ(registry.stats().warm_bytes_resident, 0u);
  auto lease_a = registry.acquire(a);
  const std::size_t with_a = registry.stats().warm_bytes_resident;
  EXPECT_EQ(with_a, lease_a->pool.memory_bytes());

  auto lease_b = registry.acquire(b);
  const std::size_t with_both = registry.stats().warm_bytes_resident;
  EXPECT_EQ(with_both, with_a + lease_b->pool.memory_bytes());
  EXPECT_GE(registry.stats().warm_bytes_high_water, with_both);

  // Warm stages build lazily inside solves; update_bytes re-reads.
  (void)lease_b->pool.solve_many(std::vector<MinCutRequest>{gk_query(1)});
  registry.update_bytes(b);
  const std::size_t after_solve = registry.stats().warm_bytes_resident;
  EXPECT_EQ(after_solve, with_a + lease_b->pool.memory_bytes());
  EXPECT_GT(after_solve, with_both) << "lazy warm stages should add bytes";

  ASSERT_TRUE(registry.evict(b));
  EXPECT_EQ(registry.stats().warm_bytes_resident, with_a);
  ASSERT_TRUE(registry.evict(a));
  EXPECT_EQ(registry.stats().warm_bytes_resident, 0u);
  EXPECT_GE(registry.stats().warm_bytes_high_water, after_solve);
}

TEST(ServeRegistry, RejectsFaultedSessionOptions) {
  GraphRegistry::Options opt;
  FaultPlan plan;
  plan.drop_rate = 0.5;
  opt.session.fault_plan = plan;
  EXPECT_THROW(GraphRegistry{opt}, PreconditionError);
}

// ------------------------------------------------------- fault-plan bypass

TEST(ServeFaults, FaultPlanRoutesAroundWarmRegistry) {
  Server server{manual_options()};
  const GraphId id = server.register_graph(test_graph(9));

  // Warm the entry, then serve a crash-plan request: it must not touch
  // the warm cache (no hit, no pollution) and must count loudly.
  ServeRequest plain;
  plain.graph = id;
  plain.query = gk_query(1);
  const ServeResponse before = server.serve(plain);
  ASSERT_EQ(before.outcome, ServeOutcome::kOk);

  ServeRequest faulted = plain;
  FaultPlan plan;
  plan.seed = 5;
  plan.crash_schedule.push_back({/*node=*/3, /*r0=*/2, /*r1=*/4});
  faulted.fault_plan = plan;
  const RegistryStats rs_before = server.stats().registry;
  const ServeResponse f = server.serve(faulted);
  EXPECT_TRUE(f.cold_bypass);
  EXPECT_FALSE(f.warm_hit);
  // gk declares kReliableOnly, so the injected crash is rejected loudly —
  // the bypass still routed the request onto a private cold session.
  EXPECT_EQ(f.outcome, ServeOutcome::kFailed);

  const RegistryStats rs_after = server.stats().registry;
  EXPECT_EQ(rs_after.fault_bypasses, 1u);
  EXPECT_EQ(rs_after.hits, rs_before.hits) << "bypass touched the cache";
  EXPECT_EQ(rs_after.misses, rs_before.misses);

  // The warm entry is unpolluted: the plain query still answers
  // identically to a fresh cold session.
  const ServeResponse after = server.serve(plain);
  ASSERT_EQ(after.outcome, ServeOutcome::kOk);
  EXPECT_TRUE(after.warm_hit);
  const Graph g = test_graph(9);
  Session cold{g};
  expect_report_identical(after.report, cold.solve(plain.query),
                          "post-bypass warm vs fresh cold");

  // An inactive (default) plan is not a fault request at all.
  ServeRequest inactive = plain;
  inactive.fault_plan = FaultPlan{};
  const ServeResponse i = server.serve(inactive);
  EXPECT_FALSE(i.cold_bypass);
  EXPECT_EQ(server.stats().registry.fault_bypasses, 1u);
}

// ------------------------------------------------------------ session pool

TEST(ServePool, DrainClosesThePool) {
  const Graph g = test_graph(1);
  SessionPool pool{g, 2};
  const std::vector<MinCutRequest> batch{gk_query(1), gk_query(2)};
  EXPECT_NO_THROW((void)pool.solve_many(batch));
  pool.drain();
  pool.drain();  // idempotent
  EXPECT_THROW((void)pool.solve_many(batch), PreconditionError);
  EXPECT_THROW((void)pool.solve_each(batch), PreconditionError);
}

TEST(ServePool, SolveEachCapturesPerRequestFailures) {
  const Graph g = test_graph(1);
  SessionPool pool{g, 2};
  std::vector<MinCutRequest> batch{gk_query(1), gk_query(2), gk_query(3)};
  batch[1].round_budget = 1;
  const std::vector<SessionPool::SolveOutcome> outcomes =
      pool.solve_each(batch);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].error, nullptr);
  ASSERT_NE(outcomes[1].error, nullptr);
  EXPECT_THROW(std::rethrow_exception(outcomes[1].error), CancelledError);
  EXPECT_EQ(outcomes[2].error, nullptr);

  // The captured neighbours match a fresh cold session.
  Session cold{g};
  expect_report_identical(outcomes[0].report, cold.solve(batch[0]),
                          "outcome 0");
  expect_report_identical(outcomes[2].report, cold.solve(batch[2]),
                          "outcome 2");
}

// ------------------------------------------------------------- concurrency
// The TSan targets: CI runs this suite under -fsanitize=thread next to
// test_faults.  Keep the workloads small — the value is the interleaving.

TEST(ServeConcurrent, RegisterQueryEvictRace) {
  ServeOptions opt;  // real dispatcher thread
  opt.warm_byte_budget = 1;  // every acquire evicts — maximum churn
  Server server{opt};
  constexpr std::size_t kGraphs = 3;
  std::vector<GraphId> ids;
  ids.reserve(kGraphs);
  for (std::size_t i = 0; i < kGraphs; ++i)
    ids.push_back(server.register_graph(test_graph(i + 1, /*n=*/24)));

  std::atomic<bool> stop{false};
  std::thread evictor{[&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      (void)server.registry().evict(ids[i++ % kGraphs]);
  }};
  std::thread registrar{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const GraphId extra = server.register_graph(test_graph(99, /*n=*/24));
      (void)server.release_graph(extra);
    }
  }};

  std::vector<std::thread> clients;
  std::atomic<std::size_t> served{0};
  for (std::size_t c = 0; c < 2; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t q = 0; q < 12; ++q) {
        ServeRequest req;
        req.graph = ids[(c + q) % kGraphs];
        req.query = gk_query(q + 1);
        const ServeResponse r = server.serve(req);
        EXPECT_EQ(r.outcome, ServeOutcome::kOk);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  evictor.join();
  registrar.join();
  EXPECT_EQ(served.load(), 24u);

  // Under maximum eviction churn every answer still matches fresh cold.
  ServeRequest probe;
  probe.graph = ids[0];
  probe.query = gk_query(1);
  const ServeResponse r = server.serve(probe);
  ASSERT_EQ(r.outcome, ServeOutcome::kOk);
  const Graph g = test_graph(1, /*n=*/24);
  Session cold{g};
  expect_report_identical(r.report, cold.solve(probe.query),
                          "post-race probe");
}

TEST(ServeConcurrent, PoolDrainWaitsForInflightSolves) {
  const Graph g = test_graph(2);
  auto pool = std::make_unique<SessionPool>(g, 2);
  SessionPool* raw = pool.get();
  std::vector<MinCutRequest> batch(6, gk_query(1));
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i].seed = i + 1;

  std::thread solver{[raw, &batch] {
    try {
      const auto outcomes = raw->solve_each(batch);
      for (const auto& o : outcomes) EXPECT_EQ(o.error, nullptr);
    } catch (const PreconditionError&) {
      // The destructor's drain won the race to the gate and closed the
      // pool before this thread entered — the other legal outcome.
    }
  }};
  // Destruction (which drains) must serialize after the in-flight batch —
  // exactly the registry-eviction teardown path.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pool.reset();
  solver.join();
}

// --------------------------------------------------------------- workload

TEST(ServeWorkload, SynthesisIsDeterministicAndRoundTrips) {
  SynthOptions opt;
  opt.num_graphs = 3;
  opt.num_requests = 25;
  opt.mean_interarrival_s = 0.004;
  opt.seed = 42;
  const Workload a = synth_workload(opt);
  const Workload b = synth_workload(opt);
  ASSERT_EQ(a.requests.size(), 25u);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].graph, b.requests[i].graph);
    EXPECT_EQ(a.requests[i].seed, b.requests[i].seed);
    EXPECT_EQ(a.requests[i].at_s, b.requests[i].at_s);
  }

  const Workload parsed = parse_workload(write_workload(a));
  ASSERT_EQ(parsed.graphs.size(), a.graphs.size());
  ASSERT_EQ(parsed.requests.size(), a.requests.size());
  for (std::size_t i = 0; i < a.graphs.size(); ++i) {
    EXPECT_EQ(parsed.graphs[i].family, a.graphs[i].family);
    EXPECT_EQ(parsed.graphs[i].seed, a.graphs[i].seed);
  }
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(parsed.requests[i].graph, a.requests[i].graph);
    EXPECT_EQ(parsed.requests[i].algo, a.requests[i].algo);
    EXPECT_EQ(parsed.requests[i].seed, a.requests[i].seed);
  }

  // Zipf skew: the most popular graph must dominate.
  std::vector<std::size_t> counts(opt.num_graphs, 0);
  for (const WorkloadRequest& r : a.requests) ++counts[r.graph];
  EXPECT_GT(counts[0], counts[opt.num_graphs - 1]);
}

TEST(ServeWorkload, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_workload("frob 1 2 3\n"), PreconditionError);
  EXPECT_THROW((void)parse_workload("graph erdos_renyi 32\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_workload("req 0 0 gk 1 0.2 0\n"),
               PreconditionError)
      << "request referencing a graph that was never declared";
  EXPECT_THROW(
      (void)parse_workload("graph no_such_family 32 1 1 1\n"),
      PreconditionError);
}

}  // namespace
}  // namespace dmc
