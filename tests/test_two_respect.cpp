// 2-respect machinery (the Karger-2000 extension): identity checks against
// brute-forced subtree combinations, exactness of the sampled algorithm.
#include <gtest/gtest.h>

#include "central/karger2000.h"
#include "central/stoer_wagner.h"
#include "central/two_respect_dp.h"
#include "graph/cut.h"
#include "graph/generators.h"
#include "graph/mst.h"

namespace dmc {
namespace {

/// Brute force the minimum 1/2-respecting cut by enumerating subtree
/// combinations explicitly.
Weight brute_two_respect(const Graph& g, const RootedTree& t) {
  Weight best = static_cast<Weight>(-1);
  const std::size_t n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (v == t.root()) continue;
    best = std::min(best, cut_value(g, subtree_side(t, v)));
    for (NodeId w = 0; w < n; ++w) {
      if (w == t.root() || w == v) continue;
      std::vector<bool> side(n, false);
      if (t.is_ancestor(w, v)) {
        for (NodeId u = 0; u < n; ++u)
          side[u] = t.is_ancestor(w, u) && !t.is_ancestor(v, u);
      } else if (!t.is_ancestor(v, w)) {
        for (NodeId u = 0; u < n; ++u)
          side[u] = t.is_ancestor(v, u) || t.is_ancestor(w, u);
      } else {
        continue;
      }
      if (is_nontrivial(side)) best = std::min(best, cut_value(g, side));
    }
  }
  return best;
}

TEST(TwoRespect, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = make_erdos_renyi(18, 0.3, seed, 1, 9);
    const RootedTree t = RootedTree::from_edges(g, kruskal(g), 0);
    const TwoRespectResult r = two_respect_min_cut(g, t);
    EXPECT_EQ(r.value, brute_two_respect(g, t)) << "seed " << seed;
    EXPECT_EQ(cut_value(g, r.side), r.value);
  }
}

TEST(TwoRespect, AtMostOneRespectValue) {
  // 2-respect can only improve on 1-respect.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_erdos_renyi(24, 0.25, seed, 1, 6);
    const RootedTree t = RootedTree::from_edges(g, kruskal(g), 0);
    const TwoRespectResult two = two_respect_min_cut(g, t);
    Weight one = static_cast<Weight>(-1);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      if (v != t.root())
        one = std::min(one, cut_value(g, subtree_side(t, v)));
    EXPECT_LE(two.value, one);
  }
}

TEST(TwoRespect, CycleNeedsTwoTreeEdges) {
  // On a cycle, the tree is a path and every min cut uses exactly two
  // cycle edges: 1-respect can only see cuts containing the removed edge,
  // so 2-respect must strictly win on the right instance.
  const Graph g = with_random_weights(make_cycle(12), 7, 2, 50);
  const RootedTree t = RootedTree::from_edges(g, kruskal(g), 0);
  const TwoRespectResult r = two_respect_min_cut(g, t);
  EXPECT_EQ(r.value, stoer_wagner_min_cut(g).value);
  EXPECT_NE(r.w, kNoNode) << "the witness must use two tree edges";
}

TEST(TwoRespect, FindsLambdaOnFirstTreeOfCycle) {
  // Unlike 1-respect (which may need the packing to rotate), the very
  // first spanning tree of a cycle already 2-respects the minimum cut.
  const Graph g = with_random_weights(make_cycle(24), 3, 1, 30);
  const RootedTree t = RootedTree::from_edges(g, kruskal(g), 0);
  EXPECT_EQ(two_respect_min_cut(g, t).value,
            stoer_wagner_min_cut(g).value);
}

TEST(Karger2000, ExactAcrossFamilies) {
  const Graph graphs[] = {
      make_cycle(20),
      make_barbell(24, 3, 1, 5),
      make_planted_cut(28, 0.7, 4, 1, 9),
      make_hypercube(4),
      make_erdos_renyi(30, 0.25, 2, 1, 8),
  };
  for (const Graph& g : graphs) {
    const Karger2000Result r = karger2000_min_cut(g, 42);
    EXPECT_EQ(r.cut.value, stoer_wagner_min_cut(g).value);
    EXPECT_EQ(cut_value(g, r.cut.side), r.cut.value);
  }
}

TEST(Karger2000, SamplesOnHeavyGraphs) {
  const Graph g = make_complete(24, 64);  // λ = 23·64
  const Karger2000Result r = karger2000_min_cut(g, 7);
  EXPECT_LT(r.p, 1.0);
  EXPECT_EQ(r.cut.value, stoer_wagner_min_cut(g).value);
}

TEST(Karger2000, LogarithmicTreeCount) {
  const Graph g = make_barbell(32, 2, 5, 3);
  const Karger2000Result r = karger2000_min_cut(g, 9);
  EXPECT_LE(r.trees_packed, 64u);
  EXPECT_EQ(r.cut.value, stoer_wagner_min_cut(g).value);
}

}  // namespace
}  // namespace dmc
