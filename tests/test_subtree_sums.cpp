// Step 3's generic aggregation (x ↦ x↓) verified against the RootedTree
// oracle for arbitrary per-node values, plus ρ (Step 5) per-node equality.
#include <gtest/gtest.h>

#include "central/one_respect_dp.h"
#include "congest/primitives/leader_bfs.h"
#include "core/ancestors.h"
#include "core/lca_rho.h"
#include "core/merging_nodes.h"
#include "core/subtree_sums.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "graph/generators.h"
#include "util/prng.h"

namespace dmc {
namespace {

struct Pipeline {
  Network net;
  Schedule sched;
  TreeView bfs;
  NodeId leader{kNoNode};
  DistMstResult mst;
  FragmentStructure fs;

  explicit Pipeline(const Graph& g, std::size_t freeze = 0)
      : net(g), sched(net) {
    LeaderBfsProtocol lb{g};
    sched.run_uncharged(lb);
    bfs = lb.tree_view(g);
    leader = lb.leader();
    sched.set_barrier_height(bfs.height(g));
    sched.charge_barrier();
    mst = ghs_mst(sched, bfs, weight_keys(g), freeze);
    fs = build_fragment_structure(sched, bfs, leader, mst);
  }

  [[nodiscard]] RootedTree rooted(const Graph& g) const {
    std::vector<EdgeId> tree;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (mst.tree_edge[e]) tree.push_back(e);
    return RootedTree::from_edges(g, tree, leader);
  }
};

TEST(SubtreeSums, ArbitraryValuesMatchOracle) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_erdos_renyi(32, 0.2, seed, 1, 7);
    Pipeline p{g};
    const AncestorData ad = compute_ancestors(p.sched, p.fs);
    Prng rng{seed + 50};
    std::vector<std::uint64_t> value(g.num_nodes());
    for (auto& x : value) x = rng.next_below(1000);
    const auto got = subtree_sums(p.sched, p.bfs, p.fs, ad, value);
    const auto want = p.rooted(g).subtree_sum(value);
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(got[v], want[v]) << "node " << v << " seed " << seed;
  }
}

TEST(SubtreeSums, ZeroAndUnitValues) {
  const Graph g = make_torus(5, 5);
  Pipeline p{g};
  const AncestorData ad = compute_ancestors(p.sched, p.fs);
  const auto zeros =
      subtree_sums(p.sched, p.bfs, p.fs, ad,
                   std::vector<std::uint64_t>(g.num_nodes(), 0));
  for (const auto x : zeros) EXPECT_EQ(x, 0u);
  const auto ones =
      subtree_sums(p.sched, p.bfs, p.fs, ad,
                   std::vector<std::uint64_t>(g.num_nodes(), 1));
  const RootedTree t = p.rooted(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(ones[v], t.subtree_size(v)) << "node " << v;
  // Root sees everything.
  EXPECT_EQ(ones[p.leader], g.num_nodes());
}

TEST(SubtreeSums, TinyFragmentsStillExact) {
  const Graph g = make_erdos_renyi(30, 0.25, 7, 1, 4);
  Pipeline p{g, /*freeze=*/2};
  const AncestorData ad = compute_ancestors(p.sched, p.fs);
  std::vector<std::uint64_t> value(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) value[v] = v * v + 1;
  const auto got = subtree_sums(p.sched, p.bfs, p.fs, ad, value);
  const auto want = p.rooted(g).subtree_sum(value);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(got[v], want[v]);
}

TEST(Rho, PerNodeMatchesOracleAcrossFamilies) {
  const Graph graphs[] = {
      make_erdos_renyi(28, 0.25, 3, 1, 9),
      make_grid(5, 5),
      make_cycle(17),
      make_barbell(20, 2, 3, 5),
      make_random_tree(24, 2, 1, 6),
  };
  for (const Graph& g : graphs) {
    Pipeline p{g};
    const AncestorData ad = compute_ancestors(p.sched, p.fs);
    const TfPrime tfp = compute_merging_nodes(p.sched, p.bfs, p.fs, ad);
    std::vector<Weight> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).w;
    const auto rho = compute_rho(p.sched, p.bfs, p.fs, ad, tfp, w);
    const OneRespectValues oracle = one_respect_dp(g, p.rooted(g));
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(rho[v], oracle.rho[v]) << "node " << v;
    // Conservation: every edge's weight lands in exactly one ρ.
    Weight total = 0;
    for (const auto r : rho) total += r;
    EXPECT_EQ(total, g.total_weight());
  }
}

TEST(Rho, ZeroWeightsGiveZeroRho) {
  // The Su-style bridge test feeds 0/1 evaluation weights: all-zero must
  // propagate cleanly through the keyed pipelines.
  const Graph g = make_erdos_renyi(24, 0.3, 1);
  Pipeline p{g};
  const AncestorData ad = compute_ancestors(p.sched, p.fs);
  const TfPrime tfp = compute_merging_nodes(p.sched, p.bfs, p.fs, ad);
  const auto rho = compute_rho(p.sched, p.bfs, p.fs, ad, tfp,
                               std::vector<Weight>(g.num_edges(), 0));
  for (const auto r : rho) EXPECT_EQ(r, 0u);
}

TEST(Rho, IndicatorWeightsCountEdgesByLca) {
  // Unit weights on a known instance: ρ(v) counts edges whose LCA is v.
  const Graph g = make_complete(10);
  Pipeline p{g};
  const AncestorData ad = compute_ancestors(p.sched, p.fs);
  const TfPrime tfp = compute_merging_nodes(p.sched, p.bfs, p.fs, ad);
  std::vector<Weight> unit(g.num_edges(), 1);
  const auto rho = compute_rho(p.sched, p.bfs, p.fs, ad, tfp, unit);
  const RootedTree t = p.rooted(g);
  std::vector<Weight> want(g.num_nodes(), 0);
  for (const Edge& e : g.edges()) ++want[t.lca(e.u, e.v)];
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(rho[v], want[v]);
}

}  // namespace
}  // namespace dmc
