// Unit tests for the Graph container and io.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/io.h"

namespace dmc {
namespace {

TEST(Graph, EmptyAndBasics) {
  Graph g{3};
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_EQ(e, 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).w, 5u);
  EXPECT_EQ(g.edge(e).other(0), 1u);
  EXPECT_EQ(g.edge(e).other(1), 0u);
  g.validate();
}

TEST(Graph, PortsMirrorEdges) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(0, 3, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  const auto ports = g.ports(0);
  EXPECT_EQ(ports[0].peer, 1u);
  EXPECT_EQ(ports[1].peer, 2u);
  EXPECT_EQ(ports[2].peer, 3u);
  g.validate();
}

TEST(Graph, WeightedDegreeAndTotals) {
  Graph g{3};
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 20);
  g.add_edge(0, 2, 30);
  EXPECT_EQ(g.weighted_degree(0), 40u);
  EXPECT_EQ(g.weighted_degree(1), 30u);
  EXPECT_EQ(g.weighted_degree(2), 50u);
  EXPECT_EQ(g.total_weight(), 60u);
  EXPECT_EQ(g.min_weighted_degree(), 30u);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g{2};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.weighted_degree(0), 3u);
  g.validate();
}

TEST(Graph, RejectsSelfLoopsAndBadWeights) {
  Graph g{2};
  EXPECT_THROW(g.add_edge(0, 0, 1), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, 0), InvariantError);
  EXPECT_THROW(g.add_edge(0, 5, 1), PreconditionError);
}

TEST(Graph, RejectsOverflowingWeightsLoudly) {
  // Regression: weights above kMaxWeight used to be representable in the
  // Weight type and would silently overflow 64-bit cut sums downstream;
  // they must fail loudly at insertion instead.
  Graph g{2};
  EXPECT_THROW(g.add_edge(0, 1, kMaxWeight + 1), InvariantError);
  EXPECT_THROW(g.add_edge(0, 1, ~Weight{0}), InvariantError);
  EXPECT_THROW(g.add_edge(0, 1, 0), InvariantError);
  // The boundary itself is legal, and nothing was half-inserted by the
  // rejected calls.
  g.add_edge(0, 1, kMaxWeight);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weighted_degree(0), kMaxWeight);
  g.validate();
}

TEST(Graph, UnweightedCopy) {
  Graph g{3};
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 9);
  const Graph u = g.unweighted_copy();
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_EQ(u.edge(0).w, 1u);
  EXPECT_EQ(u.edge(1).w, 1u);
}

TEST(Graph, EdgeSubgraph) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  std::vector<bool> keep{true, false, true};
  std::vector<EdgeId> back;
  const Graph h = g.edge_subgraph(keep, &back);
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.num_nodes(), 4u);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], 0u);
  EXPECT_EQ(back[1], 2u);
  EXPECT_EQ(h.edge(1).w, 3u);
}

TEST(GraphIo, RoundTrip) {
  Graph g{5};
  g.add_edge(0, 1, 3);
  g.add_edge(2, 4, 1);
  g.add_edge(1, 3, 7);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.num_nodes(), 5u);
  ASSERT_EQ(h.num_edges(), 3u);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_EQ(h.edge(e).w, g.edge(e).w);
  }
}

TEST(GraphIo, RejectsBadHeader) {
  // Malformed content is an InvariantError (the bytes violate the
  // format's invariants); see tests/test_graph_io.cpp for the full set.
  std::stringstream ss{"not-a-graph 1\n2 0\n"};
  EXPECT_THROW(read_graph(ss), InvariantError);
}

TEST(GraphIo, DotContainsCutMarkup) {
  Graph g{2};
  g.add_edge(0, 1, 4);
  std::vector<bool> side{true, false};
  std::ostringstream os;
  write_dot(os, g, &side);
  const std::string s = os.str();
  EXPECT_NE(s.find("fillcolor"), std::string::npos);
  EXPECT_NE(s.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace dmc
