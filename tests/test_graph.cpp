// Unit tests for the Graph container and io.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"
#include "graph/io.h"

namespace dmc {
namespace {

TEST(Graph, EmptyAndBasics) {
  Graph g{3};
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  const EdgeId e = g.add_edge(0, 1, 5);
  EXPECT_EQ(e, 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(e).w, 5u);
  EXPECT_EQ(g.edge(e).other(0), 1u);
  EXPECT_EQ(g.edge(e).other(1), 0u);
  g.validate();
}

TEST(Graph, PortsMirrorEdges) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 2);
  g.add_edge(0, 3, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  const auto ports = g.ports(0);
  EXPECT_EQ(ports[0].peer, 1u);
  EXPECT_EQ(ports[1].peer, 2u);
  EXPECT_EQ(ports[2].peer, 3u);
  g.validate();
}

TEST(Graph, WeightedDegreeAndTotals) {
  Graph g{3};
  g.add_edge(0, 1, 10);
  g.add_edge(1, 2, 20);
  g.add_edge(0, 2, 30);
  EXPECT_EQ(g.weighted_degree(0), 40u);
  EXPECT_EQ(g.weighted_degree(1), 30u);
  EXPECT_EQ(g.weighted_degree(2), 50u);
  EXPECT_EQ(g.total_weight(), 60u);
  EXPECT_EQ(g.min_weighted_degree(), 30u);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g{2};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.weighted_degree(0), 3u);
  g.validate();
}

TEST(Graph, RejectsSelfLoopsAndBadWeights) {
  Graph g{2};
  EXPECT_THROW(g.add_edge(0, 0, 1), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 1, 0), InvariantError);
  EXPECT_THROW(g.add_edge(0, 5, 1), PreconditionError);
}

TEST(Graph, RejectsOverflowingWeightsLoudly) {
  // Regression: weights above kMaxWeight used to be representable in the
  // Weight type and would silently overflow 64-bit cut sums downstream;
  // they must fail loudly at insertion instead.
  Graph g{2};
  EXPECT_THROW(g.add_edge(0, 1, kMaxWeight + 1), InvariantError);
  EXPECT_THROW(g.add_edge(0, 1, ~Weight{0}), InvariantError);
  EXPECT_THROW(g.add_edge(0, 1, 0), InvariantError);
  // The boundary itself is legal, and nothing was half-inserted by the
  // rejected calls.
  g.add_edge(0, 1, kMaxWeight);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weighted_degree(0), kMaxWeight);
  g.validate();
}

TEST(Graph, UnweightedCopy) {
  Graph g{3};
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 9);
  const Graph u = g.unweighted_copy();
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_EQ(u.edge(0).w, 1u);
  EXPECT_EQ(u.edge(1).w, 1u);
}

TEST(Graph, EdgeSubgraph) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  std::vector<bool> keep{true, false, true};
  std::vector<EdgeId> back;
  const Graph h = g.edge_subgraph(keep, &back);
  EXPECT_EQ(h.num_edges(), 2u);
  EXPECT_EQ(h.num_nodes(), 4u);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], 0u);
  EXPECT_EQ(back[1], 2u);
  EXPECT_EQ(h.edge(1).w, 3u);
}

// ---------------------------------------------------------------------
// Batched updates (Graph::apply_updates): validation contract, batch
// atomicity, and in-place CSR patching vs a from-scratch rebuild.
// ---------------------------------------------------------------------

/// A fixture graph whose CSR is finalized before the batch lands, so the
/// in-place patch paths (not just dirty-rebuild) are what's exercised.
Graph finalized_triangle_plus() {
  Graph g{5};
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(2, 0, 4);
  g.add_edge(2, 3, 5);
  g.add_edge(3, 4, 6);
  (void)g.port_offset(0);  // finalize
  return g;
}

/// Ports of `g` as (node → sorted neighbor/edge pairs) for comparison.
std::vector<std::vector<std::pair<NodeId, EdgeId>>> port_table(
    const Graph& g) {
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> t(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (const Port& p : g.ports(v)) t[v].emplace_back(p.peer, p.edge);
  return t;
}

TEST(GraphUpdates, RejectsInvalidUpdatesWithInvariantError) {
  Graph g = finalized_triangle_plus();
  using V = std::vector<EdgeUpdate>;
  // Same contract as add_edge: self-loops, w == 0, w > kMaxWeight,
  // out-of-range endpoints — all InvariantError, nothing applied.
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::insert(1, 1, 1)}),
               InvariantError);
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::insert(0, 1, 0)}),
               InvariantError);
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::insert(0, 1, kMaxWeight + 1)}),
               InvariantError);
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::insert(0, 9, 1)}),
               InvariantError);
  // Bad edge ids: out of range, delete-twice, reweight-after-delete.
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::remove(99)}), InvariantError);
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::reweight(99, 2)}),
               InvariantError);
  EXPECT_THROW(
      g.apply_updates(V{EdgeUpdate::remove(0), EdgeUpdate::remove(0)}),
      InvariantError);
  EXPECT_THROW(
      g.apply_updates(V{EdgeUpdate::remove(0), EdgeUpdate::reweight(0, 2)}),
      InvariantError);
  EXPECT_THROW(g.apply_updates(V{EdgeUpdate::reweight(0, 0)}),
               InvariantError);
  EXPECT_EQ(g.num_edges(), 5u);
  g.validate();
}

TEST(GraphUpdates, InvalidTailMeansNothingApplies) {
  Graph g = finalized_triangle_plus();
  const Weight w0 = g.edge(0).w;
  std::vector<EdgeUpdate> batch{EdgeUpdate::reweight(0, 9),
                                EdgeUpdate::insert(0, 2, 7),
                                EdgeUpdate::insert(3, 3, 1)};  // invalid
  EXPECT_THROW(g.apply_updates(batch), InvariantError);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.edge(0).w, w0);
  g.validate();
}

TEST(GraphUpdates, BatchIdsCoverBatchInserts) {
  // Ids m0, m0+1, … name the batch's own inserts, in batch order, and
  // are deletable/reweightable later in the SAME batch.
  Graph g = finalized_triangle_plus();
  std::vector<EdgeUpdate> batch{
      EdgeUpdate::insert(0, 3, 1),     // id 5
      EdgeUpdate::insert(1, 4, 1),     // id 6
      EdgeUpdate::reweight(5, 8),      // the first insert
      EdgeUpdate::remove(6),           // the second insert
  };
  const UpdateSummary s = g.apply_updates(batch);
  EXPECT_EQ(s.inserted, 2u);
  EXPECT_EQ(s.deleted, 1u);
  EXPECT_EQ(s.reweighted, 1u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.edge(5).w, 8u);
  g.validate();
}

TEST(GraphUpdates, PatchedCsrMatchesRebuiltGraph) {
  // Inserts into a finalized CSR patch flat_ports_ in place; deletes
  // compact with order-preserving renumbering.  Either way the port
  // table must equal a graph REBUILT from the updated edge list.
  const std::vector<std::vector<EdgeUpdate>> batches{
      {EdgeUpdate::insert(4, 0, 2), EdgeUpdate::insert(1, 3, 3)},
      {EdgeUpdate::remove(1), EdgeUpdate::reweight(0, 7)},
      {EdgeUpdate::insert(2, 4, 1), EdgeUpdate::remove(3)},
  };
  Graph g = finalized_triangle_plus();
  for (const auto& batch : batches) {
    const UpdateSummary s = g.apply_updates(batch);
    EXPECT_EQ(s.edges_after, g.num_edges());
    g.validate();
    Graph rebuilt{g.num_nodes()};
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const Edge& ed = g.edge(e);
      (void)rebuilt.add_edge(ed.u, ed.v, ed.w);
    }
    EXPECT_EQ(port_table(g), port_table(rebuilt));
    EXPECT_EQ(g.total_weight(), rebuilt.total_weight());
  }
}

TEST(GraphUpdates, SummaryCountsAndDamage) {
  Graph g = finalized_triangle_plus();
  std::vector<EdgeUpdate> batch{EdgeUpdate::reweight(0, 9),
                                EdgeUpdate::reweight(1, 9)};
  const UpdateSummary s = g.apply_updates(batch);
  EXPECT_EQ(s.edges_before, 5u);
  EXPECT_EQ(s.edges_after, 5u);
  EXPECT_EQ(s.touched_edges, 2u);
  EXPECT_FALSE(s.topology_changed());
  EXPECT_DOUBLE_EQ(s.damage(), 2.0 / 5.0);
  std::vector<EdgeUpdate> ins{EdgeUpdate::insert(0, 4, 1)};
  EXPECT_TRUE(g.apply_updates(ins).topology_changed());
}

TEST(GraphIo, RoundTrip) {
  Graph g{5};
  g.add_edge(0, 1, 3);
  g.add_edge(2, 4, 1);
  g.add_edge(1, 3, 7);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.num_nodes(), 5u);
  ASSERT_EQ(h.num_edges(), 3u);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_EQ(h.edge(e).w, g.edge(e).w);
  }
}

TEST(GraphIo, RejectsBadHeader) {
  // Malformed content is an InvariantError (the bytes violate the
  // format's invariants); see tests/test_graph_io.cpp for the full set.
  std::stringstream ss{"not-a-graph 1\n2 0\n"};
  EXPECT_THROW(read_graph(ss), InvariantError);
}

TEST(GraphIo, DotContainsCutMarkup) {
  Graph g{2};
  g.add_edge(0, 1, 4);
  std::vector<bool> side{true, false};
  std::ostringstream os;
  write_dot(os, g, &side);
  const std::string s = os.str();
  EXPECT_NE(s.find("fillcolor"), std::string::npos);
  EXPECT_NE(s.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace dmc
