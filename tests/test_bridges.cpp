// Distributed bridge finding (the Õ(√n+D) corollary of Theorem 2.1) vs
// the edge-removal oracle.
#include <gtest/gtest.h>

#include "core/bridges.h"
#include "graph/generators.h"

namespace dmc {
namespace {

void expect_bridges(const Graph& g) {
  const BridgesResult got = distributed_bridges(g);
  const std::vector<bool> want = bridges_oracle(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(got.is_bridge[e], want[e]) << "edge " << e;
  EXPECT_EQ(got.stats.max_messages_edge_round, 1u);
}

TEST(Bridges, TreeIsAllBridges) {
  const Graph g = make_random_tree(30, 3, 1, 5);
  const BridgesResult r = distributed_bridges(g);
  EXPECT_EQ(r.count, g.num_edges());
}

TEST(Bridges, CycleHasNone) {
  const BridgesResult r = distributed_bridges(make_cycle(15));
  EXPECT_EQ(r.count, 0u);
}

TEST(Bridges, PathOfCliquesChainsAreBridges) {
  const Graph g = make_path_of_cliques(5, 5);
  const BridgesResult r = distributed_bridges(g);
  EXPECT_EQ(r.count, 4u);  // exactly the chain edges
  expect_bridges(g);
}

TEST(Bridges, BarbellSingleBridge) {
  const Graph g = make_barbell(16, 1, 1, 7);
  expect_bridges(g);
  EXPECT_EQ(distributed_bridges(g).count, 1u);
}

TEST(Bridges, TwoBridgeBarbellHasNone) {
  // Two parallel cross edges: neither is a bridge.
  const Graph g = make_barbell(16, 2, 1, 7);
  EXPECT_EQ(distributed_bridges(g).count, 0u);
}

TEST(Bridges, RandomSweep) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    // Sparse random graphs have a mix of bridges and cycles.
    expect_bridges(make_random_connected(28, 32, seed));
  }
}

TEST(Bridges, LollipopMix) {
  // Clique with a pendant path: all path edges are bridges.
  Graph g{12};
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = i + 1; j < 8; ++j) g.add_edge(i, j, 1);
  g.add_edge(7, 8, 1);
  g.add_edge(8, 9, 1);
  g.add_edge(9, 10, 1);
  g.add_edge(10, 11, 1);
  const BridgesResult r = distributed_bridges(g);
  EXPECT_EQ(r.count, 4u);
  expect_bridges(g);
}

}  // namespace
}  // namespace dmc
