// RootedTree toolkit tests: Euler tours, LCA, subtree machinery.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/tree.h"
#include "util/prng.h"

namespace dmc {
namespace {

RootedTree sample_tree() {
  //        0
  //       / .
  //      1   2
  //     / .    .
  //    3   4    5
  std::vector<NodeId> parent{kNoNode, 0, 0, 1, 1, 2};
  std::vector<EdgeId> pe(6, kNoEdge);
  return RootedTree{parent, pe, 0};
}

TEST(RootedTree, DepthsAndChildren) {
  const RootedTree t = sample_tree();
  EXPECT_EQ(t.depth(0), 0u);
  EXPECT_EQ(t.depth(1), 1u);
  EXPECT_EQ(t.depth(3), 2u);
  EXPECT_EQ(t.height(), 2u);
  EXPECT_EQ(t.children(0).size(), 2u);
  EXPECT_EQ(t.children(1).size(), 2u);
  EXPECT_EQ(t.children(3).size(), 0u);
}

TEST(RootedTree, AncestorRelation) {
  const RootedTree t = sample_tree();
  EXPECT_TRUE(t.is_ancestor(0, 5));
  EXPECT_TRUE(t.is_ancestor(1, 4));
  EXPECT_TRUE(t.is_ancestor(2, 2));
  EXPECT_FALSE(t.is_ancestor(1, 5));
  EXPECT_FALSE(t.is_ancestor(3, 1));
}

TEST(RootedTree, Lca) {
  const RootedTree t = sample_tree();
  EXPECT_EQ(t.lca(3, 4), 1u);
  EXPECT_EQ(t.lca(3, 5), 0u);
  EXPECT_EQ(t.lca(4, 4), 4u);
  EXPECT_EQ(t.lca(1, 3), 1u);
  EXPECT_EQ(t.lca(2, 5), 2u);
}

TEST(RootedTree, SubtreeSizeAndNodes) {
  const RootedTree t = sample_tree();
  EXPECT_EQ(t.subtree_size(0), 6u);
  EXPECT_EQ(t.subtree_size(1), 3u);
  EXPECT_EQ(t.subtree_size(2), 2u);
  EXPECT_EQ(t.subtree_size(5), 1u);
  const auto nodes = t.subtree_nodes(1);
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(RootedTree, SubtreeSum) {
  const RootedTree t = sample_tree();
  std::vector<std::uint64_t> val{1, 10, 100, 1000, 10000, 100000};
  const auto sums = t.subtree_sum(val);
  EXPECT_EQ(sums[3], 1000u);
  EXPECT_EQ(sums[1], 11010u);
  EXPECT_EQ(sums[2], 100100u);
  EXPECT_EQ(sums[0], 111111u);
}

TEST(RootedTree, BottomUpOrderIsPostorder) {
  const RootedTree t = sample_tree();
  const auto& order = t.bottom_up_order();
  std::vector<bool> seen(6, false);
  for (const NodeId v : order) {
    for (const NodeId c : t.children(v)) EXPECT_TRUE(seen[c]);
    seen[v] = true;
  }
  EXPECT_EQ(order.size(), 6u);
}

TEST(RootedTree, FromEdgesMatchesStructure) {
  Graph g{4};
  const EdgeId e01 = g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);  // non-tree
  const EdgeId e12 = g.add_edge(1, 2, 1);
  const EdgeId e23 = g.add_edge(2, 3, 1);
  const RootedTree t = RootedTree::from_edges(g, {e01, e12, e23}, 0);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 1u);
  EXPECT_EQ(t.parent(3), 2u);
  EXPECT_EQ(t.parent_edge(3), e23);
  EXPECT_EQ(t.height(), 3u);
}

TEST(RootedTree, FromEdgesRejectsNonSpanning) {
  Graph g{4};
  const EdgeId a = g.add_edge(0, 1, 1);
  const EdgeId b = g.add_edge(2, 3, 1);
  g.add_edge(1, 2, 1);
  EXPECT_THROW(RootedTree::from_edges(g, {a, b}, 0), PreconditionError);
}

TEST(RootedTree, LcaMatchesNaiveOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_random_tree(60, seed);
    std::vector<EdgeId> ids(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) ids[e] = e;
    const RootedTree t = RootedTree::from_edges(g, ids, 0);
    Prng rng{seed + 100};
    for (int q = 0; q < 200; ++q) {
      const NodeId a = static_cast<NodeId>(rng.next_below(60));
      const NodeId b = static_cast<NodeId>(rng.next_below(60));
      // Naive LCA by walking up.
      NodeId x = a, y = b;
      while (t.depth(x) > t.depth(y)) x = t.parent(x);
      while (t.depth(y) > t.depth(x)) y = t.parent(y);
      while (x != y) {
        x = t.parent(x);
        y = t.parent(y);
      }
      EXPECT_EQ(t.lca(a, b), x);
    }
  }
}

TEST(EdgeKey, RationalOrder) {
  // load/w: 1/2 < 2/3 < 1/1; ties broken by id.
  const EdgeKey a{1, 2, 0};
  const EdgeKey b{2, 3, 1};
  const EdgeKey c{1, 1, 2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  const EdgeKey d{2, 4, 5};  // same ratio as a, larger id
  EXPECT_TRUE(a < d);
  EXPECT_FALSE(d < a);
}

TEST(EdgeKey, ZeroLoadsTieById) {
  const EdgeKey a{0, 7, 3};
  const EdgeKey b{0, 2, 4};
  EXPECT_TRUE(a < b);  // both ratios 0 → id order
}

}  // namespace
}  // namespace dmc
