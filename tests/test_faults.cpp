// The fault-injection layer (congest/faults.h) and its flagship consumer,
// the self-stabilizing leader election (congest/primitives/stable_leader.h).
//
// The determinism contract under test: a FaultPlan's decisions are
// counter-hashed per (round, slot/node), never drawn from a stateful RNG
// consumed in execution order — so the exact same faults fire under every
// engine, thread count, and scheduling mode, and a faulted run is
// bit-identical across {sequential, sharded(1,2,8)} × {Dense, EventDriven}
// and replayable from the one (plan, seed) coordinate.
//
// The robustness contract: a protocol that did not declare tolerance for a
// fault kind fails LOUDLY (InvariantError naming the protocol and the
// first injected fault) — it never runs a round on a perturbed inbox it
// cannot absorb, and never returns a silently wrong answer.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "check/check.h"
#include "congest/network.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/primitives/pairwise_exchange.h"
#include "congest/primitives/stable_leader.h"
#include "core/session.h"
#include "graph/generators.h"
#include "util/prng.h"

namespace dmc {
namespace {

constexpr unsigned kEngines[] = {0u, 1u, 2u, 8u};  // 0 = sequential

std::unique_ptr<Engine> make_test_engine(unsigned cfg) {
  return cfg == 0 ? make_sequential_engine() : make_sharded_engine(cfg);
}

std::string engine_label(unsigned cfg) {
  return cfg == 0 ? "sequential" : "sharded(" + std::to_string(cfg) + ")";
}

/// A mixed plan exercising all four fault kinds at once.
FaultPlan mixed_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_rate = 0.15;
  plan.dup_rate = 0.15;
  plan.reorder_within_round = 0.5;
  plan.crash_schedule = {CrashWindow{3, 4, 7}};
  return plan;
}

struct RunOutput {
  std::string obs;
  CongestStats stats;
};

/// One faulted stable-leader run under the given engine/scheduling cell.
RunOutput run_stable_leader(const Graph& g, const FaultPlan& plan,
                            unsigned engine_cfg,
                            std::optional<Scheduling> forced) {
  Network net{g, make_test_engine(engine_cfg)};
  net.force_scheduling(forced);
  net.set_fault_plan(plan);
  StableLeaderProtocol sl{g};
  net.run(sl);
  std::ostringstream os;
  os << "leader=" << sl.leader() << ";agreed=" << sl.agreed() << ';';
  for (NodeId v = 0; v < g.num_nodes(); ++v) os << sl.hop(v) << ',';
  const TreeView tv = sl.tree_view(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    os << (tv.is_root(v) ? -1 : static_cast<int>(tv.parent_port(v))) << ';';
  return RunOutput{os.str(), net.stats()};
}

// ---------------------------------------------------------------------
// Determinism: bit-identity across engines, threads, scheduling modes.
// ---------------------------------------------------------------------

TEST(FaultDeterminism, BitIdenticalAcrossEnginesAndScheduling) {
  const Graph graphs[] = {
      make_path(17),
      make_torus(4, 5),
      make_random_regular(24, 3, /*seed=*/9),
  };
  const FaultPlan plan = mixed_plan(/*seed=*/42);
  for (const Graph& g : graphs) {
    const RunOutput dense_seq =
        run_stable_leader(g, plan, 0, Scheduling::kDense);
    const RunOutput event_seq =
        run_stable_leader(g, plan, 0, Scheduling::kEventDriven);

    // Across scheduling modes: identical observables, identical stats
    // modulo node_steps — including every injected-fault counter.
    EXPECT_EQ(event_seq.obs, dense_seq.obs);
    EXPECT_TRUE(event_seq.stats.without_node_steps() ==
                dense_seq.stats.without_node_steps())
        << "stats (mod node_steps) diverged across scheduling modes";
    EXPECT_TRUE(event_seq.stats.faults == dense_seq.stats.faults)
        << "fault counters must not depend on the scheduling mode";

    // Within a mode: every engine × thread count bit-identical to the
    // mode's sequential run, node_steps included.
    for (const Scheduling mode :
         {Scheduling::kDense, Scheduling::kEventDriven}) {
      const RunOutput& baseline =
          mode == Scheduling::kDense ? dense_seq : event_seq;
      for (const unsigned cfg : kEngines) {
        if (cfg == 0) continue;
        const RunOutput r = run_stable_leader(g, plan, cfg, mode);
        EXPECT_EQ(r.obs, baseline.obs) << engine_label(cfg);
        EXPECT_TRUE(r.stats == baseline.stats)
            << engine_label(cfg) << ": faulted stats diverged from the "
            << "mode's sequential run";
      }
    }
  }
}

TEST(FaultDeterminism, SamePlanReplaysBitIdentically) {
  const Graph g = make_random_regular(20, 4, /*seed=*/5);
  const FaultPlan plan = mixed_plan(/*seed=*/7);
  const RunOutput a = run_stable_leader(g, plan, 2, std::nullopt);
  const RunOutput b = run_stable_leader(g, plan, 2, std::nullopt);
  EXPECT_EQ(a.obs, b.obs);
  EXPECT_TRUE(a.stats == b.stats);
}

TEST(FaultDeterminism, DistinctSeedsPerturbDifferently) {
  const Graph g = make_torus(4, 4);
  FaultPlan a = mixed_plan(1), b = mixed_plan(2);
  a.crash_schedule.clear();
  b.crash_schedule.clear();
  const RunOutput ra = run_stable_leader(g, a, 0, std::nullopt);
  const RunOutput rb = run_stable_leader(g, b, 0, std::nullopt);
  // Same rates, different seed: the coin pattern must actually move (the
  // hash is seed-sensitive, not rate-bucketed).
  EXPECT_FALSE(ra.stats.faults == rb.stats.faults)
      << "two seeds produced the exact same fault pattern";
}

TEST(FaultDeterminism, InactivePlanIsExactlyNoPlan) {
  const Graph g = make_planted_cut(24, 0.5, 3, 1, 13);
  const auto run_leader_bfs = [&](bool with_inactive_plan) {
    Network net{g};
    if (with_inactive_plan) net.set_fault_plan(FaultPlan{});  // all zero
    LeaderBfsProtocol lb{g};
    net.run(lb);
    std::ostringstream os;
    os << lb.leader() << ';';
    for (NodeId v = 0; v < g.num_nodes(); ++v) os << lb.depth(v) << ',';
    return RunOutput{os.str(), net.stats()};
  };
  const RunOutput none = run_leader_bfs(false);
  const RunOutput inactive = run_leader_bfs(true);
  EXPECT_EQ(inactive.obs, none.obs);
  EXPECT_TRUE(inactive.stats == none.stats)
      << "an inactive plan must be bit-identical to no plan at all";
  EXPECT_FALSE(none.stats.faults.any());
}

// ---------------------------------------------------------------------
// Self-stabilizing leader election.
// ---------------------------------------------------------------------

/// Runs stable_leader on a reliable network and checks full agreement on
/// the lexicographic minimum (node 0) with exact BFS hop counts.
void expect_reliable_convergence(const Graph& g) {
  Network net{g};
  StableLeaderProtocol sl{g};
  net.run(sl);
  EXPECT_TRUE(sl.agreed());
  EXPECT_EQ(sl.leader(), NodeId{0});
  LeaderBfsProtocol lb{g, /*root=*/0};
  Network ref{g};
  ref.run(lb);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(sl.hop(v), lb.depth(v)) << "node " << v;
  const TreeView tv = sl.tree_view(g);
  EXPECT_TRUE(tv.is_root(0));
}

TEST(StableLeader, ConvergesOnReliableNetwork) {
  expect_reliable_convergence(make_path(17));
  expect_reliable_convergence(make_torus(4, 5));
  expect_reliable_convergence(make_random_regular(24, 3, /*seed=*/3));
}

/// Crash-restarts `victim` over [r0, r1) and checks the protocol reaches
/// full agreement again without any global reset, within r1 + c·D rounds.
void expect_crash_recovery(const Graph& g, NodeId victim,
                           std::uint64_t diameter) {
  const std::uint64_t r0 = 3, r1 = 6;
  FaultPlan plan;
  plan.seed = 1;
  plan.crash_schedule = {CrashWindow{victim, r0, r1}};
  Network net{g};
  net.set_fault_plan(plan);
  StableLeaderProtocol sl{g};
  const std::uint64_t rounds = net.run(sl);
  EXPECT_TRUE(sl.agreed()) << "victim=" << victim;
  EXPECT_EQ(sl.leader(), NodeId{0});
  EXPECT_EQ(net.stats().faults.crashes, 1u);
  EXPECT_EQ(net.stats().faults.restarts, 1u);
  // Convergence bound: the restarted region is re-taught in O(D) plus the
  // rebroadcast window; generous constants, but still O(D).
  EXPECT_LE(rounds, r1 + 2 * diameter + 16)
      << "crash recovery exceeded the O(D) re-stabilization bound";

  // The stabilization metrics fold into FaultStats on request.
  CongestStats st = net.stats();
  record_stabilization(st);
  EXPECT_EQ(st.faults.stabilization_rounds, st.per_protocol.back().rounds);
  EXPECT_EQ(st.faults.stabilization_messages,
            st.per_protocol.back().messages);
}

TEST(StableLeader, RecoversFromCrashRestartWithoutReset) {
  expect_crash_recovery(make_path(17), /*victim=*/8, /*diameter=*/16);
  expect_crash_recovery(make_torus(4, 5), /*victim=*/7, /*diameter=*/4);
  expect_crash_recovery(make_random_regular(24, 3, /*seed=*/11),
                        /*victim=*/5, /*diameter=*/8);
}

TEST(StableLeader, RecoversWhenTheLeaderItselfRestarts) {
  // Node 0 IS the converged leader; wiping it resets its claim to (0, 0),
  // which is still the lexicographic minimum — neighbours re-learn it and
  // 0's own fresh announcements overwrite any stale cache entries.
  expect_crash_recovery(make_torus(4, 4), /*victim=*/0, /*diameter=*/4);
}

TEST(StableLeader, PermanentNonLeaderCrashStillQuiesces) {
  // r1 == kNoRestart: nobody is pending, so the run must terminate with
  // the crashed node counted as done — not hang until the deadlock guard.
  const Graph g = make_torus(4, 4);
  FaultPlan plan;
  plan.crash_schedule = {
      CrashWindow{15, 3, CrashWindow::kNoRestart}};
  Network net{g};
  net.set_fault_plan(plan);
  StableLeaderProtocol sl{g};
  net.run(sl, /*max_rounds=*/512);
  EXPECT_EQ(net.stats().faults.crashes, 1u);
  EXPECT_EQ(net.stats().faults.restarts, 0u);
  EXPECT_EQ(sl.leader(), NodeId{0});
}

TEST(StableLeader, SurvivesTheFullMixedPlan) {
  // All four kinds at once; the protocol declares kFaultTolerant, so the
  // run must complete and agree — and faults must actually have fired.
  const Graph g = make_random_regular(24, 4, /*seed=*/17);
  const RunOutput r = run_stable_leader(g, mixed_plan(3), 0, std::nullopt);
  EXPECT_NE(r.obs.find("agreed=1"), std::string::npos);
  EXPECT_TRUE(r.stats.faults.any());
  EXPECT_GT(r.stats.faults.drops, 0u);
  EXPECT_GT(r.stats.faults.dups, 0u);
  EXPECT_GT(r.stats.faults.reordered_inboxes, 0u);
  EXPECT_EQ(r.stats.faults.crashes, 1u);
  EXPECT_EQ(r.stats.faults.restarts, 1u);
}

// ---------------------------------------------------------------------
// Loud rejection: undeclared fault kinds must never corrupt a protocol.
// ---------------------------------------------------------------------

/// Runs `body` expecting the named-fault rejection; returns the message.
template <typename Body>
std::string expect_fault_rejection(Body&& body) {
  try {
    body();
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does not tolerate injected faults"),
              std::string::npos)
        << msg;
    return msg;
  }
  ADD_FAILURE() << "expected the named-fault InvariantError";
  return {};
}

TEST(FaultRejection, DupIntolerantProtocolRejectsBeforeCorruption) {
  // pairwise_exchange sizes its receive buffers exactly; a duplicated
  // delivery must produce the named rejection, NOT an out-of-bounds
  // assert from inside the protocol.
  const Graph g = make_planted_cut(16, 0.5, 2, 1, 29);
  FaultPlan plan;
  plan.dup_rate = 1.0;
  const std::string msg = expect_fault_rejection([&] {
    Network net{g};
    net.set_fault_plan(plan);
    const std::size_t n = g.num_nodes();
    std::vector<std::vector<std::vector<Word>>> outgoing(n);
    for (NodeId v = 0; v < n; ++v) {
      outgoing[v].resize(g.degree(v));
      for (std::uint32_t p = 0; p < g.degree(v); ++p)
        outgoing[v][p].push_back(Word{v} * 100 + p);
    }
    PairwiseExchangeProtocol px{g, std::move(outgoing)};
    net.run(px);
  });
  EXPECT_NE(msg.find("pairwise_exchange"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dup("), std::string::npos) << msg;
}

TEST(FaultRejection, DropIntolerantProtocolRejectsByName) {
  const Graph g = make_torus(4, 4);
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_rate = 1.0;
  const std::string msg = expect_fault_rejection([&] {
    Network net{g};
    net.set_fault_plan(plan);
    LeaderBfsProtocol lb{g};
    net.run(lb);
  });
  EXPECT_NE(msg.find("leader_bfs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("drop("), std::string::npos) << msg;
  EXPECT_NE(msg.find("FaultPlan("), std::string::npos)
      << "the rejection must carry the plan for replay: " << msg;
}

TEST(FaultRejection, CrashRejectedAtEntryByIntolerantProtocol) {
  const Graph g = make_torus(4, 4);
  FaultPlan plan;
  plan.crash_schedule = {CrashWindow{1, 2, 4}};
  const std::string msg = expect_fault_rejection([&] {
    Network net{g};
    net.set_fault_plan(plan);
    LeaderBfsProtocol lb{g};
    net.run(lb);
  });
  EXPECT_NE(msg.find("leader_bfs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("crash(round=2, node=1)"), std::string::npos) << msg;
}

TEST(FaultRejection, ToleratedKindsDoNotTripTheRejection) {
  // leader_bfs declares reorder + dup tolerance; a plan exercising only
  // those kinds must run to completion with the reliable-network answer.
  const Graph g = make_planted_cut(24, 0.5, 3, 1, 31);
  FaultPlan plan;
  plan.seed = 3;
  plan.dup_rate = 0.3;
  plan.reorder_within_round = 1.0;
  Network net{g};
  net.set_fault_plan(plan);
  LeaderBfsProtocol lb{g};
  net.run(lb);
  Network ref{g};
  LeaderBfsProtocol ref_lb{g};
  ref.run(ref_lb);
  EXPECT_EQ(lb.leader(), ref_lb.leader());
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(lb.depth(v), ref_lb.depth(v));
  EXPECT_GT(net.stats().faults.dups, 0u);
  EXPECT_GT(net.stats().faults.reordered_inboxes, 0u);
}

// ---------------------------------------------------------------------
// Plan validation.
// ---------------------------------------------------------------------

TEST(FaultPlanValidate, RejectsMalformedPlans) {
  const Graph g = make_path(8);
  Network net{g};
  FaultPlan p;
  p.drop_rate = 1.5;
  EXPECT_THROW(net.set_fault_plan(p), PreconditionError);
  p = FaultPlan{};
  p.crash_schedule = {CrashWindow{99, 2, 4}};  // node ≥ n
  EXPECT_THROW(net.set_fault_plan(p), PreconditionError);
  p = FaultPlan{};
  p.crash_schedule = {CrashWindow{1, 0, 4}};  // r0 < 1
  EXPECT_THROW(net.set_fault_plan(p), PreconditionError);
  p = FaultPlan{};
  p.crash_schedule = {CrashWindow{1, 2, 4},
                      CrashWindow{1, 5, 6}};  // two windows, one node
  EXPECT_THROW(net.set_fault_plan(p), PreconditionError);
}

// ---------------------------------------------------------------------
// The serving layer: sessions under a plan.
// ---------------------------------------------------------------------

TEST(FaultSession, ReorderPlanSolvesColdAndDeterministically) {
  const Graph g = make_planted_cut(20, 0.5, 3, 1, 7);
  SessionOptions opt;
  opt.fault_plan = FaultPlan{};
  opt.fault_plan->seed = 9;
  opt.fault_plan->reorder_within_round = 1.0;
  Session session{g, opt};
  MinCutRequest req;
  req.algo = Algo::kExact;
  // Every pipeline protocol tolerates reorder, so both queries complete;
  // the warm-infra cache is disabled under an active plan, so the second
  // solve re-runs the bootstrap cold — and must still be bit-identical.
  const MinCutReport a = session.solve(req);
  const MinCutReport b = session.solve(req);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.side, b.side);
  EXPECT_TRUE(a.stats == b.stats)
      << "faulted session queries must be bit-identical run to run";

  // And equal to a fresh session's answer (no hidden warm-path reuse).
  Session fresh{g, opt};
  const MinCutReport c = fresh.solve(req);
  EXPECT_EQ(c.value, a.value);
  EXPECT_TRUE(c.stats == a.stats);
}

TEST(FaultSession, DropPlanFailsLoudlyInsteadOfWrongLambda) {
  const Graph g = make_planted_cut(20, 0.5, 3, 1, 7);
  SessionOptions opt;
  opt.fault_plan = FaultPlan{};
  opt.fault_plan->drop_rate = 1.0;
  Session session{g, opt};
  MinCutRequest req;
  req.algo = Algo::kExact;
  expect_fault_rejection([&] { (void)session.solve(req); });
}

// ---------------------------------------------------------------------
// The enriched deadlock guard.
// ---------------------------------------------------------------------

TEST(FaultGuard, DeadlockDiagnosisNamesRoundPlanAndLastFault) {
  // A fault-tolerant protocol that never finishes: the guard must fire
  // with the round, the not-done count, and the active plan — the triage
  // trail for a fault-induced livelock.
  class NeverDone final : public Protocol {
   public:
    [[nodiscard]] std::string name() const override { return "never_done"; }
    void round(NodeId, Mailbox& mb) override {
      mb.send(0, Message::make(1, {1}));
    }
    [[nodiscard]] bool local_done(NodeId) const override { return false; }
    [[nodiscard]] unsigned fault_tolerance() const override {
      return kFaultTolerant;
    }
  };
  const Graph g = make_path(4);
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.5;
  Network net{g};
  net.set_fault_plan(plan);
  NeverDone p;
  try {
    net.run(p, /*max_rounds=*/8);
    FAIL() << "expected the deadlock guard";
  } catch (const InvariantError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("never_done"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exceeded 8 rounds"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 of 4 nodes not locally done"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("FaultPlan(seed=7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault"), std::string::npos) << msg;
  }
}

}  // namespace

// ---------------------------------------------------------------------
// The tier1_faults matrix, one gtest case per cell — same harness as
// tests/test_property_sweeps.cpp, plus the fault axis: reorder cells must
// pass the full differential contract, crash cells must reject loudly,
// drop/dupreorder cells must do one or the other (never a wrong λ).
// ---------------------------------------------------------------------

namespace check {
namespace {

const ScenarioRunner& faults_runner() {
  static const ScenarioRunner runner{ScenarioMatrix::tier1_faults()};
  return runner;
}

std::uint64_t seed_for(std::uint64_t scenario_id) {
  const Scenario s = ScenarioMatrix::tier1_faults().decode(scenario_id);
  std::uint64_t h = 0;
  for (const char c : s.family) h = h * 31 + static_cast<unsigned char>(c);
  return 1 + mix64(h ^ (s.n * 131)) % 1021;
}

class Tier1FaultsCell : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Tier1FaultsCell, PassesOrRejectsLoudly) {
  const std::uint64_t id = GetParam();
  const CellReport cell = faults_runner().run_cell(id, seed_for(id));
  ASSERT_TRUE(cell.ok()) << cell.failure;
  if (cell.scenario.faults == FaultProfile::kCrash) {
    EXPECT_TRUE(cell.rejected)
        << cell.scenario.name()
        << ": a crash plan must reject, never produce an answer";
  }
}

std::string cell_name(const ::testing::TestParamInfo<std::uint64_t>& info) {
  return ScenarioMatrix::tier1_faults().decode(info.param).name();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Tier1FaultsCell,
    ::testing::Range<std::uint64_t>(0,
                                    ScenarioMatrix::tier1_faults().size()),
    cell_name);

}  // namespace
}  // namespace check
}  // namespace dmc
