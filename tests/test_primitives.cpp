// CONGEST primitive protocols: leader election + BFS, convergecast,
// aggregate-broadcast (all modes), downcast, pairwise exchange, barrier.
#include <gtest/gtest.h>

#include <map>

#include "congest/network.h"
#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/barrier.h"
#include "congest/primitives/convergecast.h"
#include "congest/primitives/downcast.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/primitives/pairwise_exchange.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace dmc {
namespace {

struct Bfs {
  Network net;
  LeaderBfsProtocol proto;
  TreeView tv;
  std::uint64_t rounds;

  explicit Bfs(const Graph& g) : net(g), proto(g), rounds(net.run(proto)) {
    tv = proto.tree_view(g);
  }
};

TEST(LeaderBfs, ElectsMinIdAndBuildsBfsTree) {
  const Graph g = make_erdos_renyi(40, 0.15, 3);
  Bfs b{g};
  EXPECT_EQ(b.proto.leader(), 0u);
  const BfsResult oracle = bfs(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(b.proto.depth(v), oracle.dist[v]) << "node " << v;
  b.tv.validate(g);
  EXPECT_EQ(b.tv.height(g), eccentricity(g, 0));
}

TEST(LeaderBfs, RoundsProportionalToDiameter) {
  const Graph g = make_path(30);
  Bfs b{g};
  // Flooding from node 0 takes D rounds + O(1) bookkeeping.
  EXPECT_LE(b.rounds, 35u);
  EXPECT_GE(b.rounds, 29u);
}

TEST(LeaderBfs, SingleNode) {
  const Graph g = make_path(1);
  Bfs b{g};
  EXPECT_EQ(b.proto.leader(), 0u);
  EXPECT_TRUE(b.tv.is_root(0));
}

TEST(Convergecast, SubtreeSumsOnBfsTree) {
  const Graph g = make_path(7);
  Bfs b{g};
  // value(v) = v; subtree of node v on a path rooted at 0 is {v..6}.
  std::vector<CValue> init(7);
  for (NodeId v = 0; v < 7; ++v) init[v] = CValue{v, 1};
  ConvergecastProtocol cc{g, b.tv, CombineOp::kSum, init, true};
  b.net.run(cc);
  for (NodeId v = 0; v < 7; ++v) {
    std::uint64_t expect = 0;
    for (NodeId u = v; u < 7; ++u) expect += u;
    EXPECT_EQ(cc.subtree_value(v).w0, expect);
    EXPECT_EQ(cc.subtree_value(v).w1, 7u - v);  // subtree sizes
    EXPECT_EQ(cc.tree_value(v).w0, 21u);        // broadcast total
  }
}

TEST(Convergecast, MinFindsGlobalArgmin) {
  const Graph g = make_erdos_renyi(30, 0.2, 5);
  Bfs b{g};
  std::vector<CValue> init(30);
  for (NodeId v = 0; v < 30; ++v)
    init[v] = CValue{(v * 7 + 3) % 31, v};  // some value, payload = id
  ConvergecastProtocol cc{g, b.tv, CombineOp::kMin, init, true};
  b.net.run(cc);
  CValue expect{~0ull, 0};
  for (NodeId v = 0; v < 30; ++v)
    expect = combine(CombineOp::kMin, expect, init[v]);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_EQ(cc.tree_value(v).w0, expect.w0);
    EXPECT_EQ(cc.tree_value(v).w1, expect.w1);
  }
}

TEST(Convergecast, RunsOnForest) {
  // Two disjoint stars inside one graph: make a forest view with 2 roots.
  Graph g{6};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(3, 5, 1);
  g.add_edge(2, 3, 1);  // inter-tree edge NOT in the forest
  std::vector<std::uint32_t> pp(6, kNoPort);
  // node 1,2 parent → 0; nodes 4,5 parent → 3.
  const auto port_to = [&](NodeId v, NodeId target) -> std::uint32_t {
    const auto ports = g.ports(v);
    for (std::uint32_t i = 0; i < ports.size(); ++i)
      if (ports[i].peer == target) return i;
    throw std::logic_error{"no port"};
  };
  pp[1] = port_to(1, 0);
  pp[2] = port_to(2, 0);
  pp[4] = port_to(4, 3);
  pp[5] = port_to(5, 3);
  const TreeView tv = TreeView::from_parent_ports(g, pp);
  Network net{g};
  std::vector<CValue> init(6, CValue{1, 0});
  ConvergecastProtocol cc{g, tv, CombineOp::kSum, init, true};
  net.run(cc);
  EXPECT_EQ(cc.tree_value(0).w0, 3u);
  EXPECT_EQ(cc.tree_value(3).w0, 3u);
  EXPECT_EQ(cc.tree_value(5).w0, 3u);  // broadcast within its own tree
}

TEST(AggregateBroadcast, SumCombinesAcrossNodes) {
  const Graph g = make_erdos_renyi(25, 0.2, 9);
  Bfs b{g};
  // Every node contributes (key = v % 4, value 1): four counters.
  std::vector<std::vector<AggItem>> contrib(25);
  for (NodeId v = 0; v < 25; ++v)
    contrib[v].push_back(AggItem{v % 4, {1, 0, 0}});
  AggregateBroadcastProtocol agg{
      g, b.tv, AggOptions{AggOp::kSum, /*deliver_all=*/true, false, false},
      std::move(contrib)};
  b.net.run(agg);
  for (NodeId v = 0; v < 25; ++v) {
    const auto& items = agg.items(v);
    ASSERT_EQ(items.size(), 4u) << "node " << v;
    std::uint64_t total = 0;
    for (const auto& it : items) total += it.p[0];
    EXPECT_EQ(total, 25u);
    // keys sorted
    for (std::size_t i = 1; i < items.size(); ++i)
      EXPECT_LT(items[i - 1].key, items[i].key);
  }
}

TEST(AggregateBroadcast, UniqueKeysDeliverEverywhere) {
  const Graph g = make_grid(4, 5);
  Bfs b{g};
  std::vector<std::vector<AggItem>> contrib(20);
  contrib[7].push_back(AggItem{70, {7, 0, 0}});
  contrib[13].push_back(AggItem{130, {13, 0, 0}});
  contrib[0].push_back(AggItem{5, {0, 0, 0}});
  AggregateBroadcastProtocol agg{
      g, b.tv, AggOptions{AggOp::kUnique, true, false, false},
      std::move(contrib)};
  b.net.run(agg);
  for (NodeId v = 0; v < 20; ++v) {
    ASSERT_EQ(agg.items(v).size(), 3u);
    EXPECT_EQ(agg.items(v)[0].key, 5u);
    EXPECT_EQ(agg.items(v)[1].key, 70u);
    EXPECT_EQ(agg.items(v)[2].key, 130u);
  }
}

TEST(AggregateBroadcast, MinSelectsSmallestPayload) {
  const Graph g = make_cycle(10);
  Bfs b{g};
  std::vector<std::vector<AggItem>> contrib(10);
  for (NodeId v = 0; v < 10; ++v)
    contrib[v].push_back(AggItem{1, {100 - v, v, 0}});
  AggregateBroadcastProtocol agg{
      g, b.tv, AggOptions{AggOp::kMin, true, false, false},
      std::move(contrib)};
  b.net.run(agg);
  ASSERT_EQ(agg.items(3).size(), 1u);
  EXPECT_EQ(agg.items(3)[0].p[0], 91u);  // node 9's payload
  EXPECT_EQ(agg.items(3)[0].p[1], 9u);
}

TEST(AggregateBroadcast, TapRecordsSubtreeItems) {
  const Graph g = make_path(5);  // rooted at 0: subtree of v = {v..4}
  Bfs b{g};
  std::vector<std::vector<AggItem>> contrib(5);
  for (NodeId v = 0; v < 5; ++v)
    contrib[v].push_back(AggItem{v, {1, 0, 0}});
  AggregateBroadcastProtocol agg{
      g, b.tv, AggOptions{AggOp::kSum, false, /*tap=*/true, false},
      std::move(contrib)};
  b.net.run(agg);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(agg.tapped(v).size(), 5u - v) << "node " << v;
    for (const auto& it : agg.tapped(v)) EXPECT_GE(it.key, v);
  }
}

TEST(AggregateBroadcast, AbsorbStopsAtKeyOwner) {
  const Graph g = make_path(6);  // 0-1-2-3-4-5 rooted at 0
  Bfs b{g};
  // Node 5 holds items keyed by each of its ancestors 1 and 3.
  std::vector<std::vector<AggItem>> contrib(6);
  contrib[5].push_back(AggItem{1, {10, 0, 0}});
  contrib[5].push_back(AggItem{3, {30, 0, 0}});
  contrib[4].push_back(AggItem{3, {5, 0, 0}});
  AggregateBroadcastProtocol agg{
      g, b.tv, AggOptions{AggOp::kSum, false, false, /*absorb=*/true},
      std::move(contrib)};
  b.net.run(agg);
  ASSERT_EQ(agg.absorbed(3).size(), 1u);
  EXPECT_EQ(agg.absorbed(3)[0].p[0], 35u);  // combined 30 + 5
  ASSERT_EQ(agg.absorbed(1).size(), 1u);
  EXPECT_EQ(agg.absorbed(1)[0].p[0], 10u);
  EXPECT_TRUE(agg.items(0).empty());  // nothing reaches the root
}

TEST(AggregateBroadcast, RoundsAreHeightPlusItems) {
  // k items through a path of length L should take ≈ L + k rounds, not L·k.
  const std::size_t n = 40, k = 30;
  const Graph g = make_path(n);
  Bfs b{g};
  std::vector<std::vector<AggItem>> contrib(n);
  for (std::uint64_t i = 0; i < k; ++i)
    contrib[n - 1].push_back(AggItem{i, {1, 0, 0}});
  AggregateBroadcastProtocol agg{
      g, b.tv, AggOptions{AggOp::kUnique, true, false, false},
      std::move(contrib)};
  const auto rounds = b.net.run(agg);
  EXPECT_LE(rounds, 2 * (n + k) + 16);
  EXPECT_GE(rounds, n + k - 2);  // information-theoretic lower bound
}

TEST(Downcast, DeliversAlongPath) {
  const Graph g = make_path(6);
  Bfs b{g};
  std::vector<std::vector<DownItem>> orig(6);
  orig[1].push_back(DownItem{{111, 0, 0, 0}});
  std::map<NodeId, std::vector<Word>> seen;
  PipelinedDowncastProtocol dc{
      g, b.tv, std::move(orig),
      [&](NodeId v, const DownItem& it) {
        seen[v].push_back(it.w[0]);
        return true;
      }};
  b.net.run(dc);
  // Every strict descendant of 1 (nodes 2..5) received it; 0 did not.
  EXPECT_EQ(seen.count(0), 0u);
  EXPECT_EQ(seen.count(1), 0u);  // originator does not self-deliver
  for (NodeId v = 2; v < 6; ++v) ASSERT_EQ(seen[v].size(), 1u);
}

TEST(Downcast, FilterStopsPropagation) {
  const Graph g = make_path(6);
  Bfs b{g};
  std::vector<std::vector<DownItem>> orig(6);
  orig[0].push_back(DownItem{{7, 0, 0, 0}});
  std::vector<int> hits(6, 0);
  PipelinedDowncastProtocol dc{
      g, b.tv, std::move(orig),
      [&](NodeId v, const DownItem&) {
        ++hits[v];
        return v < 3;  // stop at node 3
      }};
  b.net.run(dc);
  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 1);
  EXPECT_EQ(hits[3], 1);
  EXPECT_EQ(hits[4], 0);
  EXPECT_EQ(hits[5], 0);
}

TEST(Downcast, PipelinesManyItems) {
  const std::size_t n = 30;
  const Graph g = make_path(n);
  Bfs b{g};
  const std::size_t k = 25;
  std::vector<std::vector<DownItem>> orig(n);
  for (std::uint64_t i = 0; i < k; ++i)
    orig[0].push_back(DownItem{{i, 0, 0, 0}});
  std::vector<std::size_t> count(n, 0);
  PipelinedDowncastProtocol dc{g, b.tv, std::move(orig),
                               [&](NodeId v, const DownItem&) {
                                 ++count[v];
                                 return true;
                               }};
  const auto rounds = b.net.run(dc);
  for (NodeId v = 1; v < n; ++v) EXPECT_EQ(count[v], k);
  EXPECT_LE(rounds, n + k + 8);  // pipelined, not multiplicative
}

TEST(PairwiseExchange, SwapsLists) {
  Graph g{3};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  std::vector<std::vector<std::vector<Word>>> out(3);
  out[0] = {{10, 11, 12}};          // one port
  out[1] = {{20}, {21, 22}};        // two ports
  out[2] = {{}};                    // silent
  Network net{g};
  PairwiseExchangeProtocol px{g, std::move(out)};
  const auto rounds = net.run(px);
  EXPECT_EQ(px.received(1, 0).to_vector(), (std::vector<Word>{10, 11, 12}));
  EXPECT_EQ(px.received(0, 0).to_vector(), (std::vector<Word>{20}));
  EXPECT_EQ(px.received(2, 0).to_vector(), (std::vector<Word>{21, 22}));
  EXPECT_TRUE(px.received(1, 1).empty());
  EXPECT_LE(rounds, 3u + 2u);  // max list + end marker
}

TEST(Barrier, CostsTwoHeightPlusTwo) {
  const Graph g = make_path(9);
  Bfs b{g};
  BarrierProtocol bar{g, b.tv};
  const auto rounds = b.net.run(bar);
  const auto h = b.tv.height(g);
  EXPECT_LE(rounds, 2 * h + 2);
  EXPECT_GE(rounds, 2 * h);
  for (NodeId v = 0; v < 9; ++v) EXPECT_TRUE(bar.released(v));
}

TEST(Barrier, MatchesScheduleCharge) {
  // The Schedule charges 2h+3; the real barrier costs ≤ 2h+2 (+1 round of
  // children-notification convention) — the charge is an upper bound.
  const Graph g = make_grid(5, 5);
  Bfs b{g};
  BarrierProtocol bar{g, b.tv};
  const auto rounds = b.net.run(bar);
  EXPECT_LE(rounds, 2ull * b.tv.height(g) + 3);
}

}  // namespace
}  // namespace dmc
