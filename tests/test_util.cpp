// Unit tests for src/util: prng, dsu, bit_math, table, options.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/assert.h"
#include "util/bit_math.h"
#include "util/dsu.h"
#include "util/options.h"
#include "util/prng.h"
#include "util/table.h"

namespace dmc {
namespace {

TEST(BitMath, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(BitMath, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
}

TEST(BitMath, DivCeil) {
  EXPECT_EQ(div_ceil(0, 3), 0u);
  EXPECT_EQ(div_ceil(1, 3), 1u);
  EXPECT_EQ(div_ceil(3, 3), 1u);
  EXPECT_EQ(div_ceil(4, 3), 2u);
}

TEST(BitMath, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1000000), 1000u);
  EXPECT_EQ(isqrt_ceil(15), 4u);
  EXPECT_EQ(isqrt_ceil(16), 4u);
  EXPECT_EQ(isqrt_ceil(17), 5u);
}

TEST(BitMath, IsqrtExhaustiveSmall) {
  for (std::uint64_t x = 0; x < 5000; ++x) {
    const std::uint64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(Assert, ThrowsOnViolation) {
  EXPECT_THROW(DMC_ASSERT(1 == 2), InvariantError);
  EXPECT_THROW(DMC_REQUIRE(false), PreconditionError);
  EXPECT_NO_THROW(DMC_ASSERT(true));
}

TEST(Prng, Deterministic) {
  Prng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Prng, NextBelowInRange) {
  Prng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);  // all residues hit
}

TEST(Prng, NextInInclusive) {
  Prng rng{8};
  bool low = false, high = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.next_in(3, 6);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 6u);
    low |= (x == 3);
    high |= (x == 6);
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, BernoulliRate) {
  Prng rng{10};
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Prng, BinomialMean) {
  Prng rng{11};
  const std::uint64_t trials = 100;
  const double p = 0.2;
  double total = 0;
  const int reps = 3000;
  for (int i = 0; i < reps; ++i)
    total += static_cast<double>(rng.next_binomial(trials, p));
  EXPECT_NEAR(total / reps, 20.0, 0.8);
}

TEST(Prng, BinomialEdgeCases) {
  Prng rng{12};
  EXPECT_EQ(rng.next_binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.next_binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.next_binomial(10, 1.0), 10u);
  for (int i = 0; i < 100; ++i) EXPECT_LE(rng.next_binomial(5, 0.9), 5u);
}

TEST(Prng, ShufflePermutes) {
  Prng rng{13};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Prng, Mix64AvalanchesSomewhat) {
  // Flipping one input bit should flip many output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  EXPECT_GE(__builtin_popcountll(a ^ b), 10);
}

TEST(Dsu, BasicUnion) {
  Dsu d{5};
  EXPECT_EQ(d.components(), 5u);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.same(0, 1));
  EXPECT_FALSE(d.same(0, 2));
  EXPECT_EQ(d.components(), 4u);
  EXPECT_EQ(d.component_size(0), 2u);
}

TEST(Dsu, ChainCollapse) {
  Dsu d{100};
  for (std::size_t i = 0; i + 1 < 100; ++i) d.unite(i, i + 1);
  EXPECT_EQ(d.components(), 1u);
  EXPECT_EQ(d.component_size(50), 100u);
  EXPECT_TRUE(d.same(0, 99));
}

TEST(SparseDsu, ArbitraryKeys) {
  SparseDsu d;
  EXPECT_FALSE(d.same(1000000007ull, 42ull));
  EXPECT_TRUE(d.unite(1000000007ull, 42ull));
  EXPECT_FALSE(d.unite(42ull, 1000000007ull));
  EXPECT_TRUE(d.same(1000000007ull, 42ull));
  EXPECT_TRUE(d.unite(42ull, 7ull));
  EXPECT_TRUE(d.same(7ull, 1000000007ull));
}

TEST(Table, AlignsAndCounts) {
  Table t{{"a", "long_header", "c"}};
  t.add_row({"1", "2", "3"});
  t.add_row({Table::cell(std::uint64_t{12345}), Table::cell(3.14159, 2),
             "x"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Options, ParsesTypes) {
  const char* argv[] = {"prog", "--n=128", "--eps=0.25", "--flag",
                        "--name=hello", "--yes=true"};
  Options o{6, argv};
  EXPECT_EQ(o.get_uint("n", 0), 128u);
  EXPECT_DOUBLE_EQ(o.get_double("eps", 0), 0.25);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_TRUE(o.get_bool("yes", false));
  EXPECT_EQ(o.get_string("name", ""), "hello");
  EXPECT_EQ(o.get_int("missing", -7), -7);
  EXPECT_FALSE(o.has("missing"));
  EXPECT_TRUE(o.has("n"));
}

TEST(Options, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Options(2, argv), PreconditionError);
}

TEST(Options, RejectsUnknownKeysWithAcceptedList) {
  // Regression: "--tres=8" (a --threads typo) used to be swallowed
  // silently; the strict constructor must name the accepted keys.
  const char* argv[] = {"prog", "--tres=8"};
  try {
    Options o{2, argv, {"threads", "n"}};
    FAIL() << "unknown key accepted";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--tres"), std::string::npos) << what;
    EXPECT_NE(what.find("--threads"), std::string::npos)
        << "accepted-key list missing: " << what;
    EXPECT_NE(what.find("--n"), std::string::npos) << what;
  }
  const char* ok[] = {"prog", "--threads=8"};
  const Options o{2, ok, {"threads", "n"}};
  EXPECT_EQ(o.get_uint("threads", 1), 8u);
}

TEST(Options, GetEnumEnforcesVocabulary) {
  const char* argv[] = {"prog", "--algo=approx"};
  const Options o{2, argv, {"algo"}};
  EXPECT_EQ(o.get_enum("algo", "exact", {"exact", "approx", "su", "gk"}),
            "approx");
  // Fallback path (key absent) returns the fallback unchecked-by-parse
  // but still validated against the vocabulary.
  EXPECT_EQ(o.get_enum("missing", "su", {"exact", "approx", "su", "gk"}),
            "su");
  const char* bad[] = {"prog", "--algo=exat"};
  const Options b{2, bad, {"algo"}};
  try {
    (void)b.get_enum("algo", "exact", {"exact", "approx", "su", "gk"});
    FAIL() << "bad enum value accepted";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exact|approx|su|gk"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace dmc
