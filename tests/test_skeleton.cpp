// Karger skeleton sampling + the centralized packing/approx drivers.
#include <gtest/gtest.h>

#include "central/mincut_central.h"
#include "central/skeleton.h"
#include "central/stoer_wagner.h"
#include "graph/algorithms.h"
#include "graph/cut.h"
#include <cmath>

#include "graph/generators.h"

namespace dmc {
namespace {

TEST(Skeleton, EndpointConsistencyIsPure) {
  // The sampled weight of an edge is a pure function of (seed, edge id):
  // calling twice gives the same answer — this is what lets both endpoints
  // sample without communication.
  for (EdgeId e = 0; e < 50; ++e) {
    const Weight a = sampled_edge_weight(20, 0.3, 99, e);
    const Weight b = sampled_edge_weight(20, 0.3, 99, e);
    EXPECT_EQ(a, b);
    EXPECT_LE(a, 20u);
  }
}

TEST(Skeleton, FullProbabilityKeepsEverything) {
  const Graph g = make_erdos_renyi(30, 0.2, 1, 1, 5);
  const Skeleton s = sample_skeleton(g, 1.0, 7);
  EXPECT_EQ(s.graph.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(s.sampled_w[e], g.edge(e).w);
}

TEST(Skeleton, MeanScalesWithP) {
  const Graph g = make_complete(20, 10);
  const Skeleton s = sample_skeleton(g, 0.5, 3);
  const double expected = 0.5 * static_cast<double>(g.total_weight());
  const double got = static_cast<double>(s.graph.total_weight());
  EXPECT_NEAR(got / expected, 1.0, 0.15);
}

TEST(Skeleton, CutValuesConcentrate) {
  // Sampled cut ≈ p · true cut for the planted cut (C(half) large enough).
  const Graph g = make_complete(24, 8);
  const double p = 0.5;
  const Skeleton s = sample_skeleton(g, p, 11);
  std::vector<bool> side(24, false);
  for (NodeId v = 0; v < 12; ++v) side[v] = true;
  const double truth = static_cast<double>(cut_value(g, side));
  const double sampled = static_cast<double>(cut_value(s.graph, side));
  EXPECT_NEAR(sampled / (p * truth), 1.0, 0.2);
}

TEST(Skeleton, ProbabilityFormula) {
  EXPECT_DOUBLE_EQ(skeleton_probability(16, 1.0, 1000000), 1.0 * 3.0 *
                       std::log(16.0) / 1000000.0);
  EXPECT_EQ(skeleton_probability(16, 0.1, 1), 1.0);  // clamped
}

TEST(PackingMinCut, ExactOnFamilies) {
  EXPECT_EQ(packing_min_cut(make_cycle(12)).cut.value, 2u);
  EXPECT_EQ(packing_min_cut(make_path_of_cliques(4, 5)).cut.value, 1u);
  EXPECT_EQ(packing_min_cut(make_hypercube(4)).cut.value, 4u);
}

TEST(PackingMinCut, MatchesStoerWagnerOnRandom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = make_erdos_renyi(28, 0.25, seed, 1, 4);
    const PackingMinCutResult r = packing_min_cut(g);
    const Weight lambda = stoer_wagner_min_cut(g).value;
    EXPECT_EQ(r.cut.value, lambda) << "seed " << seed;
    EXPECT_EQ(cut_value(g, r.cut.side), r.cut.value);
  }
}

TEST(PackingMinCut, SideIsAchievingCut) {
  const Graph g = make_barbell(20, 2, 1, 3);
  const PackingMinCutResult r = packing_min_cut(g);
  EXPECT_EQ(r.cut.value, 2u);
  EXPECT_EQ(cut_value(g, r.cut.side), 2u);
  // The planted side is one of the cliques.
  EXPECT_TRUE(r.cut.side_size() == 10u || r.cut.side_size() == 20u - 10u);
}

TEST(ApproxMinCut, WithinOnePlusEps) {
  const double eps = 0.4;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = make_barbell(32, 3, 2, seed);  // λ = 6
    const Weight lambda = stoer_wagner_min_cut(g).value;
    const ApproxMinCutResult r = approx_min_cut_central(g, eps, seed);
    EXPECT_GE(r.cut.value, lambda);
    EXPECT_LE(static_cast<double>(r.cut.value),
              (1.0 + eps) * static_cast<double>(lambda) + 1e-9)
        << "seed " << seed;
    EXPECT_EQ(cut_value(g, r.cut.side), r.cut.value);
  }
}

TEST(ApproxMinCut, SamplesWhenCutIsLarge) {
  // Dense weighted clique: λ is large, so p < 1 and sampling must kick in.
  const Graph g = make_complete(48, 50);
  const ApproxMinCutResult r = approx_min_cut_central(g, 0.3, 5);
  EXPECT_TRUE(r.sampled);
  EXPECT_LT(r.p, 1.0);
  const Weight lambda = stoer_wagner_min_cut(g).value;
  EXPECT_LE(static_cast<double>(r.cut.value),
            1.3 * static_cast<double>(lambda));
}

TEST(ApproxMinCut, ExactPathWhenCutSmall) {
  const Graph g = make_cycle(20);
  const ApproxMinCutResult r = approx_min_cut_central(g, 0.5, 2);
  EXPECT_FALSE(r.sampled);  // λ = 2 ⇒ p clamps to 1 ⇒ exact packing
  EXPECT_EQ(r.cut.value, 2u);
}

}  // namespace
}  // namespace dmc
