// THE master property test of the reproduction: for every node v of every
// (graph, tree) instance, the distributed Steps 1–5 must produce exactly
// the δ↓(v), ρ↓(v), and C(v↓) that Karger's centralized dynamic program
// (central/one_respect_dp) computes on the same rooted tree — plus the
// correct global minimum, argmin, and cut side.
#include <gtest/gtest.h>

#include "central/one_respect_dp.h"
#include "congest/primitives/leader_bfs.h"
#include "core/ancestors.h"
#include "core/merging_nodes.h"
#include "core/one_respect.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "graph/algorithms.h"
#include "graph/cut.h"
#include "graph/generators.h"
#include "util/bit_math.h"

namespace dmc {
namespace {

struct Pipeline {
  Network net;
  Schedule sched;
  TreeView bfs;
  NodeId leader{kNoNode};
  DistMstResult mst;
  FragmentStructure fs;

  explicit Pipeline(const Graph& g, std::size_t freeze = 0)
      : net(g), sched(net) {
    LeaderBfsProtocol lb{g};
    sched.run_uncharged(lb);
    bfs = lb.tree_view(g);
    leader = lb.leader();
    sched.set_barrier_height(bfs.height(g));
    sched.charge_barrier();
    mst = ghs_mst(sched, bfs, weight_keys(g), freeze);
    fs = build_fragment_structure(sched, bfs, leader, mst);
  }

  [[nodiscard]] RootedTree rooted(const Graph& g) const {
    std::vector<EdgeId> tree;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (mst.tree_edge[e]) tree.push_back(e);
    return RootedTree::from_edges(g, tree, leader);
  }

  [[nodiscard]] std::vector<Weight> weights(const Graph& g) const {
    std::vector<Weight> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).w;
    return w;
  }
};

void check_against_oracle(const Graph& g, std::size_t freeze = 0) {
  Pipeline p{g, freeze};
  const RootedTree t = p.rooted(g);
  const OneRespectValues oracle = one_respect_dp(g, t);
  const OneRespectResult got =
      one_respect_min_cut(p.sched, p.bfs, p.fs, p.weights(g));

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(got.delta_down[v], oracle.delta_down[v]) << "δ↓ node " << v;
    EXPECT_EQ(got.rho_down[v], oracle.rho_down[v]) << "ρ↓ node " << v;
    EXPECT_EQ(got.cut_down[v], oracle.cut_down[v]) << "C(v↓) node " << v;
  }
  NodeId oracle_arg = kNoNode;
  const Weight oracle_min = oracle.min_cut(t, &oracle_arg);
  EXPECT_EQ(got.c_star, oracle_min);
  EXPECT_EQ(got.cut_down[got.v_star], got.c_star);
  EXPECT_NE(got.v_star, t.root());
  // The advertised side must be exactly v*↓ and achieve the value.
  const auto side = subtree_side(t, got.v_star);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(got.in_cut[v], side[v]) << "side bit node " << v;
  EXPECT_EQ(cut_value(g, got.in_cut), got.c_star);
}

TEST(OneRespectDist, Path) { check_against_oracle(make_path(12, 3)); }

TEST(OneRespectDist, CycleUnitAndWeighted) {
  check_against_oracle(make_cycle(16));
  check_against_oracle(with_random_weights(make_cycle(17), 5, 1, 9));
}

TEST(OneRespectDist, GridTorusHypercube) {
  check_against_oracle(make_grid(5, 6));
  check_against_oracle(make_torus(4, 5));
  check_against_oracle(make_hypercube(5));
}

TEST(OneRespectDist, CompleteGraph) {
  check_against_oracle(make_complete(18, 2));
}

TEST(OneRespectDist, Star) { check_against_oracle(make_star(20, 4)); }

TEST(OneRespectDist, ErdosRenyiSweep) {
  for (std::uint64_t seed = 0; seed < 8; ++seed)
    check_against_oracle(make_erdos_renyi(40, 0.15, seed, 1, 12));
}

TEST(OneRespectDist, DenseWeighted) {
  for (std::uint64_t seed = 0; seed < 3; ++seed)
    check_against_oracle(make_erdos_renyi(30, 0.4, seed, 1, 100));
}

TEST(OneRespectDist, PathOfCliquesHighDiameter) {
  check_against_oracle(make_path_of_cliques(6, 5));
}

TEST(OneRespectDist, BarbellAndPlanted) {
  check_against_oracle(make_barbell(24, 2, 1, 3));
  check_against_oracle(make_planted_cut(28, 0.7, 3, 2, 9));
}

TEST(OneRespectDist, RandomTreesPureTreeGraphs) {
  // On a tree, C(v↓) = w(parent edge of v): stresses ρ of tree edges.
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    check_against_oracle(make_random_tree(35, seed, 1, 7));
}

TEST(OneRespectDist, FreezeSizeAblation) {
  // Different fragment sizes must not change any value (E6's correctness
  // leg): force tiny and huge fragments.
  const Graph g = make_erdos_renyi(36, 0.18, 4, 1, 6);
  check_against_oracle(g, /*freeze=*/2);
  check_against_oracle(g, /*freeze=*/6);
  check_against_oracle(g, /*freeze=*/36);
}

TEST(OneRespectDist, ParallelEdges) {
  Graph g{6};
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 2);
  g.add_edge(5, 0, 1);
  g.add_edge(2, 5, 2);
  check_against_oracle(g);
}

TEST(OneRespectDist, RoundsScaleAsSqrtNPlusD) {
  // Coarse shape check at one size: the whole Theorem-2.1 pipeline
  // (including MST and partition) stays within a polylog multiple of
  // √n + D.
  const Graph g = make_erdos_renyi(196, 0.06, 2);
  Pipeline p{g};
  const std::uint64_t before = p.sched.total_rounds();
  (void)one_respect_min_cut(p.sched, p.bfs, p.fs, p.weights(g));
  const std::uint64_t used = p.sched.total_rounds() - before;
  const std::uint64_t sqrt_n = isqrt_ceil(g.num_nodes());
  const std::uint64_t d = diameter_exact(g);
  EXPECT_LT(used, 30 * (sqrt_n + d) * ceil_log2(g.num_nodes()));
}

}  // namespace
}  // namespace dmc
