// Distributed cut verification vs the centralized cut_value oracle, and
// its use auditing the min-cut pipelines' own outputs.
#include <gtest/gtest.h>

#include "congest/primitives/leader_bfs.h"
#include "core/api.h"
#include "core/cut_verify.h"
#include "graph/cut.h"
#include "graph/generators.h"
#include "util/prng.h"

namespace dmc {
namespace {

struct Ctx {
  Network net;
  Schedule sched;
  TreeView bfs;

  explicit Ctx(const Graph& g) : net(g), sched(net) {
    LeaderBfsProtocol lb{g};
    sched.run_uncharged(lb);
    bfs = lb.tree_view(g);
    sched.set_barrier_height(bfs.height(g));
    sched.charge_barrier();
  }
};

TEST(CutVerify, RandomSidesMatchOracle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_erdos_renyi(40, 0.15, seed, 1, 9);
    Ctx ctx{g};
    Prng rng{seed + 7};
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<bool> side(g.num_nodes());
      for (std::size_t v = 0; v < side.size(); ++v)
        side[v] = rng.next_bool(0.4);
      EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, side),
                cut_value(g, side));
    }
  }
}

TEST(CutVerify, TrivialSides) {
  const Graph g = make_grid(4, 5);
  Ctx ctx{g};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs,
                            std::vector<bool>(g.num_nodes(), false)),
            0u);
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs,
                            std::vector<bool>(g.num_nodes(), true)),
            0u);
}

TEST(CutVerify, AuditsExactMinCutOutput) {
  const Graph g = make_barbell(24, 3, 2, 5);
  const DistMinCutResult r = distributed_min_cut(g);
  Ctx ctx{g};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, r.side), r.value);
}

TEST(CutVerify, AuditsApproxOutput) {
  const Graph g = make_complete(16, 30);
  const DistApproxResult r = distributed_approx_min_cut(g, {.eps = 0.3, .seed = 3});
  Ctx ctx{g};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, r.result.side),
            r.result.value);
}

// --- wide regime: accumulation at the per-edge weight cap ---------------

TEST(CutVerify, K2AtMaxWeightCountsExactly) {
  // One edge at kMaxWeight: the verifier's both-endpoints sum is
  // 2·kMaxWeight — the doubling must survive undamaged and halve back.
  Graph g{2};
  g.add_edge(0, 1, kMaxWeight);
  Ctx ctx{g};
  const std::vector<bool> side{true, false};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, side), kMaxWeight);
  EXPECT_EQ(cut_value(g, side), kMaxWeight);
}

TEST(CutVerify, StarAtMaxWeightSumsAllSpokes) {
  // Cut around the hub of a star with every spoke at kMaxWeight: the
  // crossing weight is 15·kMaxWeight ≈ 2³⁶ — far beyond any single edge,
  // exercising the guarded multi-edge accumulation (util/checked.h) in
  // the side exchange, the sum convergecast, and the central oracle.
  const std::size_t n = 16;
  const Graph g = make_star(n, kMaxWeight);
  Ctx ctx{g};
  std::vector<bool> hub_side(n, false);
  hub_side[0] = true;  // make_star's hub is node 0
  const Weight want = static_cast<Weight>(n - 1) * kMaxWeight;
  EXPECT_EQ(cut_value(g, hub_side), want);
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, hub_side), want);

  // A single spoke is the minimum cut; the exact pipeline must find it
  // without any wide-weight distortion.
  const DistMinCutResult r = distributed_min_cut(g);
  EXPECT_EQ(r.value, kMaxWeight);
  Ctx audit{g};
  EXPECT_EQ(verify_cut_dist(audit.sched, audit.bfs, r.side), kMaxWeight);
}

TEST(CutVerify, CostIsOneExchangePlusTreeSweep) {
  const Graph g = make_torus(8, 8);
  Ctx ctx{g};
  const auto before = ctx.net.stats().rounds;
  (void)verify_cut_dist(ctx.sched, ctx.bfs,
                        std::vector<bool>(g.num_nodes(), false));
  const auto used = ctx.net.stats().rounds - before;
  EXPECT_LE(used, 2ull * ctx.bfs.height(g) + 8);
}

}  // namespace
}  // namespace dmc
