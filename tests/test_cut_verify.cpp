// Distributed cut verification vs the centralized cut_value oracle, and
// its use auditing the min-cut pipelines' own outputs.
#include <gtest/gtest.h>

#include "congest/primitives/leader_bfs.h"
#include "core/api.h"
#include "core/cut_verify.h"
#include "graph/cut.h"
#include "graph/generators.h"
#include "util/prng.h"

namespace dmc {
namespace {

struct Ctx {
  Network net;
  Schedule sched;
  TreeView bfs;

  explicit Ctx(const Graph& g) : net(g), sched(net) {
    LeaderBfsProtocol lb{g};
    sched.run_uncharged(lb);
    bfs = lb.tree_view(g);
    sched.set_barrier_height(bfs.height(g));
    sched.charge_barrier();
  }
};

TEST(CutVerify, RandomSidesMatchOracle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_erdos_renyi(40, 0.15, seed, 1, 9);
    Ctx ctx{g};
    Prng rng{seed + 7};
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<bool> side(g.num_nodes());
      for (std::size_t v = 0; v < side.size(); ++v)
        side[v] = rng.next_bool(0.4);
      EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, side),
                cut_value(g, side));
    }
  }
}

TEST(CutVerify, TrivialSides) {
  const Graph g = make_grid(4, 5);
  Ctx ctx{g};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs,
                            std::vector<bool>(g.num_nodes(), false)),
            0u);
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs,
                            std::vector<bool>(g.num_nodes(), true)),
            0u);
}

TEST(CutVerify, AuditsExactMinCutOutput) {
  const Graph g = make_barbell(24, 3, 2, 5);
  const DistMinCutResult r = distributed_min_cut(g);
  Ctx ctx{g};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, r.side), r.value);
}

TEST(CutVerify, AuditsApproxOutput) {
  const Graph g = make_complete(16, 30);
  const DistApproxResult r = distributed_approx_min_cut(g, {.eps = 0.3, .seed = 3});
  Ctx ctx{g};
  EXPECT_EQ(verify_cut_dist(ctx.sched, ctx.bfs, r.result.side),
            r.result.value);
}

TEST(CutVerify, CostIsOneExchangePlusTreeSweep) {
  const Graph g = make_torus(8, 8);
  Ctx ctx{g};
  const auto before = ctx.net.stats().rounds;
  (void)verify_cut_dist(ctx.sched, ctx.bfs,
                        std::vector<bool>(g.num_nodes(), false));
  const auto used = ctx.net.stats().rounds - before;
  EXPECT_LE(used, 2ull * ctx.bfs.height(g) + 8);
}

}  // namespace
}  // namespace dmc
