// Self-tests for dmc_lint (src/lint): every rule must fire on its
// planted-violation fixture (tests/lint_fixtures/) and stay quiet on the
// conforming counterpart, suppression semantics must match the documented
// contract, and — the gate this suite exists for — the REAL repo tree
// must lint clean (RepoClean below runs dmc_lint's engine over
// DMC_REPO_ROOT exactly as CI's lint job does).
//
// Fixtures are loaded under VIRTUAL repo-relative paths ("src/fixtures/…")
// so the rules' path scoping applies to them; the fixture directory itself
// is excluded from real scans by the scanner.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace dmc::lint {
namespace {

SourceFile load_fixture(const std::string& name, std::string virtual_path) {
  return load_source(std::string(DMC_LINT_FIXTURES) + "/" + name,
                     std::move(virtual_path));
}

LintResult lint_fixture(const std::string& name, std::string virtual_path,
                        std::vector<std::string> rules) {
  LintConfig cfg;
  cfg.root = DMC_REPO_ROOT;
  cfg.rules = std::move(rules);
  LintResult result;
  lint_file(load_fixture(name, std::move(virtual_path)), cfg, result);
  return result;
}

std::vector<std::size_t> lines_of(const std::vector<Finding>& fs,
                                  const std::string& rule) {
  std::vector<std::size_t> out;
  for (const Finding& f : fs)
    if (f.rule == rule) out.push_back(f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::string dump(const std::vector<Finding>& fs) {
  std::ostringstream os;
  for (const Finding& f : fs)
    os << "  " << f.path << ':' << f.line << ": [" << f.rule << "] "
       << f.message << '\n';
  return os.str();
}

// ----------------------------------------------------------------- lexer

TEST(LintLexer, BlanksStringsAndCommentsKeepingColumns) {
  const SourceFile sf = lex_source(
      "src/x.cpp", "int a = 1; // trailing note\nconst char* s = \"ra()\";\n");
  ASSERT_EQ(sf.num_lines(), 2u);
  // Every view of a line has the same length — shared column offsets.
  for (std::size_t i = 0; i < sf.num_lines(); ++i) {
    EXPECT_EQ(sf.raw[i].size(), sf.code[i].size());
    EXPECT_EQ(sf.raw[i].size(), sf.comment[i].size());
  }
  EXPECT_EQ(sf.code[0].find("trailing"), std::string::npos);
  EXPECT_NE(sf.comment[0].find("trailing note"), std::string::npos);
  // String CONTENTS blanked, quote characters kept.
  EXPECT_EQ(sf.code[1].find("ra()"), std::string::npos);
  EXPECT_NE(sf.code[1].find('"'), std::string::npos);
  EXPECT_NE(sf.raw[1].find("ra()"), std::string::npos);
}

TEST(LintLexer, BlockCommentsAndRawStrings) {
  const SourceFile sf = lex_source(
      "src/x.cpp",
      "int a; /* rand() in\n a block comment */ int b;\n"
      "auto r = R\"(rand() inside raw)\";\n");
  ASSERT_EQ(sf.num_lines(), 3u);
  EXPECT_EQ(sf.code[0].find("rand"), std::string::npos);
  EXPECT_EQ(sf.code[1].find("comment"), std::string::npos);
  EXPECT_NE(sf.code[1].find("int b;"), std::string::npos);
  EXPECT_EQ(sf.code[2].find("rand"), std::string::npos);
  EXPECT_NE(sf.raw[2].find("rand() inside raw"), std::string::npos);
}

// ---------------------------------------------------------- R1 fixtures

TEST(LintR1, FiresOnEveryPlantedViolation) {
  const LintResult r =
      lint_fixture("r1_violations.cpp", "src/fixtures/r1_violations.cpp",
                   {"R1"});
  const std::vector<std::size_t> expect{7, 10, 11, 12, 13, 14};
  EXPECT_EQ(lines_of(r.findings, "R1"), expect) << dump(r.findings);
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(LintR1, QuietOnConformingCode) {
  const LintResult r =
      lint_fixture("r1_clean.cpp", "src/fixtures/r1_clean.cpp", {"R1"});
  EXPECT_TRUE(r.clean()) << dump(r.findings);
}

TEST(LintR1, ScopeExcludesBenchAndTests) {
  // The same planted file outside the deterministic layers is fine —
  // timing harnesses legitimately read clocks.
  for (const char* vpath :
       {"bench/fixture.cpp", "tests/fixture.cpp", "tools/fixture.cpp"}) {
    const LintResult r = lint_fixture("r1_violations.cpp", vpath, {"R1"});
    EXPECT_TRUE(r.clean()) << vpath << '\n' << dump(r.findings);
  }
}

// ---------------------------------------------------------- R2 fixtures

TEST(LintR2, FiresOnIncompleteProtocolContracts) {
  const LintResult r =
      lint_fixture("r2_violations.cpp", "src/fixtures/r2_violations.cpp",
                   {"R2"});
  ASSERT_EQ(r.findings.size(), 4u) << dump(r.findings);
  const auto count = [&](const std::string& cls, const std::string& what) {
    return std::count_if(r.findings.begin(), r.findings.end(),
                         [&](const Finding& f) {
                           return f.message.find('\'' + cls + '\'') !=
                                      std::string::npos &&
                                  f.message.find(what) != std::string::npos;
                         });
  };
  EXPECT_EQ(count("BrokenBoth", "scheduling"), 1);
  EXPECT_EQ(count("BrokenBoth", "fault_tolerance"), 1);
  EXPECT_EQ(count("BrokenFault", "fault_tolerance"), 1);
  EXPECT_EQ(count("BrokenCrash", "on_crash_restart"), 1);
  // The conforming and unrelated classes never appear.
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.message.find("GoodProtocol"), std::string::npos);
    EXPECT_EQ(f.message.find("Unrelated"), std::string::npos);
  }
}

// ---------------------------------------------------------- R3 fixtures

TEST(LintR3, FiresOnRawWeightAccumulationInAuditedFiles) {
  const LintResult r = lint_fixture("r3_violations.cpp",
                                    "src/core/subtree_sums.cpp", {"R3"});
  const std::vector<std::size_t> expect{12, 15};
  EXPECT_EQ(lines_of(r.findings, "R3"), expect) << dump(r.findings);
}

TEST(LintR3, QuietOutsideTheAuditedFileList) {
  const LintResult r = lint_fixture("r3_violations.cpp",
                                    "src/core/unlisted_file.cpp", {"R3"});
  EXPECT_TRUE(r.clean()) << dump(r.findings);
}

// ---------------------------------------------------------- R4 fixtures

TEST(LintR4, FiresOnBareOneWordThrowMessages) {
  const LintResult r =
      lint_fixture("r4_violations.cpp", "src/fixtures/r4_violations.cpp",
                   {"R4"});
  const std::vector<std::size_t> expect{14, 15, 17};
  EXPECT_EQ(lines_of(r.findings, "R4"), expect) << dump(r.findings);
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_NE(r.findings[0].message.find("overflow"), std::string::npos);
  EXPECT_NE(r.findings[1].message.find("bad"), std::string::npos);
  EXPECT_NE(r.findings[2].message.find("corrupt"), std::string::npos);
}

// ---------------------------------------------------------- R5 fixtures

TEST(LintR5, FiresOnHeaderHygieneViolations) {
  const LintResult r = lint_fixture("r5_violations.h",
                                    "src/fixtures/r5_violations.h", {"R5"});
  const std::vector<std::size_t> expect{1, 4, 5};
  EXPECT_EQ(lines_of(r.findings, "R5"), expect) << dump(r.findings);
}

TEST(LintR5, QuietOnConformingHeader) {
  const LintResult r =
      lint_fixture("r5_clean.h", "src/fixtures/r5_clean.h", {"R5"});
  EXPECT_TRUE(r.clean()) << dump(r.findings);
}

// --------------------------------------------------------- suppressions

TEST(LintSuppressions, CoverageAndMalformedDirectives) {
  const LintResult r = lint_fixture(
      "suppressions.cpp", "src/fixtures/suppressions.cpp", {"R1"});
  // Covered: previous-line form (line 7) and same-line form (line 9).
  const std::vector<std::size_t> suppressed_expect{7, 9};
  EXPECT_EQ(lines_of(r.suppressed, "R1"), suppressed_expect)
      << dump(r.suppressed);
  // Unsuppressed R1: plain (11), rule-mismatch (14), reason-missing (17).
  const std::vector<std::size_t> r1_expect{11, 14, 17};
  EXPECT_EQ(lines_of(r.findings, "R1"), r1_expect) << dump(r.findings);
  // Malformed dmc-lint comments are findings themselves.
  const std::vector<std::size_t> malformed_expect{16, 19};
  EXPECT_EQ(lines_of(r.findings, "suppression"), malformed_expect)
      << dump(r.findings);
  ASSERT_TRUE(r.per_rule.count("R1"));
  EXPECT_EQ(r.per_rule.at("R1").findings, 3u);
  EXPECT_EQ(r.per_rule.at("R1").suppressed, 2u);
}

TEST(LintSuppressions, FileWideAllowCoversEveryLine) {
  const LintResult r = lint_fixture(
      "suppress_file.cpp", "src/fixtures/suppress_file.cpp", {"R1"});
  EXPECT_TRUE(r.clean()) << dump(r.findings);
  EXPECT_EQ(r.suppressed.size(), 2u) << dump(r.suppressed);
}

// -------------------------------------------------------------- reports

TEST(LintReport, JsonCarriesFindingsSuppressionsAndPerRuleCounts) {
  const LintResult r = lint_fixture(
      "suppressions.cpp", "src/fixtures/suppressions.cpp", {"R1"});
  std::ostringstream os;
  write_json_report(r, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tool\":\"dmc_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"R1\":{\"findings\":3,\"suppressed\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("src/fixtures/suppressions.cpp"), std::string::npos);
}

TEST(LintReport, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// ------------------------------------------------------------- scanning

TEST(LintScanner, ExcludesFixturesAndFindsRealSources) {
  LintConfig cfg;
  cfg.root = DMC_REPO_ROOT;
  const std::vector<ScannedFile> files = collect_files(cfg);
  bool saw_this_test = false;
  for (const ScannedFile& f : files) {
    EXPECT_EQ(f.rel_path.find("lint_fixtures"), std::string::npos)
        << f.rel_path;
    if (f.rel_path == "tests/test_lint.cpp") saw_this_test = true;
  }
  EXPECT_TRUE(saw_this_test);
  EXPECT_GT(files.size(), 80u);  // the real tree, not an empty stub
}

// The gate: the REAL repository lints clean, exactly as CI runs it.
TEST(LintRepo, RepoIsCleanUnderAllRules) {
  LintConfig cfg;
  cfg.root = DMC_REPO_ROOT;
  const LintResult r = run_lint(cfg);
  EXPECT_TRUE(r.clean()) << "unsuppressed findings in the repo:\n"
                         << dump(r.findings);
  EXPECT_GT(r.files_scanned, 80u);
}

}  // namespace
}  // namespace dmc::lint
