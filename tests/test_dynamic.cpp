// Dynamic graphs — batched edge updates into warm sessions.
//
// The contract under test: after ANY Session::apply / SessionPool::apply
// batch (insert / delete / reweight, any mix), every subsequent solve is
// BIT-IDENTICAL — value, witness, every per-protocol CONGEST stat — to a
// fresh session over the same updated graph, across all four algorithms
// × {sequential, sharded(2), sharded(8)} × {Dense, EventDriven}.  The
// scoped-invalidation machinery (incremental repair of reweight-only
// batches vs the damage-threshold full-invalidation fallback vs the
// topology rebind) is a POLICY choice, never answer-visible; UpdateStats
// exposes which path fired so both are provably exercised.
//
// The second half drives the dmc::check update axis: every cell of the
// tier1_updates matrix (192 cells: {erdos_renyi, torus} × {16, 26} ×
// {unit, small} × all four algorithms × both schedulings × {reweight,
// mixed, churn}) applies a seeded batch to a warm session and runs the
// FULL differential contract — fresh oracle consensus, witness audit,
// CONGEST legality, warm-vs-rebuild bit-comparison — on the updated
// graph; plus the ddmin update-sequence shrinker's own guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#include "core/session.h"
#include "core/session_pool.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/prng.h"

namespace dmc {
namespace {

/// Field-for-field report equality, wall time excluded (the one
/// non-deterministic field).
void expect_report_identical(const MinCutReport& a, const MinCutReport& b,
                             const std::string& what) {
  EXPECT_EQ(a.algo, b.algo) << what;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.side, b.side) << what;
  EXPECT_EQ(a.v_star, b.v_star) << what;
  EXPECT_EQ(a.trees_packed, b.trees_packed) << what;
  EXPECT_EQ(a.tree_of_best, b.tree_of_best) << what;
  EXPECT_EQ(a.fragments, b.fragments) << what;
  EXPECT_EQ(a.p, b.p) << what;
  EXPECT_EQ(a.lambda_hat, b.lambda_hat) << what;
  EXPECT_EQ(a.sampled, b.sampled) << what;
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.q_threshold, b.q_threshold) << what;
  // CongestStats::operator== is exact, per-protocol breakdown included.
  EXPECT_TRUE(a.stats == b.stats) << what << ": stats diverged";
}

/// One request per algorithm, small packing knobs for speed.
std::vector<MinCutRequest> all_algo_requests() {
  MinCutRequest exact;
  exact.algo = Algo::kExact;
  exact.max_trees = 6;
  exact.patience = 3;
  MinCutRequest approx;
  approx.algo = Algo::kApprox;
  approx.eps = 0.3;
  approx.seed = 7;
  MinCutRequest su;
  su.algo = Algo::kSu;
  su.seed = 11;
  MinCutRequest gk;
  gk.algo = Algo::kGk;
  gk.seed = 13;
  return {exact, approx, su, gk};
}

Graph base_graph(std::uint64_t seed = 3) {
  return make_erdos_renyi(22, 0.2, seed);
}

/// The first `k` edges whose CUMULATIVE removal keeps `g` connected.
std::vector<EdgeId> safe_deletes(const Graph& g, std::size_t k) {
  std::vector<EdgeId> dels;
  for (EdgeId e = 0; e < g.num_edges() && dels.size() < k; ++e) {
    Graph h{g.num_nodes()};
    for (EdgeId f = 0; f < g.num_edges(); ++f) {
      if (f == e || std::find(dels.begin(), dels.end(), f) != dels.end())
        continue;
      const Edge& ed = g.edge(f);
      (void)h.add_edge(ed.u, ed.v, ed.w);
    }
    if (h.num_edges() > 0 && is_connected(h)) dels.push_back(e);
  }
  return dels;
}

/// Per-kind batches over `g`: pure inserts, connectivity-safe deletes,
/// under-threshold reweights — the three invalidation classes.
std::vector<std::pair<std::string, std::vector<EdgeUpdate>>> kind_batches(
    const Graph& g) {
  std::vector<std::pair<std::string, std::vector<EdgeUpdate>>> out;
  out.emplace_back("insert", std::vector<EdgeUpdate>{
                                 EdgeUpdate::insert(0, 5, 3),
                                 EdgeUpdate::insert(2, 9, 1),
                             });
  std::vector<EdgeUpdate> dels;
  for (const EdgeId e : safe_deletes(g, 2))
    dels.push_back(EdgeUpdate::remove(e));
  out.emplace_back("delete", std::move(dels));
  std::vector<EdgeUpdate> rew;
  for (EdgeId e = 0; e < std::min<EdgeId>(3, g.num_edges()); ++e)
    rew.push_back(EdgeUpdate::reweight(e, 2 + e));
  out.emplace_back("reweight", std::move(rew));
  return out;
}

TEST(DynamicUpdates, EveryKindBitIdenticalToRebuildAcrossEngines) {
  const Graph base = base_graph();
  const std::vector<MinCutRequest> reqs = all_algo_requests();
  for (const auto& [kind, batch] : kind_batches(base)) {
    ASSERT_FALSE(batch.empty()) << kind;
    for (const Scheduling sched :
         {Scheduling::kDense, Scheduling::kEventDriven}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        const SessionOptions sopt{threads, sched};
        const std::string what =
            kind + " sched=" +
            (sched == Scheduling::kDense ? "dense" : "event") +
            " t=" + std::to_string(threads);

        // Warm session: build ALL warm stages, then patch in place.
        Graph mut = base;
        Session warm{mut, sopt};
        for (const MinCutRequest& r : reqs) (void)warm.solve(r);
        const UpdateSummary summary = warm.apply(batch);
        EXPECT_EQ(summary.edges_after, mut.num_edges()) << what;

        // Rebuild-from-scratch oracle: same batch on a fresh graph, a
        // fresh session, the same request sequence.
        Graph rebuilt = base;
        const UpdateSummary again = rebuilt.apply_updates(batch);
        EXPECT_EQ(summary.touched_edges, again.touched_edges) << what;
        Session fresh{rebuilt, sopt};
        for (std::size_t i = 0; i < reqs.size(); ++i)
          expect_report_identical(warm.solve(reqs[i]), fresh.solve(reqs[i]),
                                  what + " req#" + std::to_string(i));
      }
    }
  }
}

TEST(DynamicUpdates, IncrementalRepairAndFallbackBothFire) {
  const Graph base = base_graph(5);
  Graph mut = base;
  Session warm{mut, SessionOptions{}};
  MinCutRequest exact = all_algo_requests()[0];
  (void)warm.solve(exact);

  // Small reweight batch: damage m/8 ≤ 0.25 ⇒ scoped repair.
  const std::size_t m = mut.num_edges();
  std::vector<EdgeUpdate> small;
  for (EdgeId e = 0; e < std::max<std::size_t>(1, m / 8); ++e)
    small.push_back(EdgeUpdate::reweight(e, 4));
  const UpdateSummary s1 = warm.apply(small);
  EXPECT_FALSE(s1.topology_changed());
  EXPECT_LE(s1.damage(), warm.options().update_damage_threshold);
  EXPECT_EQ(warm.update_stats().incremental_repairs, 1u);
  EXPECT_EQ(warm.update_stats().full_invalidations, 0u);

  // Churn: > m/2 reweights pushes damage past the threshold ⇒ fallback.
  std::vector<EdgeUpdate> churn;
  for (EdgeId e = 0; e < m / 2 + 1; ++e)
    churn.push_back(EdgeUpdate::reweight(e, 2));
  const UpdateSummary s2 = warm.apply(churn);
  EXPECT_GT(s2.damage(), warm.options().update_damage_threshold);
  EXPECT_EQ(warm.update_stats().full_invalidations, 1u);

  // Re-warm (the invalidation left no infra to count against), then a
  // topology change ⇒ always a full invalidation (rebind).
  (void)warm.solve(exact);
  const std::vector<EdgeUpdate> rebind{EdgeUpdate::insert(1, 7, 2)};
  (void)warm.apply(rebind);
  EXPECT_EQ(warm.update_stats().full_invalidations, 2u);
  EXPECT_EQ(warm.update_stats().batches, 3u);

  // All three paths must agree with one rebuild at the end.
  Graph rebuilt = base;
  (void)rebuilt.apply_updates(small);
  (void)rebuilt.apply_updates(churn);
  (void)rebuilt.apply_updates(rebind);
  Session fresh{rebuilt, SessionOptions{}};
  expect_report_identical(warm.solve(exact), fresh.solve(exact),
                          "after repair+fallback+rebind");
}

TEST(DynamicUpdates, InterleavedWithCancellationStaysBitIdentical) {
  const Graph base = base_graph(9);
  Graph mut = base;
  Session warm{mut, SessionOptions{}};
  MinCutRequest exact = all_algo_requests()[0];
  (void)warm.solve(exact);

  // Cancel a query, apply, solve; cancel again, apply, solve — an update
  // landing after a cancelled solve must see a clean session.
  MinCutRequest starved = exact;
  starved.round_budget = 1;
  EXPECT_THROW((void)warm.solve(starved), CancelledError);
  std::vector<EdgeUpdate> b1{EdgeUpdate::reweight(0, 5)};
  (void)warm.apply(b1);

  Graph rebuilt = base;
  (void)rebuilt.apply_updates(b1);
  {
    Session fresh{rebuilt, SessionOptions{}};
    expect_report_identical(warm.solve(exact), fresh.solve(exact),
                            "post-cancel update #1");
  }

  EXPECT_THROW((void)warm.solve(starved), CancelledError);
  std::vector<EdgeUpdate> b2{EdgeUpdate::insert(3, 11, 2)};
  (void)warm.apply(b2);
  (void)rebuilt.apply_updates(b2);
  {
    Session fresh{rebuilt, SessionOptions{}};
    expect_report_identical(warm.solve(exact), fresh.solve(exact),
                            "post-cancel update #2");
  }
}

TEST(DynamicUpdates, SessionPoolApplyPatchesEveryPooledSession) {
  const Graph base = base_graph(13);
  Graph mut = base;
  SessionPool pool{mut, 3, SessionOptions{}};
  const std::vector<MinCutRequest> reqs = all_algo_requests();
  (void)pool.solve_many(reqs);  // warm every pooled session's infra

  std::vector<EdgeUpdate> batch{EdgeUpdate::reweight(1, 6),
                                EdgeUpdate::insert(0, 9, 2)};
  const UpdateSummary summary = pool.apply(batch);
  EXPECT_TRUE(summary.topology_changed());

  Graph rebuilt = base;
  (void)rebuilt.apply_updates(batch);
  Session fresh{rebuilt, SessionOptions{}};
  // Warm-pool reuse after the update: dispatch ACROSS the pooled
  // sessions; each report must equal the fresh session's.
  const std::vector<MinCutReport> pooled = pool.solve_many(reqs);
  ASSERT_EQ(pooled.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_report_identical(pooled[i], fresh.solve(reqs[i]),
                            "pool req#" + std::to_string(i));
  EXPECT_EQ(pool.queries_served(), 2 * reqs.size());
  EXPECT_GT(pool.memory_bytes(), 0u);
}

TEST(DynamicUpdates, ConstGraphSessionsRefuseApply) {
  const Graph g = base_graph(17);
  Session session{g};  // const-graph constructor: no mutable alias
  std::vector<EdgeUpdate> batch{EdgeUpdate::reweight(0, 3)};
  EXPECT_THROW((void)session.apply(batch), PreconditionError);
  SessionPool pool{g, 2};
  EXPECT_THROW((void)pool.apply(batch), PreconditionError);
}

TEST(DynamicUpdates, InvalidBatchIsAtomicAndLeavesWarmSessionServing) {
  const Graph base = base_graph(21);
  Graph mut = base;
  Session warm{mut, SessionOptions{}};
  MinCutRequest exact = all_algo_requests()[0];
  const MinCutReport before = warm.solve(exact);

  // Valid prefix, invalid tail (self-loop): NOTHING may be applied.
  std::vector<EdgeUpdate> bad{EdgeUpdate::reweight(0, 9),
                              EdgeUpdate::insert(4, 4, 1)};
  EXPECT_THROW((void)warm.apply(bad), InvariantError);
  EXPECT_EQ(mut.num_edges(), base.num_edges());
  EXPECT_EQ(mut.edge(0).w, base.edge(0).w);
  EXPECT_EQ(warm.update_stats().batches, 0u);
  expect_report_identical(warm.solve(exact), before,
                          "solve after rejected batch");
}

}  // namespace

// ---------------------------------------------------------------------
// The tier1_updates matrix, one gtest case per cell — the differential
// update/rebuild contract: warm apply + re-solve vs fresh oracle
// consensus + fresh cold session on the updated graph, bit-compared.
// ---------------------------------------------------------------------

namespace check {
namespace {

const ScenarioRunner& updates_runner() {
  static const ScenarioRunner runner{ScenarioMatrix::tier1_updates()};
  return runner;
}

std::uint64_t seed_for(std::uint64_t scenario_id) {
  const Scenario s = ScenarioMatrix::tier1_updates().decode(scenario_id);
  std::uint64_t h = 0;
  for (const char c : s.family) h = h * 31 + static_cast<unsigned char>(c);
  return 1 + mix64(h ^ (s.n * 131)) % 1021;
}

class Tier1UpdatesCell : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Tier1UpdatesCell, AppliesBatchAndMatchesRebuild) {
  const std::uint64_t id = GetParam();
  const CellReport cell = updates_runner().run_cell(id, seed_for(id));
  EXPECT_TRUE(cell.ok()) << cell.failure;
}

std::string cell_name(const ::testing::TestParamInfo<std::uint64_t>& info) {
  return ScenarioMatrix::tier1_updates().decode(info.param).name();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Tier1UpdatesCell,
    ::testing::Range<std::uint64_t>(0,
                                    ScenarioMatrix::tier1_updates().size()),
    cell_name);

TEST(UpdateBatchFor, ProfilesHitTheirInvalidationPaths) {
  const Graph g = make_erdos_renyi(20, 0.25, 4);
  const std::size_t m = g.num_edges();
  const auto rew = update_batch_for(UpdateProfile::kReweight, g, 42);
  ASSERT_FALSE(rew.empty());
  EXPECT_LE(rew.size(), m / 8 + 1);
  for (const EdgeUpdate& u : rew) EXPECT_EQ(u.kind, UpdateKind::kReweight);

  const auto churn = update_batch_for(UpdateProfile::kChurn, g, 42);
  EXPECT_GT(churn.size(), m / 2);

  const auto mixed = update_batch_for(UpdateProfile::kMixed, g, 42);
  bool ins = false, del = false, rw = false;
  for (const EdgeUpdate& u : mixed) {
    ins |= u.kind == UpdateKind::kInsert;
    del |= u.kind == UpdateKind::kDelete;
    rw |= u.kind == UpdateKind::kReweight;
  }
  EXPECT_TRUE(ins && del && rw) << "mixed batch must carry all three kinds";
  // Deterministic in (profile, g, seed).
  EXPECT_EQ(update_batch_for(UpdateProfile::kMixed, g, 42).size(),
            mixed.size());
  EXPECT_TRUE(update_batch_for(UpdateProfile::kNone, g, 42).empty());
}

TEST(ShrinkUpdates, MinimizesToTheGuiltySubsequenceInOrder) {
  std::vector<EdgeUpdate> seq;
  for (EdgeId e = 0; e < 12; ++e)
    seq.push_back(EdgeUpdate::reweight(e, 2));
  // Failure ⇔ both e3 and e7 survive, in that order.
  const UpdateFailurePredicate fails =
      [](std::span<const EdgeUpdate> cand) {
        bool seen3 = false;
        for (const EdgeUpdate& u : cand) {
          if (u.edge == 3) seen3 = true;
          if (u.edge == 7) return seen3;
        }
        return false;
      };
  const UpdateShrinkResult r = shrink_updates(seq, fails);
  ASSERT_EQ(r.updates.size(), 2u);
  EXPECT_EQ(r.updates[0].edge, 3u);
  EXPECT_EQ(r.updates[1].edge, 7u);
  EXPECT_GT(r.predicate_calls, 2u);
}

TEST(ShrinkUpdates, EmptySequenceIsAReachableMinimum) {
  std::vector<EdgeUpdate> seq{EdgeUpdate::reweight(0, 2),
                              EdgeUpdate::reweight(1, 3)};
  const UpdateFailurePredicate always =
      [](std::span<const EdgeUpdate>) { return true; };
  EXPECT_TRUE(shrink_updates(seq, always).updates.empty());
}

TEST(ShrinkUpdates, RejectsPassingInput) {
  std::vector<EdgeUpdate> seq{EdgeUpdate::reweight(0, 2)};
  const UpdateFailurePredicate never =
      [](std::span<const EdgeUpdate>) { return false; };
  EXPECT_THROW((void)shrink_updates(seq, never), PreconditionError);
}

}  // namespace
}  // namespace check
}  // namespace dmc
