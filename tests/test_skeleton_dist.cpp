// Distributed skeleton machinery: coordination-free sampling equals the
// centralized sampler; the masked connectivity check matches the oracle.
#include <gtest/gtest.h>

#include "central/skeleton.h"
#include "congest/primitives/leader_bfs.h"
#include "core/skeleton_dist.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace dmc {
namespace {

TEST(SkeletonDist, MatchesCentralizedSampler) {
  const Graph g = make_erdos_renyi(50, 0.15, 3, 1, 20);
  const double p = 0.4;
  const std::uint64_t seed = 77;
  const DistSkeleton d = sample_skeleton_dist(g, p, seed);
  const Skeleton c = sample_skeleton(g, p, seed);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(d.sampled_w[e], c.sampled_w[e]) << "edge " << e;
    EXPECT_EQ(d.enabled[e], c.sampled_w[e] > 0);
  }
}

struct Ctx {
  Network net;
  Schedule sched;
  TreeView bfs;
  NodeId leader{kNoNode};

  explicit Ctx(const Graph& g) : net(g), sched(net) {
    LeaderBfsProtocol lb{g};
    sched.run_uncharged(lb);
    bfs = lb.tree_view(g);
    leader = lb.leader();
    sched.set_barrier_height(bfs.height(g));
    sched.charge_barrier();
  }
};

TEST(SkeletonDist, ConnectivityMatchesOracle) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = make_erdos_renyi(40, 0.12, seed);
    Ctx ctx{g};
    // Random masks of varying density.
    for (const double keep : {0.15, 0.4, 0.9}) {
      const DistSkeleton sk =
          sample_skeleton_dist(g, keep, seed * 31 + 1);
      const bool got =
          skeleton_connected_dist(ctx.sched, ctx.bfs, ctx.leader,
                                  sk.enabled);
      std::vector<bool> mask(g.num_edges());
      for (EdgeId e = 0; e < g.num_edges(); ++e) mask[e] = sk.enabled[e];
      const BfsResult r = bfs_masked(g, ctx.leader, mask);
      bool want = true;
      for (NodeId v = 0; v < g.num_nodes(); ++v)
        if (r.dist[v] == BfsResult::kUnreached) want = false;
      EXPECT_EQ(got, want) << "seed " << seed << " keep " << keep;
    }
  }
}

TEST(SkeletonDist, FullMaskAlwaysConnected) {
  const Graph g = make_grid(6, 6);
  Ctx ctx{g};
  EXPECT_TRUE(skeleton_connected_dist(
      ctx.sched, ctx.bfs, ctx.leader,
      std::vector<bool>(g.num_edges(), true)));
}

TEST(SkeletonDist, EmptyMaskDisconnected) {
  const Graph g = make_grid(4, 4);
  Ctx ctx{g};
  EXPECT_FALSE(skeleton_connected_dist(
      ctx.sched, ctx.bfs, ctx.leader,
      std::vector<bool>(g.num_edges(), false)));
}

TEST(SkeletonDist, CutMaskDetected) {
  // Disable exactly the bridge of a barbell: must report disconnected.
  const Graph g = make_barbell(12, 1, 1, 5);
  Ctx ctx{g};
  std::vector<bool> enabled(g.num_edges(), true);
  // The single cross edge is the last one added by the generator.
  enabled[g.num_edges() - 1] = false;
  EXPECT_FALSE(skeleton_connected_dist(ctx.sched, ctx.bfs, ctx.leader,
                                       enabled));
}

}  // namespace
}  // namespace dmc
