// CONGEST engine semantics: synchronous delivery, bandwidth enforcement,
// quiescence, statistics.
#include <gtest/gtest.h>

#include "congest/network.h"
#include "congest/schedule.h"
#include "graph/generators.h"

namespace dmc {
namespace {

/// Sends one ping from node 0 along a path and counts hops: verifies one-
/// round-per-hop delivery.
class PingProtocol final : public Protocol {
 public:
  explicit PingProtocol(const Graph& g) : reached_(g.num_nodes(), 0) {}
  [[nodiscard]] std::string name() const override { return "ping"; }
  void round(NodeId v, Mailbox& mb) override {
    for (const Delivery& d : mb.inbox()) {
      reached_[v] = 1;
      // forward away from the arrival port
      for (std::uint32_t p = 0; p < mb.num_ports(); ++p)
        if (p != d.port) mb.send(p, d.msg);
    }
    if (v == 0 && !started_) {
      started_ = true;
      reached_[0] = 1;
      for (std::uint32_t p = 0; p < mb.num_ports(); ++p)
        mb.send(p, Message::make(1, {42}));
    }
  }
  [[nodiscard]] bool local_done(NodeId) const override { return started_; }
  [[nodiscard]] bool reached(NodeId v) const { return reached_[v] != 0; }

 private:
  bool started_{false};
  std::vector<std::uint8_t> reached_;
};

TEST(Network, PingTravelsOneHopPerRound) {
  const Graph g = make_path(6);
  Network net{g};
  PingProtocol ping{g};
  const auto rounds = net.run(ping);
  // Node 5 is 5 hops away: send in round 1, arrive in round 6.
  EXPECT_EQ(rounds, 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_TRUE(ping.reached(v));
  // One forward per hop; endpoints never echo back toward the arrival port.
  EXPECT_EQ(net.stats().messages, 5u);
}

/// A protocol that illegally sends twice on one port.
class DoubleSend final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "double_send"; }
  void round(NodeId v, Mailbox& mb) override {
    if (v == 0) {
      mb.send(0, Message::make(1, {1}));
      mb.send(0, Message::make(1, {2}));
    }
  }
  [[nodiscard]] bool local_done(NodeId) const override { return true; }
};

TEST(Network, RejectsTwoMessagesPerEdgePerRound) {
  const Graph g = make_path(2);
  Network net{g};
  DoubleSend p;
  EXPECT_THROW(net.run(p), PreconditionError);
}

/// A protocol that sends an oversized message.
class FatSend final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "fat_send"; }
  void round(NodeId v, Mailbox& mb) override {
    if (v == 0 && !sent_) {
      sent_ = true;
      Message m;
      m.tag = 1;
      m.size = kMaxWords + 1;
      mb.send(0, m);
    }
  }
  [[nodiscard]] bool local_done(NodeId) const override { return true; }
  bool sent_{false};
};

TEST(Network, RejectsOversizedMessage) {
  const Graph g = make_path(2);
  Network net{g};
  FatSend p;
  EXPECT_THROW(net.run(p), PreconditionError);
}

/// Never-terminating protocol to exercise the round limit.
class Chatter final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "chatter"; }
  void round(NodeId v, Mailbox& mb) override {
    if (v == 0) mb.send(0, Message::make(1, {0}));
  }
  [[nodiscard]] bool local_done(NodeId) const override { return false; }
};

TEST(Network, RoundLimitGuardsDeadlock) {
  const Graph g = make_path(2);
  Network net{g};
  Chatter p;
  EXPECT_THROW(net.run(p, 50), InvariantError);
}

/// Idle protocol: quiescent immediately.
class Idle final : public Protocol {
 public:
  [[nodiscard]] std::string name() const override { return "idle"; }
  void round(NodeId, Mailbox&) override {}
  [[nodiscard]] bool local_done(NodeId) const override { return true; }
};

TEST(Network, IdleProtocolTakesOneRound) {
  const Graph g = make_cycle(4);
  Network net{g};
  Idle p;
  EXPECT_EQ(net.run(p), 1u);
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().max_messages_edge_round, 0u);
}

TEST(Network, StatsAccumulateAcrossRuns) {
  const Graph g = make_path(4);
  Network net{g};
  PingProtocol a{g};
  net.run(a);
  const auto msgs_after_first = net.stats().messages;
  PingProtocol b{g};
  net.run(b);
  EXPECT_GT(net.stats().messages, msgs_after_first);
  EXPECT_EQ(net.stats().per_protocol.size(), 2u);
  EXPECT_EQ(net.stats().per_protocol[0].name, "ping");
}

TEST(Schedule, BarrierChargesTwoHeightPlusThree) {
  const Graph g = make_path(4);
  Network net{g};
  Schedule sched{net};
  sched.set_barrier_height(3);
  Idle p;
  sched.run(p);
  EXPECT_EQ(net.stats().barrier_rounds, 2u * 3 + 3);
  EXPECT_EQ(net.stats().total_rounds(), net.stats().rounds + 9);
}

TEST(Schedule, RefusesChargeWithoutHeight) {
  const Graph g = make_path(3);
  Network net{g};
  Schedule sched{net};
  EXPECT_THROW(sched.charge_barrier(), PreconditionError);
  Idle p;
  EXPECT_NO_THROW(sched.run_uncharged(p));
}

TEST(MessageMake, PacksWords) {
  const Message m = Message::make(7, {1, 2, 3});
  EXPECT_EQ(m.tag, 7u);
  EXPECT_EQ(m.size, 3);
  EXPECT_EQ(m.at(0), 1u);
  EXPECT_EQ(m.at(2), 3u);
  EXPECT_THROW((void)m.at(3), PreconditionError);
}

}  // namespace
}  // namespace dmc
