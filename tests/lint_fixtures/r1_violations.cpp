// Fixture: planted R1 violations.  test_lint loads this file under the
// virtual path "src/fixtures/r1_violations.cpp" so the determinism scope
// applies.  NOT compiled — this directory is excluded from the build and
// from dmc_lint's own scan.
#include <chrono>
#include <cstdlib>
#include <unordered_map>  // line 7: banned container include

void planted() {
  int x = rand();                                // line 10: banned RNG
  std::srand(42);                                // line 11: banned RNG
  auto t0 = std::chrono::steady_clock::now();    // line 12: wall clock
  long now = time(nullptr);                      // line 13: time() call
  std::unordered_map<int, int> m;                // line 14: hash container
  (void)x; (void)t0; (void)now; (void)m;
}

struct Session;

long fine(const Session& s, const Session* p) {
  // Member access: s.time() and p->time() must NOT fire (the rule only
  // flags the global wall-clock time()).  Never compiled, so the members
  // need no declaration.
  return s.time() + p->time();
}

void quoted() {
  // Banned tokens inside comments and string literals must NOT fire:
  // rand(), steady_clock, unordered_map.
  const char* msg = "call rand() and read steady_clock";
  (void)msg;
}
