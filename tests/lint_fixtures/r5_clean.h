// Fixture: conforming header — R5 must stay quiet.  Loaded as
// "src/fixtures/r5_clean.h".  The quoted include resolves under the real
// repo's src/ tree; system includes are not checked.
#pragma once

#include <vector>

#include "util/checked.h"

inline int fixture_clean_value() { return 7; }
