// Fixture: planted R2 violations.  Loaded as "src/fixtures/r2_violations.cpp".
// The class bodies only need to LOOK like protocol code to the token-level
// rule; they are never compiled.
#include <cstdint>

struct Protocol {};
enum class SchedulingKind { kDense, kEventDriven };
enum class FaultMask : std::uint32_t { kNone = 0, kTolerateCrash = 1 };

// line 11: missing scheduling() AND fault_tolerance() — two findings.
class BrokenBoth : public Protocol {
 public:
  void round() {}
};

// Missing only fault_tolerance().
class BrokenFault : public Protocol {
 public:
  SchedulingKind scheduling() const { return SchedulingKind::kDense; }
};

// Declares crash tolerance but never overrides on_crash_restart.
class BrokenCrash : public Protocol {
 public:
  SchedulingKind scheduling() const { return SchedulingKind::kDense; }
  std::uint32_t fault_tolerance() const {
    return static_cast<std::uint32_t>(FaultMask::kTolerateCrash);
  }
};

// Fully conforming — no finding.
class GoodProtocol : public dmc::Protocol {
 public:
  SchedulingKind scheduling() const { return SchedulingKind::kEventDriven; }
  std::uint32_t fault_tolerance() const {
    return static_cast<std::uint32_t>(FaultMask::kTolerateCrash);
  }
  void on_crash_restart(int v) { (void)v; }
};

// Not a protocol at all — R2 must ignore it.
class Unrelated {
 public:
  int helper() const { return 1; }
};

// Forward declaration with no body — must not trip the brace matcher.
class ForwardProtocol;
