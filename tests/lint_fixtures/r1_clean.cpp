// Fixture: conforming counterpart to r1_violations.cpp — R1 must stay
// quiet over this file when it is loaded under a src/ virtual path.
#include <map>
#include <set>
#include <vector>

struct Prng {
  unsigned long state{0x9e3779b97f4a7c15ull};
  unsigned long next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

int deterministic() {
  Prng rng;
  std::map<int, int> ordered;
  std::set<int> keys;
  ordered[static_cast<int>(rng.next() % 100)] = 1;
  keys.insert(3);
  // The words "random" and "timer" as identifier substrings are fine;
  // only the exact banned tokens fire.
  int random_budget = 5;
  int timer_rounds = 2;
  return random_budget + timer_rounds + static_cast<int>(ordered.size()) +
         static_cast<int>(keys.size());
}
