// Fixture: suppression-comment semantics.  Loaded as
// "src/fixtures/suppressions.cpp".
#include <cstdlib>

void cases() {
  // dmc-lint: allow(R1) -- fixture: suppression on the line above covers
  int a = rand();  // <- suppressed (previous-line form)

  int b = rand();  // dmc-lint: allow(R1) -- fixture: same-line form

  int c = rand();  // line 11: NOT suppressed — real finding

  // dmc-lint: allow(R4) -- fixture: wrong rule, does not cover R1
  int d = rand();  // line 14: NOT suppressed (rule mismatch)

  // dmc-lint: allow(R1)
  int e = rand();  // line 17: reason missing above -> malformed + finding

  // dmc-lint: disallow(R1) -- line 19: unknown directive -> malformed

  (void)a; (void)b; (void)c; (void)d; (void)e;
}
