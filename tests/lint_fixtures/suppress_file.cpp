// Fixture: whole-file suppression.  Loaded as
// "src/fixtures/suppress_file.cpp".
// dmc-lint: allow-file(R1) -- fixture: file-wide exemption covers all R1
#include <cstdlib>

void all_covered() {
  int a = rand();
  int b = rand();
  (void)a; (void)b;
}
