// Fixture: planted R5 violations.  Loaded as "src/fixtures/r5_violations.h".
// Deliberately has NO #pragma once (finding at line 1) and two bad
// includes.
#include "../util/assert.h"
#include "no/such/header.h"
#include "util/checked.h"

inline int fixture_value() { return 42; }
