// Fixture: planted R4 violations.  Loaded as "src/fixtures/r4_violations.cpp".
#include <string>

struct InvariantError {
  explicit InvariantError(std::string m) : msg(std::move(m)) {}
  std::string msg;
};
struct PreconditionError {
  explicit PreconditionError(std::string m) : msg(std::move(m)) {}
  std::string msg;
};

void planted(int v) {
  if (v == 1) throw InvariantError{"overflow"};        // line 14: bare word
  if (v == 2) throw PreconditionError("bad");          // line 15: bare word
  if (v == 3)
    throw InvariantError{                              // line 17: bare word
        "corrupt"};
}

void conforming(int v, const std::string& ctx) {
  // Multi-word literals and built messages carry context — no finding.
  if (v == 4) throw InvariantError{"subtree sum overflowed at root"};
  if (v == 5) throw PreconditionError("graph is empty: " + ctx);
  if (v == 6) throw InvariantError{std::string("node ") + ctx};
}
