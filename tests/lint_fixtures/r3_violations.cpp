// Fixture: planted R3 violations.  Loaded as "src/core/subtree_sums.cpp"
// (one of the audited accumulation sites) so the rule's file filter
// applies.
#include <cstdint>
#include <vector>

using Weight = std::int64_t;

Weight planted_sum(const std::vector<Weight>& ws) {
  Weight total = 0;
  for (const Weight w : ws) {
    total += w;          // line 12: raw += on a Weight accumulator
  }
  Weight twice = 0;
  twice = twice + total;  // line 15: raw self-add
  return twice;
}

Weight checked_sum(const std::vector<Weight>& ws) {
  Weight total = 0;
  for (const Weight w : ws) {
    total = checked_add(total, w);  // routed through util/checked.h — OK
  }
  // Raw arithmetic on non-Weight locals must NOT fire.
  int count = 0;
  count += 1;
  // Comparison is not assignment: must NOT fire.
  if (total == total + 0) count += 1;
  return total + count;
}
