// dmc_check end-to-end, as a subprocess — the replay contract the failure
// reports promise:
//
//   (1) a printed `--matrix --scenario --seed` coordinate replays to the
//       same result, run after run (determinism at the CLI boundary);
//   (2) cells that differ only in engine_threads report the same λ and
//       algorithm value (the engine-equivalence guarantee surviving the
//       whole tool pipeline);
//   (3) a passing cell exits 0; a failing cell exits nonzero — proven by
//       planting a lying oracle with --inject-failure rather than hoping
//       a real bug shows up.
//
// DMC_CHECK_BIN is injected by CMake as $<TARGET_FILE:dmc_check>.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <string>

#include "check/check.h"

namespace dmc::check {
namespace {

struct CliResult {
  int exit_code{-1};
  std::string output;  ///< stdout and stderr, interleaved
};

CliResult run_cli(const std::string& args) {
  const std::string cmd = std::string{DMC_CHECK_BIN} + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  CliResult r;
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0)
    r.output.append(buf.data(), got);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// The value of a `key=<digits>` token in the tool's "ok …" line.
std::string token(const std::string& output, const std::string& key) {
  const std::size_t at = output.find(key + "=");
  if (at == std::string::npos) return "<missing " + key + ">";
  std::size_t end = at + key.size() + 1;
  while (end < output.size() &&
         std::isdigit(static_cast<unsigned char>(output[end])) != 0)
    ++end;
  return output.substr(at, end - at);
}

std::string replay_args(std::uint64_t scenario, std::uint64_t seed) {
  // Shrinking and the metamorphic suite are orthogonal to the replay
  // contract and dominate the runtime; keep the subprocesses quick.
  return "--matrix=tier1 --scenario=" + std::to_string(scenario) +
         " --seed=" + std::to_string(seed) + " --metamorphic=0 --shrink=0";
}

TEST(DmcCheckCli, KnownGoodCellPassesAndReplaysIdentically) {
  const CliResult first = run_cli(replay_args(0, 1));
  EXPECT_EQ(first.exit_code, 0) << first.output;
  EXPECT_EQ(first.output.rfind("ok ", 0), 0u)
      << "expected an 'ok' line, got: " << first.output;

  const CliResult again = run_cli(replay_args(0, 1));
  EXPECT_EQ(again.exit_code, 0);
  EXPECT_EQ(first.output, again.output)
      << "replaying the same coordinate diverged";
}

TEST(DmcCheckCli, ReplayAgreesAcrossEngineThreads) {
  // Find two tier-1 cells identical except for engine_threads, without
  // hard-coding the matrix layout.
  const ScenarioMatrix& matrix = ScenarioMatrix::tier1();
  std::uint64_t base_id = 0, variant_id = 0;
  bool found = false;
  for (std::uint64_t a = 0; a < matrix.size() && !found; ++a) {
    const Scenario sa = matrix.decode(a);
    for (std::uint64_t b = a + 1; b < matrix.size() && !found; ++b) {
      const Scenario sb = matrix.decode(b);
      if (sa.family == sb.family && sa.n == sb.n && sa.regime == sb.regime &&
          sa.algo == sb.algo && sa.scheduling == sb.scheduling &&
          sa.engine_threads != sb.engine_threads) {
        base_id = a;
        variant_id = b;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "tier1 matrix no longer varies engine_threads";

  const CliResult base = run_cli(replay_args(base_id, 1));
  const CliResult variant = run_cli(replay_args(variant_id, 1));
  EXPECT_EQ(base.exit_code, 0) << base.output;
  EXPECT_EQ(variant.exit_code, 0) << variant.output;
  EXPECT_EQ(token(base.output, "lambda"), token(variant.output, "lambda"));
  EXPECT_EQ(token(base.output, "value"), token(variant.output, "value"));
}

TEST(DmcCheckCli, PlantedFailureCellExitsNonzero) {
  const CliResult planted =
      run_cli(replay_args(0, 1) + " --inject-failure=1");
  EXPECT_EQ(planted.exit_code, 1) << planted.output;
  EXPECT_NE(planted.output.find("planted_liar"), std::string::npos)
      << "failure report does not name the dissenting oracle: "
      << planted.output;
  EXPECT_NE(planted.output.find("replay:"), std::string::npos)
      << "failure report lacks the replay line: " << planted.output;
}

TEST(DmcCheckCli, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cli("--matrix=warp").exit_code, 2);
  EXPECT_EQ(run_cli("--no-such-flag=1").exit_code, 2);
}

}  // namespace
}  // namespace dmc::check
