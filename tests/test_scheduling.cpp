// Scheduling equivalence: event-driven sparse execution must be
// observably identical to the dense reference sweep — same protocol
// results, same round/message/word/congestion statistics — for every
// migrated protocol, under every engine and thread count.  The ONLY stat
// allowed to change is node_steps, which is the point: Σ_r active(r)
// instead of rounds·n (DESIGN.md "Sparse scheduling").
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "congest/network.h"
#include "congest/primitives/aggregate_broadcast.h"
#include "congest/primitives/barrier.h"
#include "congest/primitives/convergecast.h"
#include "congest/primitives/downcast.h"
#include "congest/primitives/leader_bfs.h"
#include "congest/primitives/pairwise_exchange.h"
#include "congest/schedule.h"
#include "core/cut_verify.h"
#include "core/exact_mincut.h"
#include "core/skeleton_dist.h"
#include "graph/generators.h"

namespace dmc {
namespace {

/// Engine configurations under test: 0 = the sequential reference engine,
/// k ≥ 1 = the sharded engine with k threads.
constexpr unsigned kEngines[] = {0u, 1u, 2u, 8u};

std::unique_ptr<Engine> make_test_engine(unsigned cfg) {
  return cfg == 0 ? make_sequential_engine() : make_sharded_engine(cfg);
}

std::string engine_label(unsigned cfg) {
  return cfg == 0 ? "sequential" : "sharded(" + std::to_string(cfg) + ")";
}

struct RunOutput {
  std::string obs;  ///< serialized observable results
  CongestStats stats;
};

/// Runs `body(net, os)` on a fresh network with the given engine and
/// scheduling override; observables are whatever body streams into os.
template <typename Body>
RunOutput run_config(const Graph& g, unsigned engine_cfg,
                     std::optional<Scheduling> forced, Body&& body) {
  Network net{g, make_test_engine(engine_cfg)};
  net.force_scheduling(forced);
  std::ostringstream os;
  body(net, os);
  return RunOutput{os.str(), net.stats()};
}

/// The equivalence matrix for one protocol scenario: every {Dense,
/// EventDriven} × engine cell must match the Dense/sequential baseline on
/// observables and on stats-modulo-node_steps; cells within one mode must
/// match that mode's sequential run EXACTLY (node_steps included); and
/// event-driven must never execute more node-steps than dense.
template <typename Body>
void expect_scheduling_equivalence(const char* what, const Graph& g,
                                   Body&& body) {
  const RunOutput dense_seq =
      run_config(g, 0, Scheduling::kDense, body);
  const RunOutput event_seq =
      run_config(g, 0, Scheduling::kEventDriven, body);

  EXPECT_EQ(event_seq.obs, dense_seq.obs) << what;
  EXPECT_TRUE(event_seq.stats.without_node_steps() ==
              dense_seq.stats.without_node_steps())
      << what << ": stats (mod node_steps) diverged across modes";
  EXPECT_LE(event_seq.stats.node_steps, dense_seq.stats.node_steps)
      << what << ": event-driven ran MORE node-steps than dense";

  for (const Scheduling mode :
       {Scheduling::kDense, Scheduling::kEventDriven}) {
    const RunOutput& mode_seq =
        mode == Scheduling::kDense ? dense_seq : event_seq;
    for (const unsigned cfg : kEngines) {
      if (cfg == 0) continue;  // the baselines above
      const RunOutput r = run_config(g, cfg, mode, body);
      const char* mode_name =
          mode == Scheduling::kDense ? "dense" : "event";
      EXPECT_EQ(r.obs, mode_seq.obs)
          << what << " [" << mode_name << ", " << engine_label(cfg) << "]";
      EXPECT_TRUE(r.stats == mode_seq.stats)
          << what << " [" << mode_name << ", " << engine_label(cfg)
          << "]: stats diverged from the mode's sequential run";
    }
  }
}

/// A BFS TreeView computed once, outside the networks under test.
TreeView bfs_tree(const Graph& g) {
  Network net{g};
  LeaderBfsProtocol lb{g};
  net.run(lb);
  return lb.tree_view(g);
}

void print_cvalue(std::ostream& os, const CValue& c) {
  os << '(' << c.w0 << ',' << c.w1 << ')';
}

void print_items(std::ostream& os, const std::vector<AggItem>& items) {
  os << '[';
  for (const AggItem& it : items)
    os << it.key << ':' << it.p[0] << ',' << it.p[1] << ',' << it.p[2]
       << ';';
  os << ']';
}

// ---------------------------------------------------------------------
// Per-primitive scenarios.
// ---------------------------------------------------------------------

TEST(SchedulingEquivalence, LeaderBfs) {
  const Graph graphs[] = {
      make_path(33),
      make_barbell(20, 3, 1, 7),
      make_planted_cut(36, 0.4, 4, 1, 13),
  };
  for (const Graph& g : graphs) {
    expect_scheduling_equivalence(
        "leader_bfs", g, [](Network& net, std::ostream& os) {
          LeaderBfsProtocol lb{net.graph()};
          net.run(lb);
          os << "leader=" << lb.leader() << ';';
          for (NodeId v = 0; v < net.num_nodes(); ++v)
            os << lb.depth(v) << ',';
          const TreeView tv = lb.tree_view(net.graph());
          for (NodeId v = 0; v < net.num_nodes(); ++v)
            os << (tv.is_root(v) ? -1 : static_cast<int>(tv.parent_port(v)))
               << ';';
        });
    expect_scheduling_equivalence(
        "rooted_bfs", g, [](Network& net, std::ostream& os) {
          LeaderBfsProtocol lb{net.graph(), /*root=*/3};
          net.run(lb);
          for (NodeId v = 0; v < net.num_nodes(); ++v)
            os << lb.depth(v) << ',';
        });
  }
}

TEST(SchedulingEquivalence, Convergecast) {
  const Graph g = make_planted_cut(40, 0.45, 3, 1, 5);
  const TreeView tv = bfs_tree(g);
  for (const bool broadcast : {false, true}) {
    expect_scheduling_equivalence(
        "convergecast", g, [&](Network& net, std::ostream& os) {
          std::vector<CValue> init(net.num_nodes());
          for (NodeId v = 0; v < net.num_nodes(); ++v)
            init[v] = CValue{Word{v} + 1, Word{v} % 5};
          ConvergecastProtocol cc{net.graph(), tv, CombineOp::kSum,
                                  std::move(init), broadcast};
          net.run(cc);
          for (NodeId v = 0; v < net.num_nodes(); ++v) {
            print_cvalue(os, cc.subtree_value(v));
            if (broadcast) print_cvalue(os, cc.tree_value(v));
          }
        });
  }
}

TEST(SchedulingEquivalence, PipelinedDowncast) {
  const Graph g = make_barbell(24, 4, 1, 11);
  const TreeView tv = bfs_tree(g);
  expect_scheduling_equivalence(
      "downcast", g, [&](Network& net, std::ostream& os) {
        const std::size_t n = net.num_nodes();
        // Several items per originating node so relay queues pipeline.
        std::vector<std::vector<DownItem>> originated(n);
        for (NodeId v = 0; v < n; v += 5)
          for (Word i = 0; i < 3; ++i)
            originated[v].push_back(DownItem{{Word{v}, i, Word{v} + i, 0}});
        std::vector<std::vector<Word>> got(n);
        PipelinedDowncastProtocol dc{
            net.graph(), tv, std::move(originated),
            [&](NodeId v, const DownItem& it) {
              got[v].push_back(it.w[0] * 1000 + it.w[1]);
              return true;
            }};
        net.run(dc);
        for (NodeId v = 0; v < n; ++v) {
          for (const Word w : got[v]) os << w << ',';
          os << ';';
        }
      });
}

TEST(SchedulingEquivalence, AggregateBroadcast) {
  const Graph g = make_planted_cut(32, 0.5, 3, 1, 17);
  const TreeView tv = bfs_tree(g);
  const AggOptions configs[] = {
      {AggOp::kSum, /*deliver_all=*/true, /*tap=*/false, /*absorb=*/false},
      {AggOp::kMin, /*deliver_all=*/false, /*tap=*/true, /*absorb=*/false},
      {AggOp::kSum, /*deliver_all=*/true, /*tap=*/true, /*absorb=*/true},
  };
  for (const AggOptions& opt : configs) {
    expect_scheduling_equivalence(
        "agg_broadcast", g, [&](Network& net, std::ostream& os) {
          const std::size_t n = net.num_nodes();
          std::vector<std::vector<AggItem>> contrib(n);
          for (NodeId v = 0; v < n; ++v) {
            contrib[v].push_back(
                AggItem{Word{v} % 9, {Word{v}, 1, 0}});
            if (v % 3 == 0)
              contrib[v].push_back(
                  AggItem{Word{(v * 7) % n}, {2, Word{v}, 0}});
          }
          AggregateBroadcastProtocol bc{net.graph(), tv, opt,
                                        std::move(contrib)};
          net.run(bc);
          for (NodeId v = 0; v < n; ++v) {
            print_items(os, bc.items(v));
            if (opt.tap) print_items(os, bc.tapped(v));
            if (opt.absorb) print_items(os, bc.absorbed(v));
          }
        });
  }
}

TEST(SchedulingEquivalence, Barrier) {
  const Graph g = make_random_regular(42, 4, 23);
  const TreeView tv = bfs_tree(g);
  expect_scheduling_equivalence(
      "barrier", g, [&](Network& net, std::ostream& os) {
        BarrierProtocol b{net.graph(), tv};
        net.run(b);
        for (NodeId v = 0; v < net.num_nodes(); ++v)
          os << (b.released(v) ? 1 : 0);
      });
}

TEST(SchedulingEquivalence, PairwiseExchange) {
  const Graph g = make_planted_cut(28, 0.5, 2, 1, 29);
  expect_scheduling_equivalence(
      "pairwise_exchange", g, [&](Network& net, std::ostream& os) {
        const Graph& gg = net.graph();
        const std::size_t n = gg.num_nodes();
        std::vector<std::vector<std::vector<Word>>> outgoing(n);
        for (NodeId v = 0; v < n; ++v) {
          outgoing[v].resize(gg.degree(v));
          for (std::uint32_t p = 0; p < gg.degree(v); ++p)
            for (Word i = 0; i < (Word{v} + p) % 4; ++i)
              outgoing[v][p].push_back(Word{v} * 100 + p * 10 + i);
        }
        PairwiseExchangeProtocol px{gg, std::move(outgoing)};
        net.run(px);
        for (NodeId v = 0; v < n; ++v)
          for (std::uint32_t p = 0; p < gg.degree(v); ++p) {
            for (const Word w : px.received(v, p)) os << w << ',';
            os << ';';
          }
      });
}

// Covers MaskedFlood and SideExchange (plus convergecast in anger).
TEST(SchedulingEquivalence, SkeletonFloodAndCutVerify) {
  const Graph g = make_planted_cut(30, 0.5, 3, 1, 31);
  const TreeView tv = bfs_tree(g);
  expect_scheduling_equivalence(
      "skeleton+cut_verify", g, [&](Network& net, std::ostream& os) {
        Schedule sched{net};
        sched.set_barrier_height(tv.height(net.graph()));
        const DistSkeleton sk =
            sample_skeleton_dist(net.graph(), 0.7, /*seed=*/77);
        os << "conn="
           << skeleton_connected_dist(sched, tv, /*leader=*/0, sk.enabled)
           << ';';
        std::vector<bool> side(net.num_nodes());
        for (NodeId v = 0; v < net.num_nodes(); ++v) side[v] = v % 3 == 0;
        os << "cut=" << verify_cut_dist(sched, tv, side);
      });
}

// ---------------------------------------------------------------------
// The full pipeline: GHS merge protocols, orientation floods, subtree
// sums, merging nodes, 1-respect — everything at once, across scheduling
// modes and thread counts.
// ---------------------------------------------------------------------

TEST(SchedulingEquivalence, ExactPipelineAcrossModesAndEngines) {
  const Graph g = make_planted_cut(40, 0.4, 4, 1, 13);
  const auto run = [&](std::optional<Scheduling> sched, unsigned threads) {
    ExactMinCutOptions opt;
    opt.max_trees = 5;
    opt.patience = 2;
    opt.engine_threads = threads;
    opt.scheduling = sched;
    return exact_min_cut_dist(g, opt);
  };
  const DistMinCutResult dense = run(Scheduling::kDense, 1);
  // nullopt exercises the per-protocol declarations (all event-driven).
  for (const auto& sched :
       {std::optional<Scheduling>{Scheduling::kEventDriven},
        std::optional<Scheduling>{}}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const DistMinCutResult ev = run(sched, threads);
      EXPECT_EQ(ev.value, dense.value);
      EXPECT_EQ(ev.v_star, dense.v_star);
      EXPECT_EQ(ev.side, dense.side);
      EXPECT_EQ(ev.trees_packed, dense.trees_packed);
      EXPECT_EQ(ev.tree_of_best, dense.tree_of_best);
      EXPECT_EQ(ev.fragments, dense.fragments);
      EXPECT_TRUE(ev.stats.without_node_steps() ==
                  dense.stats.without_node_steps())
          << "stats (mod node_steps) diverged at " << threads << " threads";
      EXPECT_LE(ev.stats.node_steps, dense.stats.node_steps);
    }
  }
  // The pipeline is frontier-shaped almost everywhere; demand a real win,
  // not just parity.
  const DistMinCutResult ev = run(std::nullopt, 1);
  EXPECT_LT(ev.stats.node_steps * 2, dense.stats.node_steps)
      << "event-driven saved less than half the node-steps";
}

// ---------------------------------------------------------------------
// The asymptotic claim: a rooted BFS wave on a path is Θ(n²) node-steps
// dense and Θ(n) event-driven.
// ---------------------------------------------------------------------

std::uint64_t path_bfs_node_steps(const Graph& g,
                                  std::optional<Scheduling> forced,
                                  unsigned engine_cfg = 0) {
  Network net{g, make_test_engine(engine_cfg)};
  net.force_scheduling(forced);
  LeaderBfsProtocol lb{net.graph(), /*root=*/0};
  net.run(lb);
  // Sanity: the wave reached the far end with exact distances.
  EXPECT_EQ(lb.depth(static_cast<NodeId>(g.num_nodes() - 1)),
            g.num_nodes() - 1);
  return net.stats().node_steps;
}

TEST(SchedulingNodeSteps, PathBfs1024IsLinearNotQuadratic) {
  const std::size_t n = 1024;
  const Graph g = make_path(n);
  const std::uint64_t dense = path_bfs_node_steps(g, Scheduling::kDense);
  const std::uint64_t event = path_bfs_node_steps(g, std::nullopt);
  EXPECT_GE(dense, static_cast<std::uint64_t>(n) * n / 2)
      << "dense should pay ~rounds·n";
  EXPECT_LE(event, 8 * n) << "event-driven must be O(n), not O(n²)";
}

TEST(SchedulingNodeSteps, AcceptancePathBfs4096TenfoldDrop) {
  const std::size_t n = 4096;
  const Graph g = make_path(n);
  const std::uint64_t dense = path_bfs_node_steps(g, Scheduling::kDense);
  const std::uint64_t event = path_bfs_node_steps(g, std::nullopt);
  EXPECT_GE(dense, 10 * event)
      << "acceptance: ≥10× node-step drop under event-driven";
  // Bit-identical results and stats (mod node_steps) across modes and
  // thread counts, on the acceptance instance itself.
  const auto observe = [&](std::optional<Scheduling> forced, unsigned cfg) {
    Network net{g, make_test_engine(cfg)};
    net.force_scheduling(forced);
    LeaderBfsProtocol lb{net.graph(), /*root=*/0};
    net.run(lb);
    std::ostringstream os;
    for (NodeId v = 0; v < net.num_nodes(); ++v) os << lb.depth(v) << ',';
    return std::pair{os.str(), net.stats()};
  };
  const auto [obs_dense, stats_dense] = observe(Scheduling::kDense, 0);
  for (const unsigned cfg : kEngines) {
    const auto [obs_ev, stats_ev] = observe(std::nullopt, cfg);
    EXPECT_EQ(obs_ev, obs_dense) << engine_label(cfg);
    EXPECT_TRUE(stats_ev.without_node_steps() ==
                stats_dense.without_node_steps())
        << engine_label(cfg);
    EXPECT_EQ(stats_ev.node_steps, event) << engine_label(cfg)
        << ": active sets must be engine-independent";
  }
}

// A protocol that mis-declares event-driven (needs a wake it never
// requests) must hit the deadlock guard instead of silently mis-running.
TEST(SchedulingNodeSteps, MisdeclaredProtocolHitsDeadlockGuard) {
  class NeedsWake final : public Protocol {
   public:
    [[nodiscard]] std::string name() const override { return "needs_wake"; }
    void round(NodeId v, Mailbox& mb) override {
      // Node 0 wants to send in round 3 but never requests a wake and
      // receives nothing — under event-driven it never executes again.
      if (v == 0 && ++steps_ == 3) mb.send(0, Message::make(1, {1}));
    }
    [[nodiscard]] bool local_done(NodeId v) const override {
      return v != 0 || steps_ >= 3;
    }
    [[nodiscard]] Scheduling scheduling() const override {
      return Scheduling::kEventDriven;
    }

   private:
    int steps_{0};
  };
  const Graph g = make_path(4);
  Network net{g};
  NeedsWake p;
  EXPECT_THROW(net.run(p, /*max_rounds=*/64), InvariantError);
}

}  // namespace
}  // namespace dmc
