// White-box verification of Step 2 (A(v), Attach/F(v), L(v)) and Step 4
// (merging nodes, T'_F) against the RootedTree oracle.
#include <gtest/gtest.h>

#include <set>

#include "congest/primitives/leader_bfs.h"
#include "core/ancestors.h"
#include "core/merging_nodes.h"
#include "dist/ghs_mst.h"
#include "dist/tree_partition.h"
#include "graph/generators.h"
#include "graph/tree.h"

namespace dmc {
namespace {

struct Pipeline {
  Network net;
  Schedule sched;
  TreeView bfs;
  NodeId leader{kNoNode};
  DistMstResult mst;
  FragmentStructure fs;

  explicit Pipeline(const Graph& g, std::size_t freeze = 0)
      : net(g), sched(net) {
    LeaderBfsProtocol lb{g};
    sched.run_uncharged(lb);
    bfs = lb.tree_view(g);
    leader = lb.leader();
    sched.set_barrier_height(bfs.height(g));
    sched.charge_barrier();
    mst = ghs_mst(sched, bfs, weight_keys(g), freeze);
    fs = build_fragment_structure(sched, bfs, leader, mst);
  }

  [[nodiscard]] RootedTree rooted(const Graph& g) const {
    std::vector<EdgeId> tree;
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (mst.tree_edge[e]) tree.push_back(e);
    return RootedTree::from_edges(g, tree, leader);
  }
};

/// Oracle for F(v): fragments whose every member lies in v↓.
std::set<std::uint32_t> oracle_f_of(const RootedTree& t,
                                    const FragmentStructure& fs, NodeId v) {
  std::set<std::uint32_t> out;
  for (std::uint32_t f = 0; f < fs.k; ++f) {
    if (f == fs.frag_idx[v] && !fs.is_frag_root(v)) continue;
    bool all_inside = true;
    for (NodeId u = 0; u < t.num_nodes(); ++u)
      if (fs.frag_idx[u] == f && !t.is_ancestor(v, u)) {
        all_inside = false;
        break;
      }
    if (all_inside && f != fs.frag_idx[v]) out.insert(f);
  }
  return out;
}

void check_step2(const Graph& g, std::size_t freeze = 0) {
  Pipeline p{g, freeze};
  const RootedTree t = p.rooted(g);
  const AncestorData ad = compute_ancestors(p.sched, p.fs);

  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // --- own-fragment chain: exactly the tree ancestors sharing v's
    // fragment, ordered shallow → deep ---
    std::vector<NodeId> expect_own;
    for (NodeId u = t.parent(v); u != kNoNode; u = t.parent(u))
      if (p.fs.frag_idx[u] == p.fs.frag_idx[v]) expect_own.push_back(u);
    std::reverse(expect_own.begin(), expect_own.end());
    ASSERT_EQ(ad.own_chain(v).size(), expect_own.size()) << "node " << v;
    for (std::size_t i = 0; i < expect_own.size(); ++i)
      EXPECT_EQ(ad.own_chain(v)[i], expect_own[i]) << "node " << v;

    // --- parent-fragment chain ---
    const std::uint32_t pf = p.fs.frag_parent[p.fs.frag_idx[v]];
    std::vector<NodeId> expect_parent;
    if (pf != kNoFrag) {
      for (NodeId u = t.parent(v); u != kNoNode; u = t.parent(u))
        if (p.fs.frag_idx[u] == pf) expect_parent.push_back(u);
      std::reverse(expect_parent.begin(), expect_parent.end());
    }
    ASSERT_EQ(ad.parent_chain(v).size(), expect_parent.size())
        << "node " << v;
    for (std::size_t i = 0; i < expect_parent.size(); ++i)
      EXPECT_EQ(ad.parent_chain(v)[i], expect_parent[i]);

    // --- F(v) = closure(Attach(v)) vs brute-force containment ---
    const auto closure = p.fs.closure(ad.attach[v]);
    const auto want = oracle_f_of(t, p.fs, v);
    EXPECT_EQ(std::set<std::uint32_t>(closure.begin(), closure.end()), want)
        << "F(v) mismatch at node " << v;

    // --- L(v): for every fragment F' it reports the LOWEST ancestor-or-
    // self u with F' ∈ F(u); verify each claimed entry and the needed
    // existence cases ---
    for (const auto& [f_prime, u] : ad.lowest_entries(v)) {
      EXPECT_TRUE(u == v || t.is_ancestor(u, v));
      const auto fu = oracle_f_of(t, p.fs, u);
      EXPECT_TRUE(fu.count(f_prime))
          << "claimed container is wrong: node " << v << " F' " << f_prime;
    }
  }
}

TEST(Step2, ErdosRenyi) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    check_step2(make_erdos_renyi(30, 0.2, seed, 1, 5));
}

TEST(Step2, GridAndTorus) {
  check_step2(make_grid(5, 5));
  check_step2(make_torus(4, 4));
}

TEST(Step2, TinyFragmentsStressScope) {
  check_step2(make_erdos_renyi(24, 0.25, 2), /*freeze=*/2);
  check_step2(make_cycle(18), /*freeze=*/3);
}

TEST(Step2, SingleFragment) {
  check_step2(make_path(8), /*freeze=*/100);
}

void check_step4(const Graph& g, std::size_t freeze = 0) {
  Pipeline p{g, freeze};
  const RootedTree t = p.rooted(g);
  const AncestorData ad = compute_ancestors(p.sched, p.fs);
  const TfPrime tfp = compute_merging_nodes(p.sched, p.bfs, p.fs, ad);

  // Oracle merging predicate: ≥ 2 children whose subtrees contain a whole
  // fragment.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint32_t branches = 0;
    for (const NodeId c : t.children(v)) {
      bool has_fragment = false;
      for (std::uint32_t f = 0; f < p.fs.k && !has_fragment; ++f) {
        const NodeId fr = p.fs.frag_root_node[f];
        if (t.is_ancestor(c, fr)) has_fragment = true;
      }
      if (has_fragment) ++branches;
    }
    EXPECT_EQ(tfp.is_merging[v] != 0, branches >= 2) << "node " << v;
  }

  // T'_F parents: lowest T'_F node strictly above in T.
  std::set<NodeId> members(tfp.nodes.begin(), tfp.nodes.end());
  for (const NodeId v : tfp.nodes) {
    NodeId want = kNoNode;
    for (NodeId u = t.parent(v); u != kNoNode; u = t.parent(u))
      if (members.count(u)) {
        want = u;
        break;
      }
    const auto it = tfp.parent.find(v);
    ASSERT_NE(it, tfp.parent.end());
    EXPECT_EQ(it->second, want) << "T'_F parent of " << v;
  }

  // a(v) = lowest T'_F ancestor-or-self.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeId want = kNoNode;
    for (NodeId u = v; u != kNoNode; u = t.parent(u))
      if (members.count(u)) {
        want = u;
        break;
      }
    EXPECT_EQ(tfp.lowest_tf[v], want) << "a(v) at node " << v;
  }

  // T'_F LCA vs tree LCA for random member pairs.
  const std::vector<NodeId> list(tfp.nodes.begin(), tfp.nodes.end());
  for (std::size_t i = 0; i < list.size(); ++i)
    for (std::size_t j = i; j < std::min(list.size(), i + 5); ++j) {
      const NodeId z = tfp.lca(list[i], list[j]);
      EXPECT_EQ(z, t.lca(list[i], list[j]))
          << "pair " << list[i] << "," << list[j];
    }
}

TEST(Step4, ErdosRenyi) {
  for (std::uint64_t seed = 0; seed < 4; ++seed)
    check_step4(make_erdos_renyi(30, 0.2, seed, 1, 5));
}

TEST(Step4, HighDiameter) {
  check_step4(make_path_of_cliques(5, 4));
  check_step4(make_cycle(20), /*freeze=*/3);
}

TEST(Step4, FragmentRootsAlwaysInTfPrime) {
  const Graph g = make_erdos_renyi(40, 0.15, 7);
  Pipeline p{g};
  const AncestorData ad = compute_ancestors(p.sched, p.fs);
  const TfPrime tfp = compute_merging_nodes(p.sched, p.bfs, p.fs, ad);
  for (std::uint32_t f = 0; f < p.fs.k; ++f)
    EXPECT_TRUE(tfp.contains(p.fs.frag_root_node[f]));
}

}  // namespace
}  // namespace dmc
