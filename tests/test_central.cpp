// Centralized minimum-cut oracles: Stoer–Wagner vs brute force, Karger–
// Stein, Matula (2+ε), MST, cut helpers — the ground truth everything else
// is checked against.
#include <gtest/gtest.h>

#include "central/karger_stein.h"
#include "central/matula.h"
#include "central/stoer_wagner.h"
#include "graph/cut.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "util/prng.h"

namespace dmc {
namespace {

TEST(CutHelpers, CutValueCountsCrossingWeights) {
  Graph g{4};
  g.add_edge(0, 1, 3);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 3, 7);
  g.add_edge(0, 3, 11);
  std::vector<bool> side{true, true, false, false};
  EXPECT_EQ(cut_value(g, side), 5u + 11u);
  EXPECT_TRUE(is_nontrivial(side));
  EXPECT_FALSE(is_nontrivial(std::vector<bool>(4, true)));
}

TEST(CutHelpers, BruteForceTriangle) {
  Graph g{3};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 3);
  const CutResult r = brute_force_min_cut(g);
  EXPECT_EQ(r.value, 3u);  // isolate node 1: 1+2
}

TEST(CutHelpers, MinDegreeCut) {
  const Graph g = make_star(5);
  const CutResult r = min_degree_cut(g);
  EXPECT_EQ(r.value, 1u);
  EXPECT_EQ(r.side_size(), 1u);
}

TEST(StoerWagner, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Graph g =
        make_erdos_renyi(10, 0.45, seed, /*min_w=*/1, /*max_w=*/8);
    const CutResult sw = stoer_wagner_min_cut(g);
    const CutResult bf = brute_force_min_cut(g);
    EXPECT_EQ(sw.value, bf.value) << "seed " << seed;
    EXPECT_EQ(cut_value(g, sw.side), sw.value) << "side must achieve value";
    EXPECT_TRUE(is_nontrivial(sw.side));
  }
}

TEST(StoerWagner, KnownFamilies) {
  EXPECT_EQ(stoer_wagner_min_cut(make_cycle(12)).value, 2u);
  EXPECT_EQ(stoer_wagner_min_cut(make_complete(7)).value, 6u);
  EXPECT_EQ(stoer_wagner_min_cut(make_path(8)).value, 1u);
  EXPECT_EQ(stoer_wagner_min_cut(make_hypercube(3)).value, 3u);
}

TEST(StoerWagner, WeightedPlantedCut) {
  const Graph g = make_barbell(16, 2, 3, 5);  // 2 bridges of weight 3
  EXPECT_EQ(stoer_wagner_min_cut(g).value, 6u);
}

TEST(StoerWagner, ParallelEdgesAccumulate) {
  Graph g{3};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 3);
  const CutResult r = stoer_wagner_min_cut(g);
  EXPECT_EQ(r.value, 2u);  // separate {0}
}

TEST(KargerStein, MatchesStoerWagner) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = make_erdos_renyi(24, 0.3, seed, 1, 4);
    const CutResult ks = karger_stein_min_cut(g, seed);
    const CutResult sw = stoer_wagner_min_cut(g);
    EXPECT_EQ(ks.value, sw.value) << "seed " << seed;
    EXPECT_EQ(cut_value(g, ks.side), ks.value);
  }
}

TEST(KargerStein, SingleContractionIsValidCut) {
  const Graph g = make_erdos_renyi(20, 0.3, 3);
  const CutResult r = karger_single_contraction(g, 1);
  EXPECT_TRUE(is_nontrivial(r.side));
  EXPECT_EQ(cut_value(g, r.side), r.value);
  EXPECT_GE(r.value, stoer_wagner_min_cut(g).value);
}

TEST(Matula, WithinFactorTwoPlusEps) {
  const double eps = 0.5;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = make_erdos_renyi(40, 0.2, seed, 1, 5);
    const MatulaResult m = matula_approx_min_cut(g, eps);
    const Weight lambda = stoer_wagner_min_cut(g).value;
    EXPECT_GE(m.value, lambda) << "seed " << seed;
    EXPECT_LE(static_cast<double>(m.value),
              (2.0 + eps) * static_cast<double>(lambda) + 1e-9)
        << "seed " << seed;
    EXPECT_EQ(cut_value(g, m.side), m.value);
  }
}

TEST(Matula, ExactOnTree) {
  Graph g{4};
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 9);
  const MatulaResult m = matula_approx_min_cut(g, 0.1);
  EXPECT_EQ(m.value, 2u);
}

TEST(NiCertificate, PreservesSmallCuts) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_erdos_renyi(20, 0.35, seed);
    const Weight lambda = stoer_wagner_min_cut(g).value;
    const std::vector<bool> keep = ni_certificate(g, lambda + 1);
    std::vector<EdgeId> back;
    const Graph h = g.edge_subgraph(keep, &back);
    EXPECT_EQ(stoer_wagner_min_cut(h).value, lambda) << "seed " << seed;
  }
}

TEST(Kruskal, MatchesPrimWeightOnCycle) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 0, 4);
  const auto tree = kruskal(g);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(edges_weight(g, tree), 6u);
}

TEST(Kruskal, LoadKeysChangeTree) {
  Graph g{3};
  const EdgeId a = g.add_edge(0, 1, 1);
  const EdgeId b = g.add_edge(1, 2, 1);
  const EdgeId c = g.add_edge(0, 2, 1);
  // With zero loads the id order picks {a, b}.
  std::vector<std::uint64_t> loads(3, 0);
  auto t1 = kruskal(g, load_keys(g, loads));
  EXPECT_EQ(t1, (std::vector<EdgeId>{a, b}));
  // Loading a pushes it last: {b, c}.
  loads[a] = 5;
  auto t2 = kruskal(g, load_keys(g, loads));
  EXPECT_EQ(t2, (std::vector<EdgeId>{b, c}));
}

TEST(Kruskal, ThrowsOnDisconnected) {
  Graph g{4};
  g.add_edge(0, 1, 1);
  g.add_edge(2, 3, 1);
  EXPECT_THROW(kruskal(g), PreconditionError);
}

TEST(SubtreeSide, MatchesAncestors) {
  const Graph g = make_path(5);
  std::vector<EdgeId> ids{0, 1, 2, 3};
  const RootedTree t = RootedTree::from_edges(g, ids, 0);
  const auto side = subtree_side(t, 2);
  EXPECT_FALSE(side[0]);
  EXPECT_FALSE(side[1]);
  EXPECT_TRUE(side[2]);
  EXPECT_TRUE(side[3]);
  EXPECT_TRUE(side[4]);
}

}  // namespace
}  // namespace dmc
