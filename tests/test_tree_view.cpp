// Direct TreeView, CongestStats, and file-IO coverage.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "congest/message.h"
#include "congest/stats.h"
#include "congest/tree_view.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace dmc {
namespace {

TEST(TreeView, PathOrientation) {
  const Graph g = make_path(5);
  // Root at node 2: 0←1←2→3→4.
  std::vector<std::uint32_t> pp(5, kNoPort);
  const auto port_to = [&](NodeId v, NodeId t) -> std::uint32_t {
    const auto ports = g.ports(v);
    for (std::uint32_t i = 0; i < ports.size(); ++i)
      if (ports[i].peer == t) return i;
    throw std::logic_error{"no port"};
  };
  pp[0] = port_to(0, 1);
  pp[1] = port_to(1, 2);
  pp[3] = port_to(3, 2);
  pp[4] = port_to(4, 3);
  const TreeView tv = TreeView::from_parent_ports(g, pp);
  EXPECT_TRUE(tv.is_root(2));
  EXPECT_FALSE(tv.is_root(1));
  EXPECT_EQ(tv.parent_node(g, 1), 2u);
  EXPECT_EQ(tv.parent_node(g, 4), 3u);
  EXPECT_EQ(tv.parent_node(g, 2), kNoNode);
  EXPECT_EQ(tv.children_ports(2).size(), 2u);
  EXPECT_EQ(tv.height(g), 2u);
  const auto d = tv.depths(g);
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[4], 2u);
}

TEST(TreeView, ForestWithIsolatedRoots) {
  Graph g{3};
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  // All roots: an edgeless forest view over a connected graph.
  const TreeView tv =
      TreeView::from_parent_ports(g, std::vector<std::uint32_t>(3, kNoPort));
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_TRUE(tv.is_root(v));
    EXPECT_TRUE(tv.children_ports(v).empty());
  }
  EXPECT_EQ(tv.height(g), 0u);
}

TEST(TreeView, RejectsWrongSizes) {
  const Graph g = make_path(3);
  EXPECT_THROW(
      (void)TreeView::from_parent_ports(g, std::vector<std::uint32_t>(2)),
      PreconditionError);
}

TEST(CongestStats, PrintContainsBreakdown) {
  CongestStats s;
  s.rounds = 10;
  s.barrier_rounds = 5;
  s.messages = 42;
  s.words = 99;
  s.max_words_per_message = 4;
  s.per_protocol.push_back(ProtocolStats{"alpha", 7, 30, 60});
  s.per_protocol.push_back(ProtocolStats{"beta", 3, 12, 39});
  std::ostringstream os;
  s.print(os);
  const std::string t = os.str();
  EXPECT_NE(t.find("rounds=10"), std::string::npos);
  EXPECT_NE(t.find("alpha"), std::string::npos);
  EXPECT_NE(t.find("beta"), std::string::npos);
  EXPECT_EQ(s.total_rounds(), 15u);
}

TEST(GraphIoFiles, SaveLoadRoundTrip) {
  const Graph g = make_erdos_renyi(20, 0.3, 5, 1, 9);
  const std::string path = "/tmp/dmc_io_test.graph";
  save_graph(path, g);
  const Graph h = load_graph(path);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
    EXPECT_EQ(h.edge(e).w, g.edge(e).w);
  }
  std::remove(path.c_str());
}

TEST(GraphIoFiles, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_graph("/tmp/definitely_not_here.graph"),
               PreconditionError);
}

TEST(MessageLimits, MakeRejectsTooManyWords) {
  EXPECT_THROW(
      (void)Message::make(1, {1, 2, 3, 4, 5, 6, 7}), PreconditionError);
  const Message m = Message::make(1, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.size, kMaxWords);
}

}  // namespace
}  // namespace dmc
