// Karger's 1-respect dynamic program (the centralized oracle for the
// paper's Theorem 2.1) — verified directly against explicit cut values.
#include <gtest/gtest.h>

#include "central/one_respect_dp.h"
#include "central/stoer_wagner.h"
#include "central/tree_packing.h"
#include "graph/cut.h"
#include "graph/generators.h"
#include "graph/mst.h"

namespace dmc {
namespace {

/// For every node v, C(v↓) from the DP must equal the explicit cut value of
/// the side {u : v ancestor of u}.
void check_all_nodes(const Graph& g, const RootedTree& t) {
  const OneRespectValues vals = one_respect_dp(g, t);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto side = subtree_side(t, v);
    EXPECT_EQ(vals.cut_down[v], cut_value(g, side)) << "node " << v;
  }
  // Root identity: C(root↓) = C(V) = 0.
  EXPECT_EQ(vals.cut_down[t.root()], 0u);
}

TEST(OneRespectDp, PathGraph) {
  const Graph g = make_path(6, 4);
  std::vector<EdgeId> ids{0, 1, 2, 3, 4};
  check_all_nodes(g, RootedTree::from_edges(g, ids, 0));
}

TEST(OneRespectDp, CycleWithChord) {
  Graph g{5};
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 4, 5);
  g.add_edge(4, 0, 6);
  g.add_edge(1, 3, 7);  // chord
  const auto tree = kruskal(g);
  check_all_nodes(g, RootedTree::from_edges(g, tree, 0));
}

TEST(OneRespectDp, RandomGraphsAllRootsAllNodes) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_erdos_renyi(24, 0.25, seed, 1, 9);
    const auto tree = kruskal(g);
    for (const NodeId root : {NodeId{0}, NodeId{5}, NodeId{23}})
      check_all_nodes(g, RootedTree::from_edges(g, tree, root));
  }
}

TEST(OneRespectDp, MinOverTreeUpperBoundsLambda) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_erdos_renyi(30, 0.2, seed, 1, 3);
    const auto tree = kruskal(g);
    const RootedTree t = RootedTree::from_edges(g, tree, 0);
    const OneRespectValues vals = one_respect_dp(g, t);
    NodeId arg = kNoNode;
    const Weight best = vals.min_cut(t, &arg);
    EXPECT_GE(best, stoer_wagner_min_cut(g).value);
    EXPECT_EQ(vals.cut_down[arg], best);
  }
}

TEST(OneRespectDp, RhoCountsLcaWeights) {
  //     0
  //    / .
  //   1   2    plus non-tree edge (1,2) of weight 10: LCA(1,2)=0.
  Graph g{3};
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 2, 10);
  std::vector<EdgeId> ids{0, 1};
  const RootedTree t = RootedTree::from_edges(g, ids, 0);
  const OneRespectValues vals = one_respect_dp(g, t);
  // ρ(0) = w(0,1) + w(0,2) + w(1,2) = 12; ρ(1) = ρ(2) = 0.
  EXPECT_EQ(vals.rho[0], 12u);
  EXPECT_EQ(vals.rho[1], 0u);
  EXPECT_EQ(vals.rho[2], 0u);
  // C(1↓) = δ(1) − 0 = 11.
  EXPECT_EQ(vals.cut_down[1], 11u);
}

TEST(GreedyTreePacking, FindsMinCutWithFewTrees) {
  // Thorup's theorem: some packed tree 1-respects the minimum cut.  On
  // benign families very few trees suffice — the property E5 quantifies.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = make_planted_cut(24, 0.8, 3, 1, seed);
    const Weight lambda = stoer_wagner_min_cut(g).value;
    ASSERT_EQ(lambda, 3u);
    GreedyTreePacking packing{g};
    Weight best = static_cast<Weight>(-1);
    for (int i = 0; i < 40 && best != lambda; ++i) {
      const auto& edges = packing.next_tree();
      const RootedTree t = RootedTree::from_edges(g, edges, 0);
      const OneRespectValues vals = one_respect_dp(g, t);
      best = std::min(best, vals.min_cut(t, nullptr));
    }
    EXPECT_EQ(best, lambda) << "seed " << seed;
  }
}

TEST(GreedyTreePacking, LoadsTrackUsage) {
  const Graph g = make_cycle(5);
  GreedyTreePacking packing{g};
  packing.next_tree();
  packing.next_tree();
  std::uint64_t total = 0;
  for (const auto l : packing.loads()) total += l;
  EXPECT_EQ(total, 2u * 4u);  // two trees, 4 edges each
  EXPECT_EQ(packing.num_trees(), 2u);
}

TEST(GreedyTreePacking, TreesRotateUnderLoad) {
  // On a cycle, consecutive greedy trees must avoid previously loaded
  // edges, so the excluded edge rotates.
  const Graph g = make_cycle(4);
  GreedyTreePacking packing{g};
  const auto t1 = packing.next_tree();
  const auto t2 = packing.next_tree();
  EXPECT_NE(t1, t2);
}

TEST(GreedyTreePacking, ThorupBoundIsHuge) {
  EXPECT_GE(GreedyTreePacking::thorup_tree_bound(3, 1024), 1000000u);
  EXPECT_GE(GreedyTreePacking::thorup_tree_bound(1, 4), 1u);
}

}  // namespace
}  // namespace dmc
