// dmc::Session — the serving façade's core guarantees:
//
//   (1) REUSE EQUIVALENCE: N repeated solve() calls on one Session are
//       bit-identical (results + every stat) to N fresh one-shot calls,
//       across {sequential, sharded(2), sharded(8)} × {Dense,
//       EventDriven}.  This is Network::reset() made executable.
//   (2) OBSERVABILITY: RoundObserver phase events nest correctly and the
//       per-round snapshots are monotone.
//   (3) CANCELLATION: a round-budget (or observer) cancel surfaces as a
//       clean CancelledError — no deadlock — and the session serves
//       subsequent queries bit-identically afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "congest/network.h"
#include "congest/primitives/leader_bfs.h"
#include "core/api.h"
#include "graph/generators.h"

namespace dmc {
namespace {

/// Field-for-field report equality, wall time excluded (the one
/// non-deterministic field).
void expect_report_identical(const MinCutReport& a, const MinCutReport& b,
                             const std::string& what) {
  EXPECT_EQ(a.algo, b.algo) << what;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.side, b.side) << what;
  EXPECT_EQ(a.v_star, b.v_star) << what;
  EXPECT_EQ(a.trees_packed, b.trees_packed) << what;
  EXPECT_EQ(a.tree_of_best, b.tree_of_best) << what;
  EXPECT_EQ(a.fragments, b.fragments) << what;
  EXPECT_EQ(a.p, b.p) << what;
  EXPECT_EQ(a.lambda_hat, b.lambda_hat) << what;
  EXPECT_EQ(a.sampled, b.sampled) << what;
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.q_threshold, b.q_threshold) << what;
  // CongestStats::operator== is exact, per-protocol breakdown included.
  EXPECT_TRUE(a.stats == b.stats) << what << ": stats diverged";
}

/// A mixed request batch covering all four algorithms (plus a repeat, so
/// reuse-after-reuse is exercised too).  Small packing knobs keep the
/// matrix fast.
std::vector<MinCutRequest> mixed_batch() {
  MinCutRequest exact;
  exact.algo = Algo::kExact;
  exact.max_trees = 6;
  exact.patience = 3;
  MinCutRequest approx;
  approx.algo = Algo::kApprox;
  approx.eps = 0.3;
  approx.seed = 7;
  MinCutRequest su;
  su.algo = Algo::kSu;
  su.seed = 3;
  MinCutRequest gk;
  gk.algo = Algo::kGk;
  gk.seed = 9;
  return {exact, approx, su, gk, exact};
}

TEST(Session, ReuseBitIdenticalToFreshOneShots) {
  const Graph g = make_planted_cut(28, 0.5, 3, 1, 13);
  const std::vector<MinCutRequest> batch = mixed_batch();
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const Scheduling sched :
         {Scheduling::kDense, Scheduling::kEventDriven}) {
      const SessionOptions sopt{threads, sched};
      Session reused{g, sopt};
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const MinCutReport r = reused.solve(batch[i]);
        // The one-shot comparator: a fresh session (fresh network) per
        // request — exactly what the api.h free functions do.
        Session fresh{g, sopt};
        const MinCutReport f = fresh.solve(batch[i]);
        expect_report_identical(
            r, f,
            "threads=" + std::to_string(threads) + " sched=" +
                (sched == Scheduling::kDense ? "dense" : "event") +
                " req#" + std::to_string(i));
      }
      EXPECT_TRUE(reused.warmed()) << "solves did not build the warm infra";
      EXPECT_EQ(reused.queries_served(), batch.size());
    }
  }
}

TEST(Session, WarmSolvesInterleavedWithCancellationStayBitIdentical) {
  // The warm-path matrix of the E9 fix: every algorithm × scheduling ×
  // engine, warm solves 1..k compared against fresh one-shots, with a
  // round-budget exhaustion and a time-budget cancellation injected
  // BETWEEN every pair — a cancelled warm query must leave no residue in
  // the session (network, arena, or cached infra).
  const Graph g = make_planted_cut(26, 0.5, 3, 1, 11);
  const std::vector<MinCutRequest> batch = mixed_batch();
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const Scheduling sched :
         {Scheduling::kDense, Scheduling::kEventDriven}) {
      const SessionOptions sopt{threads, sched};
      Session warm{g, sopt};
      for (std::size_t i = 0; i < batch.size(); ++i) {
        MinCutRequest strangled = batch[i];
        strangled.round_budget = 1;  // exhausts inside/just past bootstrap
        EXPECT_THROW((void)warm.solve(strangled), CancelledError);
        MinCutRequest starved = batch[i];
        starved.time_budget_s = 1e-12;
        EXPECT_THROW((void)warm.solve(starved), CancelledError);

        const MinCutReport r = warm.solve(batch[i]);
        Session fresh{g, sopt};
        expect_report_identical(
            r, fresh.solve(batch[i]),
            "threads=" + std::to_string(threads) + " sched=" +
                (sched == Scheduling::kDense ? "dense" : "event") +
                " post-cancel req#" + std::to_string(i));
      }
    }
  }
}

TEST(Session, WarmSteadyStateAllocatesNoNewArenaChunks) {
  // The arena behind Network::reset(): the first solve of each algorithm
  // grows it to the workload's high-water mark; repeated warm queries must
  // then reuse those chunks, never allocate new ones.
  const Graph g = make_planted_cut(24, 0.5, 2, 1, 7);
  Session session{g};
  const std::vector<MinCutRequest> batch = mixed_batch();
  (void)session.solve_many(batch);
  const std::size_t high_water = [&] {
    // bytes_reserved is only reachable through the network accessor.
    return session.network().arena().bytes_reserved();
  }();
  EXPECT_GT(high_water, 0u) << "drivers stopped using the arena";
  for (int round = 0; round < 3; ++round) (void)session.solve_many(batch);
  EXPECT_EQ(session.network().arena().bytes_reserved(), high_water)
      << "steady-state warm solves grew the arena";
}

TEST(Session, ColdObserverPathMatchesWarmPath) {
  // A user observer forces the cold path (live bootstrap, full event
  // stream); removing it switches back to warm replay.  Both must produce
  // identical reports — the cacheability argument made executable.
  const Graph g = make_barbell(22, 3, 1, 7);
  for (const MinCutRequest& req : mixed_batch()) {
    Session session{g};
    RoundObserver passive;  // base class: observes nothing, cancels never
    session.set_observer(&passive);
    const MinCutReport cold = session.solve(req);
    EXPECT_FALSE(session.warmed()) << "observed solve built warm infra";
    session.set_observer(nullptr);
    const MinCutReport warm_first = session.solve(req);  // builds the cache
    const MinCutReport warm_again = session.solve(req);  // replays it
    EXPECT_TRUE(session.warmed());
    expect_report_identical(cold, warm_first, "cold vs infra-building solve");
    expect_report_identical(cold, warm_again, "cold vs warm replay");
  }
}

TEST(SessionPool, SolveManyBitIdenticalToSingleSession) {
  const Graph g = make_planted_cut(26, 0.5, 3, 1, 11);
  const std::vector<MinCutRequest> batch = [&] {
    std::vector<MinCutRequest> b;
    for (int rep = 0; rep < 3; ++rep)
      for (const MinCutRequest& req : mixed_batch()) b.push_back(req);
    return b;
  }();
  Session single{g};
  const std::vector<MinCutReport> want = single.solve_many(batch);
  for (const std::size_t sessions : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
    SessionPool pool{g, sessions};
    ASSERT_EQ(pool.size(), sessions);
    const std::vector<MinCutReport> got = pool.solve_many(batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      expect_report_identical(got[i], want[i],
                              "pool(" + std::to_string(sessions) + ") req#" +
                                  std::to_string(i));
    EXPECT_EQ(pool.queries_served(), batch.size());
  }
}

TEST(SessionPool, CancelledRequestRethrowsAndPoolSurvives) {
  const Graph g = make_barbell(20, 2, 1, 5);
  SessionPool pool{g, 2};
  const std::vector<MinCutRequest> batch = mixed_batch();
  const std::vector<MinCutReport> want = pool.solve_many(batch);

  std::vector<MinCutRequest> poisoned = batch;
  poisoned[2].round_budget = 1;
  EXPECT_THROW((void)pool.solve_many(poisoned), CancelledError);

  const std::vector<MinCutReport> after = pool.solve_many(batch);
  ASSERT_EQ(after.size(), want.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    expect_report_identical(after[i], want[i],
                            "post-cancel pool req#" + std::to_string(i));
}

TEST(Session, MatchesFreeFunctionWrappers) {
  const Graph g = make_barbell(24, 3, 1, 7);
  Session session{g};

  MinCutRequest req;
  const MinCutReport exact = session.solve(req);
  const DistMinCutResult via_free = distributed_min_cut(g);
  EXPECT_EQ(exact.value, via_free.value);
  EXPECT_EQ(exact.side, via_free.side);
  EXPECT_TRUE(exact.stats == via_free.stats);

  req.algo = Algo::kApprox;
  req.eps = 0.3;
  req.seed = 5;
  const MinCutReport approx = session.solve(req);
  const DistApproxResult a = distributed_approx_min_cut(g, {.eps = 0.3, .seed = 5});
  EXPECT_EQ(approx.value, a.result.value);
  EXPECT_EQ(approx.sampled, a.sampled);
  EXPECT_TRUE(approx.stats == a.result.stats);

  req.algo = Algo::kSu;
  const MinCutReport su = session.solve(req);
  const SuEstimateResult s = distributed_su_estimate(g, {.seed = 5});
  EXPECT_EQ(su.value, s.estimate);
  EXPECT_EQ(su.q_threshold, s.q_threshold);
  EXPECT_TRUE(su.stats == s.stats);

  req.algo = Algo::kGk;
  const MinCutReport gk = session.solve(req);
  const GkEstimateResult k = distributed_gk_estimate(g, {.seed = 5});
  EXPECT_EQ(gk.value, k.estimate);
  EXPECT_EQ(gk.attempts, k.probes);
  EXPECT_TRUE(gk.stats == k.stats);
}

TEST(Session, SolveManyMatchesIndividualSolves) {
  const Graph g = make_barbell(20, 2, 1, 5);
  const std::vector<MinCutRequest> batch = mixed_batch();
  Session batched{g};
  const std::vector<MinCutReport> reports = batched.solve_many(batch);
  ASSERT_EQ(reports.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Session fresh{g};
    expect_report_identical(reports[i], fresh.solve(batch[i]),
                            "batch#" + std::to_string(i));
  }
}

TEST(Session, NetworkResetRestoresPristineState) {
  // Below the façade: a protocol run after reset() must be bit-identical
  // to the same run on a brand-new network (stats prove it transitively
  // for mailboxes, activation buckets, and the round counter).
  const Graph g = make_planted_cut(24, 0.5, 2, 1, 3);
  Network fresh{g};
  LeaderBfsProtocol p0{g};
  fresh.run(p0);
  const CongestStats want = fresh.stats();

  Network reused{g};
  LeaderBfsProtocol p1{g};
  reused.run(p1);
  reused.reset();
  EXPECT_EQ(reused.stats().rounds, 0u);
  EXPECT_EQ(reused.stats().messages, 0u);
  EXPECT_TRUE(reused.stats().per_protocol.empty());
  LeaderBfsProtocol p2{g};
  reused.run(p2);
  EXPECT_TRUE(reused.stats() == want) << "reset network diverged from fresh";
  EXPECT_EQ(p2.leader(), p0.leader());
}

/// Records the full event stream and checks nesting as it happens.
class RecordingObserver final : public RoundObserver {
 public:
  void on_phase_begin(std::string_view protocol) override {
    EXPECT_EQ(depth_, 0) << "phase '" << protocol << "' began inside '"
                         << open_ << "'";
    depth_ = 1;
    open_ = std::string{protocol};
    ++begins_;
  }
  void on_phase_end(std::string_view protocol,
                    const ProtocolStats& phase) override {
    EXPECT_EQ(depth_, 1) << "phase '" << protocol << "' ended while closed";
    EXPECT_EQ(std::string{protocol}, open_) << "phase end/begin mismatch";
    EXPECT_GT(phase.rounds, 0u);
    depth_ = 0;
    ++ends_;
  }
  [[nodiscard]] bool on_round(const CongestStats& snapshot) override {
    EXPECT_EQ(depth_, 1) << "round event outside any phase";
    EXPECT_GE(snapshot.rounds, last_rounds_) << "snapshot went backwards";
    last_rounds_ = snapshot.rounds;
    ++rounds_;
    return true;
  }

  int depth_{0};
  std::string open_;
  std::size_t begins_{0};
  std::size_t ends_{0};
  std::size_t rounds_{0};
  std::uint64_t last_rounds_{0};
};

TEST(Session, ObserverPhaseEventsNestCorrectly) {
  const Graph g = make_barbell(20, 2, 1, 5);
  Session session{g};
  RecordingObserver obs;
  session.set_observer(&obs);
  MinCutRequest req;
  req.max_trees = 4;
  req.patience = 2;
  const MinCutReport rep = session.solve(req);
  EXPECT_EQ(obs.depth_, 0) << "unbalanced phase events";
  EXPECT_GT(obs.begins_, 1u) << "exact pipeline has many protocol phases";
  EXPECT_EQ(obs.begins_, obs.ends_);
  EXPECT_EQ(obs.rounds_, rep.stats.rounds)
      << "one on_round per executed round";

  // An installed observer must not perturb the computation.
  session.set_observer(nullptr);
  Session plain{g};
  expect_report_identical(rep, plain.solve(req), "observer perturbed run");
}

TEST(Session, RoundBudgetCancelsCleanlyAndSessionSurvives) {
  const Graph g = make_planted_cut(28, 0.5, 3, 1, 13);
  Session session{g};
  MinCutRequest req;
  req.max_trees = 6;
  req.patience = 3;

  const MinCutReport full = session.solve(req);
  ASSERT_GT(full.stats.total_rounds(), 50u);

  // A budget far below the full cost must cancel (cleanly, via exception
  // — a deadlock would trip the test timeout), not return a bogus report.
  MinCutRequest budgeted = req;
  budgeted.round_budget = 50;
  EXPECT_THROW((void)session.solve(budgeted), CancelledError);
  EXPECT_EQ(session.queries_served(), 1u) << "cancelled query counted";

  // The session must serve the next query bit-identically to a fresh one.
  const MinCutReport after = session.solve(req);
  expect_report_identical(after, full, "post-cancel solve diverged");

  // A generous budget does not cancel and changes nothing.
  MinCutRequest roomy = req;
  roomy.round_budget = full.stats.total_rounds() + 1;
  expect_report_identical(session.solve(roomy), full, "roomy budget");
}

TEST(Session, TimeBudgetCancels) {
  const Graph g = make_planted_cut(28, 0.5, 3, 1, 13);
  Session session{g};
  MinCutRequest req;
  req.time_budget_s = 1e-9;  // elapses before the first round completes
  EXPECT_THROW((void)session.solve(req), CancelledError);
}

/// Cancels after a fixed number of observed rounds.
class TripwireObserver final : public RoundObserver {
 public:
  explicit TripwireObserver(std::size_t allow) : allow_(allow) {}
  [[nodiscard]] bool on_round(const CongestStats&) override {
    return ++seen_ <= allow_;
  }

 private:
  std::size_t allow_;
  std::size_t seen_{0};
};

TEST(Session, ObserverCancelPropagatesAndSessionSurvives) {
  const Graph g = make_barbell(24, 3, 1, 7);
  Session session{g};
  const MinCutReport want = session.solve(MinCutRequest{});

  TripwireObserver trip{3};
  session.set_observer(&trip);
  EXPECT_THROW((void)session.solve(MinCutRequest{}), CancelledError);
  session.set_observer(nullptr);

  expect_report_identical(session.solve(MinCutRequest{}), want,
                          "post-observer-cancel solve diverged");
}

TEST(Session, SuEstimateIsWeightAware) {
  // Regression for a dmc::check find (nightly wide-weight matrix, shrunk
  // to exactly this instance): the Su estimate used to be ln(n)/q* — pure
  // topology — so a heavy bridge reported Θ(log n) regardless of λ.
  Graph k2{2};
  k2.add_edge(0, 1, 80);
  Session heavy{k2};
  MinCutRequest req;
  req.algo = Algo::kSu;
  req.seed = 3;
  EXPECT_EQ(heavy.solve(req).value, 80u);

  // A weighted tree: every edge is a tree edge, λ = the minimum weight.
  const Graph t = make_random_tree(20, 5, 1000, 5000);
  Weight lambda = t.edge(0).w;
  for (const Edge& e : t.edges()) lambda = std::min(lambda, e.w);
  Session tree{t};
  const Weight est = tree.solve(req).value;
  EXPECT_GE(est, lambda / 64);
  EXPECT_LE(est, lambda * 64);
}

TEST(Session, AlgoStringsRoundTrip) {
  for (const Algo a : {Algo::kExact, Algo::kApprox, Algo::kSu, Algo::kGk})
    EXPECT_EQ(algo_from_string(to_string(a)), a);
  EXPECT_THROW((void)algo_from_string("exat"), PreconditionError);
}

// --- edge cases: degenerate graphs and budget boundaries ----------------

TEST(Session, TwoNodeSingleEdgeGraphSolvesUnderEveryAlgo) {
  Graph g{2};
  g.add_edge(0, 1, 7);
  for (const unsigned threads : {1u, 2u}) {
    Session session{g, SessionOptions{threads}};
    for (const MinCutRequest& req : mixed_batch()) {
      const MinCutReport rep = session.solve(req);
      if (req.algo == Algo::kExact || req.algo == Algo::kApprox) {
        EXPECT_EQ(rep.value, 7u) << to_string(req.algo);
        ASSERT_EQ(rep.side.size(), 2u);
        EXPECT_NE(rep.side[0], rep.side[1]) << "the only cut is {0}|{1}";
      } else {
        EXPECT_GE(rep.value, 1u) << to_string(req.algo);
      }
    }
  }
}

TEST(Session, TwoNodeParallelEdgesSumIntoTheCut) {
  Graph g{2};
  g.add_edge(0, 1, 3);
  g.add_edge(0, 1, 4);
  Session session{g};
  MinCutRequest req;
  const MinCutReport rep = session.solve(req);
  EXPECT_EQ(rep.value, 7u);
}

TEST(Session, SingleEdgeBridgeGraphFindsTheBridge) {
  // Smallest graph whose cut is not "one node vs the rest of a clique":
  // two triangles joined by a single weight-1 bridge.
  Graph g{6};
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 5);
  g.add_edge(2, 0, 5);
  g.add_edge(3, 4, 5);
  g.add_edge(4, 5, 5);
  g.add_edge(5, 3, 5);
  g.add_edge(2, 3, 1);
  Session session{g};
  MinCutRequest req;
  const MinCutReport rep = session.solve(req);
  EXPECT_EQ(rep.value, 1u);
  EXPECT_EQ(rep.side[0], rep.side[1]);
  EXPECT_EQ(rep.side[0], rep.side[2]);
  EXPECT_NE(rep.side[2], rep.side[3]);
}

TEST(Session, RoundBudgetZeroMeansUnlimitedNotInstantCancel) {
  const Graph g = make_barbell(16, 2, 1, 5);
  Session session{g};
  MinCutRequest req;
  req.round_budget = 0;  // documented: 0 = unlimited
  req.time_budget_s = 0.0;
  const MinCutReport rep = session.solve(req);  // must not throw
  EXPECT_GT(rep.stats.total_rounds(), 0u);
  EXPECT_EQ(session.queries_served(), 1u);
}

TEST(Session, RepeatedSolvesAfterCancelledRequestsStayClean) {
  const Graph g = make_planted_cut(24, 0.5, 3, 1, 11);
  Session session{g};
  const std::vector<MinCutRequest> batch = mixed_batch();
  const std::vector<MinCutReport> fresh = [&] {
    Session one_shot{g};
    return one_shot.solve_many(batch);
  }();

  // Cancel several times in a row — different algorithms, both budget
  // kinds — then serve the full batch; every report must match a fresh
  // session exactly.
  for (int round = 0; round < 2; ++round) {
    MinCutRequest strangled;
    strangled.round_budget = 1;
    EXPECT_THROW((void)session.solve(strangled), CancelledError);
    strangled.algo = Algo::kSu;
    strangled.round_budget = 0;
    strangled.time_budget_s = 1e-12;
    EXPECT_THROW((void)session.solve(strangled), CancelledError);
  }
  const std::vector<MinCutReport> after = session.solve_many(batch);
  ASSERT_EQ(after.size(), fresh.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    expect_report_identical(after[i], fresh[i],
                            "post-cancel batch item " + std::to_string(i));
  EXPECT_EQ(session.queries_served(), batch.size());
}

TEST(Session, DescribeNamesTheAlgorithmAndItsKnobs) {
  MinCutRequest req;
  req.algo = Algo::kApprox;
  req.eps = 0.25;
  req.seed = 7;
  EXPECT_EQ(describe(req), "approx(eps=0.25, seed=7, trees_factor=4)");
  req.algo = Algo::kExact;
  req.round_budget = 9;
  EXPECT_EQ(describe(req),
            "exact(max_trees=48, patience=12, round_budget=9)");
  req.algo = Algo::kGk;
  req.round_budget = 0;
  EXPECT_EQ(describe(req), "gk(seed=7)");
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Session, DeprecatedPositionalOverloadsStillAgree) {
  const Graph g = make_barbell(20, 2, 1, 5);
  const DistApproxResult a = distributed_approx_min_cut(g, 0.3, 7);
  const DistApproxResult b =
      distributed_approx_min_cut(g, {.eps = 0.3, .seed = 7});
  EXPECT_EQ(a.result.value, b.result.value);
  EXPECT_TRUE(a.result.stats == b.result.stats);
  const SuEstimateResult su_old = distributed_su_estimate(g, 3ull);
  const SuEstimateResult su_new = distributed_su_estimate(g, {.seed = 3});
  EXPECT_EQ(su_old.estimate, su_new.estimate);
  EXPECT_TRUE(su_old.stats == su_new.stats);
  const GkEstimateResult gk_old = distributed_gk_estimate(g, 9ull);
  const GkEstimateResult gk_new = distributed_gk_estimate(g, {.seed = 9});
  EXPECT_EQ(gk_old.estimate, gk_new.estimate);
  EXPECT_TRUE(gk_old.stats == gk_new.stats);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace dmc
