// Skewed active lists: when every active node lives in ONE shard's owner
// range, the sharded engine's dynamic chunk tickets must still spread the
// work across all workers (engine.h) — and remain bit-identical to the
// sequential reference.  This is the adversarial load shape for static
// owner-partitioned execution: without work stealing, one shard would run
// the whole round while the others idle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/network.h"
#include "graph/generators.h"

namespace dmc {
namespace {

/// Keeps exactly the nodes v < hot_n active for `budget` rounds: each hot
/// node sends a node-and-step-dependent word downward every round and
/// requests a wake while it has steps left.  Cold nodes never act, never
/// receive, and are locally done from the start — under event-driven
/// scheduling the active list is exactly [0, hot_n) after the bootstrap
/// round.
class HotRangeProtocol final : public Protocol {
 public:
  HotRangeProtocol(const Graph& g, NodeId hot_n, std::uint32_t budget)
      : g_(&g),
        hot_n_(hot_n),
        budget_(budget),
        steps_(g.num_nodes(), 0),
        received_(g.num_nodes(), 0) {}

  [[nodiscard]] std::string name() const override { return "hot_range"; }

  void round(NodeId v, Mailbox& mb) override {
    for (const Delivery d : mb.inbox()) received_[v] += d.msg.w[0];
    if (v < hot_n_ && steps_[v] < budget_) {
      ++steps_[v];
      // The payload folds (node, step) so any reordering or dropped
      // execution shows up in the received_ checksums, not just counts.
      mb.send(0, Message::make(7, {Word{v} * 1000003u + steps_[v]}));
      if (steps_[v] < budget_) mb.request_wake();
    }
  }

  [[nodiscard]] bool local_done(NodeId v) const override {
    return v >= hot_n_ || steps_[v] == budget_;
  }

  [[nodiscard]] Scheduling scheduling() const override {
    return Scheduling::kEventDriven;
  }

  [[nodiscard]] const std::vector<Word>& received() const {
    return received_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& steps() const {
    return steps_;
  }

 private:
  const Graph* g_;
  NodeId hot_n_;
  std::uint32_t budget_;
  std::vector<std::uint32_t> steps_;
  std::vector<Word> received_;
};

struct HotOut {
  std::vector<Word> received;
  std::vector<std::uint32_t> steps;
  CongestStats stats;
  std::vector<std::uint64_t> shard_steps;
};

HotOut run_hot(const Graph& g, std::unique_ptr<Engine> engine, NodeId hot_n,
               std::uint32_t budget) {
  Network net{g, std::move(engine)};
  HotRangeProtocol p{g, hot_n, budget};
  net.run(p);
  return {p.received(), p.steps(), net.stats(), net.shard_node_steps()};
}

TEST(SkewedActive, OneHotShardStaysBitIdenticalAndUsesAllWorkers) {
  // 4096 nodes, hot range = the first quarter — exactly shard 0's owner
  // range under 4 shards.  1024 active nodes per round is ≥ chunk_size ×
  // shards for both thread counts below, so every shard is guaranteed at
  // least its reserved chunk of real work each round.
  constexpr std::size_t kN = 4096;
  constexpr NodeId kHot = kN / 4;
  constexpr std::uint32_t kBudget = 20;
  const Graph g = make_path(kN);

  const HotOut seq = run_hot(g, make_sequential_engine(), kHot, kBudget);
  // The schedule really was skewed: event-driven node_steps stay near
  // bootstrap + hot activity, nowhere near rounds × n.
  ASSERT_GT(seq.stats.rounds, kBudget);
  EXPECT_LT(seq.stats.node_steps, seq.stats.rounds * kN / 2);
  EXPECT_LE(seq.stats.node_steps, kN + std::uint64_t{kHot} * (kBudget + 1));
  for (NodeId v = 0; v < kHot; ++v)
    EXPECT_EQ(seq.steps[v], kBudget) << "hot node " << v;
  for (NodeId v = kHot; v < kN; ++v)
    EXPECT_EQ(seq.steps[v], 0u) << "cold node " << v;

  for (const unsigned threads : {4u, 8u}) {
    const HotOut par = run_hot(g, make_sharded_engine(threads), kHot, kBudget);
    EXPECT_EQ(seq.received, par.received) << threads << " threads";
    EXPECT_EQ(seq.steps, par.steps) << threads << " threads";
    EXPECT_TRUE(seq.stats == par.stats)
        << "stats diverged at " << threads << " threads";
    // Dynamic chunk tickets: the hot quarter is owned by one shard, yet
    // every worker must have executed nodes.  The SPLIT across shards is
    // engine-dependent (that is why shard_node_steps is not in
    // CongestStats); only "nobody idled" is asserted.
    ASSERT_EQ(par.shard_steps.size(), threads);
    std::uint64_t total = 0;
    for (unsigned s = 0; s < threads; ++s) {
      EXPECT_GT(par.shard_steps[s], 0u)
          << "shard " << s << " of " << threads << " never ran a node";
      total += par.shard_steps[s];
    }
    EXPECT_EQ(total, par.stats.node_steps);
  }
}

}  // namespace
}  // namespace dmc
